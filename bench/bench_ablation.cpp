// Ablation studies for the design choices docs/DESIGN.md calls out:
//   A. cache line size (the paper fixes 4 words — how sensitive?)
//   B. write-allocate policy across cache sizes (the paper's
//      no-write-allocate-for-small-caches rule)
//   C. coherence cost: coherent broadcast vs the non-coherent copyback
//      lower bound on the same parallel trace
//   D. scheduling: goals stolen and speedup vs PE count (work balance)
//
//   --scale small|paper   workload size (default paper)
#include <cstdio>

#include "cache/sweep.h"
#include "harness/runner.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"

using namespace rapwam;

namespace {

TrafficStats simulate(const std::vector<u64>& trace, Protocol p, u32 size,
                      u32 line, bool walloc, unsigned pes, u32 ways = 0) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = size;
  cfg.line_words = line;
  cfg.write_allocate = walloc;
  cfg.ways = ways;
  MultiCacheSim sim(cfg, pes);
  sim.replay(trace);
  return sim.stats();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchScale scale = cli.get("scale", "paper") == "small" ? BenchScale::Small
                                                          : BenchScale::Paper;

  BenchProgram qs = bench_program("qsort", scale);
  BenchRun run8 = run_parallel(qs, 8, /*want_trace=*/true);
  const std::vector<u64>& trace = run8.trace->packed();

  {
    TextTable t("Ablation A: line size (qsort, 8 PEs, write-in broadcast, 1024 words)");
    t.header({"line words", "traffic ratio", "miss ratio"});
    for (u32 line : {1u, 2u, 4u, 8u, 16u}) {
      TrafficStats s = simulate(trace, Protocol::WriteInBroadcast, 1024, line,
                                /*walloc=*/true, 8);
      t.row({std::to_string(line), fmt(s.traffic_ratio(), 4), fmt(s.miss_ratio(), 4)});
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
  }

  {
    TextTable t("Ablation B: write-allocate policy (qsort, 8 PEs, write-in broadcast)");
    t.header({"cache words", "allocate", "no-allocate", "paper picks"});
    for (u32 sz : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      TrafficStats a = simulate(trace, Protocol::WriteInBroadcast, sz, 4, true, 8);
      TrafficStats n = simulate(trace, Protocol::WriteInBroadcast, sz, 4, false, 8);
      t.row({std::to_string(sz), fmt(a.traffic_ratio(), 4), fmt(n.traffic_ratio(), 4),
             paper_write_allocate(Protocol::WriteInBroadcast, sz) ? "allocate"
                                                                  : "no-allocate"});
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
  }

  {
    TextTable t("Ablation C: coherence cost (qsort, 8 PEs, 1024 words, 4-word lines)");
    t.header({"protocol", "traffic ratio", "bus words"});
    for (Protocol p : {Protocol::Copyback, Protocol::WriteInBroadcast,
                       Protocol::WriteThroughBroadcast, Protocol::Hybrid,
                       Protocol::WriteThrough}) {
      TrafficStats s = simulate(trace, p, 1024, 4,
                                paper_write_allocate(p, 1024), 8);
      t.row({protocol_name(p), fmt(s.traffic_ratio(), 4), std::to_string(s.bus_words)});
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("  (copyback ignores coherence: it lower-bounds the traffic)\n");
  }

  {
    TextTable t("Ablation E: associativity (qsort, 8 PEs, write-in broadcast, 1024 words)");
    t.header({"ways", "traffic ratio", "miss ratio"});
    for (u32 ways : {1u, 2u, 4u, 8u, 0u}) {
      TrafficStats s = simulate(trace, Protocol::WriteInBroadcast, 1024, 4,
                                /*walloc=*/true, 8, ways);
      t.row({ways == 0 ? "full (paper)" : std::to_string(ways),
             fmt(s.traffic_ratio(), 4), fmt(s.miss_ratio(), 4)});
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("  (the paper assumes full associativity with perfect LRU;\n"
              "   low associativity costs conflict misses)\n");
  }

  {
    TextTable t("Ablation D: scheduling balance (qsort)");
    t.header({"PEs", "cycles", "speedup", "goals stolen", "goals local", "kills"});
    BenchRun base = run_parallel(qs, 1, false);
    double c1 = static_cast<double>(base.result.stats.cycles);
    for (unsigned pes : {1u, 2u, 4u, 8u, 16u}) {
      BenchRun r = run_parallel(qs, pes, false);
      const RunStats& s = r.result.stats;
      t.row({std::to_string(pes), std::to_string(s.cycles),
             fmt(c1 / static_cast<double>(s.cycles), 2),
             std::to_string(s.goals_stolen), std::to_string(s.goals_local),
             std::to_string(s.kills)});
    }
    std::fputs(t.str().c_str(), stdout);
  }
  return 0;
}
