// Regenerates Figure 2: RAP-WAM work and overhead for "deriv" as a
// function of the number of processors, as percentages of the work of
// the plain sequential WAM running the un-annotated program.
//
//   --scale small|paper   workload size (default paper)
#include <cstdio>

#include "harness/reports.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  rapwam::TextTable t = rapwam::fig2_report(opt);
  std::fputs(cli.has("csv") ? t.csv().c_str() : t.str().c_str(), stdout);
  std::puts(
      "\nPaper: work stays essentially flat as PEs grow (overhead ~15% up\n"
      "to 40 PEs); RAP-WAM work on 1 PE is very close to WAM work. Our\n"
      "emulator reproduces the flat shape and the scalable speedup; the\n"
      "absolute overhead is higher because every scheduler word (parcall\n"
      "frames, goal stack, markers, locks) is traced — see EXPERIMENTS.md.");
  return 0;
}
