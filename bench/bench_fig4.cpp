// Regenerates Figure 4: Traffic of Coherency Schemes — mean traffic
// ratio over the four benchmarks vs cache size, for 1/2/4/8 PEs, one
// panel per protocol (write-in broadcast, hybrid, conventional
// write-through). Four-word lines; the paper's write-allocate policy
// selection per size.
//
//   --scale small|paper   workload size (default paper)
//   --threads N           host threads for the sweep (default: all)
//   --streaming           replay concurrently with generation over a
//                         bounded chunk window (O(window) trace memory)
//   --window N            chunks in flight in streaming mode (default 8)
//   --l2                  also sweep a shared L2 under the paper point
//                         (size × inclusion policy; docs/DESIGN.md §9)
#include <cstdio>

#include "harness/reports.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  opt.pool_threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opt.fig4_streaming = cli.has("streaming");
  opt.stream_window = static_cast<std::size_t>(cli.get_int("window", 8));
  for (const rapwam::TextTable& t : rapwam::fig4_report(opt)) {
    std::fputs(cli.has("csv") ? t.csv().c_str() : t.str().c_str(), stdout);
    std::puts("");
  }
  if (cli.has("l2")) {
    rapwam::TextTable t = rapwam::l2_report(opt);
    std::fputs(cli.has("csv") ? t.csv().c_str() : t.str().c_str(), stdout);
    std::puts("");
  }
  std::puts(
      "Paper's qualitative results to compare against:\n"
      "  * traffic falls steeply with cache size for broadcast and hybrid,\n"
      "    flattening (\"bottoming out\") beyond ~1-2K words;\n"
      "  * write-through stays high (write traffic is not absorbed);\n"
      "  * hybrid lands between broadcast and write-through, close to\n"
      "    broadcast;\n"
      "  * 8 PEs with >=128-word broadcast caches capture >70% of traffic\n"
      "    (ratio < 0.3).");
  return 0;
}
