// Micro-benchmarks of the multiprocessor cache simulator (host
// throughput per protocol; governs Figure-4 sweep time).
//
// Two parts:
//   1. A JSON harness that times the directory-based MultiCacheSim
//      against the retained naive broadcast-snoop ReferenceCacheSim and
//      the timed-replay engine (src/timing) on the same trace, per
//      protocol and PE count, and writes the
//      results to BENCH_cache.json (override with --json-out=PATH,
//      disable with --no-json) so the perf trajectory is tracked
//      across PRs. The harness takes ~a minute, so it only runs on a
//      bare invocation (no flags at all) or when --json-out is given
//      explicitly — iterating on one micro-benchmark, or asking for
//      --help, never pays for it.
//   2. The google-benchmark registrations (BM_*), run afterwards with
//      the usual --benchmark_* flags.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "cache/refsim.h"
#include "harness/runner.h"
#include "timing/timed_replay.h"
#include "trace/chunks.h"

namespace {

using namespace rapwam;

/// The qsort/small trace at `pes` PEs, generated once through the
/// chunked engine->sink pipeline — with the generation itself timed
/// (best of 3 runs), since emitting the trace is the sweep front end
/// the gen_refs_per_sec metric tracks.
struct SharedTrace {
  std::vector<u64> packed;
  double gen_seconds = 0;   ///< best-of-3 emulator run emitting the trace
  u64 emitted_refs = 0;     ///< every reference emitted (busy or not)
};

const SharedTrace& shared_trace(unsigned pes) {
  static std::vector<SharedTrace> traces(kMaxTracePes + 1);
  SharedTrace& t = traces.at(pes);
  if (t.packed.empty()) {
    BenchProgram bp = bench_program("qsort", BenchScale::Small);
    t.gen_seconds = 1e300;
    for (int trial = 0; trial < 3; ++trial) {
      ChunkingSink sink(/*busy_only=*/true);
      auto t0 = std::chrono::steady_clock::now();
      run_into(bp, pes, /*strip=*/false, &sink);
      double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      t.gen_seconds = std::min(t.gen_seconds, dt);
      if (trial == 2) {  // identical every trial; materialize once
        std::shared_ptr<const ChunkedTrace> trace = sink.take();
        t.emitted_refs = trace->counts().total;
        t.packed = trace->to_packed();
      }
    }
  }
  return t;
}

CacheConfig bench_cfg(Protocol p) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = 1024;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return cfg;
}

/// The standard "fast interleaved bus" timing point (s=0.5, 4-deep
/// write buffers), adapted to time_replay's (cfg, pes) constructor so
/// the timed engine is measured by the same harness.
struct TimedSim {
  TimedReplay tr;
  TimedSim(const CacheConfig& cfg, unsigned pes)
      : tr(cfg, pes, TimingParams{1, 1, 2, 4}) {}
  void replay(const std::vector<u64>& t) { tr.replay(t); }
  const TrafficStats& stats() const { return tr.traffic(); }
};

/// HierCacheSim at the standard hierarchy point (paper_hier_config:
/// 4096-word 8-way inclusive L2 — the same configuration the golden
/// corpus pins), measured by the same harness. The disabled-L2 case is
/// MultiCacheSim's own fast path, already covered.
struct HierSim {
  HierCacheSim sim;
  HierSim(const CacheConfig& cfg, unsigned pes)
      : sim(paper_hier_config(cfg.protocol), pes) {}
  void replay(const std::vector<u64>& t) { sim.replay(t); }
  const TrafficStats& stats() const { return sim.stats(); }
};

// --- part 1: JSON comparison harness --------------------------------------

/// Replays `trace` through fresh simulators until >= `min_seconds` of
/// wall time has elapsed; returns the best per-replay seconds over
/// three such trials (sim construction included, as in a real sweep)
/// plus the deterministic TrafficStats of one replay.
struct Timed {
  double seconds = 0;
  TrafficStats stats;
};
template <typename Sim>
Timed time_replay(const CacheConfig& cfg, unsigned pes,
                  const std::vector<u64>& trace, double min_seconds = 0.1) {
  Timed out;
  out.seconds = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    int reps = 0;
    double elapsed = 0;
    auto t0 = std::chrono::steady_clock::now();
    do {
      Sim sim(cfg, pes);
      sim.replay(trace);
      benchmark::DoNotOptimize(sim.stats().bus_words);
      out.stats = sim.stats();
      ++reps;
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    } while (elapsed < min_seconds);
    out.seconds = std::min(out.seconds, elapsed / reps);
  }
  return out;
}

void emit_json(const std::string& path) {
  const Protocol protos[] = {Protocol::WriteThrough, Protocol::WriteInBroadcast,
                             Protocol::WriteThroughBroadcast, Protocol::Hybrid,
                             Protocol::Copyback};
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_micro_cache: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"cache_replay\",\n  \"trace\": \"qsort/small\",\n");
  std::fprintf(f, "  \"cache_words\": 1024,\n  \"line_words\": 4,\n  \"points\": [\n");
  bool first = true;
  // 128 PEs exercises the wide (PeSet) directory; everything below 65
  // runs the flat u64 fast path the perf guardrails track.
  for (unsigned pes : {1u, 2u, 4u, 8u, 16u, 128u}) {
    const SharedTrace& st = shared_trace(pes);
    const std::vector<u64>& trace = st.packed;
    // Engine-side generation throughput: every reference the emulator
    // emitted (busy or not) over the best-of-3 generation wall time.
    double gen_refs_per_sec = static_cast<double>(st.emitted_refs) / st.gen_seconds;
    std::printf("generate    %2u PEs  %7.2f Mrefs/s (%llu refs emitted)\n", pes,
                gen_refs_per_sec / 1e6, (unsigned long long)st.emitted_refs);
    for (Protocol p : protos) {
      CacheConfig cfg = bench_cfg(p);
      Timed fast = time_replay<MultiCacheSim>(cfg, pes, trace);
      Timed naive = time_replay<ReferenceCacheSim>(cfg, pes, trace);
      Timed timed = time_replay<TimedSim>(cfg, pes, trace);
      Timed hier = time_replay<HierSim>(cfg, pes, trace);
      double refs_per_sec = static_cast<double>(trace.size()) / fast.seconds;
      double naive_refs_per_sec = static_cast<double>(trace.size()) / naive.seconds;
      double timed_refs_per_sec = static_cast<double>(trace.size()) / timed.seconds;
      double hier_refs_per_sec = static_cast<double>(trace.size()) / hier.seconds;
      std::fprintf(f,
                   "%s    {\"protocol\": \"%s\", \"pes\": %u, \"refs\": %zu, "
                   "\"refs_per_sec\": %.0f, \"naive_refs_per_sec\": %.0f, "
                   "\"timed_refs_per_sec\": %.0f, \"hier_refs_per_sec\": %.0f, "
                   "\"gen_refs_per_sec\": %.0f, "
                   "\"speedup\": %.2f, \"traffic_ratio\": %.4f, \"miss_ratio\": %.4f, "
                   "\"hier_mem_traffic_ratio\": %.4f}",
                   first ? "" : ",\n", protocol_name(p).c_str(), pes, trace.size(),
                   refs_per_sec, naive_refs_per_sec, timed_refs_per_sec,
                   hier_refs_per_sec, gen_refs_per_sec,
                   refs_per_sec / naive_refs_per_sec,
                   fast.stats.traffic_ratio(), fast.stats.miss_ratio(),
                   hier.stats.mem_traffic_ratio());
      first = false;
      std::printf("%-22s %2u PEs  %7.2f Mrefs/s (naive %6.2f, %.2fx; timed %6.2f; "
                  "hier %6.2f)\n",
                  protocol_name(p).c_str(), pes, refs_per_sec / 1e6,
                  naive_refs_per_sec / 1e6, refs_per_sec / naive_refs_per_sec,
                  timed_refs_per_sec / 1e6, hier_refs_per_sec / 1e6);
      std::fflush(stdout);
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// --- part 2: google-benchmark registrations -------------------------------

void BM_Replay(benchmark::State& state) {
  Protocol p = static_cast<Protocol>(state.range(0));
  unsigned pes = static_cast<unsigned>(state.range(1));
  const std::vector<u64>& t = shared_trace(pes).packed;
  u64 refs = 0;
  for (auto _ : state) {
    MultiCacheSim sim(bench_cfg(p), pes);
    sim.replay(t);
    refs += sim.stats().refs;
    benchmark::DoNotOptimize(sim.stats().bus_words);
  }
  state.counters["refs/s"] =
      benchmark::Counter(static_cast<double>(refs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Replay)
    ->Args({static_cast<int>(Protocol::WriteThrough), 4})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 4})
    ->Args({static_cast<int>(Protocol::WriteThroughBroadcast), 4})
    ->Args({static_cast<int>(Protocol::Hybrid), 4})
    ->Args({static_cast<int>(Protocol::Copyback), 4})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 8})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 16})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 128});

void BM_ReplayNaive(benchmark::State& state) {
  Protocol p = static_cast<Protocol>(state.range(0));
  unsigned pes = static_cast<unsigned>(state.range(1));
  const std::vector<u64>& t = shared_trace(pes).packed;
  u64 refs = 0;
  for (auto _ : state) {
    ReferenceCacheSim sim(bench_cfg(p), pes);
    sim.replay(t);
    refs += sim.stats().refs;
    benchmark::DoNotOptimize(sim.stats().bus_words);
  }
  state.counters["refs/s"] =
      benchmark::Counter(static_cast<double>(refs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplayNaive)
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 4})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 8})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 16});

void BM_TimedReplay(benchmark::State& state) {
  Protocol p = static_cast<Protocol>(state.range(0));
  unsigned pes = static_cast<unsigned>(state.range(1));
  const std::vector<u64>& t = shared_trace(pes).packed;
  u64 refs = 0;
  for (auto _ : state) {
    TimedReplay sim(bench_cfg(p), pes, TimingParams{1, 1, 2, 4});
    sim.replay(t);
    refs += sim.traffic().refs;
    benchmark::DoNotOptimize(sim.timing().makespan);
  }
  state.counters["refs/s"] =
      benchmark::Counter(static_cast<double>(refs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimedReplay)
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 4})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 8})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 16});

void BM_HierReplay(benchmark::State& state) {
  Protocol p = static_cast<Protocol>(state.range(0));
  unsigned pes = static_cast<unsigned>(state.range(1));
  const std::vector<u64>& t = shared_trace(pes).packed;
  u64 refs = 0;
  for (auto _ : state) {
    HierCacheSim sim(paper_hier_config(p), pes);
    sim.replay(t);
    refs += sim.stats().refs;
    benchmark::DoNotOptimize(sim.stats().mem_fetch_words);
  }
  state.counters["refs/s"] =
      benchmark::Counter(static_cast<double>(refs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HierReplay)
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 4})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 8})
    ->Args({static_cast<int>(Protocol::WriteInBroadcast), 16});

void BM_LruLookup(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_words = static_cast<u32>(state.range(0));
  cfg.line_words = 4;
  Cache c(cfg);
  for (u64 t = 0; t < cfg.num_lines(); ++t) c.insert(t, LineState::Shared);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(i++ % cfg.num_lines()));
  }
}
BENCHMARK(BM_LruLookup)->Arg(256)->Arg(2048)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_cache.json";
  bool json_requested = false, no_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
      json_requested = true;
    }
    if (std::strcmp(argv[i], "--no-json") == 0) no_json = true;
  }
  if (!no_json && (json_requested || argc == 1)) emit_json(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
