// google-benchmark micro-benchmarks of the multiprocessor cache
// simulator (host throughput per protocol; governs Figure-4 sweep
// time).
#include <benchmark/benchmark.h>

#include "cache/multisim.h"
#include "harness/runner.h"

namespace {

using namespace rapwam;

const std::vector<u64>& shared_trace() {
  static std::vector<u64> t = [] {
    BenchRun r = run_parallel(bench_program("qsort", BenchScale::Small), 4,
                              /*want_trace=*/true);
    return r.trace->packed();
  }();
  return t;
}

void BM_Replay(benchmark::State& state) {
  Protocol p = static_cast<Protocol>(state.range(0));
  const std::vector<u64>& t = shared_trace();
  u64 refs = 0;
  for (auto _ : state) {
    CacheConfig cfg;
    cfg.protocol = p;
    cfg.size_words = 1024;
    cfg.line_words = 4;
    cfg.write_allocate = true;
    MultiCacheSim sim(cfg, 4);
    sim.replay(t);
    refs += sim.stats().refs;
    benchmark::DoNotOptimize(sim.stats().bus_words);
  }
  state.counters["refs/s"] =
      benchmark::Counter(static_cast<double>(refs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Replay)
    ->Arg(static_cast<int>(Protocol::WriteThrough))
    ->Arg(static_cast<int>(Protocol::WriteInBroadcast))
    ->Arg(static_cast<int>(Protocol::WriteThroughBroadcast))
    ->Arg(static_cast<int>(Protocol::Hybrid))
    ->Arg(static_cast<int>(Protocol::Copyback));

void BM_LruLookup(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_words = static_cast<u32>(state.range(0));
  cfg.line_words = 4;
  Cache c(cfg);
  for (u64 t = 0; t < cfg.num_lines(); ++t) c.insert(t, LineState::Shared);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(i++ % cfg.num_lines()));
  }
}
BENCHMARK(BM_LruLookup)->Arg(256)->Arg(2048)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
