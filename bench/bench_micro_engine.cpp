// google-benchmark micro-benchmarks of the emulator itself (host
// performance, not simulated performance): end-to-end solve rate,
// instruction dispatch throughput, compiler speed.
#include <benchmark/benchmark.h>

#include "harness/runner.h"

namespace {

using namespace rapwam;

void BM_SolveQsortSmall(benchmark::State& state) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  Program prog;
  prog.consult(bp.source);
  MachineConfig cfg;
  cfg.num_pes = static_cast<unsigned>(state.range(0));
  Machine m(prog, cfg);
  u64 instr = 0;
  for (auto _ : state) {
    RunResult r = m.solve(bp.goal + ".");
    instr += r.stats.instructions;
    benchmark::DoNotOptimize(r.success);
  }
  state.counters["simulated_instr/s"] = benchmark::Counter(
      static_cast<double>(instr), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SolveQsortSmall)->Arg(1)->Arg(4)->Arg(8);

void BM_SolveDerivSmall(benchmark::State& state) {
  BenchProgram bp = bench_program("deriv", BenchScale::Small);
  Program prog;
  prog.consult(bp.source);
  MachineConfig cfg;
  cfg.num_pes = 4;
  Machine m(prog, cfg);
  for (auto _ : state) {
    RunResult r = m.solve(bp.goal + ".");
    benchmark::DoNotOptimize(r.solutions);
  }
}
BENCHMARK(BM_SolveDerivSmall);

void BM_CompileBenchmarks(benchmark::State& state) {
  for (auto _ : state) {
    Program prog;
    for (const std::string& n : small_bench_names())
      prog.consult(bench_program(n, BenchScale::Small).source);
    auto code = compile_program(prog);
    benchmark::DoNotOptimize(code->size());
  }
}
BENCHMARK(BM_CompileBenchmarks);

void BM_ParseLargeList(benchmark::State& state) {
  std::string text = "f(" + gen_int_list(2000, 3) + ").";
  for (auto _ : state) {
    Program prog;
    prog.consult(text);
    benchmark::DoNotOptimize(prog.predicates().size());
  }
}
BENCHMARK(BM_ParseLargeList);

}  // namespace

BENCHMARK_MAIN();
