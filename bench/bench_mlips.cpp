// Regenerates the paper's §3.3 back-of-the-envelope: the bus bandwidth
// a 2-MLIPS shared-memory machine would need, computed from *measured*
// instructions/inference, references/instruction and cache capture
// rate instead of the paper's round numbers.
//
// Also archives the measured numbers — plus host-side engine
// throughput (simulated instructions/sec and trace-generation
// refs/sec through the chunked sink pipeline) and whether the
// computed-goto interpreter core was selected — to BENCH_engine.json,
// so the emulator's perf trajectory is tracked across PRs alongside
// BENCH_cache.json. Same conventions as bench_micro_cache: written on
// a bare invocation or with --json-out=PATH, suppressed by --no-json.
//
//   --scale small|paper   workload size (default paper)
//   --profile-ops         dump the dynamic (op, next-op) pair ranking
//                         over the four paper benchmarks (the profile
//                         the fused opcode set is derived from,
//                         docs/DESIGN.md §13) and exit
//   --fuse-smoke          run the four paper benchmarks at 1 PE with
//                         fusion on and off, print the golden stats for
//                         both, and exit non-zero if any differ (CI)
#include <chrono>
#include <cstdio>
#include <map>

#include "compiler/instr.h"
#include "harness/reports.h"
#include "harness/runner.h"
#include "trace/chunks.h"

#include "support/cli.h"

namespace {

using namespace rapwam;

/// Host throughput of the emulator front end: best-of-3 qsort run at
/// 8 PEs with a ChunkingSink attached (the generate-once pipeline).
struct EngineRates {
  double sim_instr_per_sec = 0;
  double gen_refs_per_sec = 0;
};

/// One timed 1-PE measurement window of a benchmark with fusion forced
/// on or off, no trace sink attached: the raw interpreter dispatch
/// rate, which is what superinstruction fusion targets (docs/DESIGN.md
/// §13). The window repeats the solve until >=100ms of solve time has
/// accumulated — a single Paper-scale solve is a few ms, far too short
/// to time on its own.
double one_pe_window(Program& prog, const std::string& goal, bool fuse) {
  MachineConfig cfg;
  cfg.num_pes = 1;
  cfg.sizes = bench_area_sizes();
  cfg.fuse = fuse;
  Machine m(prog, cfg);
  u64 instr = 0;
  double dt = 0;
  while (dt < 0.1) {
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = m.solve(goal);
    dt += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    instr += r.stats.instructions;
  }
  return static_cast<double>(instr) / dt;
}

/// Fused-vs-unfused dispatch rate on the 1-PE hot loop, measured on
/// qsort — the same benchmark the 8-PE sim_instr_per_sec figure uses.
/// Trials interleave the two sides (off, on, off, on, ...) so load
/// drift on the host hits both equally; best-of-N per side.
struct FusionRates {
  double fused_instr_per_sec = 0;
  double unfused_instr_per_sec = 0;
  int best_of = 0;
};

FusionRates fusion_rates(BenchScale scale, int trials) {
  BenchProgram bp = bench_program("qsort", scale);
  Program prog;
  prog.consult(bp.source);
  const std::string goal = bp.goal + ".";
  FusionRates out;
  out.best_of = trials;
  for (int t = 0; t < trials; ++t) {
    out.unfused_instr_per_sec =
        std::max(out.unfused_instr_per_sec, one_pe_window(prog, goal, false));
    out.fused_instr_per_sec =
        std::max(out.fused_instr_per_sec, one_pe_window(prog, goal, true));
  }
  return out;
}

EngineRates engine_rates(BenchScale scale) {
  BenchProgram bp = bench_program("qsort", scale);
  double best = 1e300;
  u64 instr = 0, refs = 0;
  for (int trial = 0; trial < 3; ++trial) {
    ChunkingSink sink(/*busy_only=*/true);
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = run_into(bp, 8, /*strip=*/false, &sink);
    double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    best = std::min(best, dt);
    instr = r.stats.instructions;
    refs = sink.take()->counts().total;
  }
  EngineRates out;
  out.sim_instr_per_sec = static_cast<double>(instr) / best;
  out.gen_refs_per_sec = static_cast<double>(refs) / best;
  return out;
}

void emit_json(const std::string& path, const ReportOptions& opt,
               const MlipsNumbers& m, const FusionRates& fr) {
  EngineRates er = engine_rates(opt.scale);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_mlips: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_mlips\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n",
               opt.scale == BenchScale::Small ? "small" : "paper");
  std::fprintf(f, "  \"threaded_dispatch\": %s,\n",
               threaded_dispatch_enabled() ? "true" : "false");
  std::fprintf(f, "  \"instr_per_inference\": %.2f,\n", m.instr_per_inference);
  std::fprintf(f, "  \"refs_per_instr\": %.2f,\n", m.refs_per_instr);
  std::fprintf(f, "  \"bytes_per_inference\": %.1f,\n", m.bytes_per_inference);
  std::fprintf(f, "  \"demand_mb_per_sec\": %.1f,\n", m.demand_mb_per_sec);
  std::fprintf(f, "  \"traffic_ratio_8pe_1024w\": %.4f,\n", m.traffic_ratio);
  std::fprintf(f, "  \"bus_mb_per_sec\": %.1f,\n", m.bus_mb_per_sec);
  std::fprintf(f, "  \"sim_instr_per_sec\": %.0f,\n", er.sim_instr_per_sec);
  std::fprintf(f, "  \"gen_refs_per_sec\": %.0f,\n", er.gen_refs_per_sec);
  std::fprintf(f, "  \"fused_dispatch\": true,\n");
  std::fprintf(f, "  \"fusion_bench\": \"qsort, 1 PE, no sink, best of %d\",\n",
               fr.best_of);
  std::fprintf(f, "  \"sim_instr_per_sec_1pe_unfused\": %.0f,\n",
               fr.unfused_instr_per_sec);
  std::fprintf(f, "  \"sim_instr_per_sec_1pe_fused\": %.0f,\n",
               fr.fused_instr_per_sec);
  std::fprintf(f, "  \"fusion_speedup_1pe\": %.3f\n}\n",
               fr.fused_instr_per_sec / fr.unfused_instr_per_sec);
  std::fclose(f);
  std::printf("host engine: %.2f M simulated instr/s, %.2f M refs/s generated\n",
              er.sim_instr_per_sec / 1e6, er.gen_refs_per_sec / 1e6);
  std::printf("1-PE hot loop: %.2f M instr/s unfused, %.2f M instr/s fused "
              "(%.3fx, best of %d)\n",
              fr.unfused_instr_per_sec / 1e6, fr.fused_instr_per_sec / 1e6,
              fr.fused_instr_per_sec / fr.unfused_instr_per_sec, fr.best_of);
  std::printf("wrote %s\n", path.c_str());
}

/// Runs the four paper benchmarks at 1 PE with the pair profiler on
/// (fusion off, so the ranking is over the raw opcode stream) and
/// prints the merged ranking. This is how the Fuse* opcode set in
/// compiler/instr.h was derived; re-run it when benchmarks change.
void profile_ops(BenchScale scale) {
  std::map<std::pair<Op, Op>, u64> merged;
  u64 total_pairs = 0, total_instr = 0;
  for (const char* name : {"qsort", "deriv", "matrix", "tak"}) {
    BenchProgram bp = bench_program(name, scale);
    Program prog;
    prog.consult(bp.source);
    MachineConfig cfg;
    cfg.num_pes = 1;
    cfg.sizes = bench_area_sizes();
    cfg.fuse = false;
    cfg.profile_ops = true;
    Machine m(prog, cfg);
    RunResult r = m.solve(bp.goal + ".");
    total_instr += r.stats.instructions;
    for (const Machine::OpPair& p : m.op_pair_profile()) {
      merged[{p.first, p.second}] += p.count;
      total_pairs += p.count;
    }
  }
  std::vector<std::pair<std::pair<Op, Op>, u64>> rank(merged.begin(), merged.end());
  std::sort(rank.begin(), rank.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("dynamic contiguous (op, next-op) pairs over qsort+deriv+matrix+tak"
              " (1 PE, %llu instr, %llu pairs):\n",
              static_cast<unsigned long long>(total_instr),
              static_cast<unsigned long long>(total_pairs));
  std::printf("%-24s %-24s %12s %7s\n", "op", "next-op", "count", "share");
  for (std::size_t i = 0; i < rank.size() && i < 40; ++i) {
    std::printf("%-24s %-24s %12llu %6.2f%%\n", op_name(rank[i].first.first),
                op_name(rank[i].first.second),
                static_cast<unsigned long long>(rank[i].second),
                100.0 * static_cast<double>(rank[i].second) /
                    static_cast<double>(total_pairs));
  }
}

/// CI smoke: run every paper benchmark at 1 PE with fusion on and off
/// and print the golden stats for both sides. Any divergence —
/// instructions, cycles, reference counts, solutions, output — is a
/// fusion bug; returns non-zero so CI fails the step.
int fuse_smoke(BenchScale scale) {
  int bad = 0;
  for (const char* name : {"qsort", "deriv", "matrix", "tak"}) {
    BenchProgram bp = bench_program(name, scale);
    Program prog;
    prog.consult(bp.source);
    RunResult r[2];
    for (int fuse = 0; fuse < 2; ++fuse) {
      MachineConfig cfg;
      cfg.num_pes = 1;
      cfg.sizes = bench_area_sizes();
      cfg.fuse = fuse != 0;
      Machine m(prog, cfg);
      r[fuse] = m.solve(bp.goal + ".");
    }
    for (int fuse = 0; fuse < 2; ++fuse)
      std::printf("%-8s %-8s instr=%llu cycles=%llu reads=%llu writes=%llu "
                  "solutions=%zu\n",
                  name, fuse ? "fused" : "unfused",
                  static_cast<unsigned long long>(r[fuse].stats.instructions),
                  static_cast<unsigned long long>(r[fuse].stats.cycles),
                  static_cast<unsigned long long>(r[fuse].stats.refs.reads),
                  static_cast<unsigned long long>(r[fuse].stats.refs.writes),
                  r[fuse].solutions.size());
    bool same = r[0].stats == r[1].stats && r[0].solutions == r[1].solutions &&
                r[0].output == r[1].output;
    if (!same) {
      std::printf("%-8s FUSED/UNFUSED GOLDEN STATS DIVERGE\n", name);
      bad = 1;
    }
  }
  std::puts(bad ? "fuse-smoke: FAIL" : "fuse-smoke: OK (fused == unfused)");
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  if (cli.has("profile-ops")) {
    profile_ops(opt.scale);
    return 0;
  }
  if (cli.has("fuse-smoke")) return fuse_smoke(opt.scale);
  bool bare = argc == 1;
  bool want_json = !cli.has("no-json") && (bare || cli.has("json-out"));
  // Superinstruction fusion only applies to single-PE machines
  // (multi-PE interleaving must match the unfused trace, DESIGN.md
  // §13), so its before/after is measured on the 1-PE hot loop: qsort,
  // no trace sink, best-of-N wall time per side. Measured first, on a
  // quiet process — the 8-PE generate-once library heats the host and
  // compresses the ratio.
  FusionRates fr;
  if (want_json) fr = fusion_rates(opt.scale, /*trials=*/12);
  rapwam::MlipsNumbers m = rapwam::mlips_numbers(opt);
  std::fputs(rapwam::mlips_report(m).str().c_str(), stdout);
  if (want_json) {
    emit_json(cli.get("json-out", "BENCH_engine.json"), opt, m, fr);
  }
  return 0;
}
