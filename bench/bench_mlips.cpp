// Regenerates the paper's §3.3 back-of-the-envelope: the bus bandwidth
// a 2-MLIPS shared-memory machine would need, computed from *measured*
// instructions/inference, references/instruction and cache capture
// rate instead of the paper's round numbers.
//
// Also archives the measured numbers — plus host-side engine
// throughput (simulated instructions/sec and trace-generation
// refs/sec through the chunked sink pipeline) and whether the
// computed-goto interpreter core was selected — to BENCH_engine.json,
// so the emulator's perf trajectory is tracked across PRs alongside
// BENCH_cache.json. Same conventions as bench_micro_cache: written on
// a bare invocation or with --json-out=PATH, suppressed by --no-json.
//
//   --scale small|paper   workload size (default paper)
#include <chrono>
#include <cstdio>

#include "harness/reports.h"
#include "trace/chunks.h"

#include "support/cli.h"

namespace {

using namespace rapwam;

/// Host throughput of the emulator front end: best-of-3 qsort run at
/// 8 PEs with a ChunkingSink attached (the generate-once pipeline).
struct EngineRates {
  double sim_instr_per_sec = 0;
  double gen_refs_per_sec = 0;
};

EngineRates engine_rates(BenchScale scale) {
  BenchProgram bp = bench_program("qsort", scale);
  double best = 1e300;
  u64 instr = 0, refs = 0;
  for (int trial = 0; trial < 3; ++trial) {
    ChunkingSink sink(/*busy_only=*/true);
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = run_into(bp, 8, /*strip=*/false, &sink);
    double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    best = std::min(best, dt);
    instr = r.stats.instructions;
    refs = sink.take()->counts().total;
  }
  EngineRates out;
  out.sim_instr_per_sec = static_cast<double>(instr) / best;
  out.gen_refs_per_sec = static_cast<double>(refs) / best;
  return out;
}

void emit_json(const std::string& path, const ReportOptions& opt,
               const MlipsNumbers& m) {
  EngineRates er = engine_rates(opt.scale);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_mlips: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_mlips\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n",
               opt.scale == BenchScale::Small ? "small" : "paper");
  std::fprintf(f, "  \"threaded_dispatch\": %s,\n",
               threaded_dispatch_enabled() ? "true" : "false");
  std::fprintf(f, "  \"instr_per_inference\": %.2f,\n", m.instr_per_inference);
  std::fprintf(f, "  \"refs_per_instr\": %.2f,\n", m.refs_per_instr);
  std::fprintf(f, "  \"bytes_per_inference\": %.1f,\n", m.bytes_per_inference);
  std::fprintf(f, "  \"demand_mb_per_sec\": %.1f,\n", m.demand_mb_per_sec);
  std::fprintf(f, "  \"traffic_ratio_8pe_1024w\": %.4f,\n", m.traffic_ratio);
  std::fprintf(f, "  \"bus_mb_per_sec\": %.1f,\n", m.bus_mb_per_sec);
  std::fprintf(f, "  \"sim_instr_per_sec\": %.0f,\n", er.sim_instr_per_sec);
  std::fprintf(f, "  \"gen_refs_per_sec\": %.0f\n}\n", er.gen_refs_per_sec);
  std::fclose(f);
  std::printf("host engine: %.2f M simulated instr/s, %.2f M refs/s generated\n",
              er.sim_instr_per_sec / 1e6, er.gen_refs_per_sec / 1e6);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  rapwam::MlipsNumbers m = rapwam::mlips_numbers(opt);
  std::fputs(rapwam::mlips_report(m).str().c_str(), stdout);
  bool bare = argc == 1;
  if (!cli.has("no-json") && (bare || cli.has("json-out"))) {
    emit_json(cli.get("json-out", "BENCH_engine.json"), opt, m);
  }
  return 0;
}
