// Regenerates the paper's §3.3 back-of-the-envelope: the bus bandwidth
// a 2-MLIPS shared-memory machine would need, computed from *measured*
// instructions/inference, references/instruction and cache capture
// rate instead of the paper's round numbers.
//
//   --scale small|paper   workload size (default paper)
#include <cstdio>

#include "harness/reports.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  rapwam::TextTable t = rapwam::mlips_report(opt);
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
