// Extension experiment: shared-memory efficiency under bus contention.
//
// The paper reports traffic ratios and asserts (citing Tick's queueing
// model) that "with a relatively fast bus and an interleaved memory,
// shared memory efficiency can be high". This bench closes the loop:
// it feeds the traffic ratios *measured by our cache simulation* into
// the contention model and prints the resulting PE efficiency and
// aggregate speedup for several bus speeds.
//
//   --scale small|paper   workload size (default paper)
#include <cstdio>

#include "cache/multisim.h"
#include "cache/queueing.h"
#include "harness/runner.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"

using namespace rapwam;

namespace {

double measure_traffic(const BenchProgram& bp, unsigned pes, Protocol proto) {
  BenchRun r = run_parallel(bp, pes, /*want_trace=*/true);
  CacheConfig cfg;
  cfg.protocol = proto;
  cfg.size_words = 1024;
  cfg.line_words = 4;
  cfg.write_allocate = paper_write_allocate(proto, 1024);
  MultiCacheSim sim(cfg, pes);
  sim.replay(r.trace->packed());
  return sim.stats().traffic_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchScale scale = cli.get("scale", "paper") == "small" ? BenchScale::Small
                                                          : BenchScale::Paper;
  BenchProgram bp = bench_program("qsort", scale);

  const double buses[] = {1.0, 0.5, 0.25};  // cycles/word: plain, 2x, 4x interleave

  for (Protocol proto : {Protocol::WriteInBroadcast, Protocol::WriteThrough}) {
    TextTable t("Shared-memory efficiency, qsort, 1024-word " +
                std::string(protocol_name(proto)) + " caches");
    t.header({"PEs", "traffic ratio", "bus s=1.0", "s=0.5", "s=0.25 (interleaved)"});
    for (unsigned pes : {2u, 4u, 8u, 16u}) {
      double tr = measure_traffic(bp, pes, proto);
      std::vector<std::string> row = {std::to_string(pes), fmt(tr, 3)};
      for (double s : buses) {
        BusEstimate e = bus_contention(pes, tr, BusParams{s});
        row.push_back(fmt(e.pe_efficiency, 3) + " (x" + fmt(e.aggregate_speedup, 1) + ")");
      }
      t.row(row);
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
  }
  std::puts(
      "Paper §3.3 (via Tick's model): with a fast bus and interleaved\n"
      "memory, shared-memory efficiency stays high for broadcast caches;\n"
      "write-through traffic saturates the bus and efficiency collapses.");
  return 0;
}
