// Extension experiment: shared-memory efficiency under bus contention.
//
// The paper reports traffic ratios and asserts (citing Tick's queueing
// model) that "with a relatively fast bus and an interleaved memory,
// shared memory efficiency can be high". This bench closes the loop
// twice over: it feeds the traffic ratios *measured by our cache
// simulation* into the analytic contention model, and it *measures*
// contention directly with the event-driven timed replay
// (src/timing/timed_replay.h) on the same traces — printing model and
// measurement side by side per bus speed, plus the full
// timing_report() sweep over the four paper benchmarks.
//
//   --scale small|paper   workload size (default paper)
//   --no-report           skip the per-benchmark timing_report tables
#include <cstdio>

#include "cache/queueing.h"
#include "cache/sweep.h"
#include "harness/reports.h"
#include "harness/runner.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"
#include "timing/timed_replay.h"

using namespace rapwam;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchScale scale = cli.get("scale", "paper") == "small" ? BenchScale::Small
                                                          : BenchScale::Paper;
  BenchProgram bp = bench_program("qsort", scale);

  // One trace per PE count, shared by both protocols and all bus speeds.
  const unsigned pe_counts[] = {2u, 4u, 8u, 16u};
  std::vector<std::vector<u64>> traces;
  for (unsigned pes : pe_counts)
    traces.push_back(run_parallel(bp, pes, /*want_trace=*/true).trace->packed());

  // cycles/word: plain bus, 2x and 4x interleaved memory. The timed
  // replay expresses these as 1 service cycle over 1/2/4 banks.
  const u32 interleaves[] = {1, 2, 4};

  for (Protocol proto : {Protocol::WriteInBroadcast, Protocol::WriteThrough}) {
    TextTable t("Shared-memory efficiency, qsort, 1024-word " +
                std::string(protocol_name(proto)) +
                " caches — analytic model | timed replay (speedup)");
    t.header({"PEs", "traffic ratio", "bus s=1.0", "s=0.5", "s=0.25 (interleaved)"});
    for (std::size_t i = 0; i < std::size(pe_counts); ++i) {
      unsigned pes = pe_counts[i];
      CacheConfig cfg = paper_cache_config(proto);
      double tr = replay_traffic(cfg, pes, traces[i]).traffic_ratio();
      std::vector<std::string> row = {std::to_string(pes), fmt(tr, 3)};
      for (u32 il : interleaves) {
        TimingParams tp{1, 1, il, 4};
        BusEstimate e = bus_contention(pes, tr, BusParams{tp.effective_service()});
        TimedReplay timed(cfg, pes, tp);
        timed.replay(traces[i]);
        row.push_back("x" + fmt(e.aggregate_speedup, 1) + " | x" +
                      fmt(timed.timing().speedup(), 1));
      }
      t.row(row);
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
  }

  if (!cli.has("no-report")) {
    ReportOptions opt;
    opt.scale = scale;
    for (const TextTable& t : timing_report(opt)) {
      std::fputs(t.str().c_str(), stdout);
      std::puts("");
    }
  }

  std::puts(
      "Paper §3.3 (via Tick's model): with a fast bus and interleaved\n"
      "memory, shared-memory efficiency stays high for broadcast caches;\n"
      "write-through traffic saturates the bus and efficiency collapses.\n"
      "The timed replay measures the same effect on the actual traces.");
  return 0;
}
