// Regenerates Table 1 of the paper: Characteristics of RAP-WAM
// Storage Objects. The rows are the same machine-readable data the
// emulator uses to tag every memory reference, so this table is, by
// construction, what the hybrid cache protocol consumes.
#include <cstdio>

#include "harness/reports.h"

int main() {
  rapwam::TextTable t = rapwam::table1_report();
  std::fputs(t.str().c_str(), stdout);
  std::puts("\nPaper: identical rows (architectural table).");
  return 0;
}
