// Regenerates Table 2: Statistics for the Benchmarks Used (8
// processors): instructions executed, references (RAP-WAM and WAM),
// goals actually run in parallel.
//
//   --scale small|paper   workload size (default paper)
//   --pes N               PE count (default 8)
#include <cstdio>

#include "harness/reports.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  opt.table2_pes = static_cast<unsigned>(cli.get_int("pes", 8));
  rapwam::TextTable t = rapwam::table2_report(opt);
  std::fputs(cli.has("csv") ? t.csv().c_str() : t.str().c_str(), stdout);
  std::puts(
      "\nPaper (8 PEs):          deriv    tak      qsort    matrix\n"
      "  Instructions executed 33520    75254    237884   95349\n"
      "  References (RAP-WAM)  85477    178967   502717   96013\n"
      "  References (WAM)      82519    169599   499526   95357\n"
      "  Goals actually in //  97       263      97       24");
  return 0;
}
