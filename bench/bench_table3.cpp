// Regenerates Table 3: Fit of Small Benchmarks to Large Benchmarks —
// sequential copyback traffic ratios at 512/1024-word caches for a
// suite of larger programs (mean Etr, sigma) and the z-scores of the
// small kernels against them.
//
//   --scale small|paper   workload size (default paper)
#include <cstdio>

#include "harness/reports.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  rapwam::Cli cli(argc, argv);
  rapwam::ReportOptions opt;
  opt.scale = cli.get("scale", "paper") == "small" ? rapwam::BenchScale::Small
                                                   : rapwam::BenchScale::Paper;
  rapwam::TextTable t = rapwam::table3_report(opt);
  std::fputs(t.str().c_str(), stdout);
  std::puts(
      "\nPaper:  size   Etr     sigma    z(deriv)  z(tak)  z(qsort)  mean|z|\n"
      "        512    0.164   0.0626   1.1       -1.9    0.83      1.3\n"
      "        1024   0.108   0.0569   2.0       -1.1    1.6       1.6\n"
      "(Large suite substituted — see docs/DESIGN.md §4; compare magnitudes of\n"
      "z-scores: |z| of order 1-2 means the small kernels' sequential\n"
      "locality is typical of larger programs.)");
  return 0;
}
