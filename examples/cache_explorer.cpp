// Trace a benchmark on N simulated PEs, then sweep cache protocols and
// sizes over the trace — an interactive slice of the paper's Figure 4.
//
//   $ ./cache_explorer [--bench qsort] [--pes 4] [--line 4] [--scale small]
#include <cstdio>

#include "cache/sweep.h"
#include "harness/runner.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace rapwam;
  Cli cli(argc, argv);
  std::string bench = cli.get("bench", "qsort");
  unsigned pes = static_cast<unsigned>(cli.get_int("pes", 4));
  if (pes < 1 || pes > 64) {
    std::fprintf(stderr, "error: --pes must be 1..64 (directory holder masks)\n");
    return 1;
  }
  u32 line = static_cast<u32>(cli.get_int("line", 4));
  BenchScale scale = cli.get("scale", "small") == "paper" ? BenchScale::Paper
                                                          : BenchScale::Small;

  BenchProgram bp = bench_program(bench, scale);
  std::printf("tracing %s on %u PEs...\n", bench.c_str(), pes);
  BenchRun run = run_parallel(bp, pes, /*want_trace=*/true);
  std::printf("  %zu busy references captured\n\n", run.trace->size());

  const Protocol protos[] = {Protocol::WriteInBroadcast,
                             Protocol::WriteThroughBroadcast, Protocol::Hybrid,
                             Protocol::WriteThrough, Protocol::Copyback};
  const u32 sizes[] = {64, 256, 1024, 4096};

  ThreadPool pool;
  std::vector<SweepPoint> pts;
  for (Protocol p : protos) {
    for (u32 sz : sizes) {
      SweepPoint sp;
      sp.cfg.protocol = p;
      sp.cfg.size_words = sz;
      sp.cfg.line_words = line;
      sp.cfg.write_allocate = paper_write_allocate(p, sz);
      sp.num_pes = pes;
      sp.trace = &run.trace->packed();
      pts.push_back(sp);
    }
  }
  auto results = run_sweep(pool, pts);

  TextTable t("traffic ratio (bus words / demand words)");
  std::vector<std::string> hdr = {"protocol"};
  for (u32 sz : sizes) hdr.push_back(std::to_string(sz) + "w");
  t.header(hdr);
  std::size_t i = 0;
  for (Protocol p : protos) {
    std::vector<std::string> row = {protocol_name(p)};
    for (u32 sz : sizes) {
      (void)sz;
      row.push_back(fmt(results[i++].stats.traffic_ratio(), 4));
    }
    t.row(row);
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("\nLower is better; copyback ignores coherence (lower bound).");
  return 0;
}
