// Domain example: AND-parallel divide-and-conquer search using the
// bundled Prolog prelude (par_map, msort, numlist). Finds, for a range
// of board sizes, the first N-queens solution — each board size is an
// independent subproblem, so the sweep runs them in parallel.
//
//   $ ./par_search [--pes 8] [--max-n 7]
#include <cstdio>

#include "engine/machine.h"
#include "harness/library.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace rapwam;
  Cli cli(argc, argv);
  unsigned pes = static_cast<unsigned>(cli.get_int("pes", 8));
  long max_n = cli.get_int("max-n", 7);

  Program prog;
  prog.consult(kPreludeSource);
  prog.consult(R"PL(
    % First solution of N-queens via exhaustive permutation search.
    queens(N, Qs) :- numlist(1, N, Ns), place(Ns, [], Qs).
    place([], Qs, Qs).
    place(Un, Safe, Qs) :-
        select(Q, Un, Un1), \+ attack(Q, Safe), place(Un1, [Q|Safe], Qs).
    attack(X, Xs) :- att(X, 1, Xs).
    att(X, N, [Y|_]) :- X =:= Y + N.
    att(X, N, [Y|_]) :- X =:= Y - N.
    att(X, N, [_|Ys]) :- N1 is N + 1, att(X, N1, Ys).

    % One subproblem: solve size N, pair it with its board.
    solve(N, N-Qs) :- queens(N, Qs), !.

    % The sweep: board sizes are independent => parallel map.
    sweep(Lo, Hi, Results) :-
        numlist(Lo, Hi, Sizes),
        par_map(solve, Sizes, Results).
  )PL");

  MachineConfig cfg;
  cfg.num_pes = pes;
  Machine m(prog, cfg);

  std::string goal = "sweep(4, " + std::to_string(max_n) + ", R).";
  std::printf("solving queens(4..%ld) on %u PEs...\n", max_n, pes);
  RunResult r = m.solve(goal);
  if (!r.success) {
    std::puts("no solutions (unexpected)");
    return 1;
  }
  std::printf("%s\n", r.solutions[0].bindings[0].second.c_str());
  std::printf("\ncycles: %llu, goals stolen: %llu, parcalls: %llu\n",
              static_cast<unsigned long long>(r.stats.cycles),
              static_cast<unsigned long long>(r.stats.goals_stolen),
              static_cast<unsigned long long>(r.stats.parcalls));

  // Compare against a single PE to show the win.
  MachineConfig cfg1 = cfg;
  cfg1.num_pes = 1;
  Program prog1;
  prog1.consult(kPreludeSource);
  // Re-consult the program text (machines own their compiled code).
  Machine m1(prog, cfg1);
  RunResult r1 = m1.solve(goal);
  std::printf("1-PE cycles: %llu  =>  speedup %.2fx\n",
              static_cast<unsigned long long>(r1.stats.cycles),
              static_cast<double>(r1.stats.cycles) /
                  static_cast<double>(r.stats.cycles));
  return 0;
}
