// The paper's motivating workload: symbolic differentiation with
// AND-parallel recursion. Runs `deriv` over a generated expression on
// 1..N simulated PEs and prints the work/speedup series (a miniature
// Figure 2).
//
//   $ ./parallel_deriv [--nodes 400] [--max-pes 16]
#include <cstdio>

#include "harness/runner.h"
#include "support/cli.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace rapwam;
  Cli cli(argc, argv);
  int nodes = static_cast<int>(cli.get_int("nodes", 400));
  unsigned max_pes = static_cast<unsigned>(cli.get_int("max-pes", 16));

  std::string src = bench_program("deriv", BenchScale::Small).source;
  BenchProgram bp{"deriv", src, "d(" + gen_deriv_expr(nodes, 42) + ",x,D)"};

  BenchRun wam = run_wam(bp, false);
  double wam_work = static_cast<double>(wam.result.stats.work_refs());
  double wam_cycles = static_cast<double>(wam.result.stats.cycles);
  std::printf("deriv over %d operators; plain WAM: %llu work refs, %llu cycles\n\n",
              nodes, static_cast<unsigned long long>(wam.result.stats.work_refs()),
              static_cast<unsigned long long>(wam.result.stats.cycles));

  TextTable t;
  t.header({"PEs", "work (% of WAM)", "speedup", "goals stolen"});
  for (unsigned pes = 1; pes <= max_pes; pes *= 2) {
    BenchRun r = run_parallel(bp, pes, false);
    const RunStats& s = r.result.stats;
    t.row({std::to_string(pes),
           fmt_pct(static_cast<double>(s.work_refs()) / wam_work, 1),
           fmt(wam_cycles / static_cast<double>(s.cycles), 2),
           std::to_string(s.goals_stolen)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::puts("\nNote how total work stays flat while cycles drop: the paper's");
  std::puts("claim that AND-parallelism adds bounded overhead regardless of");
  std::puts("the PE count.");
  return 0;
}
