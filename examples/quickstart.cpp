// Quickstart: load an annotated Prolog program, run queries on a
// multi-PE RAP-WAM machine, inspect solutions and statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "engine/machine.h"

int main() {
  using namespace rapwam;

  // 1. A program: classic family relations plus one AND-parallel rule.
  //    `&` runs both goals in parallel (they share no unbound vars).
  Program prog;
  prog.consult(R"PL(
    parent(tom, bob).    parent(tom, liz).
    parent(bob, ann).    parent(bob, pat).

    grandparent(G, C) :- parent(G, P), parent(P, C).

    % Check two pedigrees at once, in parallel.
    both_grandchildren(A, B) :-
        grandparent(tom, A) & grandparent(tom, B).
  )PL");

  // 2. A machine with 4 simulated PEs.
  MachineConfig cfg;
  cfg.num_pes = 4;
  cfg.max_solutions = 10;
  Machine m(prog, cfg);

  // 3. Enumerate solutions.
  RunResult r = m.solve("grandparent(tom, X).");
  std::printf("grandparent(tom, X) has %zu solutions:\n", r.solutions.size());
  for (const Solution& s : r.solutions)
    for (auto& [name, value] : s.bindings)
      std::printf("  %s = %s\n", name.c_str(), value.c_str());

  // 4. Run the parallel rule and look at the machine statistics.
  RunResult p = m.solve("both_grandchildren(A, B).");
  std::printf("\nboth_grandchildren: A=%s B=%s\n",
              p.solutions[0].bindings[0].second.c_str(),
              p.solutions[0].bindings[1].second.c_str());
  std::printf("  instructions: %llu\n",
              static_cast<unsigned long long>(p.stats.instructions));
  std::printf("  data references: %llu (%llu while working)\n",
              static_cast<unsigned long long>(p.stats.refs.total),
              static_cast<unsigned long long>(p.stats.work_refs()));
  std::printf("  parcalls: %llu, goals stolen: %llu\n",
              static_cast<unsigned long long>(p.stats.parcalls),
              static_cast<unsigned long long>(p.stats.goals_stolen));
  return 0;
}
