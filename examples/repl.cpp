// Interactive RAP-WAM Prolog top level.
//
//   $ ./repl [--pes 4] [file.pl]
//
// Enter clauses to assert them, or `?- Goal.` to run a query.
// `halt.` exits. Parallel conjunctions (`&`) and CGEs are supported.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/machine.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace rapwam;
  Cli cli(argc, argv);
  unsigned pes = static_cast<unsigned>(cli.get_int("pes", 4));

  Program prog;
  prog.consult("'$repl_init'.");  // ensure at least one predicate exists
  for (const std::string& path : cli.positional()) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    try {
      prog.consult(ss.str());
      std::printf("%% consulted %s\n", path.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.max_solutions = 10;

  std::printf("RAP-WAM Prolog (%u PEs). `?- goal.` queries, clauses assert, "
              "`halt.` quits.\n", pes);
  std::string line;
  for (;;) {
    std::printf("| ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "halt." || line == "halt") break;
    try {
      if (line.rfind("?-", 0) == 0) {
        std::string goal = line.substr(2);
        Machine m(prog, cfg);
        RunResult r = m.solve(goal);
        if (!r.output.empty()) std::fputs(r.output.c_str(), stdout);
        if (!r.success) {
          std::puts("no.");
          continue;
        }
        std::size_t n = 0;
        for (const Solution& s : r.solutions) {
          if (s.bindings.empty()) {
            std::puts("yes.");
            break;
          }
          std::printf("solution %zu:", ++n);
          for (auto& [name, value] : s.bindings)
            std::printf(" %s = %s", name.c_str(), value.c_str());
          std::puts("");
        }
        if (r.solutions.size() >= cfg.max_solutions)
          std::puts("% (solution limit reached)");
      } else {
        prog.consult(line);
        std::puts("% asserted.");
      }
    } catch (const Error& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
