#include "cache/cache.h"

#include <algorithm>
#include <bit>

namespace rapwam {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  fa_ = cfg.fully_associative();
  u32 nsets = fa_ ? 1 : cfg.num_sets();
  set_cap_ = fa_ ? cfg.num_lines() : cfg.ways;
  if (nsets == 0) nsets = 1;
  if (set_cap_ == 0) set_cap_ = 1;
  slots_.resize(static_cast<std::size_t>(nsets) * set_cap_);
  sets_.resize(nsets);
  for (u32 s = 0; s < nsets; ++s) {
    u32 base = s * set_cap_;
    sets_[s].free = base;
    for (u32 k = 0; k < set_cap_; ++k)
      slots_[base + k].next = (k + 1 < set_cap_) ? base + k + 1 : kNil;
  }
  idx_.init(slots_.size());
}

void Cache::list_unlink(SetList& s, u32 n) {
  Slot& sl = slots_[n];
  (sl.prev == kNil ? s.head : slots_[sl.prev].next) = sl.next;
  (sl.next == kNil ? s.tail : slots_[sl.next].prev) = sl.prev;
}

void Cache::list_push_front(SetList& s, u32 n) {
  slots_[n].prev = kNil;
  slots_[n].next = s.head;
  if (s.head != kNil)
    slots_[s.head].prev = n;
  else
    s.tail = n;
  s.head = n;
}

Line* Cache::lookup(u64 tag) {
  const u32* p = idx_.find(tag);
  if (!p) return nullptr;
  u32 n = *p;
  SetList& s = sets_[set_of(tag)];
  if (s.head != n) {  // move to front
    list_unlink(s, n);
    list_push_front(s, n);
  }
  return &slots_[n].line;
}

Cache::Evicted Cache::insert(u64 tag, LineState state) {
  RW_CHECK(idx_.find(tag) == nullptr, "cache insert of present line");
  SetList& s = sets_[set_of(tag)];
  Evicted ev;
  u32 n;
  if (s.free != kNil) {
    n = s.free;
    s.free = slots_[n].next;
  } else {  // set full: displace the LRU line
    n = s.tail;
    ev.valid = true;
    ev.line = slots_[n].line;
    idx_.erase(ev.line.tag);
    list_unlink(s, n);
    --size_;
  }
  slots_[n].line = Line{tag, state};
  list_push_front(s, n);
  idx_.upsert(tag) = n;
  ++size_;
  return ev;
}

void Cache::invalidate(u64 tag) {
  const u32* p = idx_.find(tag);
  if (!p) return;
  u32 n = *p;
  SetList& s = sets_[set_of(tag)];
  list_unlink(s, n);
  slots_[n].next = s.free;
  s.free = n;
  idx_.erase(tag);
  --size_;
}

std::vector<Line> Cache::lines() const {
  std::vector<Line> out;
  out.reserve(size_);
  for (const SetList& s : sets_)
    for (u32 n = s.head; n != kNil; n = slots_[n].next) out.push_back(slots_[n].line);
  return out;
}

}  // namespace rapwam
