#include "cache/cache.h"

namespace rapwam {

Line* Cache::lookup(u64 tag) {
  Set& st = sets_[set_of(tag)];
  auto it = st.map.find(tag);
  if (it == st.map.end()) return nullptr;
  st.lru.splice(st.lru.begin(), st.lru, it->second);  // move to front
  return &*it->second;
}

Line* Cache::probe(u64 tag) {
  Set& st = sets_[set_of(tag)];
  auto it = st.map.find(tag);
  return it == st.map.end() ? nullptr : &*it->second;
}

Cache::Evicted Cache::insert(u64 tag, LineState state) {
  Set& st = sets_[set_of(tag)];
  RW_CHECK(st.map.find(tag) == st.map.end(), "cache insert of present line");
  std::size_t capacity =
      cfg_.fully_associative() ? cfg_.num_lines() : cfg_.ways;
  Evicted ev;
  if (st.lru.size() >= capacity) {
    ev.valid = true;
    ev.line = st.lru.back();
    st.map.erase(st.lru.back().tag);
    st.lru.pop_back();
    --size_;
  }
  st.lru.push_front(Line{tag, state});
  st.map[tag] = st.lru.begin();
  ++size_;
  return ev;
}

void Cache::invalidate(u64 tag) {
  Set& st = sets_[set_of(tag)];
  auto it = st.map.find(tag);
  if (it == st.map.end()) return;
  st.lru.erase(it->second);
  st.map.erase(it);
  --size_;
}

}  // namespace rapwam
