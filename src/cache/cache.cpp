#include "cache/cache.h"

#include <algorithm>
#include <bit>

namespace rapwam {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  fa_ = cfg.fully_associative();
  u32 nsets = fa_ ? 1 : cfg.num_sets();
  set_cap_ = fa_ ? cfg.num_lines() : cfg.ways;
  if (nsets == 0) nsets = 1;
  if (set_cap_ == 0) set_cap_ = 1;
  slots_.resize(static_cast<std::size_t>(nsets) * set_cap_);
  sets_.resize(nsets);
  for (u32 s = 0; s < nsets; ++s) {
    u32 base = s * set_cap_;
    sets_[s].free = base;
    for (u32 k = 0; k < set_cap_; ++k)
      slots_[base + k].next = (k + 1 < set_cap_) ? base + k + 1 : kNil;
  }
  idx_.init(slots_.size());
}

void Cache::list_unlink(SetList& s, u32 n) {
  Slot& sl = slots_[n];
  (sl.prev == kNil ? s.head : slots_[sl.prev].next) = sl.next;
  (sl.next == kNil ? s.tail : slots_[sl.next].prev) = sl.prev;
}

void Cache::list_push_front(SetList& s, u32 n) {
  slots_[n].prev = kNil;
  slots_[n].next = s.head;
  if (s.head != kNil)
    slots_[s.head].prev = n;
  else
    s.tail = n;
  s.head = n;
}

Line* Cache::lookup(u64 tag) {
  const u32* p = idx_.find(tag);
  if (!p) return nullptr;
  u32 n = *p;
  SetList& s = sets_[set_of(tag)];
  if (s.head != n) {  // move to front
    list_unlink(s, n);
    list_push_front(s, n);
  }
  return &slots_[n].line;
}

Cache::Evicted Cache::insert(u64 tag, LineState state) {
  RW_CHECK(idx_.find(tag) == nullptr, "cache insert of present line");
  SetList& s = sets_[set_of(tag)];
  Evicted ev;
  u32 n;
  if (s.free != kNil) {
    n = s.free;
    s.free = slots_[n].next;
  } else {  // set full: displace the LRU line
    n = s.tail;
    ev.valid = true;
    ev.line = slots_[n].line;
    idx_.erase(ev.line.tag);
    list_unlink(s, n);
    --size_;
  }
  slots_[n].line = Line{tag, state};
  list_push_front(s, n);
  idx_.upsert(tag) = n;
  ++size_;
  return ev;
}

void Cache::invalidate(u64 tag) {
  const u32* p = idx_.find(tag);
  if (!p) return;
  u32 n = *p;
  SetList& s = sets_[set_of(tag)];
  list_unlink(s, n);
  slots_[n].next = s.free;
  s.free = n;
  idx_.erase(tag);
  --size_;
}

void Cache::save_state(ByteWriter& w) const {
  w.put_u64(sets_.size());
  for (const SetList& s : sets_) {
    u64 count = 0;
    for (u32 n = s.head; n != kNil; n = slots_[n].next) ++count;
    w.put_u64(count);
    for (u32 n = s.head; n != kNil; n = slots_[n].next) {
      w.put_u64(slots_[n].line.tag);
      w.put_u8(static_cast<u8>(slots_[n].line.state));
    }
  }
}

void Cache::restore_state(ByteReader& r) {
  RW_CHECK(size_ == 0, "cache restore into a non-empty cache");
  u64 nsets = r.get_u64();
  if (nsets != sets_.size())
    fail("checkpoint cache: set count " + std::to_string(nsets) +
         " does not match the configured " + std::to_string(sets_.size()));
  std::vector<Line> set_lines;
  for (std::size_t si = 0; si < sets_.size(); ++si) {
    u64 count = r.get_u64();
    if (count > set_cap_)
      fail("checkpoint cache: set " + std::to_string(si) + " holds " +
           std::to_string(count) + " lines, capacity " +
           std::to_string(set_cap_));
    set_lines.clear();
    for (u64 k = 0; k < count; ++k) {
      u64 tag = r.get_u64();
      u8 st = r.get_u8();
      if (st > static_cast<u8>(LineState::Dirty))
        fail("checkpoint cache: invalid line state " + std::to_string(st));
      if (set_of(tag) != si)
        fail("checkpoint cache: tag in the wrong set");
      if (idx_.find(tag) != nullptr)
        fail("checkpoint cache: duplicate tag");
      set_lines.push_back(Line{tag, static_cast<LineState>(st)});
      // Reserve the membership early so the duplicate check above sees
      // tags from this set too; the real insert below overwrites it.
      idx_.upsert(tag) = 0;
    }
    for (const Line& l : set_lines) idx_.erase(l.tag);
    // Insert LRU-first: each insert pushes to the MRU end, so the
    // serialized MRU→LRU order is reproduced exactly. The set cannot
    // overflow (count <= set_cap_), so no eviction fires.
    for (std::size_t k = set_lines.size(); k-- > 0;) {
      Evicted ev = insert(set_lines[k].tag, set_lines[k].state);
      RW_CHECK(!ev.valid, "cache restore evicted a line");
    }
  }
}

std::vector<Line> Cache::lines() const {
  std::vector<Line> out;
  out.reserve(size_);
  for (const SetList& s : sets_)
    for (u32 n = s.head; n != kNil; n = slots_[n].next) out.push_back(slots_[n].line);
  return out;
}

}  // namespace rapwam
