// One PE's cache: perfect-LRU replacement, parameterised line size and
// associativity. The paper's model is fully associative (ways == 0);
// set-associative configurations exist for the associativity ablation.
//
// Lines carry a MESI-like state; the protocol logic in MultiCacheSim
// decides transitions and bus traffic. The cache itself only manages
// lookup, insertion and LRU eviction.
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "cache/config.h"

namespace rapwam {

enum class LineState : u8 {
  Invalid,
  Shared,     ///< clean, possibly in other caches
  Exclusive,  ///< clean, only copy
  Dirty,      ///< modified, only valid copy
};

struct Line {
  u64 tag = 0;  ///< line address (addr / line_words)
  LineState state = LineState::Invalid;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg)
      : cfg_(cfg), sets_(cfg.fully_associative() ? 1 : cfg.num_sets()) {}

  /// Finds the line containing `tag`; touches LRU when found.
  Line* lookup(u64 tag);
  /// Finds without touching the LRU order (snoops from other PEs).
  Line* probe(u64 tag);

  /// Inserts `tag` (must not be present); returns an evicted line by
  /// value if a valid line had to be displaced.
  struct Evicted {
    bool valid = false;
    Line line;
  };
  Evicted insert(u64 tag, LineState st);

  void invalidate(u64 tag);

  std::size_t size() const { return size_; }
  const CacheConfig& config() const { return cfg_; }

  /// Snapshot of all valid lines (tests, invariant checking).
  std::vector<Line> lines() const {
    std::vector<Line> out;
    out.reserve(size_);
    for (const Set& st : sets_) out.insert(out.end(), st.lru.begin(), st.lru.end());
    return out;
  }

 private:
  std::size_t set_of(u64 tag) const {
    return cfg_.fully_associative() ? 0 : tag % cfg_.num_sets();
  }

  struct Set {
    std::list<Line> lru;  // front = most recent
    std::unordered_map<u64, std::list<Line>::iterator> map;
  };
  CacheConfig cfg_;
  std::vector<Set> sets_;
  std::size_t size_ = 0;
};

}  // namespace rapwam
