// One PE's cache: perfect-LRU replacement, parameterised line size and
// associativity. The paper's model is fully associative (ways == 0);
// set-associative configurations exist for the associativity ablation.
//
// Lines carry a MESI-like state; the protocol logic in MultiCacheSim
// decides transitions and bus traffic. The cache itself only manages
// lookup, insertion and LRU eviction.
//
// Storage is a flat, cache-friendly layout (docs/DESIGN.md §6): all
// Line slots live in one contiguous pool, LRU order is an intrusive
// doubly-linked list of u32 slot indices (O(1) touch/evict), and tag
// lookup goes through a single open-addressed hash index over the
// whole pool (FlatTagMap: linear probing, backward-shift deletion,
// load factor kept <= 1/2). This replaces the pointer-chasing
// std::list + unordered_map-of-iterators structure: no per-line
// allocation, no iterator indirection, and the hot lookup path
// touches two small arrays. Line pointers returned by lookup/probe
// stay valid for the life of the Cache (the pool never reallocates).
#pragma once

#include <vector>

#include "cache/config.h"
#include "support/bytes.h"
#include "support/flat_table.h"

namespace rapwam {

enum class LineState : u8 {
  Invalid,
  Shared,     ///< clean, possibly in other caches
  Exclusive,  ///< clean, only copy
  Dirty,      ///< modified, only valid copy
};

struct Line {
  u64 tag = 0;  ///< line address (addr / line_words)
  LineState state = LineState::Invalid;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Finds the line containing `tag`; touches LRU when found.
  Line* lookup(u64 tag);
  /// Finds without touching the LRU order (snoops from other PEs).
  /// The const overload supports read-only queries from const callers.
  Line* probe(u64 tag) {
    const u32* n = idx_.find(tag);
    return n ? &slots_[*n].line : nullptr;
  }
  const Line* probe(u64 tag) const {
    const u32* n = idx_.find(tag);
    return n ? &slots_[*n].line : nullptr;
  }

  /// Inserts `tag` (must not be present); returns an evicted line by
  /// value if a valid line had to be displaced.
  struct Evicted {
    bool valid = false;
    Line line;
  };
  Evicted insert(u64 tag, LineState st);

  void invalidate(u64 tag);

  std::size_t size() const { return size_; }
  const CacheConfig& config() const { return cfg_; }

  /// Snapshot of all valid lines (tests, invariant checking),
  /// most-recently-used first within each set.
  std::vector<Line> lines() const;

  /// Checkpoint serialization (docs/DESIGN.md §12): the *semantic*
  /// state — per-set (tag, state) lists in MRU→LRU order. Physical
  /// slot indices, free-list order and hash layout are rebuilt by
  /// restore_state and are unobservable (lookup/eviction behaviour
  /// depends only on membership and LRU order), so a restored cache
  /// replays bit-identically to the original.
  void save_state(ByteWriter& w) const;
  /// Rebuilds from a save_state stream. The cache must be freshly
  /// constructed (empty) with the same configuration; throws Error on
  /// any malformed input (bad counts, out-of-set tags, duplicate tags,
  /// invalid line states) before trusting a single record.
  void restore_state(ByteReader& r);

 private:
  static constexpr u32 kNil = 0xFFFFFFFFu;

  struct Slot {
    Line line;
    u32 prev = kNil;  ///< towards MRU; kNil at list head
    u32 next = kNil;  ///< towards LRU; doubles as free-list link
  };
  struct SetList {
    u32 head = kNil;  ///< most recently used
    u32 tail = kNil;  ///< least recently used (eviction victim)
    u32 free = kNil;  ///< singly-linked free slots (via Slot::next)
  };

  std::size_t set_of(u64 tag) const { return fa_ ? 0 : tag % sets_.size(); }

  void list_unlink(SetList& s, u32 n);
  void list_push_front(SetList& s, u32 n);

  CacheConfig cfg_;
  bool fa_ = true;          ///< fully associative (single set)
  u32 set_cap_ = 0;         ///< line slots per set
  std::vector<Slot> slots_; ///< contiguous pool: set s owns [s*cap, (s+1)*cap)
  std::vector<SetList> sets_;
  FlatTagMap<u32> idx_;     ///< tag -> slot index over the whole pool
  std::size_t size_ = 0;
};

}  // namespace rapwam
