// Cache simulation configuration: coherency protocol, geometry and
// allocation policy — the knobs the paper sweeps in Figure 4.
#pragma once

#include <string>

#include "support/common.h"

namespace rapwam {

/// Coherency protocols simulated (paper §3.1).
enum class Protocol : u8 {
  WriteThrough,      ///< conventional coherent write-through (invalidate)
  WriteInBroadcast,  ///< distributed broadcast, write-invalidate, copy-back
  WriteThroughBroadcast,  ///< distributed broadcast, write-update
  Hybrid,            ///< tag-driven: global data write-through, local copy-back
  Copyback,          ///< non-coherent copy-back (sequential baseline, Table 3)
};

std::string protocol_name(Protocol p);

/// Inverse of protocol_name plus the short CLI spellings used by the
/// tools and benches ("wt", "broadcast", "update", ...). Throws on an
/// unknown name, listing the accepted spellings.
Protocol protocol_from_name(const std::string& s);

/// Validates a PE count against the simulator's per-PE directory masks
/// (64-bit holder masks => 1..64 PEs). Returns `pes` so call sites can
/// validate inline.
unsigned check_pes(unsigned pes);

struct CacheConfig {
  Protocol protocol = Protocol::WriteInBroadcast;
  u32 size_words = 1024;     ///< total capacity per PE cache
  u32 line_words = 4;        ///< four-word lines throughout the paper
  bool write_allocate = true;
  /// Set associativity; 0 = fully associative (the paper's model).
  /// Real machines of the era were direct-mapped or 2/4-way — the
  /// associativity ablation quantifies how idealised the paper's
  /// fully-associative perfect-LRU assumption is.
  u32 ways = 0;

  u32 num_lines() const { return size_words / line_words; }
  u32 num_sets() const {
    u32 w = (ways == 0) ? num_lines() : ways;
    return num_lines() / w;
  }
  bool fully_associative() const { return ways == 0 || ways >= num_lines(); }
};

/// The paper's Figure-4 policy: no-write-allocate for small caches,
/// write-allocate from 512 words up (hybrid switches at 1024).
inline bool paper_write_allocate(Protocol p, u32 size_words) {
  u32 threshold = (p == Protocol::Hybrid) ? 1024 : 512;
  return size_words >= threshold;
}

/// The paper's standard measurement point — 4-word lines, Figure-4
/// allocation policy — shared by the reports and benches that quote
/// "1024-word caches" numbers.
inline CacheConfig paper_cache_config(Protocol p, u32 size_words = 1024) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = size_words;
  cfg.line_words = 4;
  cfg.write_allocate = paper_write_allocate(p, size_words);
  return cfg;
}

}  // namespace rapwam
