// Cache simulation configuration: coherency protocol, geometry and
// allocation policy — the knobs the paper sweeps in Figure 4.
#pragma once

#include <string>

#include "support/common.h"

namespace rapwam {

/// Coherency protocols simulated (paper §3.1).
enum class Protocol : u8 {
  WriteThrough,      ///< conventional coherent write-through (invalidate)
  WriteInBroadcast,  ///< distributed broadcast, write-invalidate, copy-back
  WriteThroughBroadcast,  ///< distributed broadcast, write-update
  Hybrid,            ///< tag-driven: global data write-through, local copy-back
  Copyback,          ///< non-coherent copy-back (sequential baseline, Table 3)
};

std::string protocol_name(Protocol p);

/// Inverse of protocol_name plus the short CLI spellings used by the
/// tools and benches ("wt", "broadcast", "update", ...). Throws on an
/// unknown name, listing the accepted spellings.
Protocol protocol_from_name(const std::string& s);

/// Hard cap on the simulator's PE count. Below 65 PEs the sharing
/// directory uses flat u64 masks (the zero-cost fast path); above, the
/// multi-word PeSet representation (cache/peset.h, docs/DESIGN.md §11)
/// carries it to this limit. Note the trace *format* caps lower — a
/// packed MemRef has 8 PE-id bits (trace/memref.h, kMaxTracePes) — so
/// only traces of up to kMaxTracePes PEs can drive a simulator this
/// large.
inline constexpr unsigned kMaxPes = 1024;

/// Validates a PE count against the simulator's directory limit
/// (1..kMaxPes). Returns `pes` so call sites can validate inline.
unsigned check_pes(unsigned pes);

/// Optional shared second-level cache between the snooping bus and
/// memory (docs/DESIGN.md §9). The paper models a single flat private
/// cache per PE; every machine that ran this style of system at scale
/// had a deeper hierarchy, and the L2 opens a new sweep dimension on
/// top of the Figure-4 apparatus. size_words == 0 (the default) means
/// no L2 — the flat paper model, bit-identical to the pre-hierarchy
/// simulator.
struct L2Config {
  /// How the L2 relates to the private L1s above it.
  enum class Inclusion : u8 {
    /// Every valid L1 line is present in the L2; evicting an L2 line
    /// back-invalidates it from all L1s (dirty L1 data joins the
    /// memory writeback). The directory can then filter snoops with
    /// L2-resident state only.
    Inclusive,
    /// L1 and L2 contents are independent; the L2 never touches L1
    /// state, so bus-side traffic is identical to the flat model.
    NonInclusive,
  };

  u32 size_words = 0;  ///< total L2 capacity; 0 = no L2 (flat model)
  u32 ways = 8;        ///< set associativity; 0 = fully associative
  Inclusion inclusion = Inclusion::Inclusive;
  /// Extra PE wait cycles for a demand fill served by the L2 (on top
  /// of the bus transfer); a fill that misses to memory pays
  /// TimingParams::mem_extra_cycles instead.
  u32 hit_extra_cycles = 0;

  bool enabled() const { return size_words > 0; }
  friend bool operator==(const L2Config&, const L2Config&) = default;
};

std::string inclusion_name(L2Config::Inclusion inc);

struct CacheConfig {
  Protocol protocol = Protocol::WriteInBroadcast;
  u32 size_words = 1024;     ///< total capacity per PE cache
  u32 line_words = 4;        ///< four-word lines throughout the paper
  bool write_allocate = true;
  /// Set associativity; 0 = fully associative (the paper's model).
  /// Real machines of the era were direct-mapped or 2/4-way — the
  /// associativity ablation quantifies how idealised the paper's
  /// fully-associative perfect-LRU assumption is.
  u32 ways = 0;
  /// Shared L2 below the bus; disabled by default (paper's flat model).
  L2Config l2;

  u32 num_lines() const { return size_words / line_words; }
  u32 num_sets() const {
    u32 w = (ways == 0) ? num_lines() : ways;
    return num_lines() / w;
  }
  bool fully_associative() const { return ways == 0 || ways >= num_lines(); }
};

/// The paper's Figure-4 policy: no-write-allocate for small caches,
/// write-allocate from 512 words up (hybrid switches at 1024).
inline bool paper_write_allocate(Protocol p, u32 size_words) {
  u32 threshold = (p == Protocol::Hybrid) ? 1024 : 512;
  return size_words >= threshold;
}

/// The paper's standard measurement point — 4-word lines, Figure-4
/// allocation policy — shared by the reports and benches that quote
/// "1024-word caches" numbers.
inline CacheConfig paper_cache_config(Protocol p, u32 size_words = 1024) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = size_words;
  cfg.line_words = 4;
  cfg.write_allocate = paper_write_allocate(p, size_words);
  return cfg;
}

/// The standard hierarchy measurement point — the paper point plus a
/// 4096-word 8-way shared L2 with a 2-cycle hit latency — shared by
/// the golden corpus and bench_micro_cache so they keep describing the
/// same configuration. Pair its hit_extra_cycles with a larger
/// TimingParams::mem_extra_cycles when timing it, or the L2 would look
/// slower than memory.
inline CacheConfig paper_hier_config(
    Protocol p = Protocol::WriteInBroadcast,
    L2Config::Inclusion inc = L2Config::Inclusion::Inclusive) {
  CacheConfig cfg = paper_cache_config(p, 1024);
  cfg.l2.size_words = 4096;
  cfg.l2.ways = 8;
  cfg.l2.inclusion = inc;
  cfg.l2.hit_extra_cycles = 2;
  return cfg;
}

}  // namespace rapwam
