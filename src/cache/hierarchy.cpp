#include "cache/hierarchy.h"

namespace rapwam {

HierCacheSim::HierCacheSim(const CacheConfig& cfg, unsigned num_pes, DirRep rep)
    : MultiCacheSim(cfg, num_pes, rep) {
  if (!cfg.l2.enabled()) return;
  RW_CHECK(cfg.l2.size_words % cfg.line_words == 0,
           "L2 size must be a multiple of the (shared) line size");
  CacheConfig l2cfg;
  l2cfg.size_words = cfg.l2.size_words;
  l2cfg.line_words = cfg.line_words;
  l2cfg.ways = cfg.l2.ways;
  RW_CHECK(l2cfg.ways == 0 || l2cfg.num_lines() % l2cfg.ways == 0,
           "L2 line count must be a multiple of its associativity");
  RW_CHECK(l2cfg.num_lines() >= 1, "L2 must hold at least one line");
  inclusive_ = cfg.l2.inclusion == L2Config::Inclusion::Inclusive;
  l2_.emplace(l2cfg);
}

template <void (MultiCacheSim::*Handler)(const MemRef&)>
void HierCacheSim::hier_access(const MemRef& r) {
  // Run the unchanged flat handler, then route its memory-side words
  // through the L2. The counter deltas identify the transaction: at
  // most one of fetch/flush (the miss supply), plus word writes
  // (write-through / update) and a dirty L1 eviction, all in the same
  // reference.
  u64 f0 = stats_.fetch_words, fl0 = stats_.flush_words,
      wb0 = stats_.writeback_words,
      w0 = stats_.writethrough_words + stats_.update_words;
  last_evict_dirty_ = false;
  count_ref(r);
  (this->*Handler)(r);
  l2_after_access(tag_of(r.addr), stats_.fetch_words - f0,
                  stats_.flush_words - fl0, stats_.writeback_words - wb0,
                  stats_.writethrough_words + stats_.update_words - w0);
}

template <void (MultiCacheSim::*Handler)(const MemRef&)>
void HierCacheSim::hier_replay_loop(const u64* packed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    hier_access<Handler>(MemRef::unpack(packed[i]));
}

template <typename E>
void HierCacheSim::hier_access_dispatch(const MemRef& r) {
  switch (cfg_.protocol) {
    case Protocol::WriteThrough:
      hier_access<&HierCacheSim::access_write_through<E>>(r);
      break;
    case Protocol::Copyback:
      hier_access<&HierCacheSim::access_copyback<E>>(r);
      break;
    case Protocol::WriteInBroadcast:
      hier_access<&HierCacheSim::access_write_in_broadcast<E>>(r);
      break;
    case Protocol::WriteThroughBroadcast:
      hier_access<&HierCacheSim::access_write_update_broadcast<E>>(r);
      break;
    case Protocol::Hybrid:
      hier_access<&HierCacheSim::access_hybrid<E>>(r);
      break;
  }
}

void HierCacheSim::access(const MemRef& r) {
  if (!l2_) {
    MultiCacheSim::access(r);
    return;
  }
  if (wide_) hier_access_dispatch<WideDirEntry>(r);
  else hier_access_dispatch<DirEntry>(r);
}

StepOutcome HierCacheSim::step(const MemRef& r) {
  if (!l2_) return MultiCacheSim::step(r);
  const TrafficStats before = stats_;
  access(r);
  StepOutcome o;
  o.miss = stats_.misses != before.misses;
  u64 fetch = stats_.fetch_words - before.fetch_words;
  u64 flush = stats_.flush_words - before.flush_words;
  o.bus_words = stats_.bus_words - before.bus_words;
  o.demand_words = fetch + flush;
  // Back-invalidation broadcasts and flushes land here: fire-and-forget
  // from the referencing PE's point of view, like evict writebacks.
  o.posted_words = o.bus_words - o.demand_words;
  o.invalidations = static_cast<u32>(stats_.invalidations - before.invalidations);
  o.supplier = flush ? StepOutcome::Supplier::Cache
               : fetch ? (stats_.l2_hits != before.l2_hits
                              ? StepOutcome::Supplier::L2
                              : StepOutcome::Supplier::Memory)
                       : StepOutcome::Supplier::None;
  return o;
}

template <typename E>
void HierCacheSim::hier_replay_dispatch(const u64* packed, std::size_t n) {
  switch (cfg_.protocol) {
    case Protocol::WriteThrough:
      hier_replay_loop<&HierCacheSim::access_write_through<E>>(packed, n);
      break;
    case Protocol::Copyback:
      hier_replay_loop<&HierCacheSim::access_copyback<E>>(packed, n);
      break;
    case Protocol::WriteInBroadcast:
      hier_replay_loop<&HierCacheSim::access_write_in_broadcast<E>>(packed, n);
      break;
    case Protocol::WriteThroughBroadcast:
      hier_replay_loop<&HierCacheSim::access_write_update_broadcast<E>>(packed, n);
      break;
    case Protocol::Hybrid:
      hier_replay_loop<&HierCacheSim::access_hybrid<E>>(packed, n);
      break;
  }
}

void HierCacheSim::replay(const u64* packed, std::size_t n) {
  if (!l2_) {
    MultiCacheSim::replay(packed, n);  // flat fast path, untouched
    return;
  }
  if (wide_) hier_replay_dispatch<WideDirEntry>(packed, n);
  else hier_replay_dispatch<DirEntry>(packed, n);
}

void HierCacheSim::l2_after_access(u64 tag, u64 fetch_d, u64 flush_d, u64 wb_d,
                                   u64 word_d) {
  if (fetch_d) {
    // The flat model's "fetch from memory" probes the L2 first.
    if (l2_->lookup(tag)) {
      ++stats_.l2_hits;
    } else {
      ++stats_.l2_misses;
      stats_.mem_fetch_words += L();
      l2_fill(tag, LineState::Shared);  // clean: copy of memory
    }
  } else if (flush_d) {
    // A cache-to-cache flush updates the level below the bus with the
    // owner's data, exactly as it updates memory in the flat model;
    // here that level is the (write-back) L2, so memory stays stale
    // until the L2 line is evicted.
    if (Line* l = l2_->lookup(tag)) l->state = LineState::Dirty;
    else l2_fill(tag, LineState::Dirty);
  }
  if (word_d) {
    // Write-through / update words: absorbed by an L2 hit, passed to
    // memory on a miss. Word writes never allocate an L2 line (the
    // rest of the line would have to be fetched to complete it).
    if (Line* l = l2_->lookup(tag)) l->state = LineState::Dirty;
    else stats_.mem_word_writes += word_d;
  }
  if (wb_d && last_evict_dirty_) {
    // Dirty L1 eviction lands in the L2. Under inclusion the line is
    // present by invariant; non-inclusive allocates it (write-back
    // victim caching).
    if (Line* l = l2_->lookup(last_evict_tag_)) l->state = LineState::Dirty;
    else l2_fill(last_evict_tag_, LineState::Dirty);
  }
}

void HierCacheSim::l2_fill(u64 tag, LineState st) {
  Cache::Evicted ev = l2_->insert(tag, st);
  if (!ev.valid) return;
  bool dirty = ev.line.state == LineState::Dirty;
  // Inclusive victim: kill the L1 copies; a dirty L1 copy holds the
  // only current data, so it joins the victim's memory writeback.
  if (inclusive_) dirty = back_invalidate(ev.line.tag) || dirty;
  if (dirty) stats_.mem_writeback_words += L();
}

template <typename E>
bool HierCacheSim::back_invalidate_dir(u64 tag) {
  E* e = dir<E>().find(tag);
  if (!e) return false;
  bool any = pe_any(e->holders);
  bool dirty = pe_any(e->dirty);
  pe_for_each(e->holders, [&](unsigned pe) { caches_[pe].invalidate(tag); });
  dir<E>().erase(tag);
  if (any) {
    // One address-only broadcast kills every copy (same bus cost as an
    // invalidation broadcast in the flat protocols).
    ++stats_.l2_back_invalidations;
    stats_.bus_words += 1;
  }
  if (dirty) {
    stats_.l2_back_inval_flush_words += L();
    stats_.bus_words += L();
  }
  return dirty;
}

bool HierCacheSim::back_invalidate(u64 tag) {
  if (coherent_) {
    return wide_ ? back_invalidate_dir<WideDirEntry>(tag)
                 : back_invalidate_dir<DirEntry>(tag);
  }
  // Copyback keeps no directory; probe every cache (back-invals are
  // rare next to references, and copyback is the sequential baseline).
  bool any = false, dirty = false;
  for (Cache& c : caches_) {
    if (const Line* l = c.probe(tag)) {
      any = true;
      dirty = dirty || l->state == LineState::Dirty;
      c.invalidate(tag);
    }
  }
  if (any) {
    // One address-only broadcast kills every copy (same bus cost as an
    // invalidation broadcast in the flat protocols).
    ++stats_.l2_back_invalidations;
    stats_.bus_words += 1;
  }
  if (dirty) {
    stats_.l2_back_inval_flush_words += L();
    stats_.bus_words += L();
  }
  return dirty;
}

bool HierCacheSim::inclusion_ok() const {
  if (!l2_ || !inclusive_) return true;
  for (const Cache& c : caches_)
    for (const Line& l : c.lines())
      if (!l2_->probe(l.tag)) return false;
  return true;
}

void HierCacheSim::save_state(ByteWriter& w) const {
  MultiCacheSim::save_state(w);
  w.put_u8(l2_ ? 1 : 0);
  if (l2_) l2_->save_state(w);
}

void HierCacheSim::restore_state(ByteReader& r) {
  MultiCacheSim::restore_state(r);
  bool has_l2 = r.get_u8() != 0;
  if (has_l2 != l2_.has_value())
    fail("checkpoint: L2 presence mismatch between snapshot and configuration");
  if (l2_) {
    l2_->restore_state(r);
    if (!inclusion_ok())
      fail("checkpoint: restored state violates the L2 inclusion invariant");
  }
}

}  // namespace rapwam
