// Two-level cache hierarchy: the per-PE coherent caches of
// MultiCacheSim become private L1s, and a single shared set-associative
// L2 sits between the snooping bus and memory (docs/DESIGN.md §9).
//
// The layering is strictly memory-side: every reference first runs the
// unchanged flat-protocol handler (L1 lookup, snoop, bus accounting),
// and the hierarchy then routes whatever that transaction did on the
// memory side of the bus through the L2 instead of memory —
//
//   * a line fill that the flat model fetched from memory probes the
//     L2 first (l2_hits / l2_misses; only misses cost mem_fetch_words);
//   * a cache-to-cache flush updates/deposits the line in the L2, just
//     as it updates memory in the flat model;
//   * a dirty L1 eviction lands in the L2 (write-back); memory is only
//     written when the L2 itself evicts a dirty line;
//   * write-through and update words are absorbed by an L2 hit (the L2
//     is write-back) and only reach memory on an L2 miss (no-allocate
//     for word writes).
//
// Because the L1/bus side is byte-for-byte the flat simulator, the
// degenerate configuration (cfg.l2.size_words == 0) is bit-identical
// to MultiCacheSim, and a NON-inclusive L2 — which never touches L1
// state — leaves every bus-side TrafficStats field bit-identical too,
// populating only the new l2_*/mem_* counters. An INCLUSIVE L2
// back-invalidates L1 copies when it evicts a line (the only way the
// hierarchy feeds back into L1 behaviour); the victim's holder set
// comes straight from the sharing directory, so back-invalidation is
// directory-precise: one O(1) entry lookup, then only actual holders
// are touched. Both pinned by tests/test_hierarchy_diff.cpp.
#pragma once

#include <optional>

#include "cache/multisim.h"

namespace rapwam {

class HierCacheSim : public MultiCacheSim {
 public:
  HierCacheSim(const CacheConfig& cfg, unsigned num_pes,
               DirRep rep = DirRep::Auto);

  /// Per-reference APIs, shadowing (not overriding) the base: with the
  /// L2 disabled they delegate to the flat fast paths; with it enabled
  /// they run the flat handler then the L2 model. HierCacheSim is
  /// always used as a concrete type — never through a base pointer.
  void access(const MemRef& r);
  StepOutcome step(const MemRef& r);
  void replay(const u64* packed, std::size_t n);
  void replay(const std::vector<u64>& packed) { replay(packed.data(), packed.size()); }
  void replay(const ChunkedTrace& t) {
    t.for_each_chunk([this](const u64* p, std::size_t n) { replay(p, n); });
  }

  bool l2_enabled() const { return l2_.has_value(); }
  bool inclusive() const { return inclusive_; }
  /// The shared L2 contents (tests / reports); null when disabled.
  const Cache* l2() const { return l2_ ? &*l2_ : nullptr; }

  /// Inclusion invariant (tests): with an inclusive L2, every valid L1
  /// line is present in the L2 — in particular, back-invalidation left
  /// no stale L1 copies behind. Vacuously true otherwise.
  bool inclusion_ok() const;

  /// Checkpoint serialization (docs/DESIGN.md §12): the base simulator
  /// state plus the shared L2 contents. Same contract as the base —
  /// restore into a freshly constructed simulator of the same
  /// configuration; throws Error on malformed input (including an L2
  /// presence mismatch or an inclusion violation) without leaving a
  /// half-restored instance in use.
  void save_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  /// L2-enabled batch path: like the base replay_loop, the protocol
  /// dispatch is hoisted out of the loop (one instantiation per
  /// handler); each iteration runs the flat handler then the L2 model.
  template <void (MultiCacheSim::*Handler)(const MemRef&)>
  void hier_replay_loop(const u64* packed, std::size_t n);
  /// Runs the flat `Handler` for one reference, then routes its
  /// memory-side counter deltas through the L2.
  template <void (MultiCacheSim::*Handler)(const MemRef&)>
  void hier_access(const MemRef& r);
  /// Protocol switches for the L2-enabled paths, per directory entry
  /// type E (the base handlers are templated over it).
  template <typename E>
  void hier_access_dispatch(const MemRef& r);
  template <typename E>
  void hier_replay_dispatch(const u64* packed, std::size_t n);

  /// Memory-side model of the reference the flat handler just ran.
  /// The deltas are that handler's counter increments; `tag` is the
  /// referenced line.
  void l2_after_access(u64 tag, u64 fetch_d, u64 flush_d, u64 wb_d, u64 word_d);
  /// Allocates `tag` into the L2, handling the displaced victim:
  /// back-invalidation when inclusive, and the memory writeback when
  /// the victim (or a back-invalidated dirty L1 copy) carries the only
  /// current data.
  void l2_fill(u64 tag, LineState st);
  /// Kills every L1 copy of `tag` (directory-precise when coherent).
  /// Returns true if any copy was dirty — that data joins the victim's
  /// memory writeback.
  bool back_invalidate(u64 tag);
  /// Directory-precise back-invalidation for entry type E.
  template <typename E>
  bool back_invalidate_dir(u64 tag);

  std::optional<Cache> l2_;  ///< engaged iff cfg.l2.enabled()
  bool inclusive_ = false;
};

}  // namespace rapwam
