#include "cache/multisim.h"

#include <bit>
#include <unordered_map>

namespace rapwam {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::WriteThrough: return "write-thru";
    case Protocol::WriteInBroadcast: return "broadcast(write-in)";
    case Protocol::WriteThroughBroadcast: return "broadcast(write-thru)";
    case Protocol::Hybrid: return "hybrid";
    case Protocol::Copyback: return "copyback";
  }
  return "?";
}

Protocol protocol_from_name(const std::string& s) {
  if (s == "write-thru" || s == "wt") return Protocol::WriteThrough;
  if (s == "broadcast" || s == "write-in") return Protocol::WriteInBroadcast;
  if (s == "update" || s == "write-update") return Protocol::WriteThroughBroadcast;
  if (s == "hybrid") return Protocol::Hybrid;
  if (s == "copyback") return Protocol::Copyback;
  fail("unknown protocol: " + s +
       " (write-thru|broadcast|update|hybrid|copyback)");
}

std::string inclusion_name(L2Config::Inclusion inc) {
  return inc == L2Config::Inclusion::Inclusive ? "inclusive" : "non-inclusive";
}

unsigned check_pes(unsigned pes) {
  if (pes < 1 || pes > kMaxPes)
    fail("PE count must be 1.." + std::to_string(kMaxPes) +
         " (the sharing directory's per-PE masks are sized for kMaxPes)");
  return pes;
}

MultiCacheSim::MultiCacheSim(const CacheConfig& cfg, unsigned num_pes, DirRep rep)
    : cfg_(cfg) {
  RW_CHECK(cfg.line_words > 0 && cfg.size_words % cfg.line_words == 0,
           "cache size must be a multiple of the line size");
  RW_CHECK(num_pes >= 1 && num_pes <= kMaxPes,
           "directory holder masks support 1..kMaxPes PEs");
  RW_CHECK(rep != DirRep::Flat || num_pes <= 64,
           "the flat u64 directory representation caps at 64 PEs");
  wide_ = rep == DirRep::Wide || (rep == DirRep::Auto && num_pes > 64);
  coherent_ = cfg.protocol != Protocol::Copyback;
  caches_.reserve(num_pes);
  for (unsigned i = 0; i < num_pes; ++i) caches_.emplace_back(cfg);
  if (coherent_) {
    if (wide_) wdir_.init(u64(num_pes) * cfg.num_lines());
    else dir_.init(u64(num_pes) * cfg.num_lines());
  }
}

// --- sharing directory ----------------------------------------------------

template <typename E>
bool MultiCacheSim::others_hold(unsigned pe, u64 tag) const {
  const E* e = dir<E>().find(tag);
  return e && pe_any_other(e->holders, pe);
}

template <typename E>
int MultiCacheSim::dirty_holder(unsigned pe, u64 tag) const {
  const E* e = dir<E>().find(tag);
  return e ? pe_first_other(e->dirty, pe) : -1;
}

template <typename E>
bool MultiCacheSim::other_dirty(unsigned pe, u64 tag) const {
  const E* e = dir<E>().find(tag);
  return e && pe_any_other(e->dirty, pe);
}

template <typename E>
void MultiCacheSim::invalidate_others(unsigned pe, u64 tag) {
  E* e = dir<E>().find(tag);
  if (!e) return;
  pe_for_each_other(e->holders, pe,
                    [&](unsigned i) { caches_[i].invalidate(tag); });
  pe_retain_only(e->holders, pe);
  pe_retain_only(e->dirty, pe);
  pe_retain_only(e->excl, pe);
  if (!pe_any(e->holders)) dir<E>().erase(tag);
}

template <typename E>
bool MultiCacheSim::broadcast_miss_supply(unsigned pe, u64 tag) {
  E* e = dir<E>().find(tag);
  if (!e) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    return false;
  }
  int dh = pe_first_other(e->dirty, pe);
  if (dh >= 0) {
    // Owner supplies the line and keeps a shared (clean) copy; memory
    // is updated by the same transaction.
    caches_[static_cast<unsigned>(dh)].probe(tag)->state = LineState::Shared;
    pe_reset(e->dirty, static_cast<unsigned>(dh));
    stats_.flush_words += L();
    stats_.bus_words += L();
  } else {
    stats_.fetch_words += L();
    stats_.bus_words += L();
  }
  pe_for_each_other(e->excl, pe, [&](unsigned i) {
    caches_[i].probe(tag)->state = LineState::Shared;
  });
  pe_retain_only(e->excl, pe);
  return pe_any_other(e->holders, pe);
}

template <typename E>
void MultiCacheSim::dir_remove(unsigned pe, u64 tag) {
  E* e = dir<E>().find(tag);
  if (!e) return;
  pe_reset(e->holders, pe);
  pe_reset(e->dirty, pe);
  pe_reset(e->excl, pe);
  if (!pe_any(e->holders)) dir<E>().erase(tag);
}

template <typename E>
void MultiCacheSim::set_state(unsigned pe, Line* l, LineState st) {
  l->state = st;
  if (!coherent_) return;
  dir_set_state_bits(dir<E>().upsert(l->tag), pe, st);
}

/// Inserts a line, accounting a dirty eviction if one falls out.
template <typename E>
void MultiCacheSim::fill(unsigned pe, u64 tag, LineState st) {
  auto ev = caches_[pe].insert(tag, st);
  if (coherent_) {
    // Order matters: removing the evicted tag first can backward-shift
    // other entries, so the upsert of `tag` must come after it.
    if (ev.valid) dir_remove<E>(pe, ev.line.tag);
    E& e = dir<E>().upsert(tag);
    pe_set(e.holders, pe);
    dir_set_state_bits(e, pe, st);
  }
  if (ev.valid && ev.line.state == LineState::Dirty) {
    stats_.writeback_words += L();
    stats_.bus_words += L();
    last_evict_tag_ = ev.line.tag;
    last_evict_dirty_ = true;
  }
}

template <typename E>
void MultiCacheSim::access_dispatch(const MemRef& r) {
  switch (cfg_.protocol) {
    case Protocol::WriteThrough: access_write_through<E>(r); break;
    case Protocol::Copyback: access_copyback<E>(r); break;
    case Protocol::WriteInBroadcast: access_write_in_broadcast<E>(r); break;
    case Protocol::WriteThroughBroadcast: access_write_update_broadcast<E>(r); break;
    case Protocol::Hybrid: access_hybrid<E>(r); break;
  }
}

void MultiCacheSim::access(const MemRef& r) {
  count_ref(r);
  if (wide_) access_dispatch<WideDirEntry>(r);
  else access_dispatch<DirEntry>(r);
}

StepOutcome MultiCacheSim::step(const MemRef& r) {
  // Every bus_words increment in the handlers is paired with exactly
  // one component counter, so the deltas decompose the transaction.
  const TrafficStats before = stats_;
  access(r);
  StepOutcome o;
  o.miss = stats_.misses != before.misses;
  u64 fetch = stats_.fetch_words - before.fetch_words;
  u64 flush = stats_.flush_words - before.flush_words;
  o.bus_words = stats_.bus_words - before.bus_words;
  o.demand_words = fetch + flush;
  o.posted_words = o.bus_words - o.demand_words;
  o.invalidations = static_cast<u32>(stats_.invalidations - before.invalidations);
  o.supplier = flush ? StepOutcome::Supplier::Cache
                     : (fetch ? StepOutcome::Supplier::Memory
                              : StepOutcome::Supplier::None);
  return o;
}

template <void (MultiCacheSim::*Handler)(const MemRef&)>
void MultiCacheSim::replay_loop(const u64* packed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    MemRef r = MemRef::unpack(packed[i]);
    count_ref(r);
    (this->*Handler)(r);
  }
}

template <typename E>
void MultiCacheSim::replay_dispatch(const u64* packed, std::size_t n) {
  switch (cfg_.protocol) {
    case Protocol::WriteThrough:
      replay_loop<&MultiCacheSim::access_write_through<E>>(packed, n);
      break;
    case Protocol::Copyback:
      replay_loop<&MultiCacheSim::access_copyback<E>>(packed, n);
      break;
    case Protocol::WriteInBroadcast:
      replay_loop<&MultiCacheSim::access_write_in_broadcast<E>>(packed, n);
      break;
    case Protocol::WriteThroughBroadcast:
      replay_loop<&MultiCacheSim::access_write_update_broadcast<E>>(packed, n);
      break;
    case Protocol::Hybrid:
      replay_loop<&MultiCacheSim::access_hybrid<E>>(packed, n);
      break;
  }
}

void MultiCacheSim::replay(const u64* packed, std::size_t n) {
  if (wide_) replay_dispatch<WideDirEntry>(packed, n);
  else replay_dispatch<DirEntry>(packed, n);
}

bool MultiCacheSim::invariants_ok() const {
  if (cfg_.protocol == Protocol::Copyback) return true;  // non-coherent
  bool dirty_sole = cfg_.protocol != Protocol::Hybrid;
  std::unordered_map<u64, int> holders, dirty, excl;
  for (const Cache& c : caches_) {
    for (const Line& l : c.lines()) {
      holders[l.tag]++;
      if (l.state == LineState::Dirty) dirty[l.tag]++;
      if (l.state == LineState::Exclusive) excl[l.tag]++;
    }
  }
  for (auto& [tag, n] : dirty) {
    if (n > 1) return false;
    if (dirty_sole && holders[tag] > 1) return false;  // dirty => sole holder
  }
  for (auto& [tag, n] : excl) {
    if (holders[tag] > 1) return false;  // exclusive implies sole holder
  }
  return true;
}

template <typename E>
bool MultiCacheSim::directory_consistent_t() const {
  std::unordered_map<u64, E> want;
  for (unsigned pe = 0; pe < caches_.size(); ++pe) {
    for (const Line& l : caches_[pe].lines()) {
      E& e = want[l.tag];
      pe_set(e.holders, pe);
      if (l.state == LineState::Dirty) pe_set(e.dirty, pe);
      if (l.state == LineState::Exclusive) pe_set(e.excl, pe);
    }
  }
  if (want.size() != dir<E>().size()) return false;
  bool ok = true;
  dir<E>().for_each([&](u64 tag, const E& d) {
    auto it = want.find(tag);
    if (it == want.end() || !(it->second.holders == d.holders) ||
        !(it->second.dirty == d.dirty) || !(it->second.excl == d.excl))
      ok = false;
  });
  return ok;
}

bool MultiCacheSim::directory_consistent() const {
  if (!coherent_) return dir_.size() == 0 && wdir_.size() == 0;
  return wide_ ? directory_consistent_t<WideDirEntry>()
               : directory_consistent_t<DirEntry>();
}

// --- checkpoint serialization (docs/DESIGN.md §12) -------------------------

static_assert(sizeof(TrafficStats) == 19 * sizeof(u64),
              "TrafficStats changed: update save_traffic/load_traffic and "
              "bump kCheckpointVersion (checkpoint/checkpoint.h)");

void save_traffic(ByteWriter& w, const TrafficStats& s) {
  w.put_u64(s.refs);
  w.put_u64(s.reads);
  w.put_u64(s.writes);
  w.put_u64(s.misses);
  w.put_u64(s.bus_words);
  w.put_u64(s.fetch_words);
  w.put_u64(s.writeback_words);
  w.put_u64(s.writethrough_words);
  w.put_u64(s.invalidations);
  w.put_u64(s.update_words);
  w.put_u64(s.flush_words);
  w.put_u64(s.coherence_violations);
  w.put_u64(s.l2_hits);
  w.put_u64(s.l2_misses);
  w.put_u64(s.mem_fetch_words);
  w.put_u64(s.mem_writeback_words);
  w.put_u64(s.mem_word_writes);
  w.put_u64(s.l2_back_invalidations);
  w.put_u64(s.l2_back_inval_flush_words);
}

TrafficStats load_traffic(ByteReader& r) {
  TrafficStats s;
  s.refs = r.get_u64();
  s.reads = r.get_u64();
  s.writes = r.get_u64();
  s.misses = r.get_u64();
  s.bus_words = r.get_u64();
  s.fetch_words = r.get_u64();
  s.writeback_words = r.get_u64();
  s.writethrough_words = r.get_u64();
  s.invalidations = r.get_u64();
  s.update_words = r.get_u64();
  s.flush_words = r.get_u64();
  s.coherence_violations = r.get_u64();
  s.l2_hits = r.get_u64();
  s.l2_misses = r.get_u64();
  s.mem_fetch_words = r.get_u64();
  s.mem_writeback_words = r.get_u64();
  s.mem_word_writes = r.get_u64();
  s.l2_back_invalidations = r.get_u64();
  s.l2_back_inval_flush_words = r.get_u64();
  return s;
}

namespace {

// Mask serialization shared by both directory representations: a word
// count then the raw words. The flat path always writes one word; the
// wide path writes the PeSet's current words (capacity is a growth
// artifact, not semantic state — the restored set is rebuilt by
// membership and compares equal).
void save_mask(ByteWriter& w, u64 m) {
  w.put_u32(1);
  w.put_u64(m);
}
void save_mask(ByteWriter& w, const PeSet& m) {
  w.put_u32(m.num_words());
  for (unsigned i = 0; i < m.num_words(); ++i) w.put_u64(m.word(i));
}
void load_mask(ByteReader& r, u64& m, unsigned num_pes) {
  u32 nw = r.get_u32();
  if (nw != 1) fail("checkpoint directory: flat mask with word count != 1");
  m = r.get_u64();
  if (num_pes < 64 && (m >> num_pes) != 0)
    fail("checkpoint directory: mask bit >= simulator PE count");
}
void load_mask(ByteReader& r, PeSet& m, unsigned num_pes) {
  u32 nw = r.get_u32();
  if (nw == 0 || nw > (kMaxPes + 63) / 64)
    fail("checkpoint directory: mask word count out of range");
  for (unsigned i = 0; i < nw; ++i) {
    u64 word = r.get_u64();
    while (word) {
      unsigned pe = i * 64 + static_cast<unsigned>(std::countr_zero(word));
      if (pe >= num_pes)
        fail("checkpoint directory: mask bit >= simulator PE count");
      m.set(pe);
      word &= word - 1;
    }
  }
}

}  // namespace

template <typename E>
void MultiCacheSim::save_directory(ByteWriter& w) const {
  const FlatTagMap<E>& d = dir<E>();
  w.put_u64(d.size());
  d.for_each([&](u64 tag, const E& e) {
    w.put_u64(tag);
    save_mask(w, e.holders);
    save_mask(w, e.dirty);
    save_mask(w, e.excl);
  });
}

template <typename E>
void MultiCacheSim::restore_directory(ByteReader& r) {
  u64 n = r.get_u64();
  // The directory is sized once at construction for the total line
  // capacity; a count beyond it would overfill the never-rehashing
  // table (and cannot be a real snapshot of this configuration).
  u64 cap = coherent_ ? u64(caches_.size()) * cfg_.num_lines() : 0;
  if (n > cap)
    fail("checkpoint directory: " + std::to_string(n) +
         " entries exceed the configuration's capacity of " +
         std::to_string(cap));
  FlatTagMap<E>& d = dir<E>();
  unsigned pes = static_cast<unsigned>(caches_.size());
  for (u64 i = 0; i < n; ++i) {
    u64 tag = r.get_u64();
    if (tag == FlatTagMap<E>::kEmptyKey)
      fail("checkpoint directory: reserved tag value");
    E e{};
    load_mask(r, e.holders, pes);
    load_mask(r, e.dirty, pes);
    load_mask(r, e.excl, pes);
    d.upsert(tag) = std::move(e);
  }
  if (d.size() != n) fail("checkpoint directory: duplicate tag");
}

void MultiCacheSim::save_state(ByteWriter& w) const {
  w.put_u8(wide_ ? 1 : 0);
  save_traffic(w, stats_);
  w.put_u64(last_evict_tag_);
  w.put_u8(last_evict_dirty_ ? 1 : 0);
  w.put_u64(caches_.size());
  for (const Cache& c : caches_) c.save_state(w);
  if (wide_) save_directory<WideDirEntry>(w);
  else save_directory<DirEntry>(w);
}

void MultiCacheSim::restore_state(ByteReader& r) {
  if ((r.get_u8() != 0) != wide_)
    fail("checkpoint: directory representation mismatch (flat vs wide)");
  stats_ = load_traffic(r);
  last_evict_tag_ = r.get_u64();
  last_evict_dirty_ = r.get_u8() != 0;
  u64 ncaches = r.get_u64();
  if (ncaches != caches_.size())
    fail("checkpoint: snapshot has " + std::to_string(ncaches) +
         " PE caches, simulator has " + std::to_string(caches_.size()));
  for (Cache& c : caches_) c.restore_state(r);
  if (wide_) restore_directory<WideDirEntry>(r);
  else restore_directory<DirEntry>(r);
  // Deep cross-validation before the restored instance is trusted: the
  // directory must mirror the restored cache contents exactly and the
  // protocol invariants must hold — a frame that passed the checksum
  // but encodes an impossible state is still rejected here. Hybrid is
  // exempt from the invariant check: its live states legitimately
  // carry multi-holder dirty lines when an address is classified
  // "local" by one reference and "global" by another (exactly what
  // stats_.coherence_violations counts), and a faithful restore must
  // accept every reachable state.
  if (coherent_ && !directory_consistent())
    fail("checkpoint: directory does not match the restored cache contents");
  if (cfg_.protocol != Protocol::Hybrid && !invariants_ok())
    fail("checkpoint: restored state violates protocol coherence invariants");
}

// --- conventional coherent write-through --------------------------------

template <typename E>
void MultiCacheSim::access_write_through(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);
  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill<E>(r.pe, tag, LineState::Shared);
    return;
  }
  // Every write goes to memory; snooping caches invalidate their copy.
  stats_.writethrough_words += 1;
  stats_.bus_words += 1;
  invalidate_others<E>(r.pe, tag);
  if (l) return;  // write hit: line updated in place
  ++stats_.misses;
  if (cfg_.write_allocate) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill<E>(r.pe, tag, LineState::Shared);
  }
}

// --- non-coherent copy-back (sequential baseline) ------------------------

template <typename E>
void MultiCacheSim::access_copyback(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);
  if (l) {
    if (r.write) l->state = LineState::Dirty;  // non-coherent: no directory
    return;
  }
  ++stats_.misses;
  if (!r.write) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill<E>(r.pe, tag, LineState::Exclusive);
    return;
  }
  if (cfg_.write_allocate) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill<E>(r.pe, tag, LineState::Dirty);
  } else {
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
  }
}

// --- write-in broadcast (invalidate, copy-back, cache-to-cache) ----------

template <typename E>
void MultiCacheSim::access_write_in_broadcast(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);

  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    fill<E>(r.pe, tag,
            broadcast_miss_supply<E>(r.pe, tag) ? LineState::Shared
                                                : LineState::Exclusive);
    return;
  }

  if (l) {
    switch (l->state) {
      case LineState::Dirty:
        return;
      case LineState::Exclusive:
        set_state<E>(r.pe, l, LineState::Dirty);
        return;
      case LineState::Shared:
        // One bus word-time to broadcast the invalidation.
        stats_.invalidations += 1;
        stats_.bus_words += 1;
        invalidate_others<E>(r.pe, tag);
        set_state<E>(r.pe, l, LineState::Dirty);
        return;
      case LineState::Invalid:
        break;
    }
  }
  ++stats_.misses;
  if (cfg_.write_allocate) {
    // Read-for-ownership: fetch the line (from a dirty owner or from
    // memory) and invalidate all other copies in the same transaction.
    if (other_dirty<E>(r.pe, tag)) {
      stats_.flush_words += L();
      stats_.bus_words += L();
    } else {
      stats_.fetch_words += L();
      stats_.bus_words += L();
    }
    invalidate_others<E>(r.pe, tag);
    fill<E>(r.pe, tag, LineState::Dirty);
  } else {
    // Word write to memory plus invalidation of all copies.
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
    invalidate_others<E>(r.pe, tag);
  }
}

// --- write-through broadcast (update) -------------------------------------

template <typename E>
void MultiCacheSim::access_write_update_broadcast(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);

  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    fill<E>(r.pe, tag,
            broadcast_miss_supply<E>(r.pe, tag) ? LineState::Shared
                                                : LineState::Exclusive);
    return;
  }

  if (l) {
    if (l->state == LineState::Shared) {
      if (others_hold<E>(r.pe, tag)) {
        // Broadcast the word; sharers and memory update in place.
        stats_.update_words += 1;
        stats_.bus_words += 1;
      } else {
        set_state<E>(r.pe, l, LineState::Dirty);  // last sharer: private again
      }
      return;
    }
    set_state<E>(r.pe, l, LineState::Dirty);
    return;
  }
  ++stats_.misses;
  if (cfg_.write_allocate) {
    bool shared = broadcast_miss_supply<E>(r.pe, tag);
    fill<E>(r.pe, tag, shared ? LineState::Shared : LineState::Dirty);
    if (shared) {
      stats_.update_words += 1;
      stats_.bus_words += 1;
    }
  } else {
    stats_.update_words += 1;  // word to memory + snooping sharers
    stats_.bus_words += 1;
  }
}

// --- hybrid (tag-driven) ---------------------------------------------------

template <typename E>
void MultiCacheSim::access_hybrid(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);
  bool global = traits_of(r.cls).locality == Locality::Global;

  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    // A line may mix localities (e.g. environment control words and
    // permanent variables): memory is kept current for its *global*
    // words by write-through, so fetching from memory is always safe
    // for global reads. Only a local-tagged read of a line that is
    // dirty in another cache is a Table-1 violation.
    if (!global && dirty_holder<E>(r.pe, tag) >= 0) ++stats_.coherence_violations;
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill<E>(r.pe, tag, LineState::Shared);
    return;
  }

  if (global) {
    // Write-through; remote copies are invalidated by the snooped
    // memory write (no extra bus words). Own copy updated in place.
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
    invalidate_others<E>(r.pe, tag);
    if (l) return;
    ++stats_.misses;
    if (cfg_.write_allocate) {
      stats_.fetch_words += L();
      stats_.bus_words += L();
      fill<E>(r.pe, tag, LineState::Shared);
    }
    return;
  }

  // Local data: copy-back. Another PE modifying this PE's local line
  // would be a violation; mere clean copies (from global words in the
  // same line) are harmless.
  if (dirty_holder<E>(r.pe, tag) >= 0) ++stats_.coherence_violations;
  if (l) {
    set_state<E>(r.pe, l, LineState::Dirty);
    return;
  }
  ++stats_.misses;
  if (cfg_.write_allocate) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill<E>(r.pe, tag, LineState::Dirty);
  } else {
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
  }
}

// Explicit instantiations of both directory flavours: the handlers are
// referenced by member-pointer template arguments from this file's
// replay_dispatch and from HierCacheSim's batch loops (hierarchy.cpp).
#define RAPWAM_INSTANTIATE_DIR(E)                                             \
  template void MultiCacheSim::access_write_through<E>(const MemRef&);        \
  template void MultiCacheSim::access_copyback<E>(const MemRef&);             \
  template void MultiCacheSim::access_write_in_broadcast<E>(const MemRef&);   \
  template void MultiCacheSim::access_write_update_broadcast<E>(const MemRef&); \
  template void MultiCacheSim::access_hybrid<E>(const MemRef&);               \
  template void MultiCacheSim::access_dispatch<E>(const MemRef&)

RAPWAM_INSTANTIATE_DIR(MultiCacheSim::DirEntry);
RAPWAM_INSTANTIATE_DIR(MultiCacheSim::WideDirEntry);
#undef RAPWAM_INSTANTIATE_DIR

}  // namespace rapwam
