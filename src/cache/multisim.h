// Multiprocessor coherent-cache simulator.
//
// Replays a memory-reference trace (global interleaved order) through
// one cache per PE and accounts bus traffic in words, per the paper's
// metric: traffic ratio = words moved on the bus / words demanded by
// the processors. Implements the five protocols of §3.1.
#pragma once

#include <vector>

#include "cache/cache.h"
#include "trace/tracebuf.h"

namespace rapwam {

struct TrafficStats {
  u64 refs = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 misses = 0;
  u64 bus_words = 0;         ///< total words on the bus
  u64 fetch_words = 0;       ///< line fills (memory or cache supplier)
  u64 writeback_words = 0;   ///< dirty evictions
  u64 writethrough_words = 0;///< single-word writes to memory
  u64 invalidations = 0;     ///< invalidation broadcasts (1 word-time each)
  u64 update_words = 0;      ///< write-update broadcasts
  u64 flush_words = 0;       ///< dirty lines supplied cache-to-cache
  u64 coherence_violations = 0;  ///< hybrid: local-tagged line shared

  double traffic_ratio() const {
    return refs ? static_cast<double>(bus_words) / static_cast<double>(refs) : 0.0;
  }
  double miss_ratio() const {
    return refs ? static_cast<double>(misses) / static_cast<double>(refs) : 0.0;
  }
};

class MultiCacheSim {
 public:
  MultiCacheSim(const CacheConfig& cfg, unsigned num_pes);

  void access(const MemRef& r);
  void replay(const std::vector<u64>& packed);

  const TrafficStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }
  const Cache& cache(unsigned pe) const { return caches_[pe]; }
  unsigned num_caches() const { return static_cast<unsigned>(caches_.size()); }

  /// Protocol coherence invariants (tests): at most one Dirty holder
  /// per line, and a Dirty/Exclusive line has no other holders.
  bool invariants_ok() const;

 private:
  u64 tag_of(u64 addr) const { return addr / cfg_.line_words; }
  u64 L() const { return cfg_.line_words; }
  /// True if any cache other than `pe` holds the tag; optionally
  /// invalidates them / reports a dirty holder.
  bool others_hold(unsigned pe, u64 tag) const;
  int dirty_holder(unsigned pe, u64 tag) const;  // -1 if none
  void invalidate_others(unsigned pe, u64 tag);
  /// Remote Exclusive copies become Shared when `pe` obtains a copy.
  void demote_exclusive_others(unsigned pe, u64 tag);
  void fill(unsigned pe, u64 tag, LineState st);

  void access_write_through(const MemRef& r);
  void access_copyback(const MemRef& r);
  void access_write_in_broadcast(const MemRef& r);
  void access_write_update_broadcast(const MemRef& r);
  void access_hybrid(const MemRef& r);

  CacheConfig cfg_;
  std::vector<Cache> caches_;
  TrafficStats stats_;
};

}  // namespace rapwam
