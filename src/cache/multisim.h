// Multiprocessor coherent-cache simulator.
//
// Replays a memory-reference trace (global interleaved order) through
// one cache per PE and accounts bus traffic in words, per the paper's
// metric: traffic ratio = words moved on the bus / words demanded by
// the processors. Implements the five protocols of §3.1.
//
// Coherence bookkeeping is directory-based (docs/DESIGN.md §6): a
// single hash table maps each cached line tag to a packed entry of
// three per-PE masks (holders / dirty owners / exclusive owners).
// Snoop queries that used to broadcast-probe every other PE's cache —
// others_hold, dirty_holder, invalidate_others, and the miss-supply
// transaction (dirty-owner flush + exclusive demotion) — are O(1) bit
// operations on that entry, independent of the PE count, and
// invalidations walk only the actual holder set. A cross-checked
// naive broadcast implementation is retained in cache/refsim.h for
// differential testing.
//
// The masks come in two representations (docs/DESIGN.md §11): raw u64
// words — the flat fast path, selected for <= 64-PE simulators, byte-
// identical to the pre-PR-7 directory — and multi-word PeSet masks
// (cache/peset.h) for larger machines, up to kMaxPes. The protocol
// handlers are templated over the entry type, so both paths run the
// identical transition logic; tests/test_widepe_diff.cpp pins them
// against each other and against the broadcast reference simulator.
#pragma once

#include <type_traits>
#include <vector>

#include "cache/cache.h"
#include "cache/peset.h"
#include "support/flat_table.h"
#include "trace/chunks.h"
#include "trace/tracebuf.h"

namespace rapwam {

struct TrafficStats {
  u64 refs = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 misses = 0;
  u64 bus_words = 0;         ///< total words on the bus
  u64 fetch_words = 0;       ///< line fills (memory or cache supplier)
  u64 writeback_words = 0;   ///< dirty evictions
  u64 writethrough_words = 0;///< single-word writes to memory
  u64 invalidations = 0;     ///< invalidation broadcasts (1 word-time each)
  u64 update_words = 0;      ///< write-update broadcasts
  u64 flush_words = 0;       ///< dirty lines supplied cache-to-cache
  u64 coherence_violations = 0;  ///< hybrid: local-tagged line shared

  // Hierarchy counters (cache/hierarchy.h; all zero in the flat model).
  // The L2 sits between the bus and memory: the bus-side counters above
  // are unchanged by it, and these decompose where memory-side traffic
  // actually went.
  u64 l2_hits = 0;           ///< line fills served by the shared L2
  u64 l2_misses = 0;         ///< line fills that went through to memory
  u64 mem_fetch_words = 0;   ///< L2 miss fills fetched from memory
  u64 mem_writeback_words = 0;  ///< dirty L2 evictions written to memory
  u64 mem_word_writes = 0;   ///< through/update words that missed the L2
  u64 l2_back_invalidations = 0;  ///< inclusive-L2 victim back-invalidation
                                  ///< broadcasts (1 bus word each)
  u64 l2_back_inval_flush_words = 0;  ///< dirty L1 data flushed by back-invalidation

  double traffic_ratio() const {
    return refs ? static_cast<double>(bus_words) / static_cast<double>(refs) : 0.0;
  }
  double miss_ratio() const {
    return refs ? static_cast<double>(misses) / static_cast<double>(refs) : 0.0;
  }
  /// Words that actually reached memory. In the flat model every
  /// memory-side word does (fetch + writeback + through/update); with
  /// an L2, only what the L2 passed through.
  u64 mem_words() const {
    return mem_fetch_words + mem_writeback_words + mem_word_writes;
  }
  /// mem_words per processor reference — the hierarchy counterpart of
  /// traffic_ratio, measuring what the L2 failed to capture.
  double mem_traffic_ratio() const {
    return refs ? static_cast<double>(mem_words()) / static_cast<double>(refs) : 0.0;
  }
  double l2_miss_ratio() const {
    u64 fills = l2_hits + l2_misses;
    return fills ? static_cast<double>(l2_misses) / static_cast<double>(fills) : 0.0;
  }

  friend bool operator==(const TrafficStats&, const TrafficStats&) = default;
};

/// Outcome of one reference, reported by MultiCacheSim::step() for
/// timing layers (src/timing) that need to know what the transaction
/// did to the bus, not just the aggregate counters.
struct StepOutcome {
  /// Who supplied the line on a miss fill / read-for-ownership. L2 is
  /// only reported by HierCacheSim (cache/hierarchy.h); the flat
  /// simulator's memory-side fills are always Memory.
  enum class Supplier : u8 { None, Memory, Cache, L2 };

  bool miss = false;
  Supplier supplier = Supplier::None;
  u64 bus_words = 0;     ///< total words this reference put on the bus
  u64 demand_words = 0;  ///< words the PE must wait for (line fetch/flush)
  u64 posted_words = 0;  ///< fire-and-forget words: write-throughs, update
                         ///< and invalidation broadcasts, evict writebacks
  u32 invalidations = 0; ///< invalidation broadcasts issued

  bool hit() const { return !miss; }
};

/// Sharing-directory mask representation (docs/DESIGN.md §11). Auto
/// picks Flat for <= 64 PEs (the zero-cost fast path) and Wide above;
/// the explicit values exist for the differential suites, which force
/// Wide at small PE counts to pin it bit-identical to Flat.
enum class DirRep : u8 { Auto, Flat, Wide };

class MultiCacheSim {
 public:
  MultiCacheSim(const CacheConfig& cfg, unsigned num_pes,
                DirRep rep = DirRep::Auto);

  void access(const MemRef& r);
  /// Per-reference step API: same transition/accounting as access(),
  /// and additionally reports what this one reference did (hit/miss,
  /// supplier, words the PE waits for vs. posts). TimedReplay drives
  /// this in global trace order, so stats() after stepping a whole
  /// trace is bit-identical to replay() of the same trace.
  StepOutcome step(const MemRef& r);
  /// Batched fast path: dispatches on the protocol once and replays
  /// the packed stream through the selected handler (no per-reference
  /// protocol switch; references are unpacked once, in place).
  void replay(const u64* packed, std::size_t n);
  void replay(const std::vector<u64>& packed) { replay(packed.data(), packed.size()); }
  /// Replays shared immutable chunk storage in place (no flattening).
  void replay(const ChunkedTrace& t) {
    t.for_each_chunk([this](const u64* p, std::size_t n) { replay(p, n); });
  }

  const TrafficStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }
  const Cache& cache(unsigned pe) const { return caches_[pe]; }
  unsigned num_caches() const { return static_cast<unsigned>(caches_.size()); }
  /// True when the multi-word PeSet directory is active (num_pes > 64,
  /// or forced by DirRep::Wide for differential testing).
  bool wide_directory() const { return wide_; }

  /// Protocol coherence invariants (tests): at most one Dirty holder
  /// per line, and a Dirty/Exclusive line has no other holders.
  /// Computed from the cache contents alone, independent of the
  /// directory, so it double-checks directory-driven transitions.
  bool invariants_ok() const;

  /// Directory/cache cross-check (tests): the sharing directory's
  /// masks must exactly mirror the lines each cache holds.
  bool directory_consistent() const;

  /// Checkpoint serialization (docs/DESIGN.md §12): traffic counters,
  /// every PE cache (semantic per-set LRU state), and the sharing
  /// directory in whichever representation is active. Determinism note:
  /// hash-table layout and PeSet capacities are NOT captured — they are
  /// rebuilt on restore and are unobservable to the replay (no stats or
  /// transition reads iteration order), so a restored simulator
  /// produces bit-identical TrafficStats from the same resume point.
  void save_state(ByteWriter& w) const;
  /// Rebuilds from a save_state stream into a freshly constructed
  /// simulator of the SAME configuration (cfg, PE count, directory
  /// representation). Throws Error on malformed input or representation
  /// mismatch; callers discard the instance on failure.
  void restore_state(ByteReader& r);

 protected:
  // Protected rather than private: HierCacheSim (cache/hierarchy.h)
  // layers a shared L2 on top by running the unchanged handlers below
  // and then modelling the memory side of each reference — it needs
  // the caches, the sharing directory (for directory-precise
  // back-invalidation) and the counters, but overrides nothing.

  /// One sharing-directory entry, keyed by line tag; M is the per-PE
  /// mask representation (cache/peset.h). Bit i refers to PE i.
  template <typename M>
  struct DirEntryT {
    M holders{};  ///< PEs with the line in any valid state
    M dirty{};    ///< PEs holding it Dirty
    M excl{};     ///< PEs holding it Exclusive
  };
  /// Flat fast-path entry (<= 64 PEs) — the pre-PR-7 representation.
  using DirEntry = DirEntryT<u64>;
  /// Multi-word entry for > 64-PE machines (and forced-wide tests).
  using WideDirEntry = DirEntryT<PeSet>;

  u64 tag_of(u64 addr) const { return addr / cfg_.line_words; }
  u64 L() const { return cfg_.line_words; }

  /// The active directory for entry type E: dir_ for the flat fast
  /// path, wdir_ for the wide one. Exactly one is ever populated.
  template <typename E>
  FlatTagMap<E>& dir() {
    if constexpr (std::is_same_v<E, DirEntry>) return dir_;
    else return wdir_;
  }
  template <typename E>
  const FlatTagMap<E>& dir() const {
    return const_cast<MultiCacheSim*>(this)->dir<E>();
  }

  /// Shared per-reference preamble of access() and replay_loop().
  void count_ref(const MemRef& r) {
    RW_CHECK(r.pe < caches_.size(), "trace reference PE id >= simulator PE count");
    ++stats_.refs;
    if (r.write) ++stats_.writes; else ++stats_.reads;
  }

  /// Mirrors PE `pe`'s line state into a directory entry's masks.
  template <typename E>
  static void dir_set_state_bits(E& e, unsigned pe, LineState st) {
    pe_assign(e.dirty, pe, st == LineState::Dirty);
    pe_assign(e.excl, pe, st == LineState::Exclusive);
  }

  // Directory snoop/upkeep primitives, templated over the entry type
  // so the flat and wide paths share one implementation (multisim.cpp
  // explicitly instantiates both).

  /// True if any cache other than `pe` holds the tag.
  template <typename E>
  bool others_hold(unsigned pe, u64 tag) const;
  template <typename E>
  int dirty_holder(unsigned pe, u64 tag) const;  // -1 if none
  /// True if a cache other than `pe` holds the tag Dirty (the
  /// read-for-ownership supplier check, without materialising the id).
  template <typename E>
  bool other_dirty(unsigned pe, u64 tag) const;
  template <typename E>
  void invalidate_others(unsigned pe, u64 tag);
  /// Broadcast-protocol miss transaction, one directory find: a dirty
  /// owner supplies the line (L flush words, owner demoted to Shared)
  /// or memory does (L fetch words), remote Exclusive copies become
  /// Shared. Returns true if other caches still hold the line.
  template <typename E>
  bool broadcast_miss_supply(unsigned pe, u64 tag);
  template <typename E>
  void fill(unsigned pe, u64 tag, LineState st);
  /// State transition on a held line, mirrored into the directory.
  template <typename E>
  void set_state(unsigned pe, Line* l, LineState st);
  template <typename E>
  void dir_remove(unsigned pe, u64 tag);

  // Per-protocol reference handlers; E selects the directory flavour.
  template <typename E>
  void access_write_through(const MemRef& r);
  template <typename E>
  void access_copyback(const MemRef& r);
  template <typename E>
  void access_write_in_broadcast(const MemRef& r);
  template <typename E>
  void access_write_update_broadcast(const MemRef& r);
  template <typename E>
  void access_hybrid(const MemRef& r);

  /// Runs the protocol-selected handler for one counted reference.
  template <typename E>
  void access_dispatch(const MemRef& r);

  template <void (MultiCacheSim::*Handler)(const MemRef&)>
  void replay_loop(const u64* packed, std::size_t n);
  /// Protocol switch hoisted out of the batch loop, per entry type.
  template <typename E>
  void replay_dispatch(const u64* packed, std::size_t n);

  /// Directory/cache cross-check for the active representation.
  template <typename E>
  bool directory_consistent_t() const;

  CacheConfig cfg_;
  bool coherent_ = true;  ///< false for Copyback: no directory upkeep
  bool wide_ = false;     ///< wide (PeSet) directory active
  std::vector<Cache> caches_;
  /// Tag of the line the most recent fill() displaced dirty, if any.
  /// Reset by the hierarchy layer before each reference so it can
  /// route the writeback into the L2; meaningless (and unread)
  /// otherwise.
  u64 last_evict_tag_ = 0;
  bool last_evict_dirty_ = false;
  /// The sharing directory: tag -> entry, sized once to 2x the total
  /// line capacity of all caches (the number of distinct tags
  /// simultaneously cached is bounded by the number of line slots),
  /// so it never rehashes and stays at most half full. Exactly one of
  /// the two representations is initialised (the other stays at its
  /// empty 16-bucket default).
  /// Directory serialization for entry type E (multisim.cpp
  /// instantiates both flavours).
  template <typename E>
  void save_directory(ByteWriter& w) const;
  template <typename E>
  void restore_directory(ByteReader& r);

  FlatTagMap<DirEntry> dir_;
  FlatTagMap<WideDirEntry> wdir_;
  TrafficStats stats_;
};

/// TrafficStats field-by-field serialization, shared by simulator
/// checkpoints and the sweep journal. The static_assert in
/// multisim.cpp pins the field count: adding a counter without
/// updating these (and bumping kCheckpointVersion) fails the build.
void save_traffic(ByteWriter& w, const TrafficStats& s);
TrafficStats load_traffic(ByteReader& r);

}  // namespace rapwam
