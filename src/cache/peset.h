// PE-id bit sets for the sharing directory (docs/DESIGN.md §11).
//
// The directory keeps three per-line PE masks (holders / dirty owners /
// exclusive owners). Up to PR 6 those were raw u64 words, hard-capping
// every simulator at 64 PEs — far short of the "highly parallel
// machines" the paper projects onto. This header breaks the cap with
// two interchangeable mask representations behind one operation set:
//
//   * the retained flat fast path: a raw u64, exactly the pre-PR-7
//     representation, selected whenever the simulator is built with
//     <= 64 PEs (so the common regime pays nothing for the new one);
//   * PeSet: a growable multi-word bit set with an inline single-word
//     fast path — one word stored in place, a heap word array only
//     once a PE id >= 64 is actually set.
//
// The simulator's directory code is templated over the entry type and
// calls only the pe_* operations below, so both representations run
// the identical protocol logic; tests/test_widepe_diff.cpp pins them
// bit-identical in the <= 64-PE regime and pins the wide path against
// the naive broadcast reference simulator above it.
#pragma once

#include <bit>
#include <cstring>

#include "support/common.h"

namespace rapwam {

/// Guarded single-PE mask for the flat u64 representation. The shift
/// would be undefined for pe >= 64; structurally that cannot happen
/// (the flat path is only selected for <= 64-PE simulators and every
/// reference's PE id is bounds-checked against the PE count first),
/// and the debug assert turns any future bypass of those checks into
/// an immediate failure instead of a silently wrapped mask.
inline u64 pe_bit(unsigned pe) {
  RW_DCHECK(pe < 64, "flat directory mask indexed with PE id >= 64");
  return u64(1) << pe;
}

/// Growable PE-id bit set with an inline single-word representation.
///
/// A default-constructed set is empty and heap-free: the single word
/// lives inside the object. set() of a PE id beyond the current
/// capacity grows to a zero-extended heap word array sized for that
/// id, so a directory entry only ever pays for the highest PE that
/// actually touched the line. All observers treat bits beyond the
/// stored words as zero, and equality is semantic (trailing zero
/// words are ignored), so sets of different capacities compare by
/// membership.
class PeSet {
 public:
  PeSet() noexcept { rep_.bits = 0; }
  /// Pre-sizes for `num_pes` PEs (forces the multi-word representation
  /// when num_pes > 64; used by tests to pin growth behaviour).
  explicit PeSet(unsigned num_pes) {
    rep_.bits = 0;
    reserve_pes(num_pes);
  }
  ~PeSet() { destroy(); }

  PeSet(const PeSet& o) { copy_from(o); }
  PeSet(PeSet&& o) noexcept : nwords_(o.nwords_), rep_(o.rep_) {
    o.nwords_ = 1;
    o.rep_.bits = 0;
  }
  PeSet& operator=(const PeSet& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  PeSet& operator=(PeSet&& o) noexcept {
    if (this != &o) {
      destroy();
      nwords_ = o.nwords_;
      rep_ = o.rep_;
      o.nwords_ = 1;
      o.rep_.bits = 0;
    }
    return *this;
  }

  bool test(unsigned pe) const {
    unsigned w = pe >> 6;
    return w < nwords_ && ((words()[w] >> (pe & 63)) & 1) != 0;
  }
  void set(unsigned pe) {
    unsigned w = pe >> 6;
    if (w >= nwords_) grow(w + 1);
    mut_words()[w] |= u64(1) << (pe & 63);
  }
  void reset(unsigned pe) {
    unsigned w = pe >> 6;
    if (w < nwords_) mut_words()[w] &= ~(u64(1) << (pe & 63));
  }
  void assign(unsigned pe, bool v) {
    if (v) set(pe);
    else reset(pe);
  }

  bool any() const {
    const u64* w = words();
    for (unsigned i = 0; i < nwords_; ++i)
      if (w[i]) return true;
    return false;
  }
  bool none() const { return !any(); }

  /// Any member other than `pe`?
  bool any_other(unsigned pe) const {
    const u64* w = words();
    unsigned pw = pe >> 6;
    for (unsigned i = 0; i < nwords_; ++i) {
      u64 m = w[i];
      if (i == pw) m &= ~(u64(1) << (pe & 63));
      if (m) return true;
    }
    return false;
  }

  /// Lowest member, or -1 if empty.
  int first() const {
    const u64* w = words();
    for (unsigned i = 0; i < nwords_; ++i)
      if (w[i]) return static_cast<int>(i * 64 + std::countr_zero(w[i]));
    return -1;
  }

  /// Lowest member other than `pe`, or -1 if none.
  int first_other(unsigned pe) const {
    const u64* w = words();
    unsigned pw = pe >> 6;
    for (unsigned i = 0; i < nwords_; ++i) {
      u64 m = w[i];
      if (i == pw) m &= ~(u64(1) << (pe & 63));
      if (m) return static_cast<int>(i * 64 + std::countr_zero(m));
    }
    return -1;
  }

  /// Intersects with {pe}: drops every member except (possibly) `pe`.
  void retain_only(unsigned pe) {
    bool had = test(pe);
    clear();
    if (had) set(pe);
  }

  void clear() {
    u64* w = mut_words();
    for (unsigned i = 0; i < nwords_; ++i) w[i] = 0;
  }

  unsigned count() const {
    const u64* w = words();
    unsigned n = 0;
    for (unsigned i = 0; i < nwords_; ++i)
      n += static_cast<unsigned>(std::popcount(w[i]));
    return n;
  }

  /// Bits the current representation can hold without growing.
  unsigned capacity() const { return nwords_ * 64; }
  /// Words currently stored (checkpoint serialization reads the raw
  /// words; bits beyond num_words() are zero by definition).
  unsigned num_words() const { return nwords_; }
  /// Raw word `i`, zero beyond the stored range.
  u64 word(unsigned i) const { return i < nwords_ ? words()[i] : 0; }
  /// True once the heap multi-word representation is engaged.
  bool wide() const { return nwords_ > 1; }

  void reserve_pes(unsigned num_pes) {
    unsigned nw = (num_pes + 63) >> 6;
    if (nw > nwords_) grow(nw);
  }

  /// Calls f(pe) for every member, in increasing PE order.
  template <typename F>
  void for_each(F&& f) const {
    const u64* w = words();
    for (unsigned i = 0; i < nwords_; ++i) {
      u64 m = w[i];
      while (m) {
        f(static_cast<unsigned>(i * 64 + std::countr_zero(m)));
        m &= m - 1;
      }
    }
  }

  /// Calls f(member) for every member except `pe`.
  template <typename F>
  void for_each_other(unsigned pe, F&& f) const {
    const u64* w = words();
    unsigned pw = pe >> 6;
    for (unsigned i = 0; i < nwords_; ++i) {
      u64 m = w[i];
      if (i == pw) m &= ~(u64(1) << (pe & 63));
      while (m) {
        f(static_cast<unsigned>(i * 64 + std::countr_zero(m)));
        m &= m - 1;
      }
    }
  }

  /// Semantic equality: same membership, capacities ignored.
  friend bool operator==(const PeSet& a, const PeSet& b) {
    const u64* wa = a.words();
    const u64* wb = b.words();
    unsigned common = a.nwords_ < b.nwords_ ? a.nwords_ : b.nwords_;
    for (unsigned i = 0; i < common; ++i)
      if (wa[i] != wb[i]) return false;
    for (unsigned i = common; i < a.nwords_; ++i)
      if (wa[i]) return false;
    for (unsigned i = common; i < b.nwords_; ++i)
      if (wb[i]) return false;
    return true;
  }

 private:
  const u64* words() const { return nwords_ == 1 ? &rep_.bits : rep_.words; }
  u64* mut_words() { return nwords_ == 1 ? &rep_.bits : rep_.words; }

  void grow(unsigned nw) {
    u64* w = new u64[nw]();
    std::memcpy(w, words(), nwords_ * sizeof(u64));
    destroy();
    rep_.words = w;
    nwords_ = nw;
  }
  void destroy() {
    if (nwords_ > 1) delete[] rep_.words;
  }
  void copy_from(const PeSet& o) {
    nwords_ = o.nwords_;
    if (nwords_ == 1) {
      rep_.bits = o.rep_.bits;
    } else {
      rep_.words = new u64[nwords_];
      std::memcpy(rep_.words, o.rep_.words, nwords_ * sizeof(u64));
    }
  }

  u32 nwords_ = 1;  ///< 1 => inline single word, else heap array size
  union {
    u64 bits;    ///< inline representation (nwords_ == 1)
    u64* words;  ///< heap representation (nwords_ > 1)
  } rep_;
};

// --- shared mask operations -------------------------------------------------
//
// One overload set over both representations, so the templated
// directory code in cache/multisim.cpp reads identically for the flat
// u64 fast path and the wide PeSet path. The u64 overloads compile to
// exactly the pre-PR-7 bit operations.

inline bool pe_test(u64 m, unsigned pe) { return (m & pe_bit(pe)) != 0; }
inline void pe_set(u64& m, unsigned pe) { m |= pe_bit(pe); }
inline void pe_reset(u64& m, unsigned pe) { m &= ~pe_bit(pe); }
inline void pe_assign(u64& m, unsigned pe, bool v) {
  m = v ? (m | pe_bit(pe)) : (m & ~pe_bit(pe));
}
inline bool pe_any(u64 m) { return m != 0; }
inline bool pe_any_other(u64 m, unsigned pe) { return (m & ~pe_bit(pe)) != 0; }
inline int pe_first_other(u64 m, unsigned pe) {
  u64 x = m & ~pe_bit(pe);
  return x ? std::countr_zero(x) : -1;
}
inline void pe_retain_only(u64& m, unsigned pe) { m &= pe_bit(pe); }
inline void pe_clear(u64& m) { m = 0; }
template <typename F>
inline void pe_for_each(u64 m, F&& f) {
  while (m) {
    f(static_cast<unsigned>(std::countr_zero(m)));
    m &= m - 1;
  }
}
template <typename F>
inline void pe_for_each_other(u64 m, unsigned pe, F&& f) {
  pe_for_each(m & ~pe_bit(pe), static_cast<F&&>(f));
}

inline bool pe_test(const PeSet& m, unsigned pe) { return m.test(pe); }
inline void pe_set(PeSet& m, unsigned pe) { m.set(pe); }
inline void pe_reset(PeSet& m, unsigned pe) { m.reset(pe); }
inline void pe_assign(PeSet& m, unsigned pe, bool v) { m.assign(pe, v); }
inline bool pe_any(const PeSet& m) { return m.any(); }
inline bool pe_any_other(const PeSet& m, unsigned pe) { return m.any_other(pe); }
inline int pe_first_other(const PeSet& m, unsigned pe) { return m.first_other(pe); }
inline void pe_retain_only(PeSet& m, unsigned pe) { m.retain_only(pe); }
inline void pe_clear(PeSet& m) { m.clear(); }
template <typename F>
inline void pe_for_each(const PeSet& m, F&& f) {
  m.for_each(static_cast<F&&>(f));
}
template <typename F>
inline void pe_for_each_other(const PeSet& m, unsigned pe, F&& f) {
  m.for_each_other(pe, static_cast<F&&>(f));
}

}  // namespace rapwam
