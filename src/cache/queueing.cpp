#include "cache/queueing.h"

#include <cmath>

namespace rapwam {

namespace {

/// Cycles per reference a PE needs when running at efficiency `e`
/// against `pes-1` peers: 1 compute cycle + t bus words, each costing
/// the service time plus the M/D/1 queueing delay at utilisation rho.
double cycles_per_ref(unsigned pes, double e, double t, double s) {
  double rho = static_cast<double>(pes) * e * t * s;
  if (rho >= 1.0) return 1e18;  // past saturation: effectively infinite
  double wait = s * rho / (2.0 * (1.0 - rho));
  return 1.0 + t * (s + wait);
}

}  // namespace

BusEstimate bus_contention(unsigned pes, double traffic_ratio, const BusParams& p) {
  if (traffic_ratio < 0 || p.service_cycles < 0)
    fail("bus model: negative traffic ratio or service time");
  BusEstimate out;
  if (pes == 0 || traffic_ratio == 0 || p.service_cycles == 0) {
    out.pe_efficiency = 1.0;
    out.aggregate_speedup = static_cast<double>(pes);
    return out;
  }

  // The consistent operating point satisfies e = 1/cycles_per_ref(e).
  // g(e) = e - 1/cycles_per_ref(e) is monotone increasing (higher
  // efficiency => higher bus load => longer queues => lower achievable
  // rate), so the root is unique; bisect on e in (0, 1].
  const double t = traffic_ratio;
  const double s = p.service_cycles;
  double lo = 0.0, hi = 1.0;
  int i = 0;
  for (; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    double g = mid - 1.0 / cycles_per_ref(pes, mid, t, s);
    if (g > 0) hi = mid; else lo = mid;
    if (hi - lo < 1e-12) break;
  }
  double e = 0.5 * (lo + hi);
  out.iterations = i + 1;
  out.pe_efficiency = e;
  out.utilization = std::min(1.0, static_cast<double>(pes) * e * t * s);
  out.aggregate_speedup = static_cast<double>(pes) * e;
  return out;
}

}  // namespace rapwam
