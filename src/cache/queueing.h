// Bus/memory contention model.
//
// The paper stops at traffic ratios and notes that "the time penalty to
// access shared memory due to contention must also be analyzed ... a
// queueing model for this purpose is proposed in [Tick's thesis]".
// This module provides that missing piece: a fixed-point M/D/1-style
// model of PEs sharing one bus.
//
// Each running PE issues one data reference per cycle; a fraction
// `traffic_ratio` of reference-words appears on the bus (measured by
// the cache simulation), and the bus serves one word in
// `service_cycles` cycles (interleaved memory => < 1 effective cycle).
// PEs stall while their bus requests queue, which lowers their issue
// rate, which lowers bus load — the model iterates this feedback to a
// fixed point.
#pragma once

#include "support/common.h"

namespace rapwam {

struct BusParams {
  /// Effective bus+memory service time per word, in PE cycles. A
  /// fast bus with n-way interleaved memory pipelines transfers:
  /// values < 1 model the "multiple or overlapped busses and
  /// interleaved memories" of the paper's §3.3.
  double service_cycles = 0.5;
};

struct BusEstimate {
  double utilization = 0;     ///< fraction of bus cycles busy (rho)
  double pe_efficiency = 0;   ///< achieved / ideal issue rate of one PE
  double aggregate_speedup = 0;  ///< pes * pe_efficiency
  int iterations = 0;         ///< fixed-point iterations used
};

/// Solves the contention fixed point for `pes` processors each
/// generating `traffic_ratio` bus words per reference.
/// Throws on non-physical inputs (negative ratios or service times).
BusEstimate bus_contention(unsigned pes, double traffic_ratio, const BusParams& p);

}  // namespace rapwam
