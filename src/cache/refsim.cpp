#include "cache/refsim.h"

#include <unordered_map>

namespace rapwam {

ReferenceCacheSim::ReferenceCacheSim(const CacheConfig& cfg, unsigned num_pes)
    : cfg_(cfg) {
  RW_CHECK(cfg.line_words > 0 && cfg.size_words % cfg.line_words == 0,
           "cache size must be a multiple of the line size");
  caches_.reserve(num_pes);
  for (unsigned i = 0; i < num_pes; ++i) caches_.emplace_back(cfg);
}

bool ReferenceCacheSim::others_hold(unsigned pe, u64 tag) const {
  for (unsigned i = 0; i < caches_.size(); ++i) {
    if (i == pe) continue;
    if (caches_[i].probe(tag)) return true;
  }
  return false;
}

int ReferenceCacheSim::dirty_holder(unsigned pe, u64 tag) const {
  for (unsigned i = 0; i < caches_.size(); ++i) {
    if (i == pe) continue;
    const Line* l = caches_[i].probe(tag);
    if (l && l->state == LineState::Dirty) return static_cast<int>(i);
  }
  return -1;
}

void ReferenceCacheSim::invalidate_others(unsigned pe, u64 tag) {
  for (unsigned i = 0; i < caches_.size(); ++i) {
    if (i != pe) caches_[i].invalidate(tag);
  }
}

void ReferenceCacheSim::demote_exclusive_others(unsigned pe, u64 tag) {
  for (unsigned i = 0; i < caches_.size(); ++i) {
    if (i == pe) continue;
    Line* l = caches_[i].probe(tag);
    if (l && l->state == LineState::Exclusive) l->state = LineState::Shared;
  }
}

void ReferenceCacheSim::fill(unsigned pe, u64 tag, LineState st) {
  auto ev = caches_[pe].insert(tag, st);
  if (ev.valid && ev.line.state == LineState::Dirty) {
    stats_.writeback_words += L();
    stats_.bus_words += L();
  }
}

void ReferenceCacheSim::access(const MemRef& r) {
  RW_CHECK(r.pe < caches_.size(), "trace reference PE id >= simulator PE count");
  ++stats_.refs;
  if (r.write) ++stats_.writes; else ++stats_.reads;
  switch (cfg_.protocol) {
    case Protocol::WriteThrough: access_write_through(r); break;
    case Protocol::Copyback: access_copyback(r); break;
    case Protocol::WriteInBroadcast: access_write_in_broadcast(r); break;
    case Protocol::WriteThroughBroadcast: access_write_update_broadcast(r); break;
    case Protocol::Hybrid: access_hybrid(r); break;
  }
}

bool ReferenceCacheSim::invariants_ok() const {
  if (cfg_.protocol == Protocol::Copyback) return true;  // non-coherent
  bool dirty_sole = cfg_.protocol != Protocol::Hybrid;
  std::unordered_map<u64, int> holders, dirty, excl;
  for (const Cache& c : caches_) {
    for (const Line& l : c.lines()) {
      holders[l.tag]++;
      if (l.state == LineState::Dirty) dirty[l.tag]++;
      if (l.state == LineState::Exclusive) excl[l.tag]++;
    }
  }
  for (auto& [tag, n] : dirty) {
    if (n > 1) return false;
    if (dirty_sole && holders[tag] > 1) return false;
  }
  for (auto& [tag, n] : excl) {
    if (holders[tag] > 1) return false;
  }
  return true;
}

void ReferenceCacheSim::access_write_through(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);
  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill(r.pe, tag, LineState::Shared);
    return;
  }
  stats_.writethrough_words += 1;
  stats_.bus_words += 1;
  invalidate_others(r.pe, tag);
  if (l) return;
  ++stats_.misses;
  if (cfg_.write_allocate) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill(r.pe, tag, LineState::Shared);
  }
}

void ReferenceCacheSim::access_copyback(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);
  if (l) {
    if (r.write) l->state = LineState::Dirty;
    return;
  }
  ++stats_.misses;
  if (!r.write) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill(r.pe, tag, LineState::Exclusive);
    return;
  }
  if (cfg_.write_allocate) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill(r.pe, tag, LineState::Dirty);
  } else {
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
  }
}

void ReferenceCacheSim::access_write_in_broadcast(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);

  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    int dh = dirty_holder(r.pe, tag);
    if (dh >= 0) {
      Line* ol = caches_[static_cast<unsigned>(dh)].probe(tag);
      ol->state = LineState::Shared;
      stats_.flush_words += L();
      stats_.bus_words += L();
    } else {
      stats_.fetch_words += L();
      stats_.bus_words += L();
    }
    demote_exclusive_others(r.pe, tag);
    fill(r.pe, tag, others_hold(r.pe, tag) ? LineState::Shared : LineState::Exclusive);
    return;
  }

  if (l) {
    switch (l->state) {
      case LineState::Dirty:
        return;
      case LineState::Exclusive:
        l->state = LineState::Dirty;
        return;
      case LineState::Shared:
        stats_.invalidations += 1;
        stats_.bus_words += 1;
        invalidate_others(r.pe, tag);
        l->state = LineState::Dirty;
        return;
      case LineState::Invalid:
        break;
    }
  }
  ++stats_.misses;
  if (cfg_.write_allocate) {
    int dh = dirty_holder(r.pe, tag);
    if (dh >= 0) {
      stats_.flush_words += L();
      stats_.bus_words += L();
    } else {
      stats_.fetch_words += L();
      stats_.bus_words += L();
    }
    invalidate_others(r.pe, tag);
    fill(r.pe, tag, LineState::Dirty);
  } else {
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
    invalidate_others(r.pe, tag);
  }
}

void ReferenceCacheSim::access_write_update_broadcast(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);

  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    int dh = dirty_holder(r.pe, tag);
    if (dh >= 0) {
      Line* ol = caches_[static_cast<unsigned>(dh)].probe(tag);
      ol->state = LineState::Shared;
      stats_.flush_words += L();
      stats_.bus_words += L();
    } else {
      stats_.fetch_words += L();
      stats_.bus_words += L();
    }
    demote_exclusive_others(r.pe, tag);
    fill(r.pe, tag, others_hold(r.pe, tag) ? LineState::Shared : LineState::Exclusive);
    return;
  }

  if (l) {
    if (l->state == LineState::Shared) {
      if (others_hold(r.pe, tag)) {
        stats_.update_words += 1;
        stats_.bus_words += 1;
      } else {
        l->state = LineState::Dirty;
      }
      return;
    }
    l->state = LineState::Dirty;
    return;
  }
  ++stats_.misses;
  if (cfg_.write_allocate) {
    int dh = dirty_holder(r.pe, tag);
    if (dh >= 0) {
      Line* ol = caches_[static_cast<unsigned>(dh)].probe(tag);
      ol->state = LineState::Shared;
      stats_.flush_words += L();
      stats_.bus_words += L();
    } else {
      stats_.fetch_words += L();
      stats_.bus_words += L();
    }
    demote_exclusive_others(r.pe, tag);
    bool shared = others_hold(r.pe, tag);
    fill(r.pe, tag, shared ? LineState::Shared : LineState::Dirty);
    if (shared) {
      stats_.update_words += 1;
      stats_.bus_words += 1;
    }
  } else {
    stats_.update_words += 1;
    stats_.bus_words += 1;
  }
}

void ReferenceCacheSim::access_hybrid(const MemRef& r) {
  Cache& c = caches_[r.pe];
  u64 tag = tag_of(r.addr);
  Line* l = c.lookup(tag);
  bool global = traits_of(r.cls).locality == Locality::Global;

  if (!r.write) {
    if (l) return;
    ++stats_.misses;
    if (!global && dirty_holder(r.pe, tag) >= 0) ++stats_.coherence_violations;
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill(r.pe, tag, LineState::Shared);
    return;
  }

  if (global) {
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
    invalidate_others(r.pe, tag);
    if (l) return;
    ++stats_.misses;
    if (cfg_.write_allocate) {
      stats_.fetch_words += L();
      stats_.bus_words += L();
      fill(r.pe, tag, LineState::Shared);
    }
    return;
  }

  if (dirty_holder(r.pe, tag) >= 0) ++stats_.coherence_violations;
  if (l) {
    l->state = LineState::Dirty;
    return;
  }
  ++stats_.misses;
  if (cfg_.write_allocate) {
    stats_.fetch_words += L();
    stats_.bus_words += L();
    fill(r.pe, tag, LineState::Dirty);
  } else {
    stats_.writethrough_words += 1;
    stats_.bus_words += 1;
  }
}

}  // namespace rapwam
