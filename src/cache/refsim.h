// Reference (naive broadcast-snoop) multiprocessor cache simulator.
//
// This is the pre-directory implementation of MultiCacheSim, retained
// verbatim as an executable specification: every snoop query walks all
// other PEs' caches (O(num_PEs) probes per reference) and every
// reference pays the per-protocol dispatch in access(). It exists so
// that
//   * the differential test suite can replay randomized traces through
//     both simulators and assert bit-identical TrafficStats, and
//   * bench_micro_cache can report the directory speedup against the
//     broadcast baseline on the same trace.
// Keep its protocol logic in lockstep with docs/DESIGN.md §3; it is
// deliberately not optimised.
#pragma once

#include <vector>

#include "cache/multisim.h"

namespace rapwam {

class ReferenceCacheSim {
 public:
  ReferenceCacheSim(const CacheConfig& cfg, unsigned num_pes);

  void access(const MemRef& r);
  void replay(const std::vector<u64>& packed) {
    for (u64 p : packed) access(MemRef::unpack(p));
  }

  const TrafficStats& stats() const { return stats_; }
  const Cache& cache(unsigned pe) const { return caches_[pe]; }
  unsigned num_caches() const { return static_cast<unsigned>(caches_.size()); }
  bool invariants_ok() const;

 private:
  u64 tag_of(u64 addr) const { return addr / cfg_.line_words; }
  u64 L() const { return cfg_.line_words; }
  bool others_hold(unsigned pe, u64 tag) const;
  int dirty_holder(unsigned pe, u64 tag) const;  // -1 if none
  void invalidate_others(unsigned pe, u64 tag);
  void demote_exclusive_others(unsigned pe, u64 tag);
  void fill(unsigned pe, u64 tag, LineState st);

  void access_write_through(const MemRef& r);
  void access_copyback(const MemRef& r);
  void access_write_in_broadcast(const MemRef& r);
  void access_write_update_broadcast(const MemRef& r);
  void access_hybrid(const MemRef& r);

  CacheConfig cfg_;
  std::vector<Cache> caches_;
  TrafficStats stats_;
};

}  // namespace rapwam
