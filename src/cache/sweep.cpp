#include "cache/sweep.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "checkpoint/journal.h"

namespace rapwam {

namespace {
TrafficStats replay_point(const SweepPoint& p, const CancelToken* cancel) {
  RW_CHECK(p.trace || p.chunks, "sweep point has no trace");
  // HierCacheSim with the L2 disabled delegates to the flat fast path,
  // so every sweep point goes through the hierarchy-aware simulator.
  HierCacheSim sim(p.cfg, p.num_pes);
  if (!cancel) {
    // No token: the original uninterrupted loops, nothing on the path.
    if (p.chunks) sim.replay(*p.chunks);
    else sim.replay(*p.trace);
    return sim.stats();
  }
  // Cooperative cancellation at chunk granularity: one token check per
  // kChunkRefs references, never per reference.
  if (p.chunks) {
    p.chunks->for_each_chunk([&](const u64* refs, std::size_t n) {
      cancel->checkpoint();
      sim.replay(refs, n);
    });
  } else {
    for (std::size_t i = 0; i < p.trace->size(); i += kChunkRefs) {
      cancel->checkpoint();
      sim.replay(p.trace->data() + i, std::min(kChunkRefs, p.trace->size() - i));
    }
  }
  return sim.stats();
}
}  // namespace

std::vector<SweepResult> run_sweep(ThreadPool& pool,
                                   const std::vector<SweepPoint>& points,
                                   const CancelToken* cancel,
                                   SweepJournal* journal) {
  // Journaled points come back exactly as recorded — no re-simulation,
  // so a resumed sweep's rows are bit-identical to the first run's.
  std::vector<std::future<TrafficStats>> futs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (journal && journal->is_done(i)) continue;
    const SweepPoint& p = points[i];
    futs[i] = pool.submit([p, cancel]() { return replay_point(p, cancel); });
  }
  std::vector<SweepResult> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (journal && journal->is_done(i)) {
      out.push_back(SweepResult{points[i], journal->result(i)});
      continue;
    }
    out.push_back(SweepResult{points[i], futs[i].get()});
    if (journal) journal->record(i, out.back().stats);
  }
  return out;
}

std::vector<SweepResult> run_sweep_streaming(
    const std::vector<SweepPoint>& points,
    const std::function<void(TraceSink&)>& produce, bool busy_only,
    std::size_t window_chunks, const CancelToken* cancel,
    SweepJournal* journal) {
  std::vector<SweepResult> out;
  out.reserve(points.size());
  for (const SweepPoint& p : points) out.push_back(SweepResult{p, {}});
  if (points.empty()) {
    // Still drive the producer so its side effects (e.g. run stats)
    // happen; the stream has no consumers and drops chunks on push.
    ChunkStream stream(0, window_chunks);
    StreamSink sink(stream, busy_only);
    produce(sink);
    sink.finish();
    return out;
  }

  ChunkStream stream(static_cast<unsigned>(points.size()), window_chunks);
  std::vector<std::exception_ptr> errors(points.size());
  std::vector<std::thread> consumers;
  consumers.reserve(points.size());
  for (unsigned i = 0; i < points.size(); ++i) {
    if (journal && journal->is_done(i)) {
      // Already recorded: return the journaled stats verbatim and
      // detach so the window never waits for this point.
      out[i].stats = journal->result(i);
      stream.detach(i);
      continue;
    }
    consumers.emplace_back([&, i] {
      try {
        HierCacheSim sim(points[i].cfg, points[i].num_pes);
        while (std::shared_ptr<const std::vector<u64>> c = stream.next(i)) {
          if (cancel) cancel->checkpoint();
          sim.replay(*c);
        }
        out[i].stats = sim.stats();
      } catch (...) {
        errors[i] = std::current_exception();
        stream.detach(i);  // don't hold the window open for a dead consumer
      }
    });
  }

  std::exception_ptr produce_error;
  {
    StreamSink sink(stream, busy_only);
    // Cancellation aborts the producer too (the generation run), so an
    // expired request doesn't keep emulating into a window nobody will
    // drain past the consumers' own checkpoints.
    CancelCheckSink checked(sink, cancel);
    try {
      produce(checked);
    } catch (...) {
      produce_error = std::current_exception();
    }
    sink.finish();  // flush + close even on error, so consumers terminate
  }
  for (std::thread& t : consumers) t.join();

  if (produce_error) std::rethrow_exception(produce_error);
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  // Journal only after the producer and every consumer finished clean:
  // a consumer that saw a truncated stream (producer threw) holds
  // partial stats, and recording those as done would poison every
  // later resume.
  if (journal) {
    for (std::size_t i = 0; i < points.size(); ++i)
      if (!journal->is_done(i)) journal->record(i, out[i].stats);
  }
  return out;
}

TrafficStats replay_traffic(const CacheConfig& cfg, unsigned num_pes,
                            const std::vector<u64>& trace) {
  HierCacheSim sim(cfg, num_pes);
  sim.replay(trace);
  return sim.stats();
}

TrafficStats replay_traffic(const CacheConfig& cfg, unsigned num_pes,
                            const ChunkedTrace& trace) {
  HierCacheSim sim(cfg, num_pes);
  sim.replay(trace);
  return sim.stats();
}

}  // namespace rapwam
