#include "cache/sweep.h"

namespace rapwam {

std::vector<SweepResult> run_sweep(ThreadPool& pool,
                                   const std::vector<SweepPoint>& points) {
  std::vector<std::future<TrafficStats>> futs;
  futs.reserve(points.size());
  for (const SweepPoint& p : points) {
    futs.push_back(pool.submit([p]() {
      MultiCacheSim sim(p.cfg, p.num_pes);
      sim.replay(*p.trace);
      return sim.stats();
    }));
  }
  std::vector<SweepResult> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.push_back(SweepResult{points[i], futs[i].get()});
  }
  return out;
}

TrafficStats replay_traffic(const CacheConfig& cfg, unsigned num_pes,
                            const std::vector<u64>& trace) {
  MultiCacheSim sim(cfg, num_pes);
  sim.replay(trace);
  return sim.stats();
}

}  // namespace rapwam
