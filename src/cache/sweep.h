// Parallel parameter sweeps over cache configurations: replays one or
// more traces through many (protocol × size × policy) points using a
// host thread pool. This is the harness behind Figure 4.
//
// Two fan-out modes (docs/DESIGN.md §8):
//   * generate-once: each trace lives in shared immutable chunk
//     storage (ChunkedTrace) and every point replays it independently
//     on the pool;
//   * streaming: run_sweep_streaming() replays the points concurrently
//     with trace *generation* over a bounded chunk window, so nothing
//     is ever materialized and peak memory is O(window), independent
//     of trace length.
#pragma once

#include <functional>
#include <vector>

#include "cache/hierarchy.h"
#include "support/cancel.h"
#include "support/thread_pool.h"

namespace rapwam {

class SweepJournal;

struct SweepPoint {
  /// cfg.l2 adds the hierarchy dimension (L2 size / ways / inclusion);
  /// points replay through HierCacheSim, which is the flat simulator
  /// whenever the L2 is disabled.
  CacheConfig cfg;
  unsigned num_pes = 1;
  /// The trace to replay: either a flat packed vector or shared chunk
  /// storage (exactly one must be set, except under run_sweep_streaming
  /// which supplies the stream itself and ignores both).
  const std::vector<u64>* trace = nullptr;   ///< packed refs, global order
  const ChunkedTrace* chunks = nullptr;      ///< shared immutable chunks
  int label = 0;                             ///< caller-defined id
};

struct SweepResult {
  SweepPoint point;
  TrafficStats stats;
};

/// Runs every point (each an independent cache simulation) on `pool`.
/// Results are returned in input order. `cancel` (optional) is checked
/// at chunk granularity inside every point's replay loop; once it
/// fires, remaining points stop early and run_sweep rethrows the
/// CancelledError — the server's per-request deadline path
/// (docs/DESIGN.md §10).
///
/// `journal` (optional, checkpoint/journal.h) makes the sweep
/// resumable: points the journal already records are returned from it
/// verbatim without re-simulation, and every newly completed point is
/// appended to it (durably, before run_sweep returns it). The caller
/// must have opened the journal under sweep_config_hash(points, ...)
/// so recorded indices mean the same points.
std::vector<SweepResult> run_sweep(ThreadPool& pool,
                                   const std::vector<SweepPoint>& points,
                                   const CancelToken* cancel = nullptr,
                                   SweepJournal* journal = nullptr);

/// Streaming fan-out: `produce` runs on the calling thread and emits
/// the whole reference stream into the sink it is handed (typically by
/// running the emulator with that sink); every point consumes the same
/// bounded chunk window concurrently and sees the chunks in emission
/// order. `busy_only` filters the stream exactly as TraceBuffer would.
///
/// Consumers run on dedicated threads, not a ThreadPool: the window
/// couples their progress (a chunk is only released once *every*
/// consumer took it), so a consumer parked in a pool queue behind the
/// others would deadlock the producer. Results are in input order, and
/// are bit-identical to materializing the trace and replaying it per
/// point (pinned by tests/test_pipeline_diff.cpp).
/// `journal` behaves as in run_sweep: already-recorded points do not
/// consume the stream at all (they detach immediately). Fresh points
/// are journaled together once the stream completed cleanly — in
/// streaming mode every consumer shares one pass over the trace, so a
/// consumer that outlived a failed producer holds partial stats, and
/// recording before the join could poison later resumes.
std::vector<SweepResult> run_sweep_streaming(
    const std::vector<SweepPoint>& points,
    const std::function<void(TraceSink&)>& produce, bool busy_only = true,
    std::size_t window_chunks = ChunkStream::kDefaultWindow,
    const CancelToken* cancel = nullptr, SweepJournal* journal = nullptr);

/// One-point convenience used by the reports and benches: replays
/// `trace` through a fresh simulator and returns its traffic counters.
TrafficStats replay_traffic(const CacheConfig& cfg, unsigned num_pes,
                            const std::vector<u64>& trace);
TrafficStats replay_traffic(const CacheConfig& cfg, unsigned num_pes,
                            const ChunkedTrace& trace);

}  // namespace rapwam
