// Parallel parameter sweeps over cache configurations: replays one or
// more traces through many (protocol × size × policy) points using a
// host thread pool. This is the harness behind Figure 4.
#pragma once

#include <functional>
#include <vector>

#include "cache/multisim.h"
#include "support/thread_pool.h"

namespace rapwam {

struct SweepPoint {
  CacheConfig cfg;
  unsigned num_pes = 1;
  const std::vector<u64>* trace = nullptr;  ///< packed refs, global order
  int label = 0;                            ///< caller-defined id
};

struct SweepResult {
  SweepPoint point;
  TrafficStats stats;
};

/// Runs every point (each an independent cache simulation) on `pool`.
/// Results are returned in input order.
std::vector<SweepResult> run_sweep(ThreadPool& pool, const std::vector<SweepPoint>& points);

/// One-point convenience used by the reports and benches: replays
/// `trace` through a fresh simulator and returns its traffic counters.
TrafficStats replay_traffic(const CacheConfig& cfg, unsigned num_pes,
                            const std::vector<u64>& trace);

}  // namespace rapwam
