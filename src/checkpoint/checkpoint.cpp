#include "checkpoint/checkpoint.h"

#include <cstdio>

#include "server/faults.h"
#include "support/atomic_file.h"

namespace rapwam {

u64 trace_fingerprint(const ChunkedTrace& t) {
  ByteWriter w;
  w.put_u64(t.size());
  w.put_u64(t.num_chunks());
  const RefCounts& c = t.counts();
  w.put_u64(c.total);
  w.put_u64(c.reads);
  w.put_u64(c.writes);
  w.put_u64(c.busy);
  w.put_u32(t.num_pes());
  u64 h = fnv1a(w.str().data(), w.str().size());
  t.for_each_chunk([&](const u64* p, std::size_t n) {
    h = fnv1a(p, n * sizeof(u64), h);
  });
  return h;
}

namespace {

void hash_config(ByteWriter& w, const CacheConfig& cfg, unsigned num_pes,
                 bool wide, u64 trace_fp) {
  w.put_u8(static_cast<u8>(cfg.protocol));
  w.put_u32(cfg.size_words);
  w.put_u32(cfg.line_words);
  w.put_u8(cfg.write_allocate ? 1 : 0);
  w.put_u32(cfg.ways);
  w.put_u32(cfg.l2.size_words);
  w.put_u32(cfg.l2.ways);
  w.put_u8(static_cast<u8>(cfg.l2.inclusion));
  w.put_u32(cfg.l2.hit_extra_cycles);
  w.put_u32(num_pes);
  w.put_u8(wide ? 1 : 0);
  w.put_u64(trace_fp);
}

}  // namespace

u64 replay_config_hash(const CacheConfig& cfg, unsigned num_pes, bool wide,
                       u64 trace_fp) {
  ByteWriter w;
  w.put_u8(0);  // untimed
  hash_config(w, cfg, num_pes, wide, trace_fp);
  return fnv1a(w.str().data(), w.str().size());
}

u64 timed_config_hash(const CacheConfig& cfg, unsigned num_pes, bool wide,
                      const TimingParams& tp, u64 trace_fp) {
  ByteWriter w;
  w.put_u8(1);  // timed
  hash_config(w, cfg, num_pes, wide, trace_fp);
  w.put_u32(tp.cycles_per_ref);
  w.put_u32(tp.bus_service_cycles);
  w.put_u32(tp.interleave);
  w.put_u32(tp.write_buffer_depth);
  w.put_u32(tp.mem_extra_cycles);
  return fnv1a(w.str().data(), w.str().size());
}

namespace {

std::string frame_from_payload(ByteWriter&& payload) {
  std::string body = payload.take();
  ByteWriter frame;
  frame.put_u32(kCheckpointMagic);
  frame.put_u32(kCheckpointVersion);
  frame.put_u64(body.size());
  frame.put_u64(fnv1a(body.data(), body.size()));
  frame.put_bytes(body.data(), body.size());
  return frame.take();
}

ByteWriter payload_header(const CheckpointMeta& meta) {
  ByteWriter w;
  w.put_u64(meta.config_hash);
  w.put_u8(meta.timed ? 1 : 0);
  w.put_u64(meta.chunk_index);
  w.put_u64(meta.refs_done);
  return w;
}

}  // namespace

std::string checkpoint_serialize(const CheckpointMeta& meta,
                                 const HierCacheSim& sim) {
  RW_CHECK(!meta.timed, "untimed checkpoint with a timed meta");
  ByteWriter w = payload_header(meta);
  sim.save_state(w);
  return frame_from_payload(std::move(w));
}

std::string checkpoint_serialize(const CheckpointMeta& meta,
                                 const TimedReplay& replay) {
  RW_CHECK(meta.timed, "timed checkpoint with an untimed meta");
  ByteWriter w = payload_header(meta);
  replay.save_state(w);
  return frame_from_payload(std::move(w));
}

RestoredReplay checkpoint_parse(const std::string& frame,
                                const CacheConfig& cfg, unsigned num_pes,
                                DirRep rep, const TimingParams* tp,
                                u64 expected_hash) {
  // Outside-in validation: nothing below constructs or mutates
  // simulator state until the frame as a whole has proven intact.
  ByteReader hdr(frame, "checkpoint");
  if (frame.size() < 24)
    fail("checkpoint: file too short to hold a frame header (" +
         std::to_string(frame.size()) + " bytes)");
  if (hdr.get_u32() != kCheckpointMagic)
    fail("checkpoint: bad magic (not a checkpoint file)");
  u32 version = hdr.get_u32();
  if (version != kCheckpointVersion)
    fail("checkpoint: version " + std::to_string(version) +
         " not supported (expected " + std::to_string(kCheckpointVersion) + ")");
  u64 payload_len = hdr.get_u64();
  u64 checksum = hdr.get_u64();
  if (payload_len != hdr.remaining())
    fail("checkpoint: payload length " + std::to_string(payload_len) +
         " does not match the " + std::to_string(hdr.remaining()) +
         " bytes present");
  const char* payload = frame.data() + hdr.offset();
  if (fnv1a(payload, payload_len) != checksum)
    fail("checkpoint: checksum mismatch (corrupt frame)");

  ByteReader r(payload, payload_len, "checkpoint");
  RestoredReplay out;
  out.meta.config_hash = r.get_u64();
  out.meta.timed = r.get_u8() != 0;
  out.meta.chunk_index = r.get_u64();
  out.meta.refs_done = r.get_u64();
  if (out.meta.config_hash != expected_hash)
    fail("checkpoint: configuration hash mismatch (frame was cut from a "
         "different run: config, PE count, timing or trace differ)");
  if (out.meta.timed != (tp != nullptr))
    fail(out.meta.timed
             ? "checkpoint: timed frame offered to an untimed replay"
             : "checkpoint: untimed frame offered to a timed replay");

  if (tp) {
    out.timed = std::make_unique<TimedReplay>(cfg, num_pes, *tp, rep);
    out.timed->restore_state(r);
  } else {
    out.sim = std::make_unique<HierCacheSim>(cfg, num_pes, rep);
    out.sim->restore_state(r);
  }
  r.expect_end();
  u64 refs = tp ? out.timed->traffic().refs : out.sim->stats().refs;
  if (refs != out.meta.refs_done)
    fail("checkpoint: reference count " + std::to_string(refs) +
         " disagrees with the recorded " + std::to_string(out.meta.refs_done));
  return out;
}

CheckpointWriter::CheckpointWriter(std::string path)
    : path_(std::move(path)),
      prev_path_(path_ + ".prev"),
      tmp_path_(path_ + ".tmp") {
  RW_CHECK(!path_.empty(), "checkpoint path must not be empty");
}

u64 CheckpointWriter::publish(const std::string& frame, FaultInjector* faults) {
  u64 index = written_;
  bool crash = faults && faults->crash_checkpoint(index);
  std::FILE* f = std::fopen(tmp_path_.c_str(), "wb");
  if (!f) fail("cannot create checkpoint temporary " + tmp_path_);
  // An injected crash tears the write mid-frame: half the bytes reach
  // the temporary and nothing is published, exactly the on-disk state
  // a power cut at this instant would leave.
  std::size_t n = crash ? frame.size() / 2 : frame.size();
  if (std::fwrite(frame.data(), 1, n, f) != n) {
    std::fclose(f);
    std::remove(tmp_path_.c_str());
    fail("cannot write checkpoint temporary " + tmp_path_);
  }
  if (crash) {
    std::fclose(f);
    fail("injected checkpoint write crash at checkpoint " +
         std::to_string(index));
  }
  try {
    flush_and_sync(f, "checkpoint temporary " + tmp_path_);
  } catch (...) {
    std::fclose(f);
    std::remove(tmp_path_.c_str());
    throw;
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp_path_.c_str());
    fail("cannot close checkpoint temporary " + tmp_path_);
  }
  // Keep the previous snapshot as the fallback: if the rename below
  // (or a later injected corruption) damages `path`, resume still has
  // `path.prev`. The rotation rename is atomic on the same directory.
  std::remove(prev_path_.c_str());
  std::rename(path_.c_str(), prev_path_.c_str());  // ENOENT on first write: fine
  publish_file(tmp_path_, path_);
  ++written_;
  if (faults) faults->damage_checkpoint_file(index, path_);
  return index;
}

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) fail("cannot read checkpoint " + path);
  return true;
}

}  // namespace

std::optional<ResumeOutcome> checkpoint_resume(const std::string& path,
                                               const CacheConfig& cfg,
                                               unsigned num_pes, DirRep rep,
                                               const TimingParams* tp,
                                               u64 expected_hash) {
  ResumeOutcome out;
  bool found_any = false;
  for (const std::string& candidate : {path, path + ".prev"}) {
    std::string frame;
    if (!read_file(candidate, frame)) continue;
    found_any = true;
    try {
      out.restored = checkpoint_parse(frame, cfg, num_pes, rep, tp,
                                      expected_hash);
      out.source = candidate;
      return out;
    } catch (const Error& e) {
      ++out.rejected;
      out.errors.push_back(candidate + ": " + e.what());
    }
  }
  if (!found_any) return std::nullopt;
  std::string why;
  for (const std::string& e : out.errors) why += "\n  " + e;
  fail("no usable checkpoint at " + path + ":" + why);
}

}  // namespace rapwam
