// Crash-safe checkpoint/resume for trace replays (docs/DESIGN.md §12).
//
// A checkpoint is a single self-validating binary frame capturing the
// complete observable simulator state at a chunk boundary: the
// coherence engine (per-PE L1 contents with LRU order, the sharing
// directory in either representation, the shared L2) and — for timed
// replays — the full timing state (per-PE clocks, posted-write
// buffers, the bus timeline). Restoring the frame into a freshly
// constructed simulator and replaying the remaining chunks produces
// bit-identical TrafficStats/TimingStats to the uninterrupted run;
// the randomized interrupt-point differential suite and the
// SIGKILL-and-resume harness test pin this across every protocol ×
// directory representation × hierarchy × timing combination.
//
// Frame layout (all little-endian):
//
//   u32 magic "RWCP"   u32 version   u64 payload_len   u64 fnv1a(payload)
//   payload:
//     u64 config_hash   u8 mode (0 untimed / 1 timed)
//     u64 chunk_index (chunks fully replayed)   u64 refs_done
//     <simulator state>  (MultiCacheSim/HierCacheSim/TimedReplay
//                         save_state streams)
//
// The parser validates outside-in — length, magic, version, exact
// payload length, checksum, then config hash and mode — and only then
// builds a fresh simulator to restore into, so a damaged frame can
// never mutate caller state. config_hash binds the frame to the exact
// run: cache geometry, protocol, PE count, directory representation,
// timing parameters and a fingerprint of the trace itself, so a
// checkpoint can never silently resume a different experiment.
//
// Publication is durable and atomic (support/atomic_file.h): write
// `<path>.tmp`, fsync, rotate the previous checkpoint to
// `<path>.prev`, rename, fsync the directory. The rotation means a
// crash *during* publication (torn temporary, injected via
// FaultPlan::fail_checkpoint) still leaves the previous good snapshot
// recoverable; checkpoint_resume tries `path` then `path.prev` and
// reports what it rejected.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "support/bytes.h"
#include "timing/timed_replay.h"

namespace rapwam {

class FaultInjector;

/// "RWCP" in little-endian byte order.
inline constexpr u32 kCheckpointMagic =
    u32('R') | (u32('W') << 8) | (u32('C') << 16) | (u32('P') << 24);
/// Bump on ANY layout change — frame fields, save_state streams, the
/// TrafficStats field set (pinned by the static_assert in multisim.cpp)
/// — so stale frames are rejected by version, not misparsed.
inline constexpr u32 kCheckpointVersion = 1;

/// Everything about a frame except the simulator state itself.
struct CheckpointMeta {
  u64 config_hash = 0;  ///< run identity: config + PEs + rep + trace
  u64 chunk_index = 0;  ///< chunks fully replayed when the frame was cut
  u64 refs_done = 0;    ///< references replayed (redundant cross-check)
  bool timed = false;   ///< TimedReplay frame vs. bare HierCacheSim
};

/// Identity of the trace a checkpoint was cut from: counters, shape
/// and the full packed contents. Computed once per run (one linear
/// pass) and folded into the config hash, so a frame can never resume
/// against different input data.
u64 trace_fingerprint(const ChunkedTrace& t);

/// Run-identity hashes. `wide` is the *resolved* directory
/// representation (DirRep::Wide, or Auto with > 64 PEs).
u64 replay_config_hash(const CacheConfig& cfg, unsigned num_pes, bool wide,
                       u64 trace_fp);
u64 timed_config_hash(const CacheConfig& cfg, unsigned num_pes, bool wide,
                      const TimingParams& tp, u64 trace_fp);
/// Resolves DirRep the way the simulator constructor does.
inline bool resolve_wide(DirRep rep, unsigned num_pes) {
  return rep == DirRep::Wide || (rep == DirRep::Auto && num_pes > 64);
}

/// Serializes a complete frame (header + payload). meta.timed must
/// match the overload.
std::string checkpoint_serialize(const CheckpointMeta& meta,
                                 const HierCacheSim& sim);
std::string checkpoint_serialize(const CheckpointMeta& meta,
                                 const TimedReplay& replay);

/// A successfully parsed-and-restored frame: exactly one of the two
/// simulators is set, matching meta.timed.
struct RestoredReplay {
  CheckpointMeta meta;
  std::unique_ptr<HierCacheSim> sim;
  std::unique_ptr<TimedReplay> timed;
};

/// Validates `frame` outside-in and restores it into a freshly
/// constructed simulator of the given configuration. Pass `tp` to
/// expect a timed frame, null for an untimed one; `expected_hash` is
/// the caller's own config hash for this run. Throws Error on any
/// defect — truncation, bad magic/version/checksum, hash or mode
/// mismatch, malformed state — without side effects on caller state.
RestoredReplay checkpoint_parse(const std::string& frame,
                                const CacheConfig& cfg, unsigned num_pes,
                                DirRep rep, const TimingParams* tp,
                                u64 expected_hash);

/// Rotating durable checkpoint writer for one run: publish() writes
/// the frame to `<path>.tmp`, fsyncs it, rotates any existing `path`
/// to `<path>.prev`, renames the temporary into place and fsyncs the
/// directory. An optional FaultInjector drives the crash/corruption
/// matrix (torn write, truncated or bit-flipped published file).
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string path);

  /// Publishes one frame; returns the 0-based index of this write.
  /// With an injected crash, leaves a torn temporary (exactly the
  /// on-disk state of a real mid-write power cut) and throws Error.
  u64 publish(const std::string& frame, FaultInjector* faults = nullptr);

  u64 written() const { return written_; }
  const std::string& path() const { return path_; }
  const std::string& prev_path() const { return prev_path_; }

 private:
  std::string path_;
  std::string prev_path_;
  std::string tmp_path_;
  u64 written_ = 0;
};

/// Outcome of a resume attempt that found at least one candidate file.
struct ResumeOutcome {
  RestoredReplay restored;
  std::string source;           ///< which file resumed: path or path.prev
  u32 rejected = 0;             ///< candidates discarded as damaged
  std::vector<std::string> errors;  ///< why each rejected one failed
};

/// Tries `path`, then `path.prev`. Returns nullopt when neither file
/// exists (a clean first run). Throws Error listing every rejection
/// when candidates exist but none is valid — the caller decides
/// whether that means a clean restart or a hard failure.
std::optional<ResumeOutcome> checkpoint_resume(const std::string& path,
                                               const CacheConfig& cfg,
                                               unsigned num_pes, DirRep rep,
                                               const TimingParams* tp,
                                               u64 expected_hash);

}  // namespace rapwam
