#include "checkpoint/journal.h"

#include <unistd.h>

#include "cache/sweep.h"
#include "support/atomic_file.h"
#include "support/bytes.h"

namespace rapwam {

namespace {
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kRecordBytes = 4 + 8 + 19 * 8 + 8;

std::string record_body(u64 index, const TrafficStats& stats) {
  ByteWriter w;
  w.put_u64(index);
  save_traffic(w, stats);
  return w.take();
}
}  // namespace

u64 sweep_config_hash(const std::vector<SweepPoint>& points, u64 trace_fp) {
  ByteWriter w;
  w.put_u64(trace_fp);
  w.put_u64(points.size());
  for (const SweepPoint& p : points) {
    w.put_u8(static_cast<u8>(p.cfg.protocol));
    w.put_u32(p.cfg.size_words);
    w.put_u32(p.cfg.line_words);
    w.put_u8(p.cfg.write_allocate ? 1 : 0);
    w.put_u32(p.cfg.ways);
    w.put_u32(p.cfg.l2.size_words);
    w.put_u32(p.cfg.l2.ways);
    w.put_u8(static_cast<u8>(p.cfg.l2.inclusion));
    w.put_u32(p.cfg.l2.hit_extra_cycles);
    w.put_u32(p.num_pes);
    w.put_u32(static_cast<u32>(p.label));
  }
  return fnv1a(w.str().data(), w.str().size());
}

SweepJournal::SweepJournal(const std::string& path, u64 config_hash)
    : path_(path) {
  std::string bytes;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) fail("cannot read sweep journal " + path);
  }

  if (bytes.empty()) {
    // Fresh journal: write and sync the header before any point runs.
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_) fail("cannot create sweep journal " + path);
    ByteWriter w;
    w.put_u32(kJournalMagic);
    w.put_u32(kJournalVersion);
    w.put_u64(config_hash);
    std::string hdr = w.take();
    if (std::fwrite(hdr.data(), 1, hdr.size(), f_) != hdr.size()) {
      std::fclose(f_);
      f_ = nullptr;
      fail("cannot write sweep journal header " + path);
    }
    flush_and_sync(f_, "sweep journal " + path);
    return;
  }

  // Existing journal: a damaged header means the file is not a
  // journal for anything — refuse rather than clobber; a damaged
  // record tail is the expected crash artifact and is dropped.
  if (bytes.size() < kHeaderBytes)
    fail("sweep journal " + path + ": truncated header");
  ByteReader h(bytes.data(), kHeaderBytes, "sweep journal");
  if (h.get_u32() != kJournalMagic)
    fail("sweep journal " + path + ": bad magic (not a journal)");
  u32 version = h.get_u32();
  if (version != kJournalVersion)
    fail("sweep journal " + path + ": version " + std::to_string(version) +
         " not supported");
  u64 hash = h.get_u64();
  if (hash != config_hash)
    fail("sweep journal " + path +
         ": configuration hash mismatch — this journal records a different "
         "sweep (points, trace or order differ); refusing to mix results");

  std::size_t good_end = kHeaderBytes;
  while (bytes.size() - good_end >= kRecordBytes) {
    ByteReader r(bytes.data() + good_end, kRecordBytes, "sweep journal record");
    if (r.get_u32() != kJournalMagic) break;
    std::string body(bytes.data() + good_end + 4, kRecordBytes - 4 - 8);
    u64 index;
    TrafficStats stats;
    {
      ByteReader br(body, "sweep journal record");
      index = br.get_u64();
      stats = load_traffic(br);
    }
    ByteReader tail(bytes.data() + good_end + 4 + body.size(), 8,
                    "sweep journal record");
    if (tail.get_u64() != fnv1a(body.data(), body.size())) break;
    done_[index] = stats;
    good_end += kRecordBytes;
  }
  std::size_t dropped = bytes.size() - good_end;
  torn_dropped_ = (dropped + kRecordBytes - 1) / kRecordBytes;
  if (dropped) {
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0)
      fail("cannot truncate torn records from sweep journal " + path);
  }
  f_ = std::fopen(path.c_str(), "ab");
  if (!f_) fail("cannot reopen sweep journal " + path);
}

SweepJournal::~SweepJournal() {
  if (f_) std::fclose(f_);
}

void SweepJournal::record(u64 point_index, const TrafficStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string body = record_body(point_index, stats);
  ByteWriter w;
  w.put_u32(kJournalMagic);
  w.put_bytes(body.data(), body.size());
  w.put_u64(fnv1a(body.data(), body.size()));
  const std::string& rec = w.str();
  RW_CHECK(rec.size() == kRecordBytes, "sweep journal record size drifted");
  if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size())
    fail("cannot append to sweep journal " + path_);
  // Sync per record: each completed point is durable the moment
  // record() returns, so a crash can only lose work in flight.
  flush_and_sync(f_, "sweep journal " + path_);
  done_[point_index] = stats;
}

bool SweepJournal::is_done(u64 point_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.count(point_index) != 0;
}

const TrafficStats& SweepJournal::result(u64 point_index) const {
  // std::map references are stable, so handing one out after unlocking
  // is safe; records are only ever added, never moved or erased.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = done_.find(point_index);
  RW_CHECK(it != done_.end(), "sweep journal result() of an unrecorded point");
  return it->second;
}

}  // namespace rapwam
