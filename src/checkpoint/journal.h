// Append-only sweep journal: a write-ahead log of completed sweep
// points, so an interrupted run_sweep/run_sweep_streaming resumes by
// skipping points whose results are already on disk
// (docs/DESIGN.md §12).
//
// File layout (all little-endian):
//
//   header:  u32 magic "RWSJ"   u32 version   u64 config_hash
//   records: u32 magic   u64 point_index   19 × u64 TrafficStats
//            u64 fnv1a(index + stats)            — fixed 172 bytes
//
// Each record is appended and fsynced when its point completes, so a
// crash loses at most the record being written. On open, an existing
// journal is validated front to back: a header config-hash mismatch
// is a hard Error (the journal belongs to a different sweep — results
// must never cross experiments); a torn or checksum-damaged tail is
// truncated away and counted, never replayed. Completed points carry
// their recorded TrafficStats back verbatim — a resumed sweep's
// output rows are bit-identical to the uninterrupted run's.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cache/multisim.h"

namespace rapwam {

struct SweepPoint;

/// "RWSJ" in little-endian byte order.
inline constexpr u32 kJournalMagic =
    u32('R') | (u32('W') << 8) | (u32('S') << 16) | (u32('J') << 24);
inline constexpr u32 kJournalVersion = 1;

/// Identity of a sweep: every point's configuration, PE count and
/// label, plus the trace fingerprint(s), in point order. Stored in the
/// journal header and verified on reopen.
u64 sweep_config_hash(const std::vector<SweepPoint>& points, u64 trace_fp);

class SweepJournal {
 public:
  /// Opens (validating any existing records) or creates the journal.
  /// Throws Error on a config-hash or version mismatch, or on I/O
  /// failure; a torn/corrupt tail is truncated and counted instead.
  SweepJournal(const std::string& path, u64 config_hash);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Appends and fsyncs one completed point. Thread-safe (sweep
  /// consumers complete concurrently).
  void record(u64 point_index, const TrafficStats& stats);

  bool is_done(u64 point_index) const;
  /// Recorded stats for a done point (RW_CHECK if not done).
  const TrafficStats& result(u64 point_index) const;
  std::size_t done_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_.size();
  }
  /// Damaged trailing records discarded when the journal was opened.
  u64 torn_records_dropped() const { return torn_dropped_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::map<u64, TrafficStats> done_;
  u64 torn_dropped_ = 0;
  mutable std::mutex mu_;
};

}  // namespace rapwam
