#include "compiler/analyze.h"

#include <algorithm>
#include <set>

namespace rapwam {

namespace {

struct Occur {
  std::set<int> chunks;
  int first_order = -1;
  int occurrences = 0;
};

void scan(const Term* t, int chunk, int& order, std::unordered_map<const Term*, Occur>& occ) {
  if (t->is_var()) {
    Occur& o = occ[t];
    o.chunks.insert(chunk);
    o.occurrences++;
    if (o.first_order < 0) o.first_order = order++;
    return;
  }
  for (const Term* a : t->args) scan(a, chunk, order, occ);
}

}  // namespace

ClauseInfo analyze_clause(const Term* head, const std::vector<NGoal>& body) {
  std::unordered_map<const Term*, Occur> occ;
  int order = 0;
  int chunk = 0;

  if (head) {
    for (const Term* a : head->args) scan(a, chunk, order, occ);
  }

  int call_count = 0;           // call-like goals (a parcall counts once;
                                // a sequentialized one counts per goal)
  bool cut_after_call = false;
  bool any_cut = false;
  bool has_parcall = false;
  bool goal_after_call = false;

  int calls_seen = 0;
  for (const NGoal& g : body) {
    if (calls_seen > 0) goal_after_call = true;
    switch (g.kind) {
      case NGoal::Kind::Cut:
        any_cut = true;
        if (calls_seen > 0) cut_after_call = true;
        break;
      case NGoal::Kind::Builtin:
        for (const Term* a : g.args) scan(a, chunk, order, occ);
        break;
      case NGoal::Kind::Call:
        for (const Term* a : g.args) scan(a, chunk, order, occ);
        ++chunk;
        ++call_count;
        ++calls_seen;
        break;
      case NGoal::Kind::Parcall:
        if (g.sequentialized) {
          for (const NGoal& pg : g.pgoals) {
            for (const Term* a : pg.args) scan(a, chunk, order, occ);
            ++chunk;
            ++call_count;
            ++calls_seen;
          }
        } else {
          has_parcall = true;
          for (const CondCheck& c : g.conds) {
            scan(c.a, chunk, order, occ);
            if (c.b) scan(c.b, chunk, order, occ);
          }
          if (g.conds.empty()) {
            // Unconditional parcall: only the parallel path exists, all
            // goal arguments are loaded before any goal runs, so the
            // whole parcall is one chunk.
            for (const NGoal& pg : g.pgoals)
              for (const Term* a : pg.args) scan(a, chunk, order, occ);
          } else {
            // A sequential fallback path exists; variables shared
            // between parallel goals must survive the calls on that
            // path, so treat each goal as its own chunk.
            for (const NGoal& pg : g.pgoals) {
              for (const Term* a : pg.args) scan(a, chunk, order, occ);
              ++chunk;
            }
          }
          ++chunk;
          ++call_count;
          ++calls_seen;
        }
        break;
    }
  }

  ClauseInfo info;
  info.has_cut = any_cut;

  // Permanent variables, Y slots in first-occurrence order.
  std::vector<std::pair<int, const Term*>> perms;
  for (auto& [v, o] : occ) {
    VarClass vc;
    vc.occurrences = o.occurrences;
    vc.permanent = o.chunks.size() >= 2;
    info.vars.emplace(v, vc);
    if (vc.permanent) perms.emplace_back(o.first_order, v);
  }
  std::sort(perms.begin(), perms.end());
  int y = 0;
  for (auto& [ord, v] : perms) {
    (void)ord;
    info.vars[v].y = y++;
  }
  info.num_y = y;

  if (cut_after_call) info.cut_y = info.num_y++;
  // Clauses with parcalls keep the active parcall frame pointer in the
  // environment: the first parallel goal runs inline and may leave the
  // worker's PF register pointing at a nested frame.
  if (has_parcall) info.pf_y = info.num_y++;

  info.needs_env = info.num_y > 0 || call_count >= 2 || has_parcall ||
                   (call_count >= 1 && goal_after_call) || cut_after_call;
  return info;
}

}  // namespace rapwam
