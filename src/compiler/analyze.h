// Clause-level variable analysis.
//
// Classifies variables as temporary (X registers) or permanent
// (Y slots in the environment) using the classic chunk criterion: a
// chunk is the head plus inline goals up to and including one call-like
// goal (user call or parcall); a variable occurring in more than one
// chunk is permanent. Also decides whether the clause needs an
// environment and how cut is implemented (neck cut vs get_level/cut).
#pragma once

#include <unordered_map>

#include "compiler/normalize.h"

namespace rapwam {

struct VarClass {
  bool permanent = false;
  int y = -1;           ///< Y slot when permanent
  int occurrences = 0;  ///< total occurrences in the clause (1 == void)
};

struct ClauseInfo {
  std::unordered_map<const Term*, VarClass> vars;
  int num_y = 0;        ///< permanent slots incl. cut/parcall slots
  bool needs_env = false;
  int cut_y = -1;       ///< Y slot holding the clause-entry B, or -1
  int pf_y = -1;        ///< Y slot holding the current parcall frame, or -1
  bool has_cut = false;
};

ClauseInfo analyze_clause(const Term* head, const std::vector<NGoal>& body);

}  // namespace rapwam
