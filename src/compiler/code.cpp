#include "compiler/code.h"

#include <sstream>

namespace rapwam {

CodeStore::CodeStore(Interner& atoms) : atoms_(atoms) {
  emit(Instr{Op::FailAlways, 0, 0, 0, 0});    // kFailAddr
  emit(Instr{Op::EndGoal, 0, 0, 0, 0});       // kEndGoalAddr
  emit(Instr{Op::EndLocalGoal, 0, 0, 0, 0});  // kEndLocalGoalAddr
}

i32 CodeStore::proc_index(PredId p) {
  auto it = proc_ids_.find(p);
  if (it != proc_ids_.end()) return it->second;
  if (procs_.size() >= static_cast<std::size_t>(index_limit_)) [[unlikely]]
    fail("proc table overflow: program needs more than " +
         std::to_string(index_limit_) + " predicates");
  i32 idx = static_cast<i32>(procs_.size());
  procs_.push_back(Proc{p, -1});
  proc_ids_.emplace(p, idx);
  return idx;
}

i32 CodeStore::new_switch_table() {
  if (tables_.size() >= static_cast<std::size_t>(index_limit_)) [[unlikely]]
    fail("switch-table overflow: program needs more than " +
         std::to_string(index_limit_) + " switch tables");
  tables_.emplace_back();
  return static_cast<i32>(tables_.size()) - 1;
}

void CodeStore::switch_add(i32 table, u64 key, i32 addr) {
  tables_[static_cast<std::size_t>(table)][key] = addr;
}

i32 CodeStore::switch_lookup(i32 table, u64 key) const {
  const auto& t = tables_[static_cast<std::size_t>(table)];
  auto it = t.find(key);
  return it == t.end() ? kFailAddr : it->second;
}

void CodeStore::link_check() const {
  std::string missing;
  for (const Proc& p : procs_) {
    if (p.entry < 0) {
      missing += "  " + atoms_.name(p.pred.name) + "/" + std::to_string(p.pred.arity) + "\n";
    }
  }
  if (!missing.empty()) fail("undefined predicates:\n" + missing);
}

std::string CodeStore::disassemble(i32 from, i32 to) const {
  std::ostringstream os;
  for (i32 i = from; i < to; ++i) {
    const Instr& ins = at(i);
    os << i << ": " << op_name(ins.op);
    switch (ins.op) {
      case Op::Call:
      case Op::Execute: {
        const Proc& p = proc(ins.a);
        os << " " << atoms_.name(p.pred.name) << "/" << p.pred.arity;
        break;
      }
      case Op::PGoal: {
        const Proc& p = proc(ins.b);
        os << " slot=" << ins.a << " " << atoms_.name(p.pred.name) << "/" << p.pred.arity;
        break;
      }
      case Op::GetConstant:
      case Op::PutConstant:
      case Op::UnifyConstant:
        os << " '" << atoms_.name(static_cast<u32>(ins.a)) << "' A" << ins.b;
        break;
      case Op::GetStructure:
      case Op::PutStructure:
        os << " " << atoms_.name(static_cast<u32>(ins.a)) << "/" << ins.c << " A" << ins.b;
        break;
      case Op::GetInteger:
      case Op::PutInteger:
      case Op::UnifyInteger:
        os << " " << ins.imm << " A" << ins.b;
        break;
      case Op::Builtin:
        os << " " << builtin_name(static_cast<BuiltinId>(ins.a)) << "/" << ins.b;
        break;
      case Op::SwitchOnTerm:
        os << " var=" << ins.a << " const=" << ins.b << " list=" << ins.c
           << " struct=" << ins.imm;
        break;
      // Fused superinstructions whose operands embed atom/proc ids
      // (the register-only fused ops read fine via the generic case).
      case Op::FusePutValueXExecute: {
        const Proc& p = proc(ins.c);
        os << " X" << ins.a << ",A" << ins.b << " ; " << atoms_.name(p.pred.name)
           << "/" << p.pred.arity;
        break;
      }
      case Op::FuseGetStructUnifyVarX:
        os << " " << atoms_.name(static_cast<u32>(ins.a)) << "/" << ins.c
           << " A" << ins.b << " ; X" << ins.imm;
        break;
      case Op::FusePutValueX2Execute: {
        const Proc& p = proc(static_cast<i32>(ins.imm >> 32));
        os << " X" << ins.a << ",A" << ins.b << " ; X" << ins.c << ",A"
           << (ins.imm & 0xFFFF) << " ; " << atoms_.name(p.pred.name) << "/"
           << p.pred.arity;
        break;
      }
      default:
        if (ins.a || ins.b || ins.c || ins.imm) {
          os << " " << ins.a;
          if (ins.b || ins.c || ins.imm) os << "," << ins.b;
          if (ins.c || ins.imm) os << "," << ins.c;
          if (ins.imm) os << "," << ins.imm;
        }
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rapwam
