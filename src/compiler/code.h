// Code store: the loaded parallel-WAM program.
//
// Holds the flat instruction array, the procedure table (predicate ->
// entry address), switch tables for first-argument indexing, and the
// reserved prelude addresses the engine jumps to (fail / end-of-goal).
// Also provides a disassembler for tests and debugging.
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "compiler/instr.h"
#include "prolog/term.h"

namespace rapwam {

/// Upper bound on every i32-indexed code-store space (code addresses,
/// proc indices, switch-table ids). Growing past it would wrap
/// static_cast<i32> into a bogus (negative) jump address, so emit /
/// proc_index / new_switch_table throw rapwam::Error at the bound
/// instead. Reaching the real bound takes 2^31 emits; tests lower it
/// via set_index_limit_for_testing.
inline constexpr i32 kMaxCodeIndex = std::numeric_limits<i32>::max() - 1;

/// Reserved addresses, emitted by the CodeStore constructor.
inline constexpr i32 kFailAddr = 0;          ///< FailAlways
inline constexpr i32 kEndGoalAddr = 1;       ///< EndGoal (CP of stolen goals)
inline constexpr i32 kEndLocalGoalAddr = 2;  ///< EndLocalGoal (CP of local goals)

struct Proc {
  PredId pred;
  i32 entry = -1;  ///< -1 until compiled; calls to -1 fail at link check
};

class CodeStore {
 public:
  explicit CodeStore(Interner& atoms);

  i32 emit(const Instr& ins) {
    if (code_.size() >= static_cast<std::size_t>(index_limit_)) [[unlikely]]
      fail("code store overflow: program needs more than " +
           std::to_string(index_limit_) + " instructions");
    code_.push_back(ins);
    return static_cast<i32>(code_.size()) - 1;
  }
  Instr& at(i32 addr) { return code_[static_cast<std::size_t>(addr)]; }
  const Instr& at(i32 addr) const { return code_[static_cast<std::size_t>(addr)]; }
  i32 size() const { return static_cast<i32>(code_.size()); }

  /// Index of the proc entry for `p`, creating an unresolved one if new.
  i32 proc_index(PredId p);
  /// Lookup without creating; -1 if the predicate has no proc entry.
  i32 find_proc(PredId p) const {
    auto it = proc_ids_.find(p);
    return it == proc_ids_.end() ? -1 : it->second;
  }
  Proc& proc(i32 idx) { return procs_[static_cast<std::size_t>(idx)]; }
  const Proc& proc(i32 idx) const { return procs_[static_cast<std::size_t>(idx)]; }
  std::size_t proc_count() const { return procs_.size(); }

  /// Switch table support: keys are tagged constants (see const_key).
  i32 new_switch_table();
  i32 table_count() const { return static_cast<i32>(tables_.size()); }
  void switch_add(i32 table, u64 key, i32 addr);
  i32 switch_lookup(i32 table, u64 key) const;  ///< kFailAddr on miss

  /// Key encodings shared by compiler and engine.
  static u64 const_key_atom(u32 atom_id) { return (u64(atom_id) << 1) | 1; }
  static u64 const_key_int(i64 v) { return u64(v) << 1; }
  static u64 struct_key(u32 functor, u32 arity) { return (u64(functor) << 16) | arity; }

  /// Throws if any referenced predicate was never compiled.
  void link_check() const;

  Interner& atoms() const { return atoms_; }
  std::string disassemble(i32 from, i32 to) const;
  std::string disassemble_all() const { return disassemble(0, size()); }

  /// Visits every switch-table entry as (table, key, addr). Used by the
  /// fusion pass's branch-target analysis and by tests.
  template <class Fn>
  void for_each_switch_entry(Fn&& fn) const {
    for (std::size_t t = 0; t < tables_.size(); ++t)
      for (const auto& [key, addr] : tables_[t])
        fn(static_cast<i32>(t), key, addr);
  }

  // -- fusion-pass support (compiler/fuse.cpp) ----------------------------

  /// Replaces the instruction array wholesale (the fusion pass rebuilds
  /// it compacted). The caller is responsible for remapping every
  /// address that pointed into the old array.
  void replace_code(std::vector<Instr> c) { code_ = std::move(c); }
  /// Rewrites every switch-table target through `fn` (old addr -> new).
  template <class Fn>
  void remap_switch_entries(Fn&& fn) {
    for (auto& tbl : tables_)
      for (auto& [key, addr] : tbl) addr = fn(addr);
  }

  /// Lowers the i32-index overflow bound (default kMaxCodeIndex) so the
  /// guard is unit-testable without 2^31 emits.
  void set_index_limit_for_testing(i32 n) { index_limit_ = n; }

 private:
  Interner& atoms_;
  std::vector<Instr> code_;
  std::vector<Proc> procs_;
  std::unordered_map<PredId, i32, PredIdHash> proc_ids_;
  std::vector<std::unordered_map<u64, i32>> tables_;
  i32 index_limit_ = kMaxCodeIndex;
};

}  // namespace rapwam
