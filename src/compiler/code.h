// Code store: the loaded parallel-WAM program.
//
// Holds the flat instruction array, the procedure table (predicate ->
// entry address), switch tables for first-argument indexing, and the
// reserved prelude addresses the engine jumps to (fail / end-of-goal).
// Also provides a disassembler for tests and debugging.
#pragma once

#include <unordered_map>
#include <vector>

#include "compiler/instr.h"
#include "prolog/term.h"

namespace rapwam {

/// Reserved addresses, emitted by the CodeStore constructor.
inline constexpr i32 kFailAddr = 0;          ///< FailAlways
inline constexpr i32 kEndGoalAddr = 1;       ///< EndGoal (CP of stolen goals)
inline constexpr i32 kEndLocalGoalAddr = 2;  ///< EndLocalGoal (CP of local goals)

struct Proc {
  PredId pred;
  i32 entry = -1;  ///< -1 until compiled; calls to -1 fail at link check
};

class CodeStore {
 public:
  explicit CodeStore(Interner& atoms);

  i32 emit(const Instr& ins) {
    code_.push_back(ins);
    return static_cast<i32>(code_.size()) - 1;
  }
  Instr& at(i32 addr) { return code_[static_cast<std::size_t>(addr)]; }
  const Instr& at(i32 addr) const { return code_[static_cast<std::size_t>(addr)]; }
  i32 size() const { return static_cast<i32>(code_.size()); }

  /// Index of the proc entry for `p`, creating an unresolved one if new.
  i32 proc_index(PredId p);
  /// Lookup without creating; -1 if the predicate has no proc entry.
  i32 find_proc(PredId p) const {
    auto it = proc_ids_.find(p);
    return it == proc_ids_.end() ? -1 : it->second;
  }
  Proc& proc(i32 idx) { return procs_[static_cast<std::size_t>(idx)]; }
  const Proc& proc(i32 idx) const { return procs_[static_cast<std::size_t>(idx)]; }
  std::size_t proc_count() const { return procs_.size(); }

  /// Switch table support: keys are tagged constants (see const_key).
  i32 new_switch_table();
  void switch_add(i32 table, u64 key, i32 addr);
  i32 switch_lookup(i32 table, u64 key) const;  ///< kFailAddr on miss

  /// Key encodings shared by compiler and engine.
  static u64 const_key_atom(u32 atom_id) { return (u64(atom_id) << 1) | 1; }
  static u64 const_key_int(i64 v) { return u64(v) << 1; }
  static u64 struct_key(u32 functor, u32 arity) { return (u64(functor) << 16) | arity; }

  /// Throws if any referenced predicate was never compiled.
  void link_check() const;

  Interner& atoms() const { return atoms_; }
  std::string disassemble(i32 from, i32 to) const;
  std::string disassemble_all() const { return disassemble(0, size()); }

 private:
  Interner& atoms_;
  std::vector<Instr> code_;
  std::vector<Proc> procs_;
  std::unordered_map<PredId, i32, PredIdHash> proc_ids_;
  std::vector<std::unordered_map<u64, i32>> tables_;
};

}  // namespace rapwam
