#include "compiler/compile.h"

#include "compiler/fuse.h"
#include "compiler/verify.h"

#include <algorithm>
#include <optional>
#include <deque>
#include <memory>
#include <unordered_set>

namespace rapwam {

namespace {

/// First X register used for variable homes / build temporaries.
/// Argument registers A1..A32 live below it.
constexpr int kFirstTempX = 33;
constexpr int kMaxX = 255;

class ClauseCompiler {
 public:
  ClauseCompiler(CodeStore& code, Interner& atoms, const NClause& cl)
      : code_(code), atoms_(atoms), cl_(cl),
        info_(analyze_clause(cl.head, cl.body)) {
    nil_ = atoms_.intern("[]");
    dot_ = atoms_.intern(".");
    // Pre-assign stable X homes to every multi-occurrence temporary so
    // that the parallel and sequential paths of a CGE agree on them.
    assign_homes(cl_.head);
    for (const NGoal& g : cl_.body) {
      for (const Term* a : g.args) assign_homes(a);
      for (const CondCheck& c : g.conds) {
        assign_homes(c.a);
        if (c.b) assign_homes(c.b);
      }
      for (const NGoal& pg : g.pgoals)
        for (const Term* a : pg.args) assign_homes(a);
    }
    build_x_ = next_x_;
  }

  i32 compile() {
    i32 entry = code_.size();
    if (info_.needs_env) code_.emit({Op::Allocate, info_.num_y, 0, 0, 0});
    if (info_.cut_y >= 0) code_.emit({Op::GetLevel, info_.cut_y, 0, 0, 0});

    if (cl_.head) {
      for (std::size_t i = 0; i < cl_.head->arity(); ++i) {
        emit_get(cl_.head->args[i], static_cast<int>(i) + 1);
        drain_get_queue();
      }
    }

    bool ended_with_execute = false;
    const auto& body = cl_.body;
    for (std::size_t gi = 0; gi < body.size(); ++gi) {
      const NGoal& g = body[gi];
      bool is_last = (gi + 1 == body.size());
      switch (g.kind) {
        case NGoal::Kind::Cut:
          if (info_.cut_y >= 0)
            code_.emit({Op::Cut, info_.cut_y, 0, 0, 0});
          else
            code_.emit({Op::NeckCut, 0, 0, 0, 0});
          break;
        case NGoal::Kind::Builtin:
          if (emit_compiled_arith(g)) break;
          put_args(g.args, /*unsafe=*/false);
          code_.emit({Op::Builtin, static_cast<i32>(g.bid),
                      static_cast<i32>(g.args.size()), 0, 0});
          break;
        case NGoal::Kind::Call:
          emit_call(g, is_last, ended_with_execute);
          break;
        case NGoal::Kind::Parcall:
          if (g.sequentialized) {
            for (std::size_t j = 0; j < g.pgoals.size(); ++j) {
              bool last_here = is_last && (j + 1 == g.pgoals.size());
              emit_call(g.pgoals[j], last_here, ended_with_execute);
            }
          } else {
            emit_parcall(g);
          }
          break;
      }
    }

    if (!ended_with_execute) {
      if (info_.needs_env) code_.emit({Op::Deallocate, 0, 0, 0, 0});
      code_.emit({Op::Proceed, 0, 0, 0, 0});
    }
    return entry;
  }

 private:
  CodeStore& code_;
  Interner& atoms_;
  const NClause& cl_;
  ClauseInfo info_;
  u32 nil_ = 0, dot_ = 0;

  std::unordered_map<const Term*, int> home_;     // temp var -> X home
  std::unordered_set<const Term*> initialized_;   // var has a value
  int next_x_ = kFirstTempX;  // homes during ctor, then build temps
  int build_x_ = kFirstTempX; // first build temp (reset per goal)
  std::deque<std::pair<int, const Term*>> get_queue_;

  const VarClass& vclass(const Term* v) const {
    auto it = info_.vars.find(v);
    RW_CHECK(it != info_.vars.end(), "unanalyzed variable");
    return it->second;
  }
  bool is_void(const Term* v) const { return vclass(v).occurrences == 1; }
  bool is_perm(const Term* v) const { return vclass(v).permanent; }

  void assign_homes(const Term* t) {
    if (!t) return;
    if (t->is_var()) {
      const auto it = info_.vars.find(t);
      if (it == info_.vars.end()) return;
      const VarClass& vc = it->second;
      if (!vc.permanent && vc.occurrences > 1 && !home_.count(t)) {
        home_[t] = alloc_x();
      }
      return;
    }
    for (const Term* a : t->args) assign_homes(a);
  }

  int alloc_x() {
    if (next_x_ > kMaxX)
      fail("clause too complex: ran out of temporary registers");
    return next_x_++;
  }

  int fresh_build_x() {
    if (build_x_ > kMaxX)
      fail("term too large for in-clause construction");
    return build_x_++;
  }
  void reset_build_x() { build_x_ = next_x_; }

  bool is_nil(const Term* t) const { return t->is_atom() && t->name == nil_; }
  bool is_list(const Term* t) const {
    return t->is_struct() && t->name == dot_ && t->arity() == 2;
  }

  // ---- head compilation -------------------------------------------------

  void emit_get(const Term* t, int ai) {
    switch (t->tag) {
      case TermTag::Var: {
        if (is_void(t)) return;
        bool first = !initialized_.count(t);
        initialized_.insert(t);
        if (is_perm(t)) {
          code_.emit({first ? Op::GetVariableY : Op::GetValueY, vclass(t).y, ai, 0, 0});
        } else {
          code_.emit({first ? Op::GetVariableX : Op::GetValueX, home_.at(t), ai, 0, 0});
        }
        return;
      }
      case TermTag::Atom:
        if (is_nil(t))
          code_.emit({Op::GetNil, 0, ai, 0, 0});
        else
          code_.emit({Op::GetConstant, static_cast<i32>(t->name), ai, 0, 0});
        return;
      case TermTag::Int:
        code_.emit({Op::GetInteger, 0, ai, 0, t->ival});
        return;
      case TermTag::Struct:
        if (is_list(t)) {
          code_.emit({Op::GetList, 0, ai, 0, 0});
        } else {
          code_.emit({Op::GetStructure, static_cast<i32>(t->name), ai,
                      static_cast<i32>(t->arity()), 0});
        }
        emit_unify_stream(t->args);
        return;
    }
  }

  void drain_get_queue() {
    while (!get_queue_.empty()) {
      auto [reg, t] = get_queue_.front();
      get_queue_.pop_front();
      if (is_list(t)) {
        code_.emit({Op::GetList, 0, reg, 0, 0});
      } else {
        code_.emit({Op::GetStructure, static_cast<i32>(t->name), reg,
                    static_cast<i32>(t->arity()), 0});
      }
      emit_unify_stream(t->args);
    }
  }

  void emit_unify_stream(const std::vector<const Term*>& args) {
    for (const Term* a : args) {
      switch (a->tag) {
        case TermTag::Var: {
          if (is_void(a)) {
            emit_unify_void();
            break;
          }
          bool first = !initialized_.count(a);
          initialized_.insert(a);
          if (is_perm(a)) {
            code_.emit({first ? Op::UnifyVariableY : Op::UnifyLocalValueY,
                        vclass(a).y, 0, 0, 0});
          } else {
            code_.emit({first ? Op::UnifyVariableX : Op::UnifyLocalValueX,
                        home_.at(a), 0, 0, 0});
          }
          break;
        }
        case TermTag::Atom:
          if (is_nil(a))
            code_.emit({Op::UnifyNil, 0, 0, 0, 0});
          else
            code_.emit({Op::UnifyConstant, static_cast<i32>(a->name), 0, 0, 0});
          break;
        case TermTag::Int:
          code_.emit({Op::UnifyInteger, 0, 0, 0, a->ival});
          break;
        case TermTag::Struct: {
          int tmp = fresh_build_x();
          code_.emit({Op::UnifyVariableX, tmp, 0, 0, 0});
          get_queue_.emplace_back(tmp, a);
          break;
        }
      }
    }
  }

  void emit_unify_void() {
    if (code_.size() > 0) {
      Instr& last = code_.at(code_.size() - 1);
      if (last.op == Op::UnifyVoid) {
        ++last.a;
        return;
      }
    }
    code_.emit({Op::UnifyVoid, 1, 0, 0, 0});
  }

  // ---- body compilation -------------------------------------------------

  void put_args(const std::vector<const Term*>& args, bool unsafe) {
    reset_build_x();
    for (std::size_t i = 0; i < args.size(); ++i)
      emit_put(args[i], static_cast<int>(i) + 1, unsafe);
  }

  void emit_put(const Term* t, int target, bool unsafe) {
    switch (t->tag) {
      case TermTag::Var: {
        if (is_void(t)) {
          code_.emit({Op::PutVariableX, fresh_build_x(), target, 0, 0});
          return;
        }
        bool first = !initialized_.count(t);
        initialized_.insert(t);
        if (is_perm(t)) {
          Op op = first ? Op::PutVariableY
                        : (unsafe ? Op::PutUnsafeValue : Op::PutValueY);
          code_.emit({op, vclass(t).y, target, 0, 0});
        } else {
          code_.emit({first ? Op::PutVariableX : Op::PutValueX, home_.at(t),
                      target, 0, 0});
        }
        return;
      }
      case TermTag::Atom:
        if (is_nil(t))
          code_.emit({Op::PutNil, 0, target, 0, 0});
        else
          code_.emit({Op::PutConstant, static_cast<i32>(t->name), target, 0, 0});
        return;
      case TermTag::Int:
        code_.emit({Op::PutInteger, 0, target, 0, t->ival});
        return;
      case TermTag::Struct:
        build_compound(t, target);
        return;
    }
  }

  /// Builds `t` (a compound) into register `target`, children first.
  void build_compound(const Term* t, int target) {
    std::vector<int> child_reg(t->arity(), -1);
    for (std::size_t i = 0; i < t->arity(); ++i) {
      if (t->args[i]->is_struct()) {
        int r = fresh_build_x();
        build_compound(t->args[i], r);
        child_reg[i] = r;
      }
    }
    if (is_list(t)) {
      code_.emit({Op::PutList, 0, target, 0, 0});
    } else {
      code_.emit({Op::PutStructure, static_cast<i32>(t->name), target,
                  static_cast<i32>(t->arity()), 0});
    }
    for (std::size_t i = 0; i < t->arity(); ++i) {
      const Term* a = t->args[i];
      if (child_reg[i] >= 0) {
        code_.emit({Op::UnifyValueX, child_reg[i], 0, 0, 0});
        continue;
      }
      switch (a->tag) {
        case TermTag::Var: {
          if (is_void(a)) {
            emit_unify_void();
            break;
          }
          bool first = !initialized_.count(a);
          initialized_.insert(a);
          if (is_perm(a)) {
            code_.emit({first ? Op::UnifyVariableY : Op::UnifyLocalValueY,
                        vclass(a).y, 0, 0, 0});
          } else {
            code_.emit({first ? Op::UnifyVariableX : Op::UnifyLocalValueX,
                        home_.at(a), 0, 0, 0});
          }
          break;
        }
        case TermTag::Atom:
          if (is_nil(a))
            code_.emit({Op::UnifyNil, 0, 0, 0, 0});
          else
            code_.emit({Op::UnifyConstant, static_cast<i32>(a->name), 0, 0, 0});
          break;
        case TermTag::Int:
          code_.emit({Op::UnifyInteger, 0, 0, 0, a->ival});
          break;
        case TermTag::Struct:
          RW_CHECK(false, "compound child should have been prebuilt");
      }
    }
  }

  void emit_call(const NGoal& g, bool is_last, bool& ended_with_execute) {
    i32 proc = code_.proc_index(g.pred);
    bool lco = is_last;
    put_args(g.args, /*unsafe=*/lco && info_.needs_env);
    if (lco) {
      if (info_.needs_env) code_.emit({Op::Deallocate, 0, 0, 0, 0});
      code_.emit({Op::Execute, proc, 0, 0, 0});
      ended_with_execute = true;
    } else {
      code_.emit({Op::Call, proc, 0, 0, 0});
    }
  }

  // ---- compiled arithmetic ---------------------------------------------
  //
  // is/2 and the arithmetic comparisons compile to register-resident
  // Math* instructions when the expression shape is known, as real WAM
  // compilers do. This avoids building expression trees on the heap
  // (the single biggest locality loss of interpreted arithmetic) and
  // keeps fresh integer results out of the heap entirely when the
  // target is a first-occurrence temporary.

  static std::optional<MathFn> binary_math(const std::string& n) {
    if (n == "+") return MathFn::Add;
    if (n == "-") return MathFn::Sub;
    if (n == "*") return MathFn::Mul;
    if (n == "//" || n == "/") return MathFn::Div;
    if (n == "mod") return MathFn::Mod;
    if (n == "rem") return MathFn::Rem;
    if (n == "min") return MathFn::Min;
    if (n == "max") return MathFn::Max;
    if (n == "/\\") return MathFn::And;
    if (n == "\\/") return MathFn::Or;
    if (n == "<<") return MathFn::Shl;
    if (n == ">>") return MathFn::Shr;
    return std::nullopt;
  }
  static std::optional<MathFn> unary_math(const std::string& n) {
    if (n == "-") return MathFn::Neg;
    if (n == "abs") return MathFn::Abs;
    if (n == "+") return std::nullopt;  // handled as identity elsewhere
    return std::nullopt;
  }

  bool arith_supported(const Term* t) const {
    switch (t->tag) {
      case TermTag::Int:
      case TermTag::Var:
        return true;
      case TermTag::Atom:
        return false;
      case TermTag::Struct: {
        const std::string& n = atoms_.name(t->name);
        if (t->arity() == 2 && binary_math(n))
          return arith_supported(t->args[0]) && arith_supported(t->args[1]);
        if (t->arity() == 1 && (n == "-" || n == "abs" || n == "+"))
          return arith_supported(t->args[0]);
        return false;
      }
    }
    return false;
  }

  /// Emits code evaluating `t` into a fresh X register; returns it.
  /// Callers must have checked arith_supported first.
  int emit_arith(const Term* t) {
    switch (t->tag) {
      case TermTag::Int: {
        int r = fresh_build_x();
        code_.emit({Op::PutInteger, 0, r, 0, t->ival});
        return r;
      }
      case TermTag::Var: {
        int r = fresh_build_x();
        emit_put(t, r, /*unsafe=*/false);
        code_.emit({Op::MathLoad, r, r, 0, 0});
        return r;
      }
      case TermTag::Struct: {
        const std::string& n = atoms_.name(t->name);
        if (t->arity() == 1) {
          if (n == "+") return emit_arith(t->args[0]);
          int c = emit_arith(t->args[0]);
          int r = fresh_build_x();
          MathFn fn = (n == "-") ? MathFn::Neg : MathFn::Abs;
          code_.emit({Op::MathRR, static_cast<i32>(fn), r, c, 0});
          return r;
        }
        int l = emit_arith(t->args[0]);
        MathFn fn = *binary_math(n);
        int r = fresh_build_x();
        if (t->args[1]->is_int()) {
          code_.emit({Op::MathRI, static_cast<i32>(fn), r, l, t->args[1]->ival});
        } else {
          int rr = emit_arith(t->args[1]);
          code_.emit({Op::MathRR, static_cast<i32>(fn), r, l, rr});
        }
        return r;
      }
      default:
        RW_CHECK(false, "unsupported arithmetic shape");
        return 0;
    }
  }

  /// Compiles is/2 and arithmetic comparisons to Math* instructions.
  /// Returns false when the goal must stay an interpreted builtin.
  bool emit_compiled_arith(const NGoal& g) {
    reset_build_x();
    switch (g.bid) {
      case BuiltinId::Is: {
        const Term* target = g.args[0];
        const Term* expr = g.args[1];
        if (!arith_supported(expr)) return false;
        int r = emit_arith(expr);
        if (target->is_var() && !is_void(target) && !initialized_.count(target)) {
          initialized_.insert(target);
          if (is_perm(target))
            code_.emit({Op::GetVariableY, vclass(target).y, r, 0, 0});
          else
            code_.emit({Op::GetVariableX, home_.at(target), r, 0, 0});
          return true;
        }
        if (target->is_var() && is_void(target)) return true;  // evaluated for effect
        int t = fresh_build_x();
        emit_put(target, t, /*unsafe=*/false);
        code_.emit({Op::GetValueX, t, r, 0, 0});
        return true;
      }
      case BuiltinId::LessThan:
      case BuiltinId::GreaterThan:
      case BuiltinId::LessEq:
      case BuiltinId::GreaterEq:
      case BuiltinId::ArithEq:
      case BuiltinId::ArithNeq: {
        if (!arith_supported(g.args[0]) || !arith_supported(g.args[1])) return false;
        int a = emit_arith(g.args[0]);
        int b = emit_arith(g.args[1]);
        CmpFn fn;
        switch (g.bid) {
          case BuiltinId::LessThan: fn = CmpFn::Lt; break;
          case BuiltinId::GreaterThan: fn = CmpFn::Gt; break;
          case BuiltinId::LessEq: fn = CmpFn::Le; break;
          case BuiltinId::GreaterEq: fn = CmpFn::Ge; break;
          case BuiltinId::ArithEq: fn = CmpFn::Eq; break;
          default: fn = CmpFn::Ne; break;
        }
        code_.emit({Op::MathCmp, static_cast<i32>(fn), a, b, 0});
        return true;
      }
      default:
        return false;
    }
  }

  /// Loads a condition-check operand, reusing a temp home when possible.
  int materialize(const Term* t) {
    if (t->is_var() && !is_void(t) && !is_perm(t) && initialized_.count(t))
      return home_.at(t);
    int r = fresh_build_x();
    emit_put(t, r, /*unsafe=*/false);
    return r;
  }

  void emit_parcall(const NGoal& g) {
    RW_CHECK(!g.pgoals.empty(), "empty parcall");
    for (const NGoal& pg : g.pgoals) {
      if (pg.args.size() > kMaxParGoalArity)
        fail("parallel goal arity exceeds goal-frame capacity: " +
             atoms_.name(pg.pred.name));
    }
    reset_build_x();
    std::vector<i32> check_fixups;
    for (const CondCheck& c : g.conds) {
      int xa = materialize(c.a);
      if (c.indep) {
        int xb = materialize(c.b);
        check_fixups.push_back(code_.emit({Op::CheckIndep, xa, -1, xb, 0}));
      } else {
        check_fixups.push_back(code_.emit({Op::CheckGround, xa, -1, 0, 0}));
      }
    }

    // Parallel path. The first goal is executed inline by the parent as
    // an ordinary call (no goal frame, no marker — RAP-WAM keeps one
    // goal for the parent); the remaining k-1 goals are pushed onto the
    // goal stack, right-to-left, so the textually-second goal sits on
    // top and is the first the parent picks up while waiting.
    auto saved_init = initialized_;
    RW_CHECK(info_.pf_y >= 0, "parcall without frame slot");
    i32 pframe_at =
        code_.emit({Op::PFrame, static_cast<i32>(g.pgoals.size()) - 1, info_.pf_y, 0, 0});
    for (std::size_t k = g.pgoals.size(); k-- > 1;) {
      const NGoal& pg = g.pgoals[k];
      i32 proc = code_.proc_index(pg.pred);
      put_args(pg.args, /*unsafe=*/false);
      code_.emit({Op::PGoal, static_cast<i32>(k) - 1, proc,
                  static_cast<i32>(pg.args.size()), 0});
    }
    {
      const NGoal& pg = g.pgoals[0];
      i32 proc = code_.proc_index(pg.pred);
      put_args(pg.args, /*unsafe=*/false);
      code_.emit({Op::Call, proc, 0, 0, 0});
    }
    i32 pwait_at = code_.emit({Op::PWait, info_.pf_y, 0, 0, 0});
    code_.at(pframe_at).imm = pwait_at;  // abort target for sibling kills

    if (!g.conds.empty()) {
      i32 jmp = code_.emit({Op::Jump, -1, 0, 0, 0});
      i32 lseq = code_.size();
      for (i32 f : check_fixups) code_.at(f).b = lseq;
      // Sequential fallback: same goals, ordinary calls, and the same
      // first-occurrence decisions as the parallel path.
      initialized_ = saved_init;
      for (const NGoal& pg : g.pgoals) {
        i32 proc = code_.proc_index(pg.pred);
        put_args(pg.args, /*unsafe=*/false);
        code_.emit({Op::Call, proc, 0, 0, 0});
      }
      code_.at(jmp).a = code_.size();
    }
  }
};

class ProgramCompiler {
 public:
  ProgramCompiler(Program& prog, bool strip) : prog_(prog), strip_(strip) {}

  std::unique_ptr<CodeStore> run() {
    auto code = std::make_unique<CodeStore>(prog_.atoms());
    NormalizedProgram np = normalize(prog_, strip_);
    for (PredId p : np.order) compile_pred(*code, p, np.preds.at(p));
    // Meta-call support: unless the user defined call/1 themselves,
    // emit its engine stub (a tail-transferring builtin). Always
    // present so top-level call/1 queries work too.
    PredId callp{prog_.atoms().intern("call"), 1};
    i32 ci = code->proc_index(callp);
    if (code->proc(ci).entry < 0) {
      code->proc(ci).entry =
          code->emit({Op::Builtin, static_cast<i32>(BuiltinId::Call1), 1, 0, 0});
    }
    code->link_check();
    return code;
  }

 private:
  Program& prog_;
  bool strip_;

  enum class ArgKind { Var, Const, List, Struct };

  struct ClauseIdx {
    i32 addr = 0;
    ArgKind kind = ArgKind::Var;
    u64 key = 0;  // const/struct switch key
  };

  void compile_pred(CodeStore& code, PredId p, const std::vector<NClause>& cls) {
    RW_CHECK(!cls.empty(), "predicate with no clauses");
    std::vector<ClauseIdx> idx;
    for (const NClause& c : cls) {
      ClauseCompiler cc(code, prog_.atoms(), c);
      ClauseIdx ci;
      ci.addr = cc.compile();
      classify(c.head, ci);
      idx.push_back(ci);
    }

    i32 entry;
    if (idx.size() == 1) {
      entry = idx[0].addr;
    } else {
      entry = build_index(code, p, idx);
    }
    i32 pi = code.proc_index(p);
    code.proc(pi).entry = entry;
  }

  void classify(const Term* head, ClauseIdx& ci) {
    if (!head || head->arity() == 0) {
      ci.kind = ArgKind::Var;  // no first argument: chain only
      return;
    }
    const Term* a = head->args[0];
    switch (a->tag) {
      case TermTag::Var:
        ci.kind = ArgKind::Var;
        break;
      case TermTag::Atom:
        ci.kind = ArgKind::Const;
        ci.key = CodeStore::const_key_atom(a->name);
        break;
      case TermTag::Int:
        ci.kind = ArgKind::Const;
        ci.key = CodeStore::const_key_int(a->ival);
        break;
      case TermTag::Struct:
        if (prog_.atoms().name(a->name) == "." && a->arity() == 2) {
          ci.kind = ArgKind::List;
        } else {
          ci.kind = ArgKind::Struct;
          ci.key = CodeStore::struct_key(a->name, static_cast<u32>(a->arity()));
        }
        break;
    }
  }

  /// Emits a try/retry/trust chain over `addrs`; returns its entry.
  /// `nargs` is the predicate arity (argument registers saved in the
  /// choice point).
  static i32 chain(CodeStore& code, const std::vector<i32>& addrs, i32 nargs) {
    if (addrs.empty()) return kFailAddr;
    if (addrs.size() == 1) return addrs[0];
    i32 entry = code.size();
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      Op op = i == 0 ? Op::Try : (i + 1 == addrs.size() ? Op::Trust : Op::Retry);
      code.emit({op, addrs[i], nargs, 0, 0});
    }
    return entry;
  }

  i32 build_index(CodeStore& code, PredId p, const std::vector<ClauseIdx>& idx) {
    std::vector<i32> all;
    for (const ClauseIdx& c : idx) all.push_back(c.addr);
    i32 na = static_cast<i32>(p.arity);
    i32 lvar = chain(code, all, na);

    bool discriminates = p.arity >= 1 &&
        std::any_of(idx.begin(), idx.end(),
                    [](const ClauseIdx& c) { return c.kind != ArgKind::Var; });
    if (!discriminates) return lvar;

    auto subset = [&](auto pred) {
      std::vector<i32> v;
      for (const ClauseIdx& c : idx)
        if (c.kind == ArgKind::Var || pred(c)) v.push_back(c.addr);
      return v;
    };
    std::vector<i32> var_only;
    for (const ClauseIdx& c : idx)
      if (c.kind == ArgKind::Var) var_only.push_back(c.addr);

    // Constants: one chain per distinct key, default = var-headed chain.
    i32 lconst = kFailAddr;
    {
      std::vector<u64> keys;
      for (const ClauseIdx& c : idx)
        if (c.kind == ArgKind::Const &&
            std::find(keys.begin(), keys.end(), c.key) == keys.end())
          keys.push_back(c.key);
      if (!keys.empty()) {
        i32 table = code.new_switch_table();
        for (u64 k : keys) {
          auto v = subset([&](const ClauseIdx& c) {
            return c.kind == ArgKind::Const && c.key == k;
          });
          code.switch_add(table, k, chain(code, v, na));
        }
        i32 dflt = chain(code, var_only, na);
        lconst = code.emit({Op::SwitchOnConst, table, dflt, 0, 0});
      } else if (!var_only.empty()) {
        lconst = chain(code, var_only, na);
      }
    }

    // Lists.
    i32 llist = chain(code, subset([](const ClauseIdx& c) {
      return c.kind == ArgKind::List;
    }), na);

    // Structures.
    i32 lstruct = kFailAddr;
    {
      std::vector<u64> keys;
      for (const ClauseIdx& c : idx)
        if (c.kind == ArgKind::Struct &&
            std::find(keys.begin(), keys.end(), c.key) == keys.end())
          keys.push_back(c.key);
      if (!keys.empty()) {
        i32 table = code.new_switch_table();
        for (u64 k : keys) {
          auto v = subset([&](const ClauseIdx& c) {
            return c.kind == ArgKind::Struct && c.key == k;
          });
          code.switch_add(table, k, chain(code, v, na));
        }
        i32 dflt = chain(code, var_only, na);
        lstruct = code.emit({Op::SwitchOnStruct, table, dflt, 0, 0});
      } else if (!var_only.empty()) {
        lstruct = chain(code, var_only, na);
      }
    }

    return code.emit({Op::SwitchOnTerm, lvar, lconst, llist, lstruct});
  }
};

}  // namespace

std::unique_ptr<CodeStore> compile_program(Program& prog, const CompileOptions& opts) {
  auto code = ProgramCompiler(prog, opts.strip_cge).run();
  verify_code(*code);
  if (opts.fuse) {
    fuse_code(*code);
    verify_code(*code);  // the fuse pass must preserve verifiability
  }
  return code;
}

std::unique_ptr<CodeStore> compile_program(Program& prog, bool strip_cge) {
  CompileOptions opts;
  opts.strip_cge = strip_cge;
  return compile_program(prog, opts);
}

}  // namespace rapwam
