// Code generator: normalised program -> parallel WAM code.
//
// Implements the classic WAM compilation scheme (head get/unify
// streams with nested-structure queues, body put streams built
// bottom-up, last-call optimisation, first-argument indexing with
// switch_on_term / switch_on_constant / switch_on_structure and
// try/retry/trust chains, neck cut and get_level/cut) plus the RAP-WAM
// CGE scheme:
//
//     <check_ground / check_indep ... jump to Lseq on failure>
//     pframe K
//     <puts for goal K-1> pgoal K-1 ...    (pushed last-to-first so the
//     ...                                   leftmost goal is at the
//     <puts for goal 0>   pgoal 0 ...       stack top for the parent)
//     pwait
//     jump Lend
//   Lseq: <sequential calls>               (only when checks exist)
//   Lend: ...
#pragma once

#include "compiler/analyze.h"
#include "compiler/code.h"
#include "compiler/normalize.h"

namespace rapwam {

/// Maximum arity of a goal inside a CGE (goal frames have a fixed
/// stride in the Goal Stack).
inline constexpr u32 kMaxParGoalArity = 12;

/// Code-generation switches.
struct CompileOptions {
  bool strip_cge = false;  ///< sequential-WAM baseline compilation
  /// Run the superinstruction fusion pass (compiler/fuse.h) after code
  /// generation, rewriting hot straight-line opcode pairs/triples into
  /// fused opcodes. Off by default at this layer; the Machine turns it
  /// on for single-PE runs, where fused execution is provably
  /// trace-identical to unfused (docs/DESIGN.md §13).
  bool fuse = false;
};

/// Compiles every predicate of `prog` into a fresh CodeStore.
/// Throws Error for undefined predicates or unsupported constructs.
std::unique_ptr<CodeStore> compile_program(Program& prog, const CompileOptions& opts);

/// Back-compat shim: `strip_cge` only, fusion off.
std::unique_ptr<CodeStore> compile_program(Program& prog, bool strip_cge = false);

}  // namespace rapwam
