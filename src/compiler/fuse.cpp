#include "compiler/fuse.h"

#include <algorithm>

namespace rapwam {

std::vector<i32> branch_targets(const CodeStore& code) {
  std::vector<i32> out;
  // Reserved prelude: the engine jumps here directly.
  out.push_back(kFailAddr);
  out.push_back(kEndGoalAddr);
  out.push_back(kEndLocalGoalAddr);
  for (i32 a = 0; a < code.size(); ++a) {
    const Instr& ins = code.at(a);
    switch (ins.op) {
      case Op::Jump:
      case Op::TryMeElse:
      case Op::RetryMeElse:
      case Op::Try:
      case Op::Retry:
      case Op::Trust:
        out.push_back(ins.a);
        break;
      case Op::SwitchOnTerm:
        out.push_back(ins.a);
        out.push_back(ins.b);
        out.push_back(ins.c);
        out.push_back(static_cast<i32>(ins.imm));
        break;
      case Op::SwitchOnConst:
      case Op::SwitchOnStruct:
        out.push_back(ins.b);  // default chain; table entries added below
        break;
      case Op::CheckGround:
      case Op::CheckIndep:
        out.push_back(ins.b);  // sequential-fallback label
        break;
      case Op::PFrame:
        out.push_back(static_cast<i32>(ins.imm));  // pwait abort target
        break;
      default:
        break;
    }
  }
  for (std::size_t p = 0; p < code.proc_count(); ++p) {
    i32 e = code.proc(static_cast<i32>(p)).entry;
    if (e >= 0) out.push_back(e);
  }
  code.for_each_switch_entry(
      [&](i32 /*table*/, u64 /*key*/, i32 addr) { out.push_back(addr); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int fused_width(Op op) {
  switch (op) {
    case Op::FuseCmpGuard:
      return 5;
    case Op::FuseGetListUnifyVarX2:
    case Op::FusePutValueX3:
    case Op::FusePutValueX2Execute:
    case Op::FuseNeckCutPutValueX2:
    case Op::FuseGetVarXGetListUnifyLocalX:
      return 3;
    case Op::FuseNeckCutPutValueX:
    case Op::FuseUnifyVarXPutValueX:
    case Op::FusePutUnsafeY2:
    case Op::FuseMathRIGetVarX:
    case Op::FuseMathLoadMathRR:
    case Op::FuseMathRRGetVarX:
    case Op::FusePutValueX2:
    case Op::FusePutValueXMathLoad:
    case Op::FusePutValueXExecute:
    case Op::FuseUnifyVarXGetVarX:
    case Op::FuseUnifyVarX2:
    case Op::FuseGetListUnifyVarX:
    case Op::FuseGetListUnifyLocalX:
    case Op::FuseGetVarXPutValueX:
    case Op::FuseGetVarX2:
    case Op::FuseGetVarXGetList:
    case Op::FuseMathLoadPutValueX:
    case Op::FuseMathLoadMathCmp:
    case Op::FuseUnifyLocalXUnifyVarX:
    case Op::FuseGetStructUnifyVarX:
      return 2;
    default:
      return 1;
  }
}

namespace {

constexpr bool reg16(i32 r) { return r >= 0 && r <= 0xFFFF; }

/// Collects every fused instruction whose window starts at `a` into
/// `out`. `joinable(k)` says whether the k-th following instruction may
/// be swallowed (exists and is not a branch target). Candidates of all
/// widths are produced; the DP in fuse_code picks the combination that
/// minimizes total dispatches.
template <class Joinable>
void candidates(const CodeStore& code, i32 a, Joinable&& joinable,
                std::vector<Instr>& out) {
  out.clear();
  const Instr& i1 = code.at(a);
  if (!joinable(1)) return;
  const Instr& i2 = code.at(a + 1);
  switch (i1.op) {
    case Op::PutValueX:
      if (i2.op == Op::PutValueX) {
        out.push_back({Op::FusePutValueX2, i1.a, i1.b, i2.a, i2.b});
        if (joinable(2)) {
          const Instr& i3 = code.at(a + 2);
          if (i3.op == Op::PutValueX && reg16(i2.b) && reg16(i3.a) &&
              reg16(i3.b)) {
            out.push_back({Op::FusePutValueX3, i1.a, i1.b, i2.a,
                           static_cast<i64>(i2.b) |
                               (static_cast<i64>(i3.a) << 16) |
                               (static_cast<i64>(i3.b) << 32)});
          }
          if (i3.op == Op::Execute && reg16(i2.b)) {
            out.push_back({Op::FusePutValueX2Execute, i1.a, i1.b, i2.a,
                           static_cast<i64>(i2.b) |
                               (static_cast<i64>(i3.a) << 32)});
          }
        }
      }
      if (i2.op == Op::MathLoad) {
        out.push_back({Op::FusePutValueXMathLoad, i1.a, i1.b, i2.a, i2.b});
        // The compiled guard of an arithmetic clause: both operands are
        // staged into temp registers, integer-checked in place, then
        // compared. Requires the in-place math_load shape (dst == src
        // == the staging register) the compiler emits.
        if (joinable(2) && joinable(3) && joinable(4) && i2.a == i2.b &&
            i2.a == i1.b) {
          const Instr& i3 = code.at(a + 2);
          const Instr& i4 = code.at(a + 3);
          const Instr& i5 = code.at(a + 4);
          if (i3.op == Op::PutValueX && i4.op == Op::MathLoad &&
              i4.a == i4.b && i4.a == i3.b && i5.op == Op::MathCmp &&
              i5.b == i1.b && i5.c == i3.b && reg16(i3.b) && i5.a >= 0 &&
              i5.a <= 0xFF) {
            out.push_back({Op::FuseCmpGuard, i1.a, i1.b, i3.a,
                           static_cast<i64>(i3.b) |
                               (static_cast<i64>(i5.a) << 16)});
          }
        }
      }
      if (i2.op == Op::Execute)
        out.push_back({Op::FusePutValueXExecute, i1.a, i1.b, i2.a, 0});
      return;
    case Op::UnifyVariableX:
      if (i2.op == Op::GetVariableX)
        out.push_back({Op::FuseUnifyVarXGetVarX, i1.a, 0, i2.a, i2.b});
      if (i2.op == Op::UnifyVariableX)
        out.push_back({Op::FuseUnifyVarX2, i1.a, 0, i2.a, 0});
      if (i2.op == Op::PutValueX)
        out.push_back({Op::FuseUnifyVarXPutValueX, i1.a, 0, i2.a, i2.b});
      return;
    case Op::GetList:
      if (i2.op == Op::UnifyVariableX) {
        if (joinable(2)) {
          const Instr& i3 = code.at(a + 2);
          if (i3.op == Op::UnifyVariableX)
            out.push_back({Op::FuseGetListUnifyVarX2, i2.a, i1.b, i3.a, 0});
        }
        out.push_back({Op::FuseGetListUnifyVarX, i2.a, i1.b, 0, 0});
      }
      if (i2.op == Op::UnifyLocalValueX)
        out.push_back({Op::FuseGetListUnifyLocalX, i2.a, i1.b, 0, 0});
      return;
    case Op::GetVariableX:
      if (i2.op == Op::PutValueX)
        out.push_back({Op::FuseGetVarXPutValueX, i1.a, i1.b, i2.a, i2.b});
      if (i2.op == Op::GetVariableX)
        out.push_back({Op::FuseGetVarX2, i1.a, i1.b, i2.a, i2.b});
      if (i2.op == Op::GetList) {
        out.push_back({Op::FuseGetVarXGetList, i1.a, i1.b, i2.b, 0});
        if (joinable(2)) {
          const Instr& i3 = code.at(a + 2);
          if (i3.op == Op::UnifyLocalValueX)
            out.push_back({Op::FuseGetVarXGetListUnifyLocalX, i1.a, i1.b,
                           i2.b, i3.a});
        }
      }
      return;
    case Op::MathLoad:
      if (i2.op == Op::PutValueX)
        out.push_back({Op::FuseMathLoadPutValueX, i1.a, i1.b, i2.a, i2.b});
      // The remaining math fusions pack register indices into imm; the
      // compiler never allocates X registers anywhere near 2^16, but
      // guard anyway — an unfusable pair is merely left alone.
      if (i2.op == Op::MathCmp && reg16(i2.b) && reg16(i2.c))
        out.push_back({Op::FuseMathLoadMathCmp, i1.a, i1.b, i2.a,
                       (static_cast<i64>(i2.b) << 16) | static_cast<i64>(i2.c)});
      if (i2.op == Op::MathRR && reg16(i2.b) && reg16(i2.c) &&
          i2.imm >= 0 && i2.imm <= 0xFFFF)
        out.push_back({Op::FuseMathLoadMathRR, i1.a, i1.b, i2.a,
                       static_cast<i64>(i2.b) | (static_cast<i64>(i2.c) << 16) |
                           (i2.imm << 32)});
      return;
    case Op::UnifyLocalValueX:
      if (i2.op == Op::UnifyVariableX)
        out.push_back({Op::FuseUnifyLocalXUnifyVarX, i1.a, 0, i2.a, 0});
      return;
    case Op::GetStructure:
      if (i2.op == Op::UnifyVariableX)
        out.push_back({Op::FuseGetStructUnifyVarX, i1.a, i1.b, i1.c, i2.a});
      return;
    case Op::NeckCut:
      if (i2.op == Op::PutValueX) {
        out.push_back({Op::FuseNeckCutPutValueX, i2.a, i2.b, 0, 0});
        if (joinable(2)) {
          const Instr& i3 = code.at(a + 2);
          if (i3.op == Op::PutValueX)
            out.push_back({Op::FuseNeckCutPutValueX2, i2.a, i2.b, i3.a, i3.b});
        }
      }
      return;
    case Op::PutUnsafeValue:
      if (i2.op == Op::PutUnsafeValue)
        out.push_back({Op::FusePutUnsafeY2, i1.a, i1.b, i2.a, i2.b});
      return;
    case Op::MathRI:
      // Bind-the-result idiom: math_ri into a temp, then name it.
      // Requires the get_variable source to be the math_ri destination
      // and a small non-negative immediate so both pack into imm.
      if (i2.op == Op::GetVariableX && i2.b == i1.b && reg16(i2.a) &&
          i1.imm >= 0 && i1.imm <= 0x7FFFFFFF)
        out.push_back({Op::FuseMathRIGetVarX, i1.a, i1.b, i1.c,
                       (i1.imm << 16) | static_cast<i64>(i2.a)});
      return;
    case Op::MathRR:
      if (i2.op == Op::GetVariableX && i2.b == i1.b && reg16(i2.a) &&
          i1.imm >= 0 && i1.imm <= 0xFFFF)
        out.push_back({Op::FuseMathRRGetVarX, i1.a, i1.b, i1.c,
                       i1.imm | (static_cast<i64>(i2.a) << 16)});
      return;
    default:
      return;
  }
}

}  // namespace

int fuse_code(CodeStore& code) {
  const i32 n = code.size();
  std::vector<bool> is_target(static_cast<std::size_t>(n), false);
  for (i32 t : branch_targets(code)) {
    RW_CHECK(t >= 0 && t < n, "branch target outside code array");
    is_target[static_cast<std::size_t>(t)] = true;
  }

  // Pick, per address, the window that minimizes total dispatches from
  // here to the end (right-to-left DP; greedy longest-first is not
  // optimal when e.g. a pair at A would preempt a 5-wide guard at A+1).
  // choice[a] holds the fused instruction chosen at a, op == kOpCount
  // when a stays unfused.
  std::vector<i32> cost(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Instr> choice(static_cast<std::size_t>(n));
  std::vector<Instr> cand;
  for (i32 a = n - 1; a >= 0; --a) {
    auto joinable = [&](i32 k) {
      return a + k < n && !is_target[static_cast<std::size_t>(a + k)];
    };
    choice[static_cast<std::size_t>(a)].op = Op::kOpCount;
    cost[static_cast<std::size_t>(a)] = 1 + cost[static_cast<std::size_t>(a) + 1];
    candidates(code, a, joinable, cand);
    for (const Instr& f : cand) {
      i32 c = 1 + cost[static_cast<std::size_t>(a + fused_width(f.op))];
      if (c < cost[static_cast<std::size_t>(a)]) {
        cost[static_cast<std::size_t>(a)] = c;
        choice[static_cast<std::size_t>(a)] = f;
      }
    }
  }

  // Rebuild compacted, mapping old -> new addresses. Interior
  // (swallowed) addresses map to -1; by construction no branch target
  // is ever interior, which the remap below re-checks.
  std::vector<i32> map(static_cast<std::size_t>(n), -1);
  std::vector<Instr> out;
  out.reserve(static_cast<std::size_t>(n));
  int fused = 0;
  for (i32 a = 0; a < n;) {
    map[static_cast<std::size_t>(a)] = static_cast<i32>(out.size());
    const Instr& f = choice[static_cast<std::size_t>(a)];
    if (f.op != Op::kOpCount) {
      out.push_back(f);
      ++fused;
      a += fused_width(f.op);
    } else {
      out.push_back(code.at(a));
      ++a;
    }
  }
  if (fused == 0) return 0;

  auto remap = [&](i32 old) {
    RW_CHECK(old >= 0 && old < n, "fusion remap: address outside code array");
    i32 nw = map[static_cast<std::size_t>(old)];
    RW_CHECK(nw >= 0, "fusion swallowed a branch target");
    return nw;
  };
  for (Instr& ins : out) {
    switch (ins.op) {
      case Op::Jump:
      case Op::TryMeElse:
      case Op::RetryMeElse:
      case Op::Try:
      case Op::Retry:
      case Op::Trust:
        ins.a = remap(ins.a);
        break;
      case Op::SwitchOnTerm:
        ins.a = remap(ins.a);
        ins.b = remap(ins.b);
        ins.c = remap(ins.c);
        ins.imm = remap(static_cast<i32>(ins.imm));
        break;
      case Op::SwitchOnConst:
      case Op::SwitchOnStruct:
        ins.b = remap(ins.b);
        break;
      case Op::CheckGround:
      case Op::CheckIndep:
        ins.b = remap(ins.b);
        break;
      case Op::PFrame:
        ins.imm = remap(static_cast<i32>(ins.imm));
        break;
      default:
        break;
    }
  }
  for (std::size_t p = 0; p < code.proc_count(); ++p) {
    Proc& pr = code.proc(static_cast<i32>(p));
    if (pr.entry >= 0) pr.entry = remap(pr.entry);
  }
  code.remap_switch_entries(remap);
  code.replace_code(std::move(out));
  return fused;
}

}  // namespace rapwam
