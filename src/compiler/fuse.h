// Superinstruction fusion: a peephole pass over compiled code that
// rewrites hot straight-line opcode pairs/triples into single fused
// opcodes (enum Op, "Fuse*" block), so the interpreter pays one
// dispatch for two or three instructions on the WAM's get/unify/put
// hot streams.
//
// Legality (docs/DESIGN.md §13): a window [A, A+k) may fuse only when
// every instruction after the first is NOT a branch target — proc
// entries, switch-table entries, try/retry/trust chain slots, jump and
// check fixup targets, pframe wait addresses and the reserved prelude
// all pin their addresses. The pass rewrites the code array in place
// (the fused instruction replaces the window) and remaps every address
// operand, proc entry and switch-table entry through the old->new map.
//
// The fused set is derived from the dynamic (op, next-op) pair profile
// of the four paper benchmarks (`bench_mlips --profile-ops`).
#pragma once

#include <vector>

#include "compiler/code.h"

namespace rapwam {

/// Fuses eligible windows in `code` in place. Returns the number of
/// fused instructions emitted (0 when nothing matched).
int fuse_code(CodeStore& code);

/// The set of code addresses that must stay addressable: every address
/// operand in the code array, every proc entry, every switch-table
/// entry, and the reserved prelude. Exposed for the fusion tests.
std::vector<i32> branch_targets(const CodeStore& code);

/// Number of original instructions a fused opcode stands for
/// (1 for every plain opcode). The engine and disassembler use this to
/// keep instruction/cycle accounting and listings exact.
int fused_width(Op op);

}  // namespace rapwam
