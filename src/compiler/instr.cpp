#include "compiler/instr.h"

#include <unordered_map>

namespace rapwam {

const char* op_name(Op op) {
  switch (op) {
    case Op::Call: return "call";
    case Op::Execute: return "execute";
    case Op::Proceed: return "proceed";
    case Op::Allocate: return "allocate";
    case Op::Deallocate: return "deallocate";
    case Op::Jump: return "jump";
    case Op::HaltSuccess: return "halt_success";
    case Op::EndGoal: return "end_goal";
    case Op::EndLocalGoal: return "end_local_goal";
    case Op::FailAlways: return "fail";
    case Op::TryMeElse: return "try_me_else";
    case Op::RetryMeElse: return "retry_me_else";
    case Op::TrustMe: return "trust_me";
    case Op::Try: return "try";
    case Op::Retry: return "retry";
    case Op::Trust: return "trust";
    case Op::SwitchOnTerm: return "switch_on_term";
    case Op::SwitchOnConst: return "switch_on_constant";
    case Op::SwitchOnStruct: return "switch_on_structure";
    case Op::GetLevel: return "get_level";
    case Op::Cut: return "cut";
    case Op::NeckCut: return "neck_cut";
    case Op::GetVariableX: return "get_variable_x";
    case Op::GetVariableY: return "get_variable_y";
    case Op::GetValueX: return "get_value_x";
    case Op::GetValueY: return "get_value_y";
    case Op::GetConstant: return "get_constant";
    case Op::GetInteger: return "get_integer";
    case Op::GetNil: return "get_nil";
    case Op::GetStructure: return "get_structure";
    case Op::GetList: return "get_list";
    case Op::PutVariableX: return "put_variable_x";
    case Op::PutVariableY: return "put_variable_y";
    case Op::PutValueX: return "put_value_x";
    case Op::PutValueY: return "put_value_y";
    case Op::PutUnsafeValue: return "put_unsafe_value";
    case Op::PutConstant: return "put_constant";
    case Op::PutInteger: return "put_integer";
    case Op::PutNil: return "put_nil";
    case Op::PutStructure: return "put_structure";
    case Op::PutList: return "put_list";
    case Op::UnifyVariableX: return "unify_variable_x";
    case Op::UnifyVariableY: return "unify_variable_y";
    case Op::UnifyValueX: return "unify_value_x";
    case Op::UnifyValueY: return "unify_value_y";
    case Op::UnifyLocalValueX: return "unify_local_value_x";
    case Op::UnifyLocalValueY: return "unify_local_value_y";
    case Op::UnifyConstant: return "unify_constant";
    case Op::UnifyInteger: return "unify_integer";
    case Op::UnifyNil: return "unify_nil";
    case Op::UnifyVoid: return "unify_void";
    case Op::MathLoad: return "math_load";
    case Op::MathRR: return "math_rr";
    case Op::MathRI: return "math_ri";
    case Op::MathCmp: return "math_cmp";
    case Op::Builtin: return "builtin";
    case Op::CheckGround: return "check_ground";
    case Op::CheckIndep: return "check_indep";
    case Op::PFrame: return "pframe";
    case Op::PGoal: return "pgoal";
    case Op::PWait: return "pwait";
    case Op::FusePutValueX2: return "put_value_x+put_value_x";
    case Op::FusePutValueXMathLoad: return "put_value_x+math_load";
    case Op::FusePutValueXExecute: return "put_value_x+execute";
    case Op::FuseUnifyVarXGetVarX: return "unify_variable_x+get_variable_x";
    case Op::FuseUnifyVarX2: return "unify_variable_x+unify_variable_x";
    case Op::FuseGetListUnifyVarX2:
      return "get_list+unify_variable_x+unify_variable_x";
    case Op::FuseGetListUnifyVarX: return "get_list+unify_variable_x";
    case Op::FuseGetListUnifyLocalX: return "get_list+unify_local_value_x";
    case Op::FuseGetVarXPutValueX: return "get_variable_x+put_value_x";
    case Op::FuseGetVarX2: return "get_variable_x+get_variable_x";
    case Op::FuseGetVarXGetList: return "get_variable_x+get_list";
    case Op::FuseMathLoadPutValueX: return "math_load+put_value_x";
    case Op::FuseMathLoadMathCmp: return "math_load+math_cmp";
    case Op::FuseUnifyLocalXUnifyVarX:
      return "unify_local_value_x+unify_variable_x";
    case Op::FuseGetStructUnifyVarX: return "get_structure+unify_variable_x";
    case Op::FusePutValueX3:
      return "put_value_x+put_value_x+put_value_x";
    case Op::FuseNeckCutPutValueX: return "neck_cut+put_value_x";
    case Op::FuseUnifyVarXPutValueX: return "unify_variable_x+put_value_x";
    case Op::FusePutUnsafeY2: return "put_unsafe_value+put_unsafe_value";
    case Op::FuseMathRIGetVarX: return "math_ri+get_variable_x";
    case Op::FuseMathLoadMathRR: return "math_load+math_rr";
    case Op::FuseMathRRGetVarX: return "math_rr+get_variable_x";
    case Op::FuseCmpGuard:
      return "put_value_x+math_load+put_value_x+math_load+math_cmp";
    case Op::FusePutValueX2Execute:
      return "put_value_x+put_value_x+execute";
    case Op::FuseNeckCutPutValueX2:
      return "neck_cut+put_value_x+put_value_x";
    case Op::FuseGetVarXGetListUnifyLocalX:
      return "get_variable_x+get_list+unify_local_value_x";
    case Op::kOpCount: break;
  }
  return "?";
}

const char* builtin_name(BuiltinId b) {
  switch (b) {
    case BuiltinId::Unify: return "=";
    case BuiltinId::Is: return "is";
    case BuiltinId::LessThan: return "<";
    case BuiltinId::GreaterThan: return ">";
    case BuiltinId::LessEq: return "=<";
    case BuiltinId::GreaterEq: return ">=";
    case BuiltinId::ArithEq: return "=:=";
    case BuiltinId::ArithNeq: return "=\\=";
    case BuiltinId::StructEq: return "==";
    case BuiltinId::StructNeq: return "\\==";
    case BuiltinId::Var: return "var";
    case BuiltinId::NonVar: return "nonvar";
    case BuiltinId::Atom: return "atom";
    case BuiltinId::Integer: return "integer";
    case BuiltinId::Atomic: return "atomic";
    case BuiltinId::Compound: return "compound";
    case BuiltinId::Ground: return "ground";
    case BuiltinId::Indep: return "indep";
    case BuiltinId::True: return "true";
    case BuiltinId::Fail: return "fail";
    case BuiltinId::Write: return "write";
    case BuiltinId::Nl: return "nl";
    case BuiltinId::Functor: return "functor";
    case BuiltinId::Arg: return "arg";
    case BuiltinId::Call1: return "call";
    case BuiltinId::TermLt: return "@<";
    case BuiltinId::TermLe: return "@=<";
    case BuiltinId::TermGt: return "@>";
    case BuiltinId::TermGe: return "@>=";
    case BuiltinId::Compare3: return "compare";
    case BuiltinId::Univ: return "=..";
    case BuiltinId::CopyTerm: return "copy_term";
    case BuiltinId::kCount: break;
  }
  return "?";
}

bool lookup_builtin(const std::string& name, u32 arity, BuiltinId& out) {
  struct Key {
    const char* n;
    u32 a;
    BuiltinId id;
  };
  static const Key table[] = {
      {"=", 2, BuiltinId::Unify},
      {"is", 2, BuiltinId::Is},
      {"<", 2, BuiltinId::LessThan},
      {">", 2, BuiltinId::GreaterThan},
      {"=<", 2, BuiltinId::LessEq},
      {">=", 2, BuiltinId::GreaterEq},
      {"=:=", 2, BuiltinId::ArithEq},
      {"=\\=", 2, BuiltinId::ArithNeq},
      {"==", 2, BuiltinId::StructEq},
      {"\\==", 2, BuiltinId::StructNeq},
      {"var", 1, BuiltinId::Var},
      {"nonvar", 1, BuiltinId::NonVar},
      {"atom", 1, BuiltinId::Atom},
      {"integer", 1, BuiltinId::Integer},
      {"atomic", 1, BuiltinId::Atomic},
      {"compound", 1, BuiltinId::Compound},
      {"ground", 1, BuiltinId::Ground},
      {"indep", 2, BuiltinId::Indep},
      {"true", 0, BuiltinId::True},
      {"fail", 0, BuiltinId::Fail},
      {"false", 0, BuiltinId::Fail},
      {"write", 1, BuiltinId::Write},
      {"nl", 0, BuiltinId::Nl},
      {"functor", 3, BuiltinId::Functor},
      {"arg", 3, BuiltinId::Arg},
      {"@<", 2, BuiltinId::TermLt},
      {"@=<", 2, BuiltinId::TermLe},
      {"@>", 2, BuiltinId::TermGt},
      {"@>=", 2, BuiltinId::TermGe},
      {"compare", 3, BuiltinId::Compare3},
      {"=..", 2, BuiltinId::Univ},
      {"copy_term", 2, BuiltinId::CopyTerm},
      // call/1 is deliberately absent: it compiles as a regular call to
      // the predicate 'call'/1, whose single-instruction stub the
      // compiler emits (meta-call must preserve the continuation
      // register, which an inline builtin cannot).
  };
  for (const Key& k : table) {
    if (arity == k.a && name == k.n) {
      out = k.id;
      return true;
    }
  }
  return false;
}

}  // namespace rapwam
