// Parallel WAM instruction set.
//
// The sequential subset is the classic WAM of Warren's 1983 report
// (get/put/unify, try/retry/trust, switch indexing, environment
// control, cut). The RAP-WAM extensions follow Hermenegildo 1986/1988:
// run-time independence checks (check_ground / check_indep), parcall
// frame allocation (pframe), goal-frame pushing (pgoal) and the
// wait-and-schedule instruction (pwait).
//
// Operands are small integers: X/Y register indices, A registers
// (A_i == X_i), proc-table indices, code addresses, interned atom ids.
// `imm` carries 64-bit integer immediates and the fourth switch target.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace rapwam {

enum class Op : u8 {
  // Control.
  Call,          // a=proc idx                 call user predicate, CP=next
  Execute,       // a=proc idx                 tail call
  Proceed,       //                            return (P = CP)
  Allocate,      // a=#Y slots                 push environment
  Deallocate,    //                            pop environment
  Jump,          // a=addr
  HaltSuccess,   //                            query solved
  EndGoal,       //                            stolen parallel goal finished
  EndLocalGoal,  //                            parent-local parallel goal finished
  FailAlways,    //                            unconditional failure
  // Choice points.
  TryMeElse,     // a=alt addr
  RetryMeElse,   // a=alt addr
  TrustMe,
  Try,           // a=clause addr              push CP, alt = next instr
  Retry,         // a=clause addr
  Trust,         // a=clause addr
  // Indexing.
  SwitchOnTerm,  // a=Lvar b=Lconst c=Llist imm=Lstruct
  SwitchOnConst, // a=table idx (miss => fail)
  SwitchOnStruct,// a=table idx (miss => fail)
  // Cut.
  GetLevel,      // a=Yn                       Yn := B at clause entry
  Cut,           // a=Yn                       B := Yn, discard newer CPs
  NeckCut,       //                            B := B0 (clause-entry B)
  // Head unification.
  GetVariableX,  // a=Xn b=Ai
  GetVariableY,  // a=Yn b=Ai
  GetValueX,     // a=Xn b=Ai
  GetValueY,     // a=Yn b=Ai
  GetConstant,   // a=atom id b=Ai
  GetInteger,    // imm=value b=Ai
  GetNil,        // b=Ai
  GetStructure,  // a=functor atom id c=arity b=Ai
  GetList,       // b=Ai
  // Argument loading.
  PutVariableX,  // a=Xn b=Ai                  fresh heap var
  PutVariableY,  // a=Yn b=Ai                  fresh stack var
  PutValueX,     // a=Xn b=Ai
  PutValueY,     // a=Yn b=Ai
  PutUnsafeValue,// a=Yn b=Ai                  globalise env-local value
  PutConstant,   // a=atom id b=Ai
  PutInteger,    // imm=value b=Ai
  PutNil,        // b=Ai
  PutStructure,  // a=functor atom id c=arity b=Ai
  PutList,       // b=Ai
  // Structure argument stream.
  UnifyVariableX,  // a=Xn
  UnifyVariableY,  // a=Yn
  UnifyValueX,     // a=Xn
  UnifyValueY,     // a=Yn
  UnifyLocalValueX,// a=Xn
  UnifyLocalValueY,// a=Yn
  UnifyConstant,   // a=atom id
  UnifyInteger,    // imm=value
  UnifyNil,
  UnifyVoid,       // a=count
  // Compiled arithmetic (register-resident; no heap expression trees).
  MathLoad,      // a=dst X b=src X           deref; must yield an integer
  MathRR,        // a=MathFn b=dst X c=s1 X imm=s2 X
  MathRI,        // a=MathFn b=dst X c=s1 X imm=integer immediate
  MathCmp,       // a=CmpFn b=s1 X c=s2 X     fail unless relation holds
  // Inline predicates.
  Builtin,       // a=BuiltinId b=arity (args in A1..An)
  // RAP-WAM parallel extensions.
  CheckGround,   // a=Xn b=seq addr            jump if X not ground
  CheckIndep,    // a=Xn c=Xm b=seq addr       jump if X,Y share vars
  PFrame,        // a=#slots b=PF env slot imm=pwait addr
  PGoal,         // a=slot b=proc idx c=arity  snapshot A1..Ac, push goal
  PWait,         // a=PF env slot              schedule/execute/wait
  // Fused superinstructions (compiler/fuse.cpp): one dispatch for two
  // or three of the above, emitted for the hottest dynamic contiguous
  // (op, next-op) pairs of the four paper benchmarks as measured by
  // `bench_mlips --profile-ops` (docs/DESIGN.md §13). Operand packing
  // is per-op, noted as  first-op operands ; second-op operands.
  FusePutValueX2,          // put_value_x a,b ; put_value_x c,imm
  FusePutValueXMathLoad,   // put_value_x a,b ; math_load c,imm
  FusePutValueXExecute,    // put_value_x a,b ; execute c
  FuseUnifyVarXGetVarX,    // unify_variable_x a ; get_variable_x c,imm
  FuseUnifyVarX2,          // unify_variable_x a ; unify_variable_x c
  FuseGetListUnifyVarX2,   // get_list b ; unify_variable_x a ; unify_variable_x c
  FuseGetListUnifyVarX,    // get_list b ; unify_variable_x a
  FuseGetListUnifyLocalX,  // get_list b ; unify_local_value_x a
  FuseGetVarXPutValueX,    // get_variable_x a,b ; put_value_x c,imm
  FuseGetVarX2,            // get_variable_x a,b ; get_variable_x c,imm
  FuseGetVarXGetList,      // get_variable_x a,b ; get_list c
  FuseMathLoadPutValueX,   // math_load a,b ; put_value_x c,imm
  FuseMathLoadMathCmp,     // math_load a,b ; math_cmp c,(imm>>16),(imm&0xFFFF)
  FuseUnifyLocalXUnifyVarX,// unify_local_value_x a ; unify_variable_x c
  FuseGetStructUnifyVarX,  // get_structure a,b,c ; unify_variable_x imm
  // Wider windows for the dominant static idioms (same legality rules;
  // multi-register operands pack 16-bit register indices into imm).
  FusePutValueX3,          // put_value_x a,b ; put_value_x c,(imm&0xFFFF) ;
                           //   put_value_x ((imm>>16)&0xFFFF),((imm>>32)&0xFFFF)
  FuseNeckCutPutValueX,    // neck_cut ; put_value_x a,b
  FuseUnifyVarXPutValueX,  // unify_variable_x a ; put_value_x c,imm
  FusePutUnsafeY2,         // put_unsafe_value a,b ; put_unsafe_value c,imm
  FuseMathRIGetVarX,       // math_ri a,b,c,(imm>>16) ; get_variable_x (imm&0xFFFF),b
  FuseMathLoadMathRR,      // math_load a,b ; math_rr c,(imm&0xFFFF),
                           //   ((imm>>16)&0xFFFF),((imm>>32)&0xFFFF)
  FuseMathRRGetVarX,       // math_rr a,b,c,(imm&0xFFFF) ; get_variable_x ((imm>>16)&0xFFFF),b
  FuseCmpGuard,            // the compiled arithmetic guard of a clause:
                           //   put_value_x a,b ; math_load b,b ;
                           //   put_value_x c,(imm&0xFFFF) ;
                           //   math_load (imm&0xFFFF),(imm&0xFFFF) ;
                           //   math_cmp ((imm>>16)&0xFF),b,(imm&0xFFFF)
  FusePutValueX2Execute,   // put_value_x a,b ; put_value_x c,(imm&0xFFFF) ;
                           //   execute (imm>>32)
  FuseNeckCutPutValueX2,   // neck_cut ; put_value_x a,b ; put_value_x c,imm
  FuseGetVarXGetListUnifyLocalX,  // get_variable_x a,b ; get_list c ;
                                  //   unify_local_value_x imm
  kOpCount,      // sentinel — keep last (sizes the threaded-dispatch table)
};

/// Inline predicate identifiers (dispatch table in the engine).
enum class BuiltinId : u8 {
  Unify,        // =/2
  Is,           // is/2
  LessThan, GreaterThan, LessEq, GreaterEq, ArithEq, ArithNeq,
  StructEq,     // ==/2
  StructNeq,    // \==/2
  Var, NonVar, Atom, Integer, Atomic, Compound,
  Ground,       // ground/1
  Indep,        // indep/2
  True, Fail,
  Write, Nl,
  Functor,      // functor/3
  Arg,          // arg/3
  Call1,        // call/1 meta-call
  TermLt, TermLe, TermGt, TermGe,  // @</2 family (standard order)
  Compare3,     // compare/3
  Univ,         // =../2
  CopyTerm,     // copy_term/2
  kCount
};

/// Arithmetic functions for MathRR/MathRI.
enum class MathFn : u8 {
  Add, Sub, Mul, Div, Mod, Rem, Min, Max, And, Or, Shl, Shr, Neg, Abs
};
/// Comparison kinds for MathCmp.
enum class CmpFn : u8 { Lt, Gt, Le, Ge, Eq, Ne };

struct Instr {
  Op op = Op::FailAlways;
  i32 a = 0;
  i32 b = 0;
  i32 c = 0;
  i64 imm = 0;
};

const char* op_name(Op op);
const char* builtin_name(BuiltinId b);

/// name/arity -> builtin id, if the predicate is inline.
bool lookup_builtin(const std::string& name, u32 arity, BuiltinId& out);

}  // namespace rapwam
