#include "compiler/normalize.h"

#include <algorithm>

namespace rapwam {

namespace {

class Normalizer {
 public:
  Normalizer(Program& prog, bool strip_cge) : prog_(prog), strip_(strip_cge) {
    TermStore& st = prog.terms();
    Interner& a = st.atoms();
    comma_ = a.intern(",");
    semi_ = a.intern(";");
    arrow_ = a.intern("->");
    amp_ = a.intern("&");
    bar_ = a.intern("|");
    naf_ = a.intern("\\+");
    cut_ = a.intern("!");
    true_ = a.intern("true");
    ground_ = a.intern("ground");
    indep_ = a.intern("indep");
  }

  NormalizedProgram run() {
    NormalizedProgram out;
    // predicates() grows while we lift auxiliaries; index loop on purpose.
    for (std::size_t i = 0; i < prog_.predicates().size(); ++i) {
      PredId p = prog_.predicates()[i];
      std::vector<NClause> ncs;
      for (const Clause& c : prog_.clauses_of(p)) {
        NClause nc;
        nc.head = c.head;
        if (c.body) flatten(c.body, nc.body);
        ncs.push_back(std::move(nc));
      }
      out.order.push_back(p);
      out.preds.emplace(p, std::move(ncs));
    }
    return out;
  }

 private:
  Program& prog_;
  bool strip_;
  u32 comma_, semi_, arrow_, amp_, bar_, naf_, cut_, true_, ground_, indep_;

  bool is_op(const Term* t, u32 name, u32 arity) const {
    return t->is_struct() && t->name == name && t->arity() == arity;
  }

  void flatten(const Term* g, std::vector<NGoal>& out) {
    if (g->is_var()) fail("variable goal requires call/1");
    if (g->is_int()) fail("integer cannot be called as a goal");
    if (g->is_atom()) {
      if (g->name == true_) return;
      if (g->name == cut_) {
        NGoal n;
        n.kind = NGoal::Kind::Cut;
        out.push_back(std::move(n));
        return;
      }
      out.push_back(plain_goal(g));
      return;
    }
    if (is_op(g, comma_, 2)) {
      flatten(g->args[0], out);
      flatten(g->args[1], out);
      return;
    }
    if (is_op(g, semi_, 2) || is_op(g, naf_, 1)) {
      out.push_back(lift(g));
      return;
    }
    if (is_op(g, arrow_, 2)) {
      // A bare if-then (no else) behaves like (A -> B ; fail).
      const Term* ite =
          prog_.terms().mk_struct(semi_, {g, prog_.terms().mk_atom("fail")});
      out.push_back(lift(ite));
      return;
    }
    if (is_op(g, amp_, 2)) {
      out.push_back(make_parcall({}, g));
      return;
    }
    if (is_op(g, bar_, 2)) {
      std::vector<CondCheck> conds;
      parse_conds(g->args[0], conds);
      out.push_back(make_parcall(std::move(conds), g->args[1]));
      return;
    }
    out.push_back(plain_goal(g));
  }

  /// A goal that is a plain predicate call or inline builtin.
  NGoal plain_goal(const Term* g) {
    NGoal n;
    n.args.assign(g->args.begin(), g->args.end());
    u32 arity = static_cast<u32>(g->arity());
    BuiltinId bid;
    if (lookup_builtin(prog_.atoms().name(g->name), arity, bid)) {
      n.kind = NGoal::Kind::Builtin;
      n.bid = bid;
      return n;
    }
    n.kind = NGoal::Kind::Call;
    n.pred = PredId{g->name, arity};
    return n;
  }

  void parse_conds(const Term* c, std::vector<CondCheck>& out) {
    if (c->is_atom() && c->name == true_) return;
    if (is_op(c, comma_, 2)) {
      parse_conds(c->args[0], out);
      parse_conds(c->args[1], out);
      return;
    }
    if (is_op(c, ground_, 1)) {
      out.push_back(CondCheck{false, c->args[0], nullptr});
      return;
    }
    if (is_op(c, indep_, 2)) {
      out.push_back(CondCheck{true, c->args[0], c->args[1]});
      return;
    }
    fail("CGE condition must be a conjunction of ground/1, indep/2, true: " +
         prog_.terms().to_string(c));
  }

  NGoal make_parcall(std::vector<CondCheck> conds, const Term* goals) {
    std::vector<const Term*> flat;
    collect_amp(goals, flat);
    NGoal n;
    n.kind = NGoal::Kind::Parcall;
    n.conds = std::move(conds);
    for (const Term* g : flat) n.pgoals.push_back(normal_par_goal(g));
    if (strip_) {
      // Plain-WAM baseline: the un-annotated program. The code
      // generator emits the goals as an ordinary sequential
      // conjunction; checks and parcall machinery disappear.
      n.conds.clear();
      n.sequentialized = true;
    }
    return n;
  }

  void collect_amp(const Term* t, std::vector<const Term*>& out) {
    if (is_op(t, amp_, 2)) {
      collect_amp(t->args[0], out);
      collect_amp(t->args[1], out);
      return;
    }
    out.push_back(t);
  }

  /// A parallel goal must be a user predicate call; anything else
  /// (builtin, control construct) is lifted into an auxiliary predicate.
  NGoal normal_par_goal(const Term* g) {
    bool needs_lift = true;
    if ((g->is_atom() || g->is_struct())) {
      BuiltinId bid;
      bool is_builtin =
          lookup_builtin(prog_.atoms().name(g->name), static_cast<u32>(g->arity()), bid);
      bool is_control = is_op(g, comma_, 2) || is_op(g, semi_, 2) || is_op(g, arrow_, 2) ||
                        is_op(g, amp_, 2) || is_op(g, bar_, 2) || is_op(g, naf_, 1) ||
                        (g->is_atom() && (g->name == cut_ || g->name == true_));
      needs_lift = is_builtin || is_control;
    } else {
      fail("parallel goal must be callable: " + prog_.terms().to_string(g));
    }
    if (needs_lift) return lift(g);
    NGoal n;
    n.kind = NGoal::Kind::Call;
    n.pred = PredId{g->name, static_cast<u32>(g->arity())};
    n.args.assign(g->args.begin(), g->args.end());
    return n;
  }

  /// Lifts goal `g` into a fresh predicate over g's variables and
  /// returns the call to it. Handles ;, ->, \+ and generic goals.
  NGoal lift(const Term* g) {
    TermStore& st = prog_.terms();
    std::vector<const Term*> vars;
    TermStore::collect_vars(g, vars);
    std::string name = prog_.fresh_name("$aux");
    auto mk_head = [&]() -> const Term* {
      if (vars.empty()) return st.mk_atom(name);
      return st.mk_struct(name, std::vector<const Term*>(vars));
    };
    const Term* head = mk_head();

    if (is_op(g, semi_, 2) && is_op(g->args[0], arrow_, 2)) {
      // (C -> T ; E):   aux :- C, !, T.    aux :- E.
      const Term* c = g->args[0]->args[0];
      const Term* t = g->args[0]->args[1];
      const Term* e = g->args[1];
      const Term* bang = st.mk_atom("!");
      prog_.add_clause(head, st.mk_struct(comma_, {c, st.mk_struct(comma_, {bang, t})}));
      prog_.add_clause(head, e);
    } else if (is_op(g, semi_, 2)) {
      prog_.add_clause(head, g->args[0]);
      prog_.add_clause(head, g->args[1]);
    } else if (is_op(g, naf_, 1)) {
      // \+ G:   aux :- G, !, fail.   aux.
      const Term* bang = st.mk_atom("!");
      const Term* f = st.mk_atom("fail");
      prog_.add_clause(head,
                       st.mk_struct(comma_, {g->args[0], st.mk_struct(comma_, {bang, f})}));
      prog_.add_clause(head, nullptr);
    } else {
      prog_.add_clause(head, g);
    }

    NGoal n;
    n.kind = NGoal::Kind::Call;
    n.pred = PredId{st.atoms().intern(name), static_cast<u32>(vars.size())};
    n.args = vars;
    return n;
  }
};

}  // namespace

NormalizedProgram normalize(Program& prog, bool strip_cge) {
  return Normalizer(prog, strip_cge).run();
}

}  // namespace rapwam
