// Source normalisation.
//
// Turns parsed clause bodies into flat goal sequences the code
// generator consumes directly:
//   * `,`-conjunctions are flattened,
//   * `;`, `->` and `\+` are lifted into fresh auxiliary predicates
//     (cut inside a lifted disjunction is local to it, as in classic
//     DEC-10-style compilers),
//   * `&`-conjunctions and `(Cond | Goals)` CGEs become Parcall goals
//     with their run-time condition checks (ground/indep/true),
//   * inline predicates are recognised as Builtin goals.
//
// With `strip_cge` set, Parcalls degrade to their sequential goal
// sequence: that is the plain-WAM baseline the paper compares against.
#pragma once

#include <unordered_map>
#include <vector>

#include "compiler/instr.h"
#include "prolog/program.h"

namespace rapwam {

struct CondCheck {
  bool indep = false;       ///< false => ground(a), true => indep(a, b)
  const Term* a = nullptr;
  const Term* b = nullptr;  ///< indep only
};

struct NGoal {
  enum class Kind : u8 { Call, Builtin, Cut, Parcall };
  Kind kind = Kind::Call;
  // Call / parallel goals:
  PredId pred{};
  std::vector<const Term*> args;
  // Builtin:
  BuiltinId bid = BuiltinId::True;
  // Parcall:
  std::vector<CondCheck> conds;
  std::vector<NGoal> pgoals;  ///< each Kind::Call
  /// strip_cge mode: run pgoals sequentially (plain-WAM baseline).
  bool sequentialized = false;
};

struct NClause {
  const Term* head = nullptr;
  std::vector<NGoal> body;
};

struct NormalizedProgram {
  std::vector<PredId> order;
  std::unordered_map<PredId, std::vector<NClause>, PredIdHash> preds;
};

/// Normalises every predicate of `prog` (auxiliary predicates created
/// during lifting are appended to `prog` and normalised too).
NormalizedProgram normalize(Program& prog, bool strip_cge);

}  // namespace rapwam
