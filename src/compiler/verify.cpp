#include "compiler/verify.h"

#include <string>

#include "compiler/compile.h"
#include "support/interner.h"

namespace rapwam {

namespace {

// MathFn / CmpFn carry no sentinel; keep these in sync with instr.h.
constexpr i32 kMathFnCount = static_cast<i32>(MathFn::Abs) + 1;
constexpr i32 kCmpFnCount = static_cast<i32>(CmpFn::Ne) + 1;

class Verifier {
 public:
  explicit Verifier(const CodeStore& code)
      : code_(code),
        size_(code.size()),
        procs_(static_cast<i32>(code.proc_count())),
        tables_(code.table_count()),
        atoms_(static_cast<i64>(code.atoms().size())) {}

  void run() {
    prelude();
    for (addr_ = 0; addr_ < size_; ++addr_) instr(code_.at(addr_));
    addr_ = -1;
    for (i32 p = 0; p < procs_; ++p) {
      i32 e = code_.proc(p).entry;
      if (e != -1 && (e < 0 || e >= size_))
        reject("proc " + std::to_string(p) + " entry " + std::to_string(e) +
               " out of range");
    }
    code_.for_each_switch_entry([&](i32 table, u64 key, i32 a) {
      (void)key;
      if (a < 0 || a >= size_)
        reject("switch table " + std::to_string(table) + " entry target " +
               std::to_string(a) + " out of range");
    });
  }

 private:
  [[noreturn]] void reject(const std::string& what) const {
    std::string where =
        addr_ < 0 ? std::string()
                  : "@" + std::to_string(addr_) + " " +
                        op_name(code_.at(addr_).op) + ": ";
    fail("verify: " + where + what);
  }

  void prelude() {
    if (size_ < 3) reject("code store lacks the reserved prelude");
    if (code_.at(kFailAddr).op != Op::FailAlways ||
        code_.at(kEndGoalAddr).op != Op::EndGoal ||
        code_.at(kEndLocalGoalAddr).op != Op::EndLocalGoal)
      reject("reserved prelude opcodes are corrupt");
  }

  void addr(i64 a, const char* what) const {
    if (a < 0 || a >= size_)
      reject(std::string(what) + " target " + std::to_string(a) +
             " out of range [0," + std::to_string(size_) + ")");
  }
  void xreg(i64 r, const char* what) const {
    if (r < 0 || r >= kVerifyMaxXRegs)
      reject(std::string(what) + " X register " + std::to_string(r) +
             " out of range [0," + std::to_string(kVerifyMaxXRegs) + ")");
  }
  void yslot(i64 y, const char* what) const {
    if (y < 0 || y >= kVerifyMaxYSlots)
      reject(std::string(what) + " Y slot " + std::to_string(y) +
             " out of range");
  }
  void proc(i64 p, const char* what) const {
    if (p < 0 || p >= procs_)
      reject(std::string(what) + " proc index " + std::to_string(p) +
             " out of range [0," + std::to_string(procs_) + ")");
  }
  void table(i64 t) const {
    if (t < 0 || t >= tables_)
      reject("switch table id " + std::to_string(t) + " out of range [0," +
             std::to_string(tables_) + ")");
  }
  void atom(i64 a, const char* what) const {
    if (a < 0 || a >= atoms_)
      reject(std::string(what) + " atom id " + std::to_string(a) +
             " out of range [0," + std::to_string(atoms_) + ")");
  }
  void arity(i64 n, const char* what) const {
    // Functor arities pack into 16 bits (CodeStore::struct_key).
    if (n < 0 || n >= (i64{1} << 16))
      reject(std::string(what) + " arity " + std::to_string(n) +
             " out of range");
  }
  void nargs(i64 n, const char* what) const {
    // Saved/snapshotted argument registers A1..An must stay within X.
    if (n < 0 || n >= kVerifyMaxXRegs)
      reject(std::string(what) + " argument count " + std::to_string(n) +
             " out of range");
  }
  void math_fn(i64 f) const {
    if (f < 0 || f >= kMathFnCount)
      reject("math function " + std::to_string(f) + " out of range");
  }
  void cmp_fn(i64 f) const {
    if (f < 0 || f >= kCmpFnCount)
      reject("compare function " + std::to_string(f) + " out of range");
  }

  void instr(const Instr& ins) const {
    if (static_cast<std::size_t>(ins.op) >=
        static_cast<std::size_t>(Op::kOpCount))
      fail("verify: @" + std::to_string(addr_) + ": bad opcode " +
           std::to_string(static_cast<unsigned>(ins.op)));
    switch (ins.op) {
      // -- control ------------------------------------------------------
      case Op::Call:
      case Op::Execute:
        proc(ins.a, "call");
        break;
      case Op::Proceed:
      case Op::Deallocate:
      case Op::HaltSuccess:
      case Op::EndGoal:
      case Op::EndLocalGoal:
      case Op::FailAlways:
      case Op::TrustMe:
      case Op::NeckCut:
      case Op::UnifyNil:
      case Op::UnifyInteger:
        break;
      case Op::Allocate:
        yslot(ins.a, "environment size");
        break;
      case Op::Jump:
        addr(ins.a, "jump");
        break;
      // -- choice points ------------------------------------------------
      case Op::TryMeElse:
      case Op::Try:
        addr(ins.a, "alternative");
        nargs(ins.b, "choice point");
        break;
      case Op::RetryMeElse:
      case Op::Retry:
      case Op::Trust:
        addr(ins.a, "alternative");
        break;
      // -- indexing -----------------------------------------------------
      case Op::SwitchOnTerm:
        addr(ins.a, "var");
        addr(ins.b, "const");
        addr(ins.c, "list");
        addr(ins.imm, "struct");
        break;
      case Op::SwitchOnConst:
      case Op::SwitchOnStruct:
        table(ins.a);
        addr(ins.b, "default");
        break;
      // -- cut ----------------------------------------------------------
      case Op::GetLevel:
      case Op::Cut:
        yslot(ins.a, "cut level");
        break;
      // -- head unification / argument loading --------------------------
      case Op::GetVariableX:
      case Op::GetValueX:
      case Op::PutVariableX:
      case Op::PutValueX:
        xreg(ins.a, "source");
        xreg(ins.b, "argument");
        break;
      case Op::GetVariableY:
      case Op::GetValueY:
      case Op::PutVariableY:
      case Op::PutValueY:
      case Op::PutUnsafeValue:
        yslot(ins.a, "permanent");
        xreg(ins.b, "argument");
        break;
      case Op::GetConstant:
      case Op::PutConstant:
        atom(ins.a, "constant");
        xreg(ins.b, "argument");
        break;
      case Op::GetInteger:
      case Op::PutInteger:
      case Op::GetNil:
      case Op::PutNil:
      case Op::GetList:
      case Op::PutList:
        xreg(ins.b, "argument");
        break;
      case Op::GetStructure:
      case Op::PutStructure:
        atom(ins.a, "functor");
        arity(ins.c, "functor");
        xreg(ins.b, "argument");
        break;
      // -- structure argument stream ------------------------------------
      case Op::UnifyVariableX:
      case Op::UnifyValueX:
      case Op::UnifyLocalValueX:
        xreg(ins.a, "unify");
        break;
      case Op::UnifyVariableY:
      case Op::UnifyValueY:
      case Op::UnifyLocalValueY:
        yslot(ins.a, "unify");
        break;
      case Op::UnifyConstant:
        atom(ins.a, "constant");
        break;
      case Op::UnifyVoid:
        yslot(ins.a, "void count");  // same structural bound as env sizes
        break;
      // -- compiled arithmetic ------------------------------------------
      case Op::MathLoad:
        xreg(ins.a, "destination");
        xreg(ins.b, "source");
        break;
      case Op::MathRR:
        math_fn(ins.a);
        xreg(ins.b, "destination");
        xreg(ins.c, "source 1");
        xreg(ins.imm, "source 2");
        break;
      case Op::MathRI:
        math_fn(ins.a);
        xreg(ins.b, "destination");
        xreg(ins.c, "source");
        break;
      case Op::MathCmp:
        cmp_fn(ins.a);
        xreg(ins.b, "source 1");
        xreg(ins.c, "source 2");
        break;
      case Op::Builtin:
        if (ins.a < 0 || ins.a >= static_cast<i32>(BuiltinId::kCount))
          reject("builtin id " + std::to_string(ins.a) + " out of range");
        nargs(ins.b, "builtin");
        break;
      // -- RAP-WAM parallel extensions ----------------------------------
      case Op::CheckGround:
        xreg(ins.a, "checked");
        addr(ins.b, "sequential fallback");
        break;
      case Op::CheckIndep:
        xreg(ins.a, "checked");
        xreg(ins.c, "checked");
        addr(ins.b, "sequential fallback");
        break;
      case Op::PFrame:
        yslot(ins.a, "slot count");
        yslot(ins.b, "frame");
        addr(ins.imm, "pwait");
        break;
      case Op::PGoal:
        yslot(ins.a, "slot");
        proc(ins.b, "goal");
        if (ins.c < 0 || ins.c > static_cast<i32>(kMaxParGoalArity))
          reject("parallel goal arity " + std::to_string(ins.c) +
                 " out of range");
        break;
      case Op::PWait:
        yslot(ins.a, "frame");
        break;
      // -- fused superinstructions (operand packing per instr.h) --------
      case Op::FusePutValueX2:
      case Op::FuseGetVarXPutValueX:
      case Op::FuseGetVarX2:
      case Op::FuseMathLoadPutValueX:
      case Op::FuseNeckCutPutValueX2:
        xreg(ins.a, "op1 source");
        xreg(ins.b, "op1 destination");
        xreg(ins.c, "op2 source");
        xreg(ins.imm, "op2 destination");
        break;
      case Op::FusePutValueXMathLoad:
        xreg(ins.a, "source");
        xreg(ins.b, "destination");
        xreg(ins.c, "math destination");
        xreg(ins.imm, "math source");
        break;
      case Op::FusePutValueXExecute:
        xreg(ins.a, "source");
        xreg(ins.b, "destination");
        proc(ins.c, "tail call");
        break;
      case Op::FuseUnifyVarXGetVarX:
        xreg(ins.a, "unify");
        xreg(ins.c, "destination");
        xreg(ins.imm, "source");
        break;
      case Op::FuseUnifyVarX2:
      case Op::FuseUnifyLocalXUnifyVarX:
        xreg(ins.a, "unify 1");
        xreg(ins.c, "unify 2");
        break;
      case Op::FuseGetListUnifyVarX2:
      case Op::FuseGetVarXGetList:
        xreg(ins.a, "register");
        xreg(ins.b, "register");
        xreg(ins.c, "register");
        break;
      case Op::FuseGetListUnifyVarX:
      case Op::FuseGetListUnifyLocalX:
      case Op::FuseNeckCutPutValueX:
        xreg(ins.a, "register");
        xreg(ins.b, "register");
        break;
      case Op::FuseMathLoadMathCmp:
        xreg(ins.a, "math destination");
        xreg(ins.b, "math source");
        cmp_fn(ins.c);
        xreg((ins.imm >> 16) & 0xFFFF, "compare source 1");
        xreg(ins.imm & 0xFFFF, "compare source 2");
        break;
      case Op::FuseGetStructUnifyVarX:
        atom(ins.a, "functor");
        arity(ins.c, "functor");
        xreg(ins.b, "argument");
        xreg(ins.imm, "unify");
        break;
      case Op::FusePutValueX3:
        xreg(ins.a, "op1 source");
        xreg(ins.b, "op1 destination");
        xreg(ins.c, "op2 source");
        xreg(ins.imm & 0xFFFF, "op2 destination");
        xreg((ins.imm >> 16) & 0xFFFF, "op3 source");
        xreg((ins.imm >> 32) & 0xFFFF, "op3 destination");
        break;
      case Op::FuseUnifyVarXPutValueX:
        xreg(ins.a, "unify");
        xreg(ins.c, "source");
        xreg(ins.imm, "destination");
        break;
      case Op::FusePutUnsafeY2:
        yslot(ins.a, "permanent 1");
        xreg(ins.b, "argument 1");
        yslot(ins.c, "permanent 2");
        xreg(ins.imm, "argument 2");
        break;
      case Op::FuseMathRIGetVarX:
        math_fn(ins.a);
        xreg(ins.b, "destination");
        xreg(ins.c, "source");
        xreg(ins.imm & 0xFFFF, "copy destination");
        break;
      case Op::FuseMathLoadMathRR:
        xreg(ins.a, "load destination");
        xreg(ins.b, "load source");
        math_fn(ins.c);
        xreg(ins.imm & 0xFFFF, "math destination");
        xreg((ins.imm >> 16) & 0xFFFF, "math source 1");
        xreg((ins.imm >> 32) & 0xFFFF, "math source 2");
        break;
      case Op::FuseMathRRGetVarX:
        math_fn(ins.a);
        xreg(ins.b, "destination");
        xreg(ins.c, "source 1");
        xreg(ins.imm & 0xFFFF, "source 2");
        xreg((ins.imm >> 16) & 0xFFFF, "copy destination");
        break;
      case Op::FuseCmpGuard:
        xreg(ins.a, "guard source 1");
        xreg(ins.b, "guard temp 1");
        xreg(ins.c, "guard source 2");
        xreg(ins.imm & 0xFFFF, "guard temp 2");
        cmp_fn((ins.imm >> 16) & 0xFF);
        break;
      case Op::FusePutValueX2Execute:
        xreg(ins.a, "op1 source");
        xreg(ins.b, "op1 destination");
        xreg(ins.c, "op2 source");
        xreg(ins.imm & 0xFFFF, "op2 destination");
        proc(ins.imm >> 32, "tail call");
        break;
      case Op::FuseGetVarXGetListUnifyLocalX:
        xreg(ins.a, "destination");
        xreg(ins.b, "source");
        xreg(ins.c, "list argument");
        xreg(ins.imm, "unify");
        break;
      case Op::kOpCount:
        reject("sentinel opcode in code stream");
    }
  }

  const CodeStore& code_;
  const i32 size_;
  const i32 procs_;
  const i32 tables_;
  const i64 atoms_;
  i32 addr_ = -1;
};

}  // namespace

void verify_code(const CodeStore& code) { Verifier(code).run(); }

}  // namespace rapwam
