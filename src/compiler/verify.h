// Bytecode verifier: a static pass over a compiled (and possibly
// fused) CodeStore that proves every instruction the dispatch cores
// could fetch is safe to execute blindly — all branch / switch /
// try-retry-trust targets land inside the code array, every operand
// used as an X register, Y slot, proc index, switch-table id, atom id
// or enum discriminant is within bounds, and fused superinstructions
// (compiler/fuse.cpp) decode to legal windows including the register
// indices packed into `imm`.
//
// Runs after compile_program (post-fuse, so verified addresses are
// final) and over any CodeStore a test forges by hand. Rejection is a
// structured rapwam::Error whose message pins the offending address
// and rule ("verify: @12 Jump: target 999 out of range [0,34)"), so a
// corrupted or malicious program fails loudly before the first
// instruction executes instead of as UB inside the computed-goto loop.
#pragma once

#include "compiler/code.h"

namespace rapwam {

/// Number of X registers a Worker owns (std::array<u64, 256> x).
/// Every operand the engine uses to index that array must be below it.
inline constexpr i32 kVerifyMaxXRegs = 256;

/// Sanity cap on Y-slot indices / environment sizes / unify_void
/// counts / parcall slot counts. Environments are sized dynamically,
/// so the verifier can only enforce a structural bound; 2^16 is far
/// above anything the compiler emits and far below anything that
/// could alias another stack area.
inline constexpr i32 kVerifyMaxYSlots = 1 << 16;

/// Verifies `code`; throws rapwam::Error ("verify: ...") on the first
/// violation. A CodeStore that passes cannot make either dispatch core
/// index out of bounds through operands alone.
void verify_code(const CodeStore& code);

}  // namespace rapwam
