// Integer arithmetic evaluation for is/2 and the comparison builtins.
// 56-bit signed integers; expressions are heap terms built from
// +, -, *, //, /, mod, rem, min, max, abs, <<, >>, /\, \/ and unary -.
#include "engine/machine.h"

namespace rapwam {

std::optional<i64> Machine::eval_arith(Worker& w, u64 cell) {
  u64 d = deref(w, cell);
  switch (cell_tag(d)) {
    case Tag::Int:
      return int_val(d);
    case Tag::Ref:
      fail("arithmetic: expression is not sufficiently instantiated");
    case Tag::Con:
      return std::nullopt;  // atoms are not arithmetic
    case Tag::Str: {
      u64 p = cell_val(d);
      u64 f = rd(w, p, ObjClass::HeapTerm);
      const std::string& name = prog_.atoms().name(fun_name(f));
      u32 n = fun_arity(f);
      if (n == 1) {
        auto a = eval_arith(w, rd(w, p + 1, ObjClass::HeapTerm));
        if (!a) return std::nullopt;
        if (name == "-") return -*a;
        if (name == "+") return *a;
        if (name == "abs") return *a < 0 ? -*a : *a;
        return std::nullopt;
      }
      if (n == 2) {
        auto a = eval_arith(w, rd(w, p + 1, ObjClass::HeapTerm));
        auto b = eval_arith(w, rd(w, p + 2, ObjClass::HeapTerm));
        if (!a || !b) return std::nullopt;
        if (name == "+") return *a + *b;
        if (name == "-") return *a - *b;
        if (name == "*") return *a * *b;
        if (name == "//" || name == "/") {
          if (*b == 0) fail("arithmetic: division by zero");
          return *a / *b;
        }
        if (name == "mod") {
          if (*b == 0) fail("arithmetic: division by zero");
          i64 m = *a % *b;
          if (m != 0 && ((m < 0) != (*b < 0))) m += *b;  // ISO mod sign
          return m;
        }
        if (name == "rem") {
          if (*b == 0) fail("arithmetic: division by zero");
          return *a % *b;
        }
        if (name == "min") return *a < *b ? *a : *b;
        if (name == "max") return *a > *b ? *a : *b;
        if (name == "<<") return *a << *b;
        if (name == ">>") return *a >> *b;
        if (name == "/\\") return *a & *b;
        if (name == "\\/") return *a | *b;
        return std::nullopt;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

i64 Machine::math_apply(MathFn fn, i64 a, i64 b) {
  switch (fn) {
    case MathFn::Add: return a + b;
    case MathFn::Sub: return a - b;
    case MathFn::Mul: return a * b;
    case MathFn::Div:
      if (b == 0) fail("arithmetic: division by zero");
      return a / b;
    case MathFn::Mod: {
      if (b == 0) fail("arithmetic: division by zero");
      i64 m = a % b;
      if (m != 0 && ((m < 0) != (b < 0))) m += b;  // ISO mod sign
      return m;
    }
    case MathFn::Rem:
      if (b == 0) fail("arithmetic: division by zero");
      return a % b;
    case MathFn::Min: return a < b ? a : b;
    case MathFn::Max: return a > b ? a : b;
    case MathFn::And: return a & b;
    case MathFn::Or: return a | b;
    case MathFn::Shl: return a << b;
    case MathFn::Shr: return a >> b;
    case MathFn::Neg: return -a;
    case MathFn::Abs: return a < 0 ? -a : a;
  }
  RW_CHECK(false, "bad math fn");
  return 0;
}

}  // namespace rapwam
