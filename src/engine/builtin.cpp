// Inline predicates. Arguments arrive in A registers (X[1..arity]).
// Call1 transfers control like a WAM call instruction.
#include "engine/machine.h"

#include <unordered_set>

namespace rapwam {

using namespace frames;

bool Machine::ground_cell(Worker& w, u64 cell) {
  std::vector<u64> stack{cell};
  while (!stack.empty()) {
    u64 c = deref(w, stack.back());
    stack.pop_back();
    switch (cell_tag(c)) {
      case Tag::Ref:
        return false;
      case Tag::Lis: {
        u64 p = cell_val(c);
        stack.push_back(rd(w, p, ObjClass::HeapTerm));
        stack.push_back(rd(w, p + 1, ObjClass::HeapTerm));
        break;
      }
      case Tag::Str: {
        u64 p = cell_val(c);
        u64 f = rd(w, p, ObjClass::HeapTerm);
        for (u32 i = 1; i <= fun_arity(f); ++i)
          stack.push_back(rd(w, p + i, ObjClass::HeapTerm));
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool Machine::indep_cells(Worker& w, u64 a, u64 b) {
  // indep(A, B): A and B share no unbound variable.
  std::unordered_set<u64> va;
  std::vector<u64> stack{a};
  while (!stack.empty()) {
    u64 c = deref(w, stack.back());
    stack.pop_back();
    switch (cell_tag(c)) {
      case Tag::Ref:
        va.insert(cell_val(c));
        break;
      case Tag::Lis: {
        u64 p = cell_val(c);
        stack.push_back(rd(w, p, ObjClass::HeapTerm));
        stack.push_back(rd(w, p + 1, ObjClass::HeapTerm));
        break;
      }
      case Tag::Str: {
        u64 p = cell_val(c);
        u64 f = rd(w, p, ObjClass::HeapTerm);
        for (u32 i = 1; i <= fun_arity(f); ++i)
          stack.push_back(rd(w, p + i, ObjClass::HeapTerm));
        break;
      }
      default:
        break;
    }
  }
  if (va.empty()) return true;
  stack.push_back(b);
  while (!stack.empty()) {
    u64 c = deref(w, stack.back());
    stack.pop_back();
    switch (cell_tag(c)) {
      case Tag::Ref:
        if (va.count(cell_val(c))) return false;
        break;
      case Tag::Lis: {
        u64 p = cell_val(c);
        stack.push_back(rd(w, p, ObjClass::HeapTerm));
        stack.push_back(rd(w, p + 1, ObjClass::HeapTerm));
        break;
      }
      case Tag::Str: {
        u64 p = cell_val(c);
        u64 f = rd(w, p, ObjClass::HeapTerm);
        for (u32 i = 1; i <= fun_arity(f); ++i)
          stack.push_back(rd(w, p + i, ObjClass::HeapTerm));
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool Machine::struct_eq(Worker& w, u64 a, u64 b) {
  a = deref(w, a);
  b = deref(w, b);
  if (a == b) return true;
  if (cell_tag(a) != cell_tag(b)) return false;
  switch (cell_tag(a)) {
    case Tag::Lis: {
      u64 pa = cell_val(a), pb = cell_val(b);
      return struct_eq(w, rd(w, pa, ObjClass::HeapTerm), rd(w, pb, ObjClass::HeapTerm)) &&
             struct_eq(w, rd(w, pa + 1, ObjClass::HeapTerm),
                       rd(w, pb + 1, ObjClass::HeapTerm));
    }
    case Tag::Str: {
      u64 pa = cell_val(a), pb = cell_val(b);
      u64 fa = rd(w, pa, ObjClass::HeapTerm);
      if (fa != rd(w, pb, ObjClass::HeapTerm)) return false;
      for (u32 i = 1; i <= fun_arity(fa); ++i)
        if (!struct_eq(w, rd(w, pa + i, ObjClass::HeapTerm),
                       rd(w, pb + i, ObjClass::HeapTerm)))
          return false;
      return true;
    }
    default:
      return false;  // unequal Con/Int cells, or distinct unbound vars
  }
}

/// Standard order of terms: Var < Int < Atom < Compound; compounds by
/// arity, then functor name, then args left to right. Returns -1/0/+1.
int Machine::term_compare(Worker& w, u64 a, u64 b) {
  a = deref(w, a);
  b = deref(w, b);
  auto rank = [](Tag t) {
    switch (t) {
      case Tag::Ref: return 0;
      case Tag::Int: return 1;
      case Tag::Con: return 2;
      default: return 3;  // Lis/Str
    }
  };
  int ra = rank(cell_tag(a)), rb = rank(cell_tag(b));
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (cell_tag(a)) {
    case Tag::Ref: {
      u64 va = cell_val(a), vb = cell_val(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case Tag::Int: {
      i64 va = int_val(a), vb = int_val(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case Tag::Con: {
      if (a == b) return 0;
      const std::string& na = prog_.atoms().name(static_cast<u32>(cell_val(a)));
      const std::string& nb = prog_.atoms().name(static_cast<u32>(cell_val(b)));
      return na < nb ? -1 : 1;
    }
    default: {
      // Read functor cells ('.'/2 for list cells).
      u32 fa, aa, fb, ab;
      u64 pa = cell_val(a), pb = cell_val(b);
      if (cell_tag(a) == Tag::Lis) {
        fa = prog_.atoms().intern(".");
        aa = 2;
      } else {
        u64 f = rd(w, pa, ObjClass::HeapTerm);
        fa = fun_name(f);
        aa = fun_arity(f);
        pa += 1;
      }
      if (cell_tag(b) == Tag::Lis) {
        fb = prog_.atoms().intern(".");
        ab = 2;
      } else {
        u64 f = rd(w, pb, ObjClass::HeapTerm);
        fb = fun_name(f);
        ab = fun_arity(f);
        pb += 1;
      }
      if (aa != ab) return aa < ab ? -1 : 1;
      if (fa != fb) {
        const std::string& na = prog_.atoms().name(fa);
        const std::string& nb = prog_.atoms().name(fb);
        return na < nb ? -1 : 1;
      }
      if (cell_tag(a) == Tag::Lis) pa = cell_val(a);
      if (cell_tag(b) == Tag::Lis) pb = cell_val(b);
      for (u32 i = 0; i < aa; ++i) {
        int c = term_compare(w, rd(w, pa + i, ObjClass::HeapTerm),
                             rd(w, pb + i, ObjClass::HeapTerm));
        if (c != 0) return c;
      }
      return 0;
    }
  }
}

/// Copies a term to the top of the heap with fresh variables
/// (copy_term/2). The varmap keeps sharing between occurrences.
u64 Machine::copy_term_cell(Worker& w, u64 cell,
                            std::unordered_map<u64, u64>& varmap) {
  u64 d = deref(w, cell);
  switch (cell_tag(d)) {
    case Tag::Ref: {
      u64 addr = cell_val(d);
      auto it = varmap.find(addr);
      if (it != varmap.end()) return make_ref(it->second);
      u64 na = w.h;
      heap_push(w, make_ref(na));
      varmap.emplace(addr, na);
      return make_ref(na);
    }
    case Tag::Con:
    case Tag::Int:
      return d;
    case Tag::Lis: {
      u64 p = cell_val(d);
      u64 hc = copy_term_cell(w, rd(w, p, ObjClass::HeapTerm), varmap);
      u64 tc = copy_term_cell(w, rd(w, p + 1, ObjClass::HeapTerm), varmap);
      u64 na = w.h;
      heap_push(w, hc);
      heap_push(w, tc);
      return make_lis(na);
    }
    case Tag::Str: {
      u64 p = cell_val(d);
      u64 f = rd(w, p, ObjClass::HeapTerm);
      u32 n = fun_arity(f);
      std::vector<u64> args;
      args.reserve(n);
      for (u32 i = 1; i <= n; ++i)
        args.push_back(copy_term_cell(w, rd(w, p + i, ObjClass::HeapTerm), varmap));
      u64 na = w.h;
      heap_push(w, f);
      for (u64 c : args) heap_push(w, c);
      return make_str(na);
    }
    default:
      RW_CHECK(false, "copy of raw cell");
      return 0;
  }
}

Machine::BResult Machine::exec_builtin(Worker& w, BuiltinId id, int arity) {
  (void)arity;
  auto ok = [](bool b) { return b ? BResult::True : BResult::False; };
  switch (id) {
    case BuiltinId::Unify:
      return ok(unify(w, w.x[1], w.x[2]));
    case BuiltinId::Is: {
      auto v = eval_arith(w, w.x[2]);
      if (!v) return BResult::False;
      return ok(unify(w, w.x[1], make_int(*v)));
    }
    case BuiltinId::LessThan:
    case BuiltinId::GreaterThan:
    case BuiltinId::LessEq:
    case BuiltinId::GreaterEq:
    case BuiltinId::ArithEq:
    case BuiltinId::ArithNeq: {
      auto a = eval_arith(w, w.x[1]);
      auto b = eval_arith(w, w.x[2]);
      if (!a || !b) return BResult::False;
      switch (id) {
        case BuiltinId::LessThan: return ok(*a < *b);
        case BuiltinId::GreaterThan: return ok(*a > *b);
        case BuiltinId::LessEq: return ok(*a <= *b);
        case BuiltinId::GreaterEq: return ok(*a >= *b);
        case BuiltinId::ArithEq: return ok(*a == *b);
        default: return ok(*a != *b);
      }
    }
    case BuiltinId::StructEq:
      return ok(struct_eq(w, w.x[1], w.x[2]));
    case BuiltinId::StructNeq:
      return ok(!struct_eq(w, w.x[1], w.x[2]));
    case BuiltinId::Var:
      return ok(cell_tag(deref(w, w.x[1])) == Tag::Ref);
    case BuiltinId::NonVar:
      return ok(cell_tag(deref(w, w.x[1])) != Tag::Ref);
    case BuiltinId::Atom:
      return ok(cell_tag(deref(w, w.x[1])) == Tag::Con);
    case BuiltinId::Integer:
      return ok(cell_tag(deref(w, w.x[1])) == Tag::Int);
    case BuiltinId::Atomic: {
      Tag t = cell_tag(deref(w, w.x[1]));
      return ok(t == Tag::Con || t == Tag::Int);
    }
    case BuiltinId::Compound: {
      Tag t = cell_tag(deref(w, w.x[1]));
      return ok(t == Tag::Str || t == Tag::Lis);
    }
    case BuiltinId::Ground:
      return ok(ground_cell(w, w.x[1]));
    case BuiltinId::Indep:
      return ok(indep_cells(w, w.x[1], w.x[2]));
    case BuiltinId::True:
      return BResult::True;
    case BuiltinId::Fail:
      return BResult::False;
    case BuiltinId::Write:
      out_ << stringify(deref(w, w.x[1]));
      return BResult::True;
    case BuiltinId::Nl:
      out_ << "\n";
      return BResult::True;
    case BuiltinId::Functor: {
      u64 t = deref(w, w.x[1]);
      switch (cell_tag(t)) {
        case Tag::Con:
          return ok(unify(w, w.x[2], t) && unify(w, w.x[3], make_int(0)));
        case Tag::Int:
          return ok(unify(w, w.x[2], t) && unify(w, w.x[3], make_int(0)));
        case Tag::Lis:
          return ok(unify(w, w.x[2], make_con(prog_.atoms().intern("."))) &&
                    unify(w, w.x[3], make_int(2)));
        case Tag::Str: {
          u64 f = rd(w, cell_val(t), ObjClass::HeapTerm);
          return ok(unify(w, w.x[2], make_con(fun_name(f))) &&
                    unify(w, w.x[3], make_int(fun_arity(f))));
        }
        case Tag::Ref: {
          // Construction mode: functor(X, Name, Arity).
          u64 name = deref(w, w.x[2]);
          u64 ar = deref(w, w.x[3]);
          if (cell_tag(ar) != Tag::Int) return BResult::False;
          i64 n = int_val(ar);
          if (n == 0) {
            if (cell_tag(name) == Tag::Con || cell_tag(name) == Tag::Int)
              return ok(unify(w, t, name));
            return BResult::False;
          }
          if (cell_tag(name) != Tag::Con || n < 0 || n > 0xFFFF)
            return BResult::False;
          u64 addr = heap_push(w, make_fun(static_cast<u32>(cell_val(name)),
                                           static_cast<u32>(n)));
          for (i64 i = 0; i < n; ++i) {
            u64 va = w.h;
            heap_push(w, make_ref(va));
          }
          return ok(unify(w, t, make_str(addr)));
        }
        default:
          return BResult::False;
      }
    }
    case BuiltinId::Arg: {
      u64 n = deref(w, w.x[1]);
      u64 t = deref(w, w.x[2]);
      if (cell_tag(n) != Tag::Int) return BResult::False;
      i64 i = int_val(n);
      if (cell_tag(t) == Tag::Lis) {
        if (i < 1 || i > 2) return BResult::False;
        return ok(unify(w, w.x[3],
                        rd(w, cell_val(t) + static_cast<u64>(i) - 1, ObjClass::HeapTerm)));
      }
      if (cell_tag(t) != Tag::Str) return BResult::False;
      u64 p = cell_val(t);
      u64 f = rd(w, p, ObjClass::HeapTerm);
      if (i < 1 || i > fun_arity(f)) return BResult::False;
      return ok(unify(w, w.x[3], rd(w, p + static_cast<u64>(i), ObjClass::HeapTerm)));
    }
    case BuiltinId::Call1: {
      u64 g = deref(w, w.x[1]);
      PredId pred;
      if (cell_tag(g) == Tag::Con) {
        pred = PredId{static_cast<u32>(cell_val(g)), 0};
      } else if (cell_tag(g) == Tag::Str) {
        u64 p = cell_val(g);
        u64 f = rd(w, p, ObjClass::HeapTerm);
        pred = PredId{fun_name(f), fun_arity(f)};
        for (u32 i = 1; i <= pred.arity; ++i)
          w.x[i] = rd(w, p + i, ObjClass::HeapTerm);
      } else if (cell_tag(g) == Tag::Lis) {
        return BResult::False;
      } else {
        fail("call/1: goal is not callable");
      }
      // Inline predicates may be meta-called; on success return to the
      // continuation (the stub is the whole body of call/1).
      BuiltinId bid;
      if (lookup_builtin(prog_.atoms().name(pred.name), pred.arity, bid)) {
        BResult r = exec_builtin(w, bid, static_cast<int>(pred.arity));
        if (r == BResult::True) {
          w.p = w.cp;
          return BResult::Transfer;
        }
        return r;
      }
      // User predicate: tail-transfer, keeping CP (the stub was entered
      // via a normal call/execute, so CP already holds the caller's
      // continuation).
      i32 pi = code_->find_proc(pred);
      if (pi < 0 || code_->proc(pi).entry < 0) return BResult::False;
      w.b0 = w.b;
      w.p = code_->proc(pi).entry;
      return BResult::Transfer;
    }
    case BuiltinId::TermLt:
      return ok(term_compare(w, w.x[1], w.x[2]) < 0);
    case BuiltinId::TermLe:
      return ok(term_compare(w, w.x[1], w.x[2]) <= 0);
    case BuiltinId::TermGt:
      return ok(term_compare(w, w.x[1], w.x[2]) > 0);
    case BuiltinId::TermGe:
      return ok(term_compare(w, w.x[1], w.x[2]) >= 0);
    case BuiltinId::Compare3: {
      int c = term_compare(w, w.x[2], w.x[3]);
      u32 atom = prog_.atoms().intern(c < 0 ? "<" : (c > 0 ? ">" : "="));
      return ok(unify(w, w.x[1], make_con(atom)));
    }
    case BuiltinId::Univ: {
      u64 t = deref(w, w.x[1]);
      if (cell_tag(t) != Tag::Ref) {
        // Decompose: T =.. [Name|Args].
        std::vector<u64> items;
        switch (cell_tag(t)) {
          case Tag::Con:
          case Tag::Int:
            items.push_back(t);
            break;
          case Tag::Lis: {
            items.push_back(make_con(prog_.atoms().intern(".")));
            items.push_back(rd(w, cell_val(t), ObjClass::HeapTerm));
            items.push_back(rd(w, cell_val(t) + 1, ObjClass::HeapTerm));
            break;
          }
          case Tag::Str: {
            u64 p = cell_val(t);
            u64 f = rd(w, p, ObjClass::HeapTerm);
            items.push_back(make_con(fun_name(f)));
            for (u32 i = 1; i <= fun_arity(f); ++i)
              items.push_back(rd(w, p + i, ObjClass::HeapTerm));
            break;
          }
          default:
            return BResult::False;
        }
        // Build the list back-to-front on the heap.
        u64 tail = make_con(nil_atom_);
        for (auto it = items.rbegin(); it != items.rend(); ++it) {
          u64 na = w.h;
          heap_push(w, *it);
          heap_push(w, tail);
          tail = make_lis(na);
        }
        return ok(unify(w, w.x[2], tail));
      }
      // Construct: T is built from the list [Name|Args].
      std::vector<u64> items;
      u64 cur = deref(w, w.x[2]);
      while (cell_tag(cur) == Tag::Lis) {
        u64 p = cell_val(cur);
        items.push_back(rd(w, p, ObjClass::HeapTerm));
        cur = deref(w, rd(w, p + 1, ObjClass::HeapTerm));
      }
      if (!(cell_tag(cur) == Tag::Con && cell_val(cur) == nil_atom_) || items.empty())
        return BResult::False;
      u64 head = deref(w, items[0]);
      if (items.size() == 1) {
        if (cell_tag(head) == Tag::Con || cell_tag(head) == Tag::Int)
          return ok(unify(w, t, head));
        return BResult::False;
      }
      if (cell_tag(head) != Tag::Con) return BResult::False;
      u32 name = static_cast<u32>(cell_val(head));
      u32 n = static_cast<u32>(items.size() - 1);
      if (name == prog_.atoms().intern(".") && n == 2) {
        u64 na = w.h;
        heap_push(w, items[1]);
        heap_push(w, items[2]);
        return ok(unify(w, t, make_lis(na)));
      }
      u64 na = w.h;
      heap_push(w, make_fun(name, n));
      for (u32 i = 1; i <= n; ++i) heap_push(w, items[i]);
      return ok(unify(w, t, make_str(na)));
    }
    case BuiltinId::CopyTerm: {
      std::unordered_map<u64, u64> varmap;
      u64 c = copy_term_cell(w, w.x[1], varmap);
      return ok(unify(w, w.x[2], c));
    }
    case BuiltinId::kCount:
      break;
  }
  RW_CHECK(false, "bad builtin id");
  return BResult::False;
}

}  // namespace rapwam
