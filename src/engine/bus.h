// Simulated data memory with reference instrumentation.
//
// Every read/write goes through MemBus, which tags the reference with
// the issuing PE, the Table-1 object class and the busy flag, updates
// the aggregate counters and forwards to an optional TraceSink.
// `peek`/`poke` bypass instrumentation (used for post-run inspection
// and pre-run initialisation only — never from instruction execution).
#pragma once

#include <vector>

#include "engine/cell.h"
#include "engine/layout.h"
#include "trace/tracebuf.h"

namespace rapwam {

class MemBus {
 public:
  explicit MemBus(const Layout& layout)
      : layout_(layout), mem_(layout.total_words(), 0) {}

  void set_sink(TraceSink* sink) { sink_ = sink; }

  u64 read(u8 pe, u64 addr, ObjClass cls, bool busy) {
    note(pe, addr, cls, false, busy);
    return mem_[addr];
  }
  void write(u8 pe, u64 addr, u64 cell, ObjClass cls, bool busy) {
    note(pe, addr, cls, true, busy);
    mem_[addr] = cell;
  }

  u64 peek(u64 addr) const { return mem_[addr]; }
  void poke(u64 addr, u64 cell) { mem_[addr] = cell; }

  const RefCounts& counts() const { return counts_; }
  const Layout& layout() const { return layout_; }

 private:
  void note(u8 pe, u64 addr, ObjClass cls, bool write, bool busy) {
    MemRef r;
    r.addr = addr;
    r.pe = pe;
    r.cls = cls;
    r.write = write;
    r.busy = busy;
    counts_.add(r);
    if (sink_) sink_->on_ref(r);
  }

  const Layout& layout_;
  std::vector<u64> mem_;
  RefCounts counts_;
  TraceSink* sink_ = nullptr;
};

}  // namespace rapwam
