// Simulated data memory with reference instrumentation.
//
// Every read/write goes through MemBus, which tags the reference with
// the issuing PE, the Table-1 object class and the busy flag, updates
// the aggregate counters and appends the packed reference to a
// fixed-size chunk; the configured TraceSink is invoked once per full
// chunk (plus a final flush), never per reference — the per-reference
// path is fully inlined with no virtual dispatch (docs/DESIGN.md §8).
// `peek`/`poke` bypass instrumentation (used for post-run inspection
// and pre-run initialisation only — never from instruction execution).
//
// The backing store is calloc'ed, not value-initialised: simulated
// memory is sized for the worst-case workload (hundreds of MB at 8+
// PEs) but small runs touch a fraction of it, and the kernel's
// zero-page mapping makes untouched pages free. Eagerly memsetting the
// whole arena used to dominate small-workload wall time.
#pragma once

#include <cstdlib>
#include <memory>

#include "engine/cell.h"
#include "engine/layout.h"
#include "trace/tracebuf.h"

namespace rapwam {

class MemBus {
 public:
  explicit MemBus(const Layout& layout)
      : layout_(layout),
        mem_(static_cast<u64*>(std::calloc(layout.total_words(), sizeof(u64)))) {
    RW_CHECK(mem_ != nullptr, "simulated memory allocation failed");
  }

  void set_sink(TraceSink* sink) {
    sink_ = sink;
    if (sink_ && !chunk_) chunk_ = std::make_unique<u64[]>(kChunkRefs);
  }

  /// Hands any buffered references to the sink. The machine calls this
  /// when a run ends; callers inspecting the sink mid-run (tests) may
  /// call it too.
  void flush_sink() {
    if (sink_ && chunk_len_ != 0) {
      sink_->on_chunk(chunk_.get(), chunk_len_);
      chunk_len_ = 0;
    }
  }

  u64 read(u8 pe, u64 addr, ObjClass cls, bool busy) {
    note(pe, addr, cls, false, busy);
    return mem_[addr];
  }
  void write(u8 pe, u64 addr, u64 cell, ObjClass cls, bool busy) {
    note(pe, addr, cls, true, busy);
    mem_[addr] = cell;
  }

  u64 peek(u64 addr) const { return mem_[addr]; }
  void poke(u64 addr, u64 cell) { mem_[addr] = cell; }

  const RefCounts& counts() const { return counts_; }
  const Layout& layout() const { return layout_; }

 private:
  void note(u8 pe, u64 addr, ObjClass cls, bool write, bool busy) {
    MemRef r;
    r.addr = addr;
    r.pe = pe;
    r.cls = cls;
    r.write = write;
    r.busy = busy;
    counts_.add(r);
    if (sink_) {
      chunk_[chunk_len_++] = r.pack();
      if (chunk_len_ == kChunkRefs) flush_sink();
    }
  }

  struct FreeDeleter {
    void operator()(u64* p) const { std::free(p); }
  };

  const Layout& layout_;
  std::unique_ptr<u64[], FreeDeleter> mem_;
  RefCounts counts_;
  TraceSink* sink_ = nullptr;
  std::unique_ptr<u64[]> chunk_;
  std::size_t chunk_len_ = 0;
};

}  // namespace rapwam
