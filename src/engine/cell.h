// Tagged-cell encoding for the simulated RAP-WAM data memory.
//
// One cell = 64 bits: 8-bit tag, 56-bit payload. Addresses are word
// indices into the flat simulated memory (all PEs' Stack Sets live in
// one address space, so terms may reference other PEs' heaps — the
// essence of the shared-memory model).
#pragma once

#include "support/common.h"

namespace rapwam {

enum class Tag : u8 {
  Ref = 0,  ///< variable; payload = address (self-reference == unbound)
  Str,      ///< payload = address of functor cell
  Lis,      ///< payload = address of 2-cell [head, tail] pair
  Con,      ///< constant atom; payload = atom id
  Int,      ///< 56-bit signed integer
  Fun,      ///< functor cell; payload = (atom id << 16) | arity
  Raw,      ///< untyped machine word (control fields, counters, locks)
};

constexpr u64 kPayloadMask = (u64(1) << 56) - 1;

constexpr u64 make_cell(Tag t, u64 v) {
  return (u64(static_cast<u8>(t)) << 56) | (v & kPayloadMask);
}
constexpr Tag cell_tag(u64 c) { return static_cast<Tag>(c >> 56); }
constexpr u64 cell_val(u64 c) { return c & kPayloadMask; }

constexpr u64 make_ref(u64 addr) { return make_cell(Tag::Ref, addr); }
constexpr u64 make_str(u64 addr) { return make_cell(Tag::Str, addr); }
constexpr u64 make_lis(u64 addr) { return make_cell(Tag::Lis, addr); }
constexpr u64 make_con(u32 atom) { return make_cell(Tag::Con, atom); }
constexpr u64 make_fun(u32 atom, u32 arity) {
  return make_cell(Tag::Fun, (u64(atom) << 16) | arity);
}
constexpr u64 make_raw(u64 v) { return make_cell(Tag::Raw, v); }

constexpr u64 make_int(i64 v) { return make_cell(Tag::Int, static_cast<u64>(v)); }
constexpr i64 int_val(u64 c) {
  // Sign-extend the 56-bit payload.
  u64 v = cell_val(c);
  return static_cast<i64>(v << 8) >> 8;
}

constexpr u32 fun_name(u64 c) { return static_cast<u32>(cell_val(c) >> 16); }
constexpr u32 fun_arity(u64 c) { return static_cast<u32>(cell_val(c) & 0xFFFF); }

}  // namespace rapwam
