#include "engine/layout.h"

#include "trace/memref.h"

namespace rapwam {

Layout::Layout(unsigned num_pes, const AreaSizes& sizes)
    : num_pes_(num_pes), sizes_(sizes) {
  // The emulator records its references into the packed trace format,
  // whose PE-id field bounds the machine size (trace/memref.h).
  RW_CHECK(num_pes >= 1 && num_pes <= kMaxTracePes,
           "PE count must be in [1,kMaxTracePes]");
  u64 off = 0;
  auto set = [&](Area a, u64 sz) {
    offset_[static_cast<std::size_t>(a)] = off;
    off += sz;
  };
  set(Area::Heap, sizes.heap);
  set(Area::Local, sizes.local);
  set(Area::Control, sizes.control);
  set(Area::Trail, sizes.trail);
  set(Area::Pdl, sizes.pdl);
  set(Area::GoalStack, sizes.goal);
  set(Area::MsgBuffer, sizes.msg);
}

u64 Layout::size_of(Area area) const {
  switch (area) {
    case Area::Heap: return sizes_.heap;
    case Area::Local: return sizes_.local;
    case Area::Control: return sizes_.control;
    case Area::Trail: return sizes_.trail;
    case Area::Pdl: return sizes_.pdl;
    case Area::GoalStack: return sizes_.goal;
    case Area::MsgBuffer: return sizes_.msg;
    case Area::kCount: break;
  }
  RW_CHECK(false, "bad area");
  return 0;
}

Area Layout::area_of(u64 addr) const {
  u64 off = addr % block_size();
  for (std::size_t a = kAreaCount; a-- > 0;) {
    if (off >= offset_[a]) return static_cast<Area>(a);
  }
  return Area::Heap;
}

}  // namespace rapwam
