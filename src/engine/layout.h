// Memory layout: one contiguous block of simulated words per PE
// ("Stack Set"), with the seven RAP-WAM areas at fixed offsets inside
// the block. Word addresses map back to (pe, area) for trace tagging
// and for cross-PE locality checks.
#pragma once

#include <array>

#include "support/common.h"
#include "trace/areas.h"

namespace rapwam {

struct AreaSizes {
  u64 heap = u64(1) << 20;
  u64 local = u64(1) << 17;
  u64 control = u64(1) << 17;
  u64 trail = u64(1) << 16;
  u64 pdl = u64(1) << 12;
  u64 goal = u64(1) << 12;
  u64 msg = u64(1) << 10;

  u64 total() const { return heap + local + control + trail + pdl + goal + msg; }
};

class Layout {
 public:
  Layout(unsigned num_pes, const AreaSizes& sizes);

  unsigned num_pes() const { return num_pes_; }
  const AreaSizes& sizes() const { return sizes_; }
  u64 block_size() const { return sizes_.total(); }
  u64 total_words() const { return block_size() * num_pes_; }

  /// Base address of `area` inside PE `pe`'s block.
  u64 base(unsigned pe, Area area) const {
    return u64(pe) * block_size() + offset_[static_cast<std::size_t>(area)];
  }
  /// One-past-the-end address of the area.
  u64 limit(unsigned pe, Area area) const {
    return base(pe, area) + size_of(area);
  }
  u64 size_of(Area area) const;

  unsigned pe_of(u64 addr) const { return static_cast<unsigned>(addr / block_size()); }
  Area area_of(u64 addr) const;

  bool in_area(u64 addr, unsigned pe, Area area) const {
    return addr >= base(pe, area) && addr < limit(pe, area);
  }

 private:
  unsigned num_pes_;
  AreaSizes sizes_;
  std::array<u64, kAreaCount> offset_{};
};

}  // namespace rapwam
