// Machine top level: query lifecycle, the deterministic round-robin
// cycle loop, and the instruction dispatch.
#include "engine/machine.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rapwam {

using namespace frames;

Machine::Machine(Program& prog, MachineConfig cfg) : prog_(prog), cfg_(std::move(cfg)) {
  // Capped by the trace format's 8-bit PE-id field (trace/memref.h).
  RW_CHECK(cfg_.num_pes >= 1 && cfg_.num_pes <= kMaxTracePes,
           "num_pes must be in [1,kMaxTracePes]");
  nil_atom_ = prog_.atoms().intern("[]");
}

Machine::~Machine() = default;

RunResult Machine::solve(const std::string& goal_text, TraceSink* sink,
                         const CancelToken* cancel) {
  return solve_term(prog_.parse_goal(goal_text), sink, cancel);
}

RunResult Machine::solve_term(const Term* goal, TraceSink* sink,
                              const CancelToken* cancel) {
  cancel_ = cancel;
  // A plain predicate call runs directly: its arguments (which may be
  // large data terms) are built straight onto PE0's heap. Control
  // constructs and builtins are wrapped in a fresh driver predicate
  // over their variables and compiled. Compilation is fast, so each
  // solve recompiles.
  Interner& atoms = prog_.atoms();
  auto is_control = [&](const Term* t) {
    if (t->is_atom())
      return atoms.name(t->name) == "!" || atoms.name(t->name) == "true";
    if (!t->is_struct()) return true;  // vars/ints are not plain calls
    const std::string& n = atoms.name(t->name);
    return (t->arity() == 2 && (n == "," || n == ";" || n == "->" || n == "&" ||
                                n == "|")) ||
           (t->arity() == 1 && n == "\\+");
  };
  BuiltinId bid;
  bool plain = (goal->is_atom() || goal->is_struct()) && !is_control(goal) &&
               !lookup_builtin(atoms.name(goal->name),
                               static_cast<u32>(goal->arity()), bid);

  const Term* entry_goal = goal;
  if (!plain) {
    std::vector<const Term*> vars;
    TermStore::collect_vars(goal, vars);
    TermStore& st = prog_.terms();
    std::string qname = prog_.fresh_name("$q");
    const Term* head = vars.empty()
                           ? st.mk_atom(qname)
                           : st.mk_struct(qname, std::vector<const Term*>(vars));
    prog_.add_clause(head, goal);
    entry_goal = head;
  }
  CompileOptions copts;
  copts.strip_cge = cfg_.strip_cge;
  // Fusion compresses a PE's instruction stream in virtual time, which
  // at >1 PE would reorder the cross-PE interleaving of the global
  // MemRef stream and shift goal-steal/kill timing. At one PE neither
  // is observable, so that is the only regime where the compiler may
  // fuse while keeping traces bit-identical (docs/DESIGN.md §13).
  copts.fuse = cfg_.fuse && cfg_.num_pes == 1;
  code_ = compile_program(prog_, copts);
  halt_addr_ = code_->emit({Op::HaltSuccess, 0, 0, 0, 0});
  return run_query(entry_goal, sink);
}

void Machine::reset(TraceSink* sink) {
  layout_ = std::make_unique<Layout>(cfg_.num_pes, cfg_.sizes);
  bus_ = std::make_unique<MemBus>(*layout_);
  bus_->set_sink(sink);
  workers_.assign(cfg_.num_pes, Worker{});
  for (unsigned pe = 0; pe < cfg_.num_pes; ++pe) {
    Worker& w = workers_[pe];
    w.pe = static_cast<u8>(pe);
    w.heap_base = layout_->base(pe, Area::Heap);
    w.heap_limit = layout_->limit(pe, Area::Heap);
    w.local_base = layout_->base(pe, Area::Local);
    w.local_limit = layout_->limit(pe, Area::Local);
    w.control_base = layout_->base(pe, Area::Control);
    w.control_limit = layout_->limit(pe, Area::Control);
    w.trail_base = layout_->base(pe, Area::Trail);
    w.trail_limit = layout_->limit(pe, Area::Trail);
    w.pdl_base = layout_->base(pe, Area::Pdl);
    w.pdl_limit = layout_->limit(pe, Area::Pdl);
    w.goal_base = layout_->base(pe, Area::GoalStack);
    w.goal_limit = layout_->limit(pe, Area::GoalStack);
    w.msg_base = layout_->base(pe, Area::MsgBuffer);
    w.msg_limit = layout_->limit(pe, Area::MsgBuffer);
    // Resource budgets: lower the cached per-PE limits so every
    // existing overflow check enforces the cap with zero added cost.
    const ResourceLimits& lim = cfg_.limits;
    auto cap = [](u64& limit, u64 base, u64 words) {
      if (words) limit = std::min(limit, base + words);
    };
    cap(w.heap_limit, w.heap_base, lim.max_heap_words);
    cap(w.local_limit, w.local_base, lim.max_local_words);
    cap(w.control_limit, w.control_base, lim.max_control_words);
    cap(w.trail_limit, w.trail_base, lim.max_trail_words);
    w.h = w.heap_base;
    w.hb = w.heap_base;
    w.tr = w.trail_base;
    w.pdl = w.pdl_base;
    w.ctop = w.control_base;
    w.ctop_floor = w.control_base;
    w.b_ltop = w.local_base;
    w.state = Worker::St::Idle;
  }
  stats_ = RunStats{};
  stats_.num_pes = cfg_.num_pes;
  heap_pushes_ = 0;
  constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kOpCount);
  pair_counts_.assign(cfg_.profile_ops ? kNumOps * kNumOps : 0, 0);
  out_.str("");
  done_ = false;
  query_failed_exhausted_ = false;
  query_vars_.clear();
  solutions_.clear();
}

/// Builds the AST term `t` on worker w's heap; returns the cell.
u64 Machine::build_term(Worker& w, const Term* t,
                        std::unordered_map<const Term*, u64>& varmap) {
  switch (t->tag) {
    case TermTag::Var: {
      auto it = varmap.find(t);
      if (it != varmap.end()) return make_ref(it->second);
      u64 addr = w.h;
      heap_push(w, make_ref(addr));
      varmap.emplace(t, addr);
      return make_ref(addr);
    }
    case TermTag::Atom:
      return make_con(t->name);
    case TermTag::Int:
      return make_int(t->ival);
    case TermTag::Struct: {
      std::vector<u64> argcells;
      argcells.reserve(t->arity());
      for (const Term* a : t->args) argcells.push_back(build_term(w, a, varmap));
      if (prog_.atoms().name(t->name) == "." && t->arity() == 2) {
        u64 addr = w.h;
        heap_push(w, argcells[0]);
        heap_push(w, argcells[1]);
        return make_lis(addr);
      }
      u64 addr = w.h;
      heap_push(w, make_fun(t->name, static_cast<u32>(t->arity())));
      for (u64 c : argcells) heap_push(w, c);
      return make_str(addr);
    }
  }
  RW_CHECK(false, "bad term tag");
  return 0;
}

std::string Machine::stringify(u64 cell, int depth) const {
  if (depth > 200) return "...";
  // Untraced dereference (post-run inspection).
  while (cell_tag(cell) == Tag::Ref) {
    u64 next = bus_->peek(cell_val(cell));
    if (next == cell) break;
    cell = next;
  }
  switch (cell_tag(cell)) {
    case Tag::Ref:
      return "_G" + std::to_string(cell_val(cell));
    case Tag::Con:
      return prog_.atoms().name(static_cast<u32>(cell_val(cell)));
    case Tag::Int:
      return std::to_string(int_val(cell));
    case Tag::Lis: {
      std::string out = "[";
      u64 cur = cell;
      bool first = true;
      while (cell_tag(cur) == Tag::Lis) {
        if (!first) out += ",";
        out += stringify(bus_->peek(cell_val(cur)), depth + 1);
        first = false;
        u64 tail = bus_->peek(cell_val(cur) + 1);
        while (cell_tag(tail) == Tag::Ref) {
          u64 next = bus_->peek(cell_val(tail));
          if (next == tail) break;
          tail = next;
        }
        cur = tail;
      }
      if (!(cell_tag(cur) == Tag::Con &&
            prog_.atoms().name(static_cast<u32>(cell_val(cur))) == "[]")) {
        out += "|" + stringify(cur, depth + 1);
      }
      return out + "]";
    }
    case Tag::Str: {
      u64 p = cell_val(cell);
      u64 f = bus_->peek(p);
      std::string out = prog_.atoms().name(fun_name(f)) + "(";
      for (u32 i = 1; i <= fun_arity(f); ++i) {
        if (i > 1) out += ",";
        out += stringify(bus_->peek(p + i), depth + 1);
      }
      return out + ")";
    }
    default:
      return "?raw";
  }
}

RunResult Machine::run_query(const Term* goal, TraceSink* sink) {
  reset(sink);
  Worker& w0 = workers_[0];
  w0.state = Worker::St::Running;  // build refs count as busy work

  // Build the argument terms on PE0's heap and load the A registers.
  std::unordered_map<const Term*, u64> varmap;
  std::vector<const Term*> vars;
  TermStore::collect_vars(goal, vars);
  for (std::size_t i = 0; i < goal->arity(); ++i)
    w0.x[i + 1] = build_term(w0, goal->args[i], varmap);
  for (const Term* v : vars) {
    const std::string& n = prog_.atoms().name(v->name);
    if (n != "_") query_vars_.emplace_back(n, varmap.at(v));
  }

  PredId pred{goal->name, static_cast<u32>(goal->arity())};
  i32 pi = code_->find_proc(pred);
  if (pi < 0 || code_->proc(pi).entry < 0)
    fail("undefined predicate in query: " + prog_.atoms().name(pred.name) + "/" +
         std::to_string(pred.arity));
  w0.p = code_->proc(pi).entry;
  w0.cp = halt_addr_;
  w0.b0 = 0;
  ++stats_.calls;  // the top-level call itself is one inference

  while (!done_) {
    ++stats_.cycles;
    if (stats_.cycles > cfg_.max_cycles)
      fail("cycle watchdog exceeded (" + std::to_string(cfg_.max_cycles) + ")");
    // Governance checkpoints. With no token, budgets, or faults these
    // are three always-false predictable branches per cycle, and no
    // stat or trace output changes — the bit-identity tests pin that.
    if (cancel_ && (stats_.cycles & 1023) == 0) [[unlikely]]
      cancel_->checkpoint();
    if (cfg_.limits.max_steps &&
        stats_.instructions >= cfg_.limits.max_steps) [[unlikely]]
      throw ResourceExhaustedError(
          "steps", "resource_exhausted: step budget tripped after " +
                       std::to_string(stats_.instructions) +
                       " instructions (max_steps=" +
                       std::to_string(cfg_.limits.max_steps) + ")");
    if (cfg_.faults.stall_every_cycles &&
        stats_.cycles % cfg_.faults.stall_every_cycles == 0) [[unlikely]]
      std::this_thread::sleep_for(
          std::chrono::milliseconds(cfg_.faults.stall_ms));
    for (Worker& w : workers_) {
      step(w);
      if (done_) break;
    }
  }

  bus_->flush_sink();  // hand the partial trailing chunk to the sink

  RunResult res;
  res.solutions = solutions_;
  res.success = !solutions_.empty();
  res.stats = stats_;
  res.stats.refs = bus_->counts();
  res.stats.solutions = solutions_.size();
  res.output = out_.str();
  for (const Worker& w : workers_) record_high_water(w);
  res.stats.high_water = stats_.high_water;
  return res;
}

void Machine::record_high_water(const Worker& w) {
  auto upd = [&](Area a, u64 used) {
    auto& hw = stats_.high_water[static_cast<std::size_t>(a)];
    hw = std::max(hw, used);
  };
  upd(Area::Heap, w.hw_heap);
  upd(Area::Local, w.hw_local);
  upd(Area::Control, w.hw_control);
  upd(Area::Trail, w.hw_trail);
}

i32 Machine::resolved_entry(const Proc& pr) const {
  // link_check() normally rejects unresolved predicates at compile
  // time; this is the engine-side backstop for code stores assembled
  // without it. A structured error naming the predicate — never a jump
  // through entry == -1.
  if (pr.entry < 0) [[unlikely]]
    fail("call to undefined predicate: " + prog_.atoms().name(pr.pred.name) +
         "/" + std::to_string(pr.pred.arity));
  return pr.entry;
}

void Machine::step(Worker& w) {
  // Running is the overwhelmingly common state: check it first instead
  // of round-tripping through the state jump table.
  if (w.state == Worker::St::Running) [[likely]] {
    exec(w);
    return;
  }
  switch (w.state) {
    case Worker::St::Halted:
    case Worker::St::Running:  // handled above
      return;
    case Worker::St::Waiting:
      ++stats_.wait_polls;
      exec_pwait(w);
      return;
    case Worker::St::Idle:
      try_steal(w);
      return;
  }
}

// --- instruction dispatch -------------------------------------------------
//
// On GNU-compatible compilers (GCC, Clang) the interpreter core uses
// computed-goto threaded dispatch: a per-opcode label table indexed by
// the Op value, giving every opcode its own indirect-branch target
// (the RW_CHECK guard deliberately keeps the switch's bounds check —
// a corrupt opcode must fail loudly, not jump wild). Elsewhere (or with
// -DRAPWAM_FORCE_SWITCH_DISPATCH, used to differential-test the two
// cores) it falls back to the plain switch. RW_OP expands to a label
// or a case accordingly; every opcode body ends in `return`, so the
// two forms are statement-for-statement identical.
#if defined(__GNUC__) && !defined(RAPWAM_FORCE_SWITCH_DISPATCH)
#define RAPWAM_THREADED_DISPATCH 1
#define RW_OP(name) lbl_##name
#else
#define RAPWAM_THREADED_DISPATCH 0
#define RW_OP(name) case Op::name
#endif

bool threaded_dispatch_enabled() { return RAPWAM_THREADED_DISPATCH != 0; }

std::vector<Machine::OpPair> Machine::op_pair_profile() const {
  constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kOpCount);
  std::vector<OpPair> out;
  for (std::size_t i = 0; i < pair_counts_.size(); ++i) {
    if (pair_counts_[i] == 0) continue;
    out.push_back({static_cast<Op>(i / kNumOps), static_cast<Op>(i % kNumOps),
                   pair_counts_[i]});
  }
  std::sort(out.begin(), out.end(),
            [](const OpPair& a, const OpPair& b) { return a.count > b.count; });
  return out;
}

void Machine::exec(Worker& w) {
  const Instr ins = code_->at(w.p);
  const i32 here = w.p;
  ++w.p;
  ++stats_.instructions;

  if (!pair_counts_.empty()) [[unlikely]] {
    // Count only contiguous-address successions: exactly the windows a
    // static fusion pass could have rewritten.
    if (here == w.prof_here + 1)
      ++pair_counts_[static_cast<std::size_t>(w.prof_op) *
                         static_cast<std::size_t>(Op::kOpCount) +
                     static_cast<std::size_t>(ins.op)];
    w.prof_here = here;
    w.prof_op = static_cast<u8>(ins.op);
  }

  auto fail_if = [&](bool bad) {
    if (bad) backtrack(w);
  };
  auto env_y = [&](i32 y) { return w.e + kEnvY + static_cast<u64>(y); };
  // Retires one more original instruction inside a fused handler, so
  // RunStats (instructions AND virtual cycles) stay bit-identical to
  // the unfused run. Called exactly when the unfused machine would
  // have started the corresponding constituent instruction — never
  // after the first sub-op backtracked.
  auto fused_step = [&] {
    ++stats_.instructions;
    ++stats_.cycles;
  };
  // In-place MathLoad body for the fused arithmetic ops (dst/src are X
  // register indices). Returns false when the unfused instruction would
  // have backtracked; the caller backtracks. Throws on unbound, exactly
  // as the standalone handler does.
  auto math_load_x = [&](std::size_t d, std::size_t s) -> bool {
    u64 v = deref(w, w.x[s]);
    if (cell_tag(v) == Tag::Int) {
      w.x[d] = v;
      return true;
    }
    if (cell_tag(v) == Tag::Ref)
      fail("arithmetic: expression is not sufficiently instantiated");
    if (cell_tag(v) == Tag::Str) {
      auto r = eval_arith(w, v);
      if (r) {
        w.x[d] = make_int(*r);
        return true;
      }
    }
    return false;
  };
  auto math_cmp_ok = [](CmpFn fn, i64 s1, i64 s2) {
    switch (fn) {
      case CmpFn::Lt: return s1 < s2;
      case CmpFn::Gt: return s1 > s2;
      case CmpFn::Le: return s1 <= s2;
      case CmpFn::Ge: return s1 >= s2;
      case CmpFn::Eq: return s1 == s2;
      default: return s1 != s2;
    }
  };

#if RAPWAM_THREADED_DISPATCH
  // One label per opcode, indexed by the Op value — the entries must
  // mirror enum Op in compiler/instr.h exactly (count pinned below).
  static const void* const kLabels[] = {
      &&lbl_Call, &&lbl_Execute, &&lbl_Proceed, &&lbl_Allocate,
      &&lbl_Deallocate, &&lbl_Jump, &&lbl_HaltSuccess, &&lbl_EndGoal,
      &&lbl_EndLocalGoal, &&lbl_FailAlways, &&lbl_TryMeElse, &&lbl_RetryMeElse,
      &&lbl_TrustMe, &&lbl_Try, &&lbl_Retry, &&lbl_Trust, &&lbl_SwitchOnTerm,
      &&lbl_SwitchOnConst, &&lbl_SwitchOnStruct, &&lbl_GetLevel, &&lbl_Cut,
      &&lbl_NeckCut, &&lbl_GetVariableX, &&lbl_GetVariableY, &&lbl_GetValueX,
      &&lbl_GetValueY, &&lbl_GetConstant, &&lbl_GetInteger, &&lbl_GetNil,
      &&lbl_GetStructure, &&lbl_GetList, &&lbl_PutVariableX, &&lbl_PutVariableY,
      &&lbl_PutValueX, &&lbl_PutValueY, &&lbl_PutUnsafeValue, &&lbl_PutConstant,
      &&lbl_PutInteger, &&lbl_PutNil, &&lbl_PutStructure, &&lbl_PutList,
      &&lbl_UnifyVariableX, &&lbl_UnifyVariableY, &&lbl_UnifyValueX,
      &&lbl_UnifyValueY, &&lbl_UnifyLocalValueX, &&lbl_UnifyLocalValueY,
      &&lbl_UnifyConstant, &&lbl_UnifyInteger, &&lbl_UnifyNil, &&lbl_UnifyVoid,
      &&lbl_MathLoad, &&lbl_MathRR, &&lbl_MathRI, &&lbl_MathCmp, &&lbl_Builtin,
      &&lbl_CheckGround, &&lbl_CheckIndep, &&lbl_PFrame, &&lbl_PGoal,
      &&lbl_PWait, &&lbl_FusePutValueX2, &&lbl_FusePutValueXMathLoad,
      &&lbl_FusePutValueXExecute, &&lbl_FuseUnifyVarXGetVarX,
      &&lbl_FuseUnifyVarX2, &&lbl_FuseGetListUnifyVarX2,
      &&lbl_FuseGetListUnifyVarX, &&lbl_FuseGetListUnifyLocalX,
      &&lbl_FuseGetVarXPutValueX, &&lbl_FuseGetVarX2, &&lbl_FuseGetVarXGetList,
      &&lbl_FuseMathLoadPutValueX, &&lbl_FuseMathLoadMathCmp,
      &&lbl_FuseUnifyLocalXUnifyVarX, &&lbl_FuseGetStructUnifyVarX,
      &&lbl_FusePutValueX3, &&lbl_FuseNeckCutPutValueX,
      &&lbl_FuseUnifyVarXPutValueX, &&lbl_FusePutUnsafeY2,
      &&lbl_FuseMathRIGetVarX, &&lbl_FuseMathLoadMathRR,
      &&lbl_FuseMathRRGetVarX, &&lbl_FuseCmpGuard, &&lbl_FusePutValueX2Execute,
      &&lbl_FuseNeckCutPutValueX2, &&lbl_FuseGetVarXGetListUnifyLocalX};
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                    static_cast<std::size_t>(Op::kOpCount),
                "dispatch table out of sync with enum Op");
  RW_CHECK(static_cast<std::size_t>(ins.op) < static_cast<std::size_t>(Op::kOpCount),
           "bad opcode");
  goto *kLabels[static_cast<std::size_t>(ins.op)];
#else
  switch (ins.op) {
#endif
    RW_OP(Call): {
      const Proc& pr = code_->proc(ins.a);
      w.cp = w.p;
      w.b0 = w.b;
      w.p = resolved_entry(pr);
      ++stats_.calls;
      return;
    }
    RW_OP(Execute): {
      const Proc& pr = code_->proc(ins.a);
      w.b0 = w.b;
      w.p = resolved_entry(pr);
      ++stats_.calls;
      return;
    }
    RW_OP(Proceed):
      w.p = w.cp;
      return;
    RW_OP(Allocate):
      push_env(w, ins.a);
      return;
    RW_OP(Deallocate):
      pop_env(w);
      return;
    RW_OP(Jump):
      w.p = ins.a;
      return;
    RW_OP(HaltSuccess): {
      Solution sol;
      for (auto& [name, addr] : query_vars_)
        sol.bindings.emplace_back(name, stringify(bus_->peek(addr)));
      solutions_.push_back(std::move(sol));
      if (solutions_.size() >= cfg_.max_solutions) {
        done_ = true;
        w.state = Worker::St::Halted;
      } else {
        backtrack(w);  // search for the next solution
      }
      return;
    }
    RW_OP(EndGoal):
      end_goal(w);
      return;
    RW_OP(EndLocalGoal):
      end_local_goal(w);
      return;
    RW_OP(FailAlways):
      backtrack(w);
      return;
    RW_OP(TryMeElse):
      push_choice(w, ins.b, ins.a);
      return;
    RW_OP(RetryMeElse):
      wr(w, w.b + kCpBP, make_raw(static_cast<u64>(ins.a)), ObjClass::ChoicePoint);
      return;
    RW_OP(TrustMe):
      pop_choice(w);
      return;
    RW_OP(Try):
      push_choice(w, ins.b, w.p);  // alternative: the following retry/trust
      w.p = ins.a;
      return;
    RW_OP(Retry):
      wr(w, w.b + kCpBP, make_raw(static_cast<u64>(w.p)), ObjClass::ChoicePoint);
      w.p = ins.a;
      return;
    RW_OP(Trust):
      pop_choice(w);
      w.p = ins.a;
      return;
    RW_OP(SwitchOnTerm): {
      u64 d = deref(w, w.x[1]);
      i32 target;
      switch (cell_tag(d)) {
        case Tag::Ref: target = ins.a; break;
        case Tag::Con:
        case Tag::Int: target = ins.b; break;
        case Tag::Lis: target = ins.c; break;
        case Tag::Str: target = static_cast<i32>(ins.imm); break;
        default: target = kFailAddr; break;
      }
      if (target == kFailAddr) { backtrack(w); return; }
      w.p = target;
      return;
    }
    RW_OP(SwitchOnConst): {
      u64 d = deref(w, w.x[1]);
      u64 key = cell_tag(d) == Tag::Con
                    ? CodeStore::const_key_atom(static_cast<u32>(cell_val(d)))
                    : CodeStore::const_key_int(int_val(d));
      i32 target = code_->switch_lookup(ins.a, key);
      if (target == kFailAddr) target = ins.b;
      if (target == kFailAddr) { backtrack(w); return; }
      w.p = target;
      return;
    }
    RW_OP(SwitchOnStruct): {
      u64 d = deref(w, w.x[1]);
      u64 f = rd(w, cell_val(d), ObjClass::HeapTerm);
      i32 target = code_->switch_lookup(
          ins.a, CodeStore::struct_key(fun_name(f), fun_arity(f)));
      if (target == kFailAddr) target = ins.b;
      if (target == kFailAddr) { backtrack(w); return; }
      w.p = target;
      return;
    }
    RW_OP(GetLevel):
      wr(w, env_y(ins.a), make_raw(w.b0), ObjClass::EnvPermVar);
      return;
    RW_OP(Cut): {
      u64 v = rd(w, env_y(ins.a), ObjClass::EnvPermVar);
      do_cut(w, cell_val(v));
      return;
    }
    RW_OP(NeckCut):
      do_cut(w, w.b0);
      return;

    RW_OP(GetVariableX):
      w.x[static_cast<std::size_t>(ins.a)] = w.x[static_cast<std::size_t>(ins.b)];
      return;
    RW_OP(GetVariableY):
      wr(w, env_y(ins.a), w.x[static_cast<std::size_t>(ins.b)], ObjClass::EnvPermVar);
      return;
    RW_OP(GetValueX):
      fail_if(!unify(w, w.x[static_cast<std::size_t>(ins.a)],
                     w.x[static_cast<std::size_t>(ins.b)]));
      return;
    RW_OP(GetValueY): {
      u64 v = rd(w, env_y(ins.a), ObjClass::EnvPermVar);
      fail_if(!unify(w, v, w.x[static_cast<std::size_t>(ins.b)]));
      return;
    }
    RW_OP(GetConstant): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) bind(w, d, make_con(static_cast<u32>(ins.a)));
      else fail_if(d != make_con(static_cast<u32>(ins.a)));
      return;
    }
    RW_OP(GetInteger): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) bind(w, d, make_int(ins.imm));
      else fail_if(d != make_int(ins.imm));
      return;
    }
    RW_OP(GetNil): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      u64 nil = make_con(nil_atom_);
      if (cell_tag(d) == Tag::Ref) bind(w, d, nil);
      else fail_if(d != nil);
      return;
    }
    RW_OP(GetStructure): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) {
        u64 addr = w.h;
        heap_push(w, make_fun(static_cast<u32>(ins.a), static_cast<u32>(ins.c)));
        bind(w, d, make_str(addr));
        w.write_mode = true;
      } else if (cell_tag(d) == Tag::Str) {
        u64 f = rd(w, cell_val(d), ObjClass::HeapTerm);
        if (f != make_fun(static_cast<u32>(ins.a), static_cast<u32>(ins.c))) {
          backtrack(w);
          return;
        }
        w.s = cell_val(d) + 1;
        w.write_mode = false;
      } else {
        backtrack(w);
      }
      return;
    }
    RW_OP(GetList): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) {
        bind(w, d, make_lis(w.h));
        w.write_mode = true;
      } else if (cell_tag(d) == Tag::Lis) {
        w.s = cell_val(d);
        w.write_mode = false;
      } else {
        backtrack(w);
      }
      return;
    }

    RW_OP(PutVariableX): {
      u64 addr = w.h;
      heap_push(w, make_ref(addr));
      w.x[static_cast<std::size_t>(ins.a)] = make_ref(addr);
      w.x[static_cast<std::size_t>(ins.b)] = make_ref(addr);
      return;
    }
    RW_OP(PutVariableY): {
      u64 addr = env_y(ins.a);
      wr(w, addr, make_ref(addr), ObjClass::EnvPermVar);
      w.x[static_cast<std::size_t>(ins.b)] = make_ref(addr);
      return;
    }
    RW_OP(PutValueX):
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      return;
    RW_OP(PutValueY):
      w.x[static_cast<std::size_t>(ins.b)] = rd(w, env_y(ins.a), ObjClass::EnvPermVar);
      return;
    RW_OP(PutUnsafeValue): {
      u64 v = deref(w, rd(w, env_y(ins.a), ObjClass::EnvPermVar));
      if (cell_tag(v) == Tag::Ref) {
        u64 addr = cell_val(v);
        u64 ny = cell_val(rd(w, w.e + kEnvNY, ObjClass::EnvControl));
        if (addr >= w.e && addr < w.e + env_size(ny)) {
          // Globalise: the environment is about to be discarded.
          u64 ha = w.h;
          heap_push(w, make_ref(ha));
          bind(w, v, make_ref(ha));
          v = make_ref(ha);
        }
      }
      w.x[static_cast<std::size_t>(ins.b)] = v;
      return;
    }
    RW_OP(PutConstant):
      w.x[static_cast<std::size_t>(ins.b)] = make_con(static_cast<u32>(ins.a));
      return;
    RW_OP(PutInteger):
      w.x[static_cast<std::size_t>(ins.b)] = make_int(ins.imm);
      return;
    RW_OP(PutNil):
      w.x[static_cast<std::size_t>(ins.b)] = make_con(nil_atom_);
      return;
    RW_OP(PutStructure): {
      u64 addr = w.h;
      heap_push(w, make_fun(static_cast<u32>(ins.a), static_cast<u32>(ins.c)));
      w.x[static_cast<std::size_t>(ins.b)] = make_str(addr);
      w.write_mode = true;
      return;
    }
    RW_OP(PutList):
      w.x[static_cast<std::size_t>(ins.b)] = make_lis(w.h);
      w.write_mode = true;
      return;

    RW_OP(UnifyVariableX):
      if (w.write_mode) {
        u64 addr = w.h;
        heap_push(w, make_ref(addr));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(addr);
      } else {
        w.x[static_cast<std::size_t>(ins.a)] = rd(w, w.s++, ObjClass::HeapTerm);
      }
      return;
    RW_OP(UnifyVariableY):
      if (w.write_mode) {
        u64 addr = w.h;
        heap_push(w, make_ref(addr));
        wr(w, env_y(ins.a), make_ref(addr), ObjClass::EnvPermVar);
      } else {
        wr(w, env_y(ins.a), rd(w, w.s++, ObjClass::HeapTerm), ObjClass::EnvPermVar);
      }
      return;
    RW_OP(UnifyValueX):
      if (w.write_mode) heap_push(w, w.x[static_cast<std::size_t>(ins.a)]);
      else fail_if(!unify(w, w.x[static_cast<std::size_t>(ins.a)],
                          rd(w, w.s++, ObjClass::HeapTerm)));
      return;
    RW_OP(UnifyValueY): {
      u64 v = rd(w, env_y(ins.a), ObjClass::EnvPermVar);
      if (w.write_mode) heap_push(w, v);
      else fail_if(!unify(w, v, rd(w, w.s++, ObjClass::HeapTerm)));
      return;
    }
    RW_OP(UnifyLocalValueX): {
      if (!w.write_mode) {
        fail_if(!unify(w, w.x[static_cast<std::size_t>(ins.a)],
                       rd(w, w.s++, ObjClass::HeapTerm)));
        return;
      }
      u64 v = deref(w, w.x[static_cast<std::size_t>(ins.a)]);
      if (cell_tag(v) == Tag::Ref &&
          layout_->area_of(cell_val(v)) != Area::Heap) {
        // Unbound stack variable: globalise before placing in a heap term.
        u64 ha = w.h;
        heap_push(w, make_ref(ha));
        bind(w, v, make_ref(ha));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(ha);
      } else {
        heap_push(w, v);
        w.x[static_cast<std::size_t>(ins.a)] = v;
      }
      return;
    }
    RW_OP(UnifyLocalValueY): {
      u64 raw = rd(w, env_y(ins.a), ObjClass::EnvPermVar);
      if (!w.write_mode) {
        fail_if(!unify(w, raw, rd(w, w.s++, ObjClass::HeapTerm)));
        return;
      }
      u64 v = deref(w, raw);
      if (cell_tag(v) == Tag::Ref &&
          layout_->area_of(cell_val(v)) != Area::Heap) {
        u64 ha = w.h;
        heap_push(w, make_ref(ha));
        bind(w, v, make_ref(ha));
      } else {
        heap_push(w, v);
      }
      return;
    }
    RW_OP(UnifyConstant): {
      u64 c = make_con(static_cast<u32>(ins.a));
      if (w.write_mode) { heap_push(w, c); return; }
      u64 d = deref(w, rd(w, w.s++, ObjClass::HeapTerm));
      if (cell_tag(d) == Tag::Ref) bind(w, d, c);
      else fail_if(d != c);
      return;
    }
    RW_OP(UnifyInteger): {
      u64 c = make_int(ins.imm);
      if (w.write_mode) { heap_push(w, c); return; }
      u64 d = deref(w, rd(w, w.s++, ObjClass::HeapTerm));
      if (cell_tag(d) == Tag::Ref) bind(w, d, c);
      else fail_if(d != c);
      return;
    }
    RW_OP(UnifyNil): {
      u64 c = make_con(nil_atom_);
      if (w.write_mode) { heap_push(w, c); return; }
      u64 d = deref(w, rd(w, w.s++, ObjClass::HeapTerm));
      if (cell_tag(d) == Tag::Ref) bind(w, d, c);
      else fail_if(d != c);
      return;
    }
    RW_OP(UnifyVoid):
      if (w.write_mode) {
        for (i32 i = 0; i < ins.a; ++i) {
          u64 addr = w.h;
          heap_push(w, make_ref(addr));
        }
      } else {
        w.s += static_cast<u64>(ins.a);
      }
      return;

    RW_OP(MathLoad): {
      u64 v = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(v) == Tag::Int) {
        w.x[static_cast<std::size_t>(ins.a)] = v;
        return;
      }
      if (cell_tag(v) == Tag::Ref)
        fail("arithmetic: expression is not sufficiently instantiated");
      if (cell_tag(v) == Tag::Str) {
        // Meta-arithmetic: the variable is bound to an expression term
        // (e.g. E = 1+2, X is E). Evaluate it the interpreted way.
        auto r = eval_arith(w, v);
        if (r) {
          w.x[static_cast<std::size_t>(ins.a)] = make_int(*r);
          return;
        }
      }
      backtrack(w);  // atoms / non-arithmetic compounds are not numbers
      return;
    }
    RW_OP(MathRR): {
      i64 a = int_val(w.x[static_cast<std::size_t>(ins.c)]);
      i64 b = int_val(w.x[static_cast<std::size_t>(ins.imm)]);
      w.x[static_cast<std::size_t>(ins.b)] =
          make_int(math_apply(static_cast<MathFn>(ins.a), a, b));
      return;
    }
    RW_OP(MathRI): {
      i64 a = int_val(w.x[static_cast<std::size_t>(ins.c)]);
      w.x[static_cast<std::size_t>(ins.b)] =
          make_int(math_apply(static_cast<MathFn>(ins.a), a, ins.imm));
      return;
    }
    RW_OP(MathCmp): {
      i64 a = int_val(w.x[static_cast<std::size_t>(ins.b)]);
      i64 b = int_val(w.x[static_cast<std::size_t>(ins.c)]);
      bool ok;
      switch (static_cast<CmpFn>(ins.a)) {
        case CmpFn::Lt: ok = a < b; break;
        case CmpFn::Gt: ok = a > b; break;
        case CmpFn::Le: ok = a <= b; break;
        case CmpFn::Ge: ok = a >= b; break;
        case CmpFn::Eq: ok = a == b; break;
        default: ok = a != b; break;
      }
      if (!ok) backtrack(w);
      return;
    }
    RW_OP(Builtin): {
      BResult r = exec_builtin(w, static_cast<BuiltinId>(ins.a), ins.b);
      if (r == BResult::False) backtrack(w);
      return;
    }

    RW_OP(CheckGround):
      if (!ground_cell(w, w.x[static_cast<std::size_t>(ins.a)])) w.p = ins.b;
      return;
    RW_OP(CheckIndep):
      if (!indep_cells(w, w.x[static_cast<std::size_t>(ins.a)],
                       w.x[static_cast<std::size_t>(ins.c)]))
        w.p = ins.b;
      return;
    RW_OP(PFrame):
      exec_pframe(w, ins.a, ins.b, static_cast<u64>(ins.imm));
      return;
    RW_OP(PGoal):
      exec_pgoal(w, ins.a, ins.b, ins.c);
      return;
    RW_OP(PWait):
      w.p = here;  // pwait re-executes until the parcall completes
      exec_pwait(w);
      return;

    // ----- Fused superinstructions (docs/DESIGN.md §13) ---------------
    // Each body is the literal concatenation of its constituents' bodies
    // above, with operands repacked per the comments in compiler/instr.h.
    // fused_step() sits exactly where the unfused machine would fetch
    // the next constituent, so a backtrack in an earlier sub-op skips
    // it — RunStats stay bit-identical either way. Only single-PE
    // machines compile fused code (see solve_term), so the MemRef
    // stream ordering is the single worker's program order and matches
    // the unfused stream cell for cell.
    RW_OP(FusePutValueX2):
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm)] = w.x[static_cast<std::size_t>(ins.c)];
      return;
    RW_OP(FusePutValueXMathLoad): {
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      u64 v = deref(w, w.x[static_cast<std::size_t>(ins.imm)]);
      if (cell_tag(v) == Tag::Int) {
        w.x[static_cast<std::size_t>(ins.c)] = v;
        return;
      }
      if (cell_tag(v) == Tag::Ref)
        fail("arithmetic: expression is not sufficiently instantiated");
      if (cell_tag(v) == Tag::Str) {
        auto r = eval_arith(w, v);
        if (r) {
          w.x[static_cast<std::size_t>(ins.c)] = make_int(*r);
          return;
        }
      }
      backtrack(w);
      return;
    }
    RW_OP(FusePutValueXExecute): {
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      const Proc& pr = code_->proc(ins.c);
      w.b0 = w.b;
      w.p = resolved_entry(pr);
      ++stats_.calls;
      return;
    }
    RW_OP(FuseUnifyVarXGetVarX): {
      if (w.write_mode) {
        u64 addr = w.h;
        heap_push(w, make_ref(addr));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(addr);
      } else {
        w.x[static_cast<std::size_t>(ins.a)] = rd(w, w.s++, ObjClass::HeapTerm);
      }
      fused_step();
      w.x[static_cast<std::size_t>(ins.c)] = w.x[static_cast<std::size_t>(ins.imm)];
      return;
    }
    RW_OP(FuseUnifyVarX2): {
      if (w.write_mode) {
        u64 a1 = w.h;
        heap_push(w, make_ref(a1));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(a1);
        fused_step();
        u64 a2 = w.h;
        heap_push(w, make_ref(a2));
        w.x[static_cast<std::size_t>(ins.c)] = make_ref(a2);
      } else {
        w.x[static_cast<std::size_t>(ins.a)] = rd(w, w.s++, ObjClass::HeapTerm);
        fused_step();
        w.x[static_cast<std::size_t>(ins.c)] = rd(w, w.s++, ObjClass::HeapTerm);
      }
      return;
    }
    RW_OP(FuseGetListUnifyVarX2): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) {
        bind(w, d, make_lis(w.h));
        w.write_mode = true;
        fused_step();
        u64 a1 = w.h;
        heap_push(w, make_ref(a1));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(a1);
        fused_step();
        u64 a2 = w.h;
        heap_push(w, make_ref(a2));
        w.x[static_cast<std::size_t>(ins.c)] = make_ref(a2);
      } else if (cell_tag(d) == Tag::Lis) {
        w.s = cell_val(d);
        w.write_mode = false;
        fused_step();
        w.x[static_cast<std::size_t>(ins.a)] = rd(w, w.s++, ObjClass::HeapTerm);
        fused_step();
        w.x[static_cast<std::size_t>(ins.c)] = rd(w, w.s++, ObjClass::HeapTerm);
      } else {
        backtrack(w);
      }
      return;
    }
    RW_OP(FuseGetListUnifyVarX): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) {
        bind(w, d, make_lis(w.h));
        w.write_mode = true;
        fused_step();
        u64 a1 = w.h;
        heap_push(w, make_ref(a1));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(a1);
      } else if (cell_tag(d) == Tag::Lis) {
        w.s = cell_val(d);
        w.write_mode = false;
        fused_step();
        w.x[static_cast<std::size_t>(ins.a)] = rd(w, w.s++, ObjClass::HeapTerm);
      } else {
        backtrack(w);
      }
      return;
    }
    RW_OP(FuseGetListUnifyLocalX): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) {
        bind(w, d, make_lis(w.h));
        w.write_mode = true;
        fused_step();
        u64 v = deref(w, w.x[static_cast<std::size_t>(ins.a)]);
        if (cell_tag(v) == Tag::Ref &&
            layout_->area_of(cell_val(v)) != Area::Heap) {
          u64 ha = w.h;
          heap_push(w, make_ref(ha));
          bind(w, v, make_ref(ha));
          w.x[static_cast<std::size_t>(ins.a)] = make_ref(ha);
        } else {
          heap_push(w, v);
          w.x[static_cast<std::size_t>(ins.a)] = v;
        }
      } else if (cell_tag(d) == Tag::Lis) {
        w.s = cell_val(d);
        w.write_mode = false;
        fused_step();
        fail_if(!unify(w, w.x[static_cast<std::size_t>(ins.a)],
                       rd(w, w.s++, ObjClass::HeapTerm)));
      } else {
        backtrack(w);
      }
      return;
    }
    RW_OP(FuseGetVarXPutValueX):
      w.x[static_cast<std::size_t>(ins.a)] = w.x[static_cast<std::size_t>(ins.b)];
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm)] = w.x[static_cast<std::size_t>(ins.c)];
      return;
    RW_OP(FuseGetVarX2):
      w.x[static_cast<std::size_t>(ins.a)] = w.x[static_cast<std::size_t>(ins.b)];
      fused_step();
      w.x[static_cast<std::size_t>(ins.c)] = w.x[static_cast<std::size_t>(ins.imm)];
      return;
    RW_OP(FuseGetVarXGetList): {
      w.x[static_cast<std::size_t>(ins.a)] = w.x[static_cast<std::size_t>(ins.b)];
      fused_step();
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.c)]);
      if (cell_tag(d) == Tag::Ref) {
        bind(w, d, make_lis(w.h));
        w.write_mode = true;
      } else if (cell_tag(d) == Tag::Lis) {
        w.s = cell_val(d);
        w.write_mode = false;
      } else {
        backtrack(w);
      }
      return;
    }
    RW_OP(FuseMathLoadPutValueX): {
      u64 v = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(v) == Tag::Int) {
        w.x[static_cast<std::size_t>(ins.a)] = v;
      } else if (cell_tag(v) == Tag::Ref) {
        fail("arithmetic: expression is not sufficiently instantiated");
      } else {
        bool ok = false;
        if (cell_tag(v) == Tag::Str) {
          auto r = eval_arith(w, v);
          if (r) {
            w.x[static_cast<std::size_t>(ins.a)] = make_int(*r);
            ok = true;
          }
        }
        if (!ok) {
          backtrack(w);
          return;
        }
      }
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm)] = w.x[static_cast<std::size_t>(ins.c)];
      return;
    }
    RW_OP(FuseMathLoadMathCmp): {
      u64 v = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(v) == Tag::Int) {
        w.x[static_cast<std::size_t>(ins.a)] = v;
      } else if (cell_tag(v) == Tag::Ref) {
        fail("arithmetic: expression is not sufficiently instantiated");
      } else {
        bool ok = false;
        if (cell_tag(v) == Tag::Str) {
          auto r = eval_arith(w, v);
          if (r) {
            w.x[static_cast<std::size_t>(ins.a)] = make_int(*r);
            ok = true;
          }
        }
        if (!ok) {
          backtrack(w);
          return;
        }
      }
      fused_step();
      i64 s1 = int_val(w.x[static_cast<std::size_t>((ins.imm >> 16) & 0xFFFF)]);
      i64 s2 = int_val(w.x[static_cast<std::size_t>(ins.imm & 0xFFFF)]);
      bool ok;
      switch (static_cast<CmpFn>(ins.c)) {
        case CmpFn::Lt: ok = s1 < s2; break;
        case CmpFn::Gt: ok = s1 > s2; break;
        case CmpFn::Le: ok = s1 <= s2; break;
        case CmpFn::Ge: ok = s1 >= s2; break;
        case CmpFn::Eq: ok = s1 == s2; break;
        default: ok = s1 != s2; break;
      }
      if (!ok) backtrack(w);
      return;
    }
    RW_OP(FuseUnifyLocalXUnifyVarX): {
      if (!w.write_mode) {
        if (!unify(w, w.x[static_cast<std::size_t>(ins.a)],
                   rd(w, w.s++, ObjClass::HeapTerm))) {
          backtrack(w);
          return;
        }
        fused_step();
        w.x[static_cast<std::size_t>(ins.c)] = rd(w, w.s++, ObjClass::HeapTerm);
        return;
      }
      u64 v = deref(w, w.x[static_cast<std::size_t>(ins.a)]);
      if (cell_tag(v) == Tag::Ref &&
          layout_->area_of(cell_val(v)) != Area::Heap) {
        u64 ha = w.h;
        heap_push(w, make_ref(ha));
        bind(w, v, make_ref(ha));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(ha);
      } else {
        heap_push(w, v);
        w.x[static_cast<std::size_t>(ins.a)] = v;
      }
      fused_step();
      u64 a2 = w.h;
      heap_push(w, make_ref(a2));
      w.x[static_cast<std::size_t>(ins.c)] = make_ref(a2);
      return;
    }
    RW_OP(FuseGetStructUnifyVarX): {
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.b)]);
      if (cell_tag(d) == Tag::Ref) {
        u64 addr = w.h;
        heap_push(w, make_fun(static_cast<u32>(ins.a), static_cast<u32>(ins.c)));
        bind(w, d, make_str(addr));
        w.write_mode = true;
        fused_step();
        u64 a1 = w.h;
        heap_push(w, make_ref(a1));
        w.x[static_cast<std::size_t>(ins.imm)] = make_ref(a1);
      } else if (cell_tag(d) == Tag::Str) {
        u64 f = rd(w, cell_val(d), ObjClass::HeapTerm);
        if (f != make_fun(static_cast<u32>(ins.a), static_cast<u32>(ins.c))) {
          backtrack(w);
          return;
        }
        w.s = cell_val(d) + 1;
        w.write_mode = false;
        fused_step();
        w.x[static_cast<std::size_t>(ins.imm)] = rd(w, w.s++, ObjClass::HeapTerm);
      } else {
        backtrack(w);
      }
      return;
    }
    RW_OP(FusePutValueX3):
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm & 0xFFFF)] =
          w.x[static_cast<std::size_t>(ins.c)];
      fused_step();
      w.x[static_cast<std::size_t>((ins.imm >> 32) & 0xFFFF)] =
          w.x[static_cast<std::size_t>((ins.imm >> 16) & 0xFFFF)];
      return;
    RW_OP(FuseNeckCutPutValueX):
      do_cut(w, w.b0);
      fused_step();
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      return;
    RW_OP(FuseUnifyVarXPutValueX): {
      if (w.write_mode) {
        u64 addr = w.h;
        heap_push(w, make_ref(addr));
        w.x[static_cast<std::size_t>(ins.a)] = make_ref(addr);
      } else {
        w.x[static_cast<std::size_t>(ins.a)] = rd(w, w.s++, ObjClass::HeapTerm);
      }
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm)] = w.x[static_cast<std::size_t>(ins.c)];
      return;
    }
    RW_OP(FusePutUnsafeY2): {
      {
        u64 v = deref(w, rd(w, env_y(ins.a), ObjClass::EnvPermVar));
        if (cell_tag(v) == Tag::Ref) {
          u64 addr = cell_val(v);
          u64 ny = cell_val(rd(w, w.e + kEnvNY, ObjClass::EnvControl));
          if (addr >= w.e && addr < w.e + env_size(ny)) {
            u64 ha = w.h;
            heap_push(w, make_ref(ha));
            bind(w, v, make_ref(ha));
            v = make_ref(ha);
          }
        }
        w.x[static_cast<std::size_t>(ins.b)] = v;
      }
      fused_step();
      {
        u64 v = deref(w, rd(w, env_y(ins.c), ObjClass::EnvPermVar));
        if (cell_tag(v) == Tag::Ref) {
          u64 addr = cell_val(v);
          u64 ny = cell_val(rd(w, w.e + kEnvNY, ObjClass::EnvControl));
          if (addr >= w.e && addr < w.e + env_size(ny)) {
            u64 ha = w.h;
            heap_push(w, make_ref(ha));
            bind(w, v, make_ref(ha));
            v = make_ref(ha);
          }
        }
        w.x[static_cast<std::size_t>(ins.imm)] = v;
      }
      return;
    }
    RW_OP(FuseMathRIGetVarX): {
      i64 s1 = int_val(w.x[static_cast<std::size_t>(ins.c)]);
      w.x[static_cast<std::size_t>(ins.b)] =
          make_int(math_apply(static_cast<MathFn>(ins.a), s1, ins.imm >> 16));
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm & 0xFFFF)] =
          w.x[static_cast<std::size_t>(ins.b)];
      return;
    }
    RW_OP(FuseMathLoadMathRR): {
      if (!math_load_x(static_cast<std::size_t>(ins.a),
                       static_cast<std::size_t>(ins.b))) {
        backtrack(w);
        return;
      }
      fused_step();
      i64 s1 = int_val(w.x[static_cast<std::size_t>((ins.imm >> 16) & 0xFFFF)]);
      i64 s2 = int_val(w.x[static_cast<std::size_t>((ins.imm >> 32) & 0xFFFF)]);
      w.x[static_cast<std::size_t>(ins.imm & 0xFFFF)] =
          make_int(math_apply(static_cast<MathFn>(ins.c), s1, s2));
      return;
    }
    RW_OP(FuseMathRRGetVarX): {
      i64 s1 = int_val(w.x[static_cast<std::size_t>(ins.c)]);
      i64 s2 = int_val(w.x[static_cast<std::size_t>(ins.imm & 0xFFFF)]);
      w.x[static_cast<std::size_t>(ins.b)] =
          make_int(math_apply(static_cast<MathFn>(ins.a), s1, s2));
      fused_step();
      w.x[static_cast<std::size_t>((ins.imm >> 16) & 0xFFFF)] =
          w.x[static_cast<std::size_t>(ins.b)];
      return;
    }
    RW_OP(FuseCmpGuard): {
      const auto t1 = static_cast<std::size_t>(ins.b);
      const auto t2 = static_cast<std::size_t>(ins.imm & 0xFFFF);
      w.x[t1] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      if (!math_load_x(t1, t1)) {
        backtrack(w);
        return;
      }
      fused_step();
      w.x[t2] = w.x[static_cast<std::size_t>(ins.c)];
      fused_step();
      if (!math_load_x(t2, t2)) {
        backtrack(w);
        return;
      }
      fused_step();
      if (!math_cmp_ok(static_cast<CmpFn>((ins.imm >> 16) & 0xFF),
                       int_val(w.x[t1]), int_val(w.x[t2])))
        backtrack(w);
      return;
    }
    RW_OP(FusePutValueX2Execute): {
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm & 0xFFFF)] =
          w.x[static_cast<std::size_t>(ins.c)];
      fused_step();
      const Proc& pr = code_->proc(static_cast<i32>(ins.imm >> 32));
      w.b0 = w.b;
      w.p = resolved_entry(pr);
      ++stats_.calls;
      return;
    }
    RW_OP(FuseNeckCutPutValueX2):
      do_cut(w, w.b0);
      fused_step();
      w.x[static_cast<std::size_t>(ins.b)] = w.x[static_cast<std::size_t>(ins.a)];
      fused_step();
      w.x[static_cast<std::size_t>(ins.imm)] = w.x[static_cast<std::size_t>(ins.c)];
      return;
    RW_OP(FuseGetVarXGetListUnifyLocalX): {
      w.x[static_cast<std::size_t>(ins.a)] = w.x[static_cast<std::size_t>(ins.b)];
      fused_step();
      u64 d = deref(w, w.x[static_cast<std::size_t>(ins.c)]);
      if (cell_tag(d) == Tag::Ref) {
        bind(w, d, make_lis(w.h));
        w.write_mode = true;
        fused_step();
        u64 v = deref(w, w.x[static_cast<std::size_t>(ins.imm)]);
        if (cell_tag(v) == Tag::Ref &&
            layout_->area_of(cell_val(v)) != Area::Heap) {
          u64 ha = w.h;
          heap_push(w, make_ref(ha));
          bind(w, v, make_ref(ha));
          w.x[static_cast<std::size_t>(ins.imm)] = make_ref(ha);
        } else {
          heap_push(w, v);
          w.x[static_cast<std::size_t>(ins.imm)] = v;
        }
      } else if (cell_tag(d) == Tag::Lis) {
        w.s = cell_val(d);
        w.write_mode = false;
        fused_step();
        fail_if(!unify(w, w.x[static_cast<std::size_t>(ins.imm)],
                       rd(w, w.s++, ObjClass::HeapTerm)));
      } else {
        backtrack(w);
      }
      return;
    }
#if !RAPWAM_THREADED_DISPATCH
  }
  RW_CHECK(false, "unhandled opcode");
#endif
}

}  // namespace rapwam
