// The RAP-WAM multi-PE emulator.
//
// A Machine executes compiled parallel-WAM code on N simulated PEs
// ("workers"), each owning a full Stack Set (heap, local and control
// stacks, trail, PDL, goal stack, message buffer) inside one flat
// simulated memory. Execution is deterministic: one instruction per
// running PE per virtual cycle, round-robin. Every data reference is
// tagged per Table 1 of the paper and streamed to the configured sink.
//
// Scheduling is RAP-WAM's on-demand scheme: pgoal pushes goal frames
// onto the parent's goal stack; the parent executes its own goals
// (LIFO) while waiting in pwait; idle PEs steal goals (FIFO) from
// other PEs' goal stacks and run them between Markers on their own
// stacks. Failure of a parallel goal kills its siblings via
// message-buffer kill messages; backtracking past a completed parcall
// cancels and unwinds all its stack sections ("kill-and-fail",
// first-solution parcall semantics — see docs/DESIGN.md §5). Cancellation
// transactions run synchronously inside the simulator but every memory
// touch is attributed to the PE that would perform it.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/compile.h"
#include "engine/bus.h"
#include "engine/stats.h"
#include "prolog/program.h"
#include "support/cancel.h"

namespace rapwam {

/// True when the interpreter core was compiled with computed-goto
/// threaded dispatch (GNU-compatible compilers; falls back to a plain
/// switch elsewhere — see the dispatch macros in machine.cpp). CI
/// asserts this returns true on the GCC/Clang Release builds.
bool threaded_dispatch_enabled();

/// Per-query resource budgets (0 = uncapped). Area caps lower the
/// per-PE area limits cached at reset time, so enforcement adds
/// nothing to the hot path; the step budget is checked once per
/// virtual cycle (overshoot bounded by num_pes instructions).
/// Tripping any budget throws ResourceExhaustedError naming the
/// budget that fired; the machine stays reusable — the next solve
/// resets all per-run state.
struct ResourceLimits {
  u64 max_heap_words = 0;     ///< per-PE heap cap, words
  u64 max_local_words = 0;    ///< per-PE local-stack cap, words
  u64 max_control_words = 0;  ///< per-PE control-stack cap, words
  u64 max_trail_words = 0;    ///< per-PE trail cap, words
  u64 max_steps = 0;          ///< total executed instructions
  bool any() const {
    return max_heap_words || max_local_words || max_control_words ||
           max_trail_words || max_steps;
  }
};

/// Deterministic engine-side fault injection (server fault plans,
/// robustness tests): make the Nth heap allocation fail as if the heap
/// were exhausted, or stall the cycle loop in wall-clock time to
/// simulate a pathologically slow generation (so deadline-cancellation
/// paths can be pinned without a genuinely huge query).
struct EngineFaults {
  u64 fail_heap_growth_n = 0;  ///< 1-based: fail the Nth heap_push
  u64 stall_every_cycles = 0;  ///< sleep stall_ms every K cycles
  u64 stall_ms = 0;
  bool any() const { return fail_heap_growth_n || stall_every_cycles; }
};

struct MachineConfig {
  unsigned num_pes = 1;
  AreaSizes sizes{};
  u64 max_cycles = 2'000'000'000;  ///< watchdog against runaway queries
  unsigned max_solutions = 1;
  ResourceLimits limits{};         ///< resource budgets (0 = uncapped)
  EngineFaults faults{};           ///< engine-side fault injection
  bool strip_cge = false;          ///< compile the sequential-WAM baseline
  /// Superinstruction fusion (docs/DESIGN.md §13). Only single-PE
  /// machines actually compile fused code — at one PE fused execution
  /// is provably bit-identical (same MemRef stream, same RunStats);
  /// multi-PE machines always run unfused so the per-cycle cross-PE
  /// interleaving of the trace stream is untouched.
  bool fuse = true;
  /// Count dynamic contiguous (op, next-op) pairs during execution
  /// (the ranking that the fused opcode set is derived from). Read the
  /// result with op_pair_profile(); dumped by `bench_mlips --profile-ops`.
  bool profile_ops = false;
};

struct Solution {
  /// query variable name -> term text, in first-occurrence order
  std::vector<std::pair<std::string, std::string>> bindings;

  bool operator==(const Solution&) const = default;
};

struct RunResult {
  bool success = false;
  std::vector<Solution> solutions;
  RunStats stats;
  std::string output;  ///< text produced by write/1 and nl/0
};

/// Frame layout constants (word offsets), shared with the tests.
namespace frames {
// Environment.
inline constexpr u64 kEnvCE = 0, kEnvCP = 1, kEnvNY = 2, kEnvY = 3;
inline constexpr u64 env_size(u64 ny) { return kEnvY + ny; }
// Choice point.
inline constexpr u64 kCpNArgs = 0, kCpCE = 1, kCpCP = 2, kCpB = 3, kCpBP = 4,
    kCpTR = 5, kCpH = 6, kCpLTop = 7, kCpPF = 8, kCpB0 = 9, kCpLgf = 10,
    kCpArgs = 11;
inline constexpr u64 cp_size(u64 nargs) { return kCpArgs + nargs; }
// Marker (delimits one parallel goal's stack section).
inline constexpr u64 kMkPF = 0, kMkSlot = 1, kMkSavedB = 2, kMkSavedTR = 3,
    kMkSavedH = 4, kMkSavedE = 5, kMkResumeP = 6, kMkSavedPF = 7, kMkPrev = 8,
    kMkDead = 9, kMkEndTR = 10, kMkEndPF = 11, kMkEndH = 12, kMkEndCtop = 13,
    kMkSavedB0 = 14, kMkSavedLtop = 15, kMkSavedLgf = 16;
inline constexpr u64 kMarkerSize = 17;
// Parcall frame.
// Parcall frame. The pending counter carries the fail flag in a high
// bit so pwait polls read a single word; slots pack state and executor
// PE into one word (the marker address of stolen goals gets a second).
inline constexpr u64 kPfPrev = 0, kPfNSlots = 1, kPfPending = 2, kPfLock = 3,
    kPfCreator = 4, kPfSavedB = 5, kPfSavedE = 6, kPfSavedLgf = 7, kPfWaitP = 8,
    kPfSlots = 9;
inline constexpr u64 kPfFailBit = u64(1) << 50;
inline constexpr u64 kPfRemoteBit = u64(1) << 51;  ///< some goal was stolen
inline constexpr u64 kPfPendingMask = kPfFailBit - 1;
inline constexpr u64 kPfSlotStride = 2;  // [state | pe<<8], marker addr
inline constexpr u64 kSlotInfo = 0, kSlotMarker = 1;
inline constexpr u64 slot_info(u64 state, u64 pe) { return state | (pe << 8); }
inline constexpr u64 slot_state(u64 info) { return info & 0xFF; }
inline constexpr u64 slot_pe(u64 info) { return (info >> 8) & 0xFF; }
inline constexpr u64 pf_size(u64 nslots) { return kPfSlots + kPfSlotStride * nslots; }
enum SlotState : u64 { kPending = 0, kTaken = 1, kDone = 2, kFailed = 3, kCancelled = 4 };
// Local goal frame (parent executing one of its own goals; control
// stack; two packed words).
inline constexpr u64 kLgfPfSlot = 0;   // pf | slot<<44
inline constexpr u64 kLgfResume = 1;   // prev | resumeP<<44
inline constexpr u64 kLgfSize = 2;
inline constexpr u64 lgf_pack(u64 lo, u64 hi) { return lo | (hi << 44); }
inline constexpr u64 lgf_lo(u64 v) { return v & ((u64(1) << 44) - 1); }
inline constexpr u64 lgf_hi(u64 v) { return (v >> 44) & 0xFFF; }
// Goal stack region: [lock][bot][top][frames...]. Frames pack the
// parcall frame address with the slot, and the code entry with the
// arity, so a frame is 2 + arity words.
inline constexpr u64 kGsLock = 0, kGsBot = 1, kGsTop = 2, kGsFrames = 3;
inline constexpr u64 kGoalStride = 14;  // pf|slot, entry|arity, args[12]
inline constexpr u64 kGfPfSlot = 0, kGfEntryArity = 1, kGfArgs = 2;
// Message buffer region: [lock][count][messages...].
inline constexpr u64 kMbLock = 0, kMbCount = 1, kMbMsgs = 2;
inline constexpr u64 kMsgStride = 4;  // type, pf, slot, from
inline constexpr u64 kMsgKill = 1;
}  // namespace frames

class Machine {
 public:
  /// Compiles `prog` (throws on compile errors). The program reference
  /// must outlive the machine.
  Machine(Program& prog, MachineConfig cfg);
  ~Machine();

  /// Runs `goal_text` (e.g. "qsort([3,1,2],R)") and returns solutions
  /// and statistics. An optional sink receives the reference stream.
  /// A non-null `cancel` token is checkpointed inside the cycle loop
  /// (every 1024 cycles, covering call/backtrack/parcall boundaries in
  /// both dispatch cores), so a deadline or explicit cancel interrupts
  /// the run mid-generation with CancelledError; the machine stays
  /// reusable afterwards.
  RunResult solve(const std::string& goal_text, TraceSink* sink = nullptr,
                  const CancelToken* cancel = nullptr);
  RunResult solve_term(const Term* goal, TraceSink* sink = nullptr,
                       const CancelToken* cancel = nullptr);

  const CodeStore& code() const { return *code_; }
  const MachineConfig& config() const { return cfg_; }

  /// One dynamic (op, next-op) pair observation: `second` executed
  /// directly after `first` from the adjacent code address on the same
  /// PE — exactly the windows the fusion pass could have rewritten.
  struct OpPair {
    Op first;
    Op second;
    u64 count;
  };
  /// Pair profile of the last solve, highest count first. Empty unless
  /// MachineConfig::profile_ops was set.
  std::vector<OpPair> op_pair_profile() const;

 private:
  struct Worker {
    enum class St : u8 { Idle, Running, Waiting, Halted };
    St state = St::Idle;
    u8 pe = 0;
    std::array<u64, 256> x{};
    i32 p = 0;        // program counter (code address)
    i32 cp = 0;       // continuation code address
    u64 e = 0;        // current environment (0 = none)
    u64 b = 0;        // newest choice point (0 = none)
    u64 b0 = 0;       // cut barrier
    u64 h = 0;        // heap top (absolute address)
    u64 hb = 0;       // heap backtrack boundary
    u64 tr = 0;       // trail top
    u64 s = 0;        // structure pointer (read mode)
    bool write_mode = false;
    u64 pf = 0;       // newest parcall frame (0 = none)
    u64 marker = 0;   // innermost active marker (0 = none)
    u64 lgf = 0;      // innermost local goal frame (0 = none)
    u64 pdl = 0;      // PDL top
    u64 ctop = 0;     // control-stack top
    u64 ctop_floor = 0;  // lowest reclaimable point (retained sections below)
    u64 b_ltop = 0;   // local top saved in newest CP (shadow)
    unsigned steal_rr = 1;  // round-robin steal pointer
    i32 prof_here = -2;     // opcode-pair profiler: last executed address
    u8 prof_op = 0;         // opcode-pair profiler: last executed op
    // True high-water marks (words used), updated at allocation sites.
    u64 hw_heap = 0, hw_local = 0, hw_control = 0, hw_trail = 0;
    // Area bases/limits cached from the layout.
    u64 heap_base = 0, heap_limit = 0, local_base = 0, local_limit = 0,
        control_base = 0, control_limit = 0, trail_base = 0, trail_limit = 0,
        pdl_base = 0, pdl_limit = 0, goal_base = 0, goal_limit = 0,
        msg_base = 0, msg_limit = 0;
    bool busy() const { return state == St::Running; }
  };

  // -- setup / top level (machine.cpp)
  void reset(TraceSink* sink);
  RunResult run_query(const Term* goal, TraceSink* sink);
  u64 build_term(Worker& w, const Term* t,
                 std::unordered_map<const Term*, u64>& varmap);
  std::string stringify(u64 cell, int depth = 0) const;
  void step(Worker& w);
  void exec(Worker& w);           // one instruction
  /// pr.entry, or a structured Error naming predicate/arity if the
  /// predicate was declared (proc_index) but never compiled.
  i32 resolved_entry(const Proc& pr) const;
  void record_high_water(const Worker& w);

  // -- memory helpers (worker.cpp)
  u64 rd(Worker& w, u64 addr, ObjClass cls);
  void wr(Worker& w, u64 addr, u64 cell, ObjClass cls);
  u64 heap_push(Worker& w, u64 cell);
  u64 local_top(Worker& w);       // allocation point on the local stack
  void push_env(Worker& w, int ny);
  void pop_env(Worker& w);
  void push_choice(Worker& w, int nargs, i32 bp);
  void restore_choice(Worker& w); // load state from w.b (not popping)
  void pop_choice(Worker& w);
  u64 deref(Worker& w, u64 cell);
  void bind(Worker& w, u64 ref_cell, u64 value);
  void trail(Worker& w, u64 addr);
  void untrail_to(Worker& w, u64 target_tr);
  void untrail_range(Worker& w, u8 payer, u64 from, u64 to);
  bool unify(Worker& w, u64 c1, u64 c2);              // unify.cpp
  bool ground_cell(Worker& w, u64 cell);              // builtin.cpp helpers
  bool indep_cells(Worker& w, u64 a, u64 b);
  bool struct_eq(Worker& w, u64 a, u64 b);
  int term_compare(Worker& w, u64 a, u64 b);          // standard order
  u64 copy_term_cell(Worker& w, u64 cell,
                     std::unordered_map<u64, u64>& varmap);
  std::optional<i64> eval_arith(Worker& w, u64 cell); // arith.cpp
  i64 math_apply(MathFn fn, i64 a, i64 b);            // arith.cpp

  // -- failure & cut (worker.cpp)
  void backtrack(Worker& w);
  void do_cut(Worker& w, u64 target_b);
  void reclaim_control(Worker& w, u64 candidate);

  // -- builtins (builtin.cpp)
  enum class BResult : u8 { True, False, Transfer };
  BResult exec_builtin(Worker& w, BuiltinId id, int arity);

  // -- parallel machinery (sched.cpp)
  void exec_pframe(Worker& w, int nslots, int pf_y, u64 wait_p);
  void exec_pgoal(Worker& w, int slot, i32 proc_idx, int arity);
  /// Reads its own operands from code_[w.p] (a pwait instruction).
  void exec_pwait(Worker& w);
  bool try_run_own_goal(Worker& w, u64 pf);  // parent pops own stack (same PF)
  bool try_steal(Worker& w);          // idle PE steals from a victim
  void start_goal(Worker& w, u64 pf, u64 slot, i32 entry, int arity,
                  const u64* args, i32 resume_p);
  void start_local_goal(Worker& w, u64 pf, u64 slot, i32 entry, int arity,
                        const u64* args, i32 resume_p);
  void end_goal(Worker& w);           // EndGoal instruction
  void end_local_goal(Worker& w);     // EndLocalGoal instruction
  /// Resets the parcall creator to its pwait after a sibling failed.
  void abort_creator(u64 pf);
  void goal_failed(Worker& w);        // section exhausted its alternatives
  void cancel_parcall(Worker& w, u64 pf);
  void abort_taken_goal(unsigned pe, u64 pf, u64 slot);
  void unwind_done_section(unsigned pe, u64 marker_addr);
  void unwind_top_section(Worker& w, u64 marker_addr, bool reclaim_all);
  void send_kill(Worker& sender, unsigned dest_pe, u64 pf, u64 slot);
  void pf_lock(Worker& w, u64 pf);
  void pf_unlock(Worker& w, u64 pf);

  Program& prog_;
  MachineConfig cfg_;
  std::unique_ptr<CodeStore> code_;
  i32 halt_addr_ = -1;
  u32 nil_atom_ = 0;
  /// kOpCount x kOpCount contiguous-pair counters; empty (and the hot
  /// path branch-free in practice) unless cfg_.profile_ops is set.
  std::vector<u64> pair_counts_;

  // Per-run state.
  const CancelToken* cancel_ = nullptr;  ///< borrowed for one solve
  u64 heap_pushes_ = 0;                  ///< counted only when faults armed
  std::unique_ptr<Layout> layout_;
  std::unique_ptr<MemBus> bus_;
  std::vector<Worker> workers_;
  RunStats stats_;
  std::ostringstream out_;
  bool done_ = false;
  bool query_failed_exhausted_ = false;
  std::vector<std::pair<std::string, u64>> query_vars_;  // name -> heap addr
  std::vector<Solution> solutions_;
};

}  // namespace rapwam
