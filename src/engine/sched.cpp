// RAP-WAM parallel machinery: parcall frames, goal stacks, on-demand
// scheduling (parents execute their own goals, idle PEs steal),
// markers/stack sections, goal completion and failure, and the
// kill/unwind cancellation protocol.
//
// Frame layouts are deliberately lean (packed words, single-reference
// test-and-set locks) because every word touched here shows up as
// parallelism-management overhead in the Figure-2 measurements.
//
// Cancellation runs as a synchronous simulator transaction: every
// memory touch is attributed to the PE that performs it in the real
// protocol (kill messages to the executor's message buffer, unwinding
// paid by the executor), but virtual time does not advance inside the
// transaction. See docs/DESIGN.md §5.
#include "engine/machine.h"

#include <algorithm>

namespace rapwam {

using namespace frames;

/// Locks are modelled as one test-and-set bus transaction to acquire
/// and one write to release (uncontended in deterministic virtual
/// time).
void Machine::pf_lock(Worker& w, u64 pf) {
  wr(w, pf + kPfLock, make_raw(1), ObjClass::ParcallCount);
}

void Machine::pf_unlock(Worker& w, u64 pf) {
  wr(w, pf + kPfLock, make_raw(0), ObjClass::ParcallCount);
}

void Machine::exec_pframe(Worker& w, int nslots, int pf_y, u64 wait_p) {
  u64 base = local_top(w);
  u64 sz = pf_size(static_cast<u64>(nslots));
  if (base + sz > w.local_limit)
    throw ResourceExhaustedError(
        "local", "resource_exhausted: local stack overflow (parcall frame) on PE " +
                     std::to_string(w.pe));
  wr(w, base + kPfPrev, make_raw(w.pf), ObjClass::ParcallLocal);
  wr(w, base + kPfNSlots, make_raw(static_cast<u64>(nslots)), ObjClass::ParcallLocal);
  wr(w, base + kPfPending, make_raw(static_cast<u64>(nslots)), ObjClass::ParcallCount);
  wr(w, base + kPfLock, make_raw(0), ObjClass::ParcallCount);
  wr(w, base + kPfCreator, make_raw(w.pe), ObjClass::ParcallLocal);
  wr(w, base + kPfSavedB, make_raw(w.b), ObjClass::ParcallLocal);
  wr(w, base + kPfSavedE, make_raw(w.e), ObjClass::ParcallLocal);
  wr(w, base + kPfSavedLgf, make_raw(w.lgf), ObjClass::ParcallLocal);
  wr(w, base + kPfWaitP, make_raw(wait_p), ObjClass::ParcallLocal);
  for (int i = 0; i < nslots; ++i) {
    u64 s = base + kPfSlots + kPfSlotStride * static_cast<u64>(i);
    wr(w, s + kSlotInfo, make_raw(slot_info(kPending, 0)), ObjClass::ParcallGlobal);
    // The marker word is written only when a thief claims the slot.
  }
  w.pf = base;
  w.hw_local = std::max(w.hw_local, base + sz - w.local_base);
  // The clause keeps the frame pointer in its environment: the inline
  // first goal may leave w.pf pointing at a nested, completed frame.
  wr(w, w.e + kEnvY + static_cast<u64>(pf_y), make_raw(base), ObjClass::EnvPermVar);
  ++stats_.parcalls;
}

void Machine::exec_pgoal(Worker& w, int slot, i32 proc_idx, int arity) {
  RW_CHECK(w.pf != 0, "pgoal without parcall frame");
  i32 entry = resolved_entry(code_->proc(proc_idx));
  u64 gs = w.goal_base;
  wr(w, gs + kGsLock, make_raw(1), ObjClass::GoalFrame);  // test-and-set
  u64 top = cell_val(rd(w, gs + kGsTop, ObjClass::GoalFrame));
  u64 fr = gs + kGsFrames + top * kGoalStride;
  if (fr + kGoalStride > w.goal_limit)
    throw ResourceExhaustedError(
        "goal_stack", "resource_exhausted: goal stack overflow on PE " +
                          std::to_string(w.pe));
  wr(w, fr + kGfPfSlot, make_raw(lgf_pack(w.pf, static_cast<u64>(slot))),
     ObjClass::GoalFrame);
  wr(w, fr + kGfEntryArity,
     make_raw(lgf_pack(static_cast<u64>(entry), static_cast<u64>(arity))),
     ObjClass::GoalFrame);
  for (int i = 0; i < arity; ++i)
    wr(w, fr + kGfArgs + static_cast<u64>(i), w.x[static_cast<std::size_t>(i) + 1],
       ObjClass::GoalFrame);
  wr(w, gs + kGsTop, make_raw(top + 1), ObjClass::GoalFrame);
  wr(w, gs + kGsLock, make_raw(0), ObjClass::GoalFrame);
  ++stats_.goals_pushed;
}

/// Executes the pwait instruction. On entry w.p points AT the pwait;
/// on success it advances past it, otherwise the worker stays waiting
/// (possibly after picking up one of its own goals).
void Machine::exec_pwait(Worker& w) {
  const Instr& ins = code_->at(w.p);
  u64 pf = cell_val(rd(w, w.e + kEnvY + static_cast<u64>(ins.a),
                       ObjClass::EnvPermVar));
  RW_CHECK(pf != 0, "pwait without parcall frame");
  u64 counter = cell_val(rd(w, pf + kPfPending, ObjClass::ParcallCount));
  if (counter & kPfFailBit) {
    // A parallel goal failed. The goals are independent, so retrying
    // the inline goal's alternatives cannot cure the failure: discard
    // every choice point younger than the parcall ("restricted
    // intelligent backtracking") and fail past it. The backtrack walk
    // cancels this frame and any nested completed frames.
    u64 saved_b = cell_val(rd(w, pf + kPfSavedB, ObjClass::ParcallLocal));
    do_cut(w, saved_b);
    backtrack(w);
    return;
  }
  if ((counter & kPfPendingMask) == 0) {
    // Every goal ran locally and succeeded: the frame carries nothing
    // a later backtrack needs (local bindings are on this worker's own
    // trail), so reclaim its local-stack space — but only when no
    // choice point created inside the parcall survives (such a choice
    // point recorded this frame as its PF). Frames with stolen goals
    // stay: they locate the remote stack sections to cancel.
    if (!(counter & kPfRemoteBit) && w.pf == pf) {
      u64 saved_b = cell_val(rd(w, pf + kPfSavedB, ObjClass::ParcallLocal));
      if (w.b <= saved_b)
        w.pf = cell_val(rd(w, pf + kPfPrev, ObjClass::ParcallLocal));
    }
    ++w.p;
    w.state = Worker::St::Running;
    return;
  }
  if (try_run_own_goal(w, pf)) return;
  w.state = Worker::St::Waiting;
}

/// Pops the newest goal of the *current* parcall from the worker's own
/// goal stack and starts executing it. Goals of outer parcalls are left
/// alone (they are resumed when execution returns to their pwait).
bool Machine::try_run_own_goal(Worker& w, u64 pf) {
  u64 gs = w.goal_base;
  wr(w, gs + kGsLock, make_raw(1), ObjClass::GoalFrame);
  u64 bot = cell_val(rd(w, gs + kGsBot, ObjClass::GoalFrame));
  u64 top = cell_val(rd(w, gs + kGsTop, ObjClass::GoalFrame));
  while (top > bot) {
    u64 fr = gs + kGsFrames + (top - 1) * kGoalStride;
    u64 pfslot = cell_val(rd(w, fr + kGfPfSlot, ObjClass::GoalFrame));
    u64 fpf = lgf_lo(pfslot);
    u64 fslot = lgf_hi(pfslot);
    u64 sinfo = cell_val(
        rd(w, fpf + kPfSlots + kPfSlotStride * fslot + kSlotInfo,
           ObjClass::ParcallGlobal));
    if (slot_state(sinfo) == kCancelled) {
      --top;  // discard and keep looking
      wr(w, gs + kGsTop, make_raw(top), ObjClass::GoalFrame);
      continue;
    }
    if (fpf != pf) break;  // belongs to an outer parcall
    --top;
    wr(w, gs + kGsTop, make_raw(top), ObjClass::GoalFrame);
    u64 ea = cell_val(rd(w, fr + kGfEntryArity, ObjClass::GoalFrame));
    i32 entry = static_cast<i32>(lgf_lo(ea));
    int arity = static_cast<int>(lgf_hi(ea));
    u64 args[kGoalStride];
    for (int i = 0; i < arity; ++i)
      args[i] = rd(w, fr + kGfArgs + static_cast<u64>(i), ObjClass::GoalFrame);
    wr(w, gs + kGsLock, make_raw(0), ObjClass::GoalFrame);
    ++stats_.goals_local;
    start_local_goal(w, fpf, fslot, entry, arity, args, /*resume_p=*/w.p);
    return true;
  }
  if (top == bot && top != 0) {  // empty: reset indices
    wr(w, gs + kGsBot, make_raw(0), ObjClass::GoalFrame);
    wr(w, gs + kGsTop, make_raw(0), ObjClass::GoalFrame);
  }
  wr(w, gs + kGsLock, make_raw(0), ObjClass::GoalFrame);
  return false;
}

/// An idle worker probes one victim (round-robin) and steals its oldest
/// pending goal (FIFO end: the biggest subtree).
bool Machine::try_steal(Worker& w) {
  unsigned n = layout_->num_pes();
  if (n <= 1) return false;
  unsigned victim = (w.pe + w.steal_rr) % n;
  w.steal_rr = (w.steal_rr % (n - 1)) + 1;
  if (victim == w.pe) return false;
  Worker& v = workers_[victim];
  u64 gs = v.goal_base;
  wr(w, gs + kGsLock, make_raw(1), ObjClass::GoalFrame);
  u64 bot = cell_val(rd(w, gs + kGsBot, ObjClass::GoalFrame));
  u64 top = cell_val(rd(w, gs + kGsTop, ObjClass::GoalFrame));
  while (bot < top) {
    u64 fr = gs + kGsFrames + bot * kGoalStride;
    u64 pfslot = cell_val(rd(w, fr + kGfPfSlot, ObjClass::GoalFrame));
    u64 fpf = lgf_lo(pfslot);
    u64 fslot = lgf_hi(pfslot);
    u64 sinfo = cell_val(
        rd(w, fpf + kPfSlots + kPfSlotStride * fslot + kSlotInfo,
           ObjClass::ParcallGlobal));
    ++bot;
    wr(w, gs + kGsBot, make_raw(bot), ObjClass::GoalFrame);
    if (slot_state(sinfo) == kCancelled) continue;
    u64 ea = cell_val(rd(w, fr + kGfEntryArity, ObjClass::GoalFrame));
    i32 entry = static_cast<i32>(lgf_lo(ea));
    int arity = static_cast<int>(lgf_hi(ea));
    u64 args[kGoalStride];
    for (int i = 0; i < arity; ++i)
      args[i] = rd(w, fr + kGfArgs + static_cast<u64>(i), ObjClass::GoalFrame);
    wr(w, gs + kGsLock, make_raw(0), ObjClass::GoalFrame);
    ++stats_.goals_stolen;
    start_goal(w, fpf, fslot, entry, arity, args, /*resume_p=*/-1);
    return true;
  }
  wr(w, gs + kGsLock, make_raw(0), ObjClass::GoalFrame);
  return false;
}

/// Runs one of the worker's own goals as a near-normal call: no marker,
/// no stack section — just a two-word return frame so end_local_goal
/// knows which slot to complete. Failure inside the goal backtracks
/// through the parcall naturally.
void Machine::start_local_goal(Worker& w, u64 pf, u64 slot, i32 entry, int arity,
                               const u64* args, i32 resume_p) {
  u64 lg = w.ctop;
  if (lg + kLgfSize > w.control_limit)
    throw ResourceExhaustedError(
        "control", "resource_exhausted: control stack overflow (local goal frame) on PE " +
                       std::to_string(w.pe));
  wr(w, lg + kLgfPfSlot, make_raw(lgf_pack(pf, slot)), ObjClass::Marker);
  wr(w, lg + kLgfResume, make_raw(lgf_pack(w.lgf, static_cast<u64>(resume_p))),
     ObjClass::Marker);
  w.ctop = lg + kLgfSize;
  w.hw_control = std::max(w.hw_control, w.ctop - w.control_base);
  w.lgf = lg;

  u64 s = pf + kPfSlots + kPfSlotStride * slot;
  wr(w, s + kSlotInfo, make_raw(slot_info(kTaken, w.pe)), ObjClass::ParcallGlobal);

  for (int i = 0; i < arity; ++i) w.x[static_cast<std::size_t>(i) + 1] = args[i];
  w.cp = kEndLocalGoalAddr;
  w.p = entry;
  w.b0 = w.b;
  w.state = Worker::St::Running;
}

void Machine::end_local_goal(Worker& w) {
  u64 lg = w.lgf;
  RW_CHECK(lg != 0, "end_local_goal without frame");
  u64 pfslot = cell_val(rd(w, lg + kLgfPfSlot, ObjClass::Marker));
  u64 pf = lgf_lo(pfslot);
  u64 slot = lgf_hi(pfslot);
  u64 resume_word = cell_val(rd(w, lg + kLgfResume, ObjClass::Marker));
  w.lgf = lgf_lo(resume_word);
  if (w.ctop == lg + kLgfSize) w.ctop = lg;  // nothing allocated above

  u64 s = pf + kPfSlots + kPfSlotStride * slot;
  wr(w, s + kSlotInfo, make_raw(slot_info(kDone, w.pe)), ObjClass::ParcallGlobal);
  pf_lock(w, pf);
  u64 counter = cell_val(rd(w, pf + kPfPending, ObjClass::ParcallCount));
  wr(w, pf + kPfPending, make_raw(counter - 1), ObjClass::ParcallCount);
  pf_unlock(w, pf);

  w.p = static_cast<i32>(lgf_hi(resume_word));
  w.state = Worker::St::Running;
}

/// A sibling of parcall `pf` failed while its creator was busy between
/// pframe and the completion of pwait (running the inline goal or one
/// of its own pushed goals). Reset the creator to the pwait: its fail
/// path (cut to the pre-parcall choice point, then backtrack) performs
/// the actual unwinding and cancellation.
void Machine::abort_creator(u64 pf) {
  unsigned creator =
      static_cast<unsigned>(bus_->peek(pf + kPfCreator) & kPayloadMask);
  Worker& cw = workers_[creator];
  i32 wait_p = static_cast<i32>(cell_val(rd(cw, pf + kPfWaitP, ObjClass::ParcallLocal)));
  if (cw.p == wait_p) return;  // already at (or parked on) the pwait
  cw.e = cell_val(rd(cw, pf + kPfSavedE, ObjClass::ParcallLocal));
  cw.lgf = cell_val(rd(cw, pf + kPfSavedLgf, ObjClass::ParcallLocal));
  cw.p = wait_p;
  cw.state = Worker::St::Running;
}

void Machine::start_goal(Worker& w, u64 pf, u64 slot, i32 entry, int arity,
                         const u64* args, i32 resume_p) {
  u64 mk = w.ctop;
  if (mk + kMarkerSize > w.control_limit)
    throw ResourceExhaustedError(
        "control", "resource_exhausted: control stack overflow (marker) on PE " +
                       std::to_string(w.pe));
  wr(w, mk + kMkPF, make_raw(pf), ObjClass::Marker);
  wr(w, mk + kMkSlot, make_raw(slot), ObjClass::Marker);
  wr(w, mk + kMkSavedB, make_raw(w.b), ObjClass::Marker);
  wr(w, mk + kMkSavedTR, make_raw(w.tr), ObjClass::Marker);
  wr(w, mk + kMkSavedH, make_raw(w.h), ObjClass::Marker);
  wr(w, mk + kMkSavedE, make_raw(w.e), ObjClass::Marker);
  wr(w, mk + kMkResumeP, make_int(resume_p), ObjClass::Marker);
  wr(w, mk + kMkSavedPF, make_raw(w.pf), ObjClass::Marker);
  wr(w, mk + kMkPrev, make_raw(w.marker), ObjClass::Marker);
  wr(w, mk + kMkDead, make_raw(0), ObjClass::Marker);
  wr(w, mk + kMkSavedB0, make_raw(w.b0), ObjClass::Marker);
  wr(w, mk + kMkSavedLtop, make_raw(w.b_ltop), ObjClass::Marker);
  wr(w, mk + kMkSavedLgf, make_raw(w.lgf), ObjClass::Marker);
  w.ctop = mk + kMarkerSize;
  w.hw_control = std::max(w.hw_control, w.ctop - w.control_base);
  w.marker = mk;

  // Claim the slot.
  u64 s = pf + kPfSlots + kPfSlotStride * slot;
  wr(w, s + kSlotInfo, make_raw(slot_info(kTaken, w.pe)), ObjClass::ParcallGlobal);
  wr(w, s + kSlotMarker, make_raw(mk), ObjClass::ParcallGlobal);

  for (int i = 0; i < arity; ++i) w.x[static_cast<std::size_t>(i) + 1] = args[i];
  w.cp = kEndGoalAddr;
  w.p = entry;
  w.b0 = w.b;
  w.hb = w.h;
  w.state = Worker::St::Running;
}

void Machine::end_goal(Worker& w) {
  u64 mk = w.marker;
  RW_CHECK(mk != 0, "end_goal without marker");
  wr(w, mk + kMkEndTR, make_raw(w.tr), ObjClass::Marker);
  wr(w, mk + kMkEndPF, make_raw(w.pf), ObjClass::Marker);
  wr(w, mk + kMkEndH, make_raw(w.h), ObjClass::Marker);
  wr(w, mk + kMkEndCtop, make_raw(w.ctop), ObjClass::Marker);

  u64 pf = cell_val(rd(w, mk + kMkPF, ObjClass::Marker));
  u64 slot = cell_val(rd(w, mk + kMkSlot, ObjClass::Marker));
  u64 s = pf + kPfSlots + kPfSlotStride * slot;
  wr(w, s + kSlotInfo, make_raw(slot_info(kDone, w.pe)), ObjClass::ParcallGlobal);
  pf_lock(w, pf);
  u64 counter = cell_val(rd(w, pf + kPfPending, ObjClass::ParcallCount));
  wr(w, pf + kPfPending, make_raw((counter - 1) | kPfRemoteBit),
     ObjClass::ParcallCount);
  pf_unlock(w, pf);

  // The completed section is retained below this point: the control
  // stack must not be reclaimed into it.
  w.ctop_floor = w.ctop;

  // Restore the executor's context. The section's data (heap, control,
  // trail) stays; its choice points become invisible (first-solution
  // semantics for pushed goals).
  w.pf = cell_val(rd(w, mk + kMkSavedPF, ObjClass::Marker));
  w.e = cell_val(rd(w, mk + kMkSavedE, ObjClass::Marker));
  w.b = cell_val(rd(w, mk + kMkSavedB, ObjClass::Marker));
  w.b0 = cell_val(rd(w, mk + kMkSavedB0, ObjClass::Marker));
  w.b_ltop = cell_val(rd(w, mk + kMkSavedLtop, ObjClass::Marker));
  w.lgf = cell_val(rd(w, mk + kMkSavedLgf, ObjClass::Marker));
  w.hb = (w.b != 0) ? cell_val(rd(w, w.b + kCpH, ObjClass::ChoicePoint))
                    : cell_val(rd(w, mk + kMkSavedH, ObjClass::Marker));
  i64 resume = int_val(rd(w, mk + kMkResumeP, ObjClass::Marker));
  w.marker = cell_val(rd(w, mk + kMkPrev, ObjClass::Marker));
  if (resume >= 0) {
    w.p = static_cast<i32>(resume);
    w.state = Worker::St::Running;
  } else {
    w.state = Worker::St::Idle;
  }
}

/// Called by backtrack() when the current stack section has exhausted
/// its alternatives: the (stolen) parallel goal fails.
void Machine::goal_failed(Worker& w) {
  u64 mk = w.marker;
  u64 saved_pf = cell_val(rd(w, mk + kMkSavedPF, ObjClass::Marker));
  while (w.pf != saved_pf) cancel_parcall(w, w.pf);

  u64 pf = cell_val(rd(w, mk + kMkPF, ObjClass::Marker));
  u64 slot = cell_val(rd(w, mk + kMkSlot, ObjClass::Marker));
  i64 resume = int_val(rd(w, mk + kMkResumeP, ObjClass::Marker));

  unwind_top_section(w, mk, /*reclaim_all=*/true);

  u64 s = pf + kPfSlots + kPfSlotStride * slot;
  wr(w, s + kSlotInfo, make_raw(slot_info(kFailed, w.pe)), ObjClass::ParcallGlobal);
  pf_lock(w, pf);
  u64 counter = cell_val(rd(w, pf + kPfPending, ObjClass::ParcallCount));
  wr(w, pf + kPfPending, make_raw((counter - 1) | kPfFailBit | kPfRemoteBit),
     ObjClass::ParcallCount);
  pf_unlock(w, pf);

  // Kill the siblings that are still running ("inside" failure, paper
  // §1): since the goals are independent there is no point letting
  // them finish. Stolen goals are aborted on their executors; the
  // creator (running the inline goal or a local one) is reset to its
  // pwait, where it observes the fail flag and fails the parcall.
  u64 nslots = cell_val(rd(w, pf + kPfNSlots, ObjClass::ParcallLocal));
  unsigned creator = static_cast<unsigned>(
      cell_val(rd(w, pf + kPfCreator, ObjClass::ParcallLocal)));
  for (u64 i = 0; i < nslots; ++i) {
    if (i == slot) continue;
    u64 si = pf + kPfSlots + kPfSlotStride * i;
    u64 sinfo = cell_val(rd(w, si + kSlotInfo, ObjClass::ParcallGlobal));
    if (slot_state(sinfo) != kTaken) continue;
    unsigned pe = static_cast<unsigned>(slot_pe(sinfo));
    if (pe == creator) continue;  // handled by abort_creator below
    RW_CHECK(pe != w.pe, "failing goal's sibling taken by the failing PE");
    send_kill(w, pe, pf, i);
    abort_taken_goal(pe, pf, i);
  }
  if (creator != w.pe) {
    send_kill(w, creator, pf, slot);
    abort_creator(pf);
  }

  if (resume >= 0) {
    w.p = static_cast<i32>(resume);
    w.state = Worker::St::Running;
  } else {
    w.state = Worker::St::Idle;
  }
}

/// Fully unwinds the worker's innermost (top) stack section: bindings,
/// heap, control stack, registers. The marker must be w.marker.
void Machine::unwind_top_section(Worker& w, u64 mk, bool reclaim_all) {
  RW_CHECK(mk == w.marker, "unwind_top_section: not the innermost marker");
  untrail_to(w, cell_val(rd(w, mk + kMkSavedTR, ObjClass::Marker)));
  if (reclaim_all) {
    w.h = cell_val(rd(w, mk + kMkSavedH, ObjClass::Marker));
    w.ctop = mk;
    w.ctop_floor = std::min(w.ctop_floor, mk);
  }
  w.b = cell_val(rd(w, mk + kMkSavedB, ObjClass::Marker));
  w.e = cell_val(rd(w, mk + kMkSavedE, ObjClass::Marker));
  w.b0 = cell_val(rd(w, mk + kMkSavedB0, ObjClass::Marker));
  w.b_ltop = cell_val(rd(w, mk + kMkSavedLtop, ObjClass::Marker));
  w.lgf = cell_val(rd(w, mk + kMkSavedLgf, ObjClass::Marker));
  w.pf = cell_val(rd(w, mk + kMkSavedPF, ObjClass::Marker));
  w.hb = (w.b != 0) ? cell_val(rd(w, w.b + kCpH, ObjClass::ChoicePoint))
                    : cell_val(rd(w, mk + kMkSavedH, ObjClass::Marker));
  w.marker = cell_val(rd(w, mk + kMkPrev, ObjClass::Marker));
}

void Machine::send_kill(Worker& sender, unsigned dest_pe, u64 pf, u64 slot) {
  Worker& d = workers_[dest_pe];
  u64 mb = d.msg_base;
  // Sender: lock, append message, bump count, unlock.
  wr(sender, mb + kMbLock, make_raw(1), ObjClass::Message);
  u64 count = cell_val(rd(sender, mb + kMbCount, ObjClass::Message));
  u64 cap = (d.msg_limit - (mb + kMbMsgs)) / kMsgStride;
  u64 m = mb + kMbMsgs + (count % cap) * kMsgStride;
  wr(sender, m + 0, make_raw(kMsgKill), ObjClass::Message);
  wr(sender, m + 1, make_raw(pf), ObjClass::Message);
  wr(sender, m + 2, make_raw(slot), ObjClass::Message);
  wr(sender, m + 3, make_raw(sender.pe), ObjClass::Message);
  wr(sender, mb + kMbCount, make_raw(count + 1), ObjClass::Message);
  wr(sender, mb + kMbLock, make_raw(0), ObjClass::Message);
  // Receiver: consume (synchronously in the simulation).
  for (u64 i = 0; i < kMsgStride; ++i)
    (void)bus_->read(d.pe, m + i, ObjClass::Message, d.busy());
  bus_->write(d.pe, mb + kMbCount, make_raw(count), ObjClass::Message, d.busy());
  ++stats_.kills;
}

/// Cancels parcall frame `pf` (the newest on w's chain): every slot is
/// discarded, killed or unwound; then the frame is popped from the
/// chain. Runs as a synchronous transaction.
void Machine::cancel_parcall(Worker& w, u64 pf) {
  RW_CHECK(w.pf == pf, "cancel_parcall: frame is not the newest");
  u64 nslots = cell_val(rd(w, pf + kPfNSlots, ObjClass::ParcallLocal));
  for (u64 i = nslots; i-- > 0;) {
    u64 s = pf + kPfSlots + kPfSlotStride * i;
    u64 sinfo = cell_val(rd(w, s + kSlotInfo, ObjClass::ParcallGlobal));
    switch (slot_state(sinfo)) {
      case kPending:
        wr(w, s + kSlotInfo, make_raw(slot_info(kCancelled, 0)),
           ObjClass::ParcallGlobal);
        break;
      case kTaken: {
        unsigned pe = static_cast<unsigned>(slot_pe(sinfo));
        if (pe != w.pe) {
          // Stolen: abort on the thief. A local goal of the canceller
          // itself is undone by the canceller's own backtracking.
          send_kill(w, pe, pf, i);
          abort_taken_goal(pe, pf, i);
        }
        wr(w, s + kSlotInfo, make_raw(slot_info(kCancelled, 0)),
           ObjClass::ParcallGlobal);
        break;
      }
      case kDone: {
        unsigned pe = static_cast<unsigned>(slot_pe(sinfo));
        if (pe != w.pe) {
          // Stolen goal: its stack section lives on the executor.
          u64 mk = cell_val(rd(w, s + kSlotMarker, ObjClass::ParcallGlobal));
          send_kill(w, pe, pf, i);
          unwind_done_section(pe, mk);
        }
        // Locally executed goals are undone by the canceller's own
        // trail/heap restoration.
        wr(w, s + kSlotInfo, make_raw(slot_info(kCancelled, 0)),
           ObjClass::ParcallGlobal);
        break;
      }
      case kFailed:
      case kCancelled:
        break;
      default:
        RW_CHECK(false, "bad slot state");
    }
  }
  w.pf = cell_val(rd(w, pf + kPfPrev, ObjClass::ParcallLocal));
}

/// Aborts a goal currently being executed by `pe`: unwinds that
/// worker's activities innermost-first until the (pf,slot) section is
/// gone, cancelling nested parcalls on the way.
void Machine::abort_taken_goal(unsigned pe, u64 pf, u64 slot) {
  Worker& ex = workers_[pe];
  for (;;) {
    RW_CHECK(ex.marker != 0, "abort target has no active section");
    u64 mk = ex.marker;
    u64 mpf = cell_val(rd(ex, mk + kMkPF, ObjClass::Marker));
    u64 mslot = cell_val(rd(ex, mk + kMkSlot, ObjClass::Marker));
    bool target = (mpf == pf && mslot == slot);
    // Tombstone this slot first so nested cancellations skip it.
    u64 s = mpf + kPfSlots + kPfSlotStride * mslot;
    wr(ex, s + kSlotInfo, make_raw(slot_info(kCancelled, 0)), ObjClass::ParcallGlobal);
    // Cancel parcalls opened inside this activity.
    u64 saved_pf = cell_val(rd(ex, mk + kMkSavedPF, ObjClass::Marker));
    while (ex.pf != saved_pf) cancel_parcall(ex, ex.pf);
    i64 resume = int_val(rd(ex, mk + kMkResumeP, ObjClass::Marker));
    unwind_top_section(ex, mk, /*reclaim_all=*/true);
    if (target) {
      if (resume >= 0) {
        // Defensive: a stolen goal always resumes to Idle.
        ex.p = static_cast<i32>(resume);
        ex.state = Worker::St::Running;
      } else {
        ex.state = Worker::St::Idle;  // thief goes idle
      }
      return;
    }
  }
}

/// Unwinds a *completed* section that may no longer be on top of the
/// executor's stacks: resets its bindings via its trail range and
/// reclaims memory only when nothing was allocated above it since.
void Machine::unwind_done_section(unsigned pe, u64 mk) {
  Worker& ex = workers_[pe];
  if (cell_val(bus_->read(pe, mk + kMkDead, ObjClass::Marker, ex.busy())) != 0) return;

  // Cancel parcalls completed inside the section.
  u64 end_pf = cell_val(bus_->read(pe, mk + kMkEndPF, ObjClass::Marker, ex.busy()));
  u64 saved_pf = cell_val(bus_->read(pe, mk + kMkSavedPF, ObjClass::Marker, ex.busy()));
  u64 pfc = end_pf;
  while (pfc != saved_pf) {
    u64 prev = cell_val(bus_->read(pe, pfc + kPfPrev, ObjClass::ParcallLocal, ex.busy()));
    // Temporarily splice the frame onto ex's chain head for cancel.
    u64 save_chain = ex.pf;
    ex.pf = pfc;
    cancel_parcall(ex, pfc);
    ex.pf = save_chain;
    pfc = prev;
  }

  u64 saved_tr = cell_val(bus_->read(pe, mk + kMkSavedTR, ObjClass::Marker, ex.busy()));
  u64 end_tr = cell_val(bus_->read(pe, mk + kMkEndTR, ObjClass::Marker, ex.busy()));
  untrail_range(ex, static_cast<u8>(pe), saved_tr, end_tr);
  if (ex.tr == end_tr) ex.tr = saved_tr;

  u64 saved_h = cell_val(bus_->read(pe, mk + kMkSavedH, ObjClass::Marker, ex.busy()));
  u64 end_h = cell_val(bus_->read(pe, mk + kMkEndH, ObjClass::Marker, ex.busy()));
  if (ex.h == end_h) ex.h = saved_h;

  u64 end_ctop = cell_val(bus_->read(pe, mk + kMkEndCtop, ObjClass::Marker, ex.busy()));
  if (ex.ctop == end_ctop) ex.ctop = mk;

  bus_->write(pe, mk + kMkDead, make_raw(1), ObjClass::Marker, ex.busy());
}

}  // namespace rapwam
