// Aggregate statistics of one emulator run (the paper's
// "instrumentation data": instruction counts, reference counts by area
// and class, parallelism management counters, storage high-water
// marks).
#pragma once

#include <array>

#include "trace/tracebuf.h"

namespace rapwam {

struct RunStats {
  u64 instructions = 0;   ///< instructions executed while Running
  u64 calls = 0;          ///< procedure calls (logical inferences)
  u64 cycles = 0;         ///< virtual cycles (makespan)
  u64 wait_polls = 0;     ///< PWait polls while waiting (not instructions)
  RefCounts refs;         ///< every data reference (busy flag separates work)
  u64 goals_pushed = 0;
  u64 goals_stolen = 0;   ///< goals executed by a PE other than the pusher
  u64 goals_local = 0;    ///< goals executed by their own pusher
  u64 parcalls = 0;
  u64 kills = 0;          ///< kill messages sent
  u64 solutions = 0;
  unsigned num_pes = 1;
  /// Max words ever in use per area (max over PEs).
  std::array<u64, kAreaCount> high_water{};

  /// Field-for-field equality: the fused-vs-unfused differential suite
  /// and the CI fuse-smoke pin golden stats with this.
  bool operator==(const RunStats&) const = default;

  /// References issued while doing useful work ("work" in Fig. 2).
  u64 work_refs() const { return refs.busy; }
};

}  // namespace rapwam
