// General unification with an explicit in-memory PDL (push-down list),
// as in the WAM. Binding direction follows the usual safety rules:
// stack variables are bound towards heap variables, younger variables
// towards older ones.
#include "engine/machine.h"

namespace rapwam {

namespace {
bool is_stack_ref(const Layout& l, u64 addr) { return l.area_of(addr) != Area::Heap; }
}  // namespace

bool Machine::unify(Worker& w, u64 c1, u64 c2) {
  u64 pdl_start = w.pdl;
  auto push_pair = [&](u64 a, u64 b) {
    if (w.pdl + 2 > w.pdl_limit) fail("PDL overflow on PE " + std::to_string(w.pe));
    wr(w, w.pdl, a, ObjClass::PdlEntry);
    wr(w, w.pdl + 1, b, ObjClass::PdlEntry);
    w.pdl += 2;
  };

  push_pair(c1, c2);
  while (w.pdl > pdl_start) {
    w.pdl -= 2;
    u64 a = rd(w, w.pdl, ObjClass::PdlEntry);
    u64 b = rd(w, w.pdl + 1, ObjClass::PdlEntry);
    a = deref(w, a);
    b = deref(w, b);
    if (a == b) continue;

    Tag ta = cell_tag(a);
    Tag tb = cell_tag(b);

    if (ta == Tag::Ref && tb == Tag::Ref) {
      u64 aa = cell_val(a), ab = cell_val(b);
      bool sa = is_stack_ref(*layout_, aa), sb = is_stack_ref(*layout_, ab);
      if (sa == sb) {
        // Same kind: bind the younger (higher address) to the older.
        if (aa > ab) bind(w, a, b); else bind(w, b, a);
      } else if (sa) {
        bind(w, a, b);  // stack -> heap
      } else {
        bind(w, b, a);
      }
      continue;
    }
    if (ta == Tag::Ref) { bind(w, a, b); continue; }
    if (tb == Tag::Ref) { bind(w, b, a); continue; }

    if (ta != tb) { w.pdl = pdl_start; return false; }
    switch (ta) {
      case Tag::Con:
      case Tag::Int:
        w.pdl = pdl_start;
        return false;  // equal cells were handled above
      case Tag::Lis: {
        u64 pa = cell_val(a), pb = cell_val(b);
        push_pair(rd(w, pa, ObjClass::HeapTerm), rd(w, pb, ObjClass::HeapTerm));
        push_pair(rd(w, pa + 1, ObjClass::HeapTerm), rd(w, pb + 1, ObjClass::HeapTerm));
        break;
      }
      case Tag::Str: {
        u64 pa = cell_val(a), pb = cell_val(b);
        u64 fa = rd(w, pa, ObjClass::HeapTerm);
        u64 fb = rd(w, pb, ObjClass::HeapTerm);
        if (fa != fb) { w.pdl = pdl_start; return false; }
        u32 n = fun_arity(fa);
        for (u32 i = 1; i <= n; ++i)
          push_pair(rd(w, pa + i, ObjClass::HeapTerm), rd(w, pb + i, ObjClass::HeapTerm));
        break;
      }
      default:
        w.pdl = pdl_start;
        return false;
    }
  }
  return true;
}

}  // namespace rapwam
