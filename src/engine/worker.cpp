// Memory helpers, stack-frame management, dereferencing, binding,
// trailing, backtracking and cut for one worker.
#include "engine/machine.h"

#include <algorithm>

namespace rapwam {

using namespace frames;

u64 Machine::rd(Worker& w, u64 addr, ObjClass cls) {
  return bus_->read(w.pe, addr, cls, w.busy());
}

void Machine::wr(Worker& w, u64 addr, u64 cell, ObjClass cls) {
  bus_->write(w.pe, addr, cell, cls, w.busy());
}

u64 Machine::heap_push(Worker& w, u64 cell) {
  if (w.h >= w.heap_limit)
    throw ResourceExhaustedError(
        "heap", "resource_exhausted: heap overflow on PE " + std::to_string(w.pe));
  if (cfg_.faults.fail_heap_growth_n) [[unlikely]] {
    // Deterministic fault injection: pretend the Nth allocation hit
    // the cap (same structured error, same unwind path).
    if (++heap_pushes_ == cfg_.faults.fail_heap_growth_n)
      throw ResourceExhaustedError(
          "heap", "resource_exhausted: injected heap-growth fault on PE " +
                      std::to_string(w.pe));
  }
  wr(w, w.h, cell, ObjClass::HeapTerm);
  w.hw_heap = std::max(w.hw_heap, w.h + 1 - w.heap_base);
  return w.h++;
}

/// The next free word on the local stack: above the current
/// environment, the newest parcall frame and the newest choice point's
/// saved top, whichever is highest. Reads the frame size words, as a
/// real implementation would.
u64 Machine::local_top(Worker& w) {
  u64 top = w.local_base;
  if (w.e != 0) {
    u64 ny = cell_val(rd(w, w.e + kEnvNY, ObjClass::EnvControl));
    top = std::max(top, w.e + env_size(ny));
  }
  if (w.pf != 0 && layout_->in_area(w.pf, w.pe, Area::Local)) {
    u64 ns = cell_val(rd(w, w.pf + kPfNSlots, ObjClass::ParcallLocal));
    top = std::max(top, w.pf + pf_size(ns));
  }
  if (w.b != 0) top = std::max(top, w.b_ltop);
  return top;
}

void Machine::push_env(Worker& w, int ny) {
  u64 base = local_top(w);
  if (base + env_size(static_cast<u64>(ny)) > w.local_limit)
    throw ResourceExhaustedError(
        "local", "resource_exhausted: local stack overflow on PE " +
                     std::to_string(w.pe));
  wr(w, base + kEnvCE, make_raw(w.e), ObjClass::EnvControl);
  wr(w, base + kEnvCP, make_raw(static_cast<u64>(w.cp)), ObjClass::EnvControl);
  wr(w, base + kEnvNY, make_raw(static_cast<u64>(ny)), ObjClass::EnvControl);
  for (int i = 0; i < ny; ++i) {
    u64 a = base + kEnvY + static_cast<u64>(i);
    wr(w, a, make_ref(a), ObjClass::EnvPermVar);  // fresh unbound
  }
  w.e = base;
  w.hw_local = std::max(w.hw_local, base + env_size(static_cast<u64>(ny)) - w.local_base);
}

void Machine::pop_env(Worker& w) {
  RW_CHECK(w.e != 0, "deallocate without environment");
  w.cp = static_cast<i32>(cell_val(rd(w, w.e + kEnvCP, ObjClass::EnvControl)));
  w.e = cell_val(rd(w, w.e + kEnvCE, ObjClass::EnvControl));
}

void Machine::push_choice(Worker& w, int nargs, i32 bp) {
  u64 base = w.ctop;
  if (base + cp_size(static_cast<u64>(nargs)) > w.control_limit)
    throw ResourceExhaustedError(
        "control", "resource_exhausted: control stack overflow on PE " +
                       std::to_string(w.pe));
  u64 ltop = local_top(w);
  wr(w, base + kCpNArgs, make_raw(static_cast<u64>(nargs)), ObjClass::ChoicePoint);
  wr(w, base + kCpCE, make_raw(w.e), ObjClass::ChoicePoint);
  wr(w, base + kCpCP, make_raw(static_cast<u64>(w.cp)), ObjClass::ChoicePoint);
  wr(w, base + kCpB, make_raw(w.b), ObjClass::ChoicePoint);
  wr(w, base + kCpBP, make_raw(static_cast<u64>(bp)), ObjClass::ChoicePoint);
  wr(w, base + kCpTR, make_raw(w.tr), ObjClass::ChoicePoint);
  wr(w, base + kCpH, make_raw(w.h), ObjClass::ChoicePoint);
  wr(w, base + kCpLTop, make_raw(ltop), ObjClass::ChoicePoint);
  wr(w, base + kCpPF, make_raw(w.pf), ObjClass::ChoicePoint);
  wr(w, base + kCpB0, make_raw(w.b0), ObjClass::ChoicePoint);
  wr(w, base + kCpLgf, make_raw(w.lgf), ObjClass::ChoicePoint);
  for (int i = 0; i < nargs; ++i)
    wr(w, base + kCpArgs + static_cast<u64>(i), w.x[static_cast<std::size_t>(i) + 1],
       ObjClass::ChoicePoint);
  w.b = base;
  w.b_ltop = ltop;
  w.hb = w.h;
  w.ctop = base + cp_size(static_cast<u64>(nargs));
  w.hw_control = std::max(w.hw_control, w.ctop - w.control_base);
}

/// Restores machine state from the newest choice point (w.b). Does not
/// pop it; the caller decides (retry vs trust).
void Machine::restore_choice(Worker& w) {
  u64 b = w.b;
  RW_CHECK(b != 0, "restore without choice point");
  u64 nargs = cell_val(rd(w, b + kCpNArgs, ObjClass::ChoicePoint));
  for (u64 i = 0; i < nargs; ++i)
    w.x[i + 1] = rd(w, b + kCpArgs + i, ObjClass::ChoicePoint);
  w.e = cell_val(rd(w, b + kCpCE, ObjClass::ChoicePoint));
  w.cp = static_cast<i32>(cell_val(rd(w, b + kCpCP, ObjClass::ChoicePoint)));
  u64 tr = cell_val(rd(w, b + kCpTR, ObjClass::ChoicePoint));
  untrail_to(w, tr);
  w.h = cell_val(rd(w, b + kCpH, ObjClass::ChoicePoint));
  w.hb = w.h;
  w.b_ltop = cell_val(rd(w, b + kCpLTop, ObjClass::ChoicePoint));
  w.b0 = cell_val(rd(w, b + kCpB0, ObjClass::ChoicePoint));
  w.lgf = cell_val(rd(w, b + kCpLgf, ObjClass::ChoicePoint));
  // PF was already reconciled by backtrack() before calling restore.
}

void Machine::pop_choice(Worker& w) {
  u64 b = w.b;
  RW_CHECK(b != 0, "pop without choice point");
  w.ctop = std::max(b, w.ctop_floor);
  w.b = cell_val(rd(w, b + kCpB, ObjClass::ChoicePoint));
  if (w.b != 0) {
    w.hb = cell_val(rd(w, w.b + kCpH, ObjClass::ChoicePoint));
    w.b_ltop = cell_val(rd(w, w.b + kCpLTop, ObjClass::ChoicePoint));
  } else {
    w.hb = (w.marker != 0)
               ? cell_val(rd(w, w.marker + kMkSavedH, ObjClass::Marker))
               : w.heap_base;
    w.b_ltop = w.local_base;
  }
}

u64 Machine::deref(Worker& w, u64 cell) {
  while (cell_tag(cell) == Tag::Ref) {
    u64 addr = cell_val(cell);
    ObjClass cls = layout_->area_of(addr) == Area::Heap ? ObjClass::HeapTerm
                                                        : ObjClass::EnvPermVar;
    u64 next = rd(w, addr, cls);
    if (next == cell) return cell;  // unbound
    cell = next;
  }
  return cell;
}

void Machine::trail(Worker& w, u64 addr) {
  bool foreign = layout_->pe_of(addr) != w.pe;
  bool needed;
  if (foreign) {
    needed = true;
  } else if (layout_->in_area(addr, w.pe, Area::Heap)) {
    needed = addr < w.hb;
  } else {
    // Stack variable: must survive until the newest choice point.
    needed = (w.b != 0 && addr < w.b_ltop);
  }
  if (!needed) return;
  if (w.tr >= w.trail_limit)
    throw ResourceExhaustedError(
        "trail", "resource_exhausted: trail overflow on PE " + std::to_string(w.pe));
  wr(w, w.tr++, make_raw(addr), ObjClass::TrailEntry);
  w.hw_trail = std::max(w.hw_trail, w.tr - w.trail_base);
}

void Machine::untrail_to(Worker& w, u64 target_tr) {
  while (w.tr > target_tr) {
    --w.tr;
    u64 entry = rd(w, w.tr, ObjClass::TrailEntry);
    if (entry == 0) continue;  // tombstoned by a remote section unwind
    u64 addr = cell_val(entry);
    ObjClass cls = layout_->area_of(addr) == Area::Heap ? ObjClass::HeapTerm
                                                        : ObjClass::EnvPermVar;
    wr(w, addr, make_ref(addr), cls);
  }
}

/// Resets the bindings recorded in [from,to) of PE `payer`'s trail and
/// tombstones the entries (used when a non-top stack section is
/// unwound; the trail cannot shrink yet).
void Machine::untrail_range(Worker& w, u8 payer, u64 from, u64 to) {
  Worker& owner = workers_[payer];
  for (u64 t = from; t < to; ++t) {
    u64 entry = bus_->read(payer, t, ObjClass::TrailEntry, owner.busy());
    if (entry == 0) continue;
    u64 addr = cell_val(entry);
    ObjClass cls = layout_->area_of(addr) == Area::Heap ? ObjClass::HeapTerm
                                                        : ObjClass::EnvPermVar;
    bus_->write(payer, addr, make_ref(addr), cls, owner.busy());
    bus_->write(payer, t, 0, ObjClass::TrailEntry, owner.busy());
  }
  (void)w;
}

void Machine::bind(Worker& w, u64 ref_cell, u64 value) {
  RW_CHECK(cell_tag(ref_cell) == Tag::Ref, "bind target must be a ref");
  u64 addr = cell_val(ref_cell);
  ObjClass cls = layout_->area_of(addr) == Area::Heap ? ObjClass::HeapTerm
                                                      : ObjClass::EnvPermVar;
  wr(w, addr, value, cls);
  trail(w, addr);
}

void Machine::do_cut(Worker& w, u64 target_b) {
  // Discard choice points newer than target_b. Completed parcall frames
  // stay in the PF chain (their bindings remain valid); they are
  // cancelled only when execution actually backtracks past them.
  if (w.b <= target_b) return;
  w.b = target_b;
  if (w.b != 0) {
    u64 nargs = cell_val(rd(w, w.b + kCpNArgs, ObjClass::ChoicePoint));
    w.hb = cell_val(rd(w, w.b + kCpH, ObjClass::ChoicePoint));
    w.b_ltop = cell_val(rd(w, w.b + kCpLTop, ObjClass::ChoicePoint));
    reclaim_control(w, w.b + cp_size(nargs));
  } else {
    w.hb = (w.marker != 0)
               ? cell_val(rd(w, w.marker + kMkSavedH, ObjClass::Marker))
               : w.heap_base;
    w.b_ltop = w.local_base;
    reclaim_control(w, w.control_base);
  }
}

/// Lowers the control-stack top to `candidate` if nothing live sits
/// above it: active markers, local goal frames and retained sections
/// pin the top. Without this, every cut would leak its discarded
/// choice-point space and turn the control stack into an append-only
/// stream, destroying its cache locality.
void Machine::reclaim_control(Worker& w, u64 candidate) {
  candidate = std::max(candidate, w.ctop_floor);
  if (w.marker != 0) candidate = std::max(candidate, w.marker + kMarkerSize);
  if (w.lgf != 0) candidate = std::max(candidate, w.lgf + kLgfSize);
  if (candidate < w.ctop) w.ctop = candidate;
}

void Machine::backtrack(Worker& w) {
  for (;;) {
    u64 boundary = 0;
    if (w.marker != 0)
      boundary = cell_val(rd(w, w.marker + kMkSavedB, ObjClass::Marker));

    if (w.b == boundary || w.b == 0) {
      // No alternatives left in the current computation.
      if (w.marker != 0) {
        goal_failed(w);
      } else {
        // The query itself is exhausted.
        query_failed_exhausted_ = true;
        done_ = true;
        w.state = Worker::St::Halted;
      }
      return;
    }

    // Cancel parcalls created after the choice point we revert to.
    u64 saved_pf = cell_val(rd(w, w.b + kCpPF, ObjClass::ChoicePoint));
    while (w.pf != saved_pf) {
      u64 pf = w.pf;
      RW_CHECK(pf != 0, "parcall chain does not reach choice point's frame");
      cancel_parcall(w, pf);
    }

    restore_choice(w);
    i32 bp = static_cast<i32>(cell_val(rd(w, w.b + kCpBP, ObjClass::ChoicePoint)));
    if (bp == kFailAddr) {
      // Exhausted chain guard (shouldn't happen: trust pops first).
      pop_choice(w);
      continue;
    }
    w.p = bp;
    w.state = Worker::St::Running;
    return;
  }
}

}  // namespace rapwam
