#include "harness/golden.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "cache/sweep.h"
#include "harness/trace_lib.h"

namespace rapwam {

std::vector<std::pair<std::string, u64>> traffic_fields(const TrafficStats& s) {
  return {
      {"refs", s.refs},
      {"reads", s.reads},
      {"writes", s.writes},
      {"misses", s.misses},
      {"bus_words", s.bus_words},
      {"fetch_words", s.fetch_words},
      {"writeback_words", s.writeback_words},
      {"writethrough_words", s.writethrough_words},
      {"invalidations", s.invalidations},
      {"update_words", s.update_words},
      {"flush_words", s.flush_words},
      {"coherence_violations", s.coherence_violations},
      {"l2_hits", s.l2_hits},
      {"l2_misses", s.l2_misses},
      {"mem_fetch_words", s.mem_fetch_words},
      {"mem_writeback_words", s.mem_writeback_words},
      {"mem_word_writes", s.mem_word_writes},
      {"l2_back_invalidations", s.l2_back_invalidations},
      {"l2_back_inval_flush_words", s.l2_back_inval_flush_words},
  };
}

std::vector<std::pair<std::string, u64>> timing_fields(const TimingStats& t) {
  return {
      {"makespan", t.makespan},
      {"bus_busy_cycles", t.bus_busy_cycles},
      {"bus_transactions", t.bus_transactions},
      {"cache_fills", t.cache_fills},
      {"l2_fills", t.l2_fills},
      {"mem_fills", t.mem_fills},
      {"total_busy", t.total_busy()},
      {"total_stall", t.total_stall()},
  };
}

namespace {

const Protocol kGoldenProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

/// The standard timed point of the reports (fast interleaved bus).
TimingParams golden_timing() { return TimingParams{1, 1, 2, 4, 0}; }

/// Timing for the hierarchy point: same bus, but memory fills cost 10
/// extra cycles against the L2's 2 (paper_hier_config) — the latency
/// gap the L2 exists to hide.
TimingParams golden_hier_timing() { return TimingParams{1, 1, 2, 4, 10}; }

}  // namespace

std::vector<GoldenEntry> golden_compute(const std::string& bench) {
  std::vector<GoldenEntry> out;
  // 128 PEs pins the wide (PeSet) directory's numbers alongside the
  // flat fast path's; the pre-existing <= 64-PE entries are unchanged
  // by construction (the flat path is byte-identical to pre-PR-7).
  for (unsigned pes : {1u, 4u, 8u, 128u}) {
    std::shared_ptr<const GeneratedTrace> g =
        TraceLibrary::instance().get(bench, BenchScale::Small, pes);
    std::string prefix = "pes" + std::to_string(pes) + "/";
    for (Protocol p : kGoldenProtocols) {
      out.push_back({prefix + protocol_name(p),
                     traffic_fields(replay_traffic(
                         paper_cache_config(p, 1024), pes, *g->trace))});
    }
    for (L2Config::Inclusion inc : {L2Config::Inclusion::Inclusive,
                                    L2Config::Inclusion::NonInclusive}) {
      out.push_back(
          {prefix + "hier-" + inclusion_name(inc),
           traffic_fields(replay_traffic(
               paper_hier_config(Protocol::WriteInBroadcast, inc), pes,
               *g->trace))});
    }
    {
      TimedReplay tr(paper_cache_config(Protocol::WriteInBroadcast, 1024), pes,
                     golden_timing());
      tr.replay(*g->trace);
      out.push_back({prefix + "timing", timing_fields(tr.timing())});
    }
    {
      TimedReplay tr(paper_hier_config(), pes, golden_hier_timing());
      tr.replay(*g->trace);
      out.push_back({prefix + "timing-hier", timing_fields(tr.timing())});
    }
  }
  return out;
}

// --- serialization ----------------------------------------------------------

std::string golden_to_json(const std::string& bench,
                           const std::vector<GoldenEntry>& entries) {
  std::string out;
  out += "{\n  \"bench\": \"" + bench + "\",\n  \"scale\": \"small\",\n";
  out += "  \"entries\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += "    \"" + entries[i].key + "\": {";
    for (std::size_t j = 0; j < entries[i].fields.size(); ++j) {
      if (j) out += ", ";
      out += "\"" + entries[i].fields[j].first +
             "\": " + std::to_string(entries[i].fields[j].second);
    }
    out += i + 1 < entries.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

namespace {

/// Minimal scanner for the corpus format: quoted strings, unsigned
/// integers and the punctuation golden_to_json emits. Strings carry no
/// escapes (keys and field names are plain identifiers).
struct JsonScanner {
  const std::string& s;
  std::size_t i = 0;

  explicit JsonScanner(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c))
      fail(std::string("golden corpus: expected '") + c + "' at offset " +
           std::to_string(i));
  }
  std::string string_tok() {
    expect('"');
    std::size_t start = i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') fail("golden corpus: escapes not supported");
      ++i;
    }
    if (i == s.size()) fail("golden corpus: unterminated string");
    return s.substr(start, i++ - start);
  }
  u64 number_tok() {
    skip_ws();
    std::size_t start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == start) fail("golden corpus: expected number at offset " +
                         std::to_string(i));
    u64 v = 0;
    for (std::size_t k = start; k < i; ++k) {
      u64 d = static_cast<u64>(s[k] - '0');
      // Checked before multiplying: a wrap test after the fact misses
      // most overflows (v*10 can wrap far past v).
      if (v > (~u64(0) - d) / 10) fail("golden corpus: number overflow");
      v = v * 10 + d;
    }
    return v;
  }
};

}  // namespace

std::vector<GoldenEntry> golden_from_json(const std::string& text) {
  JsonScanner sc(text);
  sc.expect('{');
  std::vector<GoldenEntry> out;
  bool first_top = true;
  while (!sc.eat('}')) {
    if (!first_top) sc.expect(',');
    first_top = false;
    std::string key = sc.string_tok();
    sc.expect(':');
    if (key == "entries") {
      sc.expect('{');
      bool first_entry = true;
      while (!sc.eat('}')) {
        if (!first_entry) sc.expect(',');
        first_entry = false;
        GoldenEntry e;
        e.key = sc.string_tok();
        sc.expect(':');
        sc.expect('{');
        bool first_field = true;
        while (!sc.eat('}')) {
          if (!first_field) sc.expect(',');
          first_field = false;
          std::string name = sc.string_tok();
          sc.expect(':');
          e.fields.emplace_back(name, sc.number_tok());
        }
        out.push_back(std::move(e));
      }
    } else {
      sc.string_tok();  // "bench"/"scale" metadata: informational
    }
  }
  sc.skip_ws();
  if (sc.i != sc.s.size()) fail("golden corpus: trailing data");
  return out;
}

std::vector<std::string> golden_diff(const std::vector<GoldenEntry>& golden,
                                     const std::vector<GoldenEntry>& live) {
  std::vector<std::string> out;
  std::map<std::string, const GoldenEntry*> live_by_key;
  for (const GoldenEntry& e : live) live_by_key[e.key] = &e;
  std::map<std::string, const GoldenEntry*> golden_by_key;
  for (const GoldenEntry& e : golden) golden_by_key[e.key] = &e;

  for (const GoldenEntry& g : golden) {
    auto it = live_by_key.find(g.key);
    if (it == live_by_key.end()) {
      out.push_back(g.key + ": missing from live run");
      continue;
    }
    std::map<std::string, u64> lf(it->second->fields.begin(),
                                  it->second->fields.end());
    for (const auto& [name, want] : g.fields) {
      auto f = lf.find(name);
      if (f == lf.end()) {
        out.push_back(g.key + ": field " + name + ": missing from live run");
      } else if (f->second != want) {
        out.push_back(g.key + ": field " + name + ": golden " +
                      std::to_string(want) + ", live " +
                      std::to_string(f->second));
      }
    }
  }
  for (const GoldenEntry& e : live) {
    if (!golden_by_key.count(e.key))
      out.push_back(e.key + ": not in golden corpus (run `rapwam_trace golden "
                            "--update` to add it)");
  }
  return out;
}

std::string golden_dir() {
  if (const char* env = std::getenv("RAPWAM_GOLDEN_DIR")) return env;
#ifdef RAPWAM_SOURCE_DIR
  return std::string(RAPWAM_SOURCE_DIR) + "/tests/golden";
#else
  return "tests/golden";
#endif
}

std::string read_text_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) fail("cannot open file for reading: " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) out.append(buf, n);
  if (std::ferror(f.get())) fail("read error: " + path);
  return out;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) fail("cannot open file for writing: " + path);
  if (std::fwrite(text.data(), 1, text.size(), f.get()) != text.size())
    fail("short write: " + path);
}

}  // namespace rapwam
