// Golden-stats regression corpus (docs/DESIGN.md §9).
//
// The simulators' counters are exact integers and the emulator is
// deterministic, so the paper numbers can be pinned bit-for-bit: for
// each of the four paper benchmarks, tests/golden/<bench>.json holds
// the TrafficStats of all five protocols (plus two hierarchy
// configurations) and the TimingStats of the standard timed point, at
// 1/4/8 PEs, small scale. tests/test_golden.cpp replays the same
// configurations live and compares field-by-field, so a refactor that
// silently drifts any number fails with a readable diff; `rapwam_trace
// golden --update` regenerates the corpus when a change is intentional.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cache/hierarchy.h"
#include "timing/timed_replay.h"

namespace rapwam {

/// One golden record: a stable key ("pes4/broadcast(write-in)") and the
/// flattened field name -> value pairs of the stats it pins.
struct GoldenEntry {
  std::string key;
  std::vector<std::pair<std::string, u64>> fields;
};

/// Field-by-field flattenings shared by the corpus and readable diffs.
std::vector<std::pair<std::string, u64>> traffic_fields(const TrafficStats& s);
std::vector<std::pair<std::string, u64>> timing_fields(const TimingStats& t);

/// Recomputes the corpus entries for one benchmark (1/4/8 PEs; all
/// five protocols at the paper's 1024-word point; inclusive and
/// non-inclusive hierarchy points; flat and hierarchy timed points).
/// Traces come from the process-wide TraceLibrary, so repeated calls
/// generate each (bench, pes) stream once.
std::vector<GoldenEntry> golden_compute(const std::string& bench);

/// Serialization to/from the corpus JSON (a flat two-level object; the
/// parser accepts exactly what golden_to_json emits and throws Error on
/// anything malformed).
std::string golden_to_json(const std::string& bench,
                           const std::vector<GoldenEntry>& entries);
std::vector<GoldenEntry> golden_from_json(const std::string& text);

/// Human-readable mismatch lines between a golden corpus and a live
/// recomputation: missing/unexpected keys and per-field differences.
/// Empty means bit-identical.
std::vector<std::string> golden_diff(const std::vector<GoldenEntry>& golden,
                                     const std::vector<GoldenEntry>& live);

/// The corpus directory: $RAPWAM_GOLDEN_DIR if set, else
/// tests/golden/ under the source tree the build was configured from.
std::string golden_dir();

/// Whole-file helpers (throw Error on I/O failure).
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& text);

}  // namespace rapwam
