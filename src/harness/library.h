// A small standard library of list and control predicates, written in
// plain Prolog, that programs may consult alongside their own clauses.
// Kept deliberately free of parallel annotations: callers decide where
// parallelism pays.
#pragma once

namespace rapwam {

inline const char* kPreludeSource = R"PL(
% ---- list basics ---------------------------------------------------
append([], L, L).
append([X|Xs], L, [X|Ys]) :- append(Xs, L, Ys).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

% Reversible: counts a list, or generates one of a given length.
length(L, N) :- nonvar(N), !, len_make(L, N).
length(L, N) :- len_count(L, 0, N).
len_make([], 0) :- !.
len_make([_|T], N) :- N > 0, N1 is N - 1, len_make(T, N1).
len_count([], N, N).
len_count([_|T], A, N) :- A1 is A + 1, len_count(T, A1, N).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], A, A).
reverse_([X|Xs], A, R) :- reverse_(Xs, [X|A], R).

nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).

nth1(N, L, X) :- N0 is N - 1, nth0(N0, L, X).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

% ---- arithmetic over lists ------------------------------------------
sum_list(L, S) :- sum_list_(L, 0, S).
sum_list_([], S, S).
sum_list_([X|Xs], A, S) :- A1 is A + X, sum_list_(Xs, A1, S).

max_list([X|Xs], M) :- max_list_(Xs, X, M).
max_list_([], M, M).
max_list_([X|Xs], A, M) :- A1 is max(A, X), max_list_(Xs, A1, M).

min_list([X|Xs], M) :- min_list_(Xs, X, M).
min_list_([], M, M).
min_list_([X|Xs], A, M) :- A1 is min(A, X), min_list_(Xs, A1, M).

between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).

% ---- sorting (standard order, duplicates kept / removed) ------------
msort(L, S) :- msort_run(L, S).
msort_run([], []) :- !.
msort_run([X], [X]) :- !.
msort_run(L, S) :-
    split_half(L, A, B),
    msort_run(A, SA), msort_run(B, SB),
    merge_ord(SA, SB, S).

split_half(L, A, B) :- length(L, N), H is N // 2, split_at(H, L, A, B).
split_at(0, L, [], L) :- !.
split_at(N, [X|Xs], [X|A], B) :- N1 is N - 1, split_at(N1, Xs, A, B).

merge_ord([], B, B) :- !.
merge_ord(A, [], A) :- !.
merge_ord([X|Xs], [Y|Ys], [X|Zs]) :- X @=< Y, !, merge_ord(Xs, [Y|Ys], Zs).
merge_ord(Xs, [Y|Ys], [Y|Zs]) :- merge_ord(Xs, Ys, Zs).

sort(L, S) :- msort(L, S0), dedup_ord(S0, S).
dedup_ord([], []).
dedup_ord([X], [X]) :- !.
dedup_ord([X,Y|T], R) :- X == Y, !, dedup_ord([Y|T], R).
dedup_ord([X|T], [X|R]) :- dedup_ord(T, R).

% ---- misc ------------------------------------------------------------
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

maplist1(_, []).
maplist1(G, [X|Xs]) :- G1 =.. [G, X], call(G1), maplist1(G, Xs).

% AND-parallel divide and conquer over a list: applies pred/2 to each
% element, splitting the list and running the halves in parallel.
par_map(_, [], []).
par_map(G, [X|Xs], [Y|Ys]) :-
    G1 =.. [G, X, Y], call(G1), par_map_rest(G, Xs, Ys).
par_map_rest(_, [], []).
par_map_rest(G, L, R) :-
    L = [_|_],
    split_half(L, A, B),
    (par_map(G, A, RA) & par_map(G, B, RB)),
    append(RA, RB, R).
)PL";

}  // namespace rapwam
