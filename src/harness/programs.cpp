#include "harness/programs.h"

#include <sstream>

namespace rapwam {

namespace {

/// Deterministic LCG so every run sees identical workloads.
struct Lcg {
  u64 s;
  explicit Lcg(u32 seed) : s(seed * 2654435761u + 1) {}
  u32 next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<u32>(s >> 33);
  }
};

const char* kDerivSrc = R"PL(
% Symbolic differentiation with AND-parallel recursion on subterms.
d(U+V,X,DU+DV)              :- !, (d(U,X,DU) & d(V,X,DV)).
d(U-V,X,DU-DV)              :- !, (d(U,X,DU) & d(V,X,DV)).
d(U*V,X,DU*V+U*DV)          :- !, (d(U,X,DU) & d(V,X,DV)).
d(U/V,X,(DU*V-U*DV)/(V*V))  :- !, (d(U,X,DU) & d(V,X,DV)).
d(-U,X,-DU)                 :- !, d(U,X,DU).
d(exp(U),X,exp(U)*DU)       :- !, d(U,X,DU).
d(log(U),X,DU/U)            :- !, d(U,X,DU).
d(X,X,1) :- !.
d(C,_,0) :- atomic(C).
)PL";

const char* kTakSrc = R"PL(
% Takeuchi's function; the three recursive calls are independent
% (inputs ground, outputs distinct fresh variables).
tak(X,Y,Z,A) :- X =< Y, !, A = Z.
tak(X,Y,Z,A) :-
    X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
    (tak(X1,Y,Z,A1) & tak(Y1,Z,X,A2) & tak(Z1,X,Y,A3)),
    tak(A1,A2,A3,A).
)PL";

const char* kQsortSrc = R"PL(
% Quicksort with difference lists; the two recursive calls share only
% the open tail R1, which at most one of them binds (non-strict
% independence), so they run in parallel.
qsort(L,R) :- qs(L,R,[]).
qs([],R,R).
qs([X|L],R,R0) :-
    part(L,X,L1,L2),
    (qs(L1,R,[X|R1]) & qs(L2,R1,R0)).
part([],_,[],[]).
part([E|R],C,[E|L1],L2) :- E =< C, !, part(R,C,L1,L2).
part([E|R],C,L1,[E|L2]) :- part(R,C,L1,L2).
)PL";

const char* kMatrixSrc = R"PL(
% Naive matrix multiplication, rows in parallel. The second operand is
% supplied already transposed (list of columns).
mmul([],_,[]).
mmul([R|Rs],Cs,[X|Xs]) :- (rowmul(R,Cs,X) & mmul(Rs,Cs,Xs)).
rowmul(_,[],[]).
rowmul(R,[C|Cs],[X|Xs]) :- dot(R,C,0,X), rowmul(R,Cs,Xs).
dot([],[],A,A).
dot([X|Xs],[Y|Ys],A0,A) :- A1 is A0 + X*Y, dot(Xs,Ys,A1,A).
)PL";

const char* kQueensSrc = R"PL(
% All-solutions N-queens (heavy backtracking; sequential).
queens(N,Qs) :- range(1,N,Ns), place(Ns,[],Qs).
place([],Qs,Qs).
place(Un,Safe,Qs) :-
    selectq(Un,Un1,Q),
    \+ attack(Q,Safe),
    place(Un1,[Q|Safe],Qs).
attack(X,Xs) :- att(X,1,Xs).
att(X,N,[Y|_]) :- X =:= Y + N.
att(X,N,[Y|_]) :- X =:= Y - N.
att(X,N,[_|Ys]) :- N1 is N + 1, att(X,N1,Ys).
selectq([X|Xs],Xs,X).
selectq([Y|Ys],[Y|Zs],X) :- selectq(Ys,Zs,X).
range(N,N,[N]) :- !.
range(M,N,[M|Ns]) :- M < N, M1 is M + 1, range(M1,N,Ns).
)PL";

const char* kNrevSrc = R"PL(
% Naive reverse (sequential list workhorse).
nrev([],[]).
nrev([X|Xs],R) :- nrev(Xs,R1), app(R1,[X],R).
app([],L,L).
app([X|Xs],L,[X|Ys]) :- app(Xs,L,Ys).
)PL";

std::string strip_cge_source(std::string src) { return src; }

}  // namespace

std::string gen_int_list(int n, u32 seed) {
  Lcg r(seed);
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < n; ++i) {
    if (i) os << ",";
    os << (r.next() % 10000);
  }
  os << "]";
  return os.str();
}

std::string gen_matrix_text(int rows, int cols, u32 seed) {
  Lcg r(seed);
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < rows; ++i) {
    if (i) os << ",";
    os << "[";
    for (int j = 0; j < cols; ++j) {
      if (j) os << ",";
      os << (r.next() % 100);
    }
    os << "]";
  }
  os << "]";
  return os.str();
}

namespace {
void gen_expr(Lcg& r, int nodes, std::ostringstream& os) {
  if (nodes <= 0) {
    // Leaf: the variable x (differentiation target) or a constant.
    if (r.next() % 3 == 0) os << (r.next() % 9 + 1);
    else os << "x";
    return;
  }
  static const char* ops[] = {"+", "-", "*", "+", "*"};
  const char* op = ops[r.next() % 5];
  int left = (nodes - 1) / 2;
  int right = nodes - 1 - left;
  os << "(";
  gen_expr(r, left, os);
  os << op;
  gen_expr(r, right, os);
  os << ")";
}
}  // namespace

std::string gen_deriv_expr(int nodes, u32 seed) {
  Lcg r(seed);
  std::ostringstream os;
  gen_expr(r, nodes, os);
  return os.str();
}

std::vector<std::string> small_bench_names() {
  return {"deriv", "tak", "qsort", "matrix"};
}

BenchProgram bench_program(const std::string& name, BenchScale scale) {
  bool paper = scale == BenchScale::Paper;
  if (name == "deriv") {
    int nodes = paper ? 950 : 15;
    return {"deriv", kDerivSrc, "d(" + gen_deriv_expr(nodes, 42) + ",x,D)"};
  }
  if (name == "tak") {
    return {"tak", kTakSrc, paper ? "tak(12,7,3,A)" : "tak(8,5,2,A)"};
  }
  if (name == "qsort") {
    int n = paper ? 900 : 30;
    return {"qsort", kQsortSrc, "qsort(" + gen_int_list(n, 7) + ",R)"};
  }
  if (name == "matrix") {
    int n = paper ? 16 : 4;
    return {"matrix", kMatrixSrc,
            "mmul(" + gen_matrix_text(n, n, 3) + "," + gen_matrix_text(n, n, 5) + ",R)"};
  }
  fail("unknown benchmark: " + name);
}

std::vector<BenchProgram> large_bench_suite(BenchScale scale) {
  bool paper = scale == BenchScale::Paper;
  std::vector<BenchProgram> out;
  out.push_back({"queens", kQueensSrc, paper ? "queens(8,Q)" : "queens(5,Q)"});
  out.push_back({"nrev", kNrevSrc,
                 "nrev(" + gen_int_list(paper ? 220 : 25, 11) + ",R)"});
  out.push_back({"qsort_big", strip_cge_source(kQsortSrc),
                 "qsort(" + gen_int_list(paper ? 1200 : 40, 13) + ",R)"});
  out.push_back({"deriv_big", kDerivSrc,
                 "d(" + gen_deriv_expr(paper ? 320 : 20, 17) + ",x,D)"});
  return out;
}

}  // namespace rapwam
