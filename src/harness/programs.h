// The paper's benchmark programs, written in annotated (CGE) Prolog,
// plus deterministic workload generators for their input data and the
// "large sequential suite" substituted for Tick's large benchmarks in
// Table 3 (see docs/DESIGN.md §4).
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace rapwam {

struct BenchProgram {
  std::string name;
  std::string source;  ///< annotated Prolog text
  std::string goal;    ///< query to run (without "?-")
};

/// Workload scale. Paper sizes are tuned so instruction counts land in
/// the same order of magnitude as Table 2; Small keeps tests fast.
enum class BenchScale { Small, Paper };

/// The four benchmarks of Table 2: "deriv", "tak", "qsort", "matrix".
BenchProgram bench_program(const std::string& name, BenchScale scale);
std::vector<std::string> small_bench_names();

/// Sequential programs standing in for the "large Prolog benchmarks"
/// of Table 3 (all-solutions queens, naive reverse, big quicksort, big
/// symbolic differentiation).
std::vector<BenchProgram> large_bench_suite(BenchScale scale);

// -- deterministic input generators (exposed for tests) -------------------

/// Arithmetic expression in x with ~`nodes` binary operators.
std::string gen_deriv_expr(int nodes, u32 seed);
/// "[a1,a2,...]" of pseudo-random ints in [0, 10000).
std::string gen_int_list(int n, u32 seed);
/// "[[...],[...],...]" rows x cols matrix of small ints.
std::string gen_matrix_text(int rows, int cols, u32 seed);

}  // namespace rapwam
