#include "harness/reports.h"

#include <map>

#include "cache/queueing.h"
#include "support/stats.h"

namespace rapwam {

TextTable table1_report() {
  TextTable t("Table 1: Characteristics of RAP-WAM Storage Objects");
  t.header({"Frame type", "area", "WAM?", "lock", "locality"});
  for (const StorageTraits& s : storage_table()) {
    t.row({std::string(obj_class_name(s.cls)), std::string(area_name(s.area)),
           s.in_wam ? "yes" : "no", s.locked ? "yes" : "no",
           std::string(locality_name(s.locality))});
  }
  return t;
}

TextTable table2_report(const ReportOptions& opt) {
  TextTable t("Table 2: Statistics for the Benchmarks Used (" +
              std::to_string(opt.table2_pes) + " processors)");
  std::vector<std::string> names = small_bench_names();
  std::vector<std::string> hdr = {"Parameter"};
  hdr.insert(hdr.end(), names.begin(), names.end());
  t.header(hdr);

  std::vector<std::string> instr{"Instructions executed"};
  std::vector<std::string> refs_rap{"References (RAP-WAM)"};
  std::vector<std::string> refs_wam{"References (WAM)"};
  std::vector<std::string> par{"Goals actually in //"};
  for (const std::string& n : names) {
    BenchProgram bp = bench_program(n, opt.scale);
    BenchRun rap = run_parallel(bp, opt.table2_pes, /*want_trace=*/false);
    BenchRun wam = run_wam(bp, /*want_trace=*/false);
    instr.push_back(std::to_string(rap.result.stats.instructions));
    refs_rap.push_back(std::to_string(rap.result.stats.work_refs()));
    refs_wam.push_back(std::to_string(wam.result.stats.work_refs()));
    par.push_back(std::to_string(rap.result.stats.goals_stolen));
  }
  t.row(instr);
  t.row(refs_rap);
  t.row(refs_wam);
  t.row(par);
  return t;
}

TextTable fig2_report(const ReportOptions& opt) {
  TextTable t("Figure 2: RAP-WAM Overheads for \"deriv\" (work as % of WAM work)");
  t.header({"PEs", "work refs", "% of WAM work", "overhead %", "cycles", "speedup"});
  BenchProgram bp = bench_program("deriv", opt.scale);
  BenchRun wam = run_wam(bp, /*want_trace=*/false);
  double wam_work = static_cast<double>(wam.result.stats.work_refs());
  double wam_cycles = static_cast<double>(wam.result.stats.cycles);
  for (unsigned pes : opt.fig2_pes) {
    BenchRun rap = run_parallel(bp, pes, /*want_trace=*/false);
    double work = static_cast<double>(rap.result.stats.work_refs());
    double cycles = static_cast<double>(rap.result.stats.cycles);
    t.row({std::to_string(pes), std::to_string(rap.result.stats.work_refs()),
           fmt(100.0 * work / wam_work, 1), fmt(100.0 * (work - wam_work) / wam_work, 1),
           std::to_string(rap.result.stats.cycles), fmt(wam_cycles / cycles, 2)});
  }
  return t;
}

std::vector<TextTable> fig4_report(const ReportOptions& opt) {
  // Collect traces: benchmark x PE count.
  std::vector<std::string> names = small_bench_names();
  std::map<std::pair<std::string, unsigned>, std::shared_ptr<TraceBuffer>> traces;
  for (const std::string& n : names) {
    BenchProgram bp = bench_program(n, opt.scale);
    for (unsigned pes : opt.fig4_pes) {
      BenchRun r = run_parallel(bp, pes, /*want_trace=*/true);
      traces[{n, pes}] = r.trace;
    }
  }

  const Protocol protos[] = {Protocol::WriteInBroadcast, Protocol::Hybrid,
                             Protocol::WriteThrough};

  // Build the sweep: one simulation per (protocol, size, pes, bench).
  ThreadPool pool(opt.pool_threads);
  std::vector<SweepPoint> points;
  points.reserve(std::size(protos) * opt.fig4_sizes.size() * opt.fig4_pes.size() *
                 names.size());
  for (Protocol p : protos) {
    for (u32 sz : opt.fig4_sizes) {
      for (unsigned pes : opt.fig4_pes) {
        for (const std::string& n : names) {
          SweepPoint sp;
          sp.cfg.protocol = p;
          sp.cfg.size_words = sz;
          sp.cfg.line_words = 4;
          sp.cfg.write_allocate = paper_write_allocate(p, sz);
          sp.num_pes = pes;
          sp.trace = &traces.at({n, pes})->packed();
          points.push_back(sp);
        }
      }
    }
  }
  std::vector<SweepResult> results = run_sweep(pool, points);

  // Average traffic ratio over benchmarks for each (proto, size, pes).
  std::map<std::tuple<Protocol, u32, unsigned>, std::vector<double>> ratios;
  for (const SweepResult& r : results) {
    ratios[{r.point.cfg.protocol, r.point.cfg.size_words, r.point.num_pes}].push_back(
        r.stats.traffic_ratio());
  }

  std::vector<TextTable> out;
  for (Protocol p : protos) {
    TextTable t("Figure 4: Traffic of Coherency Schemes — " + protocol_name(p) +
                " (mean traffic ratio over benchmarks; 4-word lines)");
    std::vector<std::string> hdr = {"cache size (words)"};
    for (unsigned pes : opt.fig4_pes) hdr.push_back(std::to_string(pes) + "PE");
    t.header(hdr);
    for (u32 sz : opt.fig4_sizes) {
      std::vector<std::string> row = {std::to_string(sz)};
      for (unsigned pes : opt.fig4_pes)
        row.push_back(fmt(mean(ratios.at({p, sz, pes})), 4));
      t.row(row);
    }
    out.push_back(std::move(t));
  }
  return out;
}

namespace {
double sequential_traffic_ratio(const std::vector<u64>& trace, u32 size_words) {
  CacheConfig cfg;
  cfg.protocol = Protocol::Copyback;
  cfg.size_words = size_words;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return replay_traffic(cfg, 1, trace).traffic_ratio();
}
}  // namespace

TextTable table3_report(const ReportOptions& opt) {
  TextTable t("Table 3: Fit of Small Benchmarks to Large Benchmarks "
              "(sequential copyback traffic ratios)");
  std::vector<std::string> hdr = {"cache size (words)", "Etr", "sigma_tr"};
  const std::vector<std::string> smalls = {"deriv", "tak", "qsort"};
  for (const std::string& s : smalls) hdr.push_back("(tr-Etr)/sigma " + s);
  t.header(hdr);

  // Large suite traces (sequential, exhaustive for queens).
  std::vector<std::vector<u64>> large_traces;
  for (const BenchProgram& bp : large_bench_suite(opt.scale)) {
    BenchRun r = run_wam(bp, /*want_trace=*/true, /*max_solutions=*/100000);
    large_traces.push_back(r.trace->packed());
  }
  // Small benchmark traces (sequential).
  std::vector<std::vector<u64>> small_traces;
  for (const std::string& n : smalls) {
    BenchRun r = run_wam(bench_program(n, opt.scale), /*want_trace=*/true);
    small_traces.push_back(r.trace->packed());
  }

  for (u32 sz : opt.table3_sizes) {
    std::vector<double> large_tr;
    for (const auto& tr : large_traces)
      large_tr.push_back(sequential_traffic_ratio(tr, sz));
    double e = mean(large_tr);
    double s = stddev(large_tr);
    std::vector<std::string> row = {std::to_string(sz), fmt(e, 4), fmt(s, 4)};
    for (const auto& tr : small_traces) {
      double r = sequential_traffic_ratio(tr, sz);
      row.push_back(s > 0 ? fmt((r - e) / s, 2) : "n/a");
    }
    t.row(row);
  }
  return t;
}

TextTable mlips_report(const ReportOptions& opt) {
  TextTable t("Section 3.3: 2-MLIPS back-of-the-envelope, from measured numbers");
  t.header({"quantity", "value"});

  // Aggregate instruction/reference ratios over the four benchmarks.
  double instr = 0, calls = 0, refs = 0;
  std::shared_ptr<TraceBuffer> trace8;
  for (const std::string& n : small_bench_names()) {
    BenchProgram bp = bench_program(n, opt.scale);
    BenchRun r = run_parallel(bp, 8, n == "qsort");  // one trace for capture rate
    instr += static_cast<double>(r.result.stats.instructions);
    calls += static_cast<double>(r.result.stats.calls);
    refs += static_cast<double>(r.result.stats.work_refs());
    if (r.trace) trace8 = r.trace;
  }
  double instr_per_li = instr / calls;
  double refs_per_instr = refs / instr;

  double traffic = replay_traffic(paper_cache_config(Protocol::WriteInBroadcast), 8,
                                  trace8->packed())
                       .traffic_ratio();

  const double mlips = 2e6;
  double bytes_per_li = instr_per_li * refs_per_instr * 4.0;
  double demand = mlips * bytes_per_li;          // bytes/sec at 2 MLIPS
  double bus = demand * traffic;                 // after cache capture

  t.row({"instructions / inference (paper: ~15)", fmt(instr_per_li, 2)});
  t.row({"references / instruction (paper: ~3)", fmt(refs_per_instr, 2)});
  t.row({"bytes / inference (paper: ~180)", fmt(bytes_per_li, 1)});
  t.row({"demand bandwidth @2 MLIPS (paper: 360 MB/s)",
         fmt(demand / 1e6, 1) + " MB/s"});
  t.row({"traffic ratio, 8PE 1024w write-in bcast (paper: <0.3)", fmt(traffic, 3)});
  t.row({"traffic captured by caches (paper: >70%)", fmt_pct(1.0 - traffic, 1)});
  t.row({"required bus bandwidth (paper: ~108 MB/s)", fmt(bus / 1e6, 1) + " MB/s"});
  return t;
}

std::vector<TextTable> timing_report(const ReportOptions& opt) {
  const double s = opt.timing.effective_service();
  std::vector<TextTable> out;
  for (const std::string& name : small_bench_names()) {
    TextTable t("Timed replay vs analytic M/D/1 — " + name +
                " (write-in broadcast, 1024w, s=" + fmt(s, 2) + " cycles/word, wbuf=" +
                std::to_string(opt.timing.write_buffer_depth) + ")");
    t.header({"PEs", "traffic", "speedup", "efficiency", "bus util",
              "M/D/1 speedup", "M/D/1 eff"});
    BenchProgram bp = bench_program(name, opt.scale);
    std::vector<std::pair<unsigned, TimingStats>> runs;
    for (unsigned pes : opt.timing_pes) {
      BenchRun r = run_parallel(bp, pes, /*want_trace=*/true);
      TimedReplay tr(paper_cache_config(Protocol::WriteInBroadcast), pes, opt.timing);
      tr.replay(r.trace->packed());
      TimingStats ts = tr.timing();
      runs.emplace_back(pes, ts);
      BusEstimate e = bus_contention(pes, tr.traffic().traffic_ratio(), BusParams{s});
      t.row({std::to_string(pes), fmt(tr.traffic().traffic_ratio(), 3),
             fmt(ts.speedup(), 2), fmt(ts.efficiency(), 3),
             fmt(ts.bus_utilization(), 3), fmt(e.aggregate_speedup, 2),
             fmt(e.pe_efficiency, 3)});
    }
    unsigned sat = saturation_pe_count(runs);
    t.row({"sat", sat ? std::to_string(sat) + " PEs" : "none", "", "", "", "", ""});
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace rapwam
