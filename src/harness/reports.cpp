#include "harness/reports.h"

#include <map>

#include "cache/queueing.h"
#include "harness/trace_lib.h"
#include "support/stats.h"

namespace rapwam {

TextTable table1_report() {
  TextTable t("Table 1: Characteristics of RAP-WAM Storage Objects");
  t.header({"Frame type", "area", "WAM?", "lock", "locality"});
  for (const StorageTraits& s : storage_table()) {
    t.row({std::string(obj_class_name(s.cls)), std::string(area_name(s.area)),
           s.in_wam ? "yes" : "no", s.locked ? "yes" : "no",
           std::string(locality_name(s.locality))});
  }
  return t;
}

TextTable table2_report(const ReportOptions& opt) {
  TextTable t("Table 2: Statistics for the Benchmarks Used (" +
              std::to_string(opt.table2_pes) + " processors)");
  std::vector<std::string> names = small_bench_names();
  std::vector<std::string> hdr = {"Parameter"};
  hdr.insert(hdr.end(), names.begin(), names.end());
  t.header(hdr);

  std::vector<std::string> instr{"Instructions executed"};
  std::vector<std::string> refs_rap{"References (RAP-WAM)"};
  std::vector<std::string> refs_wam{"References (WAM)"};
  std::vector<std::string> par{"Goals actually in //"};
  for (const std::string& n : names) {
    BenchProgram bp = bench_program(n, opt.scale);
    BenchRun rap = run_parallel(bp, opt.table2_pes, /*want_trace=*/false);
    BenchRun wam = run_wam(bp, /*want_trace=*/false);
    instr.push_back(std::to_string(rap.result.stats.instructions));
    refs_rap.push_back(std::to_string(rap.result.stats.work_refs()));
    refs_wam.push_back(std::to_string(wam.result.stats.work_refs()));
    par.push_back(std::to_string(rap.result.stats.goals_stolen));
  }
  t.row(instr);
  t.row(refs_rap);
  t.row(refs_wam);
  t.row(par);
  return t;
}

TextTable fig2_report(const ReportOptions& opt) {
  TextTable t("Figure 2: RAP-WAM Overheads for \"deriv\" (work as % of WAM work)");
  t.header({"PEs", "work refs", "% of WAM work", "overhead %", "cycles", "speedup"});
  BenchProgram bp = bench_program("deriv", opt.scale);
  BenchRun wam = run_wam(bp, /*want_trace=*/false);
  double wam_work = static_cast<double>(wam.result.stats.work_refs());
  double wam_cycles = static_cast<double>(wam.result.stats.cycles);
  for (unsigned pes : opt.fig2_pes) {
    BenchRun rap = run_parallel(bp, pes, /*want_trace=*/false);
    double work = static_cast<double>(rap.result.stats.work_refs());
    double cycles = static_cast<double>(rap.result.stats.cycles);
    t.row({std::to_string(pes), std::to_string(rap.result.stats.work_refs()),
           fmt(100.0 * work / wam_work, 1), fmt(100.0 * (work - wam_work) / wam_work, 1),
           std::to_string(rap.result.stats.cycles), fmt(wam_cycles / cycles, 2)});
  }
  return t;
}

namespace {
/// Figure 4's three protocol panels, in output order.
constexpr Protocol kFig4Protos[] = {Protocol::WriteInBroadcast, Protocol::Hybrid,
                                    Protocol::WriteThrough};

/// The Figure 4 sweep grid for one (benchmark, PE count) trace: one
/// point per (protocol, size). The trace pointer is left for the
/// caller (chunk storage in fanout mode, none in streaming mode).
std::vector<SweepPoint> fig4_points(const ReportOptions& opt, unsigned pes) {
  std::vector<SweepPoint> points;
  points.reserve(std::size(kFig4Protos) * opt.fig4_sizes.size());
  for (Protocol p : kFig4Protos) {
    for (u32 sz : opt.fig4_sizes) {
      SweepPoint sp;
      sp.cfg.protocol = p;
      sp.cfg.size_words = sz;
      sp.cfg.line_words = 4;
      sp.cfg.write_allocate = paper_write_allocate(p, sz);
      sp.num_pes = pes;
      points.push_back(sp);
    }
  }
  return points;
}
}  // namespace

std::vector<TextTable> fig4_report(const ReportOptions& opt) {
  std::vector<std::string> names = small_bench_names();
  std::vector<SweepResult> results;

  if (opt.fig4_streaming) {
    // Streaming: per (benchmark, PE count), the emulator generates the
    // trace while every (protocol, size) point replays it concurrently
    // from a bounded chunk window — no trace is ever materialized.
    for (const std::string& n : names) {
      BenchProgram bp = bench_program(n, opt.scale);
      for (unsigned pes : opt.fig4_pes) {
        std::vector<SweepResult> rs = run_sweep_streaming(
            fig4_points(opt, pes),
            [&](TraceSink& sink) { run_into(bp, pes, /*strip=*/false, &sink); },
            /*busy_only=*/true, opt.stream_window);
        results.insert(results.end(), rs.begin(), rs.end());
      }
    }
  } else {
    // Generate-once fan-out: each (benchmark, PE count) trace is
    // generated exactly once — concurrently, on the pool — into shared
    // immutable chunk storage, then every (protocol, size) point
    // replays the shared chunks.
    ThreadPool pool(opt.pool_threads);
    TraceLibrary& lib = TraceLibrary::instance();
    lib.prefetch(pool, names, opt.fig4_pes, opt.scale);
    std::vector<std::shared_ptr<const GeneratedTrace>> keepalive;
    std::vector<SweepPoint> points;
    for (const std::string& n : names) {
      for (unsigned pes : opt.fig4_pes) {
        std::shared_ptr<const GeneratedTrace> t = lib.get(n, opt.scale, pes);
        keepalive.push_back(t);
        for (SweepPoint sp : fig4_points(opt, pes)) {
          sp.chunks = t->trace.get();
          points.push_back(sp);
        }
      }
    }
    results = run_sweep(pool, points);
  }

  // Average traffic ratio over benchmarks for each (proto, size, pes).
  std::map<std::tuple<Protocol, u32, unsigned>, std::vector<double>> ratios;
  for (const SweepResult& r : results) {
    ratios[{r.point.cfg.protocol, r.point.cfg.size_words, r.point.num_pes}].push_back(
        r.stats.traffic_ratio());
  }

  std::vector<TextTable> out;
  for (Protocol p : kFig4Protos) {
    TextTable t("Figure 4: Traffic of Coherency Schemes — " + protocol_name(p) +
                " (mean traffic ratio over benchmarks; 4-word lines)");
    std::vector<std::string> hdr = {"cache size (words)"};
    for (unsigned pes : opt.fig4_pes) hdr.push_back(std::to_string(pes) + "PE");
    t.header(hdr);
    for (u32 sz : opt.fig4_sizes) {
      std::vector<std::string> row = {std::to_string(sz)};
      for (unsigned pes : opt.fig4_pes)
        row.push_back(fmt(mean(ratios.at({p, sz, pes})), 4));
      t.row(row);
    }
    out.push_back(std::move(t));
  }
  return out;
}

TextTable l2_report(const ReportOptions& opt) {
  std::vector<std::string> names = small_bench_names();
  ThreadPool pool(opt.pool_threads);
  TraceLibrary& lib = TraceLibrary::instance();
  lib.prefetch(pool, names, {opt.l2_pes}, opt.scale);

  // Config 0 is the flat baseline; then (size × inclusion) pairs.
  std::vector<CacheConfig> cfgs;
  CacheConfig base = paper_cache_config(Protocol::WriteInBroadcast, 1024);
  cfgs.push_back(base);
  for (u32 sz : opt.l2_sizes) {
    for (L2Config::Inclusion inc : {L2Config::Inclusion::Inclusive,
                                    L2Config::Inclusion::NonInclusive}) {
      CacheConfig c = base;
      c.l2.size_words = sz;
      c.l2.ways = opt.l2_ways;
      c.l2.inclusion = inc;
      cfgs.push_back(c);
    }
  }

  std::vector<std::shared_ptr<const GeneratedTrace>> keepalive;
  std::vector<SweepPoint> points;
  points.reserve(names.size() * cfgs.size());
  for (const std::string& n : names) {
    std::shared_ptr<const GeneratedTrace> t = lib.get(n, opt.scale, opt.l2_pes);
    keepalive.push_back(t);
    for (const CacheConfig& c : cfgs) {
      SweepPoint sp;
      sp.cfg = c;
      sp.num_pes = opt.l2_pes;
      sp.chunks = t->trace.get();
      points.push_back(sp);
    }
  }
  std::vector<SweepResult> results = run_sweep(pool, points);

  // Mean each quantity over the benchmarks, per config (results are in
  // input order: bench-major, config-minor).
  struct Agg {
    std::vector<double> bus, mem, l2_miss, backinv;
  };
  std::vector<Agg> agg(cfgs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrafficStats& s = results[i].stats;
    Agg& a = agg[i % cfgs.size()];
    a.bus.push_back(s.traffic_ratio());
    if (results[i].point.cfg.l2.enabled()) {
      a.mem.push_back(s.mem_traffic_ratio());
      a.l2_miss.push_back(s.l2_miss_ratio());
      a.backinv.push_back(1000.0 * static_cast<double>(s.l2_back_invalidations) /
                          static_cast<double>(s.refs));
    } else {
      // The flat model's memory traffic is everything on the bus except
      // address-only invalidation broadcasts.
      a.mem.push_back(static_cast<double>(s.bus_words - s.invalidations) /
                      static_cast<double>(s.refs));
    }
  }

  TextTable t("L2 sweep: shared L2 under " + std::to_string(opt.l2_pes) +
              " PEs with 1024-word write-in-broadcast L1s (mean over "
              "benchmarks; " +
              std::to_string(opt.l2_ways) + "-way L2, 4-word lines)");
  t.header({"L2 (words)", "bus tr", "mem tr incl", "L2 miss incl",
            "back-inv/Kref", "mem tr non-incl", "L2 miss non-incl"});
  t.row({"none", fmt(mean(agg[0].bus), 4), fmt(mean(agg[0].mem), 4), "-", "-",
         fmt(mean(agg[0].mem), 4), "-"});
  for (std::size_t i = 0; i < opt.l2_sizes.size(); ++i) {
    const Agg& inc = agg[1 + 2 * i];
    const Agg& non = agg[2 + 2 * i];
    // Bus traffic only differs between policies via back-invalidation;
    // quote the inclusive number (the non-inclusive one equals the
    // flat baseline by construction).
    t.row({std::to_string(opt.l2_sizes[i]), fmt(mean(inc.bus), 4),
           fmt(mean(inc.mem), 4), fmt(mean(inc.l2_miss), 4),
           fmt(mean(inc.backinv), 2), fmt(mean(non.mem), 4),
           fmt(mean(non.l2_miss), 4)});
  }
  return t;
}

namespace {
double sequential_traffic_ratio(const ChunkedTrace& trace, u32 size_words) {
  CacheConfig cfg;
  cfg.protocol = Protocol::Copyback;
  cfg.size_words = size_words;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return replay_traffic(cfg, 1, trace).traffic_ratio();
}
}  // namespace

TextTable table3_report(const ReportOptions& opt) {
  TextTable t("Table 3: Fit of Small Benchmarks to Large Benchmarks "
              "(sequential copyback traffic ratios)");
  std::vector<std::string> hdr = {"cache size (words)", "Etr", "sigma_tr"};
  const std::vector<std::string> smalls = {"deriv", "tak", "qsort"};
  for (const std::string& s : smalls) hdr.push_back("(tr-Etr)/sigma " + s);
  t.header(hdr);

  // Large suite traces (sequential, exhaustive for queens) — streamed
  // into chunk storage, never flattened.
  std::vector<std::shared_ptr<const ChunkedTrace>> large_traces;
  for (const BenchProgram& bp : large_bench_suite(opt.scale)) {
    ChunkingSink sink(/*busy_only=*/true);
    run_into(bp, 1, /*strip=*/true, &sink, /*max_solutions=*/100000);
    large_traces.push_back(sink.take());
  }
  // Small benchmark traces (sequential), shared via the library.
  std::vector<std::shared_ptr<const GeneratedTrace>> small_traces;
  for (const std::string& n : smalls)
    small_traces.push_back(
        TraceLibrary::instance().get(n, opt.scale, 1, /*wam=*/true));

  for (u32 sz : opt.table3_sizes) {
    std::vector<double> large_tr;
    for (const auto& tr : large_traces)
      large_tr.push_back(sequential_traffic_ratio(*tr, sz));
    double e = mean(large_tr);
    double s = stddev(large_tr);
    std::vector<std::string> row = {std::to_string(sz), fmt(e, 4), fmt(s, 4)};
    for (const auto& tr : small_traces) {
      double r = sequential_traffic_ratio(*tr->trace, sz);
      row.push_back(s > 0 ? fmt((r - e) / s, 2) : "n/a");
    }
    t.row(row);
  }
  return t;
}

MlipsNumbers mlips_numbers(const ReportOptions& opt) {
  // Aggregate instruction/reference ratios over the four benchmarks;
  // every trace comes from the generate-once library (one emulator run
  // per benchmark in the whole process, shared with Figure 4 etc).
  TraceLibrary& lib = TraceLibrary::instance();
  double instr = 0, calls = 0, refs = 0;
  std::shared_ptr<const GeneratedTrace> trace8;
  for (const std::string& n : small_bench_names()) {
    std::shared_ptr<const GeneratedTrace> g = lib.get(n, opt.scale, 8);
    instr += static_cast<double>(g->stats.instructions);
    calls += static_cast<double>(g->stats.calls);
    refs += static_cast<double>(g->stats.work_refs());
    if (n == "qsort") trace8 = g;  // one trace for the capture rate
  }

  MlipsNumbers out;
  out.instr_per_inference = instr / calls;
  out.refs_per_instr = refs / instr;
  out.traffic_ratio =
      replay_traffic(paper_cache_config(Protocol::WriteInBroadcast), 8,
                     *trace8->trace)
          .traffic_ratio();

  const double mlips = 2e6;
  out.bytes_per_inference = out.instr_per_inference * out.refs_per_instr * 4.0;
  double demand = mlips * out.bytes_per_inference;  // bytes/sec at 2 MLIPS
  out.demand_mb_per_sec = demand / 1e6;
  out.bus_mb_per_sec = demand * out.traffic_ratio / 1e6;
  return out;
}

TextTable mlips_report(const ReportOptions& opt) {
  return mlips_report(mlips_numbers(opt));
}

TextTable mlips_report(const MlipsNumbers& m) {
  TextTable t("Section 3.3: 2-MLIPS back-of-the-envelope, from measured numbers");
  t.header({"quantity", "value"});
  t.row({"instructions / inference (paper: ~15)", fmt(m.instr_per_inference, 2)});
  t.row({"references / instruction (paper: ~3)", fmt(m.refs_per_instr, 2)});
  t.row({"bytes / inference (paper: ~180)", fmt(m.bytes_per_inference, 1)});
  t.row({"demand bandwidth @2 MLIPS (paper: 360 MB/s)",
         fmt(m.demand_mb_per_sec, 1) + " MB/s"});
  t.row({"traffic ratio, 8PE 1024w write-in bcast (paper: <0.3)",
         fmt(m.traffic_ratio, 3)});
  t.row({"traffic captured by caches (paper: >70%)",
         fmt_pct(1.0 - m.traffic_ratio, 1)});
  t.row({"required bus bandwidth (paper: ~108 MB/s)",
         fmt(m.bus_mb_per_sec, 1) + " MB/s"});
  return t;
}

std::vector<TextTable> timing_report(const ReportOptions& opt) {
  const double s = opt.timing.effective_service();
  std::vector<TextTable> out;
  for (const std::string& name : small_bench_names()) {
    TextTable t("Timed replay vs analytic M/D/1 — " + name +
                " (write-in broadcast, 1024w, s=" + fmt(s, 2) + " cycles/word, wbuf=" +
                std::to_string(opt.timing.write_buffer_depth) + ")");
    t.header({"PEs", "traffic", "speedup", "efficiency", "bus util",
              "M/D/1 speedup", "M/D/1 eff"});
    std::vector<std::pair<unsigned, TimingStats>> runs;
    for (unsigned pes : opt.timing_pes) {
      std::shared_ptr<const GeneratedTrace> g =
          TraceLibrary::instance().get(name, opt.scale, pes);
      TimedReplay tr(paper_cache_config(Protocol::WriteInBroadcast), pes, opt.timing);
      tr.replay(*g->trace);
      TimingStats ts = tr.timing();
      runs.emplace_back(pes, ts);
      BusEstimate e = bus_contention(pes, tr.traffic().traffic_ratio(), BusParams{s});
      t.row({std::to_string(pes), fmt(tr.traffic().traffic_ratio(), 3),
             fmt(ts.speedup(), 2), fmt(ts.efficiency(), 3),
             fmt(ts.bus_utilization(), 3), fmt(e.aggregate_speedup, 2),
             fmt(e.pe_efficiency, 3)});
    }
    unsigned sat = saturation_pe_count(runs);
    t.row({"sat", sat ? std::to_string(sat) + " PEs" : "none", "", "", "", "", ""});
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace rapwam
