// Report generators: one function per table/figure of the paper.
// Each returns TextTables so the bench binaries, tests and examples
// share the exact same measurement code.
#pragma once

#include "cache/sweep.h"
#include "harness/runner.h"
#include "support/table.h"
#include "timing/timed_replay.h"

namespace rapwam {

struct ReportOptions {
  BenchScale scale = BenchScale::Paper;
  unsigned table2_pes = 8;
  std::vector<unsigned> fig2_pes = {1, 2, 4, 6, 8, 12, 16, 24, 32, 40};
  std::vector<unsigned> fig4_pes = {1, 2, 4, 8};
  std::vector<u32> fig4_sizes = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
  std::vector<u32> table3_sizes = {512, 1024};
  unsigned pool_threads = 0;  ///< 0 = hardware concurrency
  /// Figure 4 in streaming mode: replay consumers run concurrently
  /// with trace generation over a bounded chunk window instead of
  /// fanning out from stored chunk storage. Same numbers, O(window)
  /// peak trace memory (docs/DESIGN.md §8).
  bool fig4_streaming = false;
  std::size_t stream_window = 8;  ///< chunks in flight in streaming mode
  /// Timed-replay report: PE counts and the bus being modelled. The
  /// default (1 cycle/word, 2-way interleave, 4-deep write buffers)
  /// matches the analytic model's s=0.5 "fast interleaved bus".
  std::vector<unsigned> timing_pes = {1, 2, 4, 8, 16};
  TimingParams timing = {1, 1, 2, 4};
  /// L2 sweep (l2_report): shared-L2 sizes layered under the paper's
  /// standard point (1024-word write-in-broadcast L1s), both inclusion
  /// policies, mean over the four benchmarks at `l2_pes` PEs. The
  /// default sizes start at the total L1 capacity of 8 PEs (8K words);
  /// expect back-invalidation to decline with size but stay nonzero
  /// until the L2 holds the whole working set — inclusion victims are
  /// picked by L2 LRU, which sees only L1 misses, so L1-hot lines get
  /// evicted even from an L2 several times the L1s' total size.
  std::vector<u32> l2_sizes = {8192, 16384, 32768, 65536};
  u32 l2_ways = 8;
  unsigned l2_pes = 8;
};

/// Table 1: characteristics of RAP-WAM storage objects (architectural;
/// printed from the same data the emulator tags references with).
TextTable table1_report();

/// Table 2: instructions, references (RAP-WAM and WAM), goals actually
/// executed in parallel, for the four benchmarks on `table2_pes` PEs.
TextTable table2_report(const ReportOptions& opt);

/// Figure 2: RAP-WAM work as % of WAM work, and speedup, for deriv
/// across PE counts.
TextTable fig2_report(const ReportOptions& opt);

/// Figure 4: mean traffic ratio (over the four benchmarks) vs cache
/// size, per PE count — one table per protocol panel
/// (write-in broadcast, hybrid, conventional write-through).
std::vector<TextTable> fig4_report(const ReportOptions& opt);

/// L2 hierarchy sweep (the dimension the paper's flat model stops
/// short of): for each L2 size in `opt.l2_sizes`, mean bus-traffic
/// ratio, memory-traffic ratio (what the L2 failed to capture), L2
/// miss ratio and back-invalidation rate, for inclusive and
/// non-inclusive policies, next to the flat no-L2 baseline
/// (docs/DESIGN.md §9).
TextTable l2_report(const ReportOptions& opt);

/// Table 3: fit of the small benchmarks to the large sequential suite
/// (copyback traffic ratios at 512/1024 words; z-scores).
TextTable table3_report(const ReportOptions& opt);

/// The measured quantities behind mlips_report, exposed so the bench
/// binary can archive them alongside host-side engine throughput
/// (BENCH_engine.json).
struct MlipsNumbers {
  double instr_per_inference = 0;
  double refs_per_instr = 0;
  double bytes_per_inference = 0;
  double demand_mb_per_sec = 0;  ///< bytes demanded per second at 2 MLIPS
  double traffic_ratio = 0;      ///< 8 PE, 1024-word write-in broadcast
  double bus_mb_per_sec = 0;     ///< demand bandwidth after cache capture
};
MlipsNumbers mlips_numbers(const ReportOptions& opt);

/// §3.3: the 2-MLIPS bandwidth estimate recomputed from measured
/// instruction/reference/traffic numbers. The MlipsNumbers overload
/// lets a caller that also archives the numbers measure them once.
TextTable mlips_report(const ReportOptions& opt);
TextTable mlips_report(const MlipsNumbers& m);

/// Timed replay vs. the analytic M/D/1 model: for each of the four
/// paper benchmarks, measured speedup / efficiency / bus utilization
/// from TimedReplay next to the bus_contention() prediction at the
/// same traffic ratio and effective service time, across
/// `opt.timing_pes` (write-in broadcast, 1024-word caches), with the
/// measured saturation PE count as a footer row.
std::vector<TextTable> timing_report(const ReportOptions& opt);

}  // namespace rapwam
