#include "harness/runner.h"

namespace rapwam {

AreaSizes bench_area_sizes() {
  AreaSizes s;
  s.heap = u64(1) << 21;
  s.local = u64(1) << 18;
  s.control = u64(1) << 19;
  s.trail = u64(1) << 18;
  s.pdl = u64(1) << 13;
  s.goal = u64(1) << 13;
  s.msg = u64(1) << 10;
  return s;
}

RunResult run_into(const BenchProgram& bp, unsigned pes, bool strip,
                   TraceSink* sink, unsigned max_solutions,
                   const ResourceLimits& limits, const EngineFaults& faults,
                   const CancelToken* cancel) {
  Program prog;
  prog.consult(bp.source);
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.sizes = bench_area_sizes();
  cfg.strip_cge = strip;
  cfg.max_solutions = max_solutions;
  cfg.limits = limits;
  cfg.faults = faults;
  Machine m(prog, cfg);
  RunResult res = m.solve(bp.goal + ".", sink, cancel);
  if (!res.success)
    fail("benchmark '" + bp.name + "' found no solution — broken program?");
  return res;
}

namespace {
BenchRun run_impl(const BenchProgram& bp, unsigned pes, bool strip, bool want_trace,
                  unsigned max_solutions) {
  BenchRun out;
  out.name = bp.name;
  if (want_trace) out.trace = std::make_shared<TraceBuffer>(/*busy_only=*/true);
  out.result = run_into(bp, pes, strip, out.trace.get(), max_solutions);
  return out;
}
}  // namespace

BenchRun run_parallel(const BenchProgram& bp, unsigned pes, bool want_trace,
                      unsigned max_solutions) {
  return run_impl(bp, pes, /*strip=*/false, want_trace, max_solutions);
}

BenchRun run_wam(const BenchProgram& bp, bool want_trace, unsigned max_solutions) {
  return run_impl(bp, 1, /*strip=*/true, want_trace, max_solutions);
}

}  // namespace rapwam
