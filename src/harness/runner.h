// Benchmark execution helpers: run a program on the RAP-WAM emulator
// (optionally collecting the busy-reference trace for cache
// simulation) and on the sequential-WAM baseline.
#pragma once

#include <memory>

#include "engine/machine.h"
#include "harness/programs.h"

namespace rapwam {

struct BenchRun {
  std::string name;
  RunResult result;                    ///< RAP-WAM run on `pes` PEs
  std::shared_ptr<TraceBuffer> trace;  ///< busy refs (null unless requested)
};

/// Area sizes big enough for the Paper-scale workloads.
AreaSizes bench_area_sizes();

/// Runs `bp` on `pes` PEs. `max_solutions` > 1 exhausts backtracking
/// (used by the all-solutions large benchmarks).
BenchRun run_parallel(const BenchProgram& bp, unsigned pes, bool want_trace,
                      unsigned max_solutions = 1);

/// Runs `bp` compiled as plain sequential WAM (annotations stripped).
BenchRun run_wam(const BenchProgram& bp, bool want_trace, unsigned max_solutions = 1);

/// Runs `bp` streaming every reference into `sink` at chunk
/// granularity — nothing is materialized here. The caller picks the
/// consumer: ChunkingSink (shared storage), StreamSink (concurrent
/// replay), FileTraceSink (archive), CountingSink (counters only).
/// `strip` compiles the sequential-WAM baseline, as run_wam does.
/// `limits` / `faults` / `cancel` thread the engine governance knobs
/// through: resource budgets throw ResourceExhaustedError, a cancelled
/// or expired token throws CancelledError mid-generation. Defaults are
/// the ungoverned run (bit-identical to the pre-governance engine).
RunResult run_into(const BenchProgram& bp, unsigned pes, bool strip,
                   TraceSink* sink, unsigned max_solutions = 1,
                   const ResourceLimits& limits = {},
                   const EngineFaults& faults = {},
                   const CancelToken* cancel = nullptr);

}  // namespace rapwam
