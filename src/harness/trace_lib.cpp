#include "harness/trace_lib.h"

#include <chrono>

namespace rapwam {

TraceLibrary& TraceLibrary::instance() {
  static TraceLibrary lib;
  return lib;
}

std::shared_ptr<const GeneratedTrace> TraceLibrary::get(
    const std::string& bench, BenchScale scale, unsigned pes, bool wam,
    unsigned max_solutions, const CancelToken* cancel,
    const EngineFaults& faults) {
  Key key{bench, static_cast<int>(scale), pes, wam, max_solutions};
  std::shared_future<std::shared_ptr<const GeneratedTrace>> fut;
  std::promise<std::shared_ptr<const GeneratedTrace>> pr;
  bool owner = false;
  {
    std::scoped_lock lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second;
    } else {
      fut = pr.get_future().share();
      map_.emplace(key, fut);
      owner = true;
    }
  }
  if (owner) {
    // Generate outside the lock so other keys generate concurrently.
    try {
      ChunkingSink sink(/*busy_only=*/true);
      // The cancellation checkpoint rides both the chunk handoff (one
      // check per kChunkRefs emitted references) and the engine cycle
      // loop (run_into threads the token down), so a generation that
      // emits nothing is still interruptible.
      CancelCheckSink checked(sink, cancel);
      auto out = std::make_shared<GeneratedTrace>();
      out->stats = run_into(bench_program(bench, scale), pes, wam, &checked,
                            max_solutions, ResourceLimits{}, faults, cancel)
                       .stats;
      out->trace = sink.take();
      pr.set_value(std::move(out));
    } catch (...) {
      // Error-aware memoization: evict BEFORE publishing the failure.
      // Once set_exception runs, anyone holding the future sees the
      // error — if the key were still mapped at that point, a racing
      // get() could pick up the poisoned future instead of retrying.
      // Eviction first means every requester that arrives from now on
      // regenerates; only the ones already waiting share this failure.
      bool was_cancel = false;
      try {
        throw;
      } catch (const CancelledError&) {
        was_cancel = true;
      } catch (...) {
      }
      {
        std::scoped_lock lk(mu_);
        map_.erase(key);
        ++failed_;
        if (was_cancel) ++cancelled_;
      }
      pr.set_exception(std::current_exception());
    }
  } else if (cancel && (cancel->has_deadline() || cancel->cancelled())) {
    // Waiting on someone else's generation: bound the wait, not the
    // work. Polling in short slices keeps explicit cancel() responsive
    // without a waiter registry on the shared future.
    for (;;) {
      cancel->checkpoint();
      auto slice = std::min(cancel->remaining() + std::chrono::milliseconds(1),
                            std::chrono::milliseconds(20));
      if (fut.wait_for(slice) == std::future_status::ready) break;
    }
  }
  return fut.get();
}

void TraceLibrary::prefetch(ThreadPool& pool,
                            const std::vector<std::string>& benches,
                            const std::vector<unsigned>& pe_counts,
                            BenchScale scale) {
  std::vector<std::future<void>> futs;
  for (const std::string& b : benches) {
    for (unsigned pes : pe_counts) {
      futs.push_back(pool.submit([this, b, scale, pes] { get(b, scale, pes); }));
    }
  }
  for (std::future<void>& f : futs) f.get();
}

void TraceLibrary::clear() {
  std::scoped_lock lk(mu_);
  map_.clear();
}

std::size_t TraceLibrary::size() const {
  std::scoped_lock lk(mu_);
  return map_.size();
}

u64 TraceLibrary::failed_generations() const {
  std::scoped_lock lk(mu_);
  return failed_;
}

u64 TraceLibrary::cancelled_generations() const {
  std::scoped_lock lk(mu_);
  return cancelled_;
}

}  // namespace rapwam
