#include "harness/trace_lib.h"

namespace rapwam {

TraceLibrary& TraceLibrary::instance() {
  static TraceLibrary lib;
  return lib;
}

std::shared_ptr<const GeneratedTrace> TraceLibrary::get(const std::string& bench,
                                                        BenchScale scale,
                                                        unsigned pes, bool wam,
                                                        unsigned max_solutions) {
  Key key{bench, static_cast<int>(scale), pes, wam, max_solutions};
  std::shared_future<std::shared_ptr<const GeneratedTrace>> fut;
  std::promise<std::shared_ptr<const GeneratedTrace>> pr;
  bool owner = false;
  {
    std::scoped_lock lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second;
    } else {
      fut = pr.get_future().share();
      map_.emplace(key, fut);
      owner = true;
    }
  }
  if (owner) {
    // Generate outside the lock so other keys generate concurrently.
    try {
      ChunkingSink sink(/*busy_only=*/true);
      auto out = std::make_shared<GeneratedTrace>();
      out->stats =
          run_into(bench_program(bench, scale), pes, wam, &sink, max_solutions)
              .stats;
      out->trace = sink.take();
      pr.set_value(std::move(out));
    } catch (...) {
      pr.set_exception(std::current_exception());
      std::scoped_lock lk(mu_);
      map_.erase(key);  // let a later call retry instead of caching the error
    }
  }
  return fut.get();
}

void TraceLibrary::prefetch(ThreadPool& pool,
                            const std::vector<std::string>& benches,
                            const std::vector<unsigned>& pe_counts,
                            BenchScale scale) {
  std::vector<std::future<void>> futs;
  for (const std::string& b : benches) {
    for (unsigned pes : pe_counts) {
      futs.push_back(pool.submit([this, b, scale, pes] { get(b, scale, pes); }));
    }
  }
  for (std::future<void>& f : futs) f.get();
}

void TraceLibrary::clear() {
  std::scoped_lock lk(mu_);
  map_.clear();
}

}  // namespace rapwam
