// Generate-once trace library (docs/DESIGN.md §8).
//
// Sweeps and reports consume the same (benchmark × PE-count) reference
// streams over and over: Figure 4 replays each one through dozens of
// (protocol × cache-size) points, the timing and MLIPS reports replay
// it again, and the bench binaries chain several reports in one
// process. The library memoizes each generated trace as shared
// immutable chunk storage keyed by exactly what determines the stream
// (benchmark, scale, PE count, engine flavor, solution budget — the
// emulator is deterministic in those), so every consumer fans out from
// one generation run. Generation of *different* keys proceeds
// concurrently: get() publishes a future under the lock and generates
// outside it, so a ThreadPool can prefetch a whole sweep's traces at
// once while duplicate requests wait instead of re-running.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "harness/runner.h"
#include "support/thread_pool.h"
#include "trace/chunks.h"

namespace rapwam {

/// A memoized generation run: the engine statistics of the run plus
/// the busy-reference trace it emitted.
struct GeneratedTrace {
  RunStats stats;
  std::shared_ptr<const ChunkedTrace> trace;
};

class TraceLibrary {
 public:
  /// Process-wide library (the bench binaries are single-report
  /// processes; tests construct their own instances).
  static TraceLibrary& instance();

  /// The trace of `bench` at `pes` PEs, generating it on first use.
  /// `wam` selects the stripped sequential baseline (run_wam).
  std::shared_ptr<const GeneratedTrace> get(const std::string& bench,
                                            BenchScale scale, unsigned pes,
                                            bool wam = false,
                                            unsigned max_solutions = 1);

  /// Generates any missing (bench × pes) combinations on `pool` and
  /// blocks until all are present. Subsequent get()s are hits.
  void prefetch(ThreadPool& pool, const std::vector<std::string>& benches,
                const std::vector<unsigned>& pe_counts, BenchScale scale);

  /// Drops all memoized traces (tests / memory pressure).
  void clear();

 private:
  using Key = std::tuple<std::string, int, unsigned, bool, unsigned>;

  std::mutex mu_;
  std::map<Key, std::shared_future<std::shared_ptr<const GeneratedTrace>>> map_;
};

}  // namespace rapwam
