// Generate-once trace library (docs/DESIGN.md §8).
//
// Sweeps and reports consume the same (benchmark × PE-count) reference
// streams over and over: Figure 4 replays each one through dozens of
// (protocol × cache-size) points, the timing and MLIPS reports replay
// it again, and the bench binaries chain several reports in one
// process. The library memoizes each generated trace as shared
// immutable chunk storage keyed by exactly what determines the stream
// (benchmark, scale, PE count, engine flavor, solution budget — the
// emulator is deterministic in those), so every consumer fans out from
// one generation run. Generation of *different* keys proceeds
// concurrently: get() publishes a future under the lock and generates
// outside it, so a ThreadPool can prefetch a whole sweep's traces at
// once while duplicate requests wait instead of re-running.
//
// Memoization is error-aware (docs/DESIGN.md §10): a generation that
// throws — bad benchmark name, engine resource exhaustion, a
// cancelled request aborting the run mid-stream — is evicted from the
// map *before* its exception is published, so the broken future can
// never be handed to a later requester. Requesters that were already
// waiting share the failure (they asked for exactly that run); the
// next get() of the same key regenerates from scratch. Without the
// eviction, one bad request would poison the key for the life of the
// process — the failure mode the resident server exists to survive.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "harness/runner.h"
#include "support/cancel.h"
#include "support/thread_pool.h"
#include "trace/chunks.h"

namespace rapwam {

/// A memoized generation run: the engine statistics of the run plus
/// the busy-reference trace it emitted.
struct GeneratedTrace {
  RunStats stats;
  std::shared_ptr<const ChunkedTrace> trace;
};

class TraceLibrary {
 public:
  /// Process-wide library (the bench binaries are single-report
  /// processes; the server shares it across requests; tests construct
  /// their own instances).
  static TraceLibrary& instance();

  /// The trace of `bench` at `pes` PEs, generating it on first use.
  /// `wam` selects the stripped sequential baseline (run_wam).
  ///
  /// `cancel` (optional) bounds the call: if this get() is the one
  /// generating, the token is threaded into the engine's cycle loop
  /// *and* the chunk handoff, so even a run that emits no references
  /// (a pure-compute runaway) is interrupted, the aborted generation is
  /// evicted, and a later get() retries; if it is waiting on another
  /// requester's generation, only the *wait* is bounded — the
  /// generation itself keeps running and lands in the cache for
  /// whoever asks next.
  ///
  /// `faults` (optional) are engine-side fault injections for this
  /// generation only. They are deliberately NOT part of the memo key:
  /// fault-bearing requests are test traffic, and a faulted generation
  /// either throws (evicted, never cached) or completes with output
  /// identical to the clean run (stalls don't change the stream).
  std::shared_ptr<const GeneratedTrace> get(const std::string& bench,
                                            BenchScale scale, unsigned pes,
                                            bool wam = false,
                                            unsigned max_solutions = 1,
                                            const CancelToken* cancel = nullptr,
                                            const EngineFaults& faults = {});

  /// Generates any missing (bench × pes) combinations on `pool` and
  /// blocks until all are present. Subsequent get()s are hits.
  void prefetch(ThreadPool& pool, const std::vector<std::string>& benches,
                const std::vector<unsigned>& pe_counts, BenchScale scale);

  /// Drops all memoized traces (tests / memory pressure).
  void clear();

  /// Memoized entries currently live (includes in-flight generations).
  std::size_t size() const;
  /// Generations that threw and were evicted since construction
  /// (server stats / tests).
  u64 failed_generations() const;
  /// The subset of failed_generations() aborted by cancellation or a
  /// deadline (CancelledError) rather than a genuine error.
  u64 cancelled_generations() const;

 private:
  using Key = std::tuple<std::string, int, unsigned, bool, unsigned>;

  mutable std::mutex mu_;
  std::map<Key, std::shared_future<std::shared_ptr<const GeneratedTrace>>> map_;
  u64 failed_ = 0;
  u64 cancelled_ = 0;
};

}  // namespace rapwam
