#include "prolog/lexer.h"

#include <cctype>

namespace rapwam {

namespace {
bool is_symbol_char(char c) {
  static const std::string sym = "+-*/\\^<>=~:.?@#&$";
  return sym.find(c) != std::string::npos;
}
bool is_alnum_(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
}  // namespace

Lexer::Lexer(std::string_view src) : src_(src) {}

char Lexer::peek(int ahead) const {
  std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < src_.size() ? src_[p] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::err(const std::string& msg) const {
  fail("syntax error at line " + std::to_string(line_) + ":" + std::to_string(col_) +
       ": " + msg);
}

void Lexer::skip_layout() {
  for (;;) {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '%') {
      while (!eof() && peek() != '\n') advance();
      continue;
    }
    if (peek() == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
      if (eof()) err("unterminated block comment");
      advance();
      advance();
      continue;
    }
    break;
  }
}

std::vector<Token> Lexer::all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool is_eof = t.kind == TokKind::Eof;
    out.push_back(std::move(t));
    if (is_eof) break;
  }
  return out;
}

Token Lexer::next() {
  skip_layout();
  Token t;
  t.line = line_;
  t.col = col_;
  if (eof()) {
    t.kind = TokKind::Eof;
    return t;
  }
  char c = peek();

  // Period: end of clause if followed by layout or EOF; else symbolic atom.
  if (c == '.') {
    char n = peek(1);
    if (n == '\0' || std::isspace(static_cast<unsigned char>(n)) || n == '%') {
      advance();
      t.kind = TokKind::End;
      t.text = ".";
      return t;
    }
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    i64 v = 0;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      v = v * 10 + (advance() - '0');
    }
    if (!eof() && (is_alnum_(peek()))) err("bad number suffix");
    t.kind = TokKind::Int;
    t.value = v;
    return t;
  }

  if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
    std::string s;
    while (!eof() && is_alnum_(peek())) s += advance();
    t.kind = TokKind::Var;
    t.text = std::move(s);
    return t;
  }

  if (std::islower(static_cast<unsigned char>(c))) {
    std::string s;
    while (!eof() && is_alnum_(peek())) s += advance();
    t.kind = TokKind::Atom;
    t.text = std::move(s);
    t.functor_paren = (peek() == '(');
    return t;
  }

  if (c == '\'') {
    advance();
    std::string s;
    for (;;) {
      if (eof()) err("unterminated quoted atom");
      char q = advance();
      if (q == '\\' && !eof()) {
        char e = advance();
        switch (e) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case '\\': s += '\\'; break;
          case '\'': s += '\''; break;
          default: err("unknown escape in quoted atom");
        }
        continue;
      }
      if (q == '\'') {
        if (peek() == '\'') {  // doubled quote
          advance();
          s += '\'';
          continue;
        }
        break;
      }
      s += q;
    }
    t.kind = TokKind::Atom;
    t.text = std::move(s);
    t.functor_paren = (peek() == '(');
    return t;
  }

  // Punctuation.
  if (c == '(' || c == ')' || c == '[' || c == ']' || c == '{' || c == '}' ||
      c == ',' || c == '|') {
    // `||`? not used; '|' alone.
    advance();
    // "[]" and "{}" as atoms.
    if (c == '[' && peek() == ']') {
      advance();
      t.kind = TokKind::Atom;
      t.text = "[]";
      t.functor_paren = (peek() == '(');
      return t;
    }
    if (c == '{' && peek() == '}') {
      advance();
      t.kind = TokKind::Atom;
      t.text = "{}";
      return t;
    }
    t.kind = TokKind::Punct;
    t.text = std::string(1, c);
    return t;
  }

  if (c == '!' || c == ';') {
    advance();
    t.kind = TokKind::Atom;
    t.text = std::string(1, c);
    return t;
  }

  if (is_symbol_char(c)) {
    std::string s;
    while (!eof() && is_symbol_char(peek())) s += advance();
    t.kind = TokKind::Atom;
    t.text = std::move(s);
    t.functor_paren = (peek() == '(');
    return t;
  }

  err(std::string("unexpected character '") + c + "'");
}

}  // namespace rapwam
