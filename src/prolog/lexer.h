// Prolog tokenizer.
//
// Produces the token stream consumed by the operator-precedence reader:
// atoms (identifier, quoted, symbolic), variables, integers,
// punctuation, and the clause-terminating period. `%` line comments and
// `/* */` block comments are skipped. Line/column info is kept for
// error messages.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace rapwam {

enum class TokKind : u8 {
  Atom,       // foo, 'Foo bar', +, =.., [] (empty list atom)
  Var,        // X, _x, _
  Int,        // 42, -… handled by parser via prefix op
  Punct,      // ( ) [ ] { } , |
  End,        // clause-terminating period
  Eof,
};

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;   // atom/var name or punct spelling
  i64 value = 0;      // for Int
  int line = 0;
  int col = 0;
  /// True when an atom token was immediately followed by '(' with no
  /// whitespace — i.e. it begins a compound term f(...).
  bool functor_paren = false;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src);

  /// Tokenizes the whole input; throws Error with line info on bad input.
  std::vector<Token> all();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool eof() const { return pos_ >= src_.size(); }
  void skip_layout();
  [[noreturn]] void err(const std::string& msg) const;

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace rapwam
