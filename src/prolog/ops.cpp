#include "prolog/ops.h"

namespace rapwam {

OpTable::OpTable() {
  add_infix(":-", 1200, OpType::xfx);
  add_prefix(":-", 1200, OpType::fx);
  add_prefix("?-", 1200, OpType::fx);
  add_infix(";", 1100, OpType::xfy);
  add_infix("|", 1100, OpType::xfy);  // CGE condition separator
  add_infix("->", 1050, OpType::xfy);
  add_infix(",", 1000, OpType::xfy);
  add_infix("&", 950, OpType::xfy);  // parallel conjunction
  add_prefix("\\+", 900, OpType::fy);
  add_infix("=", 700, OpType::xfx);
  add_infix("\\=", 700, OpType::xfx);
  add_infix("==", 700, OpType::xfx);
  add_infix("\\==", 700, OpType::xfx);
  add_infix("is", 700, OpType::xfx);
  add_infix("=:=", 700, OpType::xfx);
  add_infix("=\\=", 700, OpType::xfx);
  add_infix("<", 700, OpType::xfx);
  add_infix(">", 700, OpType::xfx);
  add_infix("=<", 700, OpType::xfx);
  add_infix(">=", 700, OpType::xfx);
  add_infix("@<", 700, OpType::xfx);
  add_infix("@>", 700, OpType::xfx);
  add_infix("@=<", 700, OpType::xfx);
  add_infix("@>=", 700, OpType::xfx);
  add_infix("=..", 700, OpType::xfx);
  add_infix("+", 500, OpType::yfx);
  add_infix("-", 500, OpType::yfx);
  add_infix("/\\", 500, OpType::yfx);
  add_infix("\\/", 500, OpType::yfx);
  add_infix("xor", 500, OpType::yfx);
  add_infix("*", 400, OpType::yfx);
  add_infix("/", 400, OpType::yfx);
  add_infix("//", 400, OpType::yfx);
  add_infix("mod", 400, OpType::yfx);
  add_infix("rem", 400, OpType::yfx);
  add_infix("<<", 400, OpType::yfx);
  add_infix(">>", 400, OpType::yfx);
  add_infix("**", 200, OpType::xfx);
  add_infix("^", 200, OpType::xfy);
  add_prefix("-", 200, OpType::fy);
  add_prefix("+", 200, OpType::fy);
}

std::optional<OpDef> OpTable::infix(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) return std::nullopt;
  return it->second.in;
}

std::optional<OpDef> OpTable::prefix(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) return std::nullopt;
  return it->second.pre;
}

}  // namespace rapwam
