// Prolog operator table.
//
// Standard operator set plus the RAP-WAM annotations: `&` (parallel
// conjunction, xfy 950) and `|` (CGE condition separator, xfy 1100).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "support/common.h"

namespace rapwam {

enum class OpType : u8 { xfx, xfy, yfx, fy, fx };

struct OpDef {
  int prec = 0;
  OpType type = OpType::xfx;
};

class OpTable {
 public:
  OpTable();  // loads the standard table

  std::optional<OpDef> infix(const std::string& name) const;
  std::optional<OpDef> prefix(const std::string& name) const;

 private:
  struct Entry {
    std::optional<OpDef> in;
    std::optional<OpDef> pre;
  };
  std::unordered_map<std::string, Entry> ops_;

  void add_infix(const std::string& n, int p, OpType t) { ops_[n].in = OpDef{p, t}; }
  void add_prefix(const std::string& n, int p, OpType t) { ops_[n].pre = OpDef{p, t}; }
};

}  // namespace rapwam
