#include "prolog/parser.h"

namespace rapwam {

void Parser::err(const std::string& msg) const {
  fail("syntax error at line " + std::to_string(cur().line) + ":" +
       std::to_string(cur().col) + ": " + msg);
}

void Parser::expect_punct(const char* p) {
  if (!at_punct(p)) err(std::string("expected '") + p + "'");
  next();
}

const Term* Parser::var_node(const std::string& name) {
  if (name == "_") return store_.mk_var("_");
  auto it = clause_vars_.find(name);
  if (it != clause_vars_.end()) return it->second;
  const Term* v = store_.mk_var(name);
  clause_vars_[name] = v;
  return v;
}

bool Parser::starts_term() const {
  switch (cur().kind) {
    case TokKind::Int:
    case TokKind::Var:
    case TokKind::Atom:
      return true;
    case TokKind::Punct:
      return cur().text == "(" || cur().text == "[" || cur().text == "{";
    default:
      return false;
  }
}

std::vector<const Term*> Parser::read_args() {
  std::vector<const Term*> args;
  expect_punct("(");
  for (;;) {
    args.push_back(read(999));
    if (at_punct(",")) {
      next();
      continue;
    }
    expect_punct(")");
    break;
  }
  return args;
}

const Term* Parser::read_list() {
  expect_punct("[");
  std::vector<const Term*> items;
  const Term* tail = nullptr;
  for (;;) {
    items.push_back(read(999));
    if (at_punct(",")) {
      next();
      continue;
    }
    if (at_punct("|")) {
      next();
      tail = read(999);
    }
    expect_punct("]");
    break;
  }
  return store_.mk_list(items, tail);
}

const Term* Parser::read_primary(int maxprec) {
  const Token& t = cur();
  switch (t.kind) {
    case TokKind::Int: {
      i64 v = t.value;
      next();
      return store_.mk_int(v);
    }
    case TokKind::Var: {
      std::string n = t.text;
      next();
      return var_node(n);
    }
    case TokKind::Punct:
      if (t.text == "(") {
        next();
        const Term* inner = read(1200);
        expect_punct(")");
        return inner;
      }
      if (t.text == "[") return read_list();
      err("unexpected '" + t.text + "'");
    case TokKind::Atom: {
      std::string name = t.text;
      bool fpar = t.functor_paren;
      next();
      if (fpar) {
        std::vector<const Term*> args = read_args();
        return store_.mk_struct(name, std::move(args));
      }
      // Negative integer literal.
      if (name == "-" && cur().kind == TokKind::Int) {
        i64 v = cur().value;
        next();
        return store_.mk_int(-v);
      }
      // Prefix operator application.
      if (auto pre = ops_.prefix(name); pre && pre->prec <= maxprec && starts_term()) {
        // Don't treat `op , ...` or `op )` as application (handled by
        // starts_term), and avoid consuming an infix op as an operand:
        // if the next atom is solely an infix operator and what follows
        // can't start a term, fall through to plain atom.
        int argmax = pre->type == OpType::fy ? pre->prec : pre->prec - 1;
        const Term* arg = read(argmax);
        return store_.mk_struct(name, {arg});
      }
      return store_.mk_atom(name);
    }
    default:
      err("unexpected end of input");
  }
}

const Term* Parser::read(int maxprec) {
  const Term* left = read_primary(maxprec);
  // Precedence of what we've built so far: primaries are 0; an infix
  // application takes its operator's precedence. Used to reject
  // non-associative chains like `a = b = c` (xfx).
  int leftprec = 0;
  for (;;) {
    std::string opname;
    if (cur().kind == TokKind::Atom) {
      opname = cur().text;
    } else if (cur().kind == TokKind::Punct && (cur().text == "," || cur().text == "|")) {
      opname = cur().text;
    } else {
      break;
    }
    auto in = ops_.infix(opname);
    if (!in || in->prec > maxprec) break;
    int leftmax, rightmax;
    switch (in->type) {
      case OpType::xfy: leftmax = in->prec - 1; rightmax = in->prec; break;
      case OpType::xfx: leftmax = in->prec - 1; rightmax = in->prec - 1; break;
      case OpType::yfx: leftmax = in->prec; rightmax = in->prec - 1; break;
      default: err("operator '" + opname + "' is not infix");
    }
    if (leftprec > leftmax)
      err("operator priority clash at '" + opname + "'");
    next();
    const Term* right = read(rightmax);
    left = store_.mk_struct(opname, {left, right});
    leftprec = in->prec;
  }
  return left;
}

std::vector<const Term*> Parser::parse_program(std::string_view src) {
  toks_ = Lexer(src).all();
  idx_ = 0;
  std::vector<const Term*> clauses;
  while (cur().kind != TokKind::Eof) {
    clause_vars_.clear();
    const Term* t = read(1200);
    if (cur().kind != TokKind::End) err("expected '.' at end of clause");
    next();
    clauses.push_back(t);
  }
  return clauses;
}

const Term* Parser::parse_term(std::string_view src) {
  toks_ = Lexer(src).all();
  idx_ = 0;
  clause_vars_.clear();
  const Term* t = read(1200);
  if (cur().kind != TokKind::End) err("expected '.' at end of term");
  return t;
}

}  // namespace rapwam
