// Operator-precedence Prolog reader.
//
// Parses a source string into a sequence of clause terms (one per
// trailing period). Variables are scoped per clause: two occurrences of
// `X` in one clause map to the same Term node; `_` is always fresh.
#pragma once

#include <unordered_map>
#include <vector>

#include "prolog/lexer.h"
#include "prolog/ops.h"
#include "prolog/term.h"

namespace rapwam {

class Parser {
 public:
  Parser(TermStore& store, const OpTable& ops) : store_(store), ops_(ops) {}

  /// Reads every clause in `src`. Throws Error on syntax problems.
  std::vector<const Term*> parse_program(std::string_view src);

  /// Reads exactly one term terminated by '.' (e.g. a query).
  const Term* parse_term(std::string_view src);

 private:
  const Term* read(int maxprec);
  const Term* read_primary(int maxprec);
  const Term* read_list();
  std::vector<const Term*> read_args();
  const Term* var_node(const std::string& name);

  const Token& cur() const { return toks_[idx_]; }
  const Token& peek(std::size_t ahead = 1) const {
    std::size_t i = idx_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  void next() { if (idx_ + 1 < toks_.size()) ++idx_; }
  bool at_punct(const char* p) const {
    return cur().kind == TokKind::Punct && cur().text == p;
  }
  void expect_punct(const char* p);
  [[noreturn]] void err(const std::string& msg) const;

  /// True if the current token can begin a term (used to decide whether
  /// an atom is a prefix operator application or stands alone).
  bool starts_term() const;

  TermStore& store_;
  const OpTable& ops_;
  std::vector<Token> toks_;
  std::size_t idx_ = 0;
  std::unordered_map<std::string, const Term*> clause_vars_;
};

}  // namespace rapwam
