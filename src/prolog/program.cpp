#include "prolog/program.h"

namespace rapwam {

Program::Program()
    : atoms_(std::make_unique<Interner>()),
      store_(std::make_unique<TermStore>(*atoms_)),
      parser_(*store_, ops_) {}

PredId Program::head_pred(const Term* head) const {
  if (head->is_atom()) return PredId{head->name, 0};
  if (head->is_struct()) return PredId{head->name, static_cast<u32>(head->arity())};
  fail("clause head must be an atom or compound term");
}

void Program::add_clause(const Term* head, const Term* body) {
  PredId p = head_pred(head);
  auto [it, fresh] = preds_.try_emplace(p);
  if (fresh) order_.push_back(p);
  it->second.push_back(Clause{head, body});
}

void Program::consult(std::string_view src) {
  const u32 neck = atoms_->intern(":-");
  for (const Term* t : parser_.parse_program(src)) {
    if (t->is_struct() && t->name == neck && t->arity() == 2) {
      add_clause(t->args[0], t->args[1]);
    } else if (t->is_struct() && t->name == neck && t->arity() == 1) {
      fail("directives are not supported: " + store_->to_string(t));
    } else {
      add_clause(t, nullptr);
    }
  }
}

const Term* Program::parse_goal(std::string_view src) { return parser_.parse_term(src); }

const std::vector<Clause>& Program::clauses_of(PredId p) const {
  auto it = preds_.find(p);
  RW_CHECK(it != preds_.end(), "no clauses for predicate");
  return it->second;
}

}  // namespace rapwam
