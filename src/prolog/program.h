// Program database: parsed clauses grouped by predicate, preserving
// source order. Owns the interner, term arena and operator table that
// all later compilation stages share.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "prolog/parser.h"

namespace rapwam {

struct Clause {
  const Term* head = nullptr;
  const Term* body = nullptr;  ///< nullptr for facts
};

class Program {
 public:
  Program();

  /// Parses `src` and adds its clauses. `:-/1` directives are rejected
  /// (this system has no runtime database mutation).
  void consult(std::string_view src);

  /// Parses a goal term (without `?-`), e.g. "d(x*x,x,D)."
  const Term* parse_goal(std::string_view src);

  const std::vector<PredId>& predicates() const { return order_; }
  const std::vector<Clause>& clauses_of(PredId p) const;
  bool defines(PredId p) const { return preds_.count(p) > 0; }

  TermStore& terms() { return *store_; }
  const TermStore& terms() const { return *store_; }
  Interner& atoms() { return *atoms_; }
  const OpTable& ops() const { return ops_; }

  PredId pred_id(std::string_view name, u32 arity) {
    return PredId{atoms_->intern(name), arity};
  }
  std::string pred_name(PredId p) const {
    return atoms_->name(p.name) + "/" + std::to_string(p.arity);
  }

  /// Adds an already-built clause (used by the normaliser for lifted
  /// auxiliary predicates).
  void add_clause(const Term* head, const Term* body);

  /// Program-unique generated predicate name ("$aux7", "$q3", ...).
  /// The counter lives in the Program so repeated compilations never
  /// collide.
  std::string fresh_name(const char* prefix) {
    return std::string(prefix) + std::to_string(++fresh_counter_);
  }

 private:
  std::unique_ptr<Interner> atoms_;
  std::unique_ptr<TermStore> store_;
  OpTable ops_;
  Parser parser_;
  std::unordered_map<PredId, std::vector<Clause>, PredIdHash> preds_;
  std::vector<PredId> order_;
  int fresh_counter_ = 0;

  PredId head_pred(const Term* head) const;
};

}  // namespace rapwam
