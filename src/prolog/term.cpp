#include "prolog/term.h"

#include <algorithm>
#include <sstream>

namespace rapwam {

const Term* TermStore::mk_var(std::string_view name) {
  Term* t = alloc();
  t->tag = TermTag::Var;
  t->name = atoms_.intern(name);
  return t;
}

const Term* TermStore::mk_atom(std::string_view name) { return mk_atom(atoms_.intern(name)); }

const Term* TermStore::mk_atom(u32 id) {
  Term* t = alloc();
  t->tag = TermTag::Atom;
  t->name = id;
  return t;
}

const Term* TermStore::mk_int(i64 v) {
  Term* t = alloc();
  t->tag = TermTag::Int;
  t->ival = v;
  return t;
}

const Term* TermStore::mk_struct(std::string_view functor, std::vector<const Term*> args) {
  return mk_struct(atoms_.intern(functor), std::move(args));
}

const Term* TermStore::mk_struct(u32 functor_id, std::vector<const Term*> args) {
  RW_CHECK(!args.empty(), "struct must have at least one argument");
  Term* t = alloc();
  t->tag = TermTag::Struct;
  t->name = functor_id;
  t->args = std::move(args);
  return t;
}

const Term* TermStore::mk_list(const std::vector<const Term*>& items, const Term* tail) {
  const Term* acc = tail ? tail : nil();
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    acc = mk_struct(".", {*it, acc});
  }
  return acc;
}

namespace {
void print(const TermStore& st, const Term* t, std::ostringstream& os) {
  switch (t->tag) {
    case TermTag::Var:
      os << "_" << st.atoms().name(t->name);
      return;
    case TermTag::Atom:
      os << st.atoms().name(t->name);
      return;
    case TermTag::Int:
      os << t->ival;
      return;
    case TermTag::Struct: {
      const std::string& f = st.atoms().name(t->name);
      if (f == "." && t->arity() == 2) {
        // List sugar.
        os << "[";
        const Term* cur = t;
        bool first = true;
        while (cur->is_struct() && cur->arity() == 2 &&
               st.atoms().name(cur->name) == ".") {
          if (!first) os << ",";
          print(st, cur->args[0], os);
          first = false;
          cur = cur->args[1];
        }
        if (!(cur->is_atom() && st.atoms().name(cur->name) == "[]")) {
          os << "|";
          print(st, cur, os);
        }
        os << "]";
        return;
      }
      os << f << "(";
      for (std::size_t i = 0; i < t->arity(); ++i) {
        if (i) os << ",";
        print(st, t->args[i], os);
      }
      os << ")";
      return;
    }
  }
}
}  // namespace

std::string TermStore::to_string(const Term* t) const {
  std::ostringstream os;
  print(*this, t, os);
  return os.str();
}

bool TermStore::equal(const Term* a, const Term* b) {
  if (a == b) return true;
  if (a->tag != b->tag) return false;
  switch (a->tag) {
    case TermTag::Var:
      return false;  // distinct var nodes are distinct variables
    case TermTag::Atom:
      return a->name == b->name;
    case TermTag::Int:
      return a->ival == b->ival;
    case TermTag::Struct:
      if (a->name != b->name || a->arity() != b->arity()) return false;
      for (std::size_t i = 0; i < a->arity(); ++i)
        if (!equal(a->args[i], b->args[i])) return false;
      return true;
  }
  return false;
}

void TermStore::collect_vars(const Term* t, std::vector<const Term*>& out) {
  if (t->is_var()) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
    return;
  }
  for (const Term* a : t->args) collect_vars(a, out);
}

}  // namespace rapwam
