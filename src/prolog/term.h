// Source-level term representation (the compiler's AST).
//
// Terms are immutable nodes allocated from a TermStore arena; they are
// shared freely and never freed individually. Atom and functor names
// are interned (ids come from the store's Interner). Lists are ordinary
// '.'/2 structures terminated by the atom []. Variables are named nodes
// scoped to one clause by the parser.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "support/common.h"
#include "support/interner.h"

namespace rapwam {

enum class TermTag : u8 { Var, Atom, Int, Struct };

struct Term {
  TermTag tag = TermTag::Atom;
  u32 name = 0;                    ///< atom/functor/var-name interner id
  i64 ival = 0;                    ///< Int payload
  std::vector<const Term*> args;   ///< Struct arguments

  bool is_var() const { return tag == TermTag::Var; }
  bool is_atom() const { return tag == TermTag::Atom; }
  bool is_int() const { return tag == TermTag::Int; }
  bool is_struct() const { return tag == TermTag::Struct; }
  std::size_t arity() const { return args.size(); }
};

class TermStore {
 public:
  explicit TermStore(Interner& atoms) : atoms_(atoms) {}

  const Term* mk_var(std::string_view name);
  const Term* mk_atom(std::string_view name);
  const Term* mk_atom(u32 id);
  const Term* mk_int(i64 v);
  const Term* mk_struct(std::string_view functor, std::vector<const Term*> args);
  const Term* mk_struct(u32 functor_id, std::vector<const Term*> args);

  /// Builds a proper list of `items`, or a partial list ending in `tail`.
  const Term* mk_list(const std::vector<const Term*>& items, const Term* tail = nullptr);

  const Term* nil() { return mk_atom("[]"); }

  Interner& atoms() { return atoms_; }
  const Interner& atoms() const { return atoms_; }

  /// Canonical text form: operators not reconstructed except for list
  /// sugar; variables print their names; quoting is not performed.
  std::string to_string(const Term* t) const;

  /// Structural equality (variables equal iff same node).
  static bool equal(const Term* a, const Term* b);

  /// Collects distinct variable nodes in first-occurrence order.
  static void collect_vars(const Term* t, std::vector<const Term*>& out);

 private:
  Interner& atoms_;
  std::deque<Term> pool_;

  Term* alloc() { return &pool_.emplace_back(); }
};

/// Convenience: functor name id + arity pair identifying a predicate.
struct PredId {
  u32 name = 0;
  u32 arity = 0;
  bool operator==(const PredId& o) const { return name == o.name && arity == o.arity; }
};

struct PredIdHash {
  std::size_t operator()(const PredId& p) const {
    return std::hash<u64>()((u64(p.name) << 32) | p.arity);
  }
};

}  // namespace rapwam
