#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rapwam {

Response request_once(const Endpoint& ep, const std::string& line,
                      int timeout_ms) {
  Socket s = Socket::connect(ep, timeout_ms);
  s.send_all(line + "\n");
  s.shutdown_write();  // one-shot: tell the server no more requests follow
  std::string resp_line;
  if (!s.recv_line(resp_line, JsonLimits{}.max_bytes, timeout_ms))
    fail("server closed the connection without a response");
  return Response::parse(resp_line);
}

ClientOutcome request_with_retry(const Endpoint& ep, const std::string& line,
                                 const ClientOptions& opt) {
  ClientOutcome out;
  u64 lcg = opt.jitter_seed ? opt.jitter_seed : 1;
  std::string last_transport_error;
  bool have_response = false;

  int attempts = std::max(1, opt.attempts);
  for (int k = 0; k < attempts; ++k) {
    if (k > 0) {
      i64 delay = std::min<i64>(opt.max_backoff_ms,
                                static_cast<i64>(opt.backoff_ms) << (k - 1));
      delay = std::max<i64>(delay, 1);
      // Overloaded servers size their hint to the backlog; treat it as
      // a floor so a polite client never hammers a shedding server.
      if (have_response && out.response.retry_after_ms > 0)
        delay = std::max<i64>(delay, out.response.retry_after_ms);
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      delay += static_cast<i64>(lcg >> 33) % (delay / 2 + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    ++out.attempts;
    try {
      out.response = request_once(ep, line, opt.timeout_ms);
      have_response = true;
    } catch (const Error& e) {
      last_transport_error = e.what();
      have_response = false;
      continue;  // connect refused / timeout / torn response: retry
    }
    if (out.response.ok || out.response.code != "overloaded") return out;
    // overloaded: fall through into the next backoff round
  }

  if (!have_response)
    fail("request failed after " + std::to_string(out.attempts) +
         " attempts: " + last_transport_error);
  return out;  // still overloaded after every retry: caller's problem
}

}  // namespace rapwam
