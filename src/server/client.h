// Retrying client for the resident sweep service (docs/DESIGN.md §10)
// — the `rapwam_trace request` subcommand and the CI smoke test.
//
// Retry policy, keyed off the protocol's error taxonomy:
//   * connect failures / timeouts  -> retry (server may still be
//     starting, or briefly unreachable);
//   * `overloaded`                 -> retry, waiting at least the
//     server's retry_after_ms hint;
//   * any other error response     -> returned to the caller as-is
//     (a bad_request will not get better by asking again).
//
// Backoff between attempts is exponential with deterministic jitter
// (an LCG seeded by the caller, so tests replay identical schedules):
//   delay(k) = min(max_backoff, backoff << k) + jitter,
//   jitter in [0, delay/2].
#pragma once

#include <string>

#include "server/net.h"
#include "server/protocol.h"

namespace rapwam {

struct ClientOptions {
  int timeout_ms = 5000;      ///< per attempt: connect + full response
  int attempts = 5;           ///< total tries (first + retries)
  int backoff_ms = 25;        ///< initial inter-attempt delay
  int max_backoff_ms = 2000;  ///< exponential growth cap
  u64 jitter_seed = 1;        ///< deterministic jitter stream
};

struct ClientOutcome {
  Response response;  ///< the last response received
  int attempts = 0;   ///< tries actually made
};

/// Sends one request line, retrying per the policy above. Returns the
/// final response (ok, or a non-retryable / still-failing error).
/// Throws Error only when every attempt failed at the *transport*
/// level (could not connect / no well-formed response line).
ClientOutcome request_with_retry(const Endpoint& ep, const std::string& line,
                                 const ClientOptions& opt = {});

/// Single attempt, no retry: connect, send, read one response line.
/// Throws Error on transport failure.
Response request_once(const Endpoint& ep, const std::string& line,
                      int timeout_ms);

}  // namespace rapwam
