#include "server/faults.h"

#include <chrono>
#include <new>
#include <thread>

namespace rapwam {

FaultPlan FaultPlan::from_json(const JsonValue& v) {
  if (!v.is_object()) fail("fault: must be an object");
  FaultPlan p;
  for (const auto& [key, val] : v.members()) {
    i64 n = val.as_int();
    if (n < 0 || n > 1'000'000) fail("fault: " + key + " out of range");
    if (key == "fail_alloc") p.fail_alloc_n = static_cast<u32>(n);
    else if (key == "throw_chunk") p.throw_chunk_n = static_cast<u32>(n);
    else if (key == "stall_ms") p.stall_ms = static_cast<u32>(n);
    else fail("fault: unknown member \"" + key + "\"");
  }
  return p;
}

void FaultInjector::on_alloc() {
  if (!plan_.fail_alloc_n) return;
  if (allocs_.fetch_add(1, std::memory_order_relaxed) + 1 == plan_.fail_alloc_n) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
}

void FaultInjector::on_chunk(std::size_t index) {
  if (plan_.stall_ms)
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
  if (plan_.throw_chunk_n && index + 1 == plan_.throw_chunk_n) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    fail("injected chunk fault at chunk " + std::to_string(index));
  }
}

}  // namespace rapwam
