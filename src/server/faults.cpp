#include "server/faults.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <new>
#include <thread>

namespace rapwam {

FaultPlan FaultPlan::from_json(const JsonValue& v) {
  if (!v.is_object()) fail("fault: must be an object");
  FaultPlan p;
  for (const auto& [key, val] : v.members()) {
    i64 n = val.as_int();
    if (n < 0 || n > 1'000'000) fail("fault: " + key + " out of range");
    if (key == "fail_alloc") p.fail_alloc_n = static_cast<u32>(n);
    else if (key == "throw_chunk") p.throw_chunk_n = static_cast<u32>(n);
    else if (key == "stall_ms") p.stall_ms = static_cast<u32>(n);
    else if (key == "fail_checkpoint") p.fail_checkpoint_n = static_cast<u32>(n);
    else if (key == "truncate_checkpoint") p.truncate_checkpoint_n = static_cast<u32>(n);
    else if (key == "truncate_bytes") p.truncate_checkpoint_bytes = static_cast<u32>(n);
    else if (key == "flip_checkpoint") p.flip_checkpoint_n = static_cast<u32>(n);
    else if (key == "gen_fail_heap") p.gen_fail_heap_n = static_cast<u32>(n);
    else if (key == "gen_stall_every") p.gen_stall_every = static_cast<u32>(n);
    else if (key == "gen_stall_ms") p.gen_stall_ms = static_cast<u32>(n);
    else fail("fault: unknown member \"" + key + "\"");
  }
  return p;
}

void FaultInjector::on_alloc() {
  if (!plan_.fail_alloc_n) return;
  if (allocs_.fetch_add(1, std::memory_order_relaxed) + 1 == plan_.fail_alloc_n) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
}

void FaultInjector::on_chunk(std::size_t index) {
  if (plan_.stall_ms)
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
  if (plan_.throw_chunk_n && index + 1 == plan_.throw_chunk_n) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    fail("injected chunk fault at chunk " + std::to_string(index));
  }
}

bool FaultInjector::crash_checkpoint(u64 index) {
  if (!plan_.fail_checkpoint_n || index + 1 != plan_.fail_checkpoint_n)
    return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::damage_checkpoint_file(u64 index, const std::string& path) {
  bool truncate = plan_.truncate_checkpoint_n &&
                  index + 1 == plan_.truncate_checkpoint_n;
  bool flip = plan_.flip_checkpoint_n && index + 1 == plan_.flip_checkpoint_n;
  if (!truncate && !flip) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) fail("fault: cannot reopen checkpoint " + path);
  std::string bytes;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  if (!damage(truncate, flip, bytes)) return false;
  f = std::fopen(path.c_str(), "wb");
  if (!f) fail("fault: cannot rewrite checkpoint " + path);
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) fail("fault: cannot rewrite checkpoint " + path);
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::damage_checkpoint_bytes(u64 index, std::string& frame) {
  bool truncate = plan_.truncate_checkpoint_n &&
                  index + 1 == plan_.truncate_checkpoint_n;
  bool flip = plan_.flip_checkpoint_n && index + 1 == plan_.flip_checkpoint_n;
  if (!truncate && !flip) return false;
  if (!damage(truncate, flip, frame)) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::damage(bool truncate, bool flip, std::string& bytes) const {
  if (bytes.empty()) return false;
  if (truncate) {
    std::size_t keep = plan_.truncate_checkpoint_bytes
                           ? std::min<std::size_t>(plan_.truncate_checkpoint_bytes,
                                                   bytes.size() - 1)
                           : bytes.size() / 2;
    bytes.resize(keep);
  }
  if (flip && !bytes.empty()) {
    // Flip a byte past the header so the checksum — not the magic or
    // length check — is what catches it.
    std::size_t at = bytes.size() > 32 ? 32 + (bytes.size() - 32) / 2
                                       : bytes.size() / 2;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x40);
  }
  return true;
}

}  // namespace rapwam
