// Deterministic fault injection for the resident server
// (docs/DESIGN.md §10).
//
// The fault matrix the robustness suite drives — allocation failure,
// a throw mid-replay, a stalled consumer — cannot be provoked
// reliably from outside the process, so the server path carries
// explicit, deterministic injection points. A FaultPlan rides in on
// the request itself (`"fault": {...}`), is counted down as the
// request executes, and fires exactly at the Nth site regardless of
// scheduling, so every entry in tests/test_server_faults.cpp replays
// the same failure every run.
//
// Plans are only honored when the server was started with
// --enable-faults (the test flag); a production server rejects any
// request carrying a "fault" member as bad_request before touching
// state.
#pragma once

#include <atomic>
#include <optional>

#include "engine/machine.h"  // EngineFaults
#include "server/json.h"

namespace rapwam {

/// What to inject and where. All sites are 1-based ("fail the Nth");
/// 0 disables that fault.
struct FaultPlan {
  /// Throw std::bad_alloc at the Nth allocation checkpoint
  /// (on_alloc()) of the request — simulator construction, result
  /// assembly, trace acquisition.
  u32 fail_alloc_n = 0;
  /// Throw Error("injected chunk fault") at the Nth replay chunk.
  u32 throw_chunk_n = 0;
  /// Stall the replay loop `stall_ms` at every chunk checkpoint —
  /// the "slow consumer" of the matrix; pairs with deadlines and
  /// overload tests.
  u32 stall_ms = 0;
  /// Crash the Nth checkpoint publication (checkpoint/checkpoint.h):
  /// the writer leaves a torn temporary exactly as a power cut
  /// mid-write would, then throws. Recovery must come from the
  /// previous snapshot or a clean restart.
  u32 fail_checkpoint_n = 0;
  /// Truncate the Nth *published* checkpoint to `truncate_bytes`
  /// (default: half the frame) — the torn-rename case. The checksum /
  /// length validation must reject it on resume.
  u32 truncate_checkpoint_n = 0;
  u32 truncate_checkpoint_bytes = 0;
  /// Flip one payload byte of the Nth published checkpoint after its
  /// checksum was computed — silent media corruption. Resume must
  /// reject it by checksum, never replay from it.
  u32 flip_checkpoint_n = 0;
  /// Engine-side faults: forwarded into MachineConfig::faults when
  /// this request triggers a trace *generation* (no effect on cache
  /// hits). gen_fail_heap fails the Nth heap allocation with
  /// resource_exhausted; gen_stall_every/gen_stall_ms stall the cycle
  /// loop — the "slow generation" that deadline-cancellation tests pin.
  u32 gen_fail_heap_n = 0;
  u32 gen_stall_every = 0;
  u32 gen_stall_ms = 0;

  bool any() const {
    return fail_alloc_n || throw_chunk_n || stall_ms || fail_checkpoint_n ||
           truncate_checkpoint_n || flip_checkpoint_n || gen_fail_heap_n ||
           gen_stall_every || gen_stall_ms;
  }

  /// The engine-side slice of the plan, in MachineConfig terms.
  /// A default gen_stall_ms rides along with gen_stall_every so a test
  /// only has to name the cadence.
  EngineFaults engine_faults() const {
    EngineFaults f;
    f.fail_heap_growth_n = gen_fail_heap_n;
    f.stall_every_cycles = gen_stall_every;
    f.stall_ms = gen_stall_ms ? gen_stall_ms : (gen_stall_every ? 10 : 0);
    return f;
  }

  /// Parses the request's "fault" object; throws Error (→ bad_request)
  /// on unknown members or non-integer values.
  static FaultPlan from_json(const JsonValue& v);
};

/// Per-request countdown state. The worker thread executing the
/// request calls the checkpoints; counters are atomic only so TSan
/// stays quiet if a plan ever leaks across the streaming-consumer
/// boundary — each plan belongs to exactly one request.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Allocation checkpoint: throws std::bad_alloc on the Nth call.
  void on_alloc();
  /// Replay-loop checkpoint for chunk `index` (0-based): applies the
  /// stall, throws on the plan's chunk.
  void on_chunk(std::size_t index);

  /// Checkpoint-write sites (`index` is the 0-based count of
  /// checkpoints this run has attempted to publish). crash_checkpoint
  /// returns true when the Nth write should be torn mid-flight — the
  /// caller simulates the torn temporary and throws. The damage_*
  /// hooks corrupt the Nth *published* checkpoint (a file on disk, or
  /// the server's in-memory saved frame) and return true if they did.
  bool crash_checkpoint(u64 index);
  bool damage_checkpoint_file(u64 index, const std::string& path);
  bool damage_checkpoint_bytes(u64 index, std::string& frame);

  u32 fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  /// Applies the selected corruption to `bytes` in place; false if the
  /// buffer was empty (nothing to damage).
  bool damage(bool truncate, bool flip, std::string& bytes) const;

  FaultPlan plan_;
  std::atomic<u32> allocs_{0};
  std::atomic<u32> fired_{0};
};

}  // namespace rapwam
