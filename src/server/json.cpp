#include "server/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rapwam {

JsonValue JsonValue::unsigned_int(u64 u) {
  RW_CHECK(u <= u64(INT64_MAX), "counter too large for JSON integer");
  return integer(static_cast<i64>(u));
}

void JsonValue::require(Kind k) const {
  if (kind_ != k) fail("json: value has wrong type");
}

i64 JsonValue::as_int() const {
  if (kind_ == Kind::Int) return i_;
  if (kind_ == Kind::Double) {
    if (std::nearbyint(d_) != d_ || d_ < -9.2e18 || d_ > 9.2e18)
      fail("json: number is not an integer");
    return static_cast<i64>(d_);
  }
  fail("json: value is not a number");
}

double JsonValue::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(i_);
  if (kind_ == Kind::Double) return d_;
  fail("json: value is not a number");
}

const JsonValue* JsonValue::find(const std::string& key) const {
  require(Kind::Object);
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const JsonLimits& lim) : s_(text), lim_(lim) {}

  JsonValue run() {
    if (s_.size() > lim_.max_bytes)
      fail("json: input exceeds " + std::to_string(lim_.max_bytes) + " bytes");
    JsonValue v = value(0);
    skip_ws();
    if (i_ != s_.size()) err("trailing data after value");
    return v;
  }

 private:
  [[noreturn]] void err(const std::string& what) const {
    fail("json: " + what + " at offset " + std::to_string(i_));
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r'))
      ++i_;
  }

  char peek() {
    skip_ws();
    if (i_ >= s_.size()) err("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) err(std::string("expected '") + c + "'");
    ++i_;
  }

  bool literal(const char* word) {
    std::size_t n = std::strlen(word);
    if (s_.compare(i_, n, word) == 0) {
      i_ += n;
      return true;
    }
    return false;
  }

  JsonValue value(std::size_t depth) {
    // `depth` counts enclosing containers: a doc nested max_depth deep
    // has its innermost value at depth max_depth - 1.
    if (depth >= lim_.max_depth) err("nesting too deep");
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue::string(string_tok());
      case 't': if (literal("true")) return JsonValue::boolean(true); err("bad literal");
      case 'f': if (literal("false")) return JsonValue::boolean(false); err("bad literal");
      case 'n': if (literal("null")) return JsonValue::null(); err("bad literal");
      default:  return number();
    }
  }

  JsonValue object(std::size_t depth) {
    expect('{');
    JsonValue v = JsonValue::object();
    if (peek() == '}') { ++i_; return v; }
    for (;;) {
      if (v.members().size() >= lim_.max_members) err("object too large");
      std::string key = string_tok();
      // Duplicate keys are a classic parser-differential vector (one
      // layer sees the first value, another the last); reject outright.
      if (v.find(key)) err("duplicate object key \"" + key + "\"");
      expect(':');
      v.set(std::move(key), value(depth + 1));
      char c = peek();
      ++i_;
      if (c == '}') return v;
      if (c != ',') err("expected ',' or '}'");
    }
  }

  JsonValue array(std::size_t depth) {
    expect('[');
    JsonValue v = JsonValue::array();
    if (peek() == ']') { ++i_; return v; }
    for (;;) {
      if (v.items().size() >= lim_.max_members) err("array too large");
      v.push_back(value(depth + 1));
      char c = peek();
      ++i_;
      if (c == ']') return v;
      if (c != ',') err("expected ',' or ']'");
    }
  }

  std::string string_tok() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) err("unterminated string");
      if (out.size() > lim_.max_string) err("string too long");
      unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') { ++i_; return out; }
      if (c < 0x20) err("raw control character in string");
      if (c != '\\') { out.push_back(static_cast<char>(c)); ++i_; continue; }
      if (++i_ >= s_.size()) err("truncated escape");
      switch (s_[i_++]) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': unicode_escape(out); break;
        default: --i_; err("bad escape");
      }
    }
  }

  u32 hex4() {
    if (i_ + 4 > s_.size()) err("truncated \\u escape");
    u32 v = 0;
    for (int k = 0; k < 4; ++k) {
      char c = s_[i_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= u32(c - '0');
      else if (c >= 'a' && c <= 'f') v |= u32(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= u32(c - 'A' + 10);
      else { --i_; err("bad hex digit in \\u escape"); }
    }
    return v;
  }

  void unicode_escape(std::string& out) {
    u32 cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (i_ + 2 > s_.size() || s_[i_] != '\\' || s_[i_ + 1] != 'u')
        err("lone high surrogate");
      i_ += 2;
      u32 lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) err("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      err("lone low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue number() {
    skip_ws();
    std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
      err("expected value");
    // JSON grammar: no leading zeros ("007" is two tokens, i.e. junk).
    if (s_[i_] == '0' && i_ + 1 < s_.size() &&
        std::isdigit(static_cast<unsigned char>(s_[i_ + 1])))
      err("leading zero in number");
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) ++i_;
    bool integral = true;
    if (i_ < s_.size() && s_[i_] == '.') {
      integral = false;
      ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
        err("truncated fraction");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      integral = false;
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
        err("truncated exponent");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_]))) ++i_;
    }
    if (integral) {
      i64 v = 0;
      auto [p, ec] = std::from_chars(s_.data() + start, s_.data() + i_, v);
      if (ec == std::errc() && p == s_.data() + i_) return JsonValue::integer(v);
      // Out of i64 range: fall through to double (magnitude preserved
      // approximately — the protocol layer range-checks anyway).
    }
    double d = 0.0;
    auto [p, ec] = std::from_chars(s_.data() + start, s_.data() + i_, d);
    if (ec != std::errc() || p != s_.data() + i_ || !std::isfinite(d))
      err("bad number");
    return JsonValue::real(d);
  }

  const std::string& s_;
  const JsonLimits& lim_;
  std::size_t i_ = 0;
};

void write_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void write_value(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::Int: out += std::to_string(v.as_int()); break;
    case JsonValue::Kind::Double: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
      out += buf;
      break;
    }
    case JsonValue::Kind::String: write_string(out, v.as_string()); break;
    case JsonValue::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        write_value(out, e);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        write_string(out, k);
        out.push_back(':');
        write_value(out, e);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

JsonValue json_parse(const std::string& text, const JsonLimits& limits) {
  return Parser(text, limits).run();
}

std::string json_write(const JsonValue& v) {
  std::string out;
  write_value(out, v);
  return out;
}

}  // namespace rapwam
