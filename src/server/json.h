// Small JSON value model + strict parser/writer for the server's
// line-delimited request/response protocol (docs/DESIGN.md §10).
//
// The golden corpus has its own purpose-built scanner (it accepts
// exactly what it emits); the server cannot be that lucky — request
// lines arrive from arbitrary clients and the fuzz suite feeds the
// parser truncated, hostile and garbage input. json_parse() is a
// strict recursive-descent JSON parser with explicit resource bounds
// (nesting depth, input size) that throws Error on anything malformed
// and never reads out of bounds — every request is fully validated
// into a JsonValue before any server state is touched.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "support/common.h"

namespace rapwam {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b) { JsonValue v; v.kind_ = Kind::Bool; v.b_ = b; return v; }
  static JsonValue integer(i64 i) { JsonValue v; v.kind_ = Kind::Int; v.i_ = i; return v; }
  /// Stats counters are u64; the simulators' counts stay far below
  /// 2^63, which RW_CHECK enforces rather than silently wrapping.
  static JsonValue unsigned_int(u64 u);
  static JsonValue real(double d) { JsonValue v; v.kind_ = Kind::Double; v.d_ = d; return v; }
  static JsonValue string(std::string s) { JsonValue v; v.kind_ = Kind::String; v.s_ = std::move(s); return v; }
  static JsonValue array() { JsonValue v; v.kind_ = Kind::Array; return v; }
  static JsonValue object() { JsonValue v; v.kind_ = Kind::Object; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { require(Kind::Bool); return b_; }
  i64 as_int() const;      ///< Int, or a Double holding an exact integer
  double as_double() const;
  const std::string& as_string() const { require(Kind::String); return s_; }
  const std::vector<JsonValue>& items() const { require(Kind::Array); return arr_; }
  /// Insertion-ordered key/value pairs (duplicates rejected at parse).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    require(Kind::Object);
    return obj_;
  }

  /// Object member by key, or nullptr.
  const JsonValue* find(const std::string& key) const;

  // -- builders (used for responses)
  void push_back(JsonValue v) { require(Kind::Array); arr_.push_back(std::move(v)); }
  void set(std::string key, JsonValue v) {
    require(Kind::Object);
    obj_.emplace_back(std::move(key), std::move(v));
  }

 private:
  void require(Kind k) const;

  Kind kind_;
  bool b_ = false;
  i64 i_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

struct JsonLimits {
  std::size_t max_bytes = std::size_t(1) << 20;  ///< 1 MB per line
  std::size_t max_depth = 32;
  std::size_t max_string = std::size_t(1) << 20;
  std::size_t max_members = 4096;  ///< per object/array
};

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed, trailing data rejected). Throws Error with a
/// byte offset on malformed input; enforces `limits` so hostile input
/// cannot blow the stack (depth) or memory (size caps).
JsonValue json_parse(const std::string& text, const JsonLimits& limits = {});

/// Compact single-line rendering (the response wire format). Strings
/// are escaped; doubles use shortest round-trip formatting.
std::string json_write(const JsonValue& v);

}  // namespace rapwam
