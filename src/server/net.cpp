#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rapwam {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

void fill_unix(sockaddr_un& sa, const std::string& path) {
  std::memset(&sa, 0, sizeof sa);
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof sa.sun_path)
    fail("unix socket path too long: " + path);
  std::memcpy(sa.sun_path, path.c_str(), path.size());
}

void fill_tcp(sockaddr_in& sa, const std::string& host, int port) {
  std::memset(&sa, 0, sizeof sa);
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<u16>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1)
    fail("bad IPv4 address: " + host);
}

/// Waits for readability/writability with a timeout; returns false on
/// timeout. `timeout_ms` < 0 waits forever.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) sys_fail("poll");
  }
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.path = spec.substr(5);
  } else if (spec.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    std::string rest = spec.substr(4);
    std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      ep.host = "127.0.0.1";
    } else {
      ep.host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    try {
      ep.port = std::stoi(rest);
    } catch (...) {
      fail("bad tcp endpoint (want tcp:PORT or tcp:HOST:PORT): " + spec);
    }
    // Port 0 is allowed: a listener binds an ephemeral port and
    // reports the real one via endpoint().
    if (ep.port < 0 || ep.port > 65535) fail("tcp port out of range: " + spec);
  } else if (spec.find('/') != std::string::npos) {
    ep.path = spec;  // bare path: unix socket
  } else {
    fail("bad endpoint (want unix:/path or tcp:[HOST:]PORT): " + spec);
  }
  if (ep.is_unix && ep.path.empty()) fail("empty unix socket path");
  return ep;
}

std::string Endpoint::str() const {
  return is_unix ? "unix:" + path : "tcp:" + host + ":" + std::to_string(port);
}

// --- Socket ---------------------------------------------------------------

Socket::Socket(Socket&& o) noexcept : fd_(o.fd_), buf_(std::move(o.buf_)) {
  o.fd_ = -1;
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    buf_ = std::move(o.buf_);
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Socket Socket::connect(const Endpoint& ep, int timeout_ms) {
  int fd = ::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  Socket s(fd);
  // Non-blocking connect so the timeout covers connection setup too
  // (a wedged server must not hang the client forever).
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc;
  if (ep.is_unix) {
    sockaddr_un sa;
    fill_unix(sa, ep.path);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  } else {
    sockaddr_in sa;
    fill_tcp(sa, ep.host, ep.port);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  }
  if (rc != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN)
      sys_fail("connect to " + ep.str());
    if (!wait_fd(fd, POLLOUT, timeout_ms))
      fail("connect to " + ep.str() + ": timed out");
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err ? err : EIO;
      sys_fail("connect to " + ep.str());
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads poll explicitly
  return s;
}

void Socket::send_all(const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_line(std::string& line, std::size_t max_bytes, int timeout_ms) {
  for (;;) {
    std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buf_.size() > max_bytes)
      fail("line exceeds " + std::to_string(max_bytes) + " bytes");
    if (timeout_ms >= 0 && !wait_fd(fd_, POLLIN, timeout_ms))
      fail("recv: timed out");
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) {
      if (buf_.empty()) return false;  // clean EOF between lines
      fail("connection closed mid-line");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

// --- Listener -------------------------------------------------------------

Listener::Listener(const Endpoint& ep, int backlog) : ep_(ep) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) sys_fail("pipe");
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  fd_ = ::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  if (ep.is_unix) {
    ::unlink(ep.path.c_str());  // stale socket from a dead server
    sockaddr_un sa;
    fill_unix(sa, ep.path);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0)
      sys_fail("bind " + ep.str());
  } else {
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa;
    fill_tcp(sa, ep.host.empty() ? "127.0.0.1" : ep.host, ep.port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0)
      sys_fail("bind " + ep.str());
    if (ep.port == 0) {  // ephemeral port: report what we got
      socklen_t len = sizeof sa;
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) == 0)
        ep_.port = ntohs(sa.sin_port);
    }
  }
  if (::listen(fd_, backlog) != 0) sys_fail("listen " + ep.str());
}

Listener::~Listener() {
  stop();
  if (fd_ >= 0) ::close(fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  if (ep_.is_unix) ::unlink(ep_.path.c_str());
}

Socket Listener::accept() {
  for (;;) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_r_, POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll(accept)");
    }
    if (fds[1].revents) return Socket();  // stop requested
    if (!(fds[0].revents & POLLIN)) continue;
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      sys_fail("accept");
    }
    return Socket(cfd);
  }
}

void Listener::stop() { notify_stop_async(); }

void Listener::notify_stop_async() {
  if (wake_w_ >= 0) {
    char b = 's';
    // write() is async-signal-safe; ignore the result — a full pipe
    // means a wake-up is already pending.
    [[maybe_unused]] ssize_t rc = ::write(wake_w_, &b, 1);
  }
}

}  // namespace rapwam
