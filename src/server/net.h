// Minimal POSIX socket layer for the resident server and its client
// (docs/DESIGN.md §10): endpoint addressing, RAII descriptors, a
// bounded line reader, and interruptible accept.
//
// Endpoints:
//   unix:/path/to.sock   (also any string containing '/')
//   tcp:PORT             (loopback)
//   tcp:HOST:PORT
//
// Everything here throws rapwam::Error on failure; nothing ever
// raises SIGPIPE (sends use MSG_NOSIGNAL) — a client that disconnects
// mid-response must surface as an error return, not kill the server.
#pragma once

#include <string>

#include "support/common.h"

namespace rapwam {

struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp
  int port = 0;

  static Endpoint parse(const std::string& spec);
  std::string str() const;
};

/// RAII connected socket with a read buffer for line framing.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept;
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  static Socket connect(const Endpoint& ep, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Half-close the write side (client signals end-of-requests).
  void shutdown_write();
  /// Shut the read side: a blocked recv on this socket (even in
  /// another thread) returns EOF. The server's drain uses this to
  /// unpark idle connection threads without closing the fd under them.
  void shutdown_read();

  /// Sends the whole buffer (MSG_NOSIGNAL); throws Error on failure
  /// — including the peer having gone away.
  void send_all(const std::string& data);

  /// Reads up to and including the next '\n', returning the line
  /// without it. Returns false on clean EOF before any byte of a new
  /// line. Throws Error on I/O failure, on a line exceeding
  /// `max_bytes` (hostile input guard), or when `timeout_ms` >= 0
  /// elapses mid-line.
  bool recv_line(std::string& line, std::size_t max_bytes, int timeout_ms = -1);

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

/// Listening socket with interruptible accept: stop() wakes any
/// blocked accept() via a self-pipe, which is also how the SIGTERM
/// handler requests a drain without doing anything async-unsafe.
class Listener {
 public:
  explicit Listener(const Endpoint& ep, int backlog = 64);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const Endpoint& endpoint() const { return ep_; }

  /// Blocks until a connection arrives (returned) or stop() is called
  /// (returns an invalid Socket).
  Socket accept();

  /// Unblocks accept() permanently. Safe to call from any thread; the
  /// underlying write is async-signal-safe, so a signal handler may
  /// call notify_stop_async() directly.
  void stop();
  void notify_stop_async();  ///< signal-handler-safe subset of stop()

 private:
  Endpoint ep_;
  int fd_ = -1;
  int wake_r_ = -1, wake_w_ = -1;  ///< self-pipe
};

}  // namespace rapwam
