#include "server/protocol.h"

#include <algorithm>

namespace rapwam {

std::string op_name(ReqOp op) {
  switch (op) {
    case ReqOp::Ping: return "ping";
    case ReqOp::Stats: return "stats";
    case ReqOp::Replay: return "replay";
    case ReqOp::Time: return "time";
    case ReqOp::Sweep: return "sweep";
    case ReqOp::Golden: return "golden";
    case ReqOp::Shutdown: return "shutdown";
  }
  return "?";
}

std::string err_code_name(ErrCode c) {
  switch (c) {
    case ErrCode::BadRequest: return "bad_request";
    case ErrCode::Failed: return "failed";
    case ErrCode::ResourceExhausted: return "resource_exhausted";
    case ErrCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrCode::Cancelled: return "cancelled";
    case ErrCode::Overloaded: return "overloaded";
    case ErrCode::ShuttingDown: return "shutting_down";
    case ErrCode::Internal: return "internal";
  }
  return "?";
}

namespace {

ReqOp op_from_name(const std::string& s) {
  if (s == "ping") return ReqOp::Ping;
  if (s == "stats") return ReqOp::Stats;
  if (s == "replay") return ReqOp::Replay;
  if (s == "time") return ReqOp::Time;
  if (s == "sweep") return ReqOp::Sweep;
  if (s == "golden") return ReqOp::Golden;
  if (s == "shutdown") return ReqOp::Shutdown;
  fail("unknown op \"" + s +
       "\" (expected ping, stats, replay, time, sweep, golden, shutdown)");
}

i64 int_in(const JsonValue& v, const std::string& key, i64 lo, i64 hi) {
  if (!v.is_number()) fail("member \"" + key + "\" must be a number");
  i64 n = v.as_int();
  if (n < lo || n > hi)
    fail("member \"" + key + "\" out of range [" + std::to_string(lo) + ", " +
         std::to_string(hi) + "]");
  return n;
}

const std::string& string_of(const JsonValue& v, const std::string& key) {
  if (!v.is_string()) fail("member \"" + key + "\" must be a string");
  return v.as_string();
}

std::string check_bench(const std::string& name) {
  std::vector<std::string> known = small_bench_names();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    std::string list;
    for (const std::string& b : known) list += (list.empty() ? "" : ", ") + b;
    fail("unknown bench \"" + name + "\" (expected " + list + ")");
  }
  return name;
}

BenchScale scale_from(const std::string& s) {
  if (s == "small") return BenchScale::Small;
  if (s == "paper") return BenchScale::Paper;
  fail("unknown scale \"" + s + "\" (expected small, paper)");
}

/// Is `key` meaningful for `op`? Unknown-for-this-op members are
/// rejected rather than ignored: a typoed "protcol" silently running
/// the default point is worse than an error.
bool key_allowed(ReqOp op, const std::string& key) {
  static const char* kCommon[] = {"op", "id", "deadline_ms", "fault"};
  for (const char* k : kCommon)
    if (key == k) return true;
  auto any_of = [&key](std::initializer_list<const char*> ks) {
    for (const char* k : ks)
      if (key == k) return true;
    return false;
  };
  switch (op) {
    case ReqOp::Ping:
    case ReqOp::Stats:
    case ReqOp::Shutdown:
      return false;
    case ReqOp::Replay:
      return any_of({"bench", "trace", "scale", "pes", "protocol", "size",
                     "line", "ways", "no_allocate", "max_solutions", "l2",
                     "l2_ways", "l2_noninclusive", "l2_hit"});
    case ReqOp::Time:
      return any_of({"bench", "trace", "scale", "pes", "protocol", "size",
                     "line", "ways", "no_allocate", "max_solutions", "l2",
                     "l2_ways", "l2_noninclusive", "l2_hit", "service",
                     "interleave", "wbuf", "cpr", "mem_extra"});
    case ReqOp::Sweep:
      return any_of({"bench", "scale", "pes", "protocols", "sizes", "line"});
    case ReqOp::Golden:
      return any_of({"bench"});
  }
  return false;
}

}  // namespace

Request parse_request(const std::string& line, const RequestLimits& lim) {
  JsonValue v = json_parse(line);
  if (!v.is_object()) fail("request must be a JSON object");
  const JsonValue* opv = v.find("op");
  if (!opv) fail("request has no \"op\" member");
  Request r;
  r.op = op_from_name(string_of(*opv, "op"));

  bool explicit_allocate = false;
  for (const auto& [key, val] : v.members()) {
    if (!key_allowed(r.op, key))
      fail("member \"" + key + "\" not valid for op \"" + op_name(r.op) + "\"");
    if (key == "op") continue;
    if (key == "id") {
      if (!val.is_int() && !val.is_string())
        fail("member \"id\" must be an integer or string");
      r.id = val;
    } else if (key == "deadline_ms") {
      r.deadline_ms = static_cast<u32>(int_in(val, key, 1, lim.max_deadline_ms));
    } else if (key == "fault") {
      r.fault = FaultPlan::from_json(val);
    } else if (key == "bench") {
      r.bench = check_bench(string_of(val, key));
    } else if (key == "trace") {
      r.trace_path = string_of(val, key);
      if (r.trace_path.empty()) fail("member \"trace\" must be a non-empty path");
    } else if (key == "scale") {
      r.scale = scale_from(string_of(val, key));
    } else if (key == "pes") {
      // Single source of truth for the bound: the simulator's own cap
      // (check_pes re-validates; the range here makes int_in produce
      // the precise out-of-range message).
      r.pes = check_pes(
          static_cast<unsigned>(int_in(val, key, 1, static_cast<i64>(kMaxPes))));
      r.explicit_pes = true;
    } else if (key == "protocol") {
      r.cfg.protocol = protocol_from_name(string_of(val, key));
    } else if (key == "size") {
      r.cfg.size_words = static_cast<u32>(int_in(val, key, 16, lim.max_size_words));
    } else if (key == "line") {
      r.cfg.line_words = static_cast<u32>(int_in(val, key, 1, 64));
    } else if (key == "ways") {
      r.cfg.ways = static_cast<u32>(int_in(val, key, 0, 1024));
    } else if (key == "no_allocate") {
      if (!val.is_bool()) fail("member \"no_allocate\" must be a boolean");
      if (val.as_bool()) {
        r.cfg.write_allocate = false;
        explicit_allocate = true;
      }
    } else if (key == "max_solutions") {
      r.max_solutions = static_cast<unsigned>(int_in(val, key, 1, lim.max_solutions));
    } else if (key == "l2") {
      r.cfg.l2.size_words = static_cast<u32>(int_in(val, key, 0, lim.max_size_words));
    } else if (key == "l2_ways") {
      r.cfg.l2.ways = static_cast<u32>(int_in(val, key, 0, 1024));
    } else if (key == "l2_noninclusive") {
      if (!val.is_bool()) fail("member \"l2_noninclusive\" must be a boolean");
      if (val.as_bool()) r.cfg.l2.inclusion = L2Config::Inclusion::NonInclusive;
    } else if (key == "l2_hit") {
      r.cfg.l2.hit_extra_cycles = static_cast<u32>(int_in(val, key, 0, 1 << 20));
    } else if (key == "service") {
      r.timing.bus_service_cycles = static_cast<u32>(int_in(val, key, 0, 1 << 20));
    } else if (key == "interleave") {
      r.timing.interleave = static_cast<u32>(int_in(val, key, 1, 1 << 10));
    } else if (key == "wbuf") {
      r.timing.write_buffer_depth = static_cast<u32>(int_in(val, key, 0, 1 << 10));
    } else if (key == "cpr") {
      r.timing.cycles_per_ref = static_cast<u32>(int_in(val, key, 1, 1 << 20));
    } else if (key == "mem_extra") {
      r.timing.mem_extra_cycles = static_cast<u32>(int_in(val, key, 0, 1 << 20));
    } else if (key == "protocols") {
      if (!val.is_array()) fail("member \"protocols\" must be an array");
      for (const JsonValue& p : val.items())
        r.sweep_protocols.push_back(protocol_from_name(string_of(p, key)));
    } else if (key == "sizes") {
      if (!val.is_array()) fail("member \"sizes\" must be an array");
      for (const JsonValue& s : val.items())
        r.sweep_sizes.push_back(
            static_cast<u32>(int_in(s, key, 16, lim.max_size_words)));
    } else {
      fail("member \"" + key + "\" unhandled");  // keep key_allowed in sync
    }
  }

  // Cross-member checks.
  if (r.op == ReqOp::Replay || r.op == ReqOp::Time || r.op == ReqOp::Sweep) {
    // A bench-sourced trace is *generated* at r.pes, and the emulator
    // is bounded by the trace format's PE-id field — reject up front
    // rather than failing mid-generation. (A trace-file replay may
    // still size the simulator up to kMaxPes.)
    if (r.explicit_pes && r.trace_path.empty() && r.pes > kMaxTracePes)
      fail("\"pes\" > " + std::to_string(kMaxTracePes) +
           " requires a pre-recorded \"trace\" (bench traces are capped by "
           "the packed trace format's 8-bit PE id)");
  }
  if (r.op == ReqOp::Replay || r.op == ReqOp::Time) {
    if (!r.bench.empty() && !r.trace_path.empty())
      fail("\"bench\" and \"trace\" are mutually exclusive");
    if (r.bench.empty() && r.trace_path.empty()) r.bench = "qsort";
    if (r.cfg.size_words % r.cfg.line_words)
      fail("\"size\" must be a multiple of \"line\"");
    // Unless the client pinned the policy, follow the paper's
    // size-dependent allocation rule, like the CLI tools do.
    if (!explicit_allocate)
      r.cfg.write_allocate =
          paper_write_allocate(r.cfg.protocol, r.cfg.size_words);
  }
  if (r.op == ReqOp::Sweep) {
    if (r.bench.empty()) r.bench = "qsort";
    if (r.sweep_protocols.empty())
      r.sweep_protocols = {Protocol::WriteThrough, Protocol::WriteInBroadcast,
                           Protocol::WriteThroughBroadcast, Protocol::Hybrid,
                           Protocol::Copyback};
    if (r.sweep_sizes.empty()) r.sweep_sizes = {256, 512, 1024, 2048};
    std::size_t n = r.sweep_protocols.size() * r.sweep_sizes.size();
    if (n > lim.max_sweep_points)
      fail("oversized sweep: " + std::to_string(n) + " points > " +
           std::to_string(lim.max_sweep_points));
  }
  if (r.op == ReqOp::Golden && r.bench.empty()) r.bench = "qsort";
  return r;
}

std::string ok_response(const JsonValue& id, JsonValue result) {
  JsonValue v = JsonValue::object();
  v.set("id", id);
  v.set("ok", JsonValue::boolean(true));
  v.set("result", std::move(result));
  return json_write(v);
}

std::string error_response(const JsonValue& id, ErrCode code,
                           const std::string& message, i64 retry_after_ms) {
  JsonValue err = JsonValue::object();
  err.set("code", JsonValue::string(err_code_name(code)));
  err.set("message", JsonValue::string(message));
  JsonValue v = JsonValue::object();
  v.set("id", id);
  v.set("ok", JsonValue::boolean(false));
  v.set("error", std::move(err));
  if (retry_after_ms >= 0)
    v.set("retry_after_ms", JsonValue::integer(retry_after_ms));
  return json_write(v);
}

Response Response::parse(const std::string& line) {
  JsonValue v = json_parse(line);
  if (!v.is_object()) fail("response must be a JSON object");
  Response r;
  if (const JsonValue* id = v.find("id")) r.id = *id;
  const JsonValue* ok = v.find("ok");
  if (!ok || !ok->is_bool()) fail("response has no boolean \"ok\"");
  r.ok = ok->as_bool();
  if (r.ok) {
    if (const JsonValue* res = v.find("result")) r.result = *res;
  } else {
    const JsonValue* err = v.find("error");
    if (!err || !err->is_object()) fail("error response has no \"error\" object");
    if (const JsonValue* c = err->find("code")) r.code = c->as_string();
    if (const JsonValue* m = err->find("message")) r.message = m->as_string();
    if (const JsonValue* ra = v.find("retry_after_ms")) r.retry_after_ms = ra->as_int();
  }
  return r;
}

}  // namespace rapwam
