// Request/response protocol of the resident sweep service
// (docs/DESIGN.md §10).
//
// Wire format: one JSON object per line in both directions.
//
//   {"op":"replay","bench":"qsort","pes":4,"protocol":"broadcast",
//    "size":1024,"deadline_ms":2000,"id":7}
//   -> {"id":7,"ok":true,"result":{"refs":6612,"bus_words":...}}
//   -> {"id":7,"ok":false,
//       "error":{"code":"overloaded","message":"..."},"retry_after_ms":25}
//
// parse_request() validates EVERYTHING — JSON shape, op, member
// applicability, types, ranges — before any server state is touched;
// a hostile line can only ever produce a structured bad_request
// error. The fuzz suite (tests/test_server_protocol.cpp) pins that
// the parser either yields a valid Request or throws Error, on any
// input.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cache/config.h"
#include "harness/programs.h"
#include "server/faults.h"
#include "server/json.h"
#include "timing/timed_replay.h"

namespace rapwam {

enum class ReqOp { Ping, Stats, Replay, Time, Sweep, Golden, Shutdown };

std::string op_name(ReqOp op);

/// Machine-readable failure taxonomy; the retrying client keys its
/// behaviour off these (retry overloaded, give up on bad_request).
enum class ErrCode {
  BadRequest,         ///< malformed/invalid request; never retried
  Failed,             ///< domain failure: corrupt trace, unknown bench
  ResourceExhausted,  ///< allocation failure executing the request
  DeadlineExceeded,   ///< per-request deadline fired
  Cancelled,          ///< request cancelled (drain of in-flight work)
  Overloaded,         ///< admission queue full; carries retry_after_ms
  ShuttingDown,       ///< server draining; no new work accepted
  Internal,           ///< unexpected exception (a bug — but not a crash)
};

std::string err_code_name(ErrCode c);

/// Bounds a request may not exceed — the "oversized sweep" guardrails.
/// Violations are bad_request at parse time, before admission.
struct RequestLimits {
  u32 max_size_words = u32(1) << 22;  ///< 4M words per cache
  u32 max_sweep_points = 512;
  u32 max_solutions = 64;
  i64 max_deadline_ms = 3'600'000;
};

/// A fully validated request. Workload members default to the paper's
/// standard measurement point.
struct Request {
  ReqOp op = ReqOp::Ping;
  JsonValue id;  ///< echoed verbatim in the response; Null if absent
  u32 deadline_ms = 0;  ///< 0 = server default
  std::optional<FaultPlan> fault;

  // -- workload (replay / time / sweep / golden)
  std::string bench;       ///< generated workload (TraceLibrary key)
  std::string trace_path;  ///< or a recorded trace file; mutually exclusive
  BenchScale scale = BenchScale::Small;
  unsigned pes = 4;
  bool explicit_pes = false;  ///< false + trace file => PEs from metadata
  CacheConfig cfg;            ///< replay/time point
  unsigned max_solutions = 1;
  TimingParams timing;  ///< time only

  // -- sweep grid: protocols × sizes
  std::vector<Protocol> sweep_protocols;
  std::vector<u32> sweep_sizes;
};

/// Parses and validates one request line. Throws Error (the message
/// becomes the bad_request response) on anything out of shape; never
/// mutates any state.
Request parse_request(const std::string& line, const RequestLimits& limits = {});

// -- response building (always single-line, newline appended by the
//    connection writer, not here)

std::string ok_response(const JsonValue& id, JsonValue result);
std::string error_response(const JsonValue& id, ErrCode code,
                           const std::string& message, i64 retry_after_ms = -1);

/// Parsed response, as the client sees it.
struct Response {
  JsonValue id;
  bool ok = false;
  JsonValue result;     ///< when ok
  std::string code;     ///< when !ok
  std::string message;  ///< when !ok
  i64 retry_after_ms = -1;

  static Response parse(const std::string& line);
};

}  // namespace rapwam
