#include "server/server.h"

namespace rapwam {

Server::Server(const Endpoint& ep, const ServiceConfig& cfg)
    : service_(cfg), listener_(ep) {}

Server::~Server() {
  if (run_thread_.joinable()) stop();
}

void Server::reap_finished() {
  std::vector<std::thread> done;
  {
    std::scoped_lock lk(conn_mu_);
    for (u64 id : finished_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& t : done) t.join();
}

void Server::run() {
  for (;;) {
    Socket s = listener_.accept();
    if (!s.valid()) break;  // stop requested
    reap_finished();  // a resident server must not accumulate zombies
    auto sock = std::make_shared<Socket>(std::move(s));
    std::scoped_lock lk(conn_mu_);
    u64 id = next_conn_id_++;
    conns_.emplace(id, sock);
    conn_threads_.emplace(
        id, std::thread([this, id, sock] { serve_connection(id, sock); }));
  }

  // Drain: no new connections arrive past this point. New *requests*
  // on live connections now answer shutting_down; in-flight ones run
  // to completion and their responses are written by their own
  // connection threads.
  service_.begin_drain();
  service_.wait_idle();

  // Idle connections sit blocked in recv_line waiting for a next
  // request that will never matter; give them EOF. Threads that are
  // mid-response finish writing first (shutdown_read leaves the write
  // side alone).
  {
    std::scoped_lock lk(conn_mu_);
    for (const auto& [id, sock] : conns_) sock->shutdown_read();
  }
  std::map<u64, std::thread> threads;
  {
    std::scoped_lock lk(conn_mu_);
    threads.swap(conn_threads_);
    finished_.clear();
  }
  for (auto& [id, t] : threads) t.join();
}

void Server::start() {
  run_thread_ = std::thread([this] { run(); });
}

void Server::stop() {
  request_stop();
  if (run_thread_.joinable()) run_thread_.join();
}

void Server::serve_connection(u64 id, std::shared_ptr<Socket> sock) {
  std::string line;
  for (;;) {
    bool got = false;
    try {
      got = sock->recv_line(line, JsonLimits{}.max_bytes);
    } catch (const std::exception& e) {
      // Oversized line or I/O failure: the framing cannot be trusted
      // any more, so answer (best-effort) and end this connection only.
      try {
        sock->send_all(error_response(JsonValue(), ErrCode::BadRequest,
                                      e.what()) +
                       "\n");
      } catch (...) {
      }
      break;
    }
    if (!got) break;  // clean EOF

    bool saw_shutdown = false;
    std::string response = service_.handle_line(line, &saw_shutdown);
    try {
      sock->send_all(response + "\n");
    } catch (...) {
      // Peer vanished mid-response. The request already executed (and
      // is counted); nobody else is affected.
      if (saw_shutdown) listener_.stop();
      break;
    }
    if (saw_shutdown) {
      listener_.stop();  // run() takes over and drains
      break;
    }
  }
  std::scoped_lock lk(conn_mu_);
  conns_.erase(id);
  finished_.push_back(id);
}

}  // namespace rapwam
