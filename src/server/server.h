// Connection transport of the resident sweep service (docs/DESIGN.md
// §10): accept loop, one thread per connection, graceful drain.
//
// The Server owns a Listener and a Service; each accepted connection
// gets a thread that reads request lines and writes the Service's
// response lines back. All failure handling that involves the *peer*
// lives here: a client that disconnects mid-response or mid-request
// just ends its own connection — the Service (and every other
// connection) never notices.
//
// Drain (SIGINT/SIGTERM or a `shutdown` request):
//   1. stop accepting new connections;
//   2. Service::begin_drain() — new requests answer `shutting_down`;
//   3. wait for in-flight requests to execute and their responses to
//      be written;
//   4. shut the read side of idle connections so their threads see
//      EOF, and join them.
// A signal handler only calls request_stop() (async-signal-safe); the
// drain itself runs in run()'s normal context.
#pragma once

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "server/net.h"
#include "server/service.h"

namespace rapwam {

class Server {
 public:
  /// Binds immediately (throws Error if the endpoint is taken).
  Server(const Endpoint& ep, const ServiceConfig& cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Where we actually listen (resolves tcp:0 to the ephemeral port).
  const Endpoint& endpoint() const { return listener_.endpoint(); }
  Service& service() { return service_; }

  /// Accepts and serves until request_stop() (or a `shutdown`
  /// request), then drains and returns. Call from the main thread —
  /// or use start()/stop() to run it in the background (tests).
  void run();

  void start();  ///< run() on a background thread
  void stop();   ///< request_stop() + join the background run()

  /// Wakes the accept loop so run() begins its drain. The only member
  /// a signal handler may call.
  void request_stop() { listener_.notify_stop_async(); }

 private:
  void serve_connection(u64 id, std::shared_ptr<Socket> sock);
  void reap_finished();  ///< join connection threads that have exited

  Service service_;
  Listener listener_;

  std::mutex conn_mu_;
  u64 next_conn_id_ = 0;
  std::map<u64, std::thread> conn_threads_;
  std::map<u64, std::shared_ptr<Socket>> conns_;  ///< live connection sockets
  std::vector<u64> finished_;  ///< ids whose thread has returned

  std::thread run_thread_;  ///< engaged by start()
};

}  // namespace rapwam
