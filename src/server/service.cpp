#include "server/service.h"

#include <algorithm>

#include "cache/sweep.h"
#include "checkpoint/checkpoint.h"
#include "harness/golden.h"

namespace rapwam {

namespace {

/// Replays `trace` through `sim` with the cooperative checks the
/// server adds to every loop: the cancellation checkpoint and the
/// fault-injection chunk hook, both at chunk granularity.
template <typename Sim>
void replay_checked(Sim& sim, const ChunkedTrace& trace,
                    const CancelToken& cancel, FaultInjector* faults) {
  std::size_t index = 0;
  trace.for_each_chunk([&](const u64* refs, std::size_t n) {
    // Fault hook first: an injected stall models a slow chunk, and the
    // deadline must notice it even when the trace is a single chunk.
    if (faults) faults->on_chunk(index);
    cancel.checkpoint();
    sim.replay(refs, n);
    ++index;
  });
}

JsonValue traffic_json(const TrafficStats& s) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, value] : traffic_fields(s))
    out.set(name, JsonValue::unsigned_int(value));
  out.set("traffic_ratio", JsonValue::real(s.traffic_ratio()));
  out.set("miss_ratio", JsonValue::real(s.miss_ratio()));
  return out;
}

JsonValue timing_json(const TimingStats& t) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, value] : timing_fields(t))
    out.set(name, JsonValue::unsigned_int(value));
  out.set("speedup", JsonValue::real(t.speedup()));
  out.set("efficiency", JsonValue::real(t.efficiency()));
  out.set("bus_utilization", JsonValue::real(t.bus_utilization()));
  return out;
}

}  // namespace

Service::Service(const ServiceConfig& cfg)
    : cfg_(cfg), pool_(std::max(1u, cfg.workers)) {}

Service::~Service() {
  begin_drain();
  wait_idle();
}

void Service::begin_drain() { draining_.store(true, std::memory_order_relaxed); }

void Service::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_.load() == 0; });
}

ServiceCounters Service::counters() const {
  std::scoped_lock lk(mu_);
  return counters_;
}

std::string Service::handle_line(const std::string& line, bool* saw_shutdown) {
  {
    std::scoped_lock lk(mu_);
    ++counters_.received;
  }
  Request req;
  try {
    req = parse_request(line, cfg_.limits);
    if (req.fault && !cfg_.enable_faults)
      fail("fault injection is disabled (start the server with "
           "--enable-faults)");
  } catch (const Error& e) {
    std::scoped_lock lk(mu_);
    ++counters_.rejected;
    return error_response(JsonValue(), ErrCode::BadRequest, e.what());
  } catch (const std::exception& e) {
    std::scoped_lock lk(mu_);
    ++counters_.rejected;
    return error_response(JsonValue(), ErrCode::Internal, e.what());
  }

  // Control-plane ops answer inline: they must work even when every
  // worker is busy (stats during overload) or the server is draining
  // (a second shutdown is a polite no-op).
  if (req.op == ReqOp::Ping) {
    JsonValue r = JsonValue::object();
    r.set("pong", JsonValue::boolean(true));
    return ok_response(req.id, std::move(r));
  }
  if (req.op == ReqOp::Stats) return ok_response(req.id, run_stats());
  if (req.op == ReqOp::Shutdown) {
    if (saw_shutdown) *saw_shutdown = true;
    begin_drain();
    JsonValue r = JsonValue::object();
    r.set("draining", JsonValue::boolean(true));
    return ok_response(req.id, std::move(r));
  }

  if (draining()) {
    std::scoped_lock lk(mu_);
    ++counters_.rejected;
    return error_response(req.id, ErrCode::ShuttingDown,
                          "server is draining; not accepting new work");
  }

  // Admission: shed rather than queue without bound. in_flight_ counts
  // admitted requests (queued + running); the cap is workers +
  // queue_limit.
  i64 limit = static_cast<i64>(cfg_.workers) + static_cast<i64>(cfg_.queue_limit);
  i64 backlog = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (backlog > limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    // Sized to the backlog: the deeper the queue, the longer a retry
    // should wait. The backoff client treats this as a floor.
    i64 retry_ms = std::clamp<i64>(10 * (backlog - limit), 10, 1000);
    std::scoped_lock lk(mu_);
    ++counters_.shed;
    return error_response(req.id, ErrCode::Overloaded,
                          "admission queue full (" + std::to_string(backlog - 1) +
                              " in flight)",
                          retry_ms);
  }

  std::string response;
  try {
    response = pool_.submit([this, req] { return execute(req); }).get();
  } catch (const std::exception& e) {
    // execute() never throws; this is belt-and-braces for the future
    // machinery itself.
    response = error_response(req.id, ErrCode::Internal, e.what());
  }
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::scoped_lock lk(mu_);
    idle_cv_.notify_all();
  }
  return response;
}

std::string Service::execute(const Request& req) {
  // Deadline clock starts at admission; time spent queued behind other
  // requests counts against the budget (the client is waiting either
  // way). 0 = the server's default, which may itself be "none".
  u32 deadline = req.deadline_ms ? req.deadline_ms : cfg_.default_deadline_ms;
  CancelToken cancel = deadline
                           ? CancelToken::with_deadline(std::chrono::milliseconds(deadline))
                           : CancelToken();
  std::unique_ptr<FaultInjector> faults;
  if (req.fault) faults = std::make_unique<FaultInjector>(*req.fault);

  auto account = [&](bool ok, bool was_cancelled) {
    std::scoped_lock lk(mu_);
    if (ok) ++counters_.completed;
    else ++counters_.failed;
    if (was_cancelled) ++counters_.cancelled;
    if (faults) counters_.faults_injected += faults->fired();
  };

  try {
    cancel.checkpoint();  // expired while queued: bounce before any work
    JsonValue result;
    switch (req.op) {
      case ReqOp::Replay: result = run_replay(req, cancel, faults.get()); break;
      case ReqOp::Time: result = run_time(req, cancel, faults.get()); break;
      case ReqOp::Sweep: result = run_sweep_op(req, cancel, faults.get()); break;
      case ReqOp::Golden: result = run_golden(req, cancel); break;
      default: fail("op not executable on a worker");  // handled inline
    }
    account(true, false);
    return ok_response(req.id, std::move(result));
  } catch (const CancelledError& e) {
    account(false, true);
    return error_response(req.id,
                          e.deadline_exceeded() ? ErrCode::DeadlineExceeded
                                                : ErrCode::Cancelled,
                          e.what());
  } catch (const std::bad_alloc&) {
    account(false, false);
    return error_response(req.id, ErrCode::ResourceExhausted,
                          "allocation failure executing request");
  } catch (const ResourceExhaustedError& e) {
    // Engine budget trips (heap/stack/trail/step caps) map to the same
    // wire code as allocation failure: the request asked for more than
    // the server will spend, and retrying as-is won't help.
    account(false, false);
    return error_response(req.id, ErrCode::ResourceExhausted, e.what());
  } catch (const Error& e) {
    account(false, false);
    return error_response(req.id, ErrCode::Failed, e.what());
  } catch (const std::exception& e) {
    account(false, false);
    return error_response(req.id, ErrCode::Internal, e.what());
  } catch (...) {
    account(false, false);
    return error_response(req.id, ErrCode::Internal, "unknown exception");
  }
}

std::shared_ptr<const ChunkedTrace> Service::acquire_trace(
    const Request& req, const CancelToken& cancel, unsigned& pes_out) {
  if (!req.trace_path.empty()) {
    // Validated load: corrupt or truncated files throw Error before
    // any record reaches a simulator (trace/chunks.h).
    std::shared_ptr<const ChunkedTrace> t =
        load_chunked_trace(req.trace_path, /*busy_only=*/false);
    pes_out = check_pes(req.explicit_pes ? req.pes : t->num_pes());
    return t;
  }
  pes_out = req.pes;
  // Shared memoized library: concurrent requests for the same
  // (bench, pes) wait on one generation; a failed/cancelled generation
  // is evicted, never cached (harness/trace_lib.h). The request's
  // engine-side fault slice (gen_*) rides into the generation run so
  // slow/failing generations are provokable deterministically.
  EngineFaults ef = req.fault ? req.fault->engine_faults() : EngineFaults{};
  std::shared_ptr<const GeneratedTrace> g =
      TraceLibrary::instance().get(req.bench, req.scale, req.pes, /*wam=*/false,
                                   req.max_solutions, &cancel, ef);
  return g->trace;
}

void Service::store_checkpoint(u64 key, std::string frame) {
  std::scoped_lock lk(mu_);
  if (saved_.size() >= kMaxSavedCheckpoints && !saved_.count(key)) {
    auto oldest = saved_.begin();
    for (auto it = saved_.begin(); it != saved_.end(); ++it)
      if (it->second.seq < oldest->second.seq) oldest = it;
    saved_.erase(oldest);
  }
  saved_[key] = SavedCheckpoint{std::move(frame), saved_seq_++};
  ++counters_.checkpoints_written;
}

std::optional<std::string> Service::take_checkpoint(u64 key) {
  std::scoped_lock lk(mu_);
  auto it = saved_.find(key);
  if (it == saved_.end()) return std::nullopt;
  std::string frame = std::move(it->second.frame);
  saved_.erase(it);
  return frame;
}

template <typename Sim>
void Service::replay_resumable(Sim& sim, const ChunkedTrace& trace, u64 start,
                               const CancelToken& cancel, FaultInjector* faults,
                               u64 key, bool timed) {
  for (std::size_t i = start; i < trace.num_chunks(); ++i) {
    try {
      // Fault hook first: an injected stall models a slow chunk, and
      // the deadline must notice it even on a single-chunk trace.
      if (faults) faults->on_chunk(i);
      cancel.checkpoint();
    } catch (const CancelledError&) {
      // Snapshot at the boundary of chunk i: chunks [0, i) are fully
      // replayed, nothing of chunk i has touched the simulator, so a
      // resume continues exactly where the deadline struck.
      CheckpointMeta meta;
      meta.config_hash = key;
      meta.chunk_index = i;
      meta.timed = timed;
      std::string frame;
      if constexpr (std::is_same_v<Sim, TimedReplay>) {
        meta.refs_done = sim.traffic().refs;
        frame = checkpoint_serialize(meta, sim);
      } else {
        meta.refs_done = sim.stats().refs;
        frame = checkpoint_serialize(meta, sim);
      }
      // Fault sites: a "crash" drops the snapshot entirely (the write
      // never happened), the damage hooks corrupt the stored bytes so
      // the retry's validation path is exercised end to end.
      bool crashed = faults && faults->crash_checkpoint(0);
      if (!crashed) {
        if (faults) faults->damage_checkpoint_bytes(0, frame);
        store_checkpoint(key, std::move(frame));
      }
      throw;
    }
    const std::vector<u64>& c = trace.chunk(i);
    sim.replay(c.data(), c.size());
  }
}

JsonValue Service::run_replay(const Request& req, const CancelToken& cancel,
                              FaultInjector* faults) {
  if (faults) faults->on_alloc();  // alloc site 1: trace acquisition
  unsigned pes = 0;
  std::shared_ptr<const ChunkedTrace> trace = acquire_trace(req, cancel, pes);
  if (faults) faults->on_alloc();  // alloc site 2: simulator arena
  u64 key = replay_config_hash(req.cfg, pes, resolve_wide(DirRep::Auto, pes),
                               trace_fingerprint(*trace));
  std::unique_ptr<HierCacheSim> sim;
  u64 start = 0;
  if (std::optional<std::string> frame = take_checkpoint(key)) {
    try {
      RestoredReplay r =
          checkpoint_parse(*frame, req.cfg, pes, DirRep::Auto, nullptr, key);
      sim = std::move(r.sim);
      start = r.meta.chunk_index;
      std::scoped_lock lk(mu_);
      ++counters_.resumes;
      counters_.resume_chunks_skipped += start;
    } catch (const Error&) {
      // Damaged snapshot: discard it and replay from scratch — a
      // corrupt checkpoint may cost work, never correctness.
      std::scoped_lock lk(mu_);
      ++counters_.corrupt_checkpoints_rejected;
    }
  }
  if (!sim) sim = std::make_unique<HierCacheSim>(req.cfg, pes);
  replay_resumable(*sim, *trace, start, cancel, faults, key, /*timed=*/false);
  if (faults) faults->on_alloc();  // alloc site 3: result assembly
  JsonValue out = traffic_json(sim->stats());
  out.set("pes", JsonValue::integer(pes));
  out.set("resumed_chunks", JsonValue::unsigned_int(start));
  return out;
}

JsonValue Service::run_time(const Request& req, const CancelToken& cancel,
                            FaultInjector* faults) {
  if (faults) faults->on_alloc();
  unsigned pes = 0;
  std::shared_ptr<const ChunkedTrace> trace = acquire_trace(req, cancel, pes);
  if (faults) faults->on_alloc();
  u64 key = timed_config_hash(req.cfg, pes, resolve_wide(DirRep::Auto, pes),
                              req.timing, trace_fingerprint(*trace));
  std::unique_ptr<TimedReplay> sim;
  u64 start = 0;
  if (std::optional<std::string> frame = take_checkpoint(key)) {
    try {
      RestoredReplay r = checkpoint_parse(*frame, req.cfg, pes, DirRep::Auto,
                                          &req.timing, key);
      sim = std::move(r.timed);
      start = r.meta.chunk_index;
      std::scoped_lock lk(mu_);
      ++counters_.resumes;
      counters_.resume_chunks_skipped += start;
    } catch (const Error&) {
      std::scoped_lock lk(mu_);
      ++counters_.corrupt_checkpoints_rejected;
    }
  }
  if (!sim) sim = std::make_unique<TimedReplay>(req.cfg, pes, req.timing);
  replay_resumable(*sim, *trace, start, cancel, faults, key, /*timed=*/true);
  if (faults) faults->on_alloc();
  JsonValue out = timing_json(sim->timing());
  out.set("traffic", traffic_json(sim->traffic()));
  out.set("pes", JsonValue::integer(pes));
  out.set("resumed_chunks", JsonValue::unsigned_int(start));
  return out;
}

JsonValue Service::run_sweep_op(const Request& req, const CancelToken& cancel,
                                FaultInjector* faults) {
  if (faults) faults->on_alloc();
  unsigned pes = 0;
  std::shared_ptr<const ChunkedTrace> trace = acquire_trace(req, cancel, pes);
  if (faults) faults->on_alloc();

  std::vector<SweepPoint> points;
  points.reserve(req.sweep_protocols.size() * req.sweep_sizes.size());
  for (Protocol p : req.sweep_protocols) {
    for (u32 size : req.sweep_sizes) {
      if (size % req.cfg.line_words)
        fail("sweep size " + std::to_string(size) +
             " is not a multiple of the line size");
      SweepPoint pt;
      pt.cfg = paper_cache_config(p, size);
      pt.cfg.line_words = req.cfg.line_words;
      pt.num_pes = pes;
      pt.chunks = trace.get();
      points.push_back(pt);
    }
  }
  // The points run on the request's own worker, serially: a sweep
  // request occupies exactly one pool slot, so a burst of sweeps
  // degrades into queueing/shedding instead of a pool-wide pile-up.
  // (run_sweep on the shared pool would have workers blocking on
  // futures that need those same workers — deadlock by composition.)
  std::vector<SweepResult> results;
  results.reserve(points.size());
  for (const SweepPoint& pt : points) {
    if (faults) faults->on_chunk(results.size());
    cancel.checkpoint();
    HierCacheSim sim(pt.cfg, pt.num_pes);
    replay_checked(sim, *trace, cancel, /*faults=*/nullptr);
    results.push_back(SweepResult{pt, sim.stats()});
  }

  JsonValue arr = JsonValue::array();
  for (const SweepResult& r : results) {
    JsonValue row = JsonValue::object();
    row.set("protocol", JsonValue::string(protocol_name(r.point.cfg.protocol)));
    row.set("size", JsonValue::integer(r.point.cfg.size_words));
    row.set("traffic_ratio", JsonValue::real(r.stats.traffic_ratio()));
    row.set("miss_ratio", JsonValue::real(r.stats.miss_ratio()));
    row.set("bus_words", JsonValue::unsigned_int(r.stats.bus_words));
    arr.push_back(std::move(row));
  }
  JsonValue out = JsonValue::object();
  out.set("pes", JsonValue::integer(pes));
  out.set("points", std::move(arr));
  return out;
}

JsonValue Service::run_golden(const Request& req, const CancelToken& cancel) {
  cancel.checkpoint();
  std::vector<GoldenEntry> live = golden_compute(req.bench);
  cancel.checkpoint();
  std::vector<GoldenEntry> golden =
      golden_from_json(read_text_file(golden_dir() + "/" + req.bench + ".json"));
  std::vector<std::string> diff = golden_diff(golden, live);
  JsonValue out = JsonValue::object();
  out.set("bench", JsonValue::string(req.bench));
  out.set("entries", JsonValue::integer(static_cast<i64>(live.size())));
  out.set("clean", JsonValue::boolean(diff.empty()));
  JsonValue lines = JsonValue::array();
  for (const std::string& d : diff) lines.push_back(JsonValue::string(d));
  out.set("mismatches", std::move(lines));
  return out;
}

JsonValue Service::run_stats() {
  ServiceCounters c = counters();
  JsonValue out = JsonValue::object();
  out.set("received", JsonValue::unsigned_int(c.received));
  out.set("completed", JsonValue::unsigned_int(c.completed));
  out.set("failed", JsonValue::unsigned_int(c.failed));
  out.set("shed", JsonValue::unsigned_int(c.shed));
  out.set("rejected", JsonValue::unsigned_int(c.rejected));
  out.set("cancelled", JsonValue::unsigned_int(c.cancelled));
  out.set("faults_injected", JsonValue::unsigned_int(c.faults_injected));
  out.set("checkpoints_written", JsonValue::unsigned_int(c.checkpoints_written));
  out.set("resumes", JsonValue::unsigned_int(c.resumes));
  out.set("resume_chunks_skipped",
          JsonValue::unsigned_int(c.resume_chunks_skipped));
  out.set("corrupt_checkpoints_rejected",
          JsonValue::unsigned_int(c.corrupt_checkpoints_rejected));
  out.set("in_flight", JsonValue::integer(in_flight_.load()));
  out.set("workers", JsonValue::integer(cfg_.workers));
  out.set("queue_limit", JsonValue::integer(static_cast<i64>(cfg_.queue_limit)));
  out.set("draining", JsonValue::boolean(draining()));
  out.set("trace_library_entries",
          JsonValue::integer(static_cast<i64>(TraceLibrary::instance().size())));
  out.set("trace_library_failed_generations",
          JsonValue::unsigned_int(TraceLibrary::instance().failed_generations()));
  out.set("trace_library_cancelled_generations",
          JsonValue::unsigned_int(
              TraceLibrary::instance().cancelled_generations()));
  return out;
}

}  // namespace rapwam
