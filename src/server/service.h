// Request execution engine of the resident server (docs/DESIGN.md
// §10): bounded admission onto the shared ThreadPool, per-request
// deadlines, load shedding, graceful degradation and drain.
//
// The Service is transport-agnostic — connection handlers (server.cpp)
// and tests hand it raw request lines and get back raw response lines.
// Everything that can go wrong maps to a structured error response;
// no request, however malformed or unlucky, may throw out of
// handle_line() or leave shared state (the memoized TraceLibrary)
// poisoned.
//
// Admission control: at most `workers` requests execute at once and
// at most `queue_limit` more may be waiting for a worker. Beyond
// that the service sheds load — an immediate `overloaded` response
// carrying retry_after_ms sized to the current backlog — instead of
// letting latency (and memory) grow without bound.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "harness/trace_lib.h"
#include "server/protocol.h"
#include "support/thread_pool.h"

namespace rapwam {

struct ServiceConfig {
  unsigned workers = 4;
  std::size_t queue_limit = 16;    ///< admitted-but-not-running cap
  u32 default_deadline_ms = 0;     ///< 0 = no implicit deadline
  bool enable_faults = false;      ///< honor "fault" members (tests)
  RequestLimits limits;
};

/// Monotonic counters, readable while the service runs (the `stats`
/// op and the drain log line).
struct ServiceCounters {
  u64 received = 0;       ///< request lines handed to the service
  u64 completed = 0;      ///< executed to an ok response
  u64 failed = 0;         ///< executed to an error response
  u64 shed = 0;           ///< bounced with `overloaded`
  u64 rejected = 0;       ///< bad_request before admission
  u64 cancelled = 0;      ///< deadline/cancel during execution
  u64 faults_injected = 0;
};

class Service {
 public:
  explicit Service(const ServiceConfig& cfg);
  ~Service();

  /// Full request lifecycle: parse, admit (or shed), execute on the
  /// pool, render. Never throws; always returns one response line
  /// (without trailing newline). Blocks the calling (connection)
  /// thread until the response is ready — concurrency comes from many
  /// connections, boundedness from admission control.
  ///
  /// `saw_shutdown` (optional) is set when the request was a
  /// `shutdown` op, so the transport can begin its drain.
  std::string handle_line(const std::string& line, bool* saw_shutdown = nullptr);

  /// Stops admitting new requests (they get `shutting_down`);
  /// in-flight requests run to completion.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  /// Blocks until no admitted request remains in flight.
  void wait_idle();

  ServiceCounters counters() const;
  const ServiceConfig& config() const { return cfg_; }

 private:
  std::string execute(const Request& req);
  JsonValue run_replay(const Request& req, const CancelToken& cancel,
                       FaultInjector* faults);
  JsonValue run_time(const Request& req, const CancelToken& cancel,
                     FaultInjector* faults);
  JsonValue run_sweep_op(const Request& req, const CancelToken& cancel,
                         FaultInjector* faults);
  JsonValue run_golden(const Request& req, const CancelToken& cancel);
  JsonValue run_stats();

  /// The trace a replay/time request works on: memoized generation
  /// (bench) or a validated file load (trace path).
  std::shared_ptr<const ChunkedTrace> acquire_trace(const Request& req,
                                                    const CancelToken& cancel,
                                                    unsigned& pes_out);

  ServiceConfig cfg_;
  ThreadPool pool_;
  std::atomic<bool> draining_{false};
  std::atomic<i64> in_flight_{0};  ///< admitted (queued or running)
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  ServiceCounters counters_;
};

}  // namespace rapwam
