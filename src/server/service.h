// Request execution engine of the resident server (docs/DESIGN.md
// §10): bounded admission onto the shared ThreadPool, per-request
// deadlines, load shedding, graceful degradation and drain.
//
// The Service is transport-agnostic — connection handlers (server.cpp)
// and tests hand it raw request lines and get back raw response lines.
// Everything that can go wrong maps to a structured error response;
// no request, however malformed or unlucky, may throw out of
// handle_line() or leave shared state (the memoized TraceLibrary)
// poisoned.
//
// Admission control: at most `workers` requests execute at once and
// at most `queue_limit` more may be waiting for a worker. Beyond
// that the service sheds load — an immediate `overloaded` response
// carrying retry_after_ms sized to the current backlog — instead of
// letting latency (and memory) grow without bound.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "harness/trace_lib.h"
#include "server/protocol.h"
#include "support/thread_pool.h"

namespace rapwam {

struct ServiceConfig {
  unsigned workers = 4;
  std::size_t queue_limit = 16;    ///< admitted-but-not-running cap
  u32 default_deadline_ms = 0;     ///< 0 = no implicit deadline
  bool enable_faults = false;      ///< honor "fault" members (tests)
  RequestLimits limits;
};

/// Monotonic counters, readable while the service runs (the `stats`
/// op and the drain log line).
struct ServiceCounters {
  u64 received = 0;       ///< request lines handed to the service
  u64 completed = 0;      ///< executed to an ok response
  u64 failed = 0;         ///< executed to an error response
  u64 shed = 0;           ///< bounced with `overloaded`
  u64 rejected = 0;       ///< bad_request before admission
  u64 cancelled = 0;      ///< deadline/cancel during execution
  u64 faults_injected = 0;
  // Checkpoint/resume (docs/DESIGN.md §12): a replay/time request
  // killed by its deadline checkpoints its progress, and the client's
  // retry resumes from it instead of starting over.
  u64 checkpoints_written = 0;          ///< cancelled requests snapshotted
  u64 resumes = 0;                      ///< requests resumed from a snapshot
  u64 resume_chunks_skipped = 0;        ///< chunks not re-replayed, total
  u64 corrupt_checkpoints_rejected = 0; ///< snapshots discarded as damaged
};

class Service {
 public:
  explicit Service(const ServiceConfig& cfg);
  ~Service();

  /// Full request lifecycle: parse, admit (or shed), execute on the
  /// pool, render. Never throws; always returns one response line
  /// (without trailing newline). Blocks the calling (connection)
  /// thread until the response is ready — concurrency comes from many
  /// connections, boundedness from admission control.
  ///
  /// `saw_shutdown` (optional) is set when the request was a
  /// `shutdown` op, so the transport can begin its drain.
  std::string handle_line(const std::string& line, bool* saw_shutdown = nullptr);

  /// Stops admitting new requests (they get `shutting_down`);
  /// in-flight requests run to completion.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  /// Blocks until no admitted request remains in flight.
  void wait_idle();

  ServiceCounters counters() const;
  const ServiceConfig& config() const { return cfg_; }

 private:
  std::string execute(const Request& req);
  JsonValue run_replay(const Request& req, const CancelToken& cancel,
                       FaultInjector* faults);
  JsonValue run_time(const Request& req, const CancelToken& cancel,
                     FaultInjector* faults);
  JsonValue run_sweep_op(const Request& req, const CancelToken& cancel,
                         FaultInjector* faults);
  JsonValue run_golden(const Request& req, const CancelToken& cancel);
  JsonValue run_stats();

  /// The trace a replay/time request works on: memoized generation
  /// (bench) or a validated file load (trace path).
  std::shared_ptr<const ChunkedTrace> acquire_trace(const Request& req,
                                                    const CancelToken& cancel,
                                                    unsigned& pes_out);

  /// Replays chunks [start, num_chunks) with the per-chunk fault and
  /// cancellation hooks; on cancellation, snapshots the simulator
  /// under `key` (checkpoint_store) before rethrowing, so the
  /// client's retry resumes instead of starting over.
  template <typename Sim>
  void replay_resumable(Sim& sim, const ChunkedTrace& trace, u64 start,
                        const CancelToken& cancel, FaultInjector* faults,
                        u64 key, bool timed);

  /// Bounded in-memory store of checkpoints from cancelled requests,
  /// keyed by the run's config hash (same config + trace = same key,
  /// so the retry finds it). Guarded by mu_; oldest entry evicted at
  /// the cap.
  void store_checkpoint(u64 key, std::string frame);
  /// Removes and returns the stored frame for `key`, if any (one
  /// resume attempt per snapshot — a damaged frame must not be
  /// retried forever).
  std::optional<std::string> take_checkpoint(u64 key);

  ServiceConfig cfg_;
  ThreadPool pool_;
  std::atomic<bool> draining_{false};
  std::atomic<i64> in_flight_{0};  ///< admitted (queued or running)
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  ServiceCounters counters_;

  struct SavedCheckpoint {
    std::string frame;
    u64 seq = 0;  ///< insertion order, for oldest-first eviction
  };
  static constexpr std::size_t kMaxSavedCheckpoints = 32;
  std::map<u64, SavedCheckpoint> saved_;  ///< guarded by mu_
  u64 saved_seq_ = 0;                     ///< guarded by mu_
};

}  // namespace rapwam
