#include "support/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include "support/common.h"

namespace rapwam {

void flush_and_sync(std::FILE* f, const std::string& what) {
  if (std::fflush(f) != 0) fail("cannot flush " + what);
  if (::fsync(::fileno(f)) != 0) fail("cannot fsync " + what);
}

void sync_parent_dir(const std::string& path) {
  std::string dir = ".";
  std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // directory fsync unsupported here; best effort
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("cannot fsync directory " + dir);
}

void publish_file(const std::string& tmp_path, const std::string& path) {
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    fail("cannot publish " + path);
  }
  sync_parent_dir(path);
}

}  // namespace rapwam
