// Durable atomic file publication, shared by FileTraceSink and the
// checkpoint writer (docs/DESIGN.md §12).
//
// "Atomic rename" alone is not crash-safe: a rename can be durable
// before the renamed file's *data* is, so a power cut right after
// close() can publish an empty or partial file under the final name.
// The full recipe is: write the temporary, fsync its data, rename it
// over the destination, then fsync the containing directory so the
// rename itself survives the crash. These helpers implement exactly
// that and throw Error on any failure.
#pragma once

#include <cstdio>
#include <string>

namespace rapwam {

/// Flushes stdio buffers and fsyncs the underlying descriptor. `what`
/// names the file in the Error message.
void flush_and_sync(std::FILE* f, const std::string& what);

/// fsyncs the directory containing `path`, making a completed rename
/// in it durable. Failures to *open* the directory are ignored (some
/// filesystems refuse O_RDONLY on directories); an fsync error on an
/// opened directory throws.
void sync_parent_dir(const std::string& path);

/// Renames tmp_path -> path and fsyncs the parent directory. The
/// temporary is removed on failure. Callers must have already synced
/// the temporary's data (flush_and_sync) for full durability.
void publish_file(const std::string& tmp_path, const std::string& path);

}  // namespace rapwam
