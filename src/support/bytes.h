// Bounds-checked little-endian byte serialization for the checkpoint
// subsystem (src/checkpoint/, docs/DESIGN.md §12).
//
// Checkpoint frames and sweep-journal records are read back from disk
// after crashes, so the reader side must treat its input as hostile:
// every get_* is bounds-checked and throws Error on underrun, and
// expect_end() rejects trailing bytes — a truncated or padded frame
// can never be half-parsed into simulator state. The writer is a
// plain append buffer; both sides fix the byte order so checkpoints
// move between hosts.
#pragma once

#include <cstring>
#include <string>

#include "support/common.h"

namespace rapwam {

/// FNV-1a over `n` bytes, chainable via `seed` for multi-part hashes.
/// Every absorption step is a bijection of the running state, so any
/// single-byte change to the input changes the final value — the
/// property the checkpoint fuzz suite (flip every byte) relies on.
inline u64 fnv1a(const void* data, std::size_t n,
                 u64 seed = 0xCBF29CE484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  u64 h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<u8>(v >> (8 * i)));
  }
  void put_bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::size_t size() const { return buf_.size(); }
  const std::string& str() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reader over a fixed byte range; throws Error("<what>: ...") the
/// moment a read would run past the end.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t n, std::string what = "checkpoint")
      : p_(static_cast<const unsigned char*>(data)), n_(n),
        what_(std::move(what)) {}
  explicit ByteReader(const std::string& bytes, std::string what = "checkpoint")
      : ByteReader(bytes.data(), bytes.size(), std::move(what)) {}

  u8 get_u8() {
    need(1);
    return p_[off_++];
  }
  u32 get_u32() {
    need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= u32(p_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
  }
  u64 get_u64() {
    need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= u64(p_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
  }
  void get_bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, p_ + off_, n);
    off_ += n;
  }

  std::size_t remaining() const { return n_ - off_; }
  std::size_t offset() const { return off_; }
  /// Rejects a frame that parsed clean but carries extra bytes — a
  /// version skew or corruption signal, never silently ignored.
  void expect_end() const {
    if (off_ != n_)
      fail(what_ + ": " + std::to_string(n_ - off_) +
           " trailing bytes after the last field");
  }

 private:
  void need(std::size_t n) const {
    if (n_ - off_ < n)
      fail(what_ + ": truncated (need " + std::to_string(n) + " bytes at offset " +
           std::to_string(off_) + ", have " + std::to_string(n_ - off_) + ")");
  }

  const unsigned char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  std::string what_;
};

}  // namespace rapwam
