// Cooperative cancellation with deadlines (docs/DESIGN.md §10).
//
// Long-running work — a sweep over hundreds of replay points, a
// billion-reference replay, a trace generation — must be abandonable
// mid-flight: the server gives every request a deadline, and a request
// whose client went away or whose budget expired should stop burning a
// worker. Cancellation is cooperative: the work checks the token at
// chunk granularity (kChunkRefs references ≈ tens of microseconds of
// replay), which bounds how stale a cancelled request can run without
// putting any synchronization on the per-reference hot path.
//
// Tokens are cheap shared handles: copies observe the same state, so
// the admission path can keep one and the worker another. A token with
// no deadline and no cancel() call never fires and checkpoint()
// compiles down to one relaxed atomic load plus (if a deadline is set)
// one clock read per chunk.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "support/common.h"

namespace rapwam {

/// Thrown by CancelToken::checkpoint(). Distinct from plain Error so
/// callers (the server's error mapping, retry loops) can tell "the
/// work was abandoned" from "the work failed".
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what, bool deadline)
      : Error(what), deadline_(deadline) {}
  /// True when the cancellation came from an expired deadline rather
  /// than an explicit cancel() (the server maps these to different
  /// protocol error codes).
  bool deadline_exceeded() const { return deadline_; }

 private:
  bool deadline_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() : state_(std::make_shared<State>()) {}

  /// Token that expires `budget` from now; a zero/negative budget is
  /// already expired (the admission queue uses this to bounce requests
  /// that waited past their deadline without running them).
  static CancelToken with_deadline(std::chrono::milliseconds budget) {
    CancelToken t;
    t.state_->has_deadline.store(true, std::memory_order_relaxed);
    t.state_->deadline = Clock::now() + budget;
    return t;
  }

  /// Requests cancellation; every copy of the token observes it.
  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return state_->has_deadline.load(std::memory_order_relaxed);
  }
  Clock::time_point deadline() const { return state_->deadline; }

  bool expired() const {
    if (cancelled()) return true;
    return has_deadline() && Clock::now() >= state_->deadline;
  }

  /// Time left before the deadline; a large sentinel when none is set
  /// (so callers can min() it into their own waits unconditionally).
  std::chrono::milliseconds remaining() const {
    if (!has_deadline()) return std::chrono::milliseconds(1 << 30);
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        state_->deadline - Clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  }

  /// The cooperative check: throws CancelledError if the token was
  /// cancelled or its deadline passed. Called between chunks, never
  /// per reference.
  void checkpoint() const {
    if (cancelled())
      throw CancelledError("request cancelled", /*deadline=*/false);
    if (has_deadline() && Clock::now() >= state_->deadline)
      throw CancelledError("deadline exceeded", /*deadline=*/true);
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<bool> has_deadline{false};
    Clock::time_point deadline{};  ///< written once, before sharing
  };
  std::shared_ptr<State> state_;
};

}  // namespace rapwam
