#include "support/cli.h"

#include <cstdlib>

namespace rapwam {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      pos_.push_back(a);
      continue;
    }
    a = a.substr(2);
    auto eq = a.find('=');
    if (eq != std::string::npos) {
      flags_[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[a] = argv[++i];
    } else {
      flags_[a] = "1";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& dflt) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? dflt : it->second;
}

i64 Cli::get_int(const std::string& name, i64 dflt) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

}  // namespace rapwam
