// Minimal command-line flag parser for the examples and bench binaries.
// Supports `--name value`, `--name=value` and `--flag` (boolean).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace rapwam {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& dflt) const;
  i64 get_int(const std::string& name, i64 dflt) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return pos_; }

 private:
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> pos_;
};

}  // namespace rapwam
