// Basic shared definitions for the rapwam library.
//
// Everything in this project lives in namespace `rapwam`. This header
// provides the error type used across modules and a couple of small
// assertion helpers that stay active in release builds (the simulator's
// correctness depends on internal invariants, and benches run Release).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rapwam {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Error thrown for user-visible failures: syntax errors, compile
/// errors, engine resource exhaustion, bad CLI arguments.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

/// Thrown when a query trips a configured resource budget (heap / local
/// stack / control stack / trail / instruction budget) or an engine
/// fault injection simulating one. `resource()` names the budget that
/// tripped (e.g. "heap", "steps") so callers can map it to a structured
/// wire error instead of string-matching what().
class ResourceExhaustedError : public Error {
 public:
  ResourceExhaustedError(std::string resource, const std::string& what)
      : Error(what), resource_(std::move(resource)) {}
  const std::string& resource() const { return resource_; }

 private:
  std::string resource_;
};

/// Release-mode-checked invariant. Used for internal consistency checks
/// whose violation would silently corrupt simulation results.
#define RW_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) ::rapwam::fail(std::string("internal error: ") + (msg)); \
  } while (0)

/// Debug-only invariant for hot paths where the condition is already
/// structurally guaranteed by checks upstream (compiled out in
/// Release; Debug/sanitizer builds fail loudly if a future change
/// bypasses those checks).
#ifndef NDEBUG
#define RW_DCHECK(cond, msg) RW_CHECK(cond, msg)
#else
#define RW_DCHECK(cond, msg) \
  do {                       \
  } while (0)
#endif

}  // namespace rapwam
