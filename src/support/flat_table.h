// Open-addressed hash table from a u64 key to a small POD value.
//
// Linear probing with backward-shift deletion (no tombstones). The
// table is sized once by init() to 2x the caller's capacity bound and
// never rehashes, so it stays at most half full, probe chains are
// short, and every chain terminates at an empty bucket. Keys must be
// < 2^64-1 (~0 is reserved as the empty marker) — line tags are word
// addresses / line_words <= 2^40.
//
// Shared by the per-PE cache tag index and the coherence sharing
// directory (docs/DESIGN.md §6), which is exactly why it exists: the
// backward-shift wrap-around logic is the subtlest code in the cache
// layer and must not be maintained twice.
#pragma once

#include <algorithm>
#include <bit>
#include <vector>

#include "support/common.h"

namespace rapwam {

template <typename Value>
class FlatTagMap {
 public:
  static constexpr u64 kEmptyKey = ~u64(0);

  /// A default-constructed table is a valid empty table (minimum
  /// bucket count), so queries before a sizing init() are safe.
  FlatTagMap() { init(0); }

  /// `capacity_hint`: upper bound on keys simultaneously present.
  void init(u64 capacity_hint) {
    u64 buckets =
        std::max<u64>(16, std::bit_ceil(2 * std::max<u64>(1, capacity_hint)));
    keys_.assign(buckets, kEmptyKey);
    values_.assign(buckets, Value{});
    mask_ = buckets - 1;
    size_ = 0;
  }

  Value* find(u64 key) {
    u64 i = mix(key) & mask_;
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const Value* find(u64 key) const {
    return const_cast<FlatTagMap*>(this)->find(key);
  }

  /// Returns the value for `key`, value-initialising a fresh slot if
  /// absent. Pointers are invalidated by erase() (entries may shift).
  Value& upsert(u64 key) {
    u64 i = mix(key) & mask_;
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = Value{};
    ++size_;
    return values_[i];
  }

  void erase(u64 key) {
    u64 i = mix(key) & mask_;
    while (keys_[i] != kEmptyKey && keys_[i] != key) i = (i + 1) & mask_;
    if (keys_[i] == kEmptyKey) return;
    --size_;
    // Backward-shift deletion: pull cluster members whose probe path
    // crosses the hole back into it, so lookups never need tombstones.
    u64 j = i;
    for (;;) {
      keys_[i] = kEmptyKey;
      for (;;) {
        j = (j + 1) & mask_;
        if (keys_[j] == kEmptyKey) return;
        u64 k = mix(keys_[j]) & mask_;  // ideal bucket of the occupant
        // Move it iff its ideal bucket is cyclically outside (i, j].
        if (i <= j ? (k <= i || k > j) : (k <= i && k > j)) break;
      }
      keys_[i] = keys_[j];
      values_[i] = values_[j];
      i = j;
    }
  }

  std::size_t size() const { return size_; }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != kEmptyKey) f(keys_[i], values_[i]);
  }

 private:
  static u64 mix(u64 x) {  // splitmix64 finaliser
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::vector<u64> keys_;
  std::vector<Value> values_;
  u64 mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rapwam
