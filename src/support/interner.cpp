#include "support/interner.h"

namespace rapwam {

u32 Interner::intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  u32 id = static_cast<u32>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

const std::string& Interner::name(u32 id) const {
  RW_CHECK(id < names_.size(), "interner id out of range");
  return names_[id];
}

bool Interner::contains(std::string_view s) const {
  return ids_.find(std::string(s)) != ids_.end();
}

}  // namespace rapwam
