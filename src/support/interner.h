// String interner: maps strings to dense ids and back.
//
// Atom names and functor names are interned once and referred to by
// 32-bit ids throughout the compiler and engine, so term cells stay
// POD-sized and comparisons are integer compares.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace rapwam {

class Interner {
 public:
  /// Returns the id for `s`, creating one if unseen.
  u32 intern(std::string_view s);

  /// Returns the string for an id created by intern().
  const std::string& name(u32 id) const;

  /// True if `s` has already been interned (no side effects).
  bool contains(std::string_view s) const;

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, u32> ids_;
  std::vector<std::string> names_;
};

}  // namespace rapwam
