// Small numeric helpers shared by the reporting code: mean, standard
// deviation, and percentage formatting.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace rapwam {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator), 0 for fewer than two points.
inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

inline std::string fmt(double v, int prec = 4) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_pct(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, 100.0 * v);
  return buf;
}

}  // namespace rapwam
