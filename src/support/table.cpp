#include "support/table.h"

#include <algorithm>
#include <sstream>

namespace rapwam {

void TextTable::header(std::vector<std::string> cells) { head_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::str() const {
  std::vector<std::size_t> w;
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > w.size()) w.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) w[i] = std::max(w[i], cells[i].size());
  };
  if (!head_.empty()) widen(head_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) os << std::string(w[i] - cells[i].size() + 2, ' ');
    }
    os << "\n";
  };
  if (!head_.empty()) {
    emit(head_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < w.size(); ++i) total += w[i] + (i + 1 < w.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) os << ",";
    }
    os << "\n";
  };
  if (!head_.empty()) emit(head_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace rapwam
