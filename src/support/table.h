// ASCII table renderer used by the bench binaries to print the paper's
// tables and figure series in a stable, diff-friendly format, plus an
// optional CSV emitter for plotting.
#pragma once

#include <string>
#include <vector>

namespace rapwam {

class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Renders with column alignment; first row is underlined if a header
  /// was set.
  std::string str() const;

  /// Comma-separated rendering (header first) for machine consumption.
  std::string csv() const;

 private:
  std::string title_;
  std::vector<std::string> head_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rapwam
