#include "support/thread_pool.h"

namespace rapwam {

ThreadPool::ThreadPool(unsigned n) {
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

}  // namespace rapwam
