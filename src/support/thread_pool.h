// Fixed-size thread pool used to parallelise independent cache
// simulations across host cores (the Fig. 4 sweep runs hundreds of
// trace replays). Tasks are plain std::function jobs; submit() returns
// a future. Follows CP.4 (think in tasks) and uses RAII joining.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rapwam {

class ThreadPool {
 public:
  /// Spawns `n` workers; n==0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  template <typename F>
  auto submit(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lk(mu_);
      jobs_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace rapwam
