#include "timing/timed_replay.h"

#include <algorithm>

namespace rapwam {

TimedReplay::TimedReplay(const CacheConfig& cfg, unsigned num_pes,
                         const TimingParams& tp, DirRep rep)
    : sim_(cfg, num_pes, rep), tp_(tp), l2_extra_(cfg.l2.hit_extra_cycles) {
  RW_CHECK(tp.interleave >= 1, "timed replay: interleave must be >= 1");
  RW_CHECK(tp.cycles_per_ref >= 1, "timed replay: cycles_per_ref must be >= 1");
  pes_.resize(num_pes);
  ts_.pe.resize(num_pes);
}

u64 TimedReplay::bus_reserve(u64 ready, u64 svc) {
  // Earliest gap of `svc` cycles at/after `ready`. A PE that lags in
  // virtual time may book a slot earlier than transactions already on
  // the timeline — in real time its request happens first; only true
  // same-cycle contention queues.
  u64 t = ready;
  auto it = busy_.upper_bound(t);
  if (it != busy_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > t) t = prev->second;
  }
  while (it != busy_.end() && it->first < t + svc) {
    t = it->second;
    ++it;
  }
  u64 end = t + svc;
  // Coalesce with the adjacent intervals so the timeline stays small.
  if (it != busy_.end() && it->first == end) {
    end = it->second;
    it = busy_.erase(it);
  }
  if (it != busy_.begin() && std::prev(it)->second == t) {
    std::prev(it)->second = end;
  } else {
    busy_.emplace_hint(it, t, end);
  }
  ts_.bus_busy_cycles += svc;
  ++ts_.bus_transactions;
  if ((++reservations_since_prune_ & 0x1FFF) == 0) prune_timeline();
  return t + svc;
}

void TimedReplay::prune_timeline() {
  // The next request of PE p is ready no earlier than its clock, so
  // intervals every PE's clock has passed can never be probed again.
  u64 min_clock = ~u64(0);
  for (const PeState& p : pes_) min_clock = std::min(min_clock, p.clock);
  auto it = busy_.begin();
  while (it != busy_.end() && it->second <= min_clock) it = busy_.erase(it);
}

void TimedReplay::step(const MemRef& r) {
  StepOutcome o = sim_.step(r);  // validates r.pe before we index below
  PeState& p = pes_[r.pe];
  PeTiming& t = ts_.pe[r.pe];
  ++t.refs;
  t.busy_cycles += tp_.cycles_per_ref;
  u64 now = p.clock + tp_.cycles_per_ref;

  // Retire posted writes whose bus transaction has completed.
  while (!p.wbuf.empty() && p.wbuf.front() <= now) p.wbuf.pop_front();

  u64 svc = service_of(o.bus_words);

  // Demand fills are counted and charged their supplier's latency
  // (L2Config::hit_extra_cycles / TimingParams::mem_extra_cycles)
  // whatever the bus speed — the extra cycles model the memory or L2
  // device, not the bus, so even a free (bus_service_cycles == 0) bus
  // does not waive them. The PE waits them out; the bus does not.
  u64 extra = 0;
  switch (o.supplier) {
    case StepOutcome::Supplier::Cache: ++ts_.cache_fills; break;
    case StepOutcome::Supplier::L2:
      ++ts_.l2_fills;
      extra = l2_extra_;
      break;
    case StepOutcome::Supplier::Memory:
      ++ts_.mem_fills;
      extra = tp_.mem_extra_cycles;
      break;
    case StepOutcome::Supplier::None: break;
  }

  if (svc == 0) {  // cache hit, or a free bus
    if (extra) {
      t.stall_cycles += extra;
      now += extra;
    }
    p.clock = now;
    return;
  }

  if (o.demand_words == 0 && tp_.write_buffer_depth > 0) {
    // Posted write: the bus slot is reserved now (trace order), but the
    // PE only stalls if the buffer overflows — then it waits for the
    // oldest entry to leave. The queue must stay monotone in completion
    // time (drain/retire/makespan all read only front/back): today every
    // posted-only transaction is a single word so earliest-gap grants
    // are already FIFO, but clamp anyway so a future multi-word posted
    // transaction cannot silently retire out of order.
    u64 done = bus_reserve(now, svc);
    if (!p.wbuf.empty()) done = std::max(done, p.wbuf.back());
    p.wbuf.push_back(done);
    if (p.wbuf.size() > tp_.write_buffer_depth) {
      u64 front = p.wbuf.front();
      p.wbuf.pop_front();
      if (front > now) {
        t.stall_cycles += front - now;
        now = front;
      }
    }
    p.clock = now;
    return;
  }

  // Demand transaction (miss fill / read-for-ownership) or unbuffered
  // write: drain this PE's posted writes first (they are older in
  // memory order), then wait for the transaction itself.
  if (!p.wbuf.empty()) {
    u64 last = p.wbuf.back();
    p.wbuf.clear();
    if (last > now) {
      t.stall_cycles += last - now;
      now = last;
    }
  }
  u64 done = bus_reserve(now, svc) + extra;
  t.stall_cycles += done - now;
  p.clock = done;
}

void TimedReplay::replay(const u64* packed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step(MemRef::unpack(packed[i]));
}

TimingStats TimedReplay::timing() const {
  TimingStats out = ts_;
  for (unsigned i = 0; i < pes_.size(); ++i) {
    out.pe[i].clock = pes_[i].clock;
    u64 end = pes_[i].clock;
    if (!pes_[i].wbuf.empty()) end = std::max(end, pes_[i].wbuf.back());
    out.makespan = std::max(out.makespan, end);
  }
  return out;
}

void TimedReplay::save_state(ByteWriter& w) const {
  sim_.save_state(w);
  w.put_u64(pes_.size());
  for (const PeState& p : pes_) {
    w.put_u64(p.clock);
    w.put_u64(p.wbuf.size());
    for (u64 done : p.wbuf) w.put_u64(done);
  }
  for (const PeTiming& t : ts_.pe) {
    w.put_u64(t.refs);
    w.put_u64(t.busy_cycles);
    w.put_u64(t.stall_cycles);
    w.put_u64(t.clock);
  }
  w.put_u64(ts_.makespan);
  w.put_u64(ts_.bus_busy_cycles);
  w.put_u64(ts_.bus_transactions);
  w.put_u64(ts_.cache_fills);
  w.put_u64(ts_.l2_fills);
  w.put_u64(ts_.mem_fills);
  w.put_u64(busy_.size());
  for (const auto& [start, end] : busy_) {
    w.put_u64(start);
    w.put_u64(end);
  }
  w.put_u64(reservations_since_prune_);
}

void TimedReplay::restore_state(ByteReader& r) {
  sim_.restore_state(r);
  u64 npes = r.get_u64();
  if (npes != pes_.size())
    fail("checkpoint timing: snapshot has " + std::to_string(npes) +
         " PEs, replay has " + std::to_string(pes_.size()));
  for (PeState& p : pes_) {
    p.clock = r.get_u64();
    u64 nw = r.get_u64();
    if (tp_.write_buffer_depth == 0 ? nw != 0 : nw > tp_.write_buffer_depth)
      fail("checkpoint timing: posted-write count exceeds the buffer depth");
    p.wbuf.clear();
    for (u64 k = 0; k < nw; ++k) {
      u64 done = r.get_u64();
      if (!p.wbuf.empty() && done < p.wbuf.back())
        fail("checkpoint timing: posted-write completions out of order");
      p.wbuf.push_back(done);
    }
  }
  for (PeTiming& t : ts_.pe) {
    t.refs = r.get_u64();
    t.busy_cycles = r.get_u64();
    t.stall_cycles = r.get_u64();
    t.clock = r.get_u64();
  }
  ts_.makespan = r.get_u64();
  ts_.bus_busy_cycles = r.get_u64();
  ts_.bus_transactions = r.get_u64();
  ts_.cache_fills = r.get_u64();
  ts_.l2_fills = r.get_u64();
  ts_.mem_fills = r.get_u64();
  u64 nint = r.get_u64();
  busy_.clear();
  u64 prev_end = 0;
  for (u64 k = 0; k < nint; ++k) {
    u64 start = r.get_u64();
    u64 end = r.get_u64();
    // bus_reserve depends on the timeline being strictly ordered,
    // disjoint and coalesced; anything else would silently skew every
    // later grant, so it is rejected here.
    if (start >= end || (k > 0 && start <= prev_end))
      fail("checkpoint timing: bus timeline intervals not ordered/disjoint");
    busy_.emplace_hint(busy_.end(), start, end);
    prev_end = end;
  }
  reservations_since_prune_ = r.get_u64();
}

unsigned saturation_pe_count(
    const std::vector<std::pair<unsigned, TimingStats>>& runs, double threshold) {
  unsigned best = 0;
  for (const auto& [pes, ts] : runs) {
    if (ts.bus_utilization() >= threshold && (best == 0 || pes < best)) best = pes;
  }
  return best;
}

}  // namespace rapwam
