// Cycle-approximate timed trace replay (docs/DESIGN.md §7).
//
// The paper stops at traffic ratios; Tick's queueing model (our
// cache/queueing.h) predicts contention analytically. This subsystem
// *measures* it instead: it replays the same global-order reference
// trace through HierCacheSim::step() (the flat MultiCacheSim whenever
// no L2 is configured) and layers virtual time on top —
// one clock per PE, a single shared bus kept as a timeline of busy
// intervals (a word-granularity transaction is granted the earliest
// free gap at/after its request time; requests for the same instant
// are granted in global trace order, which is the emulator's
// round-robin issue order — i.e. round-robin arbitration), n-way
// interleaved memory, and an optional per-PE posted write buffer.
//
// Because the coherence engine is driven in exact trace order, the
// TrafficStats a TimedReplay produces are bit-identical to an untimed
// MultiCacheSim::replay() of the same trace for any timing parameters;
// the differential suite (tests/test_timing_diff.cpp) pins this.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "cache/hierarchy.h"

namespace rapwam {

struct TimingParams {
  /// PE issue cost per data reference, in cycles (the "1 compute
  /// cycle" of the analytic model).
  u32 cycles_per_ref = 1;
  /// Bus + memory cycles per word moved, before interleaving.
  /// 0 models an infinitely fast bus: no occupancy, no transfer
  /// stalls (the per-fill extras below still apply — they model the
  /// device behind the bus, not the bus).
  u32 bus_service_cycles = 1;
  /// Memory banks overlapping word transfers: an L-word transaction
  /// occupies the bus ceil(L * bus_service_cycles / interleave)
  /// cycles (the paper's §3.3 "multiple or overlapped busses and
  /// interleaved memories").
  u32 interleave = 1;
  /// Posted-write entries per PE. A write the PE need not wait for
  /// (write-through word, update/invalidation broadcast) is buffered
  /// and drained by the bus in the background; the PE stalls only when
  /// the buffer is full, or on its next demand miss (which drains the
  /// buffer first, preserving memory order). 0 = writes block.
  u32 write_buffer_depth = 0;
  /// Extra PE wait cycles on a demand fill that goes all the way to
  /// memory (an L2 miss, or every memory fill in the flat model). The
  /// L2-hit counterpart lives in L2Config::hit_extra_cycles — together
  /// they give the hierarchy its distinct L1-hit (cycles_per_ref
  /// only) / L2-hit / memory latencies. The extra cycles delay the PE,
  /// not the bus (the bus is released after the word transfer), and do
  /// not apply to posted writes or cache-to-cache supplies. Default 0:
  /// memory latency folded into bus_service_cycles, as the paper's
  /// model has it.
  u32 mem_extra_cycles = 0;

  /// Idealised bus: every transaction takes zero time. A TimedReplay
  /// with these parameters must behave exactly like the untimed
  /// simulator (same TrafficStats; zero stalls as long as the cache
  /// config charges no L2 hit latency either).
  static TimingParams zero_cost() { return TimingParams{1, 0, 1, 0}; }

  /// Effective service time per word in PE cycles, as the analytic
  /// bus_contention() model expresses it (service_cycles/interleave).
  double effective_service() const {
    return interleave ? static_cast<double>(bus_service_cycles) / interleave : 0.0;
  }
};

struct PeTiming {
  u64 refs = 0;
  u64 busy_cycles = 0;   ///< issue cycles spent doing useful work
  u64 stall_cycles = 0;  ///< cycles waiting on the bus / write buffer
  u64 clock = 0;         ///< virtual time the PE finished its last ref
};

struct TimingStats {
  std::vector<PeTiming> pe;
  u64 makespan = 0;           ///< virtual cycles until everything retired
  u64 bus_busy_cycles = 0;    ///< cycles the bus was occupied
  u64 bus_transactions = 0;
  /// Demand fills by supplier: another PE's cache, the shared L2
  /// (hierarchy only), or memory. cache_fills + l2_fills + mem_fills
  /// is the total number of demand transactions.
  u64 cache_fills = 0;
  u64 l2_fills = 0;
  u64 mem_fills = 0;

  u64 total_busy() const {
    u64 s = 0;
    for (const PeTiming& p : pe) s += p.busy_cycles;
    return s;
  }
  u64 total_stall() const {
    u64 s = 0;
    for (const PeTiming& p : pe) s += p.stall_cycles;
    return s;
  }
  /// Fraction of virtual time the bus was busy; <= 1 by construction
  /// (transactions never overlap).
  double bus_utilization() const {
    return makespan ? static_cast<double>(bus_busy_cycles) /
                          static_cast<double>(makespan)
                    : 0.0;
  }
  /// Achieved aggregate speedup: useful work per virtual cycle. With
  /// cycles_per_ref=1 this is refs/makespan — directly comparable to
  /// the analytic model's aggregate_speedup.
  double speedup() const {
    return makespan ? static_cast<double>(total_busy()) /
                          static_cast<double>(makespan)
                    : 0.0;
  }
  /// speedup / PEs: the measured counterpart of pe_efficiency.
  double efficiency() const {
    return pe.empty() ? 0.0 : speedup() / static_cast<double>(pe.size());
  }
  bool saturated(double threshold = 0.95) const {
    return bus_utilization() >= threshold;
  }
};

/// Smallest PE count in a (pes, stats) sweep whose run saturates the
/// bus; 0 if none does.
unsigned saturation_pe_count(
    const std::vector<std::pair<unsigned, TimingStats>>& runs,
    double threshold = 0.95);

class TimedReplay {
 public:
  /// `rep` selects the sharing-directory representation and is passed
  /// through to the coherence engine (the timing layer itself is
  /// representation-agnostic; the differential suite forces Wide here
  /// to pin timed wide-directory replays against flat ones).
  TimedReplay(const CacheConfig& cfg, unsigned num_pes, const TimingParams& tp,
              DirRep rep = DirRep::Auto);

  void step(const MemRef& r);
  void replay(const u64* packed, std::size_t n);
  void replay(const std::vector<u64>& packed) { replay(packed.data(), packed.size()); }
  /// Replays shared immutable chunk storage in place (no flattening).
  void replay(const ChunkedTrace& t) {
    t.for_each_chunk([this](const u64* p, std::size_t n) { replay(p, n); });
  }

  /// Coherence-side results: identical to an untimed replay.
  const TrafficStats& traffic() const { return sim_.stats(); }
  const HierCacheSim& sim() const { return sim_; }
  const TimingParams& params() const { return tp_; }

  /// Timing results; computes the makespan over per-PE clocks and any
  /// posted writes still draining. Callable repeatedly.
  TimingStats timing() const;

  /// Checkpoint serialization (docs/DESIGN.md §12): the coherence
  /// engine's state plus the complete timing state — per-PE clocks and
  /// posted-write completion times, accumulated per-PE timing
  /// counters, the coalesced bus timeline, and the prune counter (it
  /// decides *when* the timeline is compacted; compaction is
  /// behaviour-neutral, but capturing the counter keeps the restored
  /// run's internal trajectory byte-for-byte identical, not just its
  /// results). Restore into a freshly constructed TimedReplay of the
  /// same configuration and parameters; throws Error on malformed
  /// input (unordered/overlapping timeline intervals, non-monotonic
  /// write-buffer entries, count mismatches).
  void save_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  struct PeState {
    u64 clock = 0;
    std::deque<u64> wbuf;  ///< bus completion times of in-flight posted writes
  };

  /// Bus cycles an n-word transaction occupies.
  u64 service_of(u64 words) const {
    return (words * tp_.bus_service_cycles + tp_.interleave - 1) / tp_.interleave;
  }
  /// Books `svc` bus cycles into the earliest free gap at/after
  /// `ready`; returns the completion time. Same-instant contention is
  /// resolved in trace order (round-robin issue order).
  u64 bus_reserve(u64 ready, u64 svc);
  /// Drops busy intervals no future request can reach (all PEs' clocks
  /// are already past them), bounding the timeline's size.
  void prune_timeline();

  HierCacheSim sim_;
  TimingParams tp_;
  u32 l2_extra_ = 0;  ///< cfg.l2.hit_extra_cycles, cached
  std::vector<PeState> pes_;
  TimingStats ts_;
  /// Bus timeline: disjoint, coalesced busy intervals start -> end.
  std::map<u64, u64> busy_;
  u64 reservations_since_prune_ = 0;
};

}  // namespace rapwam
