#include "trace/areas.h"

namespace rapwam {

const std::array<StorageTraits, kObjClassCount>& storage_table() {
  // Table 1 of the paper, row for row.
  static const std::array<StorageTraits, kObjClassCount> t = {{
      {ObjClass::EnvControl, Area::Local, true, false, Locality::Local},
      {ObjClass::EnvPermVar, Area::Local, true, false, Locality::Global},
      {ObjClass::ChoicePoint, Area::Control, true, false, Locality::Local},
      {ObjClass::HeapTerm, Area::Heap, true, false, Locality::Global},
      {ObjClass::TrailEntry, Area::Trail, true, false, Locality::Local},
      {ObjClass::PdlEntry, Area::Pdl, true, false, Locality::Local},
      {ObjClass::ParcallLocal, Area::Local, false, false, Locality::Local},
      {ObjClass::ParcallGlobal, Area::Local, false, false, Locality::Global},
      {ObjClass::ParcallCount, Area::Local, false, true, Locality::Global},
      {ObjClass::Marker, Area::Control, false, false, Locality::Local},
      {ObjClass::GoalFrame, Area::GoalStack, false, true, Locality::Global},
      {ObjClass::Message, Area::MsgBuffer, false, true, Locality::Global},
  }};
  return t;
}

const StorageTraits& traits_of(ObjClass c) {
  return storage_table()[static_cast<std::size_t>(c)];
}

std::string_view area_name(Area a) {
  switch (a) {
    case Area::Heap: return "Heap";
    case Area::Local: return "Local";
    case Area::Control: return "Control";
    case Area::Trail: return "Trail";
    case Area::Pdl: return "PDL";
    case Area::GoalStack: return "GoalStack";
    case Area::MsgBuffer: return "MsgBuffer";
    case Area::kCount: break;
  }
  return "?";
}

std::string_view obj_class_name(ObjClass c) {
  switch (c) {
    case ObjClass::EnvControl: return "Envts./control";
    case ObjClass::EnvPermVar: return "Envts./P.Vars";
    case ObjClass::ChoicePoint: return "Choice points";
    case ObjClass::HeapTerm: return "Heap";
    case ObjClass::TrailEntry: return "Trail entries";
    case ObjClass::PdlEntry: return "PDL entries";
    case ObjClass::ParcallLocal: return "Parcall F./Local";
    case ObjClass::ParcallGlobal: return "Parcall F./Global";
    case ObjClass::ParcallCount: return "Parcall F./Counts";
    case ObjClass::Marker: return "Markers";
    case ObjClass::GoalFrame: return "Goal Frames";
    case ObjClass::Message: return "Messages";
    case ObjClass::kCount: break;
  }
  return "?";
}

std::string_view locality_name(Locality l) {
  return l == Locality::Local ? "Local" : "Global";
}

}  // namespace rapwam
