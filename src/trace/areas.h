// Machine-readable form of the paper's Table 1: the storage areas of a
// RAP-WAM Stack Set and the object classes allocated in them, with
// their WAM-heritage, locking and locality attributes.
//
// Every data memory reference the emulator issues carries an ObjClass
// tag. The hybrid cache protocol keys its write policy off the
// locality attribute (Local => copy-back, Global => write-through),
// exactly as the paper's firmware-controlled hybrid cache does.
#pragma once

#include <array>
#include <string_view>

#include "support/common.h"

namespace rapwam {

/// Physical storage areas of one Stack Set (one per PE).
enum class Area : u8 {
  Heap = 0,     ///< global term storage
  Local,        ///< environments + parcall frames ("Local stack")
  Control,      ///< choice points + markers ("Control stack")
  Trail,        ///< conditional binding trail
  Pdl,          ///< unification push-down list
  GoalStack,    ///< goal frames awaiting execution (work queue)
  MsgBuffer,    ///< kill/redo messages between PEs
  kCount
};
inline constexpr std::size_t kAreaCount = static_cast<std::size_t>(Area::kCount);

/// Object classes from Table 1 (what a reference touches).
enum class ObjClass : u8 {
  EnvControl = 0,   ///< environment control words (CE, CP, size)
  EnvPermVar,       ///< permanent (Y) variables
  ChoicePoint,      ///< choice point words
  HeapTerm,         ///< heap cells
  TrailEntry,       ///< trail entries
  PdlEntry,         ///< PDL entries
  ParcallLocal,     ///< parcall frame, local bookkeeping words
  ParcallGlobal,    ///< parcall frame, slot status words (read remotely)
  ParcallCount,     ///< parcall frame, locked counters
  Marker,           ///< stack-section markers
  GoalFrame,        ///< goal stack frames (locked)
  Message,          ///< message-buffer words (locked)
  kCount
};
inline constexpr std::size_t kObjClassCount = static_cast<std::size_t>(ObjClass::kCount);

enum class Locality : u8 { Local = 0, Global = 1 };

/// One row of Table 1.
struct StorageTraits {
  ObjClass cls;
  Area area;
  bool in_wam;        ///< present in the sequential WAM?
  bool locked;        ///< accessed under a lock?
  Locality locality;  ///< may another PE touch it?
};

/// The twelve rows of Table 1, indexable by ObjClass.
const std::array<StorageTraits, kObjClassCount>& storage_table();

const StorageTraits& traits_of(ObjClass c);

std::string_view area_name(Area a);
std::string_view obj_class_name(ObjClass c);
std::string_view locality_name(Locality l);

}  // namespace rapwam
