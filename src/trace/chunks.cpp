#include "trace/chunks.h"

#include <algorithm>

#include "support/atomic_file.h"

namespace rapwam {

// --- ChunkedTrace ---------------------------------------------------------

std::vector<u64> ChunkedTrace::to_packed() const {
  std::vector<u64> out;
  out.reserve(size_);
  for (const std::vector<u64>& c : chunks_) out.insert(out.end(), c.begin(), c.end());
  return out;
}

// --- ChunkingSink ---------------------------------------------------------

ChunkingSink::ChunkingSink(bool busy_only)
    : busy_only_(busy_only), trace_(std::make_shared<ChunkedTrace>()) {}

void ChunkingSink::on_chunk(const u64* packed, std::size_t n) {
  std::vector<std::vector<u64>>& chunks = trace_->chunks_;
  for (std::size_t i = 0; i < n; ++i) {
    MemRef r = MemRef::unpack(packed[i]);
    trace_->counts_.add(r);
    if (busy_only_ && !r.busy) continue;
    if (chunks.empty() || chunks.back().size() == kChunkRefs) {
      chunks.emplace_back();
      chunks.back().reserve(kChunkRefs);
    }
    chunks.back().push_back(packed[i]);
    ++trace_->size_;
  }
}

std::shared_ptr<const ChunkedTrace> ChunkingSink::take() {
  std::shared_ptr<const ChunkedTrace> out = std::move(trace_);
  trace_ = std::make_shared<ChunkedTrace>();
  return out;
}

std::shared_ptr<const ChunkedTrace> load_chunked_trace(const std::string& path,
                                                       bool busy_only) {
  std::vector<u64> packed = load_trace(path);  // rejects sizes not 8-aligned
  for (std::size_t i = 0; i < packed.size(); ++i) {
    if (!packed_ref_valid(packed[i]))
      fail("trace file " + path + ": corrupted record at index " +
           std::to_string(i));
  }
  ChunkingSink sink(busy_only);
  if (!packed.empty()) sink.on_chunk(packed.data(), packed.size());
  return sink.take();
}

// --- ChunkStream ----------------------------------------------------------

ChunkStream::ChunkStream(unsigned num_consumers, std::size_t window_chunks)
    : taken_(num_consumers, 0), window_chunks_(std::max<std::size_t>(1, window_chunks)) {}

void ChunkStream::release_consumed() {
  // A chunk leaves the window once every (still-attached) consumer has
  // read past it; detached consumers sit at u64(-1) and never hold the
  // window back.
  u64 min_taken = ~u64(0);
  for (u64 t : taken_) min_taken = std::min(min_taken, t);
  bool released = false;
  while (!window_.empty() && base_seq_ < min_taken) {
    window_.pop_front();
    ++base_seq_;
    released = true;
  }
  if (released) can_push_.notify_all();
}

void ChunkStream::push(std::vector<u64> chunk) {
  std::unique_lock lk(mu_);
  can_push_.wait(lk, [&] { return window_.size() < window_chunks_ || closed_; });
  if (closed_) return;
  window_.push_back(std::make_shared<const std::vector<u64>>(std::move(chunk)));
  peak_ = std::max(peak_, window_.size());
  release_consumed();  // no consumers at all: drop immediately
  can_pop_.notify_all();
}

void ChunkStream::close() {
  std::scoped_lock lk(mu_);
  closed_ = true;
  can_pop_.notify_all();
  can_push_.notify_all();
}

std::shared_ptr<const std::vector<u64>> ChunkStream::next(unsigned id) {
  std::unique_lock lk(mu_);
  RW_CHECK(id < taken_.size(), "chunk stream: bad consumer id");
  u64 seq = taken_[id];
  can_pop_.wait(lk, [&] { return seq < base_seq_ + window_.size() || closed_; });
  if (seq >= base_seq_ + window_.size()) return nullptr;  // closed and drained
  std::shared_ptr<const std::vector<u64>> c = window_[seq - base_seq_];
  taken_[id] = seq + 1;
  release_consumed();
  return c;
}

void ChunkStream::detach(unsigned id) {
  std::scoped_lock lk(mu_);
  RW_CHECK(id < taken_.size(), "chunk stream: bad consumer id");
  taken_[id] = ~u64(0);
  release_consumed();
}

std::size_t ChunkStream::peak_chunks_in_flight() const {
  std::scoped_lock lk(mu_);
  return peak_;
}

// --- StreamSink -----------------------------------------------------------

StreamSink::StreamSink(ChunkStream& stream, bool busy_only)
    : stream_(stream), busy_only_(busy_only) {
  cur_.reserve(kChunkRefs);
}

StreamSink::~StreamSink() { finish(); }

void StreamSink::on_chunk(const u64* packed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (busy_only_ && !MemRef::unpack(packed[i]).busy) continue;
    cur_.push_back(packed[i]);
    if (cur_.size() == kChunkRefs) {
      stream_.push(std::move(cur_));
      cur_ = {};
      cur_.reserve(kChunkRefs);
    }
  }
}

void StreamSink::finish() {
  if (finished_) return;
  finished_ = true;
  if (!cur_.empty()) stream_.push(std::move(cur_));
  stream_.close();
}

// --- FileTraceSink --------------------------------------------------------

FileTraceSink::FileTraceSink(const std::string& path, bool busy_only)
    : path_(path),
      tmp_path_(path + ".tmp"),
      f_(std::fopen(tmp_path_.c_str(), "wb")),
      busy_only_(busy_only) {
  if (!f_) fail("cannot open trace file for writing: " + tmp_path_);
}

FileTraceSink::~FileTraceSink() {
  if (!f_) return;
  // Destroyed without close(): the recording was aborted (an exception
  // is unwinding past us, or the caller gave up). Drop the partial
  // temporary instead of publishing a truncated trace.
  std::fclose(f_);
  std::remove(tmp_path_.c_str());
}

void FileTraceSink::on_chunk(const u64* packed, std::size_t n) {
  RW_CHECK(f_, "write to a closed trace file sink");
  // Filter into a small staging buffer so each chunk is one fwrite.
  std::vector<u64> keep;
  keep.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemRef r = MemRef::unpack(packed[i]);
    counts_.add(r);
    if (!busy_only_ || r.busy) keep.push_back(packed[i]);
  }
  if (!keep.empty() &&
      std::fwrite(keep.data(), sizeof(u64), keep.size(), f_) != keep.size())
    fail("short write to trace file: " + path_);
  written_ += keep.size();
}

void FileTraceSink::close() {
  if (!f_) return;
  // Durable publish (support/atomic_file.h): sync the temporary's data
  // before the rename and the directory after it, so a crash right
  // after close() cannot leave an empty or partial recording under the
  // final name — the rename may be durable before the data otherwise.
  try {
    flush_and_sync(f_, "trace file " + tmp_path_);
  } catch (...) {
    std::fclose(f_);
    f_ = nullptr;
    std::remove(tmp_path_.c_str());
    throw;
  }
  int rc = std::fclose(f_);
  f_ = nullptr;
  if (rc != 0) {
    std::remove(tmp_path_.c_str());
    fail("error closing trace file: " + tmp_path_);
  }
  // Publish atomically: rename within the same directory, so readers
  // see either no file or the complete recording, never a prefix.
  publish_file(tmp_path_, path_);
}

}  // namespace rapwam
