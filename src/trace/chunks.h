// Shared immutable chunk storage and streaming fan-out for the trace
// pipeline (docs/DESIGN.md §8).
//
// The generate-once/replay-many sweep path stores each generated trace
// as a ChunkedTrace — fixed-size packed chunks plus generation-time
// metadata (reference counters, PE span) — that any number of sweep
// points replay concurrently without copying or rescanning. The
// streaming path replaces storage entirely: a bounded single-producer
// multi-consumer ChunkStream broadcasts chunks from the running
// emulator to concurrent replay consumers, so peak memory is O(chunks
// in flight) instead of O(trace length).
#pragma once

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/cancel.h"
#include "trace/tracebuf.h"

namespace rapwam {

/// Immutable-after-build packed reference stream in kChunkRefs-sized
/// chunks. Metadata is recorded while the trace is generated, so
/// consumers never rescan the stream for it.
class ChunkedTrace {
 public:
  /// Retained references (after any busy-only filtering).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t num_chunks() const { return chunks_.size(); }
  const std::vector<u64>& chunk(std::size_t i) const { return chunks_[i]; }

  /// Counters over everything the producer emitted (retained or not),
  /// exactly as a TraceBuffer attached to the same run would count.
  const RefCounts& counts() const { return counts_; }
  /// PEs the trace was recorded on (metadata; no stream scan).
  unsigned num_pes() const { return counts_.pes(); }

  template <typename Fn>
  void for_each_chunk(Fn&& fn) const {
    for (const std::vector<u64>& c : chunks_) fn(c.data(), c.size());
  }

  /// Materialized flat copy — tests and trace-file output only; sweep
  /// consumers replay the chunks in place.
  std::vector<u64> to_packed() const;

 private:
  friend class ChunkingSink;
  std::vector<std::vector<u64>> chunks_;
  RefCounts counts_;
  std::size_t size_ = 0;
};

/// Builds a ChunkedTrace from a reference stream (optionally keeping
/// only busy references, which is what the cache simulators consume).
class ChunkingSink : public TraceSink {
 public:
  explicit ChunkingSink(bool busy_only = true);
  void on_chunk(const u64* packed, std::size_t n) override;

  /// Hands the finished trace over; the sink is empty afterwards.
  std::shared_ptr<const ChunkedTrace> take();

 private:
  bool busy_only_;
  std::shared_ptr<ChunkedTrace> trace_;
};

/// Bounded single-producer multi-consumer broadcast of packed chunks.
///
/// Ordering: every consumer sees every chunk, in push order (the global
/// trace order the emulator emitted). Backpressure: a chunk is released
/// only once all consumers have taken it, and push() blocks while
/// `window_chunks` chunks are outstanding, so the producer can run at
/// most that far ahead of the slowest consumer and peak memory is
/// O(window_chunks) regardless of trace length.
class ChunkStream {
 public:
  static constexpr std::size_t kDefaultWindow = 8;

  explicit ChunkStream(unsigned num_consumers,
                       std::size_t window_chunks = kDefaultWindow);

  // -- producer side
  /// Blocks while the window is full. No-op after close().
  void push(std::vector<u64> chunk);
  /// Marks end-of-stream; consumers drain the window then see null.
  void close();

  // -- consumer side
  /// Next chunk for consumer `id` (0-based), or nullptr at end of
  /// stream. The returned pointer stays valid for as long as the caller
  /// holds it, even after the window slides past the chunk.
  std::shared_ptr<const std::vector<u64>> next(unsigned id);
  /// Permanently unsubscribes consumer `id` (e.g. its simulator threw)
  /// so the window no longer waits for it.
  void detach(unsigned id);

  unsigned num_consumers() const { return static_cast<unsigned>(taken_.size()); }
  /// Most chunks ever outstanding at once; <= window_chunks by
  /// construction (the bounded-memory guarantee, pinned by tests).
  std::size_t peak_chunks_in_flight() const;

 private:
  void release_consumed();  // caller holds mu_

  mutable std::mutex mu_;
  std::condition_variable can_push_, can_pop_;
  std::deque<std::shared_ptr<const std::vector<u64>>> window_;
  u64 base_seq_ = 0;          ///< sequence number of window_.front()
  std::vector<u64> taken_;    ///< per-consumer next sequence to read
  std::size_t window_chunks_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

/// Forwards chunks to `inner`, checking a cancellation token first.
/// Wrapping the sink of a generation run makes the *producer* side of
/// the pipeline cancellable at chunk granularity — the emulator aborts
/// with CancelledError instead of finishing a run nobody is waiting
/// for (docs/DESIGN.md §10). A null token forwards unconditionally.
class CancelCheckSink : public TraceSink {
 public:
  CancelCheckSink(TraceSink& inner, const CancelToken* cancel)
      : inner_(inner), cancel_(cancel) {}
  void on_chunk(const u64* packed, std::size_t n) override {
    if (cancel_) cancel_->checkpoint();
    inner_.on_chunk(packed, n);
  }

 private:
  TraceSink& inner_;
  const CancelToken* cancel_;
};

/// Re-chunks a reference stream (applying the busy-only filter) and
/// pushes full chunks into a ChunkStream. finish() flushes the partial
/// tail chunk and closes the stream; the destructor finishes too, so an
/// exception on the producer side still unblocks the consumers.
class StreamSink : public TraceSink {
 public:
  explicit StreamSink(ChunkStream& stream, bool busy_only = true);
  ~StreamSink() override;
  void on_chunk(const u64* packed, std::size_t n) override;
  void finish();

 private:
  ChunkStream& stream_;
  bool busy_only_;
  bool finished_ = false;
  std::vector<u64> cur_;
};

/// Loads a binary trace file (the save_trace format) into shared
/// immutable chunk storage. Every record is validated up front
/// (packed_ref_valid: truncated or corrupted files fail cleanly with
/// Error, never index per-class tables out of range) and the RefCounts
/// metadata is built once here — consumers read num_pes()/counts()
/// instead of rescanning the stream per use, which is what the
/// full-scan pes_in_trace() helper used to cost every command that
/// touched a loaded trace.
std::shared_ptr<const ChunkedTrace> load_chunked_trace(const std::string& path,
                                                       bool busy_only = false);

/// Appends packed chunks straight to a binary trace file (the
/// save_trace format: 8 bytes per reference, host order). Recording a
/// multi-million-reference trace this way needs O(chunk) memory —
/// nothing is materialized.
///
/// Crash-safe: the stream is written to `<path>.tmp` and atomically
/// renamed to `path` by close(), so `path` either doesn't exist or
/// holds a complete recording. An interrupted record (crash, thrown
/// exception unwinding past the sink) can never leave a truncated
/// file at `path` that a later load would silently accept as a short
/// trace — the format carries no length header, so a truncated prefix
/// of valid records is indistinguishable from a genuine short run.
/// The destructor without close() treats the recording as aborted and
/// removes the temporary.
class FileTraceSink : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path, bool busy_only = true);
  ~FileTraceSink() override;
  void on_chunk(const u64* packed, std::size_t n) override;
  /// Flushes, closes and publishes the file at `path` (atomic rename
  /// from the temporary); throws on write failure. Idempotent.
  void close();

  u64 written() const { return written_; }
  const RefCounts& counts() const { return counts_; }
  /// Where the bytes go until close() publishes them.
  const std::string& temp_path() const { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* f_ = nullptr;
  bool busy_only_;
  u64 written_ = 0;
  RefCounts counts_;
};

}  // namespace rapwam
