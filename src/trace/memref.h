// Packed memory-reference record.
//
// The emulator emits one MemRef per data word touched. References are
// packed into 8 bytes so multi-million-reference traces stay cheap:
//
//   bits  0..39  word address (1 TB of simulated words is plenty)
//   bits 40..47  PE id
//   bits 48..51  object class (Table 1 row)
//   bit  52      write flag
//   bit  53      busy flag (PE was doing useful work, not idling/waiting)
#pragma once

#include <cstddef>

#include "support/common.h"
#include "trace/areas.h"

namespace rapwam {

/// Trace-format PE cap: a packed MemRef carries the PE id in 8 bits
/// (bits 40..47), so traces — and everything that records or replays
/// them, including the emulator's machine layout — top out at 256 PEs.
/// The cache simulator itself scales past this (cache/config.h,
/// kMaxPes) but can only be *driven* up to kMaxTracePes by a trace.
inline constexpr unsigned kMaxTracePes = 256;

struct MemRef {
  u64 addr = 0;
  u8 pe = 0;
  ObjClass cls = ObjClass::HeapTerm;
  bool write = false;
  bool busy = true;

  u64 pack() const {
    return (addr & 0xFFFFFFFFFFull) | (u64(pe) << 40) |
           (u64(static_cast<u8>(cls)) << 48) | (u64(write ? 1 : 0) << 52) |
           (u64(busy ? 1 : 0) << 53);
  }

  static MemRef unpack(u64 v) {
    MemRef r;
    r.addr = v & 0xFFFFFFFFFFull;
    r.pe = static_cast<u8>((v >> 40) & 0xFF);
    r.cls = static_cast<ObjClass>((v >> 48) & 0xF);
    r.write = ((v >> 52) & 1) != 0;
    r.busy = ((v >> 53) & 1) != 0;
    return r;
  }
};

/// True iff `v` is a well-formed packed record: nothing above the
/// packed fields (bits 54..63 clear) and an in-range object class.
/// pack() can only produce such words; trace *files* carry no other
/// integrity metadata, so loaders must validate every record before
/// anything indexes per-class tables with it (traits_of on an
/// out-of-range class reads out of bounds).
inline bool packed_ref_valid(u64 v) {
  return (v >> 54) == 0 &&
         ((v >> 48) & 0xF) < static_cast<u64>(ObjClass::kCount);
}

/// References per pipeline chunk (64K refs = 512 KB of packed words):
/// large enough that the virtual chunk handoff is negligible per
/// reference, small enough that a bounded window of chunks in flight
/// (streaming replay, trace/chunks.h) stays cache- and memory-friendly.
inline constexpr std::size_t kChunkRefs = std::size_t(1) << 16;

/// Sink interface the emulator writes references into.
///
/// The handoff is chunk-granular (docs/DESIGN.md §8): the emulator's
/// memory bus accumulates packed references into a fixed-size chunk
/// inline — no virtual call per reference — and dispatches here once
/// per kChunkRefs references (plus a final flush at end of run). Chunk
/// boundaries carry no meaning; `packed` holds `n` references in
/// emission order and is only valid for the duration of the call.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_chunk(const u64* packed, std::size_t n) = 0;

  /// Single-reference convenience for tests and adapters (one chunk of
  /// one reference; not used on any hot path).
  void on_ref(const MemRef& r) {
    u64 p = r.pack();
    on_chunk(&p, 1);
  }
};

}  // namespace rapwam
