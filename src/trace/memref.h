// Packed memory-reference record.
//
// The emulator emits one MemRef per data word touched. References are
// packed into 8 bytes so multi-million-reference traces stay cheap:
//
//   bits  0..39  word address (1 TB of simulated words is plenty)
//   bits 40..47  PE id
//   bits 48..51  object class (Table 1 row)
//   bit  52      write flag
//   bit  53      busy flag (PE was doing useful work, not idling/waiting)
#pragma once

#include "support/common.h"
#include "trace/areas.h"

namespace rapwam {

struct MemRef {
  u64 addr = 0;
  u8 pe = 0;
  ObjClass cls = ObjClass::HeapTerm;
  bool write = false;
  bool busy = true;

  u64 pack() const {
    return (addr & 0xFFFFFFFFFFull) | (u64(pe) << 40) |
           (u64(static_cast<u8>(cls)) << 48) | (u64(write ? 1 : 0) << 52) |
           (u64(busy ? 1 : 0) << 53);
  }

  static MemRef unpack(u64 v) {
    MemRef r;
    r.addr = v & 0xFFFFFFFFFFull;
    r.pe = static_cast<u8>((v >> 40) & 0xFF);
    r.cls = static_cast<ObjClass>((v >> 48) & 0xF);
    r.write = ((v >> 52) & 1) != 0;
    r.busy = ((v >> 53) & 1) != 0;
    return r;
  }
};

/// Sink interface the emulator writes references into.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_ref(const MemRef& r) = 0;
};

}  // namespace rapwam
