#include "trace/tracebuf.h"

#include <algorithm>
#include <cstdio>
#include <memory>

namespace rapwam {

void save_trace(const std::vector<u64>& packed, const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) fail("cannot open trace file for writing: " + path);
  if (!packed.empty() &&
      std::fwrite(packed.data(), sizeof(u64), packed.size(), f.get()) != packed.size())
    fail("short write to trace file: " + path);
}

std::vector<u64> load_trace(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) fail("cannot open trace file for reading: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  long bytes = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (bytes < 0 || bytes % 8 != 0) fail("trace file has invalid size: " + path);
  std::vector<u64> out(static_cast<std::size_t>(bytes) / 8);
  if (!out.empty() &&
      std::fread(out.data(), sizeof(u64), out.size(), f.get()) != out.size())
    fail("short read from trace file: " + path);
  return out;
}

unsigned pes_in_trace(const std::vector<u64>& packed) {
  unsigned maxpe = 0;
  for (u64 p : packed) maxpe = std::max(maxpe, unsigned(MemRef::unpack(p).pe));
  return maxpe + 1;
}

}  // namespace rapwam
