// In-memory trace buffer plus per-area/class reference counters.
//
// CountingSink is the cheap always-on instrumentation (Table 2 and
// Figure 2 need only counts); TraceBuffer additionally retains the full
// packed reference stream for cache simulation (Figure 4, Table 3).
#pragma once

#include <array>
#include <vector>

#include "trace/memref.h"

namespace rapwam {

/// Aggregate counters over a reference stream.
struct RefCounts {
  u64 total = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 busy = 0;  ///< refs issued while doing useful work ("work" in Fig. 2)
  std::array<u64, kAreaCount> by_area{};
  std::array<u64, kObjClassCount> by_class{};
  std::array<u64, kMaxTracePes> by_pe{};

  bool operator==(const RefCounts&) const = default;

  void add(const MemRef& r) {
    ++total;
    if (r.write) ++writes; else ++reads;
    if (r.busy) ++busy;
    by_area[static_cast<std::size_t>(traits_of(r.cls).area)]++;
    by_class[static_cast<std::size_t>(r.cls)]++;
    by_pe[r.pe]++;  // u8 PE id: always < kMaxTracePes
  }

  /// PEs the counted stream was recorded on (highest PE id seen + 1).
  /// Metadata derived from the per-PE counters — consumers use this
  /// instead of rescanning the packed stream (pes_in_trace is only for
  /// trace *files*, which carry no metadata).
  unsigned pes() const {
    for (std::size_t i = by_pe.size(); i-- > 0;)
      if (by_pe[i]) return static_cast<unsigned>(i) + 1;
    return 1;
  }
};

class CountingSink : public TraceSink {
 public:
  void on_chunk(const u64* packed, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) counts_.add(MemRef::unpack(packed[i]));
  }
  const RefCounts& counts() const { return counts_; }

 private:
  RefCounts counts_;
};

/// Retains the packed stream (optionally only busy references, which is
/// what the paper feeds its cache simulators) and counts everything.
class TraceBuffer : public TraceSink {
 public:
  explicit TraceBuffer(bool busy_only = true) : busy_only_(busy_only) {
    // Traces run to millions of refs; skipping the vector's tiny first
    // growth steps here (instead of checking per reference) keeps the
    // append path branch-free beyond the busy filter.
    packed_.reserve(kInitialReserve);
  }

  void on_chunk(const u64* packed, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      MemRef r = MemRef::unpack(packed[i]);
      counts_.add(r);
      if (!busy_only_ || r.busy) packed_.push_back(packed[i]);
    }
  }

  /// Pre-sizes the packed stream when the caller can estimate the
  /// reference count (e.g. re-running a benchmark at another PE count).
  void reserve(std::size_t refs) { packed_.reserve(refs); }

  const RefCounts& counts() const { return counts_; }
  /// PEs the trace was recorded on (metadata; no stream scan).
  unsigned num_pes() const { return counts_.pes(); }
  const std::vector<u64>& packed() const { return packed_; }
  std::size_t size() const { return packed_.size(); }
  MemRef at(std::size_t i) const { return MemRef::unpack(packed_[i]); }
  void clear() { packed_.clear(); counts_ = RefCounts{}; }

 private:
  static constexpr std::size_t kInitialReserve = 1 << 14;

  bool busy_only_;
  std::vector<u64> packed_;
  RefCounts counts_;
};

/// Writes/reads a packed trace to/from a binary file (8 bytes/ref,
/// little-endian host order) so traces can be archived and replayed.
void save_trace(const std::vector<u64>& packed, const std::string& path);
std::vector<u64> load_trace(const std::string& path);

/// Number of PEs a packed trace was recorded on (highest PE id + 1).
/// Full-stream scan: only for traces loaded from files, which carry no
/// metadata. In-process producers (TraceBuffer, ChunkedTrace) record
/// the PE span at generation time — use their num_pes() instead.
unsigned pes_in_trace(const std::vector<u64>& packed);

}  // namespace rapwam
