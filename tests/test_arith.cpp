// Arithmetic tests: compiled Math* instruction path vs interpreted
// evaluation, edge cases, meta-arithmetic, and instruction selection.
#include <gtest/gtest.h>

#include "engine/machine.h"

namespace rapwam {
namespace {

struct Env {
  Program prog;
  std::unique_ptr<Machine> m;
  explicit Env(const std::string& src, unsigned max_sols = 1) {
    prog.consult(src);
    MachineConfig cfg;
    cfg.max_solutions = max_sols;
    m = std::make_unique<Machine>(prog, cfg);
  }
  RunResult run(const std::string& goal) { return m->solve(goal); }
};

std::string binding(const RunResult& r, const std::string& var) {
  for (auto& [n, v] : r.solutions.at(0).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

TEST(CompiledArith, BasicOps) {
  Env e("calc(A,B,R) :- R is A * B + A - B.");
  EXPECT_EQ(binding(e.run("calc(7, 3, R)."), "R"), "25");
}

TEST(CompiledArith, AllBinaryOperators) {
  Env e("t.");
  EXPECT_EQ(binding(e.run("X is 17 + 5."), "X"), "22");
  EXPECT_EQ(binding(e.run("X is 17 - 5."), "X"), "12");
  EXPECT_EQ(binding(e.run("X is 17 * 5."), "X"), "85");
  EXPECT_EQ(binding(e.run("X is 17 // 5."), "X"), "3");
  EXPECT_EQ(binding(e.run("X is 17 mod 5."), "X"), "2");
  EXPECT_EQ(binding(e.run("X is 17 rem 5."), "X"), "2");
  EXPECT_EQ(binding(e.run("X is min(3, 9)."), "X"), "3");
  EXPECT_EQ(binding(e.run("X is max(3, 9)."), "X"), "9");
  EXPECT_EQ(binding(e.run("X is 12 /\\ 10."), "X"), "8");
  EXPECT_EQ(binding(e.run("X is 12 \\/ 10."), "X"), "14");
  EXPECT_EQ(binding(e.run("X is 3 << 4."), "X"), "48");
  EXPECT_EQ(binding(e.run("X is 48 >> 4."), "X"), "3");
}

TEST(CompiledArith, UnaryOperators) {
  Env e("t.");
  EXPECT_EQ(binding(e.run("X is -(5)."), "X"), "-5");
  EXPECT_EQ(binding(e.run("X is abs(-7)."), "X"), "7");
  EXPECT_EQ(binding(e.run("X is +(9)."), "X"), "9");
  EXPECT_EQ(binding(e.run("X is -(3+4)."), "X"), "-7");
}

TEST(CompiledArith, NestedExpressions) {
  Env e("t.");
  EXPECT_EQ(binding(e.run("X is ((2+3)*(4-1)) mod 7."), "X"), "1");
  EXPECT_EQ(binding(e.run("X is max(min(5,3), 2*2)."), "X"), "4");
}

TEST(CompiledArith, BoundTargetChecksValue) {
  Env e("t.");
  EXPECT_TRUE(e.run("7 is 3 + 4.").success);
  EXPECT_FALSE(e.run("8 is 3 + 4.").success);
}

TEST(CompiledArith, ChainedAccumulator) {
  // The accumulator idiom must stay entirely in registers (no heap
  // growth proportional to iterations).
  Env e(
      "sum(0, A, A) :- !. "
      "sum(N, A, R) :- A1 is A + N, N1 is N - 1, sum(N1, A1, R).");
  RunResult r = e.run("sum(1000, 0, R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "500500");
  EXPECT_LT(r.stats.high_water[static_cast<size_t>(Area::Heap)], 64u);
}

TEST(CompiledArith, MetaArithThroughVariable) {
  // E is bound to an expression *term*; MathLoad must fall back to
  // interpreted evaluation.
  Env e("ev(E, R) :- R is E + 1.");
  RunResult r = e.run("ev(2*3, R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "7");
}

TEST(CompiledArith, WholeExpressionViaVariable) {
  Env e("t.");
  RunResult r = e.run("E = 1+2, X is E.");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "3");
}

TEST(CompiledArith, AtomIsNotANumber) {
  Env e("bad(R) :- R is foo + 1.");
  // `foo` is not arithmetic: interpreted fallback path fails the goal.
  EXPECT_FALSE(e.run("bad(R).").success);
}

TEST(CompiledArith, AtomBoundVariableFails) {
  Env e("t.");
  EXPECT_FALSE(e.run("E = foo, X is E + 1.").success);
}

TEST(CompiledArith, UnboundThrows) {
  Env e("t.");
  EXPECT_THROW(e.run("X is Y + 1."), Error);
}

TEST(CompiledArith, DivisionByZeroThrows) {
  Env e("t.");
  EXPECT_THROW(e.run("X is 1 // 0."), Error);
  EXPECT_THROW(e.run("X is 1 mod 0."), Error);
}

TEST(CompiledArith, ComparisonsCompiled) {
  Env e("t.");
  EXPECT_TRUE(e.run("3 * 3 > 2 + 6.").success);
  EXPECT_FALSE(e.run("3 * 3 < 2 + 6.").success);
  EXPECT_TRUE(e.run("2 + 2 =:= 2 * 2.").success);
  EXPECT_TRUE(e.run("5 mod 2 =\\= 0.").success);
}

TEST(CompiledArith, ComparisonWithVariables) {
  Env e("between_check(L, X, H) :- L =< X, X =< H.");
  EXPECT_TRUE(e.run("between_check(1, 5, 10).").success);
  EXPECT_FALSE(e.run("between_check(1, 50, 10).").success);
}

TEST(CompiledArith, NegativeLiterals) {
  Env e("t.");
  EXPECT_EQ(binding(e.run("X is -3 + -4."), "X"), "-7");
  EXPECT_EQ(binding(e.run("X is -7 mod 3."), "X"), "2");   // ISO mod
  EXPECT_EQ(binding(e.run("X is -7 rem 3."), "X"), "-1");
}

TEST(CompiledArith, LargeValues) {
  Env e("t.");
  // 48-bit-scale values survive the 56-bit cell payload.
  EXPECT_EQ(binding(e.run("X is 1000000 * 1000000."), "X"), "1000000000000");
  EXPECT_EQ(binding(e.run("X is -1000000 * 1000000."), "X"), "-1000000000000");
}

TEST(CompiledArith, InstructionSelection) {
  // `R is A + 1` with temp A and first-occurrence temp R must compile
  // to Math instructions, with no heap-building puts in between.
  Program p;
  p.consult("f(A, R) :- R is A + 1, g(R). g(_).");
  auto code = compile_program(p);
  i32 pi = code->find_proc(p.pred_id("f", 2));
  bool saw_math = false, saw_put_structure = false;
  for (i32 i = code->proc(pi).entry; i < code->size(); ++i) {
    Op op = code->at(i).op;
    if (op == Op::MathRI || op == Op::MathRR || op == Op::MathLoad) saw_math = true;
    if (op == Op::PutStructure) saw_put_structure = true;
    if (op == Op::Execute || op == Op::Proceed) break;
  }
  EXPECT_TRUE(saw_math);
  EXPECT_FALSE(saw_put_structure);  // no heap expression tree
}

TEST(CompiledArith, FallbackForUnknownFunctor) {
  // gcd/2 is not an arithmetic functor: stays an interpreted builtin
  // (and fails at run time because it is not evaluable).
  Program p;
  p.consult("f(R) :- R is gcd(4, 6).");
  auto code = compile_program(p);
  i32 pi = code->find_proc(p.pred_id("f", 1));
  bool saw_builtin = false;
  for (i32 i = code->proc(pi).entry; i < code->size(); ++i) {
    if (code->at(i).op == Op::Builtin) saw_builtin = true;
    if (code->at(i).op == Op::Proceed) break;
  }
  EXPECT_TRUE(saw_builtin);
}

TEST(InterpretedArith, EvalAgreesWithCompiled) {
  // Force the interpreted path via meta-arithmetic and compare.
  Env e("both(E, C, I) :- C is E, X = E, I is X.");
  RunResult r = e.run("both(((7*3) mod 4) + max(2, -2), C, I).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "C"), binding(r, "I"));
  EXPECT_EQ(binding(r, "C"), "3");
}

}  // namespace
}  // namespace rapwam
