// Tests for the extended builtin set: standard order of terms,
// compare/3, =../2 (univ), copy_term/2.
#include <gtest/gtest.h>

#include "engine/machine.h"

namespace rapwam {
namespace {

struct Env {
  Program prog;
  std::unique_ptr<Machine> m;
  explicit Env(const std::string& src = "t.", unsigned max_sols = 1) {
    prog.consult(src);
    MachineConfig cfg;
    cfg.max_solutions = max_sols;
    m = std::make_unique<Machine>(prog, cfg);
  }
  RunResult run(const std::string& goal) { return m->solve(goal); }
};

std::string binding(const RunResult& r, const std::string& var) {
  for (auto& [n, v] : r.solutions.at(0).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

TEST(StandardOrder, TypeRanking) {
  Env e;
  // Var < Int < Atom < Compound.
  EXPECT_TRUE(e.run("X @< 1.").success);
  EXPECT_TRUE(e.run("1 @< a.").success);
  EXPECT_TRUE(e.run("a @< f(1).").success);
  EXPECT_FALSE(e.run("f(1) @< a.").success);
}

TEST(StandardOrder, IntegersByValue) {
  Env e;
  EXPECT_TRUE(e.run("1 @< 2.").success);
  EXPECT_TRUE(e.run("-5 @< 3.").success);
  EXPECT_FALSE(e.run("2 @< 2.").success);
  EXPECT_TRUE(e.run("2 @=< 2.").success);
}

TEST(StandardOrder, AtomsAlphabetically) {
  Env e;
  EXPECT_TRUE(e.run("apple @< banana.").success);
  EXPECT_TRUE(e.run("zebra @> apple.").success);
  EXPECT_TRUE(e.run("abc @>= abc.").success);
}

TEST(StandardOrder, CompoundsByArityThenNameThenArgs) {
  Env e;
  EXPECT_TRUE(e.run("f(1) @< f(1,2).").success);      // arity first
  EXPECT_TRUE(e.run("f(9) @< g(1).").success);        // then name
  EXPECT_TRUE(e.run("f(1,2) @< f(1,3).").success);    // then args
  EXPECT_FALSE(e.run("f(1,2) @< f(1,2).").success);
}

TEST(StandardOrder, ListsAreDotTerms) {
  Env e;
  EXPECT_TRUE(e.run("[1,2] @< [1,3].").success);
  EXPECT_TRUE(e.run("[1] @< [1,2].").success);  // [1] = '.'(1,[]), tails compare
}

TEST(StandardOrder, VariablesByAge) {
  Env e;
  // Two distinct variables compare consistently and non-equal.
  RunResult r = e.run("compare(O, X, Y).");
  ASSERT_TRUE(r.success);
  EXPECT_NE(binding(r, "O"), "=");
  EXPECT_TRUE(e.run("compare(=, X, X).").success);
}

TEST(Compare3, ProducesOrderAtom) {
  Env e;
  EXPECT_EQ(binding(e.run("compare(O, 1, 2)."), "O"), "<");
  EXPECT_EQ(binding(e.run("compare(O, b, a)."), "O"), ">");
  EXPECT_EQ(binding(e.run("compare(O, f(x), f(x))."), "O"), "=");
  EXPECT_TRUE(e.run("compare(<, 1, 2).").success);
  EXPECT_FALSE(e.run("compare(>, 1, 2).").success);
}

TEST(Univ, DecomposesStructures) {
  Env e;
  RunResult r = e.run("f(a, b, c) =.. L.");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "L"), "[f,a,b,c]");
  EXPECT_EQ(binding(e.run("foo =.. L."), "L"), "[foo]");
  EXPECT_EQ(binding(e.run("42 =.. L."), "L"), "[42]");
  EXPECT_EQ(binding(e.run("[x|T] =.. L."), "L").substr(0, 5), "[.,x,");
}

TEST(Univ, ConstructsStructures) {
  Env e;
  RunResult r = e.run("T =.. [g, 1, X].");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "T").substr(0, 5), "g(1,_");
  EXPECT_EQ(binding(e.run("T =.. [hello]."), "T"), "hello");
  EXPECT_EQ(binding(e.run("T =.. ['.', 1, []]."), "T"), "[1]");
}

TEST(Univ, RoundTrips) {
  Env e;
  EXPECT_TRUE(e.run("f(1, g(2)) =.. L, T =.. L, T == f(1, g(2)).").success);
}

TEST(Univ, RejectsBadLists) {
  Env e;
  EXPECT_FALSE(e.run("T =.. [].").success);
  EXPECT_FALSE(e.run("T =.. [1, 2].").success);   // head must be an atom
  EXPECT_FALSE(e.run("T =.. [f | _].").success);  // partial list
}

TEST(CopyTerm, FreshVariables) {
  Env e;
  // The copy's variable is distinct from the original's.
  RunResult r = e.run("copy_term(f(X, X, Y), C), C = f(1, Z, 2), var(X), var(Y).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "Z"), "1");  // sharing preserved inside the copy
}

TEST(CopyTerm, GroundTermsShare) {
  Env e;
  EXPECT_TRUE(e.run("copy_term(f(1, [a, b]), C), C == f(1, [a, b]).").success);
}

TEST(CopyTerm, CopyIsIndependent) {
  Env e;
  // Binding the copy must not bind the original.
  EXPECT_TRUE(e.run("copy_term(X, C), C = 42, var(X).").success);
}

TEST(Msort, SortingViaStandardOrder) {
  // A user-level insertion sort driven by @=< (exercises the ordering
  // builtins in a realistic program).
  Env e(
      "isort([], []). "
      "isort([X|Xs], S) :- isort(Xs, S1), ins(X, S1, S). "
      "ins(X, [], [X]). "
      "ins(X, [Y|Ys], [X,Y|Ys]) :- X @=< Y, !. "
      "ins(X, [Y|Ys], [Y|Zs]) :- ins(X, Ys, Zs).");
  RunResult r = e.run("isort([b, 3, f(1), a, 1, f(0)], S).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "S"), "[1,3,a,b,f(0),f(1)]");
}

TEST(Builtins, MetaCallOfNewBuiltins) {
  Env e;
  EXPECT_TRUE(e.run("call(compare(<, 1, 2)).").success);
  EXPECT_FALSE(e.run("call(1 @< 1).").success);
}

}  // namespace
}  // namespace rapwam
