// Cache unit tests: LRU mechanics and per-protocol traffic accounting
// on hand-crafted reference streams.
#include <gtest/gtest.h>

#include "cache/multisim.h"
#include "cache/sweep.h"

namespace rapwam {
namespace {

MemRef R(u8 pe, u64 addr, ObjClass cls = ObjClass::HeapTerm) {
  MemRef r;
  r.pe = pe;
  r.addr = addr;
  r.cls = cls;
  r.write = false;
  return r;
}
MemRef W(u8 pe, u64 addr, ObjClass cls = ObjClass::HeapTerm) {
  MemRef r = R(pe, addr, cls);
  r.write = true;
  return r;
}

CacheConfig cfg(Protocol p, u32 size = 64, bool walloc = true) {
  CacheConfig c;
  c.protocol = p;
  c.size_words = size;
  c.line_words = 4;
  c.write_allocate = walloc;
  return c;
}

TEST(CacheLru, HitAfterFill) {
  Cache c(cfg(Protocol::Copyback, 16));
  EXPECT_EQ(c.lookup(5), nullptr);
  c.insert(5, LineState::Shared);
  EXPECT_NE(c.lookup(5), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(CacheLru, EvictsLeastRecentlyUsed) {
  Cache c(cfg(Protocol::Copyback, 16));  // 4 lines
  for (u64 t = 0; t < 4; ++t) c.insert(t, LineState::Shared);
  c.lookup(0);  // 0 is now most recent; 1 is LRU
  auto ev = c.insert(9, LineState::Shared);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line.tag, 1u);
  EXPECT_EQ(c.lookup(1), nullptr);
  EXPECT_NE(c.lookup(0), nullptr);
}

TEST(CacheLru, InvalidateRemoves) {
  Cache c(cfg(Protocol::Copyback, 16));
  c.insert(3, LineState::Dirty);
  c.invalidate(3);
  EXPECT_EQ(c.lookup(3), nullptr);
  c.invalidate(42);  // no-op on absent line
}

TEST(Copyback, ReadMissFetchesLine) {
  MultiCacheSim sim(cfg(Protocol::Copyback), 1);
  sim.access(R(0, 100));
  EXPECT_EQ(sim.stats().misses, 1u);
  EXPECT_EQ(sim.stats().bus_words, 4u);
  sim.access(R(0, 101));  // same line: hit
  EXPECT_EQ(sim.stats().misses, 1u);
  EXPECT_EQ(sim.stats().bus_words, 4u);
}

TEST(Copyback, DirtyEvictionWritesBack) {
  MultiCacheSim sim(cfg(Protocol::Copyback, 16), 1);  // 4 lines
  sim.access(W(0, 0));  // fill + dirty
  for (u64 a = 4; a < 20; a += 4) sim.access(R(0, a));  // evict line 0
  // 5 fetches (1 write-allocate + 4 reads) + 1 writeback
  EXPECT_EQ(sim.stats().writeback_words, 4u);
  EXPECT_EQ(sim.stats().bus_words, 5 * 4u + 4u);
}

TEST(Copyback, NoWriteAllocateWritesThrough) {
  MultiCacheSim sim(cfg(Protocol::Copyback, 16, /*walloc=*/false), 1);
  sim.access(W(0, 0));
  EXPECT_EQ(sim.stats().bus_words, 1u);
  EXPECT_EQ(sim.cache(0).size(), 0u);  // not allocated
}

TEST(WriteThrough, EveryWriteCostsOneWord) {
  MultiCacheSim sim(cfg(Protocol::WriteThrough, 64, false), 2);
  for (int i = 0; i < 10; ++i) sim.access(W(0, 0));
  EXPECT_EQ(sim.stats().writethrough_words, 10u);
  EXPECT_EQ(sim.stats().bus_words, 10u);
}

TEST(WriteThrough, RemoteWriteInvalidatesCopy) {
  MultiCacheSim sim(cfg(Protocol::WriteThrough), 2);
  sim.access(R(0, 0));  // PE0 caches line 0
  sim.access(W(1, 0));  // PE1 writes: PE0's copy must go
  sim.access(R(0, 0));  // PE0 misses again
  EXPECT_EQ(sim.stats().misses, 3u);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST(WriteInBroadcast, PrivateWritesAreFree) {
  MultiCacheSim sim(cfg(Protocol::WriteInBroadcast), 2);
  sim.access(R(0, 0));  // fetch, Exclusive
  u64 before = sim.stats().bus_words;
  for (int i = 0; i < 100; ++i) sim.access(W(0, 0));
  EXPECT_EQ(sim.stats().bus_words, before);  // no bus traffic at all
}

TEST(WriteInBroadcast, SharedWritePaysOneInvalidation) {
  MultiCacheSim sim(cfg(Protocol::WriteInBroadcast), 2);
  sim.access(R(0, 0));
  sim.access(R(1, 0));  // both share
  u64 before = sim.stats().bus_words;
  sim.access(W(0, 0));  // invalidate PE1's copy: 1 word-time
  EXPECT_EQ(sim.stats().bus_words, before + 1);
  EXPECT_EQ(sim.stats().invalidations, 1u);
  // Subsequent writes are private.
  sim.access(W(0, 0));
  EXPECT_EQ(sim.stats().bus_words, before + 1);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST(WriteInBroadcast, DirtyLineSuppliedCacheToCache) {
  MultiCacheSim sim(cfg(Protocol::WriteInBroadcast), 2);
  sim.access(W(0, 0));  // PE0 dirty
  u64 before = sim.stats().bus_words;
  sim.access(R(1, 0));  // PE1 read: flush from PE0
  EXPECT_EQ(sim.stats().flush_words, 4u);
  EXPECT_EQ(sim.stats().bus_words, before + 4);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST(WriteUpdateBroadcast, SharedWriteBroadcastsWord) {
  MultiCacheSim sim(cfg(Protocol::WriteThroughBroadcast), 2);
  sim.access(R(0, 0));
  sim.access(R(1, 0));
  u64 before = sim.stats().bus_words;
  sim.access(W(0, 0));  // update broadcast, both keep copies
  EXPECT_EQ(sim.stats().update_words, 1u);
  EXPECT_EQ(sim.stats().bus_words, before + 1);
  // PE1 still hits.
  sim.access(R(1, 0));
  EXPECT_EQ(sim.stats().misses, 2u);
  EXPECT_TRUE(sim.invariants_ok());
}

TEST(Hybrid, GlobalWritesGoThrough) {
  MultiCacheSim sim(cfg(Protocol::Hybrid), 2);
  sim.access(R(0, 0, ObjClass::HeapTerm));  // heap = global
  u64 before = sim.stats().bus_words;
  sim.access(W(0, 0, ObjClass::HeapTerm));
  EXPECT_EQ(sim.stats().writethrough_words, 1u);
  EXPECT_EQ(sim.stats().bus_words, before + 1);
}

TEST(Hybrid, LocalWritesCopyBack) {
  MultiCacheSim sim(cfg(Protocol::Hybrid), 2);
  sim.access(W(0, 0, ObjClass::ChoicePoint));  // local: allocate dirty
  u64 after_fill = sim.stats().bus_words;
  for (int i = 0; i < 50; ++i) sim.access(W(0, 0, ObjClass::ChoicePoint));
  EXPECT_EQ(sim.stats().bus_words, after_fill);  // all absorbed
  EXPECT_EQ(sim.stats().writethrough_words, 0u);
}

TEST(Hybrid, ViolationDetectedWhenTwoPEsDirtyLocalLine) {
  MultiCacheSim sim(cfg(Protocol::Hybrid), 2);
  // Two PEs treating the same line as their own copy-back-local data
  // can never happen per Table 1; the simulator flags it.
  sim.access(W(1, 0, ObjClass::TrailEntry));  // PE1 dirties the line
  sim.access(W(0, 0, ObjClass::TrailEntry));  // PE0 writes it local too
  EXPECT_GT(sim.stats().coherence_violations, 0u);
}

TEST(Traffic, RatioAccountsDemandWords) {
  MultiCacheSim sim(cfg(Protocol::Copyback, 8), 1);  // 2 lines
  // Stream with no reuse: every 4th word misses.
  for (u64 a = 0; a < 400; ++a) sim.access(R(0, a));
  EXPECT_EQ(sim.stats().refs, 400u);
  EXPECT_NEAR(sim.stats().traffic_ratio(), 1.0, 0.05);
  EXPECT_NEAR(sim.stats().miss_ratio(), 0.25, 0.01);
}

TEST(Traffic, LargeCacheAbsorbsWorkingSet) {
  MultiCacheSim sim(cfg(Protocol::Copyback, 1024), 1);
  for (int pass = 0; pass < 10; ++pass)
    for (u64 a = 0; a < 256; ++a) sim.access(R(0, a));
  // 64 cold misses, everything else hits.
  EXPECT_EQ(sim.stats().misses, 64u);
  EXPECT_LT(sim.stats().traffic_ratio(), 0.11);
}

TEST(Sweep, RunsPointsInParallel) {
  // Build a small synthetic trace.
  std::vector<u64> trace;
  for (u64 a = 0; a < 1000; ++a) trace.push_back(R(0, a % 128).pack());
  ThreadPool pool(4);
  std::vector<SweepPoint> pts;
  for (u32 sz : {64u, 128u, 256u}) {
    SweepPoint p;
    p.cfg = cfg(Protocol::Copyback, sz);
    p.num_pes = 1;
    p.trace = &trace;
    pts.push_back(p);
  }
  auto res = run_sweep(pool, pts);
  ASSERT_EQ(res.size(), 3u);
  // Bigger caches can only help on the same trace.
  EXPECT_GE(res[0].stats.traffic_ratio(), res[1].stats.traffic_ratio());
  EXPECT_GE(res[1].stats.traffic_ratio(), res[2].stats.traffic_ratio());
}

}  // namespace
}  // namespace rapwam
