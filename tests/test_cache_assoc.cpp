// Set-associativity tests: geometry, conflict behaviour, and the
// property that more ways never hurt on LRU-friendly streams.
#include <gtest/gtest.h>

#include "cache/multisim.h"
#include "harness/runner.h"

namespace rapwam {
namespace {

MemRef R(u64 addr) {
  MemRef r;
  r.addr = addr;
  return r;
}

CacheConfig cfg(u32 size, u32 ways) {
  CacheConfig c;
  c.protocol = Protocol::Copyback;
  c.size_words = size;
  c.line_words = 4;
  c.ways = ways;
  return c;
}

TEST(Assoc, Geometry) {
  EXPECT_EQ(cfg(1024, 0).num_sets(), 1u);       // fully associative
  EXPECT_EQ(cfg(1024, 1).num_sets(), 256u);     // direct mapped
  EXPECT_EQ(cfg(1024, 4).num_sets(), 64u);
  EXPECT_TRUE(cfg(64, 16).fully_associative()); // ways >= lines
}

TEST(Assoc, DirectMappedConflicts) {
  // Two addresses mapping to the same set thrash a direct-mapped cache
  // but coexist in a 2-way one.
  MultiCacheSim dm(cfg(64, 1), 1);   // 16 sets
  MultiCacheSim w2(cfg(64, 2), 1);   // 8 sets
  u64 a = 0;
  u64 b = 16 * 4;  // same set in the 16-set direct-mapped cache
  for (int i = 0; i < 50; ++i) {
    dm.access(R(a));
    dm.access(R(b));
    w2.access(R(a));
    w2.access(R(b));
  }
  EXPECT_EQ(dm.stats().misses, 100u);  // every access misses
  EXPECT_EQ(w2.stats().misses, 2u);    // both lines stay resident
}

TEST(Assoc, CapacityRespected) {
  Cache c(cfg(64, 2));
  for (u64 t = 0; t < 100; ++t) c.insert(t, LineState::Shared);
  EXPECT_LE(c.size(), 16u);  // 64 words / 4-word lines
}

TEST(Assoc, InvalidateWorksInSets) {
  Cache c(cfg(64, 2));
  c.insert(5, LineState::Dirty);
  EXPECT_NE(c.probe(5), nullptr);
  c.invalidate(5);
  EXPECT_EQ(c.probe(5), nullptr);
  EXPECT_EQ(c.size(), 0u);
}

TEST(Assoc, MoreWaysNeverWorseOnRealTrace) {
  BenchRun r = run_parallel(bench_program("qsort", BenchScale::Small), 2, true);
  double prev = 1e9;
  for (u32 ways : {1u, 2u, 4u, 8u, 0u}) {
    CacheConfig c = cfg(1024, ways);
    c.protocol = Protocol::WriteInBroadcast;
    MultiCacheSim sim(c, 2);
    sim.replay(r.trace->packed());
    double miss = sim.stats().miss_ratio();
    // LRU stack property holds per set; real traces can have tiny
    // non-monotonicities across different set hashes, so allow 2%.
    EXPECT_LT(miss, prev * 1.02) << ways;
    prev = miss;
  }
}

TEST(Assoc, FullyAssociativeEqualsWaysEqualLines) {
  BenchRun r = run_parallel(bench_program("deriv", BenchScale::Small), 2, true);
  CacheConfig full = cfg(256, 0);
  CacheConfig ways64 = cfg(256, 64);  // 64 lines = 64 ways: same thing
  MultiCacheSim a(full, 2), b(ways64, 2);
  a.replay(r.trace->packed());
  b.replay(r.trace->packed());
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().bus_words, b.stats().bus_words);
}

TEST(Assoc, CoherenceInvariantsHoldWithSets) {
  BenchRun r = run_parallel(bench_program("qsort", BenchScale::Small), 4, true);
  for (u32 ways : {1u, 2u, 4u}) {
    CacheConfig c = cfg(512, ways);
    c.protocol = Protocol::WriteInBroadcast;
    MultiCacheSim sim(c, 4);
    sim.replay(r.trace->packed());
    EXPECT_TRUE(sim.invariants_ok()) << ways;
  }
}

}  // namespace
}  // namespace rapwam
