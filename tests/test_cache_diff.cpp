// Differential tests of the directory-based MultiCacheSim against the
// retained naive broadcast-snoop implementation (cache/refsim.h):
// randomized traces must produce bit-identical TrafficStats, identical
// final cache contents, and a directory that exactly mirrors the
// caches. Plus eviction-order tests pinning the flat-array LRU
// against a simple list model.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "cache/multisim.h"
#include "cache/refsim.h"
#include "test_rand.h"

namespace rapwam {
namespace {

std::vector<Line> sorted_lines(const Cache& c) {
  std::vector<Line> ls = c.lines();
  std::sort(ls.begin(), ls.end(),
            [](const Line& a, const Line& b) { return a.tag < b.tag; });
  return ls;
}

void expect_equivalent(const CacheConfig& cfg, unsigned pes,
                       const std::vector<u64>& trace, const char* what) {
  MultiCacheSim fast(cfg, pes);
  ReferenceCacheSim naive(cfg, pes);
  fast.replay(trace);
  naive.replay(trace);

  EXPECT_EQ(fast.stats(), naive.stats()) << what;
  EXPECT_EQ(fast.invariants_ok(), naive.invariants_ok()) << what;
  // Hybrid relies on the emulator's locality discipline; a random
  // trace mixing localities per address legally drives it into the
  // flagged-violation states (that is what coherence_violations
  // counts), so only the structurally-coherent protocols must hold
  // the invariants on arbitrary input.
  if (cfg.protocol != Protocol::Hybrid) EXPECT_TRUE(fast.invariants_ok()) << what;
  EXPECT_TRUE(fast.directory_consistent()) << what;
  for (unsigned pe = 0; pe < pes; ++pe) {
    std::vector<Line> a = sorted_lines(fast.cache(pe));
    std::vector<Line> b = sorted_lines(naive.cache(pe));
    ASSERT_EQ(a.size(), b.size()) << what << " pe=" << pe;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].tag, b[i].tag) << what << " pe=" << pe;
      EXPECT_EQ(a[i].state, b[i].state) << what << " pe=" << pe << " tag=" << a[i].tag;
    }
  }
}

const Protocol kAllProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

TEST(DirectoryDiff, AllProtocolsMatchNaiveOnRandomTraces) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {1u, 2u, 4u, 8u}) {
      std::vector<u64> trace =
          random_trace(0xC0FFEEu + static_cast<u64>(p) * 131 + pes, pes, 20000);
      CacheConfig cfg;
      cfg.protocol = p;
      cfg.size_words = 512;
      cfg.line_words = 4;
      cfg.write_allocate = true;
      expect_equivalent(cfg, pes,
                        trace, (protocol_name(p) + "/" + std::to_string(pes) + "pe").c_str());
    }
  }
}

TEST(DirectoryDiff, NoWriteAllocateMatches) {
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0xBEEF + static_cast<u64>(p), 4, 15000);
    CacheConfig cfg;
    cfg.protocol = p;
    cfg.size_words = 256;
    cfg.line_words = 4;
    cfg.write_allocate = false;
    expect_equivalent(cfg, 4, trace, protocol_name(p).c_str());
  }
}

TEST(DirectoryDiff, SetAssociativeMatches) {
  for (Protocol p : kAllProtocols) {
    for (u32 ways : {1u, 2u, 4u}) {
      std::vector<u64> trace =
          random_trace(0xABCD + static_cast<u64>(p) * 7 + ways, 4, 15000);
      CacheConfig cfg;
      cfg.protocol = p;
      cfg.size_words = 256;
      cfg.line_words = 4;
      cfg.write_allocate = true;
      cfg.ways = ways;
      expect_equivalent(cfg, 4, trace,
                        (protocol_name(p) + "/ways" + std::to_string(ways)).c_str());
    }
  }
}

TEST(DirectoryDiff, TinyCacheHeavyEvictionMatches) {
  // 4 lines per PE: nearly every reference evicts, stressing the
  // directory's eviction bookkeeping and backward-shift deletion.
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0x5EED + static_cast<u64>(p), 8, 20000);
    CacheConfig cfg;
    cfg.protocol = p;
    cfg.size_words = 16;
    cfg.line_words = 4;
    cfg.write_allocate = true;
    expect_equivalent(cfg, 8, trace, protocol_name(p).c_str());
  }
}

TEST(DirectoryDiff, WideLinesAndManyPes) {
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0xF00D + static_cast<u64>(p), 16, 20000);
    CacheConfig cfg;
    cfg.protocol = p;
    cfg.size_words = 1024;
    cfg.line_words = 16;
    cfg.write_allocate = true;
    expect_equivalent(cfg, 16, trace, protocol_name(p).c_str());
  }
}

TEST(DirectoryDiff, SingleAccessPathMatchesReplay) {
  // access() (per-ref protocol dispatch) and replay() (batched fast
  // path) must produce the same stats.
  std::vector<u64> trace = random_trace(0x1234, 4, 10000);
  CacheConfig cfg;
  cfg.protocol = Protocol::WriteInBroadcast;
  cfg.size_words = 512;
  cfg.line_words = 4;
  MultiCacheSim a(cfg, 4), b(cfg, 4);
  a.replay(trace);
  for (u64 p : trace) b.access(MemRef::unpack(p));
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_TRUE(b.directory_consistent());
}

// --- flat-array LRU vs a simple list model --------------------------------

/// Minimal LRU model: front = MRU, per-set std::list, linear search.
struct ModelCache {
  explicit ModelCache(const CacheConfig& cfg) : cfg_(cfg) {
    sets_.resize(cfg.fully_associative() ? 1 : cfg.num_sets());
  }
  std::size_t set_of(u64 tag) const {
    return cfg_.fully_associative() ? 0 : tag % sets_.size();
  }
  Line* find(u64 tag, bool touch) {
    auto& s = sets_[set_of(tag)];
    for (auto it = s.begin(); it != s.end(); ++it) {
      if (it->tag == tag) {
        if (touch) s.splice(s.begin(), s, it);
        return &*it;
      }
    }
    return nullptr;
  }
  Cache::Evicted insert(u64 tag, LineState st) {
    auto& s = sets_[set_of(tag)];
    std::size_t cap = cfg_.fully_associative() ? cfg_.num_lines() : cfg_.ways;
    Cache::Evicted ev;
    if (s.size() >= cap) {
      ev.valid = true;
      ev.line = s.back();
      s.pop_back();
    }
    s.push_front(Line{tag, st});
    return ev;
  }
  void invalidate(u64 tag) {
    auto& s = sets_[set_of(tag)];
    for (auto it = s.begin(); it != s.end(); ++it)
      if (it->tag == tag) {
        s.erase(it);
        return;
      }
  }
  std::size_t size() const {
    std::size_t n = 0;
    for (auto& s : sets_) n += s.size();
    return n;
  }
  CacheConfig cfg_;
  std::vector<std::list<Line>> sets_;
};

TEST(FlatLru, RandomOpsMatchListModel) {
  for (u32 ways : {0u, 1u, 2u, 4u}) {
    CacheConfig cfg;
    cfg.size_words = 128;
    cfg.line_words = 4;
    cfg.ways = ways;
    Cache c(cfg);
    ModelCache m(cfg);
    Lcg rng(ways * 77 + 5);
    for (int i = 0; i < 50000; ++i) {
      u64 tag = rng.next(96);
      switch (rng.next(4)) {
        case 0: {  // insert if absent
          if (!c.probe(tag)) {
            auto ev = c.insert(tag, LineState::Shared);
            auto em = m.insert(tag, LineState::Shared);
            ASSERT_EQ(ev.valid, em.valid) << "ways=" << ways << " op=" << i;
            if (ev.valid) ASSERT_EQ(ev.line.tag, em.line.tag) << "ways=" << ways;
          }
          break;
        }
        case 1: {  // lookup (touches LRU)
          Line* a = c.lookup(tag);
          Line* b = m.find(tag, /*touch=*/true);
          ASSERT_EQ(a != nullptr, b != nullptr) << "ways=" << ways << " op=" << i;
          break;
        }
        case 2: {  // probe (LRU-neutral)
          const Cache& cc = c;
          const Line* a = cc.probe(tag);
          Line* b = m.find(tag, /*touch=*/false);
          ASSERT_EQ(a != nullptr, b != nullptr) << "ways=" << ways << " op=" << i;
          break;
        }
        case 3:
          c.invalidate(tag);
          m.invalidate(tag);
          break;
      }
      ASSERT_EQ(c.size(), m.size()) << "ways=" << ways << " op=" << i;
    }
  }
}

TEST(FlatLru, SetAssociativeEvictionOrder) {
  // 2-way, 8 sets (64 words / 4-word lines / 2 ways): tags t, t+8,
  // t+16 collide in set t%8.
  CacheConfig cfg;
  cfg.size_words = 64;
  cfg.line_words = 4;
  cfg.ways = 2;
  Cache c(cfg);
  c.insert(3, LineState::Shared);
  c.insert(11, LineState::Shared);   // set 3 now {11, 3}, MRU first
  EXPECT_NE(c.lookup(3), nullptr);   // touch 3 -> {3, 11}
  auto ev = c.insert(19, LineState::Shared);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line.tag, 11u);       // LRU of the set, not insertion order
  EXPECT_NE(c.probe(3), nullptr);
  EXPECT_NE(c.probe(19), nullptr);
  EXPECT_EQ(c.probe(11), nullptr);
  // Other sets are untouched by the conflict.
  c.insert(4, LineState::Shared);
  EXPECT_EQ(c.size(), 3u);
}

TEST(FlatLru, DirectMappedEvictsOnEveryConflict) {
  CacheConfig cfg;
  cfg.size_words = 64;
  cfg.line_words = 4;
  cfg.ways = 1;  // 16 sets
  Cache c(cfg);
  c.insert(5, LineState::Dirty);
  auto ev = c.insert(21, LineState::Shared);  // same set (5 % 16 == 21 % 16)
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line.tag, 5u);
  EXPECT_EQ(ev.line.state, LineState::Dirty);
  EXPECT_EQ(c.size(), 1u);
}

TEST(FlatLru, FullyAssociativeEvictionOrderAcrossReinsert) {
  CacheConfig cfg;
  cfg.size_words = 16;  // 4 lines, fully associative
  cfg.line_words = 4;
  Cache c(cfg);
  for (u64 t = 0; t < 4; ++t) c.insert(t, LineState::Shared);
  c.invalidate(1);                       // free a slot mid-pool
  c.insert(9, LineState::Shared);        // reuses the freed slot
  c.lookup(0);                           // order (MRU..LRU): 0 9 3 2
  EXPECT_EQ(c.insert(10, LineState::Shared).line.tag, 2u);
  EXPECT_EQ(c.insert(11, LineState::Shared).line.tag, 3u);
  EXPECT_EQ(c.insert(12, LineState::Shared).line.tag, 9u);
  EXPECT_EQ(c.insert(13, LineState::Shared).line.tag, 0u);
}

TEST(FlatLru, LinesSnapshotIsMruFirstPerSet) {
  CacheConfig cfg;
  cfg.size_words = 32;  // 8 lines fully associative
  cfg.line_words = 4;
  Cache c(cfg);
  c.insert(1, LineState::Shared);
  c.insert(2, LineState::Dirty);
  c.insert(3, LineState::Exclusive);
  c.lookup(1);
  std::vector<Line> ls = c.lines();
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[0].tag, 1u);
  EXPECT_EQ(ls[1].tag, 3u);
  EXPECT_EQ(ls[2].tag, 2u);
  EXPECT_EQ(ls[2].state, LineState::Dirty);
}

}  // namespace
}  // namespace rapwam
