// Unit tests for the checkpoint subsystem (src/checkpoint): the byte
// codec underneath every frame, serialize/parse round trips, the
// config-hash binding that stops a frame resuming a different
// experiment, the rotating durable writer (path / path.prev / torn
// tmp), and the FaultInjector-driven crash/corruption matrix —
// a damaged checkpoint must always be rejected by validation and
// recovery must come from the previous snapshot or a clean restart,
// never from silently corrupt state. The cross-configuration
// resume-equivalence matrix lives in test_checkpoint_diff.cpp; the
// byte-level hostile-input sweep in test_checkpoint_fuzz.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "server/faults.h"
#include "support/bytes.h"
#include "test_rand.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch path (ctest runs suites in parallel); removes the
/// whole checkpoint family (path, .prev, .tmp) on destruction.
struct TempCkpt {
  explicit TempCkpt(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("rapwam_ckpt_" + tag + "_" + std::to_string(::getpid())))
                 .string()) {
    cleanup();
  }
  ~TempCkpt() { cleanup(); }
  void cleanup() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(path + ".prev", ec);
    fs::remove(path + ".tmp", ec);
  }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::shared_ptr<const ChunkedTrace> chunked(u64 seed, unsigned pes,
                                            std::size_t n) {
  std::vector<u64> t = random_trace(seed, pes, n);
  ChunkingSink sink(/*busy_only=*/true);
  sink.on_chunk(t.data(), t.size());
  return sink.take();
}

CacheConfig small_cfg() {
  CacheConfig cfg;
  cfg.protocol = Protocol::WriteInBroadcast;
  cfg.size_words = 256;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return cfg;
}

/// Replays `upto` chunks into a fresh simulator and serializes it.
std::string frame_at(const ChunkedTrace& t, const CacheConfig& cfg,
                     unsigned pes, std::size_t upto, u64 hash) {
  HierCacheSim sim(cfg, pes);
  for (std::size_t i = 0; i < upto; ++i)
    sim.replay(t.chunk(i).data(), t.chunk(i).size());
  CheckpointMeta meta;
  meta.config_hash = hash;
  meta.chunk_index = upto;
  meta.refs_done = sim.stats().refs;
  meta.timed = false;
  return checkpoint_serialize(meta, sim);
}

// --- byte codec ------------------------------------------------------------

TEST(CheckpointUnit, ByteCodecRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  const char blob[] = "rapwam";
  w.put_bytes(blob, sizeof blob);

  std::string bytes = w.str();
  ByteReader r(bytes, "test");
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  char got[sizeof blob];
  r.get_bytes(got, sizeof got);
  EXPECT_EQ(std::string(got, sizeof got), std::string(blob, sizeof blob));
  EXPECT_NO_THROW(r.expect_end());
}

TEST(CheckpointUnit, ByteReaderBoundsChecked) {
  ByteWriter w;
  w.put_u32(7);
  std::string bytes = w.str();

  ByteReader past(bytes, "test");
  past.get_u32();
  EXPECT_THROW(past.get_u8(), Error);  // nothing left

  ByteReader wide(bytes, "test");
  EXPECT_THROW(wide.get_u64(), Error);  // 8 > 4 available

  ByteReader leftover(bytes, "test");
  leftover.get_u8();
  EXPECT_THROW(leftover.expect_end(), Error);  // trailing bytes
}

TEST(CheckpointUnit, Fnv1aSeesEverySingleByteFlip) {
  std::string buf(64, '\0');
  Lcg rng(0xF17);
  for (char& c : buf) c = static_cast<char>(rng.next(256));
  const u64 base = fnv1a(buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (u8 bit : {u8(0x01), u8(0x80)}) {
      std::string flipped = buf;
      flipped[i] = static_cast<char>(flipped[i] ^ bit);
      EXPECT_NE(fnv1a(flipped.data(), flipped.size()), base)
          << "byte " << i << " bit " << unsigned(bit);
    }
  }
}

// --- serialize / parse -----------------------------------------------------

TEST(CheckpointUnit, SerializeParseRoundTripRestoresMetaAndState) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E1, 4, 2 * kChunkRefs);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 4, resolve_wide(DirRep::Auto, 4),
                                      trace_fingerprint(*t));
  std::string frame = frame_at(*t, cfg, 4, 1, hash);

  RestoredReplay r = checkpoint_parse(frame, cfg, 4, DirRep::Auto,
                                      /*tp=*/nullptr, hash);
  EXPECT_EQ(r.meta.config_hash, hash);
  EXPECT_EQ(r.meta.chunk_index, 1u);
  EXPECT_FALSE(r.meta.timed);
  ASSERT_NE(r.sim, nullptr);
  EXPECT_EQ(r.timed, nullptr);
  EXPECT_EQ(r.meta.refs_done, r.sim->stats().refs);

  // The restored simulator equals a fresh replay of the same prefix.
  HierCacheSim want(cfg, 4);
  want.replay(t->chunk(0).data(), t->chunk(0).size());
  EXPECT_EQ(r.sim->stats(), want.stats());
}

TEST(CheckpointUnit, ConfigHashMismatchRejected) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E2, 2, 20000);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 2, false, trace_fingerprint(*t));
  std::string frame = frame_at(*t, cfg, 2, 1, hash);
  EXPECT_NO_THROW(checkpoint_parse(frame, cfg, 2, DirRep::Auto, nullptr, hash));
  EXPECT_THROW(checkpoint_parse(frame, cfg, 2, DirRep::Auto, nullptr, hash + 1),
               Error);
}

TEST(CheckpointUnit, ConfigHashSeparatesRuns) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E3, 4, 20000);
  const u64 fp = trace_fingerprint(*t);
  CacheConfig cfg = small_cfg();
  const u64 base = replay_config_hash(cfg, 4, false, fp);

  CacheConfig other = cfg;
  other.protocol = Protocol::Hybrid;
  EXPECT_NE(replay_config_hash(other, 4, false, fp), base);
  other = cfg;
  other.size_words = 512;
  EXPECT_NE(replay_config_hash(other, 4, false, fp), base);
  other = cfg;
  other.l2.size_words = 4096;
  EXPECT_NE(replay_config_hash(other, 4, false, fp), base);
  EXPECT_NE(replay_config_hash(cfg, 8, false, fp), base);       // PE count
  EXPECT_NE(replay_config_hash(cfg, 4, true, fp), base);        // wide rep
  EXPECT_NE(replay_config_hash(cfg, 4, false, fp + 1), base);   // trace

  // Timed and untimed runs of the same configuration never share keys.
  TimingParams tp;
  EXPECT_NE(timed_config_hash(cfg, 4, false, tp, fp), base);
  // ... and the timing parameters themselves are bound in.
  TimingParams tp2 = tp;
  tp2.bus_service_cycles = tp.bus_service_cycles + 1;
  EXPECT_NE(timed_config_hash(cfg, 4, false, tp2, fp),
            timed_config_hash(cfg, 4, false, tp, fp));
}

TEST(CheckpointUnit, ModeMismatchRejectedBothWays) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E4, 2, 20000);
  CacheConfig cfg = small_cfg();
  const u64 fp = trace_fingerprint(*t);
  TimingParams tp;
  const u64 uhash = replay_config_hash(cfg, 2, false, fp);
  const u64 thash = timed_config_hash(cfg, 2, false, tp, fp);

  // Untimed frame parsed as timed: rejected even with the right hash.
  std::string uframe = frame_at(*t, cfg, 2, 1, thash);
  EXPECT_THROW(checkpoint_parse(uframe, cfg, 2, DirRep::Auto, &tp, thash),
               Error);

  // Timed frame parsed as untimed.
  TimedReplay tr(cfg, 2, tp);
  tr.replay(t->chunk(0).data(), t->chunk(0).size());
  CheckpointMeta meta;
  meta.config_hash = uhash;
  meta.chunk_index = 1;
  meta.refs_done = tr.traffic().refs;
  meta.timed = true;
  std::string tframe = checkpoint_serialize(meta, tr);
  EXPECT_THROW(checkpoint_parse(tframe, cfg, 2, DirRep::Auto, nullptr, uhash),
               Error);
}

// --- rotating writer / resume ----------------------------------------------

TEST(CheckpointUnit, WriterPublishesDurablyAndRotates) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E5, 4, 2 * kChunkRefs);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));
  std::string f1 = frame_at(*t, cfg, 4, 1, hash);
  std::string f2 = frame_at(*t, cfg, 4, 2, hash);

  TempCkpt tc("writer");
  CheckpointWriter w(tc.path);
  EXPECT_EQ(w.publish(f1), 0u);
  EXPECT_TRUE(fs::exists(tc.path));
  EXPECT_FALSE(fs::exists(tc.path + ".prev"));
  EXPECT_FALSE(fs::exists(tc.path + ".tmp"));  // temp renamed away
  EXPECT_EQ(read_file(tc.path), f1);

  EXPECT_EQ(w.publish(f2), 1u);
  EXPECT_EQ(w.written(), 2u);
  EXPECT_EQ(read_file(tc.path), f2);
  EXPECT_EQ(read_file(tc.path + ".prev"), f1);  // rotation kept the old one

  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, tc.path);
  EXPECT_EQ(got->rejected, 0u);
  EXPECT_EQ(got->restored.meta.chunk_index, 2u);
}

TEST(CheckpointUnit, ResumeNoFilesMeansCleanFirstRun) {
  TempCkpt tc("none");
  CacheConfig cfg = small_cfg();
  EXPECT_FALSE(
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, 1).has_value());
}

TEST(CheckpointUnit, DamagedLatestFallsBackToPrev) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E6, 4, 2 * kChunkRefs);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));
  TempCkpt tc("fallback");
  CheckpointWriter w(tc.path);
  w.publish(frame_at(*t, cfg, 4, 1, hash));
  w.publish(frame_at(*t, cfg, 4, 2, hash));

  // Flip one payload byte of the latest snapshot.
  std::string bytes = read_file(tc.path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_file(tc.path, bytes);

  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, tc.path + ".prev");
  EXPECT_EQ(got->rejected, 1u);
  ASSERT_EQ(got->errors.size(), 1u);
  EXPECT_EQ(got->restored.meta.chunk_index, 1u);
}

TEST(CheckpointUnit, AllCandidatesDamagedIsAStructuredError) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E7, 2, 20000);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 2, false, trace_fingerprint(*t));
  TempCkpt tc("allbad");
  write_file(tc.path, "definitely not a checkpoint");
  write_file(tc.path + ".prev", std::string(100, '\0'));
  EXPECT_THROW(checkpoint_resume(tc.path, cfg, 2, DirRep::Auto, nullptr, hash),
               Error);
}

// --- fault matrix ----------------------------------------------------------

TEST(CheckpointFault, InjectedCrashLeavesTornTmpAndGoodSnapshot) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E8, 4, 2 * kChunkRefs);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));
  std::string f1 = frame_at(*t, cfg, 4, 1, hash);
  std::string f2 = frame_at(*t, cfg, 4, 2, hash);

  FaultPlan plan;
  plan.fail_checkpoint_n = 2;  // crash the second publication
  FaultInjector faults(plan);

  TempCkpt tc("crash");
  CheckpointWriter w(tc.path);
  EXPECT_EQ(w.publish(f1, &faults), 0u);
  EXPECT_THROW(w.publish(f2, &faults), Error);

  // Exactly a mid-write power cut: a torn temporary, and the published
  // snapshot untouched (no rotation happened).
  EXPECT_TRUE(fs::exists(tc.path + ".tmp"));
  EXPECT_LT(fs::file_size(tc.path + ".tmp"), f2.size());
  EXPECT_EQ(read_file(tc.path), f1);
  EXPECT_FALSE(fs::exists(tc.path + ".prev"));

  // Recovery resumes from the surviving snapshot.
  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, tc.path);
  EXPECT_EQ(got->restored.meta.chunk_index, 1u);
}

TEST(CheckpointFault, TruncatedPublicationRejectedByValidation) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4E9, 4, 2 * kChunkRefs);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));

  FaultPlan plan;
  plan.truncate_checkpoint_n = 2;  // damage the second published file
  FaultInjector faults(plan);

  TempCkpt tc("trunc");
  CheckpointWriter w(tc.path);
  w.publish(frame_at(*t, cfg, 4, 1, hash), &faults);
  w.publish(frame_at(*t, cfg, 4, 2, hash), &faults);

  std::string full = frame_at(*t, cfg, 4, 2, hash);
  EXPECT_LT(fs::file_size(tc.path), full.size());

  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, tc.path + ".prev");
  EXPECT_EQ(got->rejected, 1u);
  EXPECT_EQ(got->restored.meta.chunk_index, 1u);
}

TEST(CheckpointFault, FlippedByteRejectedByChecksum) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4EA, 4, 2 * kChunkRefs);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));

  FaultPlan plan;
  plan.flip_checkpoint_n = 2;
  FaultInjector faults(plan);

  TempCkpt tc("flip");
  CheckpointWriter w(tc.path);
  w.publish(frame_at(*t, cfg, 4, 1, hash), &faults);
  w.publish(frame_at(*t, cfg, 4, 2, hash), &faults);

  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->source, tc.path + ".prev");
  EXPECT_EQ(got->rejected, 1u);
  ASSERT_EQ(got->errors.size(), 1u);
  EXPECT_NE(got->errors[0].find("checksum"), std::string::npos)
      << got->errors[0];
}

TEST(CheckpointFault, OnlySnapshotDamagedMeansCleanRestartError) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xC4EB, 2, 20000);
  CacheConfig cfg = small_cfg();
  const u64 hash = replay_config_hash(cfg, 2, false, trace_fingerprint(*t));

  FaultPlan plan;
  plan.flip_checkpoint_n = 1;  // the only snapshot there will ever be
  FaultInjector faults(plan);

  TempCkpt tc("onlybad");
  CheckpointWriter w(tc.path);
  w.publish(frame_at(*t, cfg, 2, 1, hash), &faults);

  // No .prev exists; the caller gets a structured Error and decides to
  // restart clean — it can never resume from the damaged frame.
  EXPECT_THROW(checkpoint_resume(tc.path, cfg, 2, DirRep::Auto, nullptr, hash),
               Error);
}

}  // namespace
}  // namespace rapwam
