// The checkpoint/resume headline invariant (docs/DESIGN.md §12):
// interrupting a replay at ANY chunk boundary, serializing the
// simulator, restoring the frame into a freshly constructed simulator
// and replaying the remaining chunks yields bit-identical
// TrafficStats / TimingStats (and final cache contents) to the
// uninterrupted run — across every protocol × directory
// representation × hierarchy × timing combination.
//
// Three layers of evidence, in the differential-suite mould of
// test_cache_diff / test_hierarchy_diff:
//   * the in-memory matrix: every boundary of a multi-chunk random
//     trace, every combination, serialize -> parse -> finish;
//   * the file round trip: the same equivalence through
//     CheckpointWriter's durable publication and checkpoint_resume;
//   * the CheckpointKill suite: a real forked process SIGKILLed
//     mid-replay, recovered from whatever its last published snapshot
//     was — the harness analog of a power cut. (Kept out of the TSan
//     CI shard by suite name: fork() under TSan is unsupported.)
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "test_rand.h"
#include "timing/timed_replay.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

namespace fs = std::filesystem;

const Protocol kAllProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

std::shared_ptr<const ChunkedTrace> chunked(u64 seed, unsigned pes,
                                            std::size_t n) {
  std::vector<u64> t = random_trace(seed, pes, n);
  ChunkingSink sink(/*busy_only=*/true);
  sink.on_chunk(t.data(), t.size());
  return sink.take();
}

CacheConfig make_cfg(Protocol p, bool hier) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = 256;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  if (hier) {
    cfg.l2.size_words = 2048;
    cfg.l2.ways = 8;
    cfg.l2.inclusion = L2Config::Inclusion::Inclusive;
    cfg.l2.hit_extra_cycles = 2;
  }
  return cfg;
}

/// Non-trivial timing: contended bus, interleaving, posted writes and
/// a distinct memory latency, so every piece of timing state matters.
TimingParams make_tp() {
  TimingParams tp;
  tp.cycles_per_ref = 1;
  tp.bus_service_cycles = 2;
  tp.interleave = 2;
  tp.write_buffer_depth = 2;
  tp.mem_extra_cycles = 3;
  return tp;
}

void expect_same_lines(const MultiCacheSim& a, const MultiCacheSim& b,
                       const std::string& what) {
  ASSERT_EQ(a.num_caches(), b.num_caches()) << what;
  for (unsigned pe = 0; pe < a.num_caches(); ++pe) {
    std::vector<Line> la = a.cache(pe).lines(), lb = b.cache(pe).lines();
    ASSERT_EQ(la.size(), lb.size()) << what << " pe=" << pe;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].tag, lb[i].tag) << what << " pe=" << pe << " i=" << i;
      EXPECT_EQ(la[i].state, lb[i].state) << what << " pe=" << pe << " i=" << i;
    }
  }
}

void expect_same_timing(const TimingStats& a, const TimingStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.bus_busy_cycles, b.bus_busy_cycles) << what;
  EXPECT_EQ(a.bus_transactions, b.bus_transactions) << what;
  EXPECT_EQ(a.cache_fills, b.cache_fills) << what;
  EXPECT_EQ(a.l2_fills, b.l2_fills) << what;
  EXPECT_EQ(a.mem_fills, b.mem_fills) << what;
  ASSERT_EQ(a.pe.size(), b.pe.size()) << what;
  for (std::size_t i = 0; i < a.pe.size(); ++i) {
    EXPECT_EQ(a.pe[i].refs, b.pe[i].refs) << what << " pe=" << i;
    EXPECT_EQ(a.pe[i].busy_cycles, b.pe[i].busy_cycles) << what << " pe=" << i;
    EXPECT_EQ(a.pe[i].stall_cycles, b.pe[i].stall_cycles) << what << " pe=" << i;
    EXPECT_EQ(a.pe[i].clock, b.pe[i].clock) << what << " pe=" << i;
  }
}

void replay_chunks(HierCacheSim& sim, const ChunkedTrace& t, std::size_t from,
                   std::size_t to) {
  for (std::size_t i = from; i < to; ++i)
    sim.replay(t.chunk(i).data(), t.chunk(i).size());
}

void replay_chunks(TimedReplay& sim, const ChunkedTrace& t, std::size_t from,
                   std::size_t to) {
  for (std::size_t i = from; i < to; ++i)
    sim.replay(t.chunk(i).data(), t.chunk(i).size());
}

/// The untimed half of the matrix: interrupt at `boundary`, serialize,
/// parse into a fresh simulator, finish, compare everything.
void check_untimed(const ChunkedTrace& t, const CacheConfig& cfg, unsigned pes,
                   DirRep rep, std::size_t boundary, const std::string& what) {
  const u64 hash = replay_config_hash(cfg, pes, resolve_wide(rep, pes),
                                      trace_fingerprint(t));
  HierCacheSim full(cfg, pes, rep);
  replay_chunks(full, t, 0, t.num_chunks());

  HierCacheSim head(cfg, pes, rep);
  replay_chunks(head, t, 0, boundary);
  CheckpointMeta meta;
  meta.config_hash = hash;
  meta.chunk_index = boundary;
  meta.refs_done = head.stats().refs;
  meta.timed = false;
  std::string frame = checkpoint_serialize(meta, head);

  RestoredReplay r;
  try {
    r = checkpoint_parse(frame, cfg, pes, rep, nullptr, hash);
  } catch (const Error& e) {
    FAIL() << what << ": " << e.what();
  }
  ASSERT_NE(r.sim, nullptr) << what;
  EXPECT_EQ(r.meta.chunk_index, boundary) << what;
  // The restored simulator is immediately self-consistent, and agrees
  // with the live one on the protocol invariants (hybrid legitimately
  // violates them when an address's classification flips — a faithful
  // restore reproduces that too).
  EXPECT_EQ(r.sim->invariants_ok(), head.invariants_ok()) << what;
  EXPECT_TRUE(r.sim->directory_consistent()) << what;
  EXPECT_TRUE(r.sim->inclusion_ok()) << what;
  // ...and finishing the tail reproduces the uninterrupted run exactly.
  replay_chunks(*r.sim, t, boundary, t.num_chunks());
  EXPECT_EQ(r.sim->stats(), full.stats()) << what;
  expect_same_lines(*r.sim, full, what);
}

/// The timed half: the same interruption through TimedReplay.
void check_timed(const ChunkedTrace& t, const CacheConfig& cfg, unsigned pes,
                 DirRep rep, const TimingParams& tp, std::size_t boundary,
                 const std::string& what) {
  const u64 hash = timed_config_hash(cfg, pes, resolve_wide(rep, pes), tp,
                                     trace_fingerprint(t));
  TimedReplay full(cfg, pes, tp, rep);
  replay_chunks(full, t, 0, t.num_chunks());

  TimedReplay head(cfg, pes, tp, rep);
  replay_chunks(head, t, 0, boundary);
  CheckpointMeta meta;
  meta.config_hash = hash;
  meta.chunk_index = boundary;
  meta.refs_done = head.traffic().refs;
  meta.timed = true;
  std::string frame = checkpoint_serialize(meta, head);

  RestoredReplay r;
  try {
    r = checkpoint_parse(frame, cfg, pes, rep, &tp, hash);
  } catch (const Error& e) {
    FAIL() << what << ": " << e.what();
  }
  ASSERT_NE(r.timed, nullptr) << what;
  replay_chunks(*r.timed, t, boundary, t.num_chunks());
  EXPECT_EQ(r.timed->traffic(), full.traffic()) << what;
  expect_same_timing(r.timed->timing(), full.timing(), what);
}

// --- the full combination matrix -------------------------------------------

TEST(CheckpointDiff, UntimedResumeEquivalenceAllCombinations) {
  // 3 chunks -> interior boundaries 1 and 2; 5 protocols x {flat,
  // wide} x {no-L2, inclusive L2}.
  std::shared_ptr<const ChunkedTrace> t =
      chunked(0xD1FF, 4, 2 * kChunkRefs + 7001);
  ASSERT_EQ(t->num_chunks(), 3u);
  for (Protocol p : kAllProtocols) {
    for (DirRep rep : {DirRep::Auto, DirRep::Wide}) {
      for (bool hier : {false, true}) {
        CacheConfig cfg = make_cfg(p, hier);
        for (std::size_t boundary : {std::size_t(1), std::size_t(2)}) {
          check_untimed(*t, cfg, 4, rep, boundary,
                        protocol_name(p) + (rep == DirRep::Wide ? " wide" : "") +
                            (hier ? " hier" : "") + " @" +
                            std::to_string(boundary));
        }
      }
    }
  }
}

TEST(CheckpointDiff, TimedResumeEquivalenceAllCombinations) {
  // The timed engine replays slower; 2 chunks (one interior boundary)
  // keep the 5 x 2 x 2 timed matrix fast while still crossing a real
  // chunk boundary with live write buffers and a populated timeline.
  std::shared_ptr<const ChunkedTrace> t = chunked(0xD200, 4, kChunkRefs + 5003);
  ASSERT_EQ(t->num_chunks(), 2u);
  TimingParams tp = make_tp();
  for (Protocol p : kAllProtocols) {
    for (DirRep rep : {DirRep::Auto, DirRep::Wide}) {
      for (bool hier : {false, true}) {
        CacheConfig cfg = make_cfg(p, hier);
        check_timed(*t, cfg, 4, rep, tp, 1,
                    protocol_name(p) + (rep == DirRep::Wide ? " wide" : "") +
                        (hier ? " hier" : "") + " timed");
      }
    }
  }
}

TEST(CheckpointDiff, RandomizedInterruptPointsLongTrace) {
  // A longer trace, interrupt boundaries drawn at random (per
  // protocol, deterministically seeded) — the statement "ANY chunk
  // boundary" rather than the two interior points above.
  std::shared_ptr<const ChunkedTrace> t =
      chunked(0xD201, 8, 4 * kChunkRefs + 311);
  ASSERT_EQ(t->num_chunks(), 5u);
  Lcg rng(0x1B07);
  for (Protocol p : kAllProtocols) {
    CacheConfig cfg = make_cfg(p, /*hier=*/p == Protocol::Hybrid);
    for (int k = 0; k < 2; ++k) {
      std::size_t boundary = 1 + rng.next(t->num_chunks() - 1);
      check_untimed(*t, cfg, 8, DirRep::Auto, boundary,
                    protocol_name(p) + " random@" + std::to_string(boundary));
    }
  }
}

TEST(CheckpointDiff, ZeroCostTimingResumesToo) {
  // The degenerate timing parameters (idealised bus) exercise the
  // empty-timeline / no-write-buffer restore paths.
  std::shared_ptr<const ChunkedTrace> t = chunked(0xD202, 4, kChunkRefs + 777);
  check_timed(*t, make_cfg(Protocol::WriteInBroadcast, false), 4, DirRep::Auto,
              TimingParams::zero_cost(), 1, "zero-cost timed");
}

// --- the same equivalence through the durable file path --------------------

struct TempCkpt {
  explicit TempCkpt(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("rapwam_ckptdiff_" + tag + "_" + std::to_string(::getpid())))
                 .string()) {
    cleanup();
  }
  ~TempCkpt() { cleanup(); }
  void cleanup() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(path + ".prev", ec);
    fs::remove(path + ".tmp", ec);
  }
  std::string path;
};

TEST(CheckpointDiff, FileRoundTripUntimed) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xD203, 4, 2 * kChunkRefs + 99);
  CacheConfig cfg = make_cfg(Protocol::Hybrid, /*hier=*/true);
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));

  HierCacheSim full(cfg, 4);
  replay_chunks(full, *t, 0, t->num_chunks());

  TempCkpt tc("untimed");
  CheckpointWriter w(tc.path);
  HierCacheSim head(cfg, 4);
  replay_chunks(head, *t, 0, 2);
  CheckpointMeta meta;
  meta.config_hash = hash;
  meta.chunk_index = 2;
  meta.refs_done = head.stats().refs;
  std::string frame = checkpoint_serialize(meta, head);
  w.publish(frame);

  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  ASSERT_NE(got->restored.sim, nullptr);
  replay_chunks(*got->restored.sim, *t, got->restored.meta.chunk_index,
                t->num_chunks());
  EXPECT_EQ(got->restored.sim->stats(), full.stats());
  expect_same_lines(*got->restored.sim, full, "file round trip");
}

TEST(CheckpointDiff, FileRoundTripTimed) {
  std::shared_ptr<const ChunkedTrace> t = chunked(0xD204, 4, kChunkRefs + 4242);
  CacheConfig cfg = make_cfg(Protocol::WriteThrough, /*hier=*/false);
  TimingParams tp = make_tp();
  const u64 hash = timed_config_hash(cfg, 4, false, tp, trace_fingerprint(*t));

  TimedReplay full(cfg, 4, tp);
  replay_chunks(full, *t, 0, t->num_chunks());

  TempCkpt tc("timed");
  CheckpointWriter w(tc.path);
  TimedReplay head(cfg, 4, tp);
  replay_chunks(head, *t, 0, 1);
  CheckpointMeta meta;
  meta.config_hash = hash;
  meta.chunk_index = 1;
  meta.refs_done = head.traffic().refs;
  meta.timed = true;
  w.publish(checkpoint_serialize(meta, head));

  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, &tp, hash);
  ASSERT_TRUE(got.has_value());
  ASSERT_NE(got->restored.timed, nullptr);
  replay_chunks(*got->restored.timed, *t, got->restored.meta.chunk_index,
                t->num_chunks());
  EXPECT_EQ(got->restored.timed->traffic(), full.traffic());
  expect_same_timing(got->restored.timed->timing(), full.timing(),
                     "file round trip timed");
}

// --- the real thing: SIGKILL a replaying process and recover ----------------
//
// Named CheckpointKill (not CheckpointDiff) so the TSan CI shard's
// suite filter never picks it up: fork() in an instrumented binary is
// unsupported, and the kill matrix adds nothing to data-race coverage.

/// Replays `t` in a forked child that publishes a checkpoint at every
/// chunk boundary; the parent SIGKILLs it after `kill_after_ms` and
/// recovers. Returns the child's pid for waitpid bookkeeping.
pid_t spawn_replaying_child(const ChunkedTrace& t, const CacheConfig& cfg,
                            unsigned pes, u64 hash, const std::string& path) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: replay with a per-chunk delay (so the parent's kill lands
  // mid-run), publishing at every boundary, then spin until killed —
  // it must never exit on its own, only by SIGKILL.
  try {
    CheckpointWriter w(path);
    HierCacheSim sim(cfg, pes);
    for (std::size_t i = 0; i < t.num_chunks(); ++i) {
      sim.replay(t.chunk(i).data(), t.chunk(i).size());
      CheckpointMeta meta;
      meta.config_hash = hash;
      meta.chunk_index = i + 1;
      meta.refs_done = sim.stats().refs;
      w.publish(checkpoint_serialize(meta, sim));
      ::usleep(10000);  // 10 ms per chunk: the parent kills mid-trace
    }
    for (;;) ::pause();
  } catch (...) {
    ::_exit(3);  // any error: the parent's waitpid assertions catch it
  }
  ::_exit(3);  // unreachable
}

TEST(CheckpointKill, SigkilledReplayResumesBitIdentical) {
  std::shared_ptr<const ChunkedTrace> t =
      chunked(0xD205, 4, 3 * kChunkRefs + 500);
  CacheConfig cfg = make_cfg(Protocol::WriteInBroadcast, /*hier=*/false);
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));

  HierCacheSim full(cfg, 4);
  replay_chunks(full, *t, 0, t->num_chunks());

  TempCkpt tc("kill");
  pid_t pid = spawn_replaying_child(*t, cfg, 4, hash, tc.path);
  ASSERT_GT(pid, 0);

  // Wait until at least one snapshot is published (atomic rename: the
  // file existing means it is complete), then SIGKILL — no shutdown
  // path of any kind runs in the child.
  for (int i = 0; i < 1000 && !fs::exists(tc.path); ++i) ::usleep(10000);
  ASSERT_TRUE(fs::exists(tc.path)) << "child never published a checkpoint";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited on its own (status " << status << ")";

  // Recover from whatever the dead process left behind and finish.
  std::optional<ResumeOutcome> got =
      checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
  ASSERT_TRUE(got.has_value());
  ASSERT_NE(got->restored.sim, nullptr);
  ASSERT_GE(got->restored.meta.chunk_index, 1u);
  replay_chunks(*got->restored.sim, *t, got->restored.meta.chunk_index,
                t->num_chunks());
  EXPECT_EQ(got->restored.sim->stats(), full.stats());
  expect_same_lines(*got->restored.sim, full, "sigkill resume");
}

TEST(CheckpointKill, KillAtArbitraryTimesAlwaysRecovers) {
  // The kill lands wherever it lands — possibly mid-publication, torn
  // temporary and all. Whatever survives on disk, recovery (resume or
  // clean start) must reproduce the uninterrupted stats exactly.
  std::shared_ptr<const ChunkedTrace> t =
      chunked(0xD206, 4, 2 * kChunkRefs + 123);
  CacheConfig cfg = make_cfg(Protocol::Hybrid, /*hier=*/true);
  const u64 hash = replay_config_hash(cfg, 4, false, trace_fingerprint(*t));

  HierCacheSim full(cfg, 4);
  replay_chunks(full, *t, 0, t->num_chunks());

  Lcg rng(0x6B11);
  for (int round = 0; round < 3; ++round) {
    TempCkpt tc("killrnd" + std::to_string(round));
    pid_t pid = spawn_replaying_child(*t, cfg, 4, hash, tc.path);
    ASSERT_GT(pid, 0);
    ::usleep(static_cast<useconds_t>(rng.next(40) * 1000));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    std::unique_ptr<HierCacheSim> tail;
    std::size_t start = 0;
    if (fs::exists(tc.path) || fs::exists(tc.path + ".prev")) {
      std::optional<ResumeOutcome> got =
          checkpoint_resume(tc.path, cfg, 4, DirRep::Auto, nullptr, hash);
      ASSERT_TRUE(got.has_value()) << "round " << round;
      tail = std::move(got->restored.sim);
      start = got->restored.meta.chunk_index;
    }
    if (!tail) tail = std::make_unique<HierCacheSim>(cfg, 4);
    replay_chunks(*tail, *t, start, t->num_chunks());
    EXPECT_EQ(tail->stats(), full.stats()) << "round " << round;
  }
}

}  // namespace
}  // namespace rapwam
