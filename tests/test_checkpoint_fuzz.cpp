// Hostile-input fuzzing of the checkpoint frame parser
// (checkpoint_parse): every prefix truncation of a valid frame, every
// single-byte corruption, version/magic/length tampering, and plain
// byte soup must throw a structured rapwam::Error — never crash, never
// return a simulator, and never touch caller state (the parser
// restores into a simulator it constructs itself, so a damaged frame
// cannot poison anything; the stateless-API test below pins that a
// failed parse leaves subsequent parses working).
//
// The checksum is FNV-1a, whose absorption step is bijective per byte,
// so any single-byte payload flip changes the digest — the
// flip-every-byte sweep leans on that (and test_checkpoint.cpp's
// Fnv1aSeesEverySingleByteFlip demonstrates it directly).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "support/bytes.h"
#include "test_rand.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

/// A deliberately tiny configuration so the reference frame stays
/// small and the quadratic flip/truncate sweeps stay fast.
CacheConfig tiny_cfg() {
  CacheConfig cfg;
  cfg.protocol = Protocol::WriteInBroadcast;
  cfg.size_words = 64;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return cfg;
}

struct Fixture {
  std::shared_ptr<const ChunkedTrace> trace;
  CacheConfig cfg = tiny_cfg();
  unsigned pes = 2;
  u64 hash = 0;
  std::string frame;  ///< a valid untimed frame at chunk boundary 1

  Fixture() {
    std::vector<u64> t = random_trace(0xF022, pes, 6000);
    ChunkingSink sink(/*busy_only=*/true);
    sink.on_chunk(t.data(), t.size());
    trace = sink.take();
    // A half-replayed prefix is all the parser ever sees — the frame
    // carries refs_done, not the chunk layout — so a small trace keeps
    // the reference frame to ~1 KB and the O(bytes^2) sweeps fast.
    hash = replay_config_hash(cfg, pes, false, trace_fingerprint(*trace));
    HierCacheSim sim(cfg, pes);
    sim.replay(trace->chunk(0).data(), 3000);
    CheckpointMeta meta;
    meta.config_hash = hash;
    meta.chunk_index = 1;
    meta.refs_done = sim.stats().refs;
    frame = checkpoint_serialize(meta, sim);
  }

  void expect_rejected(const std::string& bytes, const std::string& what) {
    EXPECT_THROW(
        checkpoint_parse(bytes, cfg, pes, DirRep::Auto, nullptr, hash), Error)
        << what;
  }
};

TEST(CheckpointFuzz, ReferenceFrameIsValid) {
  Fixture fx;
  RestoredReplay r =
      checkpoint_parse(fx.frame, fx.cfg, fx.pes, DirRep::Auto, nullptr, fx.hash);
  ASSERT_NE(r.sim, nullptr);
  EXPECT_EQ(r.meta.chunk_index, 1u);
  EXPECT_EQ(r.meta.refs_done, r.sim->stats().refs);
}

TEST(CheckpointFuzz, EveryTruncationRejected) {
  Fixture fx;
  for (std::size_t len = 0; len < fx.frame.size(); ++len)
    fx.expect_rejected(fx.frame.substr(0, len),
                       "truncated to " + std::to_string(len));
}

TEST(CheckpointFuzz, EverySingleByteFlipRejected) {
  Fixture fx;
  for (std::size_t i = 0; i < fx.frame.size(); ++i) {
    for (u8 bit : {u8(0x01), u8(0x80)}) {
      std::string bad = fx.frame;
      bad[i] = static_cast<char>(bad[i] ^ bit);
      fx.expect_rejected(bad, "byte " + std::to_string(i) + " ^ " +
                                  std::to_string(unsigned(bit)));
    }
  }
}

TEST(CheckpointFuzz, TrailingGarbageRejected) {
  Fixture fx;
  fx.expect_rejected(fx.frame + '\0', "one trailing NUL");
  fx.expect_rejected(fx.frame + "garbage", "trailing text");
  fx.expect_rejected(fx.frame + fx.frame, "frame doubled");
}

TEST(CheckpointFuzz, VersionTamperingRejected) {
  Fixture fx;
  // The version field is bytes [4, 8) of the header and is outside the
  // payload checksum: a frame from any other version must be rejected
  // by the version check itself, with nothing else touched.
  for (u32 v : {u32(0), kCheckpointVersion + 1, u32(0xFFFFFFFF)}) {
    std::string bad = fx.frame;
    bad[4] = static_cast<char>(v & 0xFF);
    bad[5] = static_cast<char>((v >> 8) & 0xFF);
    bad[6] = static_cast<char>((v >> 16) & 0xFF);
    bad[7] = static_cast<char>((v >> 24) & 0xFF);
    fx.expect_rejected(bad, "version " + std::to_string(v));
  }
}

TEST(CheckpointFuzz, MagicTamperingRejected) {
  Fixture fx;
  std::string bad = fx.frame;
  bad[0] = 'X';
  fx.expect_rejected(bad, "bad magic");
  // A sweep-journal header is not a checkpoint either.
  std::string rwsj = fx.frame;
  rwsj[2] = 'S';
  rwsj[3] = 'J';
  fx.expect_rejected(rwsj, "journal magic");
}

TEST(CheckpointFuzz, ByteSoupRejected) {
  Fixture fx;
  Lcg rng(0x50FA);
  for (std::size_t len : {std::size_t(0), std::size_t(1), std::size_t(23),
                          std::size_t(24), std::size_t(100), std::size_t(4096)}) {
    std::string soup(len, '\0');
    for (char& c : soup) c = static_cast<char>(rng.next(256));
    fx.expect_rejected(soup, "soup of " + std::to_string(len));
  }
}

TEST(CheckpointFuzz, ForgedLengthsRejected) {
  Fixture fx;
  // payload_len is bytes [8, 16). Zero it, max it, off-by-one it: the
  // exact-length check must reject all of them before the payload is
  // believed.
  for (u64 forged :
       {u64(0), u64(1), fx.frame.size() - 24 - 1, fx.frame.size() - 24 + 1,
        u64(1) << 40, ~u64(0)}) {
    std::string bad = fx.frame;
    for (int b = 0; b < 8; ++b)
      bad[8 + b] = static_cast<char>((forged >> (8 * b)) & 0xFF);
    fx.expect_rejected(bad, "payload_len " + std::to_string(forged));
  }
}

TEST(CheckpointFuzz, WrongExpectedHashRejected) {
  Fixture fx;
  EXPECT_THROW(checkpoint_parse(fx.frame, fx.cfg, fx.pes, DirRep::Auto, nullptr,
                                fx.hash ^ 1),
               Error);
}

TEST(CheckpointFuzz, WrongConfigRejected) {
  Fixture fx;
  // Same frame, different caller configuration: the caller computes a
  // different expected hash, so the frame can never restore into a
  // mismatched simulator shape.
  CacheConfig other = fx.cfg;
  other.size_words = 128;
  u64 other_hash =
      replay_config_hash(other, fx.pes, false, trace_fingerprint(*fx.trace));
  EXPECT_NE(other_hash, fx.hash);
  EXPECT_THROW(checkpoint_parse(fx.frame, other, fx.pes, DirRep::Auto, nullptr,
                                other_hash),
               Error);
}

TEST(CheckpointFuzz, FailedParsesAreStateless) {
  Fixture fx;
  // A hostile parse has no side effects: the same Fixture parses the
  // good frame identically before and after a pile of rejections.
  RestoredReplay before =
      checkpoint_parse(fx.frame, fx.cfg, fx.pes, DirRep::Auto, nullptr, fx.hash);
  for (std::size_t len : {std::size_t(0), std::size_t(10), std::size_t(30)})
    fx.expect_rejected(fx.frame.substr(0, len), "interleaved truncation");
  std::string flipped = fx.frame;
  flipped[flipped.size() - 1] ^= 0x01;
  fx.expect_rejected(flipped, "interleaved flip");
  RestoredReplay after =
      checkpoint_parse(fx.frame, fx.cfg, fx.pes, DirRep::Auto, nullptr, fx.hash);
  EXPECT_EQ(before.sim->stats(), after.sim->stats());
}

}  // namespace
}  // namespace rapwam
