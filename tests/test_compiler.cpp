// Code-generator tests: instruction sequences for representative
// clauses, indexing structure, CGE compilation, link checking.
#include <gtest/gtest.h>

#include "compiler/compile.h"

namespace rapwam {
namespace {

std::unique_ptr<CodeStore> comp(Program& p, bool strip = false) {
  return compile_program(p, strip);
}

/// Ops of the instruction block starting at the entry of pred.
std::vector<Op> ops_at(const CodeStore& c, i32 entry, int n) {
  std::vector<Op> out;
  for (i32 i = entry; i < entry + n && i < c.size(); ++i) out.push_back(c.at(i).op);
  return out;
}

i32 entry_of(Program& p, const CodeStore& c, const std::string& name, u32 arity) {
  i32 pi = c.find_proc(p.pred_id(name, arity));
  EXPECT_GE(pi, 0);
  return c.proc(pi).entry;
}

TEST(Compiler, FactCompilesToGetsAndProceed) {
  Program p;
  p.consult("f(a, 5).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 2);
  auto ops = ops_at(*c, e, 3);
  EXPECT_EQ(ops[0], Op::GetConstant);
  EXPECT_EQ(ops[1], Op::GetInteger);
  EXPECT_EQ(ops[2], Op::Proceed);
}

TEST(Compiler, ZeroArityFact) {
  Program p;
  p.consult("a.");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "a", 0);
  EXPECT_EQ(c->at(e).op, Op::Proceed);
}

TEST(Compiler, ChainRuleUsesExecute) {
  Program p;
  p.consult("a(X) :- b(X). b(1).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "a", 1);
  // get_variable_x X,A1; put_value_x X,A1; execute b/1
  auto ops = ops_at(*c, e, 3);
  EXPECT_EQ(ops[0], Op::GetVariableX);
  EXPECT_EQ(ops[1], Op::PutValueX);
  EXPECT_EQ(ops[2], Op::Execute);
}

TEST(Compiler, TwoCallClauseAllocatesEnvironment) {
  Program p;
  p.consult("a(X) :- b(X), c(X). b(1). c(1).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "a", 1);
  EXPECT_EQ(c->at(e).op, Op::Allocate);
  // Last call via LCO: deallocate + execute at the end.
  bool saw_dealloc_exec = false;
  for (i32 i = e; i < c->size() - 1; ++i) {
    if (c->at(i).op == Op::Deallocate && c->at(i + 1).op == Op::Execute)
      saw_dealloc_exec = true;
  }
  EXPECT_TRUE(saw_dealloc_exec);
}

TEST(Compiler, HeadStructureUsesUnifyStream) {
  Program p;
  p.consult("f(g(X,Y),X).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 2);
  auto ops = ops_at(*c, e, 4);
  EXPECT_EQ(ops[0], Op::GetStructure);
  EXPECT_EQ(ops[1], Op::UnifyVariableX);
  EXPECT_EQ(ops[2], Op::UnifyVoid);  // Y occurs once: void
  EXPECT_EQ(ops[3], Op::GetValueX);
}

TEST(Compiler, NestedStructureViaQueue) {
  Program p;
  p.consult("f(g(h(a))).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 1);
  // get_structure g/1,A1; unify_variable X; get_structure h/1,X;
  // unify_constant a; proceed
  auto ops = ops_at(*c, e, 5);
  EXPECT_EQ(ops[0], Op::GetStructure);
  EXPECT_EQ(ops[1], Op::UnifyVariableX);
  EXPECT_EQ(ops[2], Op::GetStructure);
  EXPECT_EQ(ops[3], Op::UnifyConstant);
  EXPECT_EQ(ops[4], Op::Proceed);
}

TEST(Compiler, ListsUseGetListAndNil) {
  Program p;
  p.consult("f([X|T], []).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 2);
  auto ops = ops_at(*c, e, 4);
  EXPECT_EQ(ops[0], Op::GetList);
  EXPECT_EQ(ops[1], Op::UnifyVoid);  // X and T merge into one void pair
  EXPECT_EQ(ops[2], Op::GetNil);
}

TEST(Compiler, VoidVarsMerge) {
  Program p;
  p.consult("f(g(_, _, X), X).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 2);
  // get_structure, unify_void 2, unify_variable (X used again later)
  EXPECT_EQ(c->at(e + 1).op, Op::UnifyVoid);
  EXPECT_EQ(c->at(e + 1).a, 2);
  EXPECT_EQ(c->at(e + 2).op, Op::UnifyVariableX);
}

TEST(Compiler, VoidHeadArgEmitsNothing) {
  Program p;
  p.consult("f(_, a).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 2);
  EXPECT_EQ(c->at(e).op, Op::GetConstant);  // the _ produced no code
}

TEST(Compiler, MultiClausePredicateHasIndexing) {
  Program p;
  p.consult("t(a). t(b). t(c).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "t", 1);
  EXPECT_EQ(c->at(e).op, Op::SwitchOnTerm);
}

TEST(Compiler, AllVarHeadsGetPlainChain) {
  Program p;
  p.consult("t(X) :- a(X). t(X) :- b(X). a(1). b(1).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "t", 1);
  EXPECT_EQ(c->at(e).op, Op::Try);
  EXPECT_EQ(c->at(e + 1).op, Op::Trust);
  EXPECT_EQ(c->at(e).b, 1);  // arity saved for the choice point
}

TEST(Compiler, NeckCutCompiles) {
  Program p;
  p.consult("a(X) :- X < 1, !, b. a(_) :- c. b. c.");
  auto c = comp(p);
  bool has_neck = false;
  for (i32 i = 0; i < c->size(); ++i)
    if (c->at(i).op == Op::NeckCut) has_neck = true;
  EXPECT_TRUE(has_neck);
}

TEST(Compiler, DeepCutUsesGetLevel) {
  Program p;
  p.consult("a :- b, !, c. b. c.");
  auto c = comp(p);
  bool has_level = false, has_cut = false;
  for (i32 i = 0; i < c->size(); ++i) {
    if (c->at(i).op == Op::GetLevel) has_level = true;
    if (c->at(i).op == Op::Cut) has_cut = true;
  }
  EXPECT_TRUE(has_level);
  EXPECT_TRUE(has_cut);
}

TEST(Compiler, UnconditionalParcall) {
  Program p;
  p.consult("a(X,Y) :- p(X) & q(Y). p(1). q(1).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "a", 2);
  std::vector<Op> seen;
  for (i32 i = e; i < c->size(); ++i) {
    seen.push_back(c->at(i).op);
    if (c->at(i).op == Op::Proceed) break;
  }
  auto has = [&](Op op) {
    return std::find(seen.begin(), seen.end(), op) != seen.end();
  };
  EXPECT_TRUE(has(Op::PFrame));
  EXPECT_TRUE(has(Op::PGoal));
  EXPECT_TRUE(has(Op::PWait));
  EXPECT_TRUE(has(Op::Call));  // first goal runs inline on the parent
  EXPECT_FALSE(has(Op::CheckGround));
  // Only the second goal is pushed; it occupies slot 0.
  for (i32 i = e; i < c->size(); ++i) {
    if (c->at(i).op == Op::PGoal) {
      EXPECT_EQ(c->at(i).a, 0);
      break;
    }
  }
}

TEST(Compiler, ConditionalCGEHasChecksAndSeqPath) {
  Program p;
  p.consult("f(X,Y,Z) :- (indep(X,Z), ground(Y) | g(X,Y) & h(Y,Z)). g(1,1). h(1,1).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "f", 3);
  int checks = 0, calls = 0, jumps = 0;
  for (i32 i = e; i < c->size(); ++i) {
    Op op = c->at(i).op;
    if (op == Op::CheckGround || op == Op::CheckIndep) ++checks;
    if (op == Op::Call) ++calls;
    if (op == Op::Jump) ++jumps;
    if (op == Op::Proceed) break;
  }
  EXPECT_EQ(checks, 2);
  // One inline call on the parallel path + two on the fallback path.
  EXPECT_EQ(calls, 3);
  EXPECT_GE(jumps, 1);
}

TEST(Compiler, StripModeHasNoParallelInstructions) {
  Program p;
  p.consult("a(X,Y) :- p(X) & q(Y). p(1). q(1).");
  auto c = comp(p, /*strip=*/true);
  for (i32 i = 0; i < c->size(); ++i) {
    EXPECT_NE(c->at(i).op, Op::PFrame);
    EXPECT_NE(c->at(i).op, Op::PGoal);
    EXPECT_NE(c->at(i).op, Op::PWait);
  }
}

TEST(Compiler, UndefinedPredicateFailsLink) {
  Program p;
  p.consult("a :- undefined_thing.");
  EXPECT_THROW(comp(p), Error);
}

TEST(Compiler, ParallelGoalArityLimit) {
  Program p;
  p.consult(
      "a :- p(1,2,3,4,5,6,7,8,9,10,11,12,13) & q. "
      "p(_,_,_,_,_,_,_,_,_,_,_,_,_). q.");
  EXPECT_THROW(comp(p), Error);
}

TEST(Compiler, DisassemblerProducesText) {
  Program p;
  p.consult("f(a) :- g(a). g(_).");
  auto c = comp(p);
  std::string d = c->disassemble_all();
  EXPECT_NE(d.find("get_constant"), std::string::npos);
  EXPECT_NE(d.find("execute g/1"), std::string::npos);
}

TEST(Compiler, SwitchTablesResolveConstants) {
  Program p;
  p.consult("t(a, 1). t(b, 2). t(c, 3).");
  auto c = comp(p);
  i32 e = entry_of(p, *c, "t", 2);
  ASSERT_EQ(c->at(e).op, Op::SwitchOnTerm);
  i32 lconst = c->at(e).b;
  ASSERT_EQ(c->at(lconst).op, Op::SwitchOnConst);
  u32 a_id = p.atoms().intern("a");
  i32 target = c->switch_lookup(c->at(lconst).a, CodeStore::const_key_atom(a_id));
  EXPECT_NE(target, kFailAddr);
  EXPECT_EQ(c->at(target).op, Op::GetConstant);  // clause code for t(a,1)
}

TEST(CodeStoreGuards, EmitThrowsAtIndexLimit) {
  Program p;
  p.consult("a.");
  auto c = comp(p);
  c->set_index_limit_for_testing(c->size() + 2);
  i32 e1 = c->emit({Op::Proceed, 0, 0, 0, 0});
  EXPECT_EQ(e1, c->size() - 1);
  i32 e2 = c->emit({Op::Proceed, 0, 0, 0, 0});
  EXPECT_EQ(e2, c->size() - 1);
  try {
    c->emit({Op::Proceed, 0, 0, 0, 0});
    FAIL() << "emit past the index limit must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("code store overflow"), std::string::npos);
  }
}

TEST(CodeStoreGuards, ProcIndexThrowsAtIndexLimit) {
  Program p;
  p.consult("a.");
  auto c = comp(p);
  c->set_index_limit_for_testing(static_cast<i32>(c->proc_count()) + 1);
  c->proc_index(PredId{1000, 1});  // fills the last free slot
  EXPECT_GE(c->proc_index(PredId{1000, 1}), 0);  // lookup of existing: fine
  try {
    c->proc_index(PredId{1000, 2});
    FAIL() << "proc_index past the index limit must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("proc table overflow"), std::string::npos);
  }
}

TEST(CodeStoreGuards, NewSwitchTableThrowsAtIndexLimit) {
  Program p;
  p.consult("a.");
  auto c = comp(p);
  c->set_index_limit_for_testing(1);
  bool had_table = false;
  try {
    c->new_switch_table();
    had_table = true;
    c->new_switch_table();
    FAIL() << "new_switch_table past the index limit must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("switch-table overflow"),
              std::string::npos);
  }
  EXPECT_TRUE(had_table);  // only the second creation may throw
}

TEST(Disassembler, EveryOpcodeHasANameAndListing) {
  // Round-trip over the whole opcode space, fused ops included: no Op
  // value may disassemble to the "?" fallback, so adding an opcode
  // without teaching op_name/disassemble about it fails here instead
  // of drifting silently.
  Program p;
  p.consult("a.");  // gives the store a proc (idx 0) and interned atoms
  auto c = comp(p);
  for (int v = 0; v < static_cast<int>(Op::kOpCount); ++v) {
    Op op = static_cast<Op>(v);
    std::string name = op_name(op);
    EXPECT_NE(name, "?") << "op value " << v;
    i32 addr = c->emit({op, 0, 0, 0, 0});
    std::string listing = c->disassemble(addr, addr + 1);
    EXPECT_NE(listing.find(name), std::string::npos)
        << "listing for op " << v << ": " << listing;
    EXPECT_EQ(listing.find('?'), std::string::npos)
        << "listing for op " << v << ": " << listing;
  }
  EXPECT_STREQ(op_name(Op::kOpCount), "?");  // out-of-range sentinel only
}

TEST(LinkCheck, UndefinedPredicateInProgramThrowsNamedError) {
  Program p;
  p.consult("a :- undefined_helper(1).");
  try {
    comp(p);
    FAIL() << "link check must reject the undefined predicate";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("undefined_helper/1"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace rapwam
