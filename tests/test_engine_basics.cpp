// End-to-end engine tests on 1 PE: facts, unification, arithmetic,
// lists, backtracking, cut, builtins, multiple solutions.
#include <gtest/gtest.h>

#include "engine/machine.h"

namespace rapwam {
namespace {

struct Env {
  Program prog;
  std::unique_ptr<Machine> m;
  explicit Env(const std::string& src, unsigned pes = 1, unsigned max_sols = 1) {
    prog.consult(src);
    MachineConfig cfg;
    cfg.num_pes = pes;
    cfg.max_solutions = max_sols;
    m = std::make_unique<Machine>(prog, cfg);
  }
  RunResult run(const std::string& goal) { return m->solve(goal); }
};

std::string binding(const RunResult& r, const std::string& var, std::size_t sol = 0) {
  for (auto& [n, v] : r.solutions.at(sol).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

TEST(Engine, FactSucceeds) {
  Env e("parent(tom, bob).");
  EXPECT_TRUE(e.run("parent(tom, bob).").success);
  EXPECT_FALSE(e.run("parent(bob, tom).").success);
}

TEST(Engine, BindsQueryVariable) {
  Env e("parent(tom, bob).");
  RunResult r = e.run("parent(tom, X).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "bob");
}

TEST(Engine, UnifiesStructures) {
  Env e("eq(X, X).");
  RunResult r = e.run("eq(f(g(1),h(A)), f(B,h(2))).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "A"), "2");
  EXPECT_EQ(binding(r, "B"), "g(1)");
}

TEST(Engine, OccursFreeCircularAvoided) {
  // No occurs check (standard WAM); just make sure basic var-var works.
  Env e("eq(X, X).");
  RunResult r = e.run("eq(X, Y).");
  EXPECT_TRUE(r.success);
}

TEST(Engine, Arithmetic) {
  Env e("add(X, Y, Z) :- Z is X + Y.");
  RunResult r = e.run("add(2, 3, Z).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "Z"), "5");
  EXPECT_FALSE(e.run("add(2, 3, 6).").success);
}

TEST(Engine, ArithmeticOperators) {
  Env e("calc(R) :- R is (10 - 3) * 2 + 100 // 7 - (5 mod 3).");
  RunResult r = e.run("calc(R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "26");  // 14 + 14 - 2
}

TEST(Engine, NegativeModFollowsISO) {
  Env e("m(R) :- R is -7 mod 3. n(R) :- R is -7 rem 3.");
  EXPECT_EQ(binding(e.run("m(R)."), "R"), "2");
  EXPECT_EQ(binding(e.run("n(R)."), "R"), "-1");
}

TEST(Engine, Comparisons) {
  Env e("t.");
  EXPECT_TRUE(e.run("1 < 2.").success);
  EXPECT_FALSE(e.run("2 < 1.").success);
  EXPECT_TRUE(e.run("2 =< 2.").success);
  EXPECT_TRUE(e.run("3 > 1.").success);
  EXPECT_TRUE(e.run("3 >= 3.").success);
  EXPECT_TRUE(e.run("1 + 1 =:= 2.").success);
  EXPECT_TRUE(e.run("1 =\\= 2.").success);
}

TEST(Engine, UnboundArithmeticThrows) {
  Env e("bad(X, R) :- R is X + 1.");
  EXPECT_THROW(e.run("bad(_, R)."), Error);
}

TEST(Engine, ListAppend) {
  Env e(
      "app([], L, L). "
      "app([X|Xs], L, [X|Ys]) :- app(Xs, L, Ys).");
  RunResult r = e.run("app([1,2], [3,4], R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[1,2,3,4]");
}

TEST(Engine, ListAppendBackward) {
  Env e(
      "app([], L, L). "
      "app([X|Xs], L, [X|Ys]) :- app(Xs, L, Ys).",
      1, 10);
  RunResult r = e.run("app(A, B, [1,2,3]).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions.size(), 4u);
  EXPECT_EQ(binding(r, "A", 0), "[]");
  EXPECT_EQ(binding(r, "B", 0), "[1,2,3]");
  EXPECT_EQ(binding(r, "A", 3), "[1,2,3]");
  EXPECT_EQ(binding(r, "B", 3), "[]");
}

TEST(Engine, NaiveReverse) {
  Env e(
      "nrev([],[]). "
      "nrev([X|Xs],R) :- nrev(Xs,R1), app(R1,[X],R). "
      "app([], L, L). "
      "app([X|Xs], L, [X|Ys]) :- app(Xs, L, Ys).");
  RunResult r = e.run("nrev([1,2,3,4,5], R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[5,4,3,2,1]");
}

TEST(Engine, BacktrackingThroughFacts) {
  Env e("color(red). color(green). color(blue).", 1, 10);
  RunResult r = e.run("color(C).");
  ASSERT_EQ(r.solutions.size(), 3u);
  EXPECT_EQ(binding(r, "C", 0), "red");
  EXPECT_EQ(binding(r, "C", 1), "green");
  EXPECT_EQ(binding(r, "C", 2), "blue");
}

TEST(Engine, MaxSolutionsLimits) {
  Env e("n(1). n(2). n(3). n(4).", 1, 2);
  RunResult r = e.run("n(X).");
  EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(Engine, CutPrunesAlternatives) {
  Env e("first(X) :- member(X, [1,2,3]), !. "
        "member(X, [X|_]). member(X, [_|T]) :- member(X, T).",
        1, 10);
  RunResult r = e.run("first(X).");
  EXPECT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(binding(r, "X"), "1");
}

TEST(Engine, NeckCutCommitsToClause) {
  Env e("max(X, Y, X) :- X >= Y, !. max(_, Y, Y).", 1, 10);
  RunResult r = e.run("max(3, 2, M).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(binding(r, "M"), "3");
  RunResult r2 = e.run("max(1, 2, M).");
  EXPECT_EQ(binding(r2, "M"), "2");
}

TEST(Engine, IfThenElse) {
  Env e("class(X, small) :- (X < 10 -> true ; fail). "
        "class(X, big) :- (X < 10 -> fail ; true).");
  EXPECT_TRUE(e.run("class(5, small).").success);
  EXPECT_FALSE(e.run("class(15, small).").success);
  EXPECT_TRUE(e.run("class(15, big).").success);
}

TEST(Engine, NegationAsFailure) {
  Env e("p(1). q(X) :- \\+ p(X).");
  EXPECT_FALSE(e.run("q(1).").success);
  EXPECT_TRUE(e.run("q(2).").success);
}

TEST(Engine, Disjunction) {
  Env e("ab(X) :- (X = a ; X = b).", 1, 10);
  RunResult r = e.run("ab(X).");
  ASSERT_EQ(r.solutions.size(), 2u);
  EXPECT_EQ(binding(r, "X", 0), "a");
  EXPECT_EQ(binding(r, "X", 1), "b");
}

TEST(Engine, TypeTests) {
  Env e("t.");
  EXPECT_TRUE(e.run("var(_).").success);
  EXPECT_FALSE(e.run("var(a).").success);
  EXPECT_TRUE(e.run("nonvar(a).").success);
  EXPECT_TRUE(e.run("atom(foo).").success);
  EXPECT_FALSE(e.run("atom(1).").success);
  EXPECT_TRUE(e.run("integer(3).").success);
  EXPECT_TRUE(e.run("atomic(3).").success);
  EXPECT_TRUE(e.run("atomic(foo).").success);
  EXPECT_FALSE(e.run("atomic(f(x)).").success);
  EXPECT_TRUE(e.run("compound(f(x)).").success);
  EXPECT_TRUE(e.run("compound([1]).").success);
}

TEST(Engine, StructuralComparison) {
  Env e("t.");
  EXPECT_TRUE(e.run("f(a,1) == f(a,1).").success);
  EXPECT_FALSE(e.run("f(a,1) == f(a,2).").success);
  EXPECT_TRUE(e.run("f(a,1) \\== f(a,2).").success);
  EXPECT_FALSE(e.run("X == Y.").success);
  EXPECT_TRUE(e.run("X == X.").success);
}

TEST(Engine, GroundAndIndep) {
  Env e("t.");
  EXPECT_TRUE(e.run("ground(f(a,[1,2])).").success);
  EXPECT_FALSE(e.run("ground(f(a,X)).").success);
  EXPECT_TRUE(e.run("indep(f(X), g(Y)).").success);
  EXPECT_FALSE(e.run("indep(f(X), g(X)).").success);
  EXPECT_TRUE(e.run("indep(f(a), g(a)).").success);
}

TEST(Engine, FunctorBuiltin) {
  Env e("t.");
  RunResult r = e.run("functor(f(a,b), N, A).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "N"), "f");
  EXPECT_EQ(binding(r, "A"), "2");
  RunResult r2 = e.run("functor(T, g, 2).");
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(binding(r2, "T").substr(0, 2), "g(");
}

TEST(Engine, ArgBuiltin) {
  Env e("t.");
  RunResult r = e.run("arg(2, f(a,b,c), X).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "b");
  EXPECT_FALSE(e.run("arg(4, f(a,b,c), _).").success);
}

TEST(Engine, MetaCall) {
  Env e("p(1). q(X) :- call(p(X)).");
  RunResult r = e.run("q(X).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "1");
  EXPECT_FALSE(e.run("call(fail).").success);
  EXPECT_TRUE(e.run("call(true).").success);
}

TEST(Engine, WriteProducesOutput) {
  Env e("hello :- write(hi), nl, write(f(1)).");
  RunResult r = e.run("hello.");
  EXPECT_EQ(r.output, "hi\nf(1)");
}

TEST(Engine, DeepRecursionWithinLimits) {
  Env e(
      "count(0) :- !. "
      "count(N) :- N1 is N - 1, count(N1).");
  EXPECT_TRUE(e.run("count(20000).").success);
}

TEST(Engine, LastCallOptimizationKeepsStackFlat) {
  Env e(
      "loop(0). "
      "loop(N) :- N > 0, N1 is N - 1, loop(N1).");
  RunResult r = e.run("loop(50000).");
  ASSERT_TRUE(r.success);
  // With LCO the local stack must stay shallow.
  u64 local_hw = r.stats.high_water[static_cast<size_t>(Area::Local)];
  EXPECT_LT(local_hw, 4096u);
}

TEST(Engine, StatsArePopulated) {
  Env e("n(1). n(2).");
  RunResult r = e.run("n(X).");
  EXPECT_GT(r.stats.instructions, 0u);
  EXPECT_GT(r.stats.refs.total, 0u);
  EXPECT_GT(r.stats.calls, 0u);
  EXPECT_EQ(r.stats.num_pes, 1u);
}

TEST(Engine, FirstArgIndexingAvoidsChoicePoints) {
  // With indexing, a deterministic lookup leaves no choice points, so
  // a subsequent cut-free query still returns exactly one solution.
  Env e("t(a, 1). t(b, 2). t(c, 3).", 1, 10);
  RunResult r = e.run("t(b, X).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(binding(r, "X"), "2");
}

TEST(Engine, UnifyTwoQueryVars) {
  Env e("eq(X,X).");
  RunResult r = e.run("eq(A, B).");
  ASSERT_TRUE(r.success);
  // A and B are aliased; both print as the same fresh variable.
  EXPECT_EQ(binding(r, "A"), binding(r, "B"));
}

TEST(Engine, UndefinedPredicateInQueryRaisesNamedError) {
  // The program's link check never sees the query, so a query-only
  // undefined predicate reaches the engine. It must surface as a
  // structured Error naming predicate and arity — never a jump through
  // entry == -1 (resolved_entry() is the call-time backstop for code
  // stores assembled without a link check).
  Env e("a(1).");
  try {
    e.run("no_such_pred(1, 2).");
    FAIL() << "calling an undefined predicate must throw";
  } catch (const Error& err) {
    std::string msg = err.what();
    EXPECT_NE(msg.find("undefined predicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("no_such_pred/2"), std::string::npos) << msg;
  }
}

TEST(Dispatch, ComputedGotoSelectedOnGnuCompilers) {
  // The interpreter core must actually be the threaded-dispatch build
  // wherever computed goto is available (GCC/Clang, i.e. both CI
  // toolchains) — a silent fallback to the switch would quietly lose
  // the dispatch optimisation. The macro escape hatch is exactly
  // -DRAPWAM_FORCE_SWITCH_DISPATCH, which defines away this check.
#if defined(__GNUC__) && !defined(RAPWAM_FORCE_SWITCH_DISPATCH)
  EXPECT_TRUE(threaded_dispatch_enabled());
#else
  EXPECT_FALSE(threaded_dispatch_enabled());
#endif
}

}  // namespace
}  // namespace rapwam
