// Deeper control-flow and storage-behaviour tests: backtracking-heavy
// programs, cut semantics across calls, storage reclamation (the
// stack-based recovery the paper highlights), and solution enumeration
// order.
#include <gtest/gtest.h>

#include "engine/machine.h"

namespace rapwam {
namespace {

struct Env {
  Program prog;
  MachineConfig cfg;
  explicit Env(const std::string& src, unsigned pes = 1, unsigned max_sols = 1) {
    prog.consult(src);
    cfg.num_pes = pes;
    cfg.max_solutions = max_sols;
  }
  RunResult run(const std::string& goal) {
    Machine m(prog, cfg);
    return m.solve(goal);
  }
};

std::string binding(const RunResult& r, const std::string& var, std::size_t sol = 0) {
  for (auto& [n, v] : r.solutions.at(sol).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

const char* kQueens = R"PL(
queens(N,Qs) :- range(1,N,Ns), place(Ns,[],Qs).
place([],Qs,Qs).
place(Un,Safe,Qs) :- selectq(Un,Un1,Q), \+ attack(Q,Safe), place(Un1,[Q|Safe],Qs).
attack(X,Xs) :- att(X,1,Xs).
att(X,N,[Y|_]) :- X =:= Y + N.
att(X,N,[Y|_]) :- X =:= Y - N.
att(X,N,[_|Ys]) :- N1 is N + 1, att(X,N1,Ys).
selectq([X|Xs],Xs,X).
selectq([Y|Ys],[Y|Zs],X) :- selectq(Ys,Zs,X).
range(N,N,[N]) :- !.
range(M,N,[M|Ns]) :- M < N, M1 is M + 1, range(M1,N,Ns).
)PL";

TEST(Control, QueensSolutionCounts) {
  // Classic counts: 4-queens has 2 solutions, 5-queens has 10,
  // 6-queens has 4.
  Env e(kQueens, 1, 1000);
  EXPECT_EQ(e.run("queens(4, Q).").solutions.size(), 2u);
  EXPECT_EQ(e.run("queens(5, Q).").solutions.size(), 10u);
  EXPECT_EQ(e.run("queens(6, Q).").solutions.size(), 4u);
}

TEST(Control, QueensFirstSolutionIsValid) {
  Env e(kQueens, 1, 1);
  RunResult r = e.run("queens(6, Q).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "Q"), "[5,3,1,6,4,2]");
}

TEST(Control, PermutationEnumerationOrder) {
  Env e(
      "perm([], []). "
      "perm(L, [X|P]) :- sel(L, R, X), perm(R, P). "
      "sel([X|Xs], Xs, X). "
      "sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).",
      1, 10);
  RunResult r = e.run("perm([1,2,3], P).");
  ASSERT_EQ(r.solutions.size(), 6u);
  EXPECT_EQ(binding(r, "P", 0), "[1,2,3]");
  EXPECT_EQ(binding(r, "P", 1), "[1,3,2]");
  EXPECT_EQ(binding(r, "P", 5), "[3,2,1]");
}

TEST(Control, CutInsideCalledPredicateIsLocal) {
  // The cut in once/… must not prune the caller's alternatives.
  Env e(
      "pick(X) :- member(X, [1,2,3]). "
      "member(X, [X|_]). member(X, [_|T]) :- member(X, T). "
      "firstpick(X) :- pick(X), !.",
      1, 10);
  RunResult all = e.run("pick(X).");
  EXPECT_EQ(all.solutions.size(), 3u);
  RunResult first = e.run("firstpick(X).");
  EXPECT_EQ(first.solutions.size(), 1u);
}

TEST(Control, CutAfterDisjunctionKeepsEarlierChoice) {
  Env e("p(X) :- (X = 1 ; X = 2), !.", 1, 10);
  RunResult r = e.run("p(X).");
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(binding(r, "X"), "1");
}

TEST(Control, NestedNegation) {
  Env e("p(1). q(X) :- \\+ \\+ p(X).");
  EXPECT_TRUE(e.run("q(1).").success);
  EXPECT_FALSE(e.run("q(2).").success);
  // Double negation must not bind.
  RunResult r = e.run("\\+ \\+ p(Y).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "Y").substr(0, 2), "_G");  // still unbound
}

TEST(Control, IfThenElseChainsAndNesting) {
  Env e(
      "grade(S, a) :- (S >= 90 -> true ; fail). "
      "grade(S, b) :- (S >= 90 -> fail ; (S >= 80 -> true ; fail)). "
      "grade(S, c) :- (S >= 80 -> fail ; true).");
  EXPECT_EQ(binding(e.run("grade(95, G)."), "G"), "a");
  EXPECT_EQ(binding(e.run("grade(85, G)."), "G"), "b");
  EXPECT_EQ(binding(e.run("grade(70, G)."), "G"), "c");
}

TEST(Control, DeepBacktrackingRestoresBindings) {
  Env e(
      "try(X, Y) :- gen(X), gen(Y), X + Y =:= 7. "
      "gen(1). gen(2). gen(3). gen(4).",
      1, 10);
  RunResult r = e.run("try(X, Y).");
  ASSERT_EQ(r.solutions.size(), 2u);  // 3+4 and 4+3
  EXPECT_EQ(binding(r, "X", 0), "3");
  EXPECT_EQ(binding(r, "Y", 0), "4");
}

TEST(Control, StorageRecoveredOnBacktracking) {
  // The paper: "the stack-based memory management approach recovers
  // ... all storage on backtracking as in the WAM". Building a big
  // structure then failing must not leave heap residue for the next
  // iteration: the high-water mark stays near a single iteration's
  // usage.
  Env e(
      "build(0, []) :- !. "
      "build(N, [N|T]) :- N1 is N - 1, build(N1, T). "
      "churn(0) :- !. "
      "churn(K) :- \\+ ( build(300, L), L = [] ), K1 is K - 1, churn(K1).");
  RunResult r = e.run("churn(50).");
  ASSERT_TRUE(r.success);
  // 50 iterations x 300 cells would be ~30k words if leaked.
  EXPECT_LT(r.stats.high_water[static_cast<size_t>(Area::Heap)], 2500u);
}

TEST(Control, LocalStackRecoveredOnExit) {
  // LCO + environment reclamation: deep deterministic recursion keeps
  // the local stack flat.
  Env e(
      "down(0) :- !. "
      "down(N) :- N1 is N - 1, down(N1).");
  RunResult r = e.run("down(100000).");
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.stats.high_water[static_cast<size_t>(Area::Local)], 256u);
}

TEST(Control, ControlStackReclaimedByCut) {
  // Without cut-time reclamation every neck cut leaks a choice point
  // and the control stack ratchets (this killed cache locality; see
  // docs/DESIGN.md §5). 10k cuts must not use 10k CPs of space.
  Env e(
      "f(0) :- !. "
      "f(N) :- g(N), N1 is N - 1, f(N1). "
      "g(X) :- X mod 2 =:= 0, !. "
      "g(_).");
  RunResult r = e.run("f(10000).");
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.stats.high_water[static_cast<size_t>(Area::Control)], 512u);
}

TEST(Control, TrailShrinksOnBacktracking) {
  Env e(
      "flip(X) :- (X = a ; X = b ; X = c).", 1, 3);
  RunResult r = e.run("flip(X).");
  EXPECT_EQ(r.solutions.size(), 3u);
  EXPECT_LT(r.stats.high_water[static_cast<size_t>(Area::Trail)], 16u);
}

TEST(Control, ParallelQueensMatchesSequential) {
  // Queens with a parallel safety check: attack tests on disjoint
  // prefixes. (Contrived but exercises parcall + backtracking search.)
  std::string src = std::string(kQueens) +
      "pqueens(N, Qs) :- queens(N, Qs). "
      "check2(Q1, Q2, Safe) :- \\+ attack(Q1, Safe) & \\+ attack(Q2, Safe).";
  Env e1(src, 1, 100);
  Env e4(src, 4, 100);
  EXPECT_EQ(e1.run("queens(5, Q).").solutions.size(),
            e4.run("queens(5, Q).").solutions.size());
}

TEST(Control, SolutionLimitStopsEarly) {
  Env e("n(1). n(2). n(3). n(4). n(5).", 1, 3);
  RunResult r = e.run("n(X).");
  EXPECT_EQ(r.solutions.size(), 3u);
}

TEST(Control, FailDrivenLoopTerminates) {
  Env e(
      "item(1). item(2). item(3). "
      "show :- item(X), write(X), nl, fail. "
      "show.");
  RunResult r = e.run("show.");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.output, "1\n2\n3\n");
}

TEST(Control, GroundQueryOnParallelPredicate) {
  // Calling an annotated predicate with the output already bound.
  Env e(
      "twice(X, Y) :- p(X, A) & p(X, B), Y is A + B. "
      "p(X, Y) :- Y is X * 2.");
  EXPECT_TRUE(e.run("twice(3, 12).").success);
  EXPECT_FALSE(e.run("twice(3, 13).").success);
}

TEST(Control, WatchdogCatchesRunaway) {
  Program prog;
  prog.consult("loop :- loop.");
  MachineConfig cfg;
  cfg.max_cycles = 100000;
  Machine m(prog, cfg);
  EXPECT_THROW(m.solve("loop."), Error);
}

TEST(Control, HeapOverflowReported) {
  Program prog;
  prog.consult(
      "grow(L) :- grow([x|L]).");
  MachineConfig cfg;
  cfg.sizes.heap = 4096;
  cfg.max_cycles = 100000000;
  Machine m(prog, cfg);
  try {
    m.solve("grow([]).");
    FAIL() << "expected overflow";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
  }
}

}  // namespace
}  // namespace rapwam
