// Resource-governance suite (DESIGN.md §14): heap / local / step
// budgets must trip with a structured ResourceExhaustedError naming
// the budget, the unwind must be clean — a machine that just tripped a
// budget (or was deadline-cancelled) re-runs a real query bit-identical
// to a fresh machine, packed trace stream included — and a governed
// run whose budgets never fire must be indistinguishable from an
// ungoverned one. Also pins the engine-side fault injection points
// (fail-Nth-heap-growth, cycle-loop stall) the server's slow-generation
// deadline tests build on.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "engine/machine.h"
#include "harness/programs.h"
#include "harness/runner.h"
#include "support/cancel.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

/// Runaway predicates appended to a benchmark source: unbounded heap
/// growth, an allocation-free spin loop, and deep non-tail recursion
/// (one environment per level) for the local stack.
constexpr const char* kRunaway =
    "\n"
    "grow__(L) :- grow__([x|L]).\n"
    "grow__start :- grow__([]).\n"
    "spin__ :- spin__.\n"
    "deep__(N) :- N > 0, M is N - 1, deep__(M), deep_sink__.\n"
    "deep_sink__.\n";

MachineConfig base_config(unsigned pes) {
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.sizes = bench_area_sizes();
  cfg.max_solutions = 1;
  return cfg;
}

struct GovRun {
  RunResult result;
  std::vector<u64> packed;
};

GovRun solve_traced(Machine& m, const std::string& goal,
                    const CancelToken* cancel = nullptr) {
  ChunkingSink sink(/*busy_only=*/false);  // idle refs must match too
  GovRun out;
  out.result = m.solve(goal, &sink, cancel);
  out.packed = sink.take()->to_packed();
  return out;
}

void expect_runs_identical(const GovRun& a, const GovRun& b) {
  EXPECT_EQ(a.result.success, b.result.success);
  EXPECT_EQ(a.result.output, b.result.output);
  ASSERT_EQ(a.result.solutions.size(), b.result.solutions.size());
  for (std::size_t i = 0; i < a.result.solutions.size(); ++i)
    EXPECT_EQ(a.result.solutions[i].bindings, b.result.solutions[i].bindings);
  EXPECT_EQ(a.result.stats.instructions, b.result.stats.instructions);
  EXPECT_EQ(a.result.stats.cycles, b.result.stats.cycles);
  EXPECT_EQ(a.result.stats.calls, b.result.stats.calls);
  EXPECT_EQ(a.result.stats.refs.total, b.result.stats.refs.total);
  EXPECT_EQ(a.result.stats.refs.writes, b.result.stats.refs.writes);
  EXPECT_EQ(a.result.stats.refs.busy, b.result.stats.refs.busy);
  EXPECT_EQ(a.result.stats.solutions, b.result.stats.solutions);
  EXPECT_EQ(a.result.stats.high_water, b.result.stats.high_water);
  ASSERT_EQ(a.packed.size(), b.packed.size());
  EXPECT_EQ(a.packed, b.packed);
}

/// Runs `goal` expecting ResourceExhaustedError on budget `resource`.
void expect_budget_trip(Machine& m, const std::string& goal,
                        const std::string& resource) {
  try {
    m.solve(goal);
    FAIL() << "expected the '" << resource << "' budget to trip";
  } catch (const ResourceExhaustedError& e) {
    EXPECT_EQ(e.resource(), resource);
    EXPECT_EQ(std::string(e.what()).rfind("resource_exhausted: ", 0), 0u)
        << e.what();
  }
}

TEST(EngineLimits, HeapBudgetTripsWithStructuredError) {
  Program prog;
  prog.consult(bench_program("qsort", BenchScale::Small).source + kRunaway);
  MachineConfig cfg = base_config(1);
  cfg.limits.max_heap_words = u64(1) << 14;
  Machine m(prog, cfg);
  expect_budget_trip(m, "grow__start.", "heap");
}

TEST(EngineLimits, StepBudgetTripsWithStructuredError) {
  Program prog;
  prog.consult(bench_program("qsort", BenchScale::Small).source + kRunaway);
  MachineConfig cfg = base_config(1);
  cfg.limits.max_steps = 50'000;
  Machine m(prog, cfg);
  try {
    m.solve("spin__.");
    FAIL() << "expected the step budget to trip";
  } catch (const ResourceExhaustedError& e) {
    EXPECT_EQ(e.resource(), "steps");
    EXPECT_NE(std::string(e.what()).find("max_steps=50000"), std::string::npos)
        << e.what();
  }
}

TEST(EngineLimits, LocalBudgetTripsWithStructuredError) {
  Program prog;
  prog.consult(bench_program("qsort", BenchScale::Small).source + kRunaway);
  MachineConfig cfg = base_config(1);
  cfg.strip_cge = true;  // keep the runaway recursion purely sequential
  cfg.limits.max_local_words = 4096;
  Machine m(prog, cfg);
  expect_budget_trip(m, "deep__(100000000).", "local");
}

TEST(EngineLimits, ExhaustedMachineRerunsBitIdenticalToFresh) {
  // The clean-unwind contract: trip a budget, then run the real
  // benchmark on the same machine — trace stream, stats, solutions all
  // bit-identical to a fresh, ungoverned machine. All four paper
  // benchmarks, single-PE fused path.
  for (const char* name : {"qsort", "deriv", "matrix", "tak"}) {
    SCOPED_TRACE(name);
    BenchProgram bp = bench_program(name, BenchScale::Small);
    std::string src = bp.source + kRunaway;

    Program gov_prog;
    gov_prog.consult(src);
    MachineConfig gov_cfg = base_config(1);
    gov_cfg.limits.max_heap_words = u64(1) << 18;  // runaway trips, bench fits
    Machine governed(gov_prog, gov_cfg);
    expect_budget_trip(governed, "grow__start.", "heap");
    GovRun after_trip = solve_traced(governed, bp.goal + ".");
    ASSERT_TRUE(after_trip.result.success);

    Program fresh_prog;
    fresh_prog.consult(src);
    Machine fresh(fresh_prog, base_config(1));
    GovRun baseline = solve_traced(fresh, bp.goal + ".");
    expect_runs_identical(after_trip, baseline);
  }
}

TEST(EngineLimits, ExhaustedMultiPeMachineRerunsBitIdentical) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  std::string src = bp.source + kRunaway;
  Program gov_prog;
  gov_prog.consult(src);
  MachineConfig gov_cfg = base_config(4);
  gov_cfg.limits.max_heap_words = u64(1) << 18;
  Machine governed(gov_prog, gov_cfg);
  expect_budget_trip(governed, "grow__start.", "heap");
  GovRun after_trip = solve_traced(governed, bp.goal + ".");
  ASSERT_TRUE(after_trip.result.success);

  Program fresh_prog;
  fresh_prog.consult(src);
  Machine fresh(fresh_prog, base_config(4));
  expect_runs_identical(after_trip, solve_traced(fresh, bp.goal + "."));
}

TEST(EngineLimits, GovernedButUntrippedRunIsBitIdentical) {
  // Generous budgets plus a live (never-firing) cancel token must be
  // unobservable: same trace, same stats as an ungoverned run with a
  // null token — the acceptance bar for the whole governance layer.
  for (const char* name : {"qsort", "deriv", "matrix", "tak"}) {
    SCOPED_TRACE(name);
    BenchProgram bp = bench_program(name, BenchScale::Small);
    Program p1, p2;
    p1.consult(bp.source);
    p2.consult(bp.source);

    MachineConfig governed_cfg = base_config(1);
    governed_cfg.limits.max_heap_words = bench_area_sizes().heap;
    governed_cfg.limits.max_steps = u64(1) << 40;
    Machine governed(p1, governed_cfg);
    CancelToken token;  // no deadline, never cancelled
    GovRun gov = solve_traced(governed, bp.goal + ".", &token);

    Machine plain(p2, base_config(1));
    expect_runs_identical(gov, solve_traced(plain, bp.goal + "."));
  }
}

TEST(EngineLimits, DeadlineCancelsMidRunAndMachineStaysReusable) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  Program prog;
  prog.consult(bp.source + kRunaway);
  MachineConfig cfg = base_config(1);
  // Stall the cycle loop so a short deadline reliably lands inside the
  // run (the checkpoint cadence is every 1024 cycles).
  cfg.faults.stall_every_cycles = 256;
  cfg.faults.stall_ms = 5;
  Machine m(prog, cfg);

  auto t0 = std::chrono::steady_clock::now();
  CancelToken token = CancelToken::with_deadline(std::chrono::milliseconds(50));
  try {
    m.solve("spin__.", nullptr, &token);
    FAIL() << "expected the deadline to cancel the run";
  } catch (const CancelledError& e) {
    EXPECT_TRUE(e.deadline_exceeded()) << e.what();
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 5000) << "cancellation was not prompt";

  // Same machine, faults still armed but no token: the real query must
  // still succeed (stalls slow it down; they do not change results).
  RunResult r = m.solve(bp.goal + ".");
  EXPECT_TRUE(r.success);
}

TEST(EngineLimits, ExplicitCancelIsDistinguishedFromDeadline) {
  Program prog;
  prog.consult(bench_program("qsort", BenchScale::Small).source + kRunaway);
  Machine m(prog, base_config(1));
  CancelToken token;
  token.cancel();  // cancelled before the run even starts
  try {
    m.solve("spin__.", nullptr, &token);
    FAIL() << "expected the cancelled token to abort the run";
  } catch (const CancelledError& e) {
    EXPECT_FALSE(e.deadline_exceeded()) << e.what();
  }
}

TEST(EngineLimits, InjectedHeapGrowthFaultFiresOnNthPush) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  Program prog;
  prog.consult(bp.source);
  MachineConfig cfg = base_config(1);
  cfg.faults.fail_heap_growth_n = 1;
  Machine m(prog, cfg);
  try {
    m.solve(bp.goal + ".");
    FAIL() << "expected the injected heap-growth fault to fire";
  } catch (const ResourceExhaustedError& e) {
    EXPECT_EQ(e.resource(), "heap");
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos)
        << e.what();
  }
}

TEST(EngineLimits, RunIntoThreadsLimitsAndFaults) {
  // The harness entry point the trace library / server use must honor
  // the same governance knobs as a hand-built machine.
  BenchProgram bp = bench_program("deriv", BenchScale::Small);
  ResourceLimits limits;
  limits.max_steps = 10;  // far below any real benchmark
  EXPECT_THROW(run_into(bp, 1, false, nullptr, 1, limits),
               ResourceExhaustedError);

  EngineFaults faults;
  faults.fail_heap_growth_n = 1;
  EXPECT_THROW(run_into(bp, 1, false, nullptr, 1, ResourceLimits{}, faults),
               ResourceExhaustedError);
}

}  // namespace
}  // namespace rapwam
