// Fused-vs-unfused differential suite (DESIGN.md §13): compiling with
// superinstruction fusion on vs off must be unobservable in every
// simulation output — bit-identical packed trace streams (idle refs
// included), solution sets, RunStats and replayed TrafficStats — on
// the four paper benchmarks and on randomized programs. Plus
// structural unit tests that the fusion pass never rewrites across a
// branch target, switch-table entry, or choice-point chain slot, and
// that every address operand survives the rewrite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/multisim.h"
#include "compiler/compile.h"
#include "compiler/fuse.h"
#include "compiler/verify.h"
#include "harness/runner.h"
#include "test_rand.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

struct DiffRun {
  RunResult result;
  std::vector<u64> packed;
};

DiffRun run_with(const std::string& source, const std::string& goal, bool fuse,
                 unsigned pes, unsigned max_solutions) {
  Program prog;
  prog.consult(source);
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.sizes = bench_area_sizes();
  cfg.fuse = fuse;
  cfg.max_solutions = max_solutions;
  Machine m(prog, cfg);
  ChunkingSink sink(/*busy_only=*/false);  // idle refs must match too
  DiffRun out;
  out.result = m.solve(goal, &sink);
  out.packed = sink.take()->to_packed();
  return out;
}

void expect_stats_eq(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.wait_polls, b.wait_polls);
  EXPECT_EQ(a.refs.total, b.refs.total);
  EXPECT_EQ(a.refs.writes, b.refs.writes);
  EXPECT_EQ(a.refs.busy, b.refs.busy);
  EXPECT_EQ(a.goals_pushed, b.goals_pushed);
  EXPECT_EQ(a.goals_stolen, b.goals_stolen);
  EXPECT_EQ(a.goals_local, b.goals_local);
  EXPECT_EQ(a.parcalls, b.parcalls);
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.solutions, b.solutions);
  EXPECT_EQ(a.high_water, b.high_water);
}

void expect_identical(const DiffRun& fused, const DiffRun& unfused) {
  EXPECT_EQ(fused.result.success, unfused.result.success);
  EXPECT_EQ(fused.result.output, unfused.result.output);
  ASSERT_EQ(fused.result.solutions.size(), unfused.result.solutions.size());
  for (std::size_t i = 0; i < fused.result.solutions.size(); ++i)
    EXPECT_EQ(fused.result.solutions[i].bindings,
              unfused.result.solutions[i].bindings);
  expect_stats_eq(fused.result.stats, unfused.result.stats);
  ASSERT_EQ(fused.packed.size(), unfused.packed.size());
  EXPECT_EQ(fused.packed, unfused.packed);
}

TEST(FuseDiff, PaperBenchmarksBitIdenticalAtOnePe) {
  for (const char* name : {"qsort", "deriv", "matrix", "tak"}) {
    BenchProgram bp = bench_program(name, BenchScale::Paper);
    DiffRun fused = run_with(bp.source, bp.goal + ".", true, 1, 1);
    DiffRun unfused = run_with(bp.source, bp.goal + ".", false, 1, 1);
    SCOPED_TRACE(name);
    expect_identical(fused, unfused);
    ASSERT_TRUE(fused.result.success);

    // Identical streams must replay to identical cache traffic; pin the
    // TrafficStats object itself, not just the input stream.
    CacheConfig cc;
    cc.size_words = 1024;
    MultiCacheSim sim_f(cc, 1), sim_u(cc, 1);
    sim_f.replay(fused.packed);
    sim_u.replay(unfused.packed);
    EXPECT_EQ(sim_f.stats(), sim_u.stats());
    EXPECT_GT(sim_f.stats().refs, 0u);
  }
}

TEST(FuseDiff, MultiPeMachinesCompileUnfusedEitherWay) {
  // At >1 PE the fuse flag must be inert (fused execution would change
  // the cross-PE interleaving of the trace stream), so runs with the
  // flag on and off are trivially identical — including scheduling
  // counters, which would drift if fusion ever leaked into multi-PE
  // compilation.
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  for (unsigned pes : {4u, 8u}) {
    DiffRun on = run_with(bp.source, bp.goal + ".", true, pes, 1);
    DiffRun off = run_with(bp.source, bp.goal + ".", false, pes, 1);
    SCOPED_TRACE(pes);
    expect_identical(on, off);
  }
}

/// Builds a random program exercising the fused streams: facts with
/// duplicate keys (try/retry/trust + switch tables), an arithmetic
/// guard rule (put/math_load/math_cmp windows, neck_cut via the
/// compiler's guard idiom), and list recursion (get_list/unify
/// windows). Deterministic in `seed`.
std::string random_program(u64 seed, std::string& goal) {
  Lcg rng(seed);
  std::string src;
  int nfacts = 6 + static_cast<int>(rng.next(10));
  for (int i = 0; i < nfacts; ++i) {
    src += "f(" + std::to_string(rng.next(5)) + "," +
           std::to_string(rng.next(20)) + ").\n";
  }
  src += "g(X,Y) :- f(X,Z), Z > " + std::to_string(rng.next(10)) +
         ", f(Z2,Y), Z2 >= X.\n";
  src += "sum([],A,A).\n";
  src += "sum([H|T],A,S) :- A1 is A+H, sum(T,A1,S).\n";
  src += "pairup([],[]).\n";
  src += "pairup([X|T],[X-X2|R]) :- X2 is X*2, pairup(T,R).\n";
  std::string list = "[";
  int len = 4 + static_cast<int>(rng.next(12));
  for (int i = 0; i < len; ++i)
    list += (i ? "," : "") + std::to_string(rng.next(50));
  list += "]";
  goal = "sum(" + list + ",0,S), pairup(" + list + ",P), g(A,B).";
  return src;
}

TEST(FuseDiff, RandomizedProgramsBitIdentical) {
  for (u64 seed = 1; seed <= 8; ++seed) {
    std::string goal;
    std::string src = random_program(seed, goal);
    SCOPED_TRACE(src);
    // All solutions, so the whole try/retry/trust + switch machinery
    // and the backtracking paths of the fused handlers are exercised.
    DiffRun fused = run_with(src, goal, true, 1, 64);
    DiffRun unfused = run_with(src, goal, false, 1, 64);
    expect_identical(fused, unfused);
  }
}

TEST(FuseDiff, FusedHandlerBacktrackPathsBitIdentical) {
  // Heads and guards that fail mid-window: op1 of a fused pair
  // backtracks and the second constituent must not run (no stats
  // drift, no stray refs).
  const char* src =
      "p([H|T],R) :- H > 100, R = T.\n"     // guard fails on every elem
      "p([_|T],R) :- p(T,R).\n"
      "q(f(X,Y),X,Y).\n"                    // get_structure+unify windows
      "r([X,Y|T],X,Y,T).\n";                // get_list+unify windows
  std::string goal = "r([1,2,3],A,B,C), q(f(A,B),A2,B2), p([1,2,3,4],P).";
  DiffRun fused = run_with(src, goal, true, 1, 8);
  DiffRun unfused = run_with(src, goal, false, 1, 8);
  expect_identical(fused, unfused);
  EXPECT_FALSE(fused.result.success);  // p/2 never succeeds
}

// ---- structural tests on the pass itself --------------------------------

TEST(FusePass, FusesStraightLinePairs) {
  Interner atoms;
  CodeStore code(atoms);
  i32 a0 = code.emit({Op::PutValueX, 1, 2, 0, 0});
  code.emit({Op::PutValueX, 3, 4, 0, 0});
  i32 procq = code.proc_index(PredId{atoms.intern("q"), 0});
  code.proc(procq).entry = code.emit({Op::Proceed, 0, 0, 0, 0});
  int fused = fuse_code(code);
  EXPECT_EQ(fused, 1);
  EXPECT_EQ(code.at(a0).op, Op::FusePutValueX2);
  EXPECT_EQ(code.at(a0).a, 1);
  EXPECT_EQ(code.at(a0).b, 2);
  EXPECT_EQ(code.at(a0).c, 3);
  EXPECT_EQ(code.at(a0).imm, 4);
  // The proc entry after the collapsed window was remapped.
  EXPECT_EQ(code.at(code.proc(procq).entry).op, Op::Proceed);
  // The rewritten store still passes the bytecode verifier.
  EXPECT_NO_THROW(verify_code(code));
}

TEST(FusePass, NeverFusesAcrossProcEntry) {
  Interner atoms;
  CodeStore code(atoms);
  i32 a0 = code.emit({Op::PutValueX, 1, 2, 0, 0});
  i32 a1 = code.emit({Op::PutValueX, 3, 4, 0, 0});
  // a1 is a predicate entry: the window [a0, a1] must not fuse, or the
  // call would skip the first instruction — a1 must stay addressable.
  i32 p = code.proc_index(PredId{atoms.intern("p"), 0});
  code.proc(p).entry = a1;
  i32 before = code.size();
  EXPECT_EQ(fuse_code(code), 0);
  EXPECT_EQ(code.size(), before);
  EXPECT_EQ(code.at(a0).op, Op::PutValueX);
  EXPECT_EQ(code.at(code.proc(p).entry).op, Op::PutValueX);
  EXPECT_EQ(code.at(code.proc(p).entry).a, 3);
}

TEST(FusePass, NeverFusesAcrossSwitchTableEntry) {
  Interner atoms;
  CodeStore code(atoms);
  i32 a0 = code.emit({Op::PutValueX, 1, 2, 0, 0});
  i32 a1 = code.emit({Op::PutValueX, 3, 4, 0, 0});
  i32 t = code.new_switch_table();
  code.switch_add(t, CodeStore::const_key_int(7), a1);
  code.emit({Op::SwitchOnConst, t, kFailAddr, 0, 0});
  EXPECT_EQ(fuse_code(code), 0);
  EXPECT_EQ(code.at(a0).op, Op::PutValueX);
  // The table still points at the second instruction, unswallowed.
  i32 target = code.switch_lookup(t, CodeStore::const_key_int(7));
  EXPECT_EQ(code.at(target).op, Op::PutValueX);
  EXPECT_EQ(code.at(target).a, 3);
}

TEST(FusePass, NeverFusesAcrossChoicePointChainSlot) {
  Interner atoms;
  CodeStore code(atoms);
  // Two clauses behind a try/trust chain; the second clause's entry
  // (the trust target) starts mid-way through what would otherwise be
  // a fusible run of four put_value_x.
  i32 c1 = code.emit({Op::PutValueX, 1, 2, 0, 0});
  code.emit({Op::PutValueX, 3, 4, 0, 0});
  i32 c2 = code.emit({Op::PutValueX, 5, 6, 0, 0});
  code.emit({Op::PutValueX, 7, 8, 0, 0});
  i32 chain = code.emit({Op::Try, c1, 2, 0, 0});
  code.emit({Op::Trust, c2, 2, 0, 0});
  i32 p = code.proc_index(PredId{atoms.intern("p"), 2});
  code.proc(p).entry = chain;
  EXPECT_EQ(fuse_code(code), 2);  // each clause fuses internally
  i32 e = code.proc(p).entry;
  ASSERT_EQ(code.at(e).op, Op::Try);
  ASSERT_EQ(code.at(e + 1).op, Op::Trust);
  // Both chain targets land on intact (fused) clause heads.
  EXPECT_EQ(code.at(code.at(e).a).op, Op::FusePutValueX2);
  EXPECT_EQ(code.at(code.at(e).a).a, 1);
  EXPECT_EQ(code.at(code.at(e + 1).a).op, Op::FusePutValueX2);
  EXPECT_EQ(code.at(code.at(e + 1).a).a, 5);
  EXPECT_NO_THROW(verify_code(code));
}

TEST(FusePass, NeverFusesAcrossExplicitBranchTarget) {
  Interner atoms;
  CodeStore code(atoms);
  i32 a0 = code.emit({Op::PutValueX, 1, 2, 0, 0});
  i32 a1 = code.emit({Op::PutValueX, 3, 4, 0, 0});
  code.emit({Op::Jump, a1, 0, 0, 0});  // a1 pinned by the jump
  EXPECT_EQ(fuse_code(code), 0);
  EXPECT_EQ(code.at(a0).op, Op::PutValueX);
}

TEST(FusePass, WindowMayStartAtBranchTarget) {
  Interner atoms;
  CodeStore code(atoms);
  i32 a0 = code.emit({Op::PutValueX, 1, 2, 0, 0});
  code.emit({Op::PutValueX, 3, 4, 0, 0});
  i32 jmp = code.emit({Op::Jump, a0, 0, 0, 0});
  // Jumping *to* the start of a window is fine: the fused instruction
  // executes both constituents, exactly what the jump expects.
  EXPECT_EQ(fuse_code(code), 1);
  i32 target = code.at(jmp - 1).a;  // jump compacted one slot left
  EXPECT_EQ(code.at(target).op, Op::FusePutValueX2);
}

TEST(FusePass, BranchTargetsCoverCompiledProgram) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  Program prog;
  prog.consult(bp.source);
  auto code = compile_program(prog, CompileOptions{});
  std::vector<i32> targets = branch_targets(*code);
  // Prelude always pinned.
  EXPECT_TRUE(std::find(targets.begin(), targets.end(), kFailAddr) != targets.end());
  EXPECT_TRUE(std::find(targets.begin(), targets.end(), kEndGoalAddr) != targets.end());
  // Every compiled proc entry is pinned.
  for (std::size_t p = 0; p < code->proc_count(); ++p) {
    i32 e = code->proc(static_cast<i32>(p)).entry;
    if (e >= 0)
      EXPECT_TRUE(std::find(targets.begin(), targets.end(), e) != targets.end())
          << "proc " << p;
  }
  // Sorted, deduped, in range.
  for (std::size_t i = 1; i < targets.size(); ++i)
    EXPECT_LT(targets[i - 1], targets[i]);
  EXPECT_GE(targets.front(), 0);
  EXPECT_LT(targets.back(), code->size());
}

TEST(FusePass, FusedWidthMatchesOpNameArity) {
  // fused_width must agree with the op's name: one '+' per extra
  // constituent. This pins the accounting the engine's fused_step()
  // bumps rely on.
  for (int v = 0; v < static_cast<int>(Op::kOpCount); ++v) {
    Op op = static_cast<Op>(v);
    std::string name = op_name(op);
    int plus = 0;
    for (char ch : name)
      if (ch == '+') ++plus;
    EXPECT_EQ(fused_width(op), plus + 1) << name;
  }
}

TEST(FusePass, CompileOptionsToggleControlsFusion) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  Program p1, p2;
  p1.consult(bp.source);
  p2.consult(bp.source);
  CompileOptions off, on;
  on.fuse = true;
  auto unfused = compile_program(p1, off);
  auto fused = compile_program(p2, on);
  EXPECT_LT(fused->size(), unfused->size());
  bool has_fused_op = false;
  for (i32 a = 0; a < fused->size(); ++a)
    if (fused_width(fused->at(a).op) > 1) has_fused_op = true;
  EXPECT_TRUE(has_fused_op);
  for (i32 a = 0; a < unfused->size(); ++a)
    EXPECT_EQ(fused_width(unfused->at(a).op), 1) << "addr " << a;
  // Both compilation modes emit verifier-clean code (compile_program
  // verifies internally; pin the invariant explicitly here too).
  EXPECT_NO_THROW(verify_code(*fused));
  EXPECT_NO_THROW(verify_code(*unfused));
}

}  // namespace
}  // namespace rapwam
