// Golden-stats regression suite: replays the corpus configurations of
// harness/golden.h live and compares every counter field-by-field
// against the committed tests/golden/<bench>.json. Any drift — a
// refactor that changes a protocol transition, an accounting change, a
// trace-generation change — fails with a readable per-field diff and
// writes the live corpus to golden_actual/ (uploaded as a CI artifact)
// so the numbers can be inspected or, when the change is intentional,
// regenerated with `rapwam_trace golden --update`.
#include <gtest/gtest.h>

#include <filesystem>

#include "harness/golden.h"
#include "harness/programs.h"

namespace rapwam {
namespace {

void check_bench(const std::string& bench) {
  std::string path = golden_dir() + "/" + bench + ".json";
  std::vector<GoldenEntry> golden;
  try {
    golden = golden_from_json(read_text_file(path));
  } catch (const Error& e) {
    FAIL() << "cannot load golden corpus " << path << ": " << e.what()
           << "\nRegenerate with: rapwam_trace golden --update";
  }
  ASSERT_FALSE(golden.empty()) << path << " holds no entries";

  std::vector<GoldenEntry> live = golden_compute(bench);
  std::vector<std::string> diff = golden_diff(golden, live);
  if (diff.empty()) return;

  std::error_code ec;
  std::filesystem::create_directories("golden_actual", ec);
  std::string actual_path = "golden_actual/" + bench + ".json";
  try {
    write_text_file(actual_path, golden_to_json(bench, live));
  } catch (const Error&) {
    actual_path = "(write failed)";
  }
  std::string msg;
  for (const std::string& d : diff) msg += "  " + d + "\n";
  FAIL() << bench << ": live stats drifted from " << path << " ("
         << diff.size() << " mismatching lines):\n"
         << msg << "If the change is intentional, regenerate with: "
         << "rapwam_trace golden --update\n(live corpus written to "
         << actual_path << ")";
}

TEST(Golden, Deriv) { check_bench("deriv"); }
TEST(Golden, Tak) { check_bench("tak"); }
TEST(Golden, Qsort) { check_bench("qsort"); }
TEST(Golden, Matrix) { check_bench("matrix"); }

TEST(Golden, CorpusCoversEveryBenchmark) {
  // The corpus directory must hold exactly one file per paper
  // benchmark — a new benchmark without golden numbers is unguarded.
  for (const std::string& b : small_bench_names()) {
    EXPECT_TRUE(std::filesystem::exists(golden_dir() + "/" + b + ".json"))
        << "no golden corpus for " << b
        << "; run `rapwam_trace golden --update`";
  }
}

// --- corpus machinery ------------------------------------------------------

TEST(GoldenFormat, JsonRoundTripsExactly) {
  std::vector<GoldenEntry> entries = {
      {"pes1/write-thru", {{"refs", 123}, {"bus_words", 0}}},
      {"pes8/timing", {{"makespan", ~u64(0)}}},  // 64-bit extremes survive
  };
  std::vector<GoldenEntry> back =
      golden_from_json(golden_to_json("demo", entries));
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].key, entries[i].key);
    EXPECT_EQ(back[i].fields, entries[i].fields);
  }
}

TEST(GoldenFormat, DiffReportsPerFieldMismatch) {
  std::vector<GoldenEntry> golden = {{"k", {{"a", 1}, {"b", 2}}}};
  std::vector<GoldenEntry> live = {{"k", {{"a", 1}, {"b", 3}}},
                                   {"extra", {{"a", 0}}}};
  std::vector<std::string> diff = golden_diff(golden, live);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], "k: field b: golden 2, live 3");
  EXPECT_NE(diff[1].find("extra"), std::string::npos);
  EXPECT_TRUE(golden_diff(golden, golden).empty());
}

TEST(GoldenFormat, ParserRejectsMalformedCorpus) {
  EXPECT_THROW(golden_from_json(""), Error);
  EXPECT_THROW(golden_from_json("{"), Error);
  EXPECT_THROW(golden_from_json("{\"entries\": {\"k\": {\"a\": }}}"), Error);
  EXPECT_THROW(golden_from_json("{\"entries\": {\"k\": {\"a\": 1}}} x"), Error);
  EXPECT_THROW(golden_from_json("{\"entries\": {\"k\": {\"a\": "
                                "99999999999999999999999}}}"),
               Error);
  // Just past 2^64: wraps to an in-range value if the overflow check
  // runs after the multiply instead of before.
  EXPECT_THROW(golden_from_json("{\"entries\": {\"k\": {\"a\": "
                                "50000000000000000000}}}"),
               Error);
}

}  // namespace
}  // namespace rapwam
