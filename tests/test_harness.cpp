#include <functional>
// Harness tests: benchmark programs compute correct results, workload
// generators are deterministic, and the report generators produce
// plausible tables at small scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/reports.h"

namespace rapwam {
namespace {

std::string binding(const RunResult& r, const std::string& var) {
  for (auto& [n, v] : r.solutions.at(0).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

TEST(Generators, Deterministic) {
  EXPECT_EQ(gen_int_list(10, 7), gen_int_list(10, 7));
  EXPECT_NE(gen_int_list(10, 7), gen_int_list(10, 8));
  EXPECT_EQ(gen_deriv_expr(20, 42), gen_deriv_expr(20, 42));
  EXPECT_EQ(gen_matrix_text(3, 3, 5), gen_matrix_text(3, 3, 5));
}

TEST(Generators, ListParses) {
  Program p;
  const Term* t = p.parse_goal("f(" + gen_int_list(50, 3) + ").");
  ASSERT_TRUE(t->is_struct());
  // Count the list length.
  const Term* cur = t->args[0];
  int n = 0;
  while (cur->is_struct()) {
    ++n;
    cur = cur->args[1];
  }
  EXPECT_EQ(n, 50);
}

TEST(Benchmarks, QsortActuallySorts) {
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  BenchRun r = run_parallel(bp, 4, false);
  ASSERT_TRUE(r.result.success);
  std::string sorted = binding(r.result, "R");
  // Parse the integers back out and verify ordering.
  std::vector<long> vals;
  std::string num;
  for (char c : sorted) {
    if (isdigit(c)) num += c;
    else {
      if (!num.empty()) vals.push_back(std::stol(num));
      num.clear();
    }
  }
  ASSERT_EQ(vals.size(), 30u);
  EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
}

TEST(Benchmarks, TakComputesTakeuchi) {
  // tak(8,5,2): reference value from the standard definition.
  std::function<long(long, long, long)> tak = [&](long x, long y, long z) -> long {
    if (x <= y) return z;
    return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
  };
  BenchProgram bp = bench_program("tak", BenchScale::Small);
  BenchRun r = run_parallel(bp, 4, false);
  ASSERT_TRUE(r.result.success);
  EXPECT_EQ(binding(r.result, "A"), std::to_string(tak(8, 5, 2)));
}

TEST(Benchmarks, MatrixSpotCheck) {
  // 2x2 known product; B passed transposed.
  Program p;
  p.consult(bench_program("matrix", BenchScale::Small).source);
  MachineConfig cfg;
  cfg.num_pes = 2;
  Machine m(p, cfg);
  // A = [[1,2],[3,4]], B^T = [[5,7],[6,8]] (i.e. B = [[5,6],[7,8]])
  RunResult r = m.solve("mmul([[1,2],[3,4]], [[5,7],[6,8]], R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[[19,22],[43,50]]");
}

TEST(Benchmarks, DerivKnownDerivative) {
  Program p;
  p.consult(bench_program("deriv", BenchScale::Small).source);
  MachineConfig cfg;
  cfg.num_pes = 2;
  Machine m(p, cfg);
  RunResult r = m.solve("d(x*x, x, D).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "D"), "+(*(1,x),*(x,1))");
}

TEST(Benchmarks, LargeSuiteRunsSequentially) {
  for (const BenchProgram& bp : large_bench_suite(BenchScale::Small)) {
    BenchRun r = run_wam(bp, false, /*max_solutions=*/100);
    EXPECT_TRUE(r.result.success) << bp.name;
    EXPECT_GT(r.result.stats.instructions, 0u) << bp.name;
  }
}

TEST(Benchmarks, WamRunHasNoParallelActivity) {
  BenchRun r = run_wam(bench_program("deriv", BenchScale::Small), false);
  EXPECT_EQ(r.result.stats.parcalls, 0u);
  EXPECT_EQ(r.result.stats.goals_pushed, 0u);
}

TEST(Reports, Table1HasTwelveRows) {
  std::string t = table1_report().str();
  EXPECT_NE(t.find("Goal Frames"), std::string::npos);
  EXPECT_NE(t.find("Parcall F./Counts"), std::string::npos);
  // 12 object classes, one line each (plus title + header + rule).
  EXPECT_EQ(std::count(t.begin(), t.end(), '\n'), 15);
}

TEST(Reports, Table2SmallScaleSmoke) {
  ReportOptions opt;
  opt.scale = BenchScale::Small;
  opt.table2_pes = 2;
  std::string t = table2_report(opt).str();
  EXPECT_NE(t.find("deriv"), std::string::npos);
  EXPECT_NE(t.find("Instructions executed"), std::string::npos);
  EXPECT_NE(t.find("Goals actually in //"), std::string::npos);
}

TEST(Reports, Fig2SmallScaleShapes) {
  ReportOptions opt;
  opt.scale = BenchScale::Small;
  opt.fig2_pes = {1, 2, 4};
  TextTable t = fig2_report(opt);
  std::string s = t.csv();
  // Three data rows after the header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Reports, Fig4SmallScaleOrdering) {
  ReportOptions opt;
  opt.scale = BenchScale::Small;
  opt.fig4_pes = {1, 2};
  opt.fig4_sizes = {256, 1024};
  opt.pool_threads = 4;
  auto tables = fig4_report(opt);
  ASSERT_EQ(tables.size(), 3u);  // broadcast, hybrid, write-through
  EXPECT_NE(tables[0].str().find("broadcast"), std::string::npos);
  EXPECT_NE(tables[2].str().find("write-thru"), std::string::npos);
}

TEST(Reports, MlipsSmallScale) {
  ReportOptions opt;
  opt.scale = BenchScale::Small;
  std::string t = mlips_report(opt).str();
  EXPECT_NE(t.find("instructions / inference"), std::string::npos);
  EXPECT_NE(t.find("MB/s"), std::string::npos);
}

TEST(Reports, Table3SmallScale) {
  ReportOptions opt;
  opt.scale = BenchScale::Small;
  opt.table3_sizes = {256};
  std::string t = table3_report(opt).str();
  EXPECT_NE(t.find("Etr"), std::string::npos);
}

TEST(Runner, TraceMatchesCounters) {
  BenchRun r = run_parallel(bench_program("deriv", BenchScale::Small), 2, true);
  // Busy-only trace size equals the busy counter.
  EXPECT_EQ(r.trace->size(), r.trace->counts().busy);
  EXPECT_EQ(r.trace->counts().total, r.result.stats.refs.total);
}

}  // namespace
}  // namespace rapwam
