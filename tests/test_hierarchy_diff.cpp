// Differential tests of the two-level hierarchy (cache/hierarchy.h)
// against the flat MultiCacheSim, in the test_cache_diff.cpp /
// test_timing_diff.cpp mould:
//
//   * the degenerate configuration (no L2) is bit-identical to the
//     flat simulator — stats, cache contents and step outcomes — for
//     all five protocols;
//   * a NON-inclusive L2 never touches L1 state, so every bus-side
//     TrafficStats field stays bit-identical to the flat run and only
//     the new l2_*/mem_* counters populate;
//   * an INCLUSIVE L2 maintains the inclusion invariant throughout the
//     replay (every valid L1 line present in the L2), and
//     back-invalidation leaves no stale L1 copies (directory stays
//     consistent, protocol invariants hold);
//   * bus_words always decomposes exactly into its component counters;
//   * the timed replay reproduces the untimed hierarchy's TrafficStats
//     for any timing parameters, and its per-supplier fill counts
//     mirror the traffic counters.
//
// Both randomized traces and a real emulator trace are driven through
// every protocol.
#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.h"
#include "harness/runner.h"
#include "test_rand.h"
#include "timing/timed_replay.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

const Protocol kAllProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

CacheConfig flat_cfg(Protocol p) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = 512;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return cfg;
}

CacheConfig hier_cfg(Protocol p, u32 l2_words, u32 l2_ways,
                     L2Config::Inclusion inc) {
  CacheConfig cfg = flat_cfg(p);
  cfg.l2.size_words = l2_words;
  cfg.l2.ways = l2_ways;
  cfg.l2.inclusion = inc;
  return cfg;
}

/// The exact decomposition of bus_words into its component counters,
/// which every simulator mode must maintain.
void expect_bus_decomposes(const TrafficStats& s, const std::string& what) {
  EXPECT_EQ(s.bus_words, s.fetch_words + s.writeback_words +
                             s.writethrough_words + s.invalidations +
                             s.update_words + s.flush_words +
                             s.l2_back_invalidations +
                             s.l2_back_inval_flush_words)
      << what;
}

/// L2/memory counter self-consistency (any hierarchy mode).
void expect_l2_consistent(const TrafficStats& s, u64 line_words,
                          const std::string& what) {
  // Every memory-side line fill probed the L2 exactly once.
  EXPECT_EQ((s.l2_hits + s.l2_misses) * line_words, s.fetch_words) << what;
  // Every L2 miss fetched exactly one line from memory.
  EXPECT_EQ(s.mem_fetch_words, s.l2_misses * line_words) << what;
  EXPECT_EQ(s.mem_writeback_words % line_words, 0u) << what;
  // Word writes that reached memory are a subset of the words written
  // through / broadcast on the bus.
  EXPECT_LE(s.mem_word_writes, s.writethrough_words + s.update_words) << what;
}

/// Bus-side projection of TrafficStats: the new hierarchy counters
/// zeroed, for equality checks between flat and non-inclusive runs.
TrafficStats bus_side(const TrafficStats& s) {
  TrafficStats o = s;
  o.l2_hits = o.l2_misses = 0;
  o.mem_fetch_words = o.mem_writeback_words = o.mem_word_writes = 0;
  o.l2_back_invalidations = o.l2_back_inval_flush_words = 0;
  return o;
}

void expect_same_lines(const MultiCacheSim& a, const MultiCacheSim& b,
                       const std::string& what) {
  ASSERT_EQ(a.num_caches(), b.num_caches()) << what;
  for (unsigned pe = 0; pe < a.num_caches(); ++pe) {
    std::vector<Line> la = a.cache(pe).lines(), lb = b.cache(pe).lines();
    ASSERT_EQ(la.size(), lb.size()) << what << " pe=" << pe;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].tag, lb[i].tag) << what << " pe=" << pe << " i=" << i;
      EXPECT_EQ(la[i].state, lb[i].state) << what << " pe=" << pe << " i=" << i;
    }
  }
}

// --- degenerate configuration ----------------------------------------------

TEST(HierarchyDiff, NoL2IsBitIdenticalToFlatAllProtocols) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {1u, 2u, 4u, 8u}) {
      std::vector<u64> trace =
          random_trace(0x41E2 + static_cast<u64>(p) * 131 + pes, pes, 20000);
      CacheConfig cfg = flat_cfg(p);
      MultiCacheSim flat(cfg, pes);
      flat.replay(trace);
      HierCacheSim hier(cfg, pes);  // cfg.l2 disabled by default
      hier.replay(trace);

      const std::string what = protocol_name(p) + " pes=" + std::to_string(pes);
      EXPECT_FALSE(hier.l2_enabled()) << what;
      EXPECT_EQ(hier.stats(), flat.stats()) << what;
      expect_same_lines(hier, flat, what);
      EXPECT_TRUE(hier.directory_consistent()) << what;
      expect_bus_decomposes(hier.stats(), what);
    }
  }
}

TEST(HierarchyDiff, NoL2StepOutcomesMatchFlatStep) {
  std::vector<u64> trace = random_trace(0x57E9D, 4, 12000);
  for (Protocol p : kAllProtocols) {
    CacheConfig cfg = flat_cfg(p);
    MultiCacheSim flat(cfg, 4);
    HierCacheSim hier(cfg, 4);
    for (u64 packed : trace) {
      MemRef r = MemRef::unpack(packed);
      StepOutcome a = flat.step(r);
      StepOutcome b = hier.step(r);
      ASSERT_EQ(a.miss, b.miss) << protocol_name(p);
      ASSERT_EQ(a.supplier, b.supplier) << protocol_name(p);
      ASSERT_EQ(a.bus_words, b.bus_words) << protocol_name(p);
      ASSERT_EQ(a.demand_words, b.demand_words) << protocol_name(p);
      ASSERT_EQ(a.posted_words, b.posted_words) << protocol_name(p);
      ASSERT_EQ(a.invalidations, b.invalidations) << protocol_name(p);
    }
    EXPECT_EQ(hier.stats(), flat.stats()) << protocol_name(p);
  }
}

// --- non-inclusive L2 ------------------------------------------------------

TEST(HierarchyDiff, NonInclusiveLeavesBusSideBitIdentical) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {1u, 4u, 8u}) {
      std::vector<u64> trace =
          random_trace(0x202F + static_cast<u64>(p) * 17 + pes, pes, 20000);
      CacheConfig cfg = flat_cfg(p);
      MultiCacheSim flat(cfg, pes);
      flat.replay(trace);
      // Small direct-mapped L2: plenty of L2 conflict evictions, but a
      // non-inclusive L2 must never feed back into L1 behaviour.
      HierCacheSim hier(
          hier_cfg(p, 1024, 1, L2Config::Inclusion::NonInclusive), pes);
      hier.replay(trace);

      const std::string what = protocol_name(p) + " pes=" + std::to_string(pes);
      EXPECT_EQ(bus_side(hier.stats()), flat.stats()) << what;
      EXPECT_EQ(hier.stats().l2_back_invalidations, 0u) << what;
      EXPECT_EQ(hier.stats().l2_back_inval_flush_words, 0u) << what;
      expect_same_lines(hier, flat, what);
      expect_l2_consistent(hier.stats(), cfg.line_words, what);
      expect_bus_decomposes(hier.stats(), what);
      EXPECT_TRUE(hier.directory_consistent()) << what;
      EXPECT_GT(hier.stats().l2_hits, 0u) << what;
      EXPECT_GT(hier.stats().l2_misses, 0u) << what;
    }
  }
}

// --- inclusive L2 ----------------------------------------------------------

TEST(HierarchyDiff, InclusionInvariantHoldsThroughoutReplay) {
  for (Protocol p : kAllProtocols) {
    // Small 2-way L2 barely bigger than one L1: back-invalidation fires
    // constantly. Check the invariants repeatedly DURING the replay,
    // not just at the end.
    HierCacheSim hier(hier_cfg(p, 1024, 2, L2Config::Inclusion::Inclusive), 8);
    std::vector<u64> trace = random_trace(0x1AC + static_cast<u64>(p), 8, 20000);
    std::size_t i = 0;
    for (u64 packed : trace) {
      hier.access(MemRef::unpack(packed));
      if (++i % 1000 == 0) {
        ASSERT_TRUE(hier.inclusion_ok()) << protocol_name(p) << " at " << i;
        ASSERT_TRUE(hier.directory_consistent()) << protocol_name(p) << " at " << i;
        // Hybrid tolerates conflicting local-tagged dirty copies on
        // violation traces (counted, not prevented) — same exclusion
        // as test_cache_diff.
        if (p != Protocol::Hybrid)
          ASSERT_TRUE(hier.invariants_ok()) << protocol_name(p) << " at " << i;
      }
    }
    const std::string what = protocol_name(p);
    EXPECT_TRUE(hier.inclusion_ok()) << what;
    EXPECT_TRUE(hier.directory_consistent()) << what;
    EXPECT_GT(hier.stats().l2_back_invalidations, 0u) << what;
    expect_l2_consistent(hier.stats(), 4, what);
    expect_bus_decomposes(hier.stats(), what);
  }
}

TEST(HierarchyDiff, BackInvalidationLeavesNoStaleL1Copies) {
  // Direct-mapped tiny L2 under an 8-PE shared hot set: the harshest
  // back-invalidation pressure. After every single reference, no L1
  // may hold a line the L2 does not (inclusive), and the directory
  // must mirror the caches exactly.
  for (Protocol p : {Protocol::WriteInBroadcast, Protocol::WriteThroughBroadcast,
                     Protocol::Copyback}) {
    HierCacheSim hier(hier_cfg(p, 512, 1, L2Config::Inclusion::Inclusive), 8);
    std::vector<u64> trace = random_trace(0xBAC0 + static_cast<u64>(p), 8, 4000);
    for (u64 packed : trace) {
      hier.access(MemRef::unpack(packed));
      ASSERT_TRUE(hier.inclusion_ok()) << protocol_name(p);
      ASSERT_TRUE(hier.directory_consistent()) << protocol_name(p);
    }
    EXPECT_GT(hier.stats().l2_back_invalidations, 0u) << protocol_name(p);
  }
}

TEST(HierarchyDiff, CapaciousInclusiveL2NeverBackInvalidates) {
  // A fully-associative L2 big enough for the whole working set never
  // evicts, so inclusion costs nothing and the bus side matches flat.
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0xB16 + static_cast<u64>(p), 8, 20000);
    CacheConfig cfg = flat_cfg(p);
    MultiCacheSim flat(cfg, 8);
    flat.replay(trace);
    HierCacheSim hier(hier_cfg(p, 1u << 17, 0, L2Config::Inclusion::Inclusive), 8);
    hier.replay(trace);
    const std::string what = protocol_name(p);
    EXPECT_EQ(hier.stats().l2_back_invalidations, 0u) << what;
    EXPECT_EQ(hier.stats().mem_writeback_words, 0u) << what;  // nothing evicted
    EXPECT_EQ(bus_side(hier.stats()), flat.stats()) << what;
    EXPECT_TRUE(hier.inclusion_ok()) << what;
    // With no capacity pressure, each distinct line misses to memory
    // exactly once; everything else the memory side sees is an L2 hit.
    EXPECT_LT(hier.stats().mem_traffic_ratio(), hier.stats().traffic_ratio())
        << what;
  }
}

TEST(HierarchyDiff, RejectsBadL2Geometry) {
  CacheConfig cfg = flat_cfg(Protocol::WriteInBroadcast);
  cfg.l2.size_words = 1026;  // not a multiple of the 4-word line
  EXPECT_THROW(HierCacheSim(cfg, 4), Error);
  cfg.l2.size_words = 1024;
  cfg.l2.ways = 3;  // 256 lines not divisible by 3 ways
  EXPECT_THROW(HierCacheSim(cfg, 4), Error);
}

// --- real emulator trace ---------------------------------------------------

TEST(HierarchyDiff, RealTraceAllProtocolsBothInclusionPolicies) {
  ChunkingSink sink(/*busy_only=*/true);
  run_into(bench_program("qsort", BenchScale::Small), 4, /*strip=*/false, &sink);
  std::shared_ptr<const ChunkedTrace> trace = sink.take();
  ASSERT_GT(trace->size(), 0u);

  for (Protocol p : kAllProtocols) {
    CacheConfig cfg = flat_cfg(p);
    cfg.size_words = 1024;
    cfg.write_allocate = paper_write_allocate(p, cfg.size_words);
    MultiCacheSim flat(cfg, 4);
    flat.replay(*trace);

    for (L2Config::Inclusion inc : {L2Config::Inclusion::Inclusive,
                                    L2Config::Inclusion::NonInclusive}) {
      CacheConfig hc = cfg;
      hc.l2.size_words = 4096;
      hc.l2.ways = 4;
      hc.l2.inclusion = inc;
      HierCacheSim hier(hc, 4);
      hier.replay(*trace);
      const std::string what = protocol_name(p) + " " + inclusion_name(inc);
      EXPECT_EQ(hier.stats().refs, flat.stats().refs) << what;
      expect_l2_consistent(hier.stats(), cfg.line_words, what);
      expect_bus_decomposes(hier.stats(), what);
      EXPECT_TRUE(hier.inclusion_ok()) << what;
      EXPECT_TRUE(hier.directory_consistent()) << what;
      // The L2 must capture some of the memory traffic.
      EXPECT_LT(hier.stats().mem_words(), hier.stats().bus_words) << what;
      if (inc == L2Config::Inclusion::NonInclusive)
        EXPECT_EQ(bus_side(hier.stats()), flat.stats()) << what;
    }
  }
}

// --- timed hierarchy -------------------------------------------------------

TEST(HierarchyDiff, TimedReplayMatchesUntimedHierForAnyParams) {
  const TimingParams params[] = {
      TimingParams::zero_cost(), {1, 1, 2, 4, 0}, {2, 3, 1, 0, 7}, {1, 8, 4, 16, 20}};
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0x7D0 + static_cast<u64>(p), 8, 20000);
    for (L2Config::Inclusion inc : {L2Config::Inclusion::Inclusive,
                                    L2Config::Inclusion::NonInclusive}) {
      CacheConfig cfg = hier_cfg(p, 2048, 4, inc);
      cfg.l2.hit_extra_cycles = 3;
      HierCacheSim untimed(cfg, 8);
      untimed.replay(trace);
      for (const TimingParams& tp : params) {
        TimedReplay timed(cfg, 8, tp);
        timed.replay(trace);
        EXPECT_EQ(timed.traffic(), untimed.stats())
            << protocol_name(p) << " " << inclusion_name(inc)
            << " svc=" << tp.bus_service_cycles;
      }
    }
  }
}

TEST(HierarchyDiff, TimedFillCountsMirrorTrafficCounters) {
  std::vector<u64> trace = random_trace(0xF111, 8, 20000);
  for (Protocol p : kAllProtocols) {
    CacheConfig cfg = hier_cfg(p, 2048, 4, L2Config::Inclusion::Inclusive);
    TimedReplay timed(cfg, 8, TimingParams{1, 1, 2, 4, 0});
    timed.replay(trace);
    TimingStats ts = timed.timing();
    const TrafficStats& s = timed.traffic();
    const std::string what = protocol_name(p);
    // With a non-zero bus service time every demand fill books a bus
    // transaction, so the per-supplier counts match traffic exactly.
    EXPECT_EQ(ts.l2_fills, s.l2_hits) << what;
    EXPECT_EQ(ts.mem_fills, s.l2_misses) << what;
    EXPECT_EQ(ts.cache_fills * cfg.line_words, s.flush_words) << what;
  }
}

TEST(HierarchyDiff, SlowerMemoryNeverShortensTheRun) {
  std::vector<u64> trace = random_trace(0x51074, 8, 20000);
  CacheConfig cfg =
      hier_cfg(Protocol::WriteInBroadcast, 4096, 4, L2Config::Inclusion::Inclusive);
  cfg.l2.hit_extra_cycles = 2;
  u64 prev = 0;
  for (u32 mem_extra : {0u, 10u, 40u}) {
    TimingParams tp{1, 1, 2, 4, mem_extra};
    TimedReplay timed(cfg, 8, tp);
    timed.replay(trace);
    u64 makespan = timed.timing().makespan;
    EXPECT_GE(makespan, prev) << "mem_extra=" << mem_extra;
    prev = makespan;
    for (const PeTiming& pt : timed.timing().pe)
      EXPECT_EQ(pt.clock, pt.busy_cycles + pt.stall_cycles)
          << "mem_extra=" << mem_extra;
  }
}

TEST(HierarchyDiff, FillLatencyAppliesEvenOnAFreeBus) {
  // The per-fill extras model the device behind the bus, so a free
  // (bus_service_cycles == 0) bus does not waive them: every memory
  // fill stalls the PE mem_extra cycles, exactly.
  std::vector<u64> trace = random_trace(0xFEEB, 4, 10000);
  CacheConfig cfg = flat_cfg(Protocol::WriteInBroadcast);
  TimedReplay timed(cfg, 4, TimingParams{1, 0, 1, 0, 100});
  timed.replay(trace);
  TimingStats ts = timed.timing();
  EXPECT_GT(ts.mem_fills, 0u);
  EXPECT_EQ(ts.bus_busy_cycles, 0u);  // the bus itself stays free
  EXPECT_EQ(ts.total_stall(), ts.mem_fills * 100);
  for (const PeTiming& pt : ts.pe)
    EXPECT_EQ(pt.clock, pt.busy_cycles + pt.stall_cycles);
}

TEST(HierarchyDiff, L2LatencyBelowMemoryLatencyHelps) {
  // Same traffic; a fill served in 2 cycles from the L2 instead of 30
  // from memory must not make the run longer than the flat memory-only
  // configuration at the same memory latency.
  std::vector<u64> trace = random_trace(0xFA57, 8, 20000);
  CacheConfig flat = flat_cfg(Protocol::WriteInBroadcast);
  CacheConfig hier =
      hier_cfg(Protocol::WriteInBroadcast, 1u << 17, 0, L2Config::Inclusion::Inclusive);
  hier.l2.hit_extra_cycles = 2;
  TimingParams tp{1, 1, 2, 4, 30};
  TimedReplay slow(flat, 8, tp);
  TimedReplay fast(hier, 8, tp);
  slow.replay(trace);
  fast.replay(trace);
  EXPECT_LT(fast.timing().makespan, slow.timing().makespan);
  EXPECT_GT(fast.timing().l2_fills, 0u);
}

}  // namespace
}  // namespace rapwam
