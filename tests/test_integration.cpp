// Whole-system integration scenarios combining the prelude library,
// conditional CGEs, cut, meta-call, univ, and the trace/cache pipeline
// end to end — the kind of program a downstream user would write.
#include <gtest/gtest.h>

#include "cache/multisim.h"
#include "cache/queueing.h"
#include "harness/library.h"
#include "harness/runner.h"

namespace rapwam {
namespace {

std::string binding(const RunResult& r, const std::string& var, std::size_t i = 0) {
  for (auto& [n, v] : r.solutions.at(i).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

// A small route planner: finds all paths in a DAG, costs them in
// parallel (ground inputs checked by the CGE), and picks the cheapest.
const char* kPlanner = R"PL(
edge(a, b, 3). edge(a, c, 1).
edge(b, d, 2). edge(c, d, 5).
edge(b, e, 4). edge(d, e, 1).

path(X, X, [X]).
path(X, Z, [X|P]) :- edge(X, Y, _), path(Y, Z, P).

cost([_], 0).
cost([X,Y|P], C) :- edge(X, Y, W), cost([Y|P], C1), C is C1 + W.

% Cost two candidate routes in parallel when both are ground.
cost2(P1, P2, C1, C2) :-
    (ground(P1), ground(P2) | cost(P1, C1) & cost(P2, C2)).

best(From, To, Best-Cost) :-
    findall_paths(From, To, Ps),
    rank(Ps, Best-Cost).

% Poor man's findall via repeated deepening over path lengths (the
% engine has no assert; enumerate with between/3 + length).
findall_paths(F, T, Ps) :- collect(F, T, 2, 5, [], Ps).
collect(_, _, N, Max, Acc, Ps) :- N > Max, !, reverse(Acc, Ps).
collect(F, T, N, Max, Acc, Ps) :-
    ( length(P, N), path(F, T, P) -> Acc1 = [P|Acc] ; Acc1 = Acc ),
    N1 is N + 1,
    collect(F, T, N1, Max, Acc1, Ps).

rank([P], P-C) :- !, cost(P, C).
rank([P1, P2 | Rest], Best) :-
    cost2(P1, P2, C1, C2),
    ( C1 =< C2 -> rank([P1 | Rest], Best0), keep(P1-C1, Best0, Best)
    ; rank([P2 | Rest], Best0), keep(P2-C2, Best0, Best) ).
keep(P-C, _-C0, P-C) :- C =< C0, !.
keep(_, B, B).
)PL";

TEST(Integration, RoutePlannerAcrossPECounts) {
  for (unsigned pes : {1u, 2u, 4u}) {
    Program prog;
    prog.consult(kPreludeSource);
    prog.consult(kPlanner);
    MachineConfig cfg;
    cfg.num_pes = pes;
    Machine m(prog, cfg);
    RunResult r = m.solve("best(a, e, B).");
    ASSERT_TRUE(r.success) << pes;
    // Cheapest a->e: a-c-d-e would be 1+5+1=7; a-b-d-e is 3+2+1=6;
    // a-b-e is 3+4=7. Best is a,b,d,e at cost 6.
    EXPECT_EQ(binding(r, "B"), "-([a,b,d,e],6)") << pes;
  }
}

TEST(Integration, PlannerTraceDrivesCachePipeline) {
  Program prog;
  prog.consult(kPreludeSource);
  prog.consult(kPlanner);
  MachineConfig cfg;
  cfg.num_pes = 4;
  Machine m(prog, cfg);
  TraceBuffer trace(true);
  RunResult r = m.solve("best(a, e, B).", &trace);
  ASSERT_TRUE(r.success);
  ASSERT_GT(trace.size(), 1000u);

  CacheConfig cc;
  cc.protocol = Protocol::WriteInBroadcast;
  cc.size_words = 512;
  cc.line_words = 4;
  MultiCacheSim sim(cc, 4);
  sim.replay(trace.packed());
  EXPECT_TRUE(sim.invariants_ok());
  double traffic = sim.stats().traffic_ratio();
  EXPECT_GT(traffic, 0.0);
  EXPECT_LT(traffic, 1.5);

  // ... and into the contention model.
  BusEstimate be = bus_contention(4, traffic, BusParams{0.5});
  EXPECT_GT(be.pe_efficiency, 0.2);
  EXPECT_LE(be.pe_efficiency, 1.0);
}

TEST(Integration, MetaInterpreterRunsOnTheEngine) {
  // A vanilla Prolog meta-interpreter using univ + call: solves goals
  // against an object program encoded as rule/2 facts.
  const char* kMeta = R"PL(
    rule(app([], L, L), true).
    rule(app([X|Xs], L, [X|Ys]), app(Xs, L, Ys)).

    solve(true) :- !.
    solve((A, B)) :- !, solve(A), solve(B).
    solve(G) :- rule(G, Body), solve(Body).
  )PL";
  Program prog;
  prog.consult(kMeta);
  MachineConfig cfg;
  Machine m(prog, cfg);
  RunResult r = m.solve("solve(app([1,2], [3], R)).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[1,2,3]");
}

TEST(Integration, DataStructureHeavyProgram) {
  // Binary search tree build + in-order flatten, with parallel
  // flattening of the two subtrees (independent once the tree is
  // ground).
  const char* kBst = R"PL(
    insert(X, leaf, node(leaf, X, leaf)).
    insert(X, node(L, Y, R), node(L1, Y, R)) :- X < Y, !, insert(X, L, L1).
    insert(X, node(L, Y, R), node(L, Y, R1)) :- insert(X, R, R1).

    build([], T, T).
    build([X|Xs], T0, T) :- insert(X, T0, T1), build(Xs, T1, T).

    flatten(leaf, []).
    flatten(node(L, X, R), Out) :-
        (ground(L), ground(R) | flatten(L, FL) & flatten(R, FR)),
        append(FL, [X|FR], Out).
  )PL";
  Program prog;
  prog.consult(kPreludeSource);
  prog.consult(kBst);
  MachineConfig cfg;
  cfg.num_pes = 4;
  Machine m(prog, cfg);
  RunResult r =
      m.solve("build([5,3,8,1,4,9,2,7,6], leaf, T), flatten(T, L).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "L"), "[1,2,3,4,5,6,7,8,9]");
  EXPECT_GT(r.stats.parcalls, 0u);
}

TEST(Integration, SameAnswersWithTracingEnabled) {
  // Attaching a trace sink must not perturb execution.
  Program prog;
  prog.consult(kPreludeSource);
  MachineConfig cfg;
  cfg.num_pes = 2;
  Machine m(prog, cfg);
  TraceBuffer buf(false);
  RunResult with = m.solve("msort([4,1,3,2], S).", &buf);
  RunResult without = m.solve("msort([4,1,3,2], S).");
  EXPECT_EQ(binding(with, "S"), binding(without, "S"));
  EXPECT_EQ(with.stats.instructions, without.stats.instructions);
  EXPECT_EQ(buf.counts().total, with.stats.refs.total);
}

}  // namespace
}  // namespace rapwam
