// Layout tests: address <-> (PE, area) mapping, block geometry, and
// the engine cell encoding.
#include <gtest/gtest.h>

#include "engine/cell.h"
#include "engine/layout.h"
#include "trace/memref.h"

namespace rapwam {
namespace {

TEST(Layout, AreasArePackedAndDisjoint) {
  AreaSizes sz;
  Layout l(4, sz);
  for (unsigned pe = 0; pe < 4; ++pe) {
    u64 prev_end = pe * l.block_size();
    for (std::size_t a = 0; a < kAreaCount; ++a) {
      Area area = static_cast<Area>(a);
      EXPECT_EQ(l.base(pe, area), prev_end);
      EXPECT_EQ(l.limit(pe, area) - l.base(pe, area), l.size_of(area));
      prev_end = l.limit(pe, area);
    }
    EXPECT_EQ(prev_end, (pe + 1) * l.block_size());
  }
}

TEST(Layout, AreaOfRoundTrips) {
  AreaSizes sz;
  Layout l(3, sz);
  for (unsigned pe = 0; pe < 3; ++pe) {
    for (std::size_t a = 0; a < kAreaCount; ++a) {
      Area area = static_cast<Area>(a);
      u64 first = l.base(pe, area);
      u64 last = l.limit(pe, area) - 1;
      EXPECT_EQ(l.area_of(first), area);
      EXPECT_EQ(l.area_of(last), area);
      EXPECT_EQ(l.pe_of(first), pe);
      EXPECT_EQ(l.pe_of(last), pe);
      EXPECT_TRUE(l.in_area(first, pe, area));
      EXPECT_FALSE(l.in_area(first, (pe + 1) % 3, area));
    }
  }
}

TEST(Layout, TotalWords) {
  AreaSizes sz;
  Layout l(8, sz);
  EXPECT_EQ(l.total_words(), 8 * sz.total());
}

TEST(Layout, RejectsBadPeCounts) {
  AreaSizes sz;
  EXPECT_THROW(Layout(0, sz), Error);
  // The emulator is bounded by the trace format's 8-bit PE id, not the
  // simulator's (larger) directory cap.
  EXPECT_THROW(Layout(kMaxTracePes + 1, sz), Error);
  EXPECT_NO_THROW(Layout(kMaxTracePes, sz));
}

TEST(Cell, TagsRoundTrip) {
  u64 r = make_ref(0x123456789);
  EXPECT_EQ(cell_tag(r), Tag::Ref);
  EXPECT_EQ(cell_val(r), 0x123456789u);

  u64 s = make_str(42);
  EXPECT_EQ(cell_tag(s), Tag::Str);
  u64 lcell = make_lis(7);
  EXPECT_EQ(cell_tag(lcell), Tag::Lis);
  u64 c = make_con(99);
  EXPECT_EQ(cell_tag(c), Tag::Con);
  EXPECT_EQ(cell_val(c), 99u);
}

TEST(Cell, IntegersSignExtend) {
  EXPECT_EQ(int_val(make_int(0)), 0);
  EXPECT_EQ(int_val(make_int(123456789)), 123456789);
  EXPECT_EQ(int_val(make_int(-1)), -1);
  EXPECT_EQ(int_val(make_int(-123456789012345)), -123456789012345);
  i64 big = (i64(1) << 54);
  EXPECT_EQ(int_val(make_int(big)), big);
  EXPECT_EQ(int_val(make_int(-big)), -big);
}

TEST(Cell, FunctorCells) {
  u64 f = make_fun(1234, 7);
  EXPECT_EQ(cell_tag(f), Tag::Fun);
  EXPECT_EQ(fun_name(f), 1234u);
  EXPECT_EQ(fun_arity(f), 7u);
  u64 g = make_fun(0xFFFFF, 0xFFFF);
  EXPECT_EQ(fun_name(g), 0xFFFFFu);
  EXPECT_EQ(fun_arity(g), 0xFFFFu);
}

TEST(Cell, DistinctTagsNeverCollide) {
  u64 v = 0x1234;
  u64 cells[] = {make_ref(v), make_str(v), make_lis(v), make_con(static_cast<u32>(v)),
                 make_int(static_cast<i64>(v)), make_fun(static_cast<u32>(v), 2),
                 make_raw(v)};
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = i + 1; j < 7; ++j) EXPECT_NE(cells[i], cells[j]);
}

}  // namespace
}  // namespace rapwam
