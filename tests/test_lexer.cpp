// Tokenizer unit tests.
#include <gtest/gtest.h>

#include "prolog/lexer.h"

namespace rapwam {
namespace {

std::vector<Token> lex(const std::string& s) { return Lexer(s).all(); }

TEST(Lexer, SimpleClause) {
  auto t = lex("foo(X, bar).");
  ASSERT_GE(t.size(), 7u);
  EXPECT_EQ(t[0].kind, TokKind::Atom);
  EXPECT_EQ(t[0].text, "foo");
  EXPECT_TRUE(t[0].functor_paren);
  EXPECT_EQ(t[1].text, "(");
  EXPECT_EQ(t[2].kind, TokKind::Var);
  EXPECT_EQ(t[2].text, "X");
  EXPECT_EQ(t[3].text, ",");
  EXPECT_EQ(t[4].text, "bar");
  EXPECT_FALSE(t[4].functor_paren);
  EXPECT_EQ(t[6].kind, TokKind::End);
  EXPECT_EQ(t.back().kind, TokKind::Eof);
}

TEST(Lexer, Integers) {
  auto t = lex("42.");
  EXPECT_EQ(t[0].kind, TokKind::Int);
  EXPECT_EQ(t[0].value, 42);
}

TEST(Lexer, SymbolicAtoms) {
  auto t = lex("X =< Y.");
  EXPECT_EQ(t[1].kind, TokKind::Atom);
  EXPECT_EQ(t[1].text, "=<");
}

TEST(Lexer, NeckOperator) {
  auto t = lex("a :- b.");
  EXPECT_EQ(t[1].text, ":-");
}

TEST(Lexer, PeriodInsideSymbolicVsEnd) {
  auto t = lex("a. b.");
  EXPECT_EQ(t[1].kind, TokKind::End);
  EXPECT_EQ(t[2].text, "b");
}

TEST(Lexer, QuotedAtomWithEscapesAndDoubling) {
  auto t = lex("'hello world'. 'don''t'. 'a\\nb'.");
  EXPECT_EQ(t[0].text, "hello world");
  EXPECT_EQ(t[2].text, "don't");
  EXPECT_EQ(t[4].text, "a\nb");
}

TEST(Lexer, EmptyListAndBraces) {
  auto t = lex("[]. {}.");
  EXPECT_EQ(t[0].kind, TokKind::Atom);
  EXPECT_EQ(t[0].text, "[]");
  EXPECT_EQ(t[2].text, "{}");
}

TEST(Lexer, ListPunctuation) {
  auto t = lex("[a|T].");
  EXPECT_EQ(t[0].text, "[");
  EXPECT_EQ(t[2].text, "|");
  EXPECT_EQ(t[4].text, "]");
}

TEST(Lexer, CommentsSkipped) {
  auto t = lex("a. % line comment\n/* block\ncomment */ b.");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[2].text, "b");
}

TEST(Lexer, CutAndSemicolon) {
  auto t = lex("! ; x.");
  EXPECT_EQ(t[0].text, "!");
  EXPECT_EQ(t[0].kind, TokKind::Atom);
  EXPECT_EQ(t[1].text, ";");
}

TEST(Lexer, AnonymousAndUnderscoreVars) {
  auto t = lex("_ _Foo.");
  EXPECT_EQ(t[0].kind, TokKind::Var);
  EXPECT_EQ(t[0].text, "_");
  EXPECT_EQ(t[1].text, "_Foo");
}

TEST(Lexer, ParallelAnnotations) {
  auto t = lex("(a & b).");
  EXPECT_EQ(t[2].text, "&");
  EXPECT_EQ(t[2].kind, TokKind::Atom);
}

TEST(Lexer, ErrorsCarryLineInfo) {
  try {
    lex("a.\n\"bad");
    FAIL() << "expected syntax error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Lexer, UnterminatedQuoteThrows) {
  EXPECT_THROW(lex("'abc"), Error);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("/* abc"), Error);
}

}  // namespace
}  // namespace rapwam
