// Tests for the Prolog prelude library (src/harness/library.h).
#include <gtest/gtest.h>

#include "engine/machine.h"
#include "harness/library.h"

namespace rapwam {
namespace {

struct Env {
  Program prog;
  std::unique_ptr<Machine> m;
  explicit Env(const std::string& extra = "", unsigned pes = 1,
               unsigned max_sols = 1) {
    prog.consult(kPreludeSource);
    if (!extra.empty()) prog.consult(extra);
    MachineConfig cfg;
    cfg.num_pes = pes;
    cfg.max_solutions = max_sols;
    m = std::make_unique<Machine>(prog, cfg);
  }
  RunResult run(const std::string& goal) { return m->solve(goal); }
};

std::string binding(const RunResult& r, const std::string& var, std::size_t i = 0) {
  for (auto& [n, v] : r.solutions.at(i).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

TEST(Library, AppendMemberLength) {
  Env e;
  EXPECT_EQ(binding(e.run("append([1,2],[3],R)."), "R"), "[1,2,3]");
  EXPECT_TRUE(e.run("member(2, [1,2,3]).").success);
  EXPECT_FALSE(e.run("member(9, [1,2,3]).").success);
  EXPECT_EQ(binding(e.run("length([a,b,c,d], N)."), "N"), "4");
  EXPECT_EQ(binding(e.run("length([], N)."), "N"), "0");
}

TEST(Library, MemberchkIsDeterministic) {
  Env e("", 1, 10);
  RunResult r = e.run("memberchk(2, [1,2,2,2]).");
  EXPECT_EQ(r.solutions.size(), 1u);
}

TEST(Library, ReverseNthLast) {
  Env e;
  EXPECT_EQ(binding(e.run("reverse([1,2,3], R)."), "R"), "[3,2,1]");
  EXPECT_EQ(binding(e.run("nth0(1, [a,b,c], X)."), "X"), "b");
  EXPECT_EQ(binding(e.run("nth1(1, [a,b,c], X)."), "X"), "a");
  EXPECT_EQ(binding(e.run("last([a,b,c], X)."), "X"), "c");
  EXPECT_FALSE(e.run("nth0(5, [a], _).").success);
}

TEST(Library, ListArithmetic) {
  Env e;
  EXPECT_EQ(binding(e.run("sum_list([1,2,3,4], S)."), "S"), "10");
  EXPECT_EQ(binding(e.run("max_list([3,9,2], M)."), "M"), "9");
  EXPECT_EQ(binding(e.run("min_list([3,9,2], M)."), "M"), "2");
}

TEST(Library, BetweenEnumerates) {
  Env e("", 1, 10);
  RunResult r = e.run("between(1, 4, X).");
  ASSERT_EQ(r.solutions.size(), 4u);
  EXPECT_EQ(binding(r, "X", 0), "1");
  EXPECT_EQ(binding(r, "X", 3), "4");
  EXPECT_FALSE(e.run("between(3, 1, _).").success);
}

TEST(Library, Numlist) {
  Env e;
  EXPECT_EQ(binding(e.run("numlist(2, 6, L)."), "L"), "[2,3,4,5,6]");
  EXPECT_EQ(binding(e.run("numlist(3, 2, L)."), "L"), "[]");
}

TEST(Library, MsortKeepsDuplicatesSortRemoves) {
  Env e;
  EXPECT_EQ(binding(e.run("msort([3,1,2,1], S)."), "S"), "[1,1,2,3]");
  EXPECT_EQ(binding(e.run("sort([3,1,2,1], S)."), "S"), "[1,2,3]");
  EXPECT_EQ(binding(e.run("msort([b,a,f(2),f(1),10], S)."), "S"),
            "[10,a,b,f(1),f(2)]");
}

TEST(Library, SelectAndDelete) {
  Env e("", 1, 10);
  RunResult r = e.run("select(X, [1,2,3], R).");
  ASSERT_EQ(r.solutions.size(), 3u);
  EXPECT_EQ(binding(r, "R", 0), "[2,3]");
  EXPECT_EQ(binding(e.run("delete([1,2,1,3], 1, R)."), "R"), "[2,3]");
}

TEST(Library, MaplistViaUniv) {
  Env e("even(X) :- X mod 2 =:= 0.");
  EXPECT_TRUE(e.run("maplist1(even, [2,4,6]).").success);
  EXPECT_FALSE(e.run("maplist1(even, [2,3]).").success);
}

TEST(Library, ParMapMatchesSequentialMap) {
  Env e2("double(X, Y) :- Y is X * 2.", 4);
  RunResult r = e2.run("par_map(double, [1,2,3,4,5,6,7,8], R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[2,4,6,8,10,12,14,16]");
}

TEST(Library, ParMapUsesParallelism) {
  Env e("slowid(X, X) :- numlist(1, 50, L), sum_list(L, _).", 8);
  RunResult r = e.run("par_map(slowid, [a,b,c,d,e,f,g,h], R).");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[a,b,c,d,e,f,g,h]");
  EXPECT_GT(r.stats.parcalls, 0u);
}

TEST(Library, WorksAtManyPECounts) {
  for (unsigned pes : {1u, 2u, 8u}) {
    Env e("sq(X, Y) :- Y is X * X.", pes);
    RunResult r = e.run("numlist(1, 6, L), par_map(sq, L, R), sum_list(R, S).");
    ASSERT_TRUE(r.success) << pes;
    EXPECT_EQ(binding(r, "S"), "91") << pes;  // 1+4+9+16+25+36
  }
}

}  // namespace
}  // namespace rapwam
