// Normaliser tests: flattening, lifting of control constructs, CGE
// recognition, builtin identification, strip mode.
#include <gtest/gtest.h>

#include "compiler/analyze.h"

namespace rapwam {
namespace {

const std::vector<NClause>& clauses_for(NormalizedProgram& np, Program& p,
                                        const std::string& name, u32 arity) {
  return np.preds.at(p.pred_id(name, arity));
}

TEST(Normalize, FlattensConjunction) {
  Program p;
  p.consult("a :- b, c, d. b. c. d.");
  auto np = normalize(p, false);
  const auto& cs = clauses_for(np, p, "a", 0);
  ASSERT_EQ(cs[0].body.size(), 3u);
  EXPECT_EQ(cs[0].body[0].kind, NGoal::Kind::Call);
}

TEST(Normalize, TrueDisappears) {
  Program p;
  p.consult("a :- true, b, true. b.");
  auto np = normalize(p, false);
  EXPECT_EQ(clauses_for(np, p, "a", 0)[0].body.size(), 1u);
}

TEST(Normalize, RecognisesBuiltins) {
  Program p;
  p.consult("a(X,Y) :- X is Y + 1, X < 3, X == Y.");
  auto np = normalize(p, false);
  const auto& b = clauses_for(np, p, "a", 2)[0].body;
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].kind, NGoal::Kind::Builtin);
  EXPECT_EQ(b[0].bid, BuiltinId::Is);
  EXPECT_EQ(b[1].bid, BuiltinId::LessThan);
  EXPECT_EQ(b[2].bid, BuiltinId::StructEq);
}

TEST(Normalize, CutBecomesCutGoal) {
  Program p;
  p.consult("a :- !, b. b.");
  auto np = normalize(p, false);
  EXPECT_EQ(clauses_for(np, p, "a", 0)[0].body[0].kind, NGoal::Kind::Cut);
}

TEST(Normalize, LiftsDisjunction) {
  Program p;
  p.consult("a(X) :- (p(X) ; q(X)). p(1). q(2).");
  auto np = normalize(p, false);
  const auto& b = clauses_for(np, p, "a", 1)[0].body;
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].kind, NGoal::Kind::Call);
  // The lifted predicate has two clauses over the shared variable.
  const auto& aux = np.preds.at(b[0].pred);
  EXPECT_EQ(aux.size(), 2u);
  EXPECT_EQ(b[0].pred.arity, 1u);
}

TEST(Normalize, LiftsIfThenElseWithLocalCut) {
  Program p;
  p.consult("a(X,R) :- (X < 3 -> R = small ; R = big).");
  auto np = normalize(p, false);
  const auto& b = clauses_for(np, p, "a", 2)[0].body;
  ASSERT_EQ(b.size(), 1u);
  const auto& aux = np.preds.at(b[0].pred);
  ASSERT_EQ(aux.size(), 2u);
  // First aux clause: condition, cut, then-branch.
  ASSERT_EQ(aux[0].body.size(), 3u);
  EXPECT_EQ(aux[0].body[1].kind, NGoal::Kind::Cut);
}

TEST(Normalize, LiftsNegationAsFailure) {
  Program p;
  p.consult("a(X) :- \\+ p(X). p(1).");
  auto np = normalize(p, false);
  const auto& b = clauses_for(np, p, "a", 1)[0].body;
  const auto& aux = np.preds.at(b[0].pred);
  ASSERT_EQ(aux.size(), 2u);
  // aux :- p(X), !, fail.   aux.
  ASSERT_EQ(aux[0].body.size(), 3u);
  EXPECT_EQ(aux[0].body[2].bid, BuiltinId::Fail);
  EXPECT_TRUE(aux[1].body.empty());
}

TEST(Normalize, UnconditionalParcall) {
  Program p;
  p.consult("a(X,Y) :- p(X) & q(Y). p(1). q(1).");
  auto np = normalize(p, false);
  const auto& b = clauses_for(np, p, "a", 2)[0].body;
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].kind, NGoal::Kind::Parcall);
  EXPECT_TRUE(b[0].conds.empty());
  EXPECT_FALSE(b[0].sequentialized);
  ASSERT_EQ(b[0].pgoals.size(), 2u);
  EXPECT_EQ(b[0].pgoals[0].kind, NGoal::Kind::Call);
}

TEST(Normalize, FlattensNestedAmp) {
  Program p;
  p.consult("a :- p & q & r. p. q. r.");
  auto np = normalize(p, false);
  EXPECT_EQ(clauses_for(np, p, "a", 0)[0].body[0].pgoals.size(), 3u);
}

TEST(Normalize, ConditionalCGE) {
  Program p;
  p.consult("f(X,Y,Z) :- (indep(X,Z), ground(Y) | g(X,Y) & h(Y,Z)). g(1,1). h(1,1).");
  auto np = normalize(p, false);
  const auto& b = clauses_for(np, p, "f", 3)[0].body;
  ASSERT_EQ(b.size(), 1u);
  ASSERT_EQ(b[0].conds.size(), 2u);
  EXPECT_TRUE(b[0].conds[0].indep);
  EXPECT_FALSE(b[0].conds[1].indep);
  EXPECT_EQ(b[0].pgoals.size(), 2u);
}

TEST(Normalize, BadCGEConditionRejected) {
  Program p;
  p.consult("f(X) :- (p(X) | g(X) & h(X)). g(1). h(1). p(1).");
  EXPECT_THROW(normalize(p, false), Error);
}

TEST(Normalize, BuiltinInParallelPositionIsLifted) {
  Program p;
  p.consult("a(X,Y) :- (X = 1) & p(Y). p(2).");
  auto np = normalize(p, false);
  const auto& pc = clauses_for(np, p, "a", 2)[0].body[0];
  ASSERT_EQ(pc.pgoals.size(), 2u);
  // Both parallel goals must be plain calls after lifting.
  EXPECT_EQ(pc.pgoals[0].kind, NGoal::Kind::Call);
  EXPECT_EQ(pc.pgoals[1].kind, NGoal::Kind::Call);
}

TEST(Normalize, StripModeSequentializes) {
  Program p;
  p.consult("a(X,Y) :- p(X) & q(Y). p(1). q(1).");
  auto np = normalize(p, true);
  const auto& b = clauses_for(np, p, "a", 2)[0].body;
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(b[0].sequentialized);
  EXPECT_TRUE(b[0].conds.empty());
}

TEST(Normalize, VariableGoalRejected) {
  Program p;
  p.consult("a(X) :- X.");
  EXPECT_THROW(normalize(p, false), Error);
}

TEST(Analyze, PermanentVsTemporary) {
  Program p;
  p.consult("a(X,Y,Z) :- p(X), q(Y), r(X,Z). p(1). q(1). r(1,1).");
  auto np = normalize(p, false);
  const NClause& c = np.preds.at(p.pred_id("a", 3))[0];
  ClauseInfo info = analyze_clause(c.head, c.body);
  // X spans chunks (head+p, then r): permanent. Y is in head+q's chunk?
  // head..p(X) is chunk 0; q(Y) is chunk 1; so Y spans chunk 0 (head)
  // and 1: permanent too. Z spans head (chunk 0) and r (chunk 2).
  EXPECT_TRUE(info.needs_env);
  EXPECT_EQ(info.num_y, 3);
}

TEST(Analyze, SingleChunkClauseNeedsNoEnv) {
  Program p;
  p.consult("a(X) :- p(X). p(1).");
  auto np = normalize(p, false);
  const NClause& c = np.preds.at(p.pred_id("a", 1))[0];
  ClauseInfo info = analyze_clause(c.head, c.body);
  EXPECT_FALSE(info.needs_env);
  EXPECT_EQ(info.num_y, 0);
}

TEST(Analyze, CutAfterCallNeedsLevel) {
  Program p;
  p.consult("a :- b, !, c. b. c.");
  auto np = normalize(p, false);
  const NClause& c = np.preds.at(p.pred_id("a", 0))[0];
  ClauseInfo info = analyze_clause(c.head, c.body);
  EXPECT_GE(info.cut_y, 0);
  EXPECT_TRUE(info.needs_env);
}

TEST(Analyze, NeckCutNeedsNoLevel) {
  Program p;
  p.consult("a(X) :- X < 1, !, b. b.");
  auto np = normalize(p, false);
  const NClause& c = np.preds.at(p.pred_id("a", 1))[0];
  ClauseInfo info = analyze_clause(c.head, c.body);
  EXPECT_EQ(info.cut_y, -1);
}

TEST(Analyze, SharedVarInUnconditionalParcallIsTemporary) {
  Program p;
  p.consult("a(L,R) :- p(L,M) & q(M,R). p(1,1). q(1,1).");
  auto np = normalize(p, false);
  const NClause& c = np.preds.at(p.pred_id("a", 2))[0];
  ClauseInfo info = analyze_clause(c.head, c.body);
  // All vars live in one chunk (head + single parcall): the only Y
  // slot is the parcall frame pointer.
  EXPECT_GE(info.pf_y, 0);
  EXPECT_EQ(info.num_y, 1);
}

TEST(Analyze, SharedVarInConditionalParcallIsPermanent) {
  Program p;
  p.consult("a(L,R) :- (ground(L) | p(L,M) & q(M,R)). p(1,1). q(1,1).");
  auto np = normalize(p, false);
  const NClause& c = np.preds.at(p.pred_id("a", 2))[0];
  ClauseInfo info = analyze_clause(c.head, c.body);
  // M is shared between the two goals and a sequential path exists, so
  // it needs a Y slot in addition to the parcall frame slot.
  EXPECT_GE(info.num_y, 2);
}

}  // namespace
}  // namespace rapwam
