// AND-parallel execution tests: parcall correctness across PE counts,
// scheduling, conditional CGEs, failure/kill handling, nested
// parallelism, and equivalence with sequential execution.
#include <gtest/gtest.h>

#include "engine/machine.h"
#include "harness/programs.h"

namespace rapwam {
namespace {

RunResult run(const std::string& src, const std::string& goal, unsigned pes,
              bool strip = false, unsigned max_sols = 1) {
  Program prog;
  prog.consult(src);
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.strip_cge = strip;
  cfg.max_solutions = max_sols;
  Machine m(prog, cfg);
  return m.solve(goal);
}

std::string binding(const RunResult& r, const std::string& var, std::size_t sol = 0) {
  for (auto& [n, v] : r.solutions.at(sol).bindings)
    if (n == var) return v;
  return "<unbound?>";
}

const char* kFib = R"PL(
fib(0, 0).
fib(1, 1).
fib(N, F) :-
    N > 1, N1 is N - 1, N2 is N - 2,
    (fib(N1, F1) & fib(N2, F2)),
    F is F1 + F2.
)PL";

TEST(Parallel, UnconditionalParcallOnOnePE) {
  RunResult r = run("a(X,Y) :- p(X) & q(Y). p(1). q(2).", "a(X,Y).", 1);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "1");
  EXPECT_EQ(binding(r, "Y"), "2");
}

TEST(Parallel, UnconditionalParcallOnFourPEs) {
  RunResult r = run("a(X,Y) :- p(X) & q(Y). p(1). q(2).", "a(X,Y).", 4);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "1");
  EXPECT_EQ(binding(r, "Y"), "2");
}

TEST(Parallel, FibMatchesAcrossPECounts) {
  for (unsigned pes : {1u, 2u, 3u, 4u, 8u}) {
    RunResult r = run(kFib, "fib(15, F).", pes);
    ASSERT_TRUE(r.success) << pes << " PEs";
    EXPECT_EQ(binding(r, "F"), "610") << pes << " PEs";
  }
}

TEST(Parallel, GoalsActuallyStolenWithManyPEs) {
  RunResult r = run(kFib, "fib(14, F).", 8);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.goals_stolen, 0u);
  EXPECT_GT(r.stats.parcalls, 0u);
}

TEST(Parallel, OnePEExecutesAllGoalsLocally) {
  RunResult r = run(kFib, "fib(10, F).", 1);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.goals_stolen, 0u);
  EXPECT_GT(r.stats.goals_local, 0u);
}

TEST(Parallel, SpeedupInCycles) {
  RunResult r1 = run(kFib, "fib(16, F).", 1);
  RunResult r8 = run(kFib, "fib(16, F).", 8);
  ASSERT_TRUE(r1.success && r8.success);
  // 8 PEs must be substantially faster in virtual cycles.
  EXPECT_LT(r8.stats.cycles * 2, r1.stats.cycles);
}

TEST(Parallel, ConditionalCGETakesParallelPathWhenGround) {
  const char* src =
      "f(X,Y,R1,R2) :- (ground(X), ground(Y) | p(X,R1) & p(Y,R2)). "
      "p(N,M) :- M is N + 1.";
  RunResult r = run(src, "f(1, 2, A, B).", 4);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "A"), "2");
  EXPECT_EQ(binding(r, "B"), "3");
  EXPECT_GT(r.stats.parcalls, 0u);
}

TEST(Parallel, ConditionalCGEFallsBackWhenNotGround) {
  const char* src =
      "f(X,Y) :- (ground(X) | p(X) & q(Y)). "
      "p(_). q(2).";
  RunResult r = run(src, "f(_, Y).", 4);  // X unbound: sequential path
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "Y"), "2");
  EXPECT_EQ(r.stats.parcalls, 0u);
}

TEST(Parallel, IndepConditionChecked) {
  const char* src =
      "f(X,Z) :- (indep(X,Z) | p(X) & q(Z)). "
      "p(1). q(1). q(2).";
  // Independent: parallel path.
  RunResult r1 = run(src, "f(A, B).", 2);
  ASSERT_TRUE(r1.success);
  EXPECT_GT(r1.stats.parcalls, 0u);
  // Shared variable: sequential path (p binds it, q must see it).
  RunResult r2 = run("g(X) :- f(X, X). " + std::string(src), "g(V).", 2);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(binding(r2, "V"), "1");
  EXPECT_EQ(r2.stats.parcalls, 0u);
}

TEST(Parallel, FailingParallelGoalFailsParcall) {
  const char* src =
      "a :- p & q. "
      "p. "
      "q :- fail.";
  RunResult r = run(src, "a.", 4);
  EXPECT_FALSE(r.success);
}

TEST(Parallel, FailurePropagatesToAlternativeClause) {
  const char* src =
      "a(R) :- mk(X), p(X) & q(X, R). "
      "mk(1). mk(2). "
      "p(2). "
      "q(X, R) :- R is X * 10.";
  // First mk(1): p(1) fails in parallel; backtrack to mk(2); succeed.
  RunResult r = run(src, "a(R).", 4);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "20");
}

TEST(Parallel, FailureUndoesParallelBindings) {
  const char* src =
      "a(Out) :- gen(V), w1(V) & w2(V), Out = V. "
      "gen(x1). gen(x2). "
      "w1(_). "
      "w2(x2).";
  RunResult r = run(src, "a(O).", 4);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "O"), "x2");
}

TEST(Parallel, SlowSiblingIsKilledOnFailure) {
  // w2 fails fast, w1 does a long computation: the kill must stop w1.
  const char* src =
      "a :- w1(18) & w2. "
      "w1(0) :- !. "
      "w1(N) :- N1 is N - 1, w1(N1), w1(N1), fail. "  // huge search
      "w1(N) :- N > 0. "
      "w2 :- fail.";
  RunResult r = run(src, "a.", 2);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.stats.kills, 0u);
}

TEST(Parallel, NestedParcalls) {
  const char* src =
      "top(R) :- l(A) & r(B), R is A + B. "
      "l(R) :- p(X) & q(Y), R is X + Y. "
      "r(R) :- p(X) & q(Y), R is X * Y. "
      "p(3). q(4).";
  for (unsigned pes : {1u, 2u, 4u, 8u}) {
    RunResult r = run(src, "top(R).", pes);
    ASSERT_TRUE(r.success) << pes;
    EXPECT_EQ(binding(r, "R"), "19") << pes;
  }
}

TEST(Parallel, ThreeWayParcall) {
  const char* src =
      "a(X,Y,Z) :- p(X) & q(Y) & r(Z). "
      "p(1). q(2). r(3).";
  RunResult r = run(src, "a(X,Y,Z).", 3);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "1");
  EXPECT_EQ(binding(r, "Y"), "2");
  EXPECT_EQ(binding(r, "Z"), "3");
}

TEST(Parallel, SharedOpenTailQsortStyle) {
  // Non-strict independence: both goals see R1; only one binds it.
  const char* src =
      "a(R) :- build(R, R1) & closetail(R1). "
      "build([a|T], T). "
      "closetail([]).";
  RunResult r = run(src, "a(R).", 2);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "R"), "[a]");
}

TEST(Parallel, WorkRefsCloseToSequentialOnOnePE) {
  // RAP-WAM on 1 PE should do only slightly more work than plain WAM.
  BenchProgram bp = bench_program("deriv", BenchScale::Small);
  Program prog1;
  prog1.consult(bp.source);
  MachineConfig cfg1;
  cfg1.num_pes = 1;
  Machine m1(prog1, cfg1);
  RunResult rap = m1.solve(bp.goal + ".");

  Program prog2;
  prog2.consult(bp.source);
  MachineConfig cfg2;
  cfg2.num_pes = 1;
  cfg2.strip_cge = true;
  Machine m2(prog2, cfg2);
  RunResult wam = m2.solve(bp.goal + ".");

  ASSERT_TRUE(rap.success && wam.success);
  double ratio = static_cast<double>(rap.stats.work_refs()) /
                 static_cast<double>(wam.stats.work_refs());
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.8);  // parallelism management overhead is bounded
}

TEST(Parallel, BenchmarksMatchSequentialAnswers) {
  for (const std::string& name : small_bench_names()) {
    BenchProgram bp = bench_program(name, BenchScale::Small);
    Program sp;
    sp.consult(bp.source);
    MachineConfig scfg;
    scfg.num_pes = 1;
    scfg.strip_cge = true;
    Machine sm(sp, scfg);
    RunResult seq = sm.solve(bp.goal + ".");
    ASSERT_TRUE(seq.success) << name;

    for (unsigned pes : {2u, 8u}) {
      Program pp;
      pp.consult(bp.source);
      MachineConfig pcfg;
      pcfg.num_pes = pes;
      Machine pm(pp, pcfg);
      RunResult par = pm.solve(bp.goal + ".");
      ASSERT_TRUE(par.success) << name << " on " << pes;
      ASSERT_EQ(par.solutions.size(), seq.solutions.size()) << name;
      for (std::size_t i = 0; i < seq.solutions[0].bindings.size(); ++i) {
        EXPECT_EQ(par.solutions[0].bindings[i].second,
                  seq.solutions[0].bindings[i].second)
            << name << " var " << seq.solutions[0].bindings[i].first;
      }
    }
  }
}

TEST(Parallel, DeterministicAcrossRuns) {
  RunResult a = run(kFib, "fib(13, F).", 4);
  RunResult b = run(kFib, "fib(13, F).", 4);
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.stats.refs.total, b.stats.refs.total);
  EXPECT_EQ(a.stats.goals_stolen, b.stats.goals_stolen);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

TEST(Parallel, CutAfterParcall) {
  const char* src =
      "a(R) :- p(X) & q(Y), !, R is X + Y. "
      "a(0). "
      "p(1). q(2).";
  RunResult r = run(src, "a(R).", 2, false, 5);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.solutions.size(), 1u);
  EXPECT_EQ(binding(r, "R"), "3");
}

TEST(Parallel, InlineGoalAlternativesAreReentrant) {
  // The first parallel goal runs inline on the parent, so its choice
  // points remain visible: outside backtracking re-enters them exactly
  // as in sequential execution.
  const char* src =
      "a(X) :- p(X) & q, r(X). "
      "p(1). p(2). "
      "q. "
      "r(2).";
  RunResult r = run(src, "a(X).", 2, false, 5);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "2");
}

TEST(Parallel, PushedGoalAlternativesAreNotReentrant) {
  // Documented first-solution semantics for *pushed* goals: outside
  // backtracking cancels their sections instead of re-entering them
  // (kill-and-fail; see docs/DESIGN.md §5).
  const char* src =
      "a(X) :- q & p(X), r(X). "
      "p(1). p(2). "
      "q. "
      "r(2).";
  RunResult r = run(src, "a(X).", 2, false, 5);
  EXPECT_FALSE(r.success);
}

TEST(Parallel, SequentialSemanticsPreservedByStripMode) {
  const char* src =
      "a(X) :- p(X) & q, r(X). "
      "p(1). p(2). "
      "q. "
      "r(2).";
  RunResult r = run(src, "a(X).", 1, /*strip=*/true, 5);
  ASSERT_TRUE(r.success);  // plain WAM explores p's alternatives
  EXPECT_EQ(binding(r, "X"), "2");
}

TEST(Parallel, ManyPEsIdleWithoutWork) {
  RunResult r = run("a(1).", "a(X).", 16);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(binding(r, "X"), "1");
}

TEST(Parallel, GoalStackHighWaterTracked) {
  RunResult r = run(kFib, "fib(12, F).", 4);
  EXPECT_GT(r.stats.goals_pushed, 0u);
  EXPECT_EQ(r.stats.goals_pushed, r.stats.goals_local + r.stats.goals_stolen);
}

}  // namespace
}  // namespace rapwam
