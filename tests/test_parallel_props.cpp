// Parameterized property tests on the parallel engine: for a family of
// generated search programs, parallel execution on any PE count agrees
// exactly with sequential WAM execution — success, bindings, and
// solution multiplicity — including programs whose parallel goals
// fail at varying depths (failure injection).
#include <gtest/gtest.h>

#include <sstream>

#include "engine/machine.h"

namespace rapwam {
namespace {

/// A small program family parameterized by a seed: two independent
/// tree walks run in parallel; nodes fail where seed bits say so, and
/// a final arithmetic check relates the two results. This exercises
/// parcalls that succeed, fail early, fail late, and cancel siblings.
std::string make_program(unsigned seed) {
  std::ostringstream os;
  // walk(Depth, Mode, Sum): Mode selects which branch fails.
  os << "walk(0, M, M).\n";
  os << "walk(N, M, S) :- N > 0, N1 is N - 1, pick(N, M, V), walk(N1, M, S1), "
        "S is S1 + V.\n";
  for (int n = 1; n <= 6; ++n) {
    // pick succeeds with value depending on the seed; for some (n, m)
    // combinations it fails on first clause and succeeds on retry.
    if ((seed >> n) & 1) {
      os << "pick(" << n << ", M, V) :- M > 1, V is " << n << " * M.\n";
      os << "pick(" << n << ", M, V) :- M =< 1, V = " << n << ".\n";
    } else {
      os << "pick(" << n << ", _, " << n << ").\n";
    }
  }
  os << "pair(A, B) :- walk(6, 1, A) & walk(6, 2, B).\n";
  // The goals of a CGE must be independent: gate/1 ignores its
  // argument (it only delimits the answer) and does its own walk,
  // failing for odd sums -- which kills the (possibly still running)
  // sibling, exercising the inside-failure protocol.
  os << "gated(A) :- walk(6, 1, A) & gate(_).\n";
  os << "gate(_) :- walk(6, 2, Y), 0 =:= Y mod 2.\n";
  return os.str();
}

RunResult run_cfg(const std::string& src, const std::string& goal, unsigned pes,
                  bool strip) {
  Program prog;
  prog.consult(src);
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.strip_cge = strip;
  cfg.max_solutions = 4;
  Machine m(prog, cfg);
  return m.solve(goal);
}

class ParallelAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelAgreement, PairMatchesSequential) {
  std::string src = make_program(GetParam());
  RunResult seq = run_cfg(src, "pair(A, B).", 1, /*strip=*/true);
  for (unsigned pes : {1u, 2u, 4u, 8u}) {
    RunResult par = run_cfg(src, "pair(A, B).", pes, false);
    ASSERT_EQ(par.success, seq.success) << "seed " << GetParam() << " pes " << pes;
    if (seq.success) {
      EXPECT_EQ(par.solutions[0].bindings[0].second,
                seq.solutions[0].bindings[0].second);
      EXPECT_EQ(par.solutions[0].bindings[1].second,
                seq.solutions[0].bindings[1].second);
    }
  }
}

TEST_P(ParallelAgreement, GatedFailureMatchesSequential) {
  // gate/1 fails for some seeds, killing a (possibly long) sibling.
  std::string src = make_program(GetParam());
  RunResult seq = run_cfg(src, "gated(A).", 1, /*strip=*/true);
  for (unsigned pes : {2u, 4u}) {
    RunResult par = run_cfg(src, "gated(A).", pes, false);
    ASSERT_EQ(par.success, seq.success) << "seed " << GetParam() << " pes " << pes;
    if (seq.success) {
      EXPECT_EQ(par.solutions[0].bindings[0].second,
                seq.solutions[0].bindings[0].second);
    }
  }
}

TEST_P(ParallelAgreement, RunsAreDeterministic) {
  std::string src = make_program(GetParam());
  RunResult a = run_cfg(src, "pair(A, B).", 4, false);
  RunResult b = run_cfg(src, "pair(A, B).", 4, false);
  EXPECT_EQ(a.stats.refs.total, b.stats.refs.total);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelAgreement,
                         ::testing::Values(0u, 1u, 5u, 10u, 21u, 42u, 63u, 77u,
                                           102u, 127u));

TEST(ParallelStress, ManyNestedParcallsUnderFailurePressure) {
  // Fibonacci where odd leaves occasionally fail on their first clause:
  // lots of backtracking across active parcalls.
  const char* src = R"PL(
    fib(0, 0).
    fib(1, 1).
    fib(N, F) :-
        N > 1, N1 is N - 1, N2 is N - 2,
        (fib(N1, F1) & fib(N2, F2)),
        F is F1 + F2.
    flaky(N, F) :- N mod 3 =:= 0, fail.
    flaky(N, F) :- fib(N, F).
    main(F) :- flaky(12, A) & flaky(9, B), F is A + B.
  )PL";
  for (unsigned pes : {1u, 3u, 8u}) {
    Program prog;
    prog.consult(src);
    MachineConfig cfg;
    cfg.num_pes = pes;
    Machine m(prog, cfg);
    RunResult r = m.solve("main(F).");
    ASSERT_TRUE(r.success) << pes;
    EXPECT_EQ(r.solutions[0].bindings[0].second, "178");  // fib(12)+fib(9)
  }
}

TEST(ParallelStress, DeepNestingAcrossManyPEs) {
  const char* src = R"PL(
    tree(0, 1).
    tree(N, S) :-
        N > 0, N1 is N - 1,
        (tree(N1, A) & tree(N1, B)),
        S is A + B.
  )PL";
  for (unsigned pes : {1u, 7u, 16u}) {
    Program prog;
    prog.consult(src);
    MachineConfig cfg;
    cfg.num_pes = pes;
    Machine m(prog, cfg);
    RunResult r = m.solve("tree(10, S).");
    ASSERT_TRUE(r.success) << pes;
    EXPECT_EQ(r.solutions[0].bindings[0].second, "1024") << pes;
  }
}

TEST(ParallelStress, AlternativesAfterParcallEnumerate) {
  // Backtracking *after* a completed parcall into pre-parcall choices.
  const char* src = R"PL(
    item(1). item(2). item(3).
    duo(X, Y) :- item(X), p(X, A) & p(X, B), Y is A + B.
    p(X, Y) :- Y is X * 10.
  )PL";
  Program prog;
  prog.consult(src);
  MachineConfig cfg;
  cfg.num_pes = 4;
  cfg.max_solutions = 10;
  Machine m(prog, cfg);
  RunResult r = m.solve("duo(X, Y).");
  ASSERT_EQ(r.solutions.size(), 3u);
  EXPECT_EQ(r.solutions[0].bindings[1].second, "20");
  EXPECT_EQ(r.solutions[1].bindings[1].second, "40");
  EXPECT_EQ(r.solutions[2].bindings[1].second, "60");
}

}  // namespace
}  // namespace rapwam
