// Reader tests: operator precedence, lists, CGE syntax, variable
// scoping.
#include <gtest/gtest.h>

#include "prolog/program.h"

namespace rapwam {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Program prog;
  std::string parse1(const std::string& src) {
    return prog.terms().to_string(prog.parse_goal(src));
  }
};

TEST_F(ParserTest, AtomsIntsVars) {
  EXPECT_EQ(parse1("foo."), "foo");
  EXPECT_EQ(parse1("42."), "42");
  EXPECT_EQ(parse1("X."), "_X");
}

TEST_F(ParserTest, CompoundTerms) {
  EXPECT_EQ(parse1("f(a,b)."), "f(a,b)");
  EXPECT_EQ(parse1("f(g(X),h(X))."), "f(g(_X),h(_X))");
}

TEST_F(ParserTest, OperatorPrecedence) {
  EXPECT_EQ(parse1("1+2*3."), "+(1,*(2,3))");
  EXPECT_EQ(parse1("(1+2)*3."), "*(+(1,2),3)");
  EXPECT_EQ(parse1("1+2+3."), "+(+(1,2),3)");  // yfx: left assoc
  EXPECT_EQ(parse1("a,b,c."), ",(a,,(b,c))");  // xfy: right assoc
}

TEST_F(ParserTest, ClauseNeck) {
  EXPECT_EQ(parse1("a :- b, c."), ":-(a,,(b,c))");
}

TEST_F(ParserTest, Comparison) {
  EXPECT_EQ(parse1("X is Y + 1."), "is(_X,+(_Y,1))");
  EXPECT_EQ(parse1("X =< Y."), "=<(_X,_Y)");
}

TEST_F(ParserTest, Lists) {
  EXPECT_EQ(parse1("[]."), "[]");
  EXPECT_EQ(parse1("[1,2,3]."), "[1,2,3]");
  EXPECT_EQ(parse1("[H|T]."), "[_H|_T]");
  EXPECT_EQ(parse1("[a,b|T]."), "[a,b|_T]");
  EXPECT_EQ(parse1("[[1],[2]]."), "[[1],[2]]");
}

TEST_F(ParserTest, NegativeNumbers) {
  EXPECT_EQ(parse1("-5."), "-5");
  EXPECT_EQ(parse1("f(-3)."), "f(-3)");
  EXPECT_EQ(parse1("1 - 2."), "-(1,2)");
}

TEST_F(ParserTest, PrefixMinusOnTerm) {
  EXPECT_EQ(parse1("-X."), "-(_X)");
  EXPECT_EQ(parse1("- (a)."), "-(a)");
}

TEST_F(ParserTest, ParallelConjunction) {
  EXPECT_EQ(parse1("a & b & c."), "&(a,&(b,c))");
}

TEST_F(ParserTest, CGEConditionBar) {
  // (ground(X) | p(X) & q(X))
  EXPECT_EQ(parse1("(ground(X) | p(X) & q(X))."),
            "|(ground(_X),&(p(_X),q(_X)))");
  EXPECT_EQ(parse1("(indep(X,Z), ground(Y) | g(X,Y) & h(Y,Z))."),
            "|(,(indep(_X,_Z),ground(_Y)),&(g(_X,_Y),h(_Y,_Z)))");
}

TEST_F(ParserTest, BarInListIsTailOnly) {
  EXPECT_EQ(parse1("[X|Y]."), "[_X|_Y]");
}

TEST_F(ParserTest, IfThenElse) {
  EXPECT_EQ(parse1("(a -> b ; c)."), ";(->(a,b),c)");
}

TEST_F(ParserTest, NegationAsFailure) {
  EXPECT_EQ(parse1("\\+ a."), "\\+(a)");
}

TEST_F(ParserTest, VarScopingWithinClause) {
  const Term* t = prog.parse_goal("f(X, X, Y).");
  EXPECT_EQ(t->args[0], t->args[1]);
  EXPECT_NE(t->args[0], t->args[2]);
}

TEST_F(ParserTest, AnonymousVarsAreFresh) {
  const Term* t = prog.parse_goal("f(_, _).");
  EXPECT_NE(t->args[0], t->args[1]);
}

TEST_F(ParserTest, ProgramParsesMultipleClauses) {
  prog.consult("a. b :- a. c(X) :- b, d(X).");
  EXPECT_TRUE(prog.defines(prog.pred_id("a", 0)));
  EXPECT_TRUE(prog.defines(prog.pred_id("b", 0)));
  EXPECT_TRUE(prog.defines(prog.pred_id("c", 1)));
  EXPECT_EQ(prog.clauses_of(prog.pred_id("c", 1)).size(), 1u);
}

TEST_F(ParserTest, FactAndRuleBodies) {
  prog.consult("p(1). p(2) :- q.");
  const auto& cs = prog.clauses_of(prog.pred_id("p", 1));
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].body, nullptr);
  EXPECT_NE(cs[1].body, nullptr);
}

TEST_F(ParserTest, SyntaxErrorsThrow) {
  EXPECT_THROW(parse1("f(."), Error);
  EXPECT_THROW(parse1("f(a"), Error);
  EXPECT_THROW(parse1("f(a))."), Error);
  EXPECT_THROW(prog.consult("a :- b"), Error);  // missing period
}

TEST_F(ParserTest, DirectivesRejected) {
  EXPECT_THROW(prog.consult(":- initialization(x)."), Error);
}

TEST_F(ParserTest, QuotedAtomsAsFunctors) {
  EXPECT_EQ(parse1("'my pred'(a)."), "my pred(a)");
}

TEST_F(ParserTest, XfxDoesNotChain) {
  EXPECT_THROW(parse1("a = b = c."), Error);
}

}  // namespace
}  // namespace rapwam
