// PeSet unit and property tests (cache/peset.h): the multi-word PE
// bit set must behave exactly like a reference std::set<unsigned>
// model through growth, copies, moves, and every mask operation the
// directory uses — plus the pe_bit() shift guard that keeps the flat
// u64 path out of undefined behaviour.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "cache/peset.h"
#include "test_rand.h"

namespace rapwam {
namespace {

TEST(PeSet, DefaultIsEmptyAndInline) {
  PeSet s;
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.first(), -1);
  EXPECT_FALSE(s.wide());
  EXPECT_EQ(s.capacity(), 64u);
  EXPECT_FALSE(s.test(0));
  EXPECT_FALSE(s.test(63));
  EXPECT_FALSE(s.test(1000));  // beyond capacity: absent, not UB
}

TEST(PeSet, SetBeyondCapacityGrows) {
  PeSet s;
  s.set(3);
  EXPECT_FALSE(s.wide());
  s.set(200);
  EXPECT_TRUE(s.wide());
  EXPECT_GE(s.capacity(), 201u);
  // Growth zero-extends and preserves the existing members.
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(200));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.first(), 3);
}

TEST(PeSet, PreSizedConstructorForcesWide) {
  PeSet narrow(64);
  EXPECT_FALSE(narrow.wide());
  PeSet wide(65);
  EXPECT_TRUE(wide.wide());
  EXPECT_TRUE(wide.none());
  EXPECT_GE(wide.capacity(), 65u);
}

TEST(PeSet, ResetBeyondCapacityIsNoop) {
  PeSet s;
  s.set(5);
  s.reset(500);  // must not grow or disturb anything
  EXPECT_FALSE(s.wide());
  EXPECT_TRUE(s.test(5));
  EXPECT_EQ(s.count(), 1u);
}

TEST(PeSet, EqualityIsSemanticAcrossCapacities) {
  PeSet narrow;
  narrow.set(7);
  PeSet wide(256);
  wide.set(7);
  EXPECT_TRUE(narrow == wide);  // trailing zero words ignored
  wide.set(70);
  EXPECT_FALSE(narrow == wide);
  wide.reset(70);
  EXPECT_TRUE(narrow == wide);
}

TEST(PeSet, CopyAndMoveRoundTrip) {
  PeSet s(128);
  s.set(1);
  s.set(100);

  PeSet copy(s);
  EXPECT_TRUE(copy == s);
  copy.set(2);
  EXPECT_FALSE(copy == s);  // deep copy: original unchanged
  EXPECT_FALSE(s.test(2));

  PeSet assigned;
  assigned.set(60);
  assigned = s;
  EXPECT_TRUE(assigned == s);

  PeSet moved(std::move(copy));
  EXPECT_TRUE(moved.test(100));
  EXPECT_TRUE(moved.test(2));
  EXPECT_TRUE(copy.none());  // moved-from: valid, empty, inline

  PeSet move_assigned;
  move_assigned = std::move(moved);
  EXPECT_TRUE(move_assigned.test(100));
  EXPECT_TRUE(moved.none());

  // Self-assignment must be harmless in both flavours.
  PeSet& alias = move_assigned;
  move_assigned = alias;
  EXPECT_TRUE(move_assigned.test(100));
}

TEST(PeSet, OtherVariantsExcludeExactlyThePe) {
  PeSet s(200);
  s.set(64);
  EXPECT_TRUE(s.any_other(0));
  EXPECT_FALSE(s.any_other(64));
  EXPECT_EQ(s.first_other(64), -1);
  s.set(130);
  EXPECT_TRUE(s.any_other(64));
  EXPECT_EQ(s.first_other(64), 130);
  EXPECT_EQ(s.first_other(130), 64);
  EXPECT_EQ(s.first_other(0), 64);

  s.retain_only(130);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(130));
  s.retain_only(7);  // not a member: retains nothing
  EXPECT_TRUE(s.none());
}

TEST(PeSet, ForEachVisitsInOrder) {
  PeSet s(300);
  for (unsigned pe : {299u, 0u, 63u, 64u, 127u, 128u}) s.set(pe);
  std::vector<unsigned> seen;
  s.for_each([&](unsigned pe) { seen.push_back(pe); });
  EXPECT_EQ(seen, (std::vector<unsigned>{0u, 63u, 64u, 127u, 128u, 299u}));

  seen.clear();
  s.for_each_other(64, [&](unsigned pe) { seen.push_back(pe); });
  EXPECT_EQ(seen, (std::vector<unsigned>{0u, 63u, 127u, 128u, 299u}));
}

/// Property test against a std::set<unsigned> reference model:
/// randomized set/reset/retain_only/clear sequences over PE ids up to
/// 320 (five words, forcing several growth steps) must keep every
/// observer in exact agreement.
TEST(PeSet, RandomOpsMatchSetModel) {
  for (u64 seed : {1ull, 2ull, 3ull, 4ull}) {
    Lcg rng(seed);
    PeSet s;
    std::set<unsigned> model;
    for (int step = 0; step < 4000; ++step) {
      unsigned pe = static_cast<unsigned>(rng.next(320));
      switch (rng.next(8)) {
        case 0:
        case 1:
        case 2:
        case 3:
          s.set(pe);
          model.insert(pe);
          break;
        case 4:
        case 5:
          s.reset(pe);
          model.erase(pe);
          break;
        case 6:
          s.retain_only(pe);
          if (model.count(pe)) model = {pe};
          else model.clear();
          break;
        default:
          if (rng.next(16) == 0) {
            s.clear();
            model.clear();
          }
          break;
      }
      unsigned probe = static_cast<unsigned>(rng.next(320));
      ASSERT_EQ(s.test(probe), model.count(probe) != 0) << "seed " << seed;
      ASSERT_EQ(s.count(), static_cast<unsigned>(model.size()));
      ASSERT_EQ(s.any(), !model.empty());
      ASSERT_EQ(s.first(), model.empty() ? -1 : static_cast<int>(*model.begin()));
      std::vector<unsigned> seen;
      s.for_each([&](unsigned p) { seen.push_back(p); });
      ASSERT_EQ(seen, std::vector<unsigned>(model.begin(), model.end()));
    }
    // The final set equals an independently built copy of the model.
    PeSet rebuilt;
    for (unsigned pe : model) rebuilt.set(pe);
    EXPECT_TRUE(s == rebuilt);
  }
}

TEST(PeSet, U64OverloadsMatchPeSetOverloads) {
  // The two overload sets implement one semantics; drive both with the
  // same operation stream over PE ids < 64 and compare every observer.
  Lcg rng(0xD1FFull);
  u64 flat = 0;
  PeSet wide;
  for (int step = 0; step < 2000; ++step) {
    unsigned pe = static_cast<unsigned>(rng.next(64));
    switch (rng.next(6)) {
      case 0:
      case 1:
      case 2:
        pe_set(flat, pe);
        pe_set(wide, pe);
        break;
      case 3:
        pe_reset(flat, pe);
        pe_reset(wide, pe);
        break;
      case 4:
        pe_assign(flat, pe, (step & 1) != 0);
        pe_assign(wide, pe, (step & 1) != 0);
        break;
      default:
        pe_retain_only(flat, pe);
        pe_retain_only(wide, pe);
        break;
    }
    unsigned probe = static_cast<unsigned>(rng.next(64));
    ASSERT_EQ(pe_test(flat, probe), pe_test(wide, probe));
    ASSERT_EQ(pe_any(flat), pe_any(wide));
    ASSERT_EQ(pe_any_other(flat, probe), pe_any_other(wide, probe));
    ASSERT_EQ(pe_first_other(flat, probe), pe_first_other(wide, probe));
    std::vector<unsigned> a, b;
    pe_for_each(flat, [&](unsigned p) { a.push_back(p); });
    pe_for_each(wide, [&](unsigned p) { b.push_back(p); });
    ASSERT_EQ(a, b);
    a.clear();
    b.clear();
    pe_for_each_other(flat, probe, [&](unsigned p) { a.push_back(p); });
    pe_for_each_other(wide, probe, [&](unsigned p) { b.push_back(p); });
    ASSERT_EQ(a, b);
  }
}

// The flat-path shift guard (ISSUE 7 satellite: `u64(1) << pe` was
// undefined for pe >= 64). In Debug/sanitizer builds RW_DCHECK turns
// an out-of-range PE id into an Error before the shift executes —
// UBSan never sees a wrapped shift. Release compiles the guard out,
// so the contract there is "callers pre-check" (they all do: the flat
// representation is only selected for <= 64-PE simulators).
TEST(PeSetGuard, FlatBitGuardedInDebug) {
  EXPECT_EQ(pe_bit(0), 1ull);
  EXPECT_EQ(pe_bit(63), 1ull << 63);
#ifndef NDEBUG
  EXPECT_THROW(pe_bit(64), Error);
  EXPECT_THROW(pe_bit(200), Error);
#endif
}

}  // namespace
}  // namespace rapwam
