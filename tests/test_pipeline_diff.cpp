// Differential tests of the streaming trace pipeline (DESIGN.md §8):
// the legacy materialize-then-replay path (TraceBuffer -> replay), the
// generate-once chunked-fanout path (ChunkingSink -> ChunkedTrace ->
// replay) and the concurrent-streaming path (StreamSink -> ChunkStream
// -> run_sweep_streaming) must produce bit-identical packed streams,
// TrafficStats and TimingStats for all five protocols on randomized
// traces — and for real emulator runs. Plus ChunkStream window /
// backpressure / bounded-memory pinning.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cache/sweep.h"
#include "harness/runner.h"
#include "test_rand.h"
#include "timing/timed_replay.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

/// Emits `n` randomized references into `sink` in odd-sized bursts
/// (so chunk re-slicing is exercised), mixing busy and idle references
/// (so the busy-only filter is exercised), shared and private regions,
/// and all Table-1 object classes. Deterministic in `seed`.
void produce_random(TraceSink& sink, u64 seed, unsigned pes, std::size_t n) {
  Lcg rng(seed);
  std::vector<u64> burst;
  while (n > 0) {
    std::size_t len = std::min<std::size_t>(n, 1 + rng.next(4093));
    burst.clear();
    for (std::size_t i = 0; i < len; ++i) {
      MemRef r;
      r.pe = static_cast<u8>(rng.next(pes));
      r.addr = rng.next(3) == 0 ? rng.next(96) : 4096 + r.pe * 8192 + rng.next(2048);
      r.cls = static_cast<ObjClass>(rng.next(kObjClassCount));
      r.write = rng.next(5) < 2;
      r.busy = rng.next(5) != 0;  // ~20% idle refs, filtered by busy_only
      burst.push_back(r.pack());
    }
    sink.on_chunk(burst.data(), burst.size());
    n -= len;
  }
}

const Protocol kAllProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

void expect_timing_eq(const TimingStats& a, const TimingStats& b, const char* what) {
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.bus_busy_cycles, b.bus_busy_cycles) << what;
  EXPECT_EQ(a.bus_transactions, b.bus_transactions) << what;
  ASSERT_EQ(a.pe.size(), b.pe.size()) << what;
  for (std::size_t i = 0; i < a.pe.size(); ++i) {
    EXPECT_EQ(a.pe[i].refs, b.pe[i].refs) << what << " pe=" << i;
    EXPECT_EQ(a.pe[i].busy_cycles, b.pe[i].busy_cycles) << what << " pe=" << i;
    EXPECT_EQ(a.pe[i].stall_cycles, b.pe[i].stall_cycles) << what << " pe=" << i;
    EXPECT_EQ(a.pe[i].clock, b.pe[i].clock) << what << " pe=" << i;
  }
}

TEST(StreamingPipeline, ChunkedStorageMatchesMaterializedBuffer) {
  for (unsigned pes : {1u, 4u, 8u}) {
    TraceBuffer buf(/*busy_only=*/true);
    produce_random(buf, 0xFACE + pes, pes, 150000);
    ChunkingSink sink(/*busy_only=*/true);
    produce_random(sink, 0xFACE + pes, pes, 150000);
    std::shared_ptr<const ChunkedTrace> trace = sink.take();

    // Same retained stream, bit for bit, and the same counters.
    EXPECT_EQ(trace->size(), buf.size());
    EXPECT_EQ(trace->to_packed(), buf.packed());
    EXPECT_EQ(trace->counts().total, buf.counts().total);
    EXPECT_EQ(trace->counts().writes, buf.counts().writes);
    EXPECT_EQ(trace->counts().busy, buf.counts().busy);
    // Metadata recorded at generation time matches a full-stream scan.
    EXPECT_EQ(trace->num_pes(), buf.num_pes());
    EXPECT_GE(trace->num_pes(), pes_in_trace(buf.packed()));
    // Chunks are full-size except the last.
    for (std::size_t i = 0; i + 1 < trace->num_chunks(); ++i)
      EXPECT_EQ(trace->chunk(i).size(), kChunkRefs);
  }
}

TEST(StreamingPipeline, AllProtocolsChunkedReplayMatchesFlat) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {1u, 4u, 8u}) {
      ChunkingSink sink(true);
      produce_random(sink, 0xAB + static_cast<u64>(p) * 131 + pes, pes, 120000);
      std::shared_ptr<const ChunkedTrace> trace = sink.take();
      std::vector<u64> flat = trace->to_packed();

      CacheConfig cfg;
      cfg.protocol = p;
      cfg.size_words = 512;
      cfg.line_words = 4;
      cfg.write_allocate = true;

      MultiCacheSim a(cfg, pes), b(cfg, pes);
      a.replay(flat);
      b.replay(*trace);
      EXPECT_EQ(a.stats(), b.stats())
          << protocol_name(p) << "/" << pes << "pe";
    }
  }
}

TEST(StreamingPipeline, TimedReplayOverChunksMatchesFlat) {
  for (Protocol p : {Protocol::WriteInBroadcast, Protocol::WriteThrough}) {
    ChunkingSink sink(true);
    produce_random(sink, 0x717 + static_cast<u64>(p), 4, 100000);
    std::shared_ptr<const ChunkedTrace> trace = sink.take();
    std::vector<u64> flat = trace->to_packed();

    CacheConfig cfg;
    cfg.protocol = p;
    cfg.size_words = 512;
    cfg.line_words = 4;
    cfg.write_allocate = true;
    TimingParams tp{1, 1, 2, 4};

    TimedReplay a(cfg, 4, tp), b(cfg, 4, tp);
    a.replay(flat);
    b.replay(*trace);
    EXPECT_EQ(a.traffic(), b.traffic()) << protocol_name(p);
    expect_timing_eq(a.timing(), b.timing(), protocol_name(p).c_str());
  }
}

/// The five protocols at two cache sizes, as a streaming-sweep grid.
std::vector<SweepPoint> protocol_grid(unsigned pes) {
  std::vector<SweepPoint> points;
  int label = 0;
  for (Protocol p : kAllProtocols) {
    for (u32 sz : {256u, 1024u}) {
      SweepPoint sp;
      sp.cfg.protocol = p;
      sp.cfg.size_words = sz;
      sp.cfg.line_words = 4;
      sp.cfg.write_allocate = true;
      sp.num_pes = pes;
      sp.label = label++;
      points.push_back(sp);
    }
  }
  return points;
}

TEST(StreamingPipeline, ConcurrentStreamingMatchesMaterializedReplay) {
  for (unsigned pes : {2u, 8u}) {
    std::vector<SweepPoint> points = protocol_grid(pes);
    std::vector<SweepResult> streamed = run_sweep_streaming(
        points,
        [&](TraceSink& sink) { produce_random(sink, 0xBEE5 + pes, pes, 200000); },
        /*busy_only=*/true, /*window_chunks=*/2);

    // Reference: materialize the same stream, then replay per point.
    TraceBuffer buf(true);
    produce_random(buf, 0xBEE5 + pes, pes, 200000);
    ASSERT_EQ(streamed.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(streamed[i].point.label, points[i].label);
      TrafficStats want =
          replay_traffic(points[i].cfg, points[i].num_pes, buf.packed());
      EXPECT_EQ(streamed[i].stats, want)
          << protocol_name(points[i].cfg.protocol) << "/" << pes << "pe point " << i;
    }
  }
}

TEST(StreamingPipeline, EngineChunkedSinkMatchesTraceBuffer) {
  // The emulator's chunk-granularity emission must hand every sink the
  // same stream the legacy per-ref TraceBuffer saw: run the same
  // deterministic benchmark into both and compare bit for bit.
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  BenchRun buffered = run_parallel(bp, 4, /*want_trace=*/true);
  ChunkingSink sink(true);
  RunResult direct = run_into(bp, 4, /*strip=*/false, &sink);
  std::shared_ptr<const ChunkedTrace> trace = sink.take();

  EXPECT_EQ(direct.stats.instructions, buffered.result.stats.instructions);
  EXPECT_EQ(trace->to_packed(), buffered.trace->packed());
  EXPECT_EQ(trace->counts().total, buffered.trace->counts().total);
  EXPECT_EQ(trace->num_pes(), buffered.trace->num_pes());
}

TEST(StreamingPipeline, EngineStreamingSweepMatchesFanout) {
  // One Figure-4-style group: generate qsort/small at 4 PEs while five
  // protocol points consume it, vs the stored-chunks fanout.
  BenchProgram bp = bench_program("qsort", BenchScale::Small);
  std::vector<SweepPoint> points = protocol_grid(4);
  std::vector<SweepResult> streamed = run_sweep_streaming(
      points, [&](TraceSink& sink) { run_into(bp, 4, /*strip=*/false, &sink); });

  ChunkingSink sink(true);
  run_into(bp, 4, /*strip=*/false, &sink);
  std::shared_ptr<const ChunkedTrace> trace = sink.take();
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(streamed[i].stats,
              replay_traffic(points[i].cfg, points[i].num_pes, *trace))
        << "point " << i;
  }
}

TEST(StreamingPipeline, WindowBoundsChunksInFlight) {
  // A fast producer against slow consumers must never get more than
  // `window` chunks ahead — backpressure, not buffering.
  for (std::size_t window : {1u, 2u, 4u}) {
    ChunkStream stream(2, window);
    std::thread producer([&] {
      for (int i = 0; i < 64; ++i)
        stream.push(std::vector<u64>(kChunkRefs, static_cast<u64>(i)));
      stream.close();
    });
    std::vector<std::size_t> got(2, 0);
    std::vector<std::thread> consumers;
    for (unsigned id = 0; id < 2; ++id) {
      consumers.emplace_back([&, id] {
        while (std::shared_ptr<const std::vector<u64>> c = stream.next(id)) {
          // Every consumer sees every chunk, in push order.
          EXPECT_EQ((*c)[0], static_cast<u64>(got[id]));
          ++got[id];
        }
      });
    }
    producer.join();
    for (std::thread& t : consumers) t.join();
    EXPECT_EQ(got[0], 64u);
    EXPECT_EQ(got[1], 64u);
    EXPECT_LE(stream.peak_chunks_in_flight(), window);
  }
}

TEST(StreamingPipeline, DetachedConsumerReleasesWindow) {
  ChunkStream stream(2, 1);
  std::thread producer([&] {
    for (int i = 0; i < 8; ++i) stream.push(std::vector<u64>{static_cast<u64>(i)});
    stream.close();
  });
  // Consumer 1 reads one chunk then detaches; consumer 0 must still
  // see the whole stream without the producer deadlocking.
  EXPECT_NE(stream.next(1), nullptr);
  stream.detach(1);
  std::size_t seen = 0;
  while (stream.next(0)) ++seen;
  producer.join();
  EXPECT_EQ(seen, 8u);
}

TEST(StreamingPipeline, EmptyStreamAndEmptyPoints) {
  std::vector<SweepResult> none = run_sweep_streaming(
      {}, [](TraceSink& sink) { (void)sink; });
  EXPECT_TRUE(none.empty());

  std::vector<SweepPoint> points = protocol_grid(2);
  std::vector<SweepResult> rs =
      run_sweep_streaming(points, [](TraceSink& sink) { (void)sink; });
  ASSERT_EQ(rs.size(), points.size());
  for (const SweepResult& r : rs) EXPECT_EQ(r.stats.refs, 0u);
}

TEST(StreamingPipeline, MixedChunkAndFlatSweepPointsAgree) {
  ChunkingSink sink(true);
  produce_random(sink, 0xD00D, 4, 80000);
  std::shared_ptr<const ChunkedTrace> trace = sink.take();
  std::vector<u64> flat = trace->to_packed();

  std::vector<SweepPoint> points = protocol_grid(4);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i % 2 == 0) points[i].chunks = trace.get();
    else points[i].trace = &flat;
  }
  ThreadPool pool(2);
  std::vector<SweepResult> rs = run_sweep(pool, points);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].stats, replay_traffic(points[i].cfg, 4, flat)) << i;
  }
}

// Not under the Streaming* TSan filter on purpose: ten million
// references through instrumented code is a job for the Release suite.
TEST(ChunkBoundedMemory, TenMillionRefsNeverMaterialize) {
  // Acceptance pin: streaming-mode peak memory is O(window), not
  // O(trace length). 10M references (80 MB if materialized) flow
  // through a 4-chunk window (2 MB) while two consumers replay them;
  // the stream's high-water mark proves nothing accumulated.
  constexpr std::size_t kRefs = 10'000'000;
  constexpr std::size_t kWindow = 4;

  ChunkStream stream(2, kWindow);
  TrafficStats got[2];
  CacheConfig cfg[2];
  cfg[0].protocol = Protocol::WriteInBroadcast;
  cfg[0].size_words = 256;
  cfg[0].line_words = 4;
  cfg[1] = cfg[0];
  cfg[1].protocol = Protocol::Copyback;
  std::vector<std::thread> consumers;
  for (unsigned id = 0; id < 2; ++id) {
    consumers.emplace_back([&, id] {
      MultiCacheSim sim(cfg[id], 8);
      while (std::shared_ptr<const std::vector<u64>> c = stream.next(id))
        sim.replay(*c);
      got[id] = sim.stats();
    });
  }
  {
    StreamSink sink(stream, /*busy_only=*/true);
    produce_random(sink, 0xB16, 8, kRefs);
    sink.finish();
  }
  for (std::thread& t : consumers) t.join();
  EXPECT_LE(stream.peak_chunks_in_flight(), kWindow);

  // Same counters as replaying the regenerated stream reference by
  // reference — no materialized copy exists on either side.
  for (unsigned id = 0; id < 2; ++id) {
    MultiCacheSim ref(cfg[id], 8);
    struct Direct : TraceSink {
      MultiCacheSim& sim;
      explicit Direct(MultiCacheSim& s) : sim(s) {}
      void on_chunk(const u64* packed, std::size_t n) override {
        for (std::size_t i = 0; i < n; ++i) {
          MemRef r = MemRef::unpack(packed[i]);
          if (r.busy) sim.access(r);
        }
      }
    } direct(ref);
    produce_random(direct, 0xB16, 8, kRefs);
    EXPECT_EQ(got[id], ref.stats()) << "consumer " << id;
  }
}

}  // namespace
}  // namespace rapwam
