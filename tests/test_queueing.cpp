// Bus contention model tests: limiting cases, monotonicity properties,
// saturation behaviour.
#include <gtest/gtest.h>

#include "cache/queueing.h"

namespace rapwam {
namespace {

BusParams fast() { return BusParams{0.25}; }
BusParams slow() { return BusParams{2.0}; }

TEST(BusModel, NoTrafficMeansFullEfficiency) {
  BusEstimate e = bus_contention(16, 0.0, fast());
  EXPECT_DOUBLE_EQ(e.pe_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(e.aggregate_speedup, 16.0);
}

TEST(BusModel, FreeBusMeansFullEfficiency) {
  BusEstimate e = bus_contention(16, 0.5, BusParams{0.0});
  EXPECT_DOUBLE_EQ(e.pe_efficiency, 1.0);
}

TEST(BusModel, SinglePELosesOnlyServiceTime) {
  // One PE never queues behind anyone; the only cost is the bus
  // transfer itself: E = 1 / (1 + t*s) approximately (self-queueing is
  // second-order).
  BusEstimate e = bus_contention(1, 0.2, BusParams{1.0});
  EXPECT_NEAR(e.pe_efficiency, 1.0 / 1.2, 0.03);
}

TEST(BusModel, EfficiencyDecreasesWithPEs) {
  double prev = 2.0;
  for (unsigned pes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    BusEstimate e = bus_contention(pes, 0.2, fast());
    EXPECT_LT(e.pe_efficiency, prev) << pes;
    prev = e.pe_efficiency;
  }
}

TEST(BusModel, SpeedupStillGrowsUntilSaturation) {
  double prev = 0.0;
  for (unsigned pes : {1u, 2u, 4u, 8u}) {
    BusEstimate e = bus_contention(pes, 0.15, fast());
    EXPECT_GT(e.aggregate_speedup, prev) << pes;
    prev = e.aggregate_speedup;
  }
}

TEST(BusModel, EfficiencyDecreasesWithTraffic) {
  double prev = 2.0;
  for (double t : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    BusEstimate e = bus_contention(8, t, fast());
    EXPECT_LT(e.pe_efficiency, prev) << t;
    prev = e.pe_efficiency;
  }
}

TEST(BusModel, SaturationCapsThroughput) {
  // Far beyond saturation the bus serves 1/(t*s) references/cycle in
  // total no matter how many PEs push.
  BusEstimate e = bus_contention(64, 0.5, slow());
  double bus_limit = 1.0 / (0.5 * 2.0);
  EXPECT_LE(e.aggregate_speedup, bus_limit * 1.05);
  EXPECT_GT(e.utilization, 0.95);
}

TEST(BusModel, PaperScenarioHighEfficiency) {
  // The paper's §3.3 claim: with caches capturing >70% of traffic and a
  // fast interleaved bus, 8 PEs run at high shared-memory efficiency.
  BusEstimate e = bus_contention(8, 0.18, BusParams{0.25});
  EXPECT_GT(e.pe_efficiency, 0.9);
  EXPECT_GT(e.aggregate_speedup, 7.0);
}

TEST(BusModel, WriteThroughScenarioDegrades) {
  // Same machine, write-through traffic (~0.65): efficiency collapses.
  BusEstimate wt = bus_contention(8, 0.65, BusParams{0.25});
  BusEstimate bc = bus_contention(8, 0.18, BusParams{0.25});
  EXPECT_LT(wt.pe_efficiency, bc.pe_efficiency - 0.1);
}

TEST(BusModel, ConvergesQuickly) {
  BusEstimate e = bus_contention(32, 0.3, slow());
  EXPECT_LT(e.iterations, 5000);
  EXPECT_GT(e.pe_efficiency, 0.0);
  EXPECT_LE(e.pe_efficiency, 1.0);
}

TEST(BusModel, RejectsNegativeInputs) {
  EXPECT_THROW(bus_contention(4, -0.1, fast()), Error);
  EXPECT_THROW(bus_contention(4, 0.1, BusParams{-1.0}), Error);
}

// --- property tests over a parameter grid ----------------------------------

const unsigned kPeGrid[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
const double kTrafficGrid[] = {0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.8, 1.2};
const double kServiceGrid[] = {0.1, 0.25, 0.5, 1.0, 2.0};

TEST(BusModelProps, EfficiencyNonIncreasingInPEs) {
  for (double t : kTrafficGrid) {
    for (double s : kServiceGrid) {
      double prev = 1.0 + 1e-12;
      for (unsigned pes : kPeGrid) {
        BusEstimate e = bus_contention(pes, t, BusParams{s});
        EXPECT_LE(e.pe_efficiency, prev) << pes << "/" << t << "/" << s;
        prev = e.pe_efficiency;
      }
    }
  }
}

TEST(BusModelProps, EfficiencyNonIncreasingInTraffic) {
  for (unsigned pes : kPeGrid) {
    for (double s : kServiceGrid) {
      double prev = 1.0 + 1e-12;
      for (double t : kTrafficGrid) {
        BusEstimate e = bus_contention(pes, t, BusParams{s});
        EXPECT_LE(e.pe_efficiency, prev) << pes << "/" << t << "/" << s;
        prev = e.pe_efficiency;
      }
    }
  }
}

TEST(BusModelProps, EfficiencyNonIncreasingInServiceTime) {
  for (unsigned pes : kPeGrid) {
    for (double t : kTrafficGrid) {
      double prev = 1.0 + 1e-12;
      for (double s : kServiceGrid) {
        BusEstimate e = bus_contention(pes, t, BusParams{s});
        EXPECT_LE(e.pe_efficiency, prev) << pes << "/" << t << "/" << s;
        prev = e.pe_efficiency;
      }
    }
  }
}

TEST(BusModelProps, UtilizationBoundedAndOutputsPhysical) {
  for (unsigned pes : kPeGrid) {
    for (double t : kTrafficGrid) {
      for (double s : kServiceGrid) {
        BusEstimate e = bus_contention(pes, t, BusParams{s});
        EXPECT_GE(e.utilization, 0.0);
        EXPECT_LE(e.utilization, 1.0);
        EXPECT_GT(e.pe_efficiency, 0.0);
        EXPECT_LE(e.pe_efficiency, 1.0);
        EXPECT_LE(e.aggregate_speedup, static_cast<double>(pes) + 1e-9);
      }
    }
  }
}

TEST(BusModelProps, FixedPointIsSelfConsistent) {
  // The returned efficiency must satisfy the model's own equation:
  // e * (1 + t*(s + wait(rho))) == 1 with rho = pes*e*t*s and the
  // M/D/1 wait s*rho/(2*(1-rho)). This is Little's-law consistency:
  // the issue rate the queueing delay implies is the issue rate that
  // generated the load.
  for (unsigned pes : kPeGrid) {
    for (double t : kTrafficGrid) {
      for (double s : kServiceGrid) {
        BusEstimate e = bus_contention(pes, t, BusParams{s});
        double rho = static_cast<double>(pes) * e.pe_efficiency * t * s;
        if (rho >= 1.0 - 1e-9) continue;  // saturated: checked separately
        double wait = s * rho / (2.0 * (1.0 - rho));
        double cycles = 1.0 + t * (s + wait);
        EXPECT_NEAR(e.pe_efficiency * cycles, 1.0, 1e-6)
            << pes << "/" << t << "/" << s;
        // utilization is exactly Little's law applied to the server:
        // arrival rate (pes*e*t words/cycle) times service time.
        EXPECT_NEAR(e.utilization, rho, 1e-9);
      }
    }
  }
}

TEST(BusModelProps, LittlesLawQueueLengthAtFixedPoint) {
  // Mean queued words two ways: N_q = lambda * W_q (Little) and the
  // M/D/1 closed form rho^2 / (2*(1-rho)).
  for (unsigned pes : {4u, 8u, 16u}) {
    for (double t : {0.1, 0.3}) {
      for (double s : {0.25, 0.5, 1.0}) {
        BusEstimate e = bus_contention(pes, t, BusParams{s});
        double rho = static_cast<double>(pes) * e.pe_efficiency * t * s;
        if (rho >= 1.0 - 1e-9) continue;
        double lambda = static_cast<double>(pes) * e.pe_efficiency * t;
        double wq = s * rho / (2.0 * (1.0 - rho));
        EXPECT_NEAR(lambda * wq, rho * rho / (2.0 * (1.0 - rho)), 1e-9);
      }
    }
  }
}

TEST(BusModelProps, SaturationDrivesUtilizationToOne) {
  // Push offered load far past the bus: rho -> 1 (like 1 - O(1/t) for
  // the fixed point) and the aggregate speedup approaches the bus
  // ceiling 1/(t*s) from below.
  for (double t : {8.0, 32.0, 128.0}) {
    BusEstimate e = bus_contention(64, t, BusParams{1.0});
    EXPECT_GT(e.utilization, 0.98) << t;
    EXPECT_LE(e.aggregate_speedup, 1.0 / t + 1e-9) << t;
    EXPECT_NEAR(e.aggregate_speedup, 1.0 / t, 0.05 / t) << t;
  }
  EXPECT_GT(bus_contention(64, 128.0, BusParams{1.0}).utilization,
            bus_contention(64, 8.0, BusParams{1.0}).utilization);
}

}  // namespace
}  // namespace rapwam
