// Bus contention model tests: limiting cases, monotonicity properties,
// saturation behaviour.
#include <gtest/gtest.h>

#include "cache/queueing.h"

namespace rapwam {
namespace {

BusParams fast() { return BusParams{0.25}; }
BusParams slow() { return BusParams{2.0}; }

TEST(BusModel, NoTrafficMeansFullEfficiency) {
  BusEstimate e = bus_contention(16, 0.0, fast());
  EXPECT_DOUBLE_EQ(e.pe_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(e.aggregate_speedup, 16.0);
}

TEST(BusModel, FreeBusMeansFullEfficiency) {
  BusEstimate e = bus_contention(16, 0.5, BusParams{0.0});
  EXPECT_DOUBLE_EQ(e.pe_efficiency, 1.0);
}

TEST(BusModel, SinglePELosesOnlyServiceTime) {
  // One PE never queues behind anyone; the only cost is the bus
  // transfer itself: E = 1 / (1 + t*s) approximately (self-queueing is
  // second-order).
  BusEstimate e = bus_contention(1, 0.2, BusParams{1.0});
  EXPECT_NEAR(e.pe_efficiency, 1.0 / 1.2, 0.03);
}

TEST(BusModel, EfficiencyDecreasesWithPEs) {
  double prev = 2.0;
  for (unsigned pes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    BusEstimate e = bus_contention(pes, 0.2, fast());
    EXPECT_LT(e.pe_efficiency, prev) << pes;
    prev = e.pe_efficiency;
  }
}

TEST(BusModel, SpeedupStillGrowsUntilSaturation) {
  double prev = 0.0;
  for (unsigned pes : {1u, 2u, 4u, 8u}) {
    BusEstimate e = bus_contention(pes, 0.15, fast());
    EXPECT_GT(e.aggregate_speedup, prev) << pes;
    prev = e.aggregate_speedup;
  }
}

TEST(BusModel, EfficiencyDecreasesWithTraffic) {
  double prev = 2.0;
  for (double t : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    BusEstimate e = bus_contention(8, t, fast());
    EXPECT_LT(e.pe_efficiency, prev) << t;
    prev = e.pe_efficiency;
  }
}

TEST(BusModel, SaturationCapsThroughput) {
  // Far beyond saturation the bus serves 1/(t*s) references/cycle in
  // total no matter how many PEs push.
  BusEstimate e = bus_contention(64, 0.5, slow());
  double bus_limit = 1.0 / (0.5 * 2.0);
  EXPECT_LE(e.aggregate_speedup, bus_limit * 1.05);
  EXPECT_GT(e.utilization, 0.95);
}

TEST(BusModel, PaperScenarioHighEfficiency) {
  // The paper's §3.3 claim: with caches capturing >70% of traffic and a
  // fast interleaved bus, 8 PEs run at high shared-memory efficiency.
  BusEstimate e = bus_contention(8, 0.18, BusParams{0.25});
  EXPECT_GT(e.pe_efficiency, 0.9);
  EXPECT_GT(e.aggregate_speedup, 7.0);
}

TEST(BusModel, WriteThroughScenarioDegrades) {
  // Same machine, write-through traffic (~0.65): efficiency collapses.
  BusEstimate wt = bus_contention(8, 0.65, BusParams{0.25});
  BusEstimate bc = bus_contention(8, 0.18, BusParams{0.25});
  EXPECT_LT(wt.pe_efficiency, bc.pe_efficiency - 0.1);
}

TEST(BusModel, ConvergesQuickly) {
  BusEstimate e = bus_contention(32, 0.3, slow());
  EXPECT_LT(e.iterations, 5000);
  EXPECT_GT(e.pe_efficiency, 0.0);
  EXPECT_LE(e.pe_efficiency, 1.0);
}

TEST(BusModel, RejectsNegativeInputs) {
  EXPECT_THROW(bus_contention(4, -0.1, fast()), Error);
  EXPECT_THROW(bus_contention(4, 0.1, BusParams{-1.0}), Error);
}

}  // namespace
}  // namespace rapwam
