// Shared deterministic randomness for the test suites. One copy of
// the generator so every differential suite draws from the same
// stream shape — a change here changes all of their coverage at once,
// never one suite silently.
#pragma once

#include <vector>

#include "trace/memref.h"

namespace rapwam {

// Deterministic 64-bit LCG (MMIX constants); tests must not depend on
// libc rand.
struct Lcg {
  u64 s;
  explicit Lcg(u64 seed) : s(seed * 0x9E3779B97F4A7C15ull + 1) {}
  u64 next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 24;
  }
  u64 next(u64 bound) { return next() % bound; }
};

/// Random busy-reference trace mixing a shared hot region (cross-PE
/// traffic: misses, invalidations, cache-to-cache flushes) with per-PE
/// private regions (capacity evictions), over all Table-1 object
/// classes so the hybrid protocol sees both localities. Deterministic
/// in `seed`.
inline std::vector<u64> random_trace(u64 seed, unsigned pes, std::size_t n) {
  Lcg rng(seed);
  std::vector<u64> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemRef r;
    r.pe = static_cast<u8>(rng.next(pes));
    if (rng.next(3) == 0) {
      r.addr = rng.next(96);  // shared hot lines
    } else {
      r.addr = 4096 + r.pe * 8192 + rng.next(2048);  // private working set
    }
    r.cls = static_cast<ObjClass>(rng.next(kObjClassCount));
    r.write = rng.next(5) < 2;
    r.busy = true;
    out.push_back(r.pack());
  }
  return out;
}

}  // namespace rapwam
