// Robustness of the trace pipeline under failure (docs/DESIGN.md §10):
// error-aware TraceLibrary memoization, crash-safe FileTraceSink
// publication, ChunkStream consumer failure, and cooperative
// cancellation through the sweep paths. Every scenario here is a way a
// single bad request or unlucky run used to be able to wedge or poison
// a long-lived process.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "cache/sweep.h"
#include "harness/runner.h"
#include "harness/trace_lib.h"
#include "support/cancel.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("rapwam_rb_" + std::to_string(::getpid()) + "_" + tag))
      .string();
}

// --- TraceLibrary error-aware memoization ----------------------------------

TEST(TraceLibraryEviction, FailedGenerationIsRetriedNotCached) {
  TraceLibrary lib;
  // An unknown benchmark makes generation itself throw. The failure
  // must not be memoized: both calls throw (a cached broken future
  // would also throw, but the eviction counter tells them apart).
  EXPECT_THROW(lib.get("no_such_bench", BenchScale::Small, 2), Error);
  EXPECT_EQ(lib.failed_generations(), 1u);
  EXPECT_EQ(lib.size(), 0u);  // evicted, not parked
  EXPECT_THROW(lib.get("no_such_bench", BenchScale::Small, 2), Error);
  EXPECT_EQ(lib.failed_generations(), 2u);  // generated again, failed again
  EXPECT_EQ(lib.size(), 0u);
}

TEST(TraceLibraryEviction, FailureDoesNotPoisonOtherKeys) {
  TraceLibrary lib;
  EXPECT_THROW(lib.get("no_such_bench", BenchScale::Small, 2), Error);
  std::shared_ptr<const GeneratedTrace> good =
      lib.get("qsort", BenchScale::Small, 2);
  ASSERT_TRUE(good && good->trace);
  EXPECT_GT(good->trace->size(), 0u);
  EXPECT_EQ(lib.size(), 1u);  // only the good key is cached
}

TEST(TraceLibraryEviction, CancelledGenerationIsEvictedAndRetried) {
  TraceLibrary lib;
  // Already-expired deadline: the owner aborts its own generation at
  // the first chunk checkpoint and must evict the entry on the way out.
  CancelToken expired = CancelToken::with_deadline(std::chrono::milliseconds(0));
  EXPECT_THROW(lib.get("qsort", BenchScale::Small, 2, false, 1, &expired),
               CancelledError);
  EXPECT_EQ(lib.failed_generations(), 1u);
  EXPECT_EQ(lib.size(), 0u);
  // The next caller regenerates from scratch and succeeds.
  std::shared_ptr<const GeneratedTrace> good =
      lib.get("qsort", BenchScale::Small, 2);
  ASSERT_TRUE(good && good->trace);
  EXPECT_GT(good->trace->size(), 0u);
}

TEST(TraceLibraryEviction, ConcurrentGettersOfFailingKeyAllThrow) {
  TraceLibrary lib;
  constexpr int kThreads = 8;
  std::atomic<int> threw{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i)
    ts.emplace_back([&] {
      try {
        lib.get("no_such_bench", BenchScale::Small, 2);
      } catch (const Error&) {
        threw.fetch_add(1);
      }
    });
  for (std::thread& t : ts) t.join();
  // Everyone fails (either as the generating owner or as a waiter on
  // the owner's run), and nothing is left behind.
  EXPECT_EQ(threw.load(), kThreads);
  EXPECT_EQ(lib.size(), 0u);
  EXPECT_GE(lib.failed_generations(), 1u);
}

// --- FileTraceSink crash safety --------------------------------------------

TEST(FileTraceSinkSafety, AbortedRecordingLeavesNothingAtPath) {
  std::string path = temp_path("abort.trc");
  {
    FileTraceSink sink(path, /*busy_only=*/true);
    // Stream part of a real run into it, then "crash": destroy the
    // sink without close(), as stack unwinding through an exception
    // would.
    run_into(bench_program("qsort", BenchScale::Small), 2, false, &sink);
    EXPECT_GT(sink.written(), 0u);
    EXPECT_TRUE(fs::exists(sink.temp_path()));
    EXPECT_FALSE(fs::exists(path));  // nothing published mid-stream
  }
  EXPECT_FALSE(fs::exists(path));            // still nothing at the real path
  EXPECT_FALSE(fs::exists(path + ".tmp"));   // and the temporary is gone
}

TEST(FileTraceSinkSafety, MidStreamExceptionLeavesNothingAtPath) {
  std::string path = temp_path("throw.trc");
  struct Boom {};
  try {
    FileTraceSink sink(path, /*busy_only=*/true);
    std::vector<u64> chunk(16, MemRef{}.pack());
    sink.on_chunk(chunk.data(), chunk.size());
    throw Boom{};  // unwind across the live sink
  } catch (const Boom&) {
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(FileTraceSinkSafety, ClosePublishesACompleteLoadableTrace) {
  std::string path = temp_path("ok.trc");
  u64 written = 0;
  {
    FileTraceSink sink(path, /*busy_only=*/true);
    run_into(bench_program("qsort", BenchScale::Small), 2, false, &sink);
    sink.close();
    written = sink.written();
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::shared_ptr<const ChunkedTrace> t = load_chunked_trace(path);
  EXPECT_EQ(t->size(), written);
  fs::remove(path);
}

// --- ChunkStream consumer failure ------------------------------------------

TEST(ChunkStreamDetach, ThrowingConsumerDoesNotDeadlockTheWindow) {
  constexpr unsigned kConsumers = 2;
  constexpr std::size_t kWindow = 2;   // much smaller than the chunk count
  constexpr int kChunks = 32;
  ChunkStream stream(kConsumers, kWindow);

  std::atomic<int> survivor_chunks{0};
  std::thread failing([&] {
    try {
      int taken = 0;
      while (std::shared_ptr<const std::vector<u64>> c = stream.next(0)) {
        if (++taken == 3) throw Error("simulated consumer failure");
      }
    } catch (const Error&) {
      stream.detach(0);  // the contract: a dead consumer unsubscribes
    }
  });
  std::thread healthy([&] {
    while (std::shared_ptr<const std::vector<u64>> c = stream.next(1))
      survivor_chunks.fetch_add(1);
  });

  // With consumer 0 dead after 3 chunks and a window of 2, the
  // producer would deadlock on chunk ~5 if detach didn't release the
  // window. Completing all pushes IS the assertion.
  for (int i = 0; i < kChunks; ++i)
    stream.push(std::vector<u64>(8, MemRef{}.pack()));
  stream.close();
  failing.join();
  healthy.join();
  EXPECT_EQ(survivor_chunks.load(), kChunks);  // unaffected by the failure
}

TEST(ChunkStreamDetach, StreamingSweepSurfacesConsumerFailureWithoutHanging) {
  // One healthy point and one that cannot even build its simulator
  // (kMaxPes + 1 exceeds the directory's PE cap). run_sweep_streaming
  // must run the producer to completion, join everything, and rethrow
  // the consumer's Error — not hang on the bounded window.
  SweepPoint good;
  good.cfg = paper_cache_config(Protocol::WriteInBroadcast, 1024);
  good.num_pes = 2;
  SweepPoint bad = good;
  bad.num_pes = kMaxPes + 1;

  EXPECT_THROW(
      run_sweep_streaming(
          {good, bad},
          [](TraceSink& sink) {
            run_into(bench_program("qsort", BenchScale::Small), 2, false, &sink);
          }),
      Error);
}

// --- cooperative cancellation through the sweep paths ----------------------

TEST(SweepCancellation, PreCancelledTokenAbortsRunSweep) {
  TraceLibrary lib;
  std::shared_ptr<const GeneratedTrace> g = lib.get("qsort", BenchScale::Small, 2);
  SweepPoint p;
  p.cfg = paper_cache_config(Protocol::WriteInBroadcast, 1024);
  p.num_pes = 2;
  p.chunks = g->trace.get();

  ThreadPool pool(2);
  CancelToken cancelled;
  cancelled.cancel();
  EXPECT_THROW(run_sweep(pool, {p, p, p, p}, &cancelled), CancelledError);

  // The same pool and points run fine without the token — cancellation
  // left no shared state behind.
  std::vector<SweepResult> r = run_sweep(pool, {p});
  EXPECT_GT(r.at(0).stats.refs, 0u);
}

TEST(SweepCancellation, ExpiredDeadlineAbortsStreamingProducerAndConsumers) {
  SweepPoint p;
  p.cfg = paper_cache_config(Protocol::WriteInBroadcast, 1024);
  p.num_pes = 2;
  CancelToken expired = CancelToken::with_deadline(std::chrono::milliseconds(0));
  EXPECT_THROW(
      run_sweep_streaming(
          {p, p},
          [](TraceSink& sink) {
            run_into(bench_program("qsort", BenchScale::Small), 2, false, &sink);
          },
          /*busy_only=*/true, ChunkStream::kDefaultWindow, &expired),
      CancelledError);
}

TEST(SweepCancellation, NullTokenMatchesUncancelledReplayExactly) {
  // The token adds checkpoints, not behaviour: a run that never fires
  // must produce bit-identical stats with and without one.
  TraceLibrary lib;
  std::shared_ptr<const GeneratedTrace> g = lib.get("qsort", BenchScale::Small, 4);
  SweepPoint p;
  p.cfg = paper_cache_config(Protocol::Hybrid, 512);
  p.num_pes = 4;
  p.chunks = g->trace.get();

  ThreadPool pool(2);
  CancelToken generous = CancelToken::with_deadline(std::chrono::minutes(10));
  std::vector<SweepResult> with = run_sweep(pool, {p}, &generous);
  std::vector<SweepResult> without = run_sweep(pool, {p});
  EXPECT_EQ(with.at(0).stats.bus_words, without.at(0).stats.bus_words);
  EXPECT_EQ(with.at(0).stats.refs, without.at(0).stats.refs);
  EXPECT_EQ(with.at(0).stats.misses, without.at(0).stats.misses);
}

}  // namespace
}  // namespace rapwam
