// Fault-injection matrix for the resident sweep service
// (docs/DESIGN.md §10): every injected failure — allocation failure,
// mid-replay throw, stalled replay against a deadline, client
// disconnect, overload, drain mid-flight — must leave the server
// answering subsequent requests with stats bit-identical to a local
// computation. An in-process Server runs over a test-unique unix
// socket (ctest runs suites in parallel) and requests go through the
// real client, so the whole wire path is exercised.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "cache/sweep.h"
#include "harness/golden.h"
#include "harness/trace_lib.h"
#include "server/client.h"
#include "server/server.h"

namespace rapwam {
namespace {

std::string test_socket(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("rapwam_sf_" + std::to_string(::getpid()) + "_" + tag + ".sock"))
      .string();
}

/// In-process server with fault injection enabled, torn down (with a
/// full drain) by the destructor.
struct TestServer {
  explicit TestServer(const std::string& tag, unsigned workers = 2,
                      std::size_t queue = 8) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queue_limit = queue;
    cfg.enable_faults = true;
    server = std::make_unique<Server>(Endpoint::parse("unix:" + test_socket(tag)),
                                      cfg);
    server->start();
  }
  ~TestServer() { server->stop(); }

  const Endpoint& ep() const { return server->endpoint(); }
  Response ask(const std::string& line, int timeout_ms = 30000) {
    return request_once(ep(), line, timeout_ms);
  }

  std::unique_ptr<Server> server;
};

/// The default replay point the requests below use: qsort, small
/// scale, 4 PEs, the paper's broadcast/1024 configuration.
const char* kReplay = R"({"op":"replay","bench":"qsort","pes":4,"id":"chk"})";

/// Asserts a replay response's counters are bit-identical to computing
/// the same point locally — the "server state survived intact" oracle
/// run after every injected fault.
void expect_replay_exact(const Response& r) {
  ASSERT_TRUE(r.ok) << r.code << ": " << r.message;
  std::shared_ptr<const GeneratedTrace> g =
      TraceLibrary::instance().get("qsort", BenchScale::Small, 4);
  TrafficStats want =
      replay_traffic(paper_cache_config(Protocol::WriteInBroadcast, 1024), 4,
                     *g->trace);
  for (const auto& [name, value] : traffic_fields(want)) {
    const JsonValue* got = r.result.find(name);
    ASSERT_NE(got, nullptr) << "missing field " << name;
    EXPECT_EQ(static_cast<u64>(got->as_int()), value) << "field " << name;
  }
}

TEST(ServerFaults, ReplayMatchesLocalComputation) {
  TestServer ts("baseline");
  expect_replay_exact(ts.ask(kReplay));
}

TEST(ServerFaults, AllocationFailuresAreStructuredAndTransient) {
  TestServer ts("alloc");
  // Every allocation checkpoint of the replay path, one at a time.
  for (int site = 1; site <= 3; ++site) {
    Response r = ts.ask(
        R"({"op":"replay","bench":"qsort","pes":4,"fault":{"fail_alloc":)" +
        std::to_string(site) + "}}");
    EXPECT_FALSE(r.ok) << "site " << site;
    EXPECT_EQ(r.code, "resource_exhausted") << "site " << site;
    // The very next request must succeed, bit-identically.
    expect_replay_exact(ts.ask(kReplay));
  }
}

TEST(ServerFaults, MidReplayThrowLeavesServerAnswering) {
  TestServer ts("chunk");
  Response r = ts.ask(
      R"({"op":"replay","bench":"qsort","pes":4,"fault":{"throw_chunk":1}})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "failed");
  EXPECT_NE(r.message.find("injected chunk fault"), std::string::npos);
  expect_replay_exact(ts.ask(kReplay));

  // Same through the timed engine.
  Response t = ts.ask(
      R"({"op":"time","bench":"qsort","pes":4,"fault":{"throw_chunk":1}})");
  EXPECT_FALSE(t.ok);
  EXPECT_EQ(t.code, "failed");
  expect_replay_exact(ts.ask(kReplay));
}

TEST(ServerFaults, StalledReplayHitsItsDeadline) {
  TestServer ts("stall");
  expect_replay_exact(ts.ask(kReplay));  // prewarm: cached trace, fast path
  Response r = ts.ask(
      R"({"op":"replay","bench":"qsort","pes":4,"deadline_ms":40,"fault":{"stall_ms":400}})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "deadline_exceeded");
  expect_replay_exact(ts.ask(kReplay));
}

TEST(ServerFaults, SweepWithInjectedFaultRecovers) {
  TestServer ts("sweepfault");
  Response bad = ts.ask(
      R"({"op":"sweep","bench":"qsort","pes":4,"sizes":[256,1024],"fault":{"throw_chunk":3}})");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, "failed");
  Response good =
      ts.ask(R"({"op":"sweep","bench":"qsort","pes":4,"sizes":[256,1024]})");
  ASSERT_TRUE(good.ok) << good.message;
  EXPECT_EQ(good.result.find("points")->items().size(), 10u);  // 5 protocols x 2
  expect_replay_exact(ts.ask(kReplay));
}

TEST(ServerFaults, ClientDisconnectMidResponseServerSurvives) {
  TestServer ts("discon");
  {
    Socket s = Socket::connect(ts.ep(), 5000);
    s.send_all(std::string(kReplay) + "\n");
    // Vanish without reading the response; the connection thread's
    // send fails and only that connection dies.
  }
  {
    Socket s = Socket::connect(ts.ep(), 5000);
    s.send_all(std::string(kReplay) + "\n");
    s.close();  // also mid-request-lifecycle, before the result exists
  }
  expect_replay_exact(ts.ask(kReplay));
}

TEST(ServerFaults, MalformedLineKeepsConnectionAndServerAlive) {
  TestServer ts("malformed");
  Socket s = Socket::connect(ts.ep(), 5000);
  s.send_all("this is not json\n");
  std::string line;
  ASSERT_TRUE(s.recv_line(line, 1 << 20, 5000));
  Response bad = Response::parse(line);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, "bad_request");
  // Framing stayed intact: the same connection keeps working.
  s.send_all("{\"op\":\"ping\"}\n");
  ASSERT_TRUE(s.recv_line(line, 1 << 20, 5000));
  EXPECT_TRUE(Response::parse(line).ok);
}

TEST(ServerFaults, OversizedLineCannotWedgeTheServer) {
  TestServer ts("oversized");
  {
    Socket s = Socket::connect(ts.ep(), 5000);
    // 1.5 MB with no newline: the server aborts the read at its 1 MB
    // bound and drops the connection; our send may fail once the peer
    // resets — either way nothing hangs.
    std::string huge(std::size_t(3) << 19, 'x');
    try {
      s.send_all(huge);
      s.send_all("\n");
    } catch (const Error&) {
    }
  }
  expect_replay_exact(ts.ask(kReplay));  // unaffected
}

TEST(ServerFaults, OverloadShedsWithRetryAfterAndBackoffClientSucceeds) {
  // One worker, zero queue: a single stalled request saturates the
  // service and everything else must shed immediately.
  TestServer ts("overload", /*workers=*/1, /*queue=*/0);
  expect_replay_exact(ts.ask(kReplay));  // prewarm the trace cache

  Socket hog = Socket::connect(ts.ep(), 5000);
  hog.send_all(
      R"({"op":"replay","bench":"qsort","pes":4,"id":"hog","fault":{"stall_ms":800}})"
      "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // let it admit

  Response shed = ts.ask(kReplay, 5000);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, "overloaded");
  EXPECT_GT(shed.retry_after_ms, 0);

  // Control-plane ops still answer while the worker is saturated.
  Response stats = ts.ask(R"({"op":"stats"})");
  ASSERT_TRUE(stats.ok);
  EXPECT_GE(stats.result.find("shed")->as_int(), 1);

  // The retrying client outlives the hog and eventually gets through.
  ClientOptions opt;
  opt.attempts = 12;
  opt.backoff_ms = 50;
  opt.timeout_ms = 30000;
  opt.jitter_seed = 7;
  ClientOutcome out = request_with_retry(ts.ep(), kReplay, opt);
  EXPECT_GT(out.attempts, 1);  // it really was shed at least once
  expect_replay_exact(out.response);

  std::string line;
  ASSERT_TRUE(hog.recv_line(line, 1 << 20, 30000));
  EXPECT_TRUE(Response::parse(line).ok);  // the hog itself completed fine
}

TEST(ServerFaults, DrainCompletesInFlightAndRejectsNew) {
  TestServer ts("drain");
  expect_replay_exact(ts.ask(kReplay));  // prewarm

  // A: a slow request that will still be executing when the drain
  // begins. C: an idle connection opened before the listener stops.
  Socket a = Socket::connect(ts.ep(), 5000);
  a.send_all(
      R"({"op":"replay","bench":"qsort","pes":4,"id":"inflight","fault":{"stall_ms":800}})"
      "\n");
  Socket c = Socket::connect(ts.ep(), 5000);
  std::string line;
  c.send_all("{\"op\":\"ping\"}\n");  // ensure C is accepted and served
  ASSERT_TRUE(c.recv_line(line, 1 << 20, 5000));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // A admitted

  Response shut = ts.ask(R"({"op":"shutdown","id":"bye"})");
  ASSERT_TRUE(shut.ok);
  EXPECT_TRUE(shut.result.find("draining")->as_bool());

  // New work on a pre-existing connection: rejected, not executed.
  c.send_all(std::string(kReplay) + "\n");
  ASSERT_TRUE(c.recv_line(line, 1 << 20, 5000));
  Response rejected = Response::parse(line);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "shutting_down");

  // The in-flight request ran to completion with exact results.
  ASSERT_TRUE(a.recv_line(line, 1 << 20, 30000));
  expect_replay_exact(Response::parse(line));

  ts.server->stop();  // run() returns after the drain; join it
  ServiceCounters counters = ts.server->service().counters();
  // prewarm + in-flight (control-plane ops don't count as completed)
  EXPECT_GE(counters.completed, 2u);
  EXPECT_GE(counters.rejected, 1u);   // the shutting_down bounce
  EXPECT_EQ(counters.cancelled, 0u);  // drain never cancels in-flight work
}

TEST(ServerFaults, SignalStyleStopDrainsInFlightWork) {
  TestServer ts("sigstop");
  expect_replay_exact(ts.ask(kReplay));  // prewarm

  Socket a = Socket::connect(ts.ep(), 5000);
  a.send_all(
      R"({"op":"replay","bench":"qsort","pes":4,"id":"sig","fault":{"stall_ms":300}})"
      "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // What the SIGINT/SIGTERM handler does — nothing more.
  ts.server->request_stop();

  std::string line;
  ASSERT_TRUE(a.recv_line(line, 1 << 20, 30000));
  expect_replay_exact(Response::parse(line));
  ts.server->stop();
}

TEST(ServerFaults, GoldenOpIsCleanAfterInjectedFaults) {
  TestServer ts("golden");
  // Poison attempts first: a failed generation and a mid-replay throw.
  Response f1 = ts.ask(
      R"({"op":"replay","bench":"qsort","pes":4,"fault":{"fail_alloc":1}})");
  EXPECT_FALSE(f1.ok);
  Response f2 = ts.ask(
      R"({"op":"replay","bench":"qsort","pes":4,"fault":{"throw_chunk":1}})");
  EXPECT_FALSE(f2.ok);
  // The full golden corpus comparison for the bench must still pass
  // through the server — nothing the faults touched was shared state.
  Response g = ts.ask(R"({"op":"golden","bench":"qsort"})", 120000);
  ASSERT_TRUE(g.ok) << g.code << ": " << g.message;
  EXPECT_TRUE(g.result.find("clean")->as_bool())
      << json_write(*g.result.find("mismatches"));
}

TEST(ServerFaults, FaultPlansRejectedWhenInjectionDisabled) {
  ServiceConfig cfg;  // enable_faults defaults to false: production mode
  cfg.workers = 1;
  Server server(Endpoint::parse("unix:" + test_socket("nofaults")), cfg);
  server.start();
  Response r = request_once(
      server.endpoint(),
      R"({"op":"replay","bench":"qsort","pes":4,"fault":{"stall_ms":1}})",
      10000);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "bad_request");
  server.stop();
}

// --- checkpoint/resume of cancelled requests (docs/DESIGN.md §12) ----------
//
// A replay killed by its deadline snapshots the simulator at the chunk
// boundary where the deadline struck; the client's retry finds the
// snapshot (same config + trace = same key), resumes from it, and
// produces stats bit-identical to an uninterrupted run. A corrupted
// snapshot is rejected by validation and the retry replays from
// scratch — slower, never wrong.

/// Paper-scale qsort: a 7-chunk trace, so a deadline can strike a real
/// interior boundary and a resume can skip completed chunks.
const char* kPaperReplay =
    R"({"op":"replay","bench":"qsort","scale":"paper","pes":4,"id":"pck"})";

/// Exactness oracle at paper scale (the in-process server shares the
/// memoized TraceLibrary, so this recomputes nothing after prewarm).
void expect_paper_exact(const Response& r) {
  ASSERT_TRUE(r.ok) << r.code << ": " << r.message;
  std::shared_ptr<const GeneratedTrace> g =
      TraceLibrary::instance().get("qsort", BenchScale::Paper, 4);
  TrafficStats want =
      replay_traffic(paper_cache_config(Protocol::WriteInBroadcast, 1024), 4,
                     *g->trace);
  for (const auto& [name, value] : traffic_fields(want)) {
    const JsonValue* got = r.result.find(name);
    ASSERT_NE(got, nullptr) << "missing field " << name;
    EXPECT_EQ(static_cast<u64>(got->as_int()), value) << "field " << name;
  }
}

u64 stat_of(TestServer& ts, const std::string& name) {
  Response st = ts.ask(R"({"op":"stats"})");
  EXPECT_TRUE(st.ok) << st.message;
  const JsonValue* v = st.result.find(name);
  EXPECT_NE(v, nullptr) << name;
  return v ? static_cast<u64>(v->as_int()) : 0;
}

TEST(ServerCheckpoint, DeadlineCheckpointsAndRetryResumesBitIdentical) {
  TestServer ts("ckresume");
  Response warm = ts.ask(kPaperReplay, 120000);  // generate + memoize
  expect_paper_exact(warm);
  ASSERT_NE(warm.result.find("resumed_chunks"), nullptr);
  EXPECT_EQ(warm.result.find("resumed_chunks")->as_int(), 0);

  // Stall every chunk against a deadline until a retry actually skips
  // work. The stall/deadline ratio makes several chunks complete
  // before cancellation, so one round is the overwhelmingly likely
  // outcome; the loop only absorbs scheduler noise on a loaded
  // machine. Every retry, resumed or not, must be exact.
  i64 resumed_chunks = 0;
  for (int round = 0; round < 10 && resumed_chunks == 0; ++round) {
    Response dead = ts.ask(
        R"({"op":"replay","bench":"qsort","scale":"paper","pes":4,"deadline_ms":150,"fault":{"stall_ms":35}})");
    EXPECT_FALSE(dead.ok);
    EXPECT_EQ(dead.code, "deadline_exceeded");
    Response retry = ts.ask(kPaperReplay, 120000);
    expect_paper_exact(retry);
    resumed_chunks = retry.result.find("resumed_chunks")->as_int();
  }
  EXPECT_GT(resumed_chunks, 0) << "no retry ever resumed past a chunk";
  EXPECT_GE(stat_of(ts, "checkpoints_written"), 1u);
  EXPECT_GE(stat_of(ts, "resumes"), 1u);
  EXPECT_GE(stat_of(ts, "resume_chunks_skipped"),
            static_cast<u64>(resumed_chunks));
  EXPECT_EQ(stat_of(ts, "corrupt_checkpoints_rejected"), 0u);
}

TEST(ServerCheckpoint, TimedRequestsCheckpointAndResumeToo) {
  TestServer ts("cktimed");
  Response warm = ts.ask(
      R"({"op":"time","bench":"qsort","scale":"paper","pes":4,"id":"tw"})",
      120000);
  ASSERT_TRUE(warm.ok) << warm.message;

  Response dead = ts.ask(
      R"({"op":"time","bench":"qsort","scale":"paper","pes":4,"deadline_ms":150,"fault":{"stall_ms":35}})");
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.code, "deadline_exceeded");

  Response retry = ts.ask(
      R"({"op":"time","bench":"qsort","scale":"paper","pes":4,"id":"tr"})",
      120000);
  ASSERT_TRUE(retry.ok) << retry.message;
  // Resumed or clean, the timed result is bit-identical to the
  // uninterrupted run — every timing field, not just traffic.
  for (const auto& [name, value] : timing_fields(TimingStats{})) {
    (void)value;
    const JsonValue *a = warm.result.find(name), *b = retry.result.find(name);
    ASSERT_NE(a, nullptr) << name;
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(a->as_int(), b->as_int()) << "timing field " << name;
  }
  EXPECT_GE(stat_of(ts, "checkpoints_written"), 1u);
  EXPECT_GE(stat_of(ts, "resumes") + stat_of(ts, "corrupt_checkpoints_rejected"),
            1u);
}

TEST(ServerCheckpoint, CorruptSnapshotRejectedRetryReplaysFromScratch) {
  TestServer ts("ckflip");
  expect_paper_exact(ts.ask(kPaperReplay, 120000));  // prewarm

  // The snapshot is bit-flipped as it is stored; the retry must reject
  // it by checksum and fall back to a clean replay — exact, unresumed.
  Response dead = ts.ask(
      R"({"op":"replay","bench":"qsort","scale":"paper","pes":4,"deadline_ms":150,"fault":{"stall_ms":35,"flip_checkpoint":1}})");
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.code, "deadline_exceeded");
  ASSERT_GE(stat_of(ts, "checkpoints_written"), 1u);

  Response retry = ts.ask(kPaperReplay, 120000);
  expect_paper_exact(retry);
  EXPECT_EQ(retry.result.find("resumed_chunks")->as_int(), 0);
  EXPECT_GE(stat_of(ts, "corrupt_checkpoints_rejected"), 1u);
  EXPECT_EQ(stat_of(ts, "resumes"), 0u);
}

TEST(ServerCheckpoint, TruncatedSnapshotRejectedRetryReplaysFromScratch) {
  TestServer ts("cktrunc");
  expect_paper_exact(ts.ask(kPaperReplay, 120000));

  Response dead = ts.ask(
      R"({"op":"replay","bench":"qsort","scale":"paper","pes":4,"deadline_ms":150,"fault":{"stall_ms":35,"truncate_checkpoint":1}})");
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.code, "deadline_exceeded");

  Response retry = ts.ask(kPaperReplay, 120000);
  expect_paper_exact(retry);
  EXPECT_EQ(retry.result.find("resumed_chunks")->as_int(), 0);
  EXPECT_GE(stat_of(ts, "corrupt_checkpoints_rejected"), 1u);
}

TEST(ServerCheckpoint, CheckpointWriteCrashMeansCleanRetry) {
  TestServer ts("ckcrash");
  expect_paper_exact(ts.ask(kPaperReplay, 120000));

  // The snapshot write itself "crashes": nothing is stored, the retry
  // finds nothing and replays from scratch — still exact.
  Response dead = ts.ask(
      R"({"op":"replay","bench":"qsort","scale":"paper","pes":4,"deadline_ms":150,"fault":{"stall_ms":35,"fail_checkpoint":1}})");
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.code, "deadline_exceeded");
  EXPECT_EQ(stat_of(ts, "checkpoints_written"), 0u);

  Response retry = ts.ask(kPaperReplay, 120000);
  expect_paper_exact(retry);
  EXPECT_EQ(retry.result.find("resumed_chunks")->as_int(), 0);
  EXPECT_EQ(stat_of(ts, "resumes"), 0u);
  EXPECT_EQ(stat_of(ts, "corrupt_checkpoints_rejected"), 0u);
}

// --- cancellable trace generation (docs/DESIGN.md §14) ---------------------
//
// A request whose trace is not yet memoized triggers a generation on
// the worker thread; the request's deadline must be able to kill the
// generation itself — not just the replay — with the worker freed and
// the half-built trace evicted so the next request regenerates.

TEST(ServerFaults, SlowGenerationHitsDeadlineAndFreesTheWorker) {
  TestServer ts("genstall");
  TraceLibrary::instance().clear();  // force a real generation
  u64 cancelled_before = stat_of(ts, "trace_library_cancelled_generations");

  // gen_stall_every/gen_stall_ms stall the engine's cycle loop, so a
  // 100ms deadline strikes at a mid-generation cancellation checkpoint
  // (~every 1024 cycles). The elapsed bound is deliberately loose for
  // sanitizer builds; unloaded, the response lands around 2x deadline.
  auto t0 = std::chrono::steady_clock::now();
  Response dead = ts.ask(
      R"({"op":"replay","bench":"tak","pes":2,"deadline_ms":100,"fault":{"gen_stall_every":256,"gen_stall_ms":20}})");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.code, "deadline_exceeded");
  EXPECT_LT(elapsed.count(), 2000) << "generation was not cancelled promptly";

  // The worker is free again: control plane answers, the cancelled
  // generation was counted, and — because the half-built entry was
  // evicted — the same point regenerates cleanly without the fault.
  EXPECT_TRUE(ts.ask(R"({"op":"ping"})").ok);
  EXPECT_GE(stat_of(ts, "trace_library_cancelled_generations"),
            cancelled_before + 1);
  Response clean = ts.ask(R"({"op":"replay","bench":"tak","pes":2})", 120000);
  ASSERT_TRUE(clean.ok) << clean.code << ": " << clean.message;
}

TEST(ServerFaults, GenerationHeapFaultIsStructuredAndTransient) {
  TestServer ts("genheap");
  TraceLibrary::instance().clear();
  Response r = ts.ask(
      R"({"op":"replay","bench":"deriv","pes":2,"fault":{"gen_fail_heap":1}})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "resource_exhausted");
  EXPECT_NE(r.message.find("injected"), std::string::npos) << r.message;
  // Error-aware memoization: the failed generation was evicted, so the
  // retry without the fault plan succeeds.
  Response clean = ts.ask(R"({"op":"replay","bench":"deriv","pes":2})", 120000);
  ASSERT_TRUE(clean.ok) << clean.code << ": " << clean.message;
}

}  // namespace
}  // namespace rapwam
