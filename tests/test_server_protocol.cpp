// Server request-protocol hardening (docs/DESIGN.md §10): the strict
// JSON parser and parse_request() against malformed, truncated and
// hostile input. Invariant under fuzz: every input either yields a
// valid value/Request or throws rapwam::Error — no crash, no hang, no
// state mutation. The fuzz streams are LCG-driven and deterministic,
// so any failure replays.
#include <gtest/gtest.h>

#include "server/json.h"
#include "server/protocol.h"

namespace rapwam {
namespace {

// --- JSON parser: accepts real JSON ----------------------------------------

TEST(JsonParse, Values) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_EQ(json_parse("true").as_bool(), true);
  EXPECT_EQ(json_parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(json_parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(json_parse("\"hi\\n\\u0041\"").as_string(), "hi\nA");
  EXPECT_EQ(json_parse("[1,2,3]").items().size(), 3u);
  JsonValue v = json_parse(R"({"a":1,"b":{"c":[true,null]}})");
  ASSERT_TRUE(v.find("b"));
  EXPECT_EQ(v.find("b")->find("c")->items().size(), 2u);
  EXPECT_TRUE(json_parse("  {\"x\": 0}  ").is_object());  // outer whitespace ok
}

TEST(JsonParse, SurrogatePairs) {
  // U+1F600 as \uD83D\uDE00 -> 4-byte UTF-8.
  EXPECT_EQ(json_parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(json_parse("\"\\uD83D\""), Error);        // lone high surrogate
  EXPECT_THROW(json_parse("\"\\uDE00\""), Error);        // lone low surrogate
  EXPECT_THROW(json_parse("\"\\uD83D\\u0041\""), Error);  // broken pair
}

TEST(JsonParse, RoundTripsThroughWriter) {
  const char* docs[] = {
      R"({"op":"replay","pes":4,"id":"x","nested":{"a":[1,2.5,true,null]}})",
      R"([{"k":"\"quoted\" and \\ and \u0007"},[],{},-0.125,9223372036854775807])",
  };
  for (const char* d : docs) {
    JsonValue v = json_parse(d);
    JsonValue again = json_parse(json_write(v));
    EXPECT_EQ(json_write(v), json_write(again)) << d;
  }
}

// --- JSON parser: rejects everything else ----------------------------------

TEST(JsonParse, RejectsMalformed) {
  const char* bad[] = {
      "",            "   ",         "{",       "}",          "[1,2",
      "{\"a\":}",    "{\"a\" 1}",   "{'a':1}", "[1,]",       "{\"a\":1,}",
      "nul",         "tru",         "+1",      "01",         "1.",
      ".5",          "1e",          "--1",     "\"abc",      "\"\\x\"",
      "\"\\u12\"",   "{\"a\":1}x",  "1 2",     "[1] []",     "\x01",
      "{\"a\":1,\"a\":2}",  // duplicate key
  };
  for (const char* b : bad) EXPECT_THROW(json_parse(b), Error) << '"' << b << '"';
}

TEST(JsonParse, RejectsRawControlCharInString) {
  std::string s = "\"a\nb\"";  // literal newline must be escaped
  EXPECT_THROW(json_parse(s), Error);
}

TEST(JsonParse, EnforcesResourceLimits) {
  // Depth bomb: one past the limit throws, at the limit parses.
  JsonLimits lim;
  std::string nested(lim.max_depth + 1, '[');
  nested += std::string(lim.max_depth + 1, ']');
  EXPECT_THROW(json_parse(nested, lim), Error);
  std::string ok(lim.max_depth, '[');
  ok += std::string(lim.max_depth, ']');
  EXPECT_NO_THROW(json_parse(ok, lim));

  // Size cap.
  JsonLimits tiny;
  tiny.max_bytes = 16;
  EXPECT_THROW(json_parse(std::string(17, ' ') + "1", tiny), Error);

  // Member-count cap.
  JsonLimits few;
  few.max_members = 3;
  EXPECT_THROW(json_parse("[1,2,3,4]", few), Error);
  EXPECT_NO_THROW(json_parse("[1,2,3]", few));
}

TEST(JsonParse, TruncationsOfAValidDocAllThrow) {
  std::string doc =
      R"({"op":"sweep","bench":"qsort","protocols":["wt","hybrid"],"sizes":[256,1024],"id":17})";
  EXPECT_NO_THROW(json_parse(doc));
  for (std::size_t n = 0; n < doc.size(); ++n) {
    std::string prefix = doc.substr(0, n);
    try {
      json_parse(prefix);
      // A strict prefix of this doc is never complete JSON.
      FAIL() << "accepted truncated prefix of length " << n;
    } catch (const Error&) {
    }
  }
}

TEST(JsonParse, FuzzNeverCrashes) {
  u64 lcg = 0x9e3779b97f4a7c15ull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  // Random byte soup, biased toward JSON punctuation so it gets past
  // the first character often enough to stress the deep paths.
  const char alphabet[] = "{}[]\":,0123456789.eE+-truefalsnl \\u\x01\xff";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s;
    std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i)
      s += alphabet[next() % (sizeof alphabet - 1)];
    try {
      (void)json_parse(s);
    } catch (const Error&) {
    }  // either outcome is fine; crashing is not
  }
}

// --- parse_request: validation before any state ----------------------------

TEST(ParseRequest, AcceptsTheDocumentedShape) {
  Request r = parse_request(
      R"({"op":"replay","bench":"qsort","pes":4,"protocol":"broadcast","size":1024,"deadline_ms":2000,"id":7})");
  EXPECT_EQ(r.op, ReqOp::Replay);
  EXPECT_EQ(r.bench, "qsort");
  EXPECT_EQ(r.pes, 4u);
  EXPECT_EQ(r.cfg.size_words, 1024u);
  EXPECT_EQ(r.deadline_ms, 2000u);
  EXPECT_EQ(r.id.as_int(), 7);
  // Figure-4 allocation policy applied when not pinned explicitly.
  EXPECT_EQ(r.cfg.write_allocate,
            paper_write_allocate(r.cfg.protocol, r.cfg.size_words));
}

TEST(ParseRequest, SweepDefaultsAndCaps) {
  Request r = parse_request(R"({"op":"sweep"})");
  EXPECT_EQ(r.bench, "qsort");
  EXPECT_EQ(r.sweep_protocols.size(), 5u);  // all five paper protocols
  EXPECT_EQ(r.sweep_sizes.size(), 4u);

  RequestLimits lim;
  lim.max_sweep_points = 4;
  EXPECT_THROW(
      parse_request(R"({"op":"sweep","sizes":[16,32,48,64,80]})", lim), Error);
}

TEST(ParseRequest, RejectsInvalid) {
  const char* bad[] = {
      R"("just a string")",
      R"({"no_op":1})",
      R"({"op":"warp"})",
      R"({"op":"replay","pes":0})",
      R"({"op":"replay","pes":1025})",             // > kMaxPes (simulator cap)
      R"({"op":"replay","pes":257})",              // bench trace: > kMaxTracePes
      R"({"op":"time","bench":"qsort","pes":300})",
      R"({"op":"sweep","pes":512})",               // sweeps generate traces too
      R"({"op":"replay","size":0})",
      R"({"op":"replay","size":1030})",           // not a line multiple
      R"({"op":"replay","bench":"unknown"})",
      R"({"op":"replay","bench":"qsort","trace":"x.trc"})",  // exclusive
      R"({"op":"replay","deadline_ms":0})",
      R"({"op":"replay","deadline_ms":99999999999})",
      R"({"op":"ping","bench":"qsort"})",          // member not valid for op
      R"({"op":"sweep","wbuf":4})",                // timing knob on a sweep
      R"({"op":"replay","protcol":"wt"})",         // typo must not pass silently
      R"({"op":"replay","id":[1]})",               // id must be int or string
      R"({"op":"replay","fault":{"bogus":1}})",
      R"({"op":"replay","fault":{"fail_alloc":-1}})",
      R"({"op":"golden","pes":4})",                // golden pins its own grid
  };
  for (const char* b : bad) EXPECT_THROW(parse_request(b), Error) << b;
}

TEST(ParseRequest, FaultPlanParses) {
  Request r = parse_request(
      R"({"op":"replay","fault":{"fail_alloc":2,"throw_chunk":1,"stall_ms":5}})");
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(r.fault->fail_alloc_n, 2u);
  EXPECT_EQ(r.fault->throw_chunk_n, 1u);
  EXPECT_EQ(r.fault->stall_ms, 5u);
  EXPECT_TRUE(r.fault->any());
}

TEST(ParseRequest, FuzzMutatedRequestsNeverCrash) {
  const std::string seed =
      R"({"op":"time","bench":"qsort","pes":8,"service":1,"interleave":2,"wbuf":4,"deadline_ms":1000,"id":"t"})";
  u64 lcg = 42;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s = seed;
    // 1-4 random single-byte mutations: overwrite, delete or insert.
    int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits && !s.empty(); ++e) {
      std::size_t pos = next() % s.size();
      switch (next() % 3) {
        case 0: s[pos] = static_cast<char>(next() % 256); break;
        case 1: s.erase(pos, 1); break;
        default: s.insert(pos, 1, static_cast<char>(next() % 256)); break;
      }
    }
    try {
      (void)parse_request(s);
    } catch (const Error&) {
    }
  }
}

// --- response framing -------------------------------------------------------

TEST(ResponseFraming, OkRoundTrip) {
  JsonValue result = JsonValue::object();
  result.set("refs", JsonValue::unsigned_int(6612));
  std::string line = ok_response(JsonValue::integer(9), std::move(result));
  Response r = Response::parse(line);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.id.as_int(), 9);
  EXPECT_EQ(r.result.find("refs")->as_int(), 6612);
}

TEST(ResponseFraming, ErrorRoundTripWithRetryAfter) {
  std::string line = error_response(JsonValue::string("req-3"),
                                    ErrCode::Overloaded,
                                    "admission queue full", 25);
  Response r = Response::parse(line);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.id.as_string(), "req-3");
  EXPECT_EQ(r.code, "overloaded");
  EXPECT_EQ(r.retry_after_ms, 25);
}

TEST(ResponseFraming, UnsignedGuardRejectsHugeCounters) {
  EXPECT_NO_THROW(JsonValue::unsigned_int(u64(1) << 62));
  EXPECT_THROW(JsonValue::unsigned_int(~u64(0)), Error);
}

}  // namespace
}  // namespace rapwam
