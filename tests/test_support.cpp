// Unit tests for the support library: interner, stats, table, CLI,
// thread pool.
#include <gtest/gtest.h>

#include "support/cli.h"
#include "support/interner.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace rapwam {
namespace {

TEST(Interner, AssignsDenseIdsAndRoundTrips) {
  Interner in;
  u32 a = in.intern("foo");
  u32 b = in.intern("bar");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("foo"), a);
  EXPECT_EQ(in.name(a), "foo");
  EXPECT_EQ(in.name(b), "bar");
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, ContainsDoesNotCreate) {
  Interner in;
  EXPECT_FALSE(in.contains("x"));
  in.intern("x");
  EXPECT_TRUE(in.contains("x"));
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, NameOutOfRangeThrows) {
  Interner in;
  EXPECT_THROW(in.name(0), Error);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Stats, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
}

TEST(Table, AlignsColumns) {
  TextTable t("title");
  t.header({"a", "bbbb"});
  t.row({"xxx", "y"});
  std::string s = t.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("xxx"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TextTable t;
  t.header({"a", "b"});
  t.row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n", "5", "pos1", "--k=v", "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 5);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("k", ""), "v");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, DefaultSizeNonZero) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace rapwam
