// run_sweep determinism: a sweep executed on a pool of N threads must
// return exactly the same result vector — element-wise identical
// TrafficStats, in input order — as serial execution of the same
// points. Cache simulations share nothing, so any divergence means the
// sweep scrambled results or raced. These tests (and the ThreadPool
// suite in test_support.cpp) are what the CI ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <vector>

#include "cache/sweep.h"
#include "test_rand.h"

namespace rapwam {
namespace {

/// A small but heterogeneous sweep: every protocol, two cache sizes,
/// two PE counts, two traces — 40 points with distinct labels.
std::vector<SweepPoint> make_points(const std::vector<u64>& t4,
                                    const std::vector<u64>& t8) {
  const Protocol protos[] = {Protocol::WriteThrough, Protocol::WriteInBroadcast,
                             Protocol::WriteThroughBroadcast, Protocol::Hybrid,
                             Protocol::Copyback};
  std::vector<SweepPoint> points;
  int label = 0;
  for (Protocol p : protos) {
    for (u32 sz : {256u, 1024u}) {
      for (unsigned pes : {4u, 8u}) {
        SweepPoint sp;
        sp.cfg.protocol = p;
        sp.cfg.size_words = sz;
        sp.cfg.line_words = 4;
        sp.cfg.write_allocate = true;
        sp.num_pes = pes;
        sp.trace = (pes == 4) ? &t4 : &t8;
        sp.label = label++;
        points.push_back(sp);
      }
    }
  }
  return points;
}

TEST(SweepDeterminism, PoolResultsMatchSerialElementwise) {
  std::vector<u64> t4 = random_trace(0xAB5EED, 4, 12000);
  std::vector<u64> t8 = random_trace(0xAB5EEE, 8, 12000);
  std::vector<SweepPoint> points = make_points(t4, t8);

  ThreadPool pool(4);
  std::vector<SweepResult> pooled = run_sweep(pool, points);

  ASSERT_EQ(pooled.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Results come back in input order, carrying their point.
    EXPECT_EQ(pooled[i].point.label, points[i].label) << i;
    EXPECT_EQ(pooled[i].point.num_pes, points[i].num_pes) << i;
    // Element-wise identical to a serial simulation of the same point.
    TrafficStats serial =
        replay_traffic(points[i].cfg, points[i].num_pes, *points[i].trace);
    EXPECT_EQ(pooled[i].stats, serial) << "point " << i;
  }
}

TEST(SweepDeterminism, PoolSizeDoesNotChangeResults) {
  std::vector<u64> t4 = random_trace(0xD1CE, 4, 12000);
  std::vector<u64> t8 = random_trace(0xD1CF, 8, 12000);
  std::vector<SweepPoint> points = make_points(t4, t8);

  ThreadPool p1(1), p8(8);
  std::vector<SweepResult> serial = run_sweep(p1, points);
  std::vector<SweepResult> parallel = run_sweep(p8, points);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].point.label, parallel[i].point.label) << i;
    EXPECT_EQ(serial[i].stats, parallel[i].stats) << "point " << i;
  }
}

TEST(SweepDeterminism, RepeatedRunsAreIdentical) {
  std::vector<u64> t4 = random_trace(0x9E9E, 4, 8000);
  std::vector<u64> t8 = random_trace(0x9E9F, 8, 8000);
  std::vector<SweepPoint> points = make_points(t4, t8);

  ThreadPool pool(8);
  std::vector<SweepResult> a = run_sweep(pool, points);
  std::vector<SweepResult> b = run_sweep(pool, points);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].stats, b[i].stats) << i;
}

TEST(SweepDeterminism, EmptySweepReturnsEmpty) {
  ThreadPool pool(2);
  EXPECT_TRUE(run_sweep(pool, {}).empty());
}

}  // namespace
}  // namespace rapwam
