// The sweep journal (checkpoint/journal.h): a write-ahead log of
// completed sweep points that makes run_sweep / run_sweep_streaming
// resumable. Pinned here:
//
//   * resumed sweeps return journaled stats VERBATIM — proven by
//     planting a sentinel record and observing run_sweep hand it back
//     instead of re-simulating;
//   * a torn or checksum-damaged tail is truncated away and counted,
//     and the journal keeps appending cleanly afterwards;
//   * a header mismatch — wrong magic, wrong version, a config hash
//     from a different sweep — is a hard Error: results must never
//     cross experiments;
//   * the streaming fan-out detaches already-done points (they never
//     consume the chunk window) and journals fresh ones only after a
//     clean join.
//
// Layout facts used below: 16-byte header (magic, version, config
// hash), fixed 172-byte records (magic + index + 19 x u64 stats +
// checksum).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/sweep.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/journal.h"
#include "test_rand.h"
#include "trace/chunks.h"

namespace rapwam {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 172;

struct TempJournal {
  explicit TempJournal(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("rapwam_journal_" + tag + "_" + std::to_string(::getpid())))
                 .string()) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  ~TempJournal() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

struct SweepFixture {
  std::shared_ptr<const ChunkedTrace> trace;
  std::vector<SweepPoint> points;
  u64 hash = 0;

  explicit SweepFixture(u64 seed) {
    std::vector<u64> t = random_trace(seed, 4, 12000);
    ChunkingSink sink(/*busy_only=*/true);
    sink.on_chunk(t.data(), t.size());
    trace = sink.take();
    const Protocol protos[] = {Protocol::WriteThrough,
                               Protocol::WriteInBroadcast, Protocol::Hybrid};
    int label = 0;
    for (Protocol p : protos) {
      for (u32 sz : {256u, 1024u}) {
        SweepPoint sp;
        sp.cfg.protocol = p;
        sp.cfg.size_words = sz;
        sp.cfg.line_words = 4;
        sp.cfg.write_allocate = true;
        sp.num_pes = 4;
        sp.chunks = trace.get();
        sp.label = label++;
        points.push_back(sp);
      }
    }
    hash = sweep_config_hash(points, trace_fingerprint(*trace));
  }
};

TrafficStats sentinel_stats() {
  TrafficStats s;
  s.refs = 12345;
  s.misses = 777;
  s.bus_words = 99999;  // impossible for these points: refs would differ
  return s;
}

// --- record / resume -------------------------------------------------------

TEST(SweepJournal, RecordsEveryPointAndResumesVerbatim) {
  SweepFixture fx(0x5E01);
  TempJournal tj("roundtrip");
  ThreadPool pool(4);

  std::vector<SweepResult> first;
  {
    SweepJournal j(tj.path, fx.hash);
    EXPECT_EQ(j.done_count(), 0u);
    first = run_sweep(pool, fx.points, nullptr, &j);
    EXPECT_EQ(j.done_count(), fx.points.size());
    EXPECT_EQ(j.torn_records_dropped(), 0u);
  }
  EXPECT_EQ(fs::file_size(tj.path),
            kHeaderBytes + fx.points.size() * kRecordBytes);

  // Reopen: everything is done, and a resumed sweep returns rows
  // bit-identical to the first run's.
  SweepJournal j2(tj.path, fx.hash);
  EXPECT_EQ(j2.done_count(), fx.points.size());
  std::vector<SweepResult> second = run_sweep(pool, fx.points, nullptr, &j2);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(second[i].stats, first[i].stats) << "point " << i;
}

TEST(SweepJournal, DonePointsAreNotResimulated) {
  SweepFixture fx(0x5E02);
  TempJournal tj("sentinel");
  // Plant a sentinel for point 0 that no simulation could produce: if
  // run_sweep hands it back, the point was skipped, not recomputed.
  SweepJournal j(tj.path, fx.hash);
  j.record(0, sentinel_stats());
  ASSERT_TRUE(j.is_done(0));
  EXPECT_FALSE(j.is_done(1));

  ThreadPool pool(4);
  std::vector<SweepResult> got = run_sweep(pool, fx.points, nullptr, &j);
  EXPECT_EQ(got[0].stats, sentinel_stats());
  // The fresh points computed normally and were journaled.
  TrafficStats want1 =
      replay_traffic(fx.points[1].cfg, fx.points[1].num_pes, *fx.trace);
  EXPECT_EQ(got[1].stats, want1);
  EXPECT_EQ(j.done_count(), fx.points.size());
}

TEST(SweepJournal, StreamingDetachesDonePointsAndJournalsFreshOnes) {
  SweepFixture fx(0x5E03);
  std::vector<u64> packed = fx.trace->to_packed();
  TempJournal tj("streaming");
  SweepJournal j(tj.path, fx.hash);
  j.record(0, sentinel_stats());

  std::vector<SweepResult> got = run_sweep_streaming(
      fx.points,
      [&](TraceSink& s) { s.on_chunk(packed.data(), packed.size()); },
      /*busy_only=*/true, ChunkStream::kDefaultWindow, nullptr, &j);

  ASSERT_EQ(got.size(), fx.points.size());
  EXPECT_EQ(got[0].stats, sentinel_stats());  // detached, returned verbatim
  for (std::size_t i = 1; i < fx.points.size(); ++i) {
    TrafficStats want =
        replay_traffic(fx.points[i].cfg, fx.points[i].num_pes, *fx.trace);
    EXPECT_EQ(got[i].stats, want) << "point " << i;
  }
  EXPECT_EQ(j.done_count(), fx.points.size());
}

// --- torn / damaged tails --------------------------------------------------

TEST(SweepJournal, TornTailIsTruncatedAndCounted) {
  SweepFixture fx(0x5E04);
  TempJournal tj("torn");
  {
    SweepJournal j(tj.path, fx.hash);
    j.record(0, sentinel_stats());
    j.record(1, sentinel_stats());
  }
  // Append half a record: the crash-mid-append shape.
  std::string bytes = read_file(tj.path);
  write_file(tj.path, bytes + std::string(kRecordBytes / 2, '\x5A'));

  SweepJournal j(tj.path, fx.hash);
  EXPECT_EQ(j.done_count(), 2u);
  EXPECT_EQ(j.torn_records_dropped(), 1u);
  // The torn bytes are gone from disk and appending resumes cleanly.
  EXPECT_EQ(fs::file_size(tj.path), kHeaderBytes + 2 * kRecordBytes);
  j.record(2, sentinel_stats());
  EXPECT_EQ(fs::file_size(tj.path), kHeaderBytes + 3 * kRecordBytes);
}

TEST(SweepJournal, ChecksumDamageDropsTheTailNeverReplaysIt) {
  SweepFixture fx(0x5E05);
  TempJournal tj("flip");
  {
    SweepJournal j(tj.path, fx.hash);
    for (u64 i = 0; i < 3; ++i) j.record(i, sentinel_stats());
  }
  // Flip one byte inside record 1: records are validated front to
  // back, so record 1 AND the (intact) record 2 behind it are dropped
  // — a damaged middle record makes everything after it untrusted.
  std::string bytes = read_file(tj.path);
  std::size_t off = kHeaderBytes + kRecordBytes + kRecordBytes / 2;
  bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
  write_file(tj.path, bytes);

  SweepJournal j(tj.path, fx.hash);
  EXPECT_EQ(j.done_count(), 1u);
  EXPECT_TRUE(j.is_done(0));
  EXPECT_FALSE(j.is_done(1));
  EXPECT_FALSE(j.is_done(2));
  EXPECT_EQ(j.torn_records_dropped(), 2u);
  EXPECT_EQ(fs::file_size(tj.path), kHeaderBytes + kRecordBytes);
}

// --- header validation -----------------------------------------------------

TEST(SweepJournal, ConfigHashMismatchIsAHardError) {
  SweepFixture fx(0x5E06);
  TempJournal tj("hash");
  {
    SweepJournal j(tj.path, fx.hash);
    j.record(0, sentinel_stats());
  }
  // A different sweep (different points) must refuse the journal —
  // and must NOT clobber it: the file is someone else's results.
  EXPECT_THROW(SweepJournal(tj.path, fx.hash ^ 1), Error);
  EXPECT_EQ(fs::file_size(tj.path), kHeaderBytes + kRecordBytes);
  SweepJournal again(tj.path, fx.hash);  // the rightful owner still can
  EXPECT_EQ(again.done_count(), 1u);
}

TEST(SweepJournal, SweepConfigHashSeparatesSweeps) {
  SweepFixture a(0x5E07);
  u64 fp = trace_fingerprint(*a.trace);
  // Any change to the point list changes the hash: reordering,
  // dropping a point, or altering one knob.
  std::vector<SweepPoint> reordered = a.points;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(sweep_config_hash(reordered, fp), a.hash);
  std::vector<SweepPoint> shorter(a.points.begin(), a.points.end() - 1);
  EXPECT_NE(sweep_config_hash(shorter, fp), a.hash);
  std::vector<SweepPoint> tweaked = a.points;
  tweaked[2].cfg.write_allocate = !tweaked[2].cfg.write_allocate;
  EXPECT_NE(sweep_config_hash(tweaked, fp), a.hash);
  EXPECT_NE(sweep_config_hash(a.points, fp ^ 1), a.hash);  // other trace
}

TEST(SweepJournal, BadMagicVersionOrShortHeaderRejected) {
  SweepFixture fx(0x5E08);
  TempJournal tj("header");
  {
    SweepJournal j(tj.path, fx.hash);
    j.record(0, sentinel_stats());
  }
  std::string good = read_file(tj.path);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  write_file(tj.path, bad_magic);
  EXPECT_THROW(SweepJournal(tj.path, fx.hash), Error);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(kJournalVersion + 1);
  write_file(tj.path, bad_version);
  EXPECT_THROW(SweepJournal(tj.path, fx.hash), Error);

  write_file(tj.path, good.substr(0, kHeaderBytes / 2));
  EXPECT_THROW(SweepJournal(tj.path, fx.hash), Error);
}

}  // namespace
}  // namespace rapwam
