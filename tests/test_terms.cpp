// TermStore tests: construction, equality, variable collection,
// printing; plus the Table-1 storage map and packed MemRef codec.
#include <gtest/gtest.h>

#include "prolog/term.h"
#include "trace/tracebuf.h"

namespace rapwam {
namespace {

TEST(TermStore, BasicConstruction) {
  Interner in;
  TermStore st(in);
  const Term* a = st.mk_atom("a");
  const Term* n = st.mk_int(5);
  const Term* f = st.mk_struct("f", {a, n});
  EXPECT_TRUE(a->is_atom());
  EXPECT_TRUE(n->is_int());
  EXPECT_TRUE(f->is_struct());
  EXPECT_EQ(f->arity(), 2u);
  EXPECT_EQ(st.to_string(f), "f(a,5)");
}

TEST(TermStore, ListsPrintWithSugar) {
  Interner in;
  TermStore st(in);
  const Term* l = st.mk_list({st.mk_int(1), st.mk_int(2)});
  EXPECT_EQ(st.to_string(l), "[1,2]");
  const Term* p = st.mk_list({st.mk_int(1)}, st.mk_var("T"));
  EXPECT_EQ(st.to_string(p), "[1|_T]");
}

TEST(TermStore, StructuralEquality) {
  Interner in;
  TermStore st(in);
  const Term* a1 = st.mk_struct("f", {st.mk_int(1), st.mk_atom("x")});
  const Term* a2 = st.mk_struct("f", {st.mk_int(1), st.mk_atom("x")});
  const Term* b = st.mk_struct("f", {st.mk_int(2), st.mk_atom("x")});
  EXPECT_TRUE(TermStore::equal(a1, a2));
  EXPECT_FALSE(TermStore::equal(a1, b));
  // Distinct var nodes are distinct variables.
  EXPECT_FALSE(TermStore::equal(st.mk_var("X"), st.mk_var("X")));
}

TEST(TermStore, CollectVarsFirstOccurrenceOrder) {
  Interner in;
  TermStore st(in);
  const Term* x = st.mk_var("X");
  const Term* y = st.mk_var("Y");
  const Term* t = st.mk_struct("f", {x, st.mk_struct("g", {y, x})});
  std::vector<const Term*> vars;
  TermStore::collect_vars(t, vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], x);
  EXPECT_EQ(vars[1], y);
}

TEST(StorageTable, MatchesPaperTable1) {
  // Spot-check the rows the protocols depend on.
  EXPECT_EQ(traits_of(ObjClass::HeapTerm).locality, Locality::Global);
  EXPECT_EQ(traits_of(ObjClass::TrailEntry).locality, Locality::Local);
  EXPECT_EQ(traits_of(ObjClass::ChoicePoint).locality, Locality::Local);
  EXPECT_EQ(traits_of(ObjClass::EnvPermVar).locality, Locality::Global);
  EXPECT_EQ(traits_of(ObjClass::EnvControl).locality, Locality::Local);
  EXPECT_EQ(traits_of(ObjClass::GoalFrame).locality, Locality::Global);
  // Locked objects per Table 1.
  EXPECT_TRUE(traits_of(ObjClass::ParcallCount).locked);
  EXPECT_TRUE(traits_of(ObjClass::GoalFrame).locked);
  EXPECT_TRUE(traits_of(ObjClass::Message).locked);
  EXPECT_FALSE(traits_of(ObjClass::HeapTerm).locked);
  // WAM-heritage flags.
  EXPECT_TRUE(traits_of(ObjClass::HeapTerm).in_wam);
  EXPECT_FALSE(traits_of(ObjClass::Marker).in_wam);
  EXPECT_FALSE(traits_of(ObjClass::ParcallLocal).in_wam);
}

TEST(StorageTable, EveryClassMapsToItsArea) {
  for (const StorageTraits& s : storage_table()) {
    EXPECT_EQ(traits_of(s.cls).area, s.area);
    EXPECT_FALSE(obj_class_name(s.cls).empty());
  }
}

TEST(MemRef, PackUnpackRoundTrip) {
  MemRef r;
  r.addr = 0x12345678ABull;
  r.pe = 17;
  r.cls = ObjClass::GoalFrame;
  r.write = true;
  r.busy = false;
  MemRef q = MemRef::unpack(r.pack());
  EXPECT_EQ(q.addr, r.addr);
  EXPECT_EQ(q.pe, r.pe);
  EXPECT_EQ(q.cls, r.cls);
  EXPECT_EQ(q.write, r.write);
  EXPECT_EQ(q.busy, r.busy);
}

TEST(MemRef, CountsAggregate) {
  RefCounts c;
  MemRef r;
  r.cls = ObjClass::HeapTerm;
  r.write = false;
  r.busy = true;
  c.add(r);
  r.write = true;
  r.busy = false;
  c.add(r);
  EXPECT_EQ(c.total, 2u);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.busy, 1u);
  EXPECT_EQ(c.by_area[static_cast<size_t>(Area::Heap)], 2u);
}

}  // namespace
}  // namespace rapwam
