// Differential tests of the timed replay (src/timing) against the
// untimed MultiCacheSim, following the test_cache_diff.cpp pattern:
// the timed engine drives the same coherence machinery in global trace
// order, so its TrafficStats must be bit-identical to an untimed
// replay for ALL timing parameters — in particular the zero-cost
// (free-bus) configuration — across all five protocols. Plus
// structural properties of the virtual-time accounting itself.
#include <gtest/gtest.h>

#include <vector>

#include "cache/multisim.h"
#include "test_rand.h"
#include "timing/timed_replay.h"

namespace rapwam {
namespace {

const Protocol kAllProtocols[] = {
    Protocol::WriteThrough, Protocol::WriteInBroadcast,
    Protocol::WriteThroughBroadcast, Protocol::Hybrid, Protocol::Copyback};

CacheConfig small_cfg(Protocol p) {
  CacheConfig cfg;
  cfg.protocol = p;
  cfg.size_words = 512;
  cfg.line_words = 4;
  cfg.write_allocate = true;
  return cfg;
}

TEST(TimingDiff, ZeroCostBusIsBitIdenticalToUntimedAllProtocols) {
  for (Protocol p : kAllProtocols) {
    for (unsigned pes : {1u, 2u, 4u, 8u}) {
      std::vector<u64> trace =
          random_trace(0x71AEDu + static_cast<u64>(p) * 131 + pes, pes, 20000);
      CacheConfig cfg = small_cfg(p);
      MultiCacheSim untimed(cfg, pes);
      untimed.replay(trace);
      TimedReplay timed(cfg, pes, TimingParams::zero_cost());
      timed.replay(trace);

      const std::string what = protocol_name(p);
      EXPECT_EQ(timed.traffic(), untimed.stats()) << what << " pes=" << pes;
      EXPECT_TRUE(timed.sim().directory_consistent()) << what;

      // A free bus never stalls anyone, and every PE's clock is
      // exactly its issue time.
      TimingStats ts = timed.timing();
      u64 max_refs = 0;
      for (const PeTiming& pt : ts.pe) {
        EXPECT_EQ(pt.stall_cycles, 0u) << what;
        EXPECT_EQ(pt.clock, pt.refs) << what;  // cycles_per_ref == 1
        max_refs = std::max(max_refs, pt.refs);
      }
      EXPECT_EQ(ts.makespan, max_refs) << what;
      EXPECT_EQ(ts.bus_busy_cycles, 0u) << what;
      EXPECT_EQ(ts.bus_transactions, 0u) << what;
    }
  }
}

TEST(TimingDiff, AnyBusParamsLeaveTrafficStatsUnchanged) {
  // Stronger than the zero-cost requirement: timing parameters must
  // never leak into the coherence results.
  const TimingParams params[] = {
      {1, 1, 1, 0}, {1, 1, 2, 4}, {2, 3, 4, 1}, {1, 8, 1, 16}};
  for (Protocol p : kAllProtocols) {
    std::vector<u64> trace = random_trace(0xB0B0 + static_cast<u64>(p), 8, 20000);
    CacheConfig cfg = small_cfg(p);
    MultiCacheSim untimed(cfg, 8);
    untimed.replay(trace);
    for (const TimingParams& tp : params) {
      TimedReplay timed(cfg, 8, tp);
      timed.replay(trace);
      EXPECT_EQ(timed.traffic(), untimed.stats())
          << protocol_name(p) << " svc=" << tp.bus_service_cycles
          << " il=" << tp.interleave << " wbuf=" << tp.write_buffer_depth;
    }
  }
}

TEST(TimingDiff, StepApiAccumulatesExactlyLikeReplay) {
  // The per-reference step() API (which TimedReplay is built on) must
  // decompose every transaction consistently: per-ref outcome deltas
  // sum back to the aggregate counters, and demand+posted == bus.
  std::vector<u64> trace = random_trace(0x57E9, 4, 15000);
  for (Protocol p : kAllProtocols) {
    CacheConfig cfg = small_cfg(p);
    MultiCacheSim stepped(cfg, 4), replayed(cfg, 4);
    u64 bus = 0, demand = 0, posted = 0, misses = 0;
    for (u64 packed : trace) {
      StepOutcome o = stepped.step(MemRef::unpack(packed));
      bus += o.bus_words;
      demand += o.demand_words;
      posted += o.posted_words;
      misses += o.miss ? 1 : 0;
      EXPECT_EQ(o.demand_words + o.posted_words, o.bus_words);
    }
    replayed.replay(trace);
    EXPECT_EQ(stepped.stats(), replayed.stats()) << protocol_name(p);
    EXPECT_EQ(bus, replayed.stats().bus_words) << protocol_name(p);
    EXPECT_EQ(demand,
              replayed.stats().fetch_words + replayed.stats().flush_words)
        << protocol_name(p);
    EXPECT_EQ(posted, bus - demand) << protocol_name(p);
    EXPECT_EQ(misses, replayed.stats().misses) << protocol_name(p);
  }
}

// --- virtual-time accounting properties ------------------------------------

TEST(TimedReplayProps, ClockEqualsBusyPlusStallPerPe) {
  std::vector<u64> trace = random_trace(0xC10C, 8, 20000);
  for (const TimingParams& tp :
       {TimingParams{1, 1, 1, 0}, TimingParams{1, 2, 2, 4}, TimingParams{3, 1, 4, 2}}) {
    TimedReplay timed(small_cfg(Protocol::WriteInBroadcast), 8, tp);
    timed.replay(trace);
    TimingStats ts = timed.timing();
    for (const PeTiming& pt : ts.pe)
      EXPECT_EQ(pt.clock, pt.busy_cycles + pt.stall_cycles);
  }
}

TEST(TimedReplayProps, UtilizationBoundedAndBusyWithinMakespan) {
  std::vector<u64> trace = random_trace(0xB41, 8, 20000);
  for (u32 svc : {1u, 2u, 4u, 8u}) {
    for (u32 wbuf : {0u, 2u, 8u}) {
      TimedReplay timed(small_cfg(Protocol::WriteThrough), 8,
                        TimingParams{1, svc, 1, wbuf});
      timed.replay(trace);
      TimingStats ts = timed.timing();
      EXPECT_LE(ts.bus_busy_cycles, ts.makespan) << svc << "/" << wbuf;
      EXPECT_LE(ts.bus_utilization(), 1.0) << svc << "/" << wbuf;
      EXPECT_GT(ts.bus_utilization(), 0.0) << svc << "/" << wbuf;
      EXPECT_LE(ts.speedup(), 8.0 + 1e-9) << svc << "/" << wbuf;
    }
  }
}

TEST(TimedReplayProps, BusOccupancyScalesExactlyWithServiceCycles) {
  // Traffic is parameter-independent, so doubling the per-word service
  // time exactly doubles total bus occupancy (interleave 1: no
  // rounding).
  std::vector<u64> trace = random_trace(0x5CA1E, 4, 15000);
  CacheConfig cfg = small_cfg(Protocol::WriteInBroadcast);
  u64 base = 0;
  for (u32 svc : {1u, 2u, 4u}) {
    TimedReplay timed(cfg, 4, TimingParams{1, svc, 1, 0});
    timed.replay(trace);
    u64 busy = timed.timing().bus_busy_cycles;
    if (svc == 1) {
      base = busy;
      EXPECT_EQ(busy, timed.traffic().bus_words);
    } else {
      EXPECT_EQ(busy, base * svc);
    }
  }
}

TEST(TimedReplayProps, FreeBusIsALowerBoundOnMakespan) {
  std::vector<u64> trace = random_trace(0xF4EE, 8, 20000);
  CacheConfig cfg = small_cfg(Protocol::WriteInBroadcast);
  TimedReplay free_bus(cfg, 8, TimingParams::zero_cost());
  free_bus.replay(trace);
  u64 floor = free_bus.timing().makespan;
  for (const TimingParams& tp :
       {TimingParams{1, 1, 4, 8}, TimingParams{1, 1, 1, 0}, TimingParams{1, 4, 1, 0}}) {
    TimedReplay timed(cfg, 8, tp);
    timed.replay(trace);
    EXPECT_GE(timed.timing().makespan, floor);
  }
}

TEST(TimedReplayProps, BalancedTraceZeroCostGivesIdealSpeedup) {
  // Strict round-robin interleaving, n divisible by pes: every PE
  // issues exactly n/pes refs, so the free-bus speedup is exactly pes.
  for (unsigned pes : {2u, 4u, 8u}) {
    Lcg rng(pes);
    std::vector<u64> trace;
    for (std::size_t i = 0; i < 8000; ++i) {
      MemRef r;
      r.pe = static_cast<u8>(i % pes);
      r.addr = rng.next(4096);
      r.write = rng.next(4) == 0;
      r.busy = true;
      trace.push_back(r.pack());
    }
    TimedReplay timed(small_cfg(Protocol::WriteInBroadcast), pes,
                      TimingParams::zero_cost());
    timed.replay(trace);
    TimingStats ts = timed.timing();
    EXPECT_DOUBLE_EQ(ts.speedup(), static_cast<double>(pes));
    EXPECT_DOUBLE_EQ(ts.efficiency(), 1.0);
  }
}

TEST(TimedReplayProps, DeterministicAcrossRuns) {
  std::vector<u64> trace = random_trace(0xD5, 8, 20000);
  TimingParams tp{1, 1, 2, 4};
  CacheConfig cfg = small_cfg(Protocol::Hybrid);
  TimedReplay a(cfg, 8, tp), b(cfg, 8, tp);
  a.replay(trace);
  b.replay(trace);
  TimingStats ta = a.timing(), tb = b.timing();
  EXPECT_EQ(ta.makespan, tb.makespan);
  EXPECT_EQ(ta.bus_busy_cycles, tb.bus_busy_cycles);
  EXPECT_EQ(ta.bus_transactions, tb.bus_transactions);
  ASSERT_EQ(ta.pe.size(), tb.pe.size());
  for (std::size_t i = 0; i < ta.pe.size(); ++i) {
    EXPECT_EQ(ta.pe[i].stall_cycles, tb.pe[i].stall_cycles);
    EXPECT_EQ(ta.pe[i].clock, tb.pe[i].clock);
  }
  EXPECT_EQ(a.traffic(), b.traffic());
}

TEST(TimedReplayProps, WriteBufferAbsorbsWriteThroughStalls) {
  // Write-through turns every write into a posted word; with deep
  // buffers and a fast bus most of those never stall the PE, so total
  // stall time must not increase vs. blocking writes.
  std::vector<u64> trace = random_trace(0x3B5F, 8, 20000);
  CacheConfig cfg = small_cfg(Protocol::WriteThrough);
  TimedReplay blocking(cfg, 8, TimingParams{1, 1, 2, 0});
  TimedReplay buffered(cfg, 8, TimingParams{1, 1, 2, 16});
  blocking.replay(trace);
  buffered.replay(trace);
  EXPECT_LE(buffered.timing().total_stall(), blocking.timing().total_stall());
  EXPECT_LE(buffered.timing().makespan, blocking.timing().makespan);
}

// --- write-buffer edge cases ------------------------------------------------

TEST(TimedReplayProps, WriteBufferDepthEdgeCases) {
  // depth 0 (every write blocks), depth 1 (the smallest buffer that
  // can overflow) and a deep buffer must all keep the per-PE
  // accounting identity clock == busy + stall, and agree on the
  // coherence results. Write-through maximises posted writes.
  std::vector<u64> trace = random_trace(0xED6E, 8, 20000);
  CacheConfig cfg = small_cfg(Protocol::WriteThrough);
  MultiCacheSim untimed(cfg, 8);
  untimed.replay(trace);
  u64 prev_stall = ~u64(0);
  for (u32 depth : {0u, 1u, 2u, 64u}) {
    TimedReplay timed(cfg, 8, TimingParams{1, 2, 1, depth});
    timed.replay(trace);
    EXPECT_EQ(timed.traffic(), untimed.stats()) << "depth=" << depth;
    TimingStats ts = timed.timing();
    u64 stall = 0;
    for (const PeTiming& pt : ts.pe) {
      EXPECT_EQ(pt.clock, pt.busy_cycles + pt.stall_cycles)
          << "depth=" << depth;
      stall += pt.stall_cycles;
    }
    // A deeper buffer can only hide more write latency.
    EXPECT_LE(stall, prev_stall) << "depth=" << depth;
    prev_stall = stall;
  }
}

TEST(TimedReplayProps, DepthOneOverflowDrainsOldestFirst) {
  // A single PE issuing back-to-back posted writes through a 1-deep
  // buffer: each write's bus slot is booked immediately, but the PE
  // only waits when the buffer overflows — i.e. it runs one
  // transaction ahead of the bus. With service 2 and issue 1, the bus
  // falls behind by 1 cycle per write until the PE is fully
  // bus-bound, and the LAST write's completion is never waited for
  // (it drains past the PE's clock into the makespan).
  CacheConfig cfg = small_cfg(Protocol::WriteThrough);
  std::vector<u64> trace;
  MemRef prime;  // read fill so every following write is a posted hit
  prime.addr = 0;
  prime.busy = true;
  trace.push_back(prime.pack());
  for (int i = 0; i < 8; ++i) {
    MemRef r;
    r.addr = 0;
    r.write = true;
    r.busy = true;
    trace.push_back(r.pack());
  }
  TimedReplay timed(cfg, 1, TimingParams{1, 2, 1, 1});
  timed.replay(trace);
  TimingStats ts = timed.timing();
  ASSERT_EQ(ts.pe.size(), 1u);
  EXPECT_EQ(ts.pe[0].clock, ts.pe[0].busy_cycles + ts.pe[0].stall_cycles);
  // One 4-word fill (8 busy cycles) + 8 posted words (2 each).
  EXPECT_EQ(ts.bus_busy_cycles, 8u + 8u * 2);
  EXPECT_EQ(ts.bus_transactions, 9u);
  // The fill stalls 8; from the third write on, every overflow waits 1
  // cycle for the oldest entry (the bus runs 2 cycles/write against a
  // 2-cycle issue-to-issue distance once a stall lands). The final
  // write is never waited for: it drains past the PE's clock, so the
  // makespan extends beyond it.
  EXPECT_GT(ts.makespan, ts.pe[0].clock);
  // Blocking writes (depth 0) on the same trace stall strictly more
  // and leave nothing in flight at the end.
  TimedReplay blocking(cfg, 1, TimingParams{1, 2, 1, 0});
  blocking.replay(trace);
  EXPECT_GT(blocking.timing().total_stall(), ts.total_stall());
  EXPECT_EQ(blocking.timing().makespan, blocking.timing().pe[0].clock);
}

TEST(TimedReplayProps, DemandMissDrainsWholeBufferBeforeFilling) {
  // One PE: a run of posted writes (uncached lines with no-allocate
  // would be simplest, but write-through write hits are posted too),
  // then a read miss. The read must wait for every buffered write to
  // drain (memory order), then for its own fill — so its stall covers
  // the full backlog, and the buffer is empty afterwards (observable
  // as: a second immediate read of another line stalls only for its
  // own fill, not for any leftover writes).
  CacheConfig cfg = small_cfg(Protocol::WriteThrough);
  std::vector<u64> trace;
  MemRef w;
  w.addr = 0;
  w.write = true;
  w.busy = true;
  MemRef r1;
  r1.addr = 4096;
  r1.busy = true;
  MemRef r2;
  r2.addr = 8192;
  r2.busy = true;
  // Prime the line, then 6 posted write hits, then two read misses.
  MemRef prime;
  prime.addr = 0;
  prime.busy = true;
  trace.push_back(prime.pack());
  for (int i = 0; i < 6; ++i) trace.push_back(w.pack());
  trace.push_back(r1.pack());
  trace.push_back(r2.pack());

  TimedReplay timed(cfg, 1, TimingParams{1, 2, 1, 8});
  timed.replay(trace);
  TimingStats ts = timed.timing();
  ASSERT_EQ(ts.pe.size(), 1u);
  EXPECT_EQ(ts.pe[0].clock, ts.pe[0].busy_cycles + ts.pe[0].stall_cycles);
  EXPECT_EQ(ts.makespan, ts.pe[0].clock);  // demand misses drained the buffer
  // Total bus occupancy: 3 fills (8 cycles each) + 6 words (2 each).
  EXPECT_EQ(ts.bus_busy_cycles, 3u * 8 + 6u * 2);
  EXPECT_EQ(ts.bus_transactions, 9u);
  // The exact schedule: prime stalls 8; the six posted hits never
  // stall (deep buffer); r1 drains the backlog (6 cycles, to the last
  // write's completion at t=22) then waits its own 8-cycle fill; r2
  // finds the buffer empty and waits only its own 8. Total 8+6+8+8.
  EXPECT_EQ(ts.pe[0].stall_cycles, 30u);
}

TEST(TimedReplayProps, SaturationPeCountFindsFirstSaturatedRun) {
  TimingStats low, high;
  low.pe.resize(1);
  high.pe.resize(1);
  low.makespan = 100;
  low.bus_busy_cycles = 10;
  high.makespan = 100;
  high.bus_busy_cycles = 99;
  std::vector<std::pair<unsigned, TimingStats>> runs = {
      {2, low}, {8, high}, {16, high}};
  EXPECT_EQ(saturation_pe_count(runs), 8u);
  EXPECT_EQ(saturation_pe_count({{2, low}, {4, low}}), 0u);
}

TEST(TimedReplayProps, RejectsDegenerateParams) {
  CacheConfig cfg = small_cfg(Protocol::WriteInBroadcast);
  EXPECT_THROW(TimedReplay(cfg, 4, TimingParams{1, 1, 0, 0}), Error);
  EXPECT_THROW(TimedReplay(cfg, 4, TimingParams{0, 1, 1, 0}), Error);
}

}  // namespace
}  // namespace rapwam
