// Trace infrastructure tests: packed record edge cases, sinks,
// busy-only filtering, file round trips and error handling, and
// consistency between engine counters and emitted traces.
#include <gtest/gtest.h>

#include "engine/machine.h"
#include "harness/runner.h"

namespace rapwam {
namespace {

TEST(MemRefPacking, EdgeValues) {
  MemRef r;
  r.addr = (u64(1) << 40) - 1;  // max encodable address
  r.pe = 63;
  r.cls = ObjClass::Message;    // highest class id in Table 1
  r.write = true;
  r.busy = true;
  MemRef q = MemRef::unpack(r.pack());
  EXPECT_EQ(q.addr, r.addr);
  EXPECT_EQ(q.pe, r.pe);
  EXPECT_EQ(q.cls, r.cls);
  EXPECT_TRUE(q.write);
  EXPECT_TRUE(q.busy);

  MemRef zero;
  EXPECT_EQ(MemRef::unpack(zero.pack()).addr, 0u);
}

TEST(MemRefPacking, AllClassesSurvive) {
  for (std::size_t c = 0; c < kObjClassCount; ++c) {
    MemRef r;
    r.cls = static_cast<ObjClass>(c);
    EXPECT_EQ(MemRef::unpack(r.pack()).cls, r.cls);
  }
}

TEST(Sinks, CountingSinkAggregates) {
  CountingSink s;
  MemRef r;
  r.cls = ObjClass::TrailEntry;
  r.busy = true;
  for (int i = 0; i < 5; ++i) s.on_ref(r);
  r.write = true;
  r.busy = false;
  s.on_ref(r);
  EXPECT_EQ(s.counts().total, 6u);
  EXPECT_EQ(s.counts().writes, 1u);
  EXPECT_EQ(s.counts().busy, 5u);
  EXPECT_EQ(s.counts().by_area[static_cast<size_t>(Area::Trail)], 6u);
}

TEST(Sinks, TraceBufferBusyFilter) {
  TraceBuffer busy_only(true);
  TraceBuffer everything(false);
  MemRef r;
  r.busy = true;
  busy_only.on_ref(r);
  everything.on_ref(r);
  r.busy = false;
  busy_only.on_ref(r);
  everything.on_ref(r);
  EXPECT_EQ(busy_only.size(), 1u);
  EXPECT_EQ(everything.size(), 2u);
  EXPECT_EQ(busy_only.counts().total, 2u);  // counters see everything
}

TEST(Sinks, TraceBufferClear) {
  TraceBuffer b;
  MemRef r;
  b.on_ref(r);
  b.clear();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.counts().total, 0u);
}

TEST(TraceFiles, RoundTripAndErrors) {
  std::vector<u64> data = {1, 2, 3, 0xFFFFFFFFFFFFFFFFull};
  std::string path = ::testing::TempDir() + "/t.trc";
  save_trace(data, path);
  EXPECT_EQ(load_trace(path), data);
  save_trace({}, path);  // empty trace is fine
  EXPECT_TRUE(load_trace(path).empty());
  EXPECT_THROW(load_trace("/nonexistent/dir/x.trc"), Error);
  EXPECT_THROW(save_trace(data, "/nonexistent/dir/x.trc"), Error);
}

TEST(EngineTracing, EveryAreaTaggedConsistently) {
  // Replay a parallel run and verify every reference's address maps to
  // the area its Table-1 class claims.
  BenchRun r = run_parallel(bench_program("qsort", BenchScale::Small), 4, true);
  Layout lay(4, bench_area_sizes());
  for (std::size_t i = 0; i < r.trace->size(); ++i) {
    MemRef m = r.trace->at(i);
    Area by_addr = lay.area_of(m.addr);
    Area by_class = traits_of(m.cls).area;
    ASSERT_EQ(by_addr, by_class)
        << "ref " << i << " class " << obj_class_name(m.cls) << " addr " << m.addr;
  }
}

TEST(EngineTracing, BusyRefsComeFromRunningWorkers) {
  BenchRun r = run_parallel(bench_program("deriv", BenchScale::Small), 2, true);
  // The busy-only trace is exactly the "work" counter (Figure 2).
  EXPECT_EQ(r.trace->size(), r.result.stats.work_refs());
  EXPECT_GT(r.result.stats.refs.total, r.result.stats.work_refs());
}

TEST(EngineTracing, SequentialRunTouchesNoParallelAreas) {
  BenchRun r = run_wam(bench_program("deriv", BenchScale::Small), true);
  const RefCounts& c = r.trace->counts();
  EXPECT_EQ(c.by_area[static_cast<size_t>(Area::GoalStack)], 0u);
  EXPECT_EQ(c.by_area[static_cast<size_t>(Area::MsgBuffer)], 0u);
  EXPECT_EQ(c.by_class[static_cast<size_t>(ObjClass::Marker)], 0u);
  EXPECT_EQ(c.by_class[static_cast<size_t>(ObjClass::ParcallCount)], 0u);
}

TEST(EngineTracing, KillsProduceMessageTraffic) {
  const char* src =
      "a :- slow & fast. "
      "slow :- burn(12). "
      "burn(0) :- !. "
      "burn(N) :- N1 is N - 1, burn(N1), burn(N1). "
      "fast :- fail.";
  Program prog;
  prog.consult(src);
  MachineConfig cfg;
  cfg.num_pes = 2;
  Machine m(prog, cfg);
  TraceBuffer buf(false);
  RunResult r = m.solve("a.", &buf);
  EXPECT_FALSE(r.success);
  if (r.stats.kills > 0) {
    EXPECT_GT(buf.counts().by_area[static_cast<size_t>(Area::MsgBuffer)], 0u);
  }
}

TEST(EngineTracing, PerPECountsSumToTotal) {
  BenchRun r = run_parallel(bench_program("tak", BenchScale::Small), 4, true);
  const RefCounts& c = r.trace->counts();
  u64 sum = 0;
  for (u64 n : c.by_pe) sum += n;
  EXPECT_EQ(sum, c.total);
  // More than one PE actually issued references.
  int active = 0;
  for (u64 n : c.by_pe)
    if (n) ++active;
  EXPECT_GT(active, 1);
}

}  // namespace
}  // namespace rapwam
